#!/usr/bin/env bash
# Panic-regression gate: library code must not grow new panic sites.
#
# Counts `panic!(` / `.unwrap()` / `.expect(` / `todo!(` /
# `unimplemented!(` occurrences in every crates/*/src/**/*.rs, looking
# only at the library portion of each file (everything before the first
# `#[cfg(test)]`) and ignoring comment-only lines. Each file's count must
# stay within its budget in tools/panic_allowlist.txt (absent file =
# budget 0). Tests, examples, and binaries are exempt by construction.
#
#   tools/check_panics.sh          # exits non-zero on any regression
set -euo pipefail
cd "$(dirname "$0")/.."

allowlist="tools/panic_allowlist.txt"
pattern='panic!\(|\.unwrap\(\)|\.expect\(|todo!\(|unimplemented!\('
fail=0

budget_for() {
    awk -v f="$1" '$0 !~ /^#/ && $2 == f { print $1; exit }' "$allowlist"
}

while IFS= read -r file; do
    count=$(awk '/^#\[cfg\(test\)\]/{exit} {print}' "$file" \
        | grep -v '^[[:space:]]*//' \
        | grep -c -E "$pattern" || true)
    budget=$(budget_for "$file")
    budget=${budget:-0}
    if [ "$count" -gt "$budget" ]; then
        echo "FAIL $file: $count panic site(s), budget $budget" >&2
        echo "     (library code returns Result — see DESIGN.md; vetted" >&2
        echo "      exceptions go in $allowlist)" >&2
        fail=1
    fi
done < <(find crates -name "*.rs" -path "*/src/*" | sort)

# Stale allowlist entries (file removed or cleaned up to zero) are an
# error too, so budgets only ever shrink deliberately.
while read -r budget file; do
    case "$budget" in ''|\#*) continue ;; esac
    if [ ! -f "$file" ]; then
        echo "FAIL $allowlist lists missing file: $file" >&2
        fail=1
    fi
done < "$allowlist"

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "panic gate passed ($(grep -cv '^#' "$allowlist") budgeted files)."
