#!/usr/bin/env bash
# Tier-1 gate for qisim-rs. Fully offline: every dependency is in-tree,
# so this script must pass on a machine with no registry access.
#
#   tools/ci.sh          # the whole gate
#
# Steps:
#   1. release build + full test suite (the tier-1 contract)
#   2. rustfmt check (config in rustfmt.toml)
#   3. kill-switch build: --no-default-features strips qisim-obs
#      instrumentation from the entire workspace and must still pass
#   4. observability smoke run: the observe example must emit a valid
#      BENCH_obs.json with span timings and per-stage watt attribution
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== [1/4] release build + tests =="
cargo build --release
cargo test -q --release

echo "== [2/4] rustfmt =="
cargo fmt --check

echo "== [3/4] obs kill switch (--no-default-features) =="
cargo build --release --no-default-features
cargo test -q --release --no-default-features

echo "== [4/4] observe smoke run =="
out="$(mktemp -d)"
trap 'rm -rf "$out"' EXIT
(cd "$out" && cargo run --release --quiet \
    --manifest-path "$OLDPWD/Cargo.toml" --example observe > observe.txt)
grep -q "power-limited" "$out/observe.txt"
grep -q "power.max_qubits" "$out/BENCH_obs.json"
grep -q "scalability.analyze" "$out/BENCH_obs.json"
grep -q "p99_ns" "$out/BENCH_obs.json"
grep -q "power.stage.4K.device_dynamic_w" "$out/BENCH_obs.json"
python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$out/BENCH_obs.json" \
    2>/dev/null || echo "note: python3 unavailable, skipped strict JSON parse"

echo "CI gate passed."
