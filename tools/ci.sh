#!/usr/bin/env bash
# Tier-1 gate for qisim-rs. Fully offline: every dependency is in-tree,
# so this script must pass on a machine with no registry access.
#
#   tools/ci.sh          # the whole gate
#
# Steps:
#   1. release build + full test suite (the tier-1 contract)
#   2. the same test suite pinned to QISIM_THREADS=2: every parallel
#      engine must be bit-identical at any thread count
#   3. rustfmt check (config in rustfmt.toml)
#   4. clippy across the whole workspace, warnings are errors
#   5. rustdoc: the whole workspace must document cleanly (warnings are
#      errors; qisim-par and qisim-obs additionally warn(missing_docs))
#   6. kill-switch builds: --no-default-features strips qisim-obs
#      instrumentation AND the qisim-par thread pool from the entire
#      workspace and must still pass; the serial-with-obs combination
#      (--features obs) re-runs the determinism suite to pin the
#      parallel build's results to the serial path
#   7. observability smoke run: the observe example must emit a valid
#      observe_registry.json with span timings and per-stage watt
#      attribution, and (run under QISIM_TRACE at QISIM_THREADS=2) a
#      Chrome trace_event timeline that self-validates via
#      trace_is_well_formed, carries balanced begin/end events, worker
#      lanes, and folded stacks; bench_obs --smoke then gates the
#      enabled-but-disarmed instrumentation overhead at <= 2% over the
#      kill switch and asserts results stay bit-identical with
#      QISIM_LOG armed
#   8. telemetry exporter smoke run: the observe example's --watch mode
#      under QISIM_METRICS + QISIM_THREADS=2 must self-validate its
#      OpenMetrics exposition (openmetrics_is_well_formed) and leave a
#      file with TYPE headers, histogram _bucket series, and the memo
#      cache counters; the determinism suite then re-runs with the
#      exporter armed to prove scraping never perturbs results
#   9. Monte-Carlo bench smoke run: bench_mc --smoke checks the packed
#      kernel against the bool-vec reference bit for bit, the parallel
#      estimators (packed AND bit-sliced) across thread counts, the
#      sliced engine's failure counts against 64 per-trial reference
#      runs on a d x p grid, the rare-event splitting estimator's 95%
#      CI against the exact small-p expansion, and the >=4x d=7
#      sliced-vs-packed speedup floor (re-timed at smoke scale; no
#      BENCH_mc.json rewrite — the full run is `--example bench_mc`)
#  10. panic-regression gate: library code must not grow panic!/unwrap/
#      expect sites beyond the per-file budgets in
#      tools/panic_allowlist.txt (DESIGN.md error-handling policy)
#  11. paper-suite smoke run: the cheap experiment drivers (Fig. 12/13/17
#      + Table 2) must replay their paper numbers through the staged
#      engine (the full 19-driver suite is `--example paper_suite`)
#  12. serve smoke run: bench_serve --smoke replays a concurrent request
#      batch against an in-process qisim-serve TCP server (responses
#      bit-identical to direct analysis, overload drill sheds, clean
#      shutdown) and must leave nonzero serve_* counters in the metrics
#      file; then the release binary itself serves one request over
#      /dev/tcp and exits 0 via the stop file (docs/SERVING.md)
#  13. scale-out smoke run: bench_scaleout --smoke proves the N=1
#      topology route is bit-identical to the classic pipeline for
#      every paper design and target, runs a multi-fridge sweep with
#      the sharded power stage, gates the single-fridge wrapper
#      overhead at <= 2%, and (run with QISIM_METRICS armed) must
#      leave the topology_* fleet gauges in the exposition file
#  14. admin-plane smoke run: the release binary with --admin and
#      QISIM_LOG armed answers /healthz and /readyz over /dev/tcp, its
#      /metrics scrape mid-burst validates via --check-om, the wire
#      response echoes a request_id that also stamps the JSONL
#      start/finish records, and the stop file shuts everything down
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== [1/14] release build + tests =="
cargo build --release
cargo test -q --release

echo "== [2/14] tests at QISIM_THREADS=2 =="
QISIM_THREADS=2 cargo test -q --release

echo "== [3/14] rustfmt =="
cargo fmt --check

echo "== [4/14] clippy (deny warnings) =="
cargo clippy --workspace --all-targets --quiet -- -D warnings

echo "== [5/14] rustdoc (deny warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "== [6/14] kill switches (--no-default-features) =="
cargo build --release --no-default-features
cargo test -q --release --no-default-features
# Serial pool + live obs: the exact build the determinism docs promise
# matches the parallel one bit for bit.
cargo test -q --release -p qisim --no-default-features --features obs \
    --test integration_par

echo "== [7/14] observe + trace smoke run =="
out="$(mktemp -d)"
trap 'rm -rf "$out"' EXIT
(cd "$out" && QISIM_TRACE="$out/trace.json" QISIM_THREADS=2 cargo run --release --quiet \
    --manifest-path "$OLDPWD/Cargo.toml" --example observe > observe.txt)
grep -q "power-limited" "$out/observe.txt"
grep -q "power.max_qubits" "$out/observe_registry.json"
grep -q "scalability.analyze" "$out/observe_registry.json"
grep -q "p99_ns" "$out/observe_registry.json"
grep -q "power.stage.4K.device_dynamic_w" "$out/observe_registry.json"
python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$out/observe_registry.json" \
    2>/dev/null || echo "note: python3 unavailable, skipped strict JSON parse"
# The example asserts trace_is_well_formed on its own export before
# writing; the artifacts and balanced/labeled events must be on disk.
grep -q "trace export: well-formed" "$out/observe.txt"
grep -q "traceEvents" "$out/trace.json"
grep -q "thread_name" "$out/trace.json"
grep -q "engine.stage.power" "$out/trace.json"
test -s "$out/trace.json.folded"
begins=$(grep -o '"ph":"B"' "$out/trace.json" | wc -l)
ends=$(grep -o '"ph":"E"' "$out/trace.json" | wc -l)
test "$begins" -gt 0
test "$begins" -eq "$ends" || { echo "unbalanced trace: $begins B vs $ends E" >&2; exit 1; }
python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$out/trace.json" \
    2>/dev/null || echo "note: python3 unavailable, skipped strict JSON parse"
# The disarmed-overhead gate (<= 2% over the kill switch) plus the
# QISIM_LOG bit-identity acceptance check; the committed BENCH_obs.json
# comes from the full (non-smoke) run of the same example.
(cd "$out" && cargo run --release --quiet \
    --manifest-path "$OLDPWD/Cargo.toml" --example bench_obs -- --smoke > bench_obs.txt)
grep -q "bench_obs smoke gate passed." "$out/bench_obs.txt"
grep -q "bit_identical_with_log_armed: true" "$out/bench_obs.txt"

echo "== [8/14] telemetry exporter smoke run =="
(cd "$out" && QISIM_METRICS="$out/metrics.om:50" QISIM_THREADS=2 cargo run --release --quiet \
    --manifest-path "$OLDPWD/Cargo.toml" --example observe -- --watch > watch.txt)
# The example validates its own exposition via openmetrics_is_well_formed
# before printing this line, and reports per-stage interval latencies.
grep -q "openmetrics export: well-formed" "$out/watch.txt"
grep -q "engine.stage.power: p50" "$out/watch.txt"
# The file on disk carries typed families, histogram series, and the
# memo-cache counters the bounded LRU publishes.
grep -q "# TYPE" "$out/metrics.om"
grep -q "_bucket" "$out/metrics.om"
grep -q "power_cache_hits" "$out/metrics.om"
grep -q "# EOF" "$out/metrics.om"
# Determinism with the exporter armed: scraping must never perturb the
# science.
QISIM_METRICS="$out/metrics_det.om:50" cargo test -q --release -p qisim \
    --test integration_par

echo "== [9/14] Monte-Carlo bench smoke run =="
cargo run --release --quiet --example bench_mc -- --smoke

echo "== [10/14] panic-regression gate =="
tools/check_panics.sh

echo "== [11/14] paper-suite smoke run =="
# Cheap drivers only: Fig. 12/13/17 + Table 2 finish in seconds; the
# minute-scale Table 1 / Fig. 8 / Fig. 11 runs stay on the full suite
# (filters are substring matches against the experiment ids).
suite_out="$(cargo run --release --quiet --example paper_suite -- \
    "Fig. 12" "Fig. 13" "Fig. 17" "Table 2")"
echo "$suite_out" | grep -q "running 4 experiment"
for id in "Fig. 12" "Fig. 13" "Fig. 17" "Table 2"; do
    echo "$suite_out" | grep -q "$id" || { echo "missing $id" >&2; exit 1; }
done
# The headline scalability numbers must replay exactly through the
# staged engine (zero relative error renders as "-").
echo "$suite_out" | grep -q "max |rel err|"

echo "== [12/14] serve smoke run =="
# Long exporter interval: the only write is bench_serve's explicit
# flush, whose delta then covers the whole run — serve counters must be
# nonzero in it.
(cd "$out" && QISIM_METRICS="$out/serve.om:600000" cargo run --release --quiet \
    --manifest-path "$OLDPWD/Cargo.toml" --example bench_serve -- --smoke > serve.txt)
grep -q "responses bit-identical to direct try_analyze: true" "$out/serve.txt"
grep -q "clean shutdown: drained, all threads joined" "$out/serve.txt"
grep -q "sample response: ok = 1; qisim scalability v1" "$out/serve.txt"
grep -Eq "^serve_requests_total [1-9]" "$out/serve.om"
grep -q "serve_request_ns" "$out/serve.om"
grep -q "# EOF" "$out/serve.om"
# The binary end to end: answer one request over TCP, then shut down
# gracefully when the stop file appears (exit code 0 or the gate fails).
./target/release/qisim-serve --tcp 127.0.0.1:0 --stop-file "$out/stop" \
    > "$out/serve_bin.txt" 2> "$out/serve_bin.err" &
serve_pid=$!
for _ in $(seq 1 100); do
    grep -q "listening" "$out/serve_bin.txt" 2>/dev/null && break
    sleep 0.1
done
port="$(sed -n 's/.*listening = [^ ]*:\([0-9][0-9]*\)$/\1/p' "$out/serve_bin.txt")"
test -n "$port" || { echo "qisim-serve never reported its port" >&2; exit 1; }
exec 3<>"/dev/tcp/127.0.0.1/$port"
printf 'id = ci; preset = cmos_baseline\n' >&3
IFS= read -r response <&3
exec 3<&- 3>&-
case "$response" in
    "ok = 1; request_id = "*"; id = ci; qisim scalability v1"*) ;;
    *) echo "malformed serve response: $response" >&2; exit 1;;
esac
touch "$out/stop"
wait "$serve_pid"
grep -q "done requests = 1 ok = 1" "$out/serve_bin.err"

echo "== [13/14] scale-out smoke run =="
# Long exporter interval again: the only write is bench_scaleout's
# explicit flush, so the fleet gauges from the 4-fridge sweep must be
# present in the delta that covers the whole run.
(cd "$out" && QISIM_METRICS="$out/scaleout.om:600000" QISIM_THREADS=2 cargo run --release \
    --quiet --manifest-path "$OLDPWD/Cargo.toml" --example bench_scaleout -- --smoke \
    > scaleout.txt)
grep -q "n1_identical_to_classic: true" "$out/scaleout.txt"
grep -Eq "n1 overhead: .* -> [+-][0-9.]+%" "$out/scaleout.txt"
grep -q "bench_scaleout smoke gate passed." "$out/scaleout.txt"
grep -q "topology_fridges" "$out/scaleout.om"
grep -q "engine_fridge_shards" "$out/scaleout.om"
grep -q "# EOF" "$out/scaleout.om"

echo "== [14/14] admin-plane smoke run =="
# The binary with the HTTP plane and structured logging armed: probe
# liveness/readiness, scrape /metrics during a request burst and
# validate the exposition with the binary's own --check-om, and chase
# one request_id from the wire response into the JSONL records.
# (Step 6 left the kill-switch build of the binary in target/release;
# relink the instrumented one — cached, so this is just a link step.)
cargo build --release --quiet -p qisim-serve
QISIM_LOG="$out/admin.log.jsonl:info" ./target/release/qisim-serve \
    --tcp 127.0.0.1:0 --admin 127.0.0.1:0 --stop-file "$out/admin_stop" \
    > "$out/admin_bin.txt" 2> "$out/admin_bin.err" &
admin_pid=$!
for _ in $(seq 1 100); do
    grep -q "admin = " "$out/admin_bin.txt" 2>/dev/null && break
    sleep 0.1
done
service_port="$(sed -n 's/.*listening = [^ ]*:\([0-9][0-9]*\)$/\1/p' "$out/admin_bin.txt")"
admin_port="$(sed -n 's/.*admin = [^ ]*:\([0-9][0-9]*\)$/\1/p' "$out/admin_bin.txt")"
test -n "$service_port" || { echo "qisim-serve never reported its port" >&2; exit 1; }
test -n "$admin_port" || { echo "qisim-serve never reported its admin port" >&2; exit 1; }
admin_get() { # PATH OUTFILE: one HTTP GET over /dev/tcp (server closes)
    exec 4<>"/dev/tcp/127.0.0.1/$admin_port"
    printf 'GET %s HTTP/1.1\r\nHost: ci\r\n\r\n' "$1" >&4
    cat <&4 > "$2"
    exec 4<&- 4>&-
}
admin_get /healthz "$out/healthz.txt"
grep -q "HTTP/1.1 200" "$out/healthz.txt"
grep -q "^ok" "$out/healthz.txt"
admin_get /readyz "$out/readyz.txt"
grep -q "HTTP/1.1 200" "$out/readyz.txt"
grep -q "^ready" "$out/readyz.txt"
# Burst requests on the service socket, scraping /metrics in between so
# the exposition is captured while the registry is hot.
exec 3<>"/dev/tcp/127.0.0.1/$service_port"
for i in $(seq 1 8); do
    printf 'id = ci%s; preset = cmos_baseline\n' "$i" >&3
    IFS= read -r admin_response <&3
    test "$i" -eq 4 && admin_get /metrics "$out/admin_metrics.txt"
done
exec 3<&- 3>&-
case "$admin_response" in
    "ok = 1; request_id = "*"; id = ci8; qisim scalability v1"*) ;;
    *) echo "malformed serve response: $admin_response" >&2; exit 1;;
esac
rid="${admin_response#ok = 1; request_id = }"
rid="${rid%%;*}"
grep -q "application/openmetrics-text" "$out/admin_metrics.txt"
# Strip the HTTP head; the body must be a well-formed exposition with
# live serve counters in it.
sed -e '1,/^\r*$/d' "$out/admin_metrics.txt" > "$out/admin_metrics.om"
./target/release/qisim-serve --check-om "$out/admin_metrics.om"
grep -Eq "^serve_requests_total [1-9]" "$out/admin_metrics.om"
touch "$out/admin_stop"
wait "$admin_pid"
# The id echoed on the wire stamps the structured start/finish records.
grep -q "\"event\":\"serve.request.start\"" "$out/admin.log.jsonl"
grep -q "\"event\":\"serve.request.finish\".*\"request_id\":$rid" "$out/admin.log.jsonl" \
    || grep -q "\"request_id\":$rid.*\"event\":\"serve.request.finish\"" "$out/admin.log.jsonl" \
    || { echo "request_id $rid missing from serve.request.finish records" >&2; exit 1; }
grep -q "\"outcome\":\"ok\"" "$out/admin.log.jsonl"

echo "CI gate passed."
