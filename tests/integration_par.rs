//! Determinism guarantees of the `qisim-par` engine, end to end: every
//! parallel entry point must return **bit-identical** results at any
//! thread count, and identical to a plain serial mapping of the same
//! work. The serial (`--no-default-features --features obs`) build runs
//! this same file, which pins the parallel build to the serial one.

use qisim::experiments::run_matching;
use qisim::scalability::{analyze, analyze_many, sweep};
use qisim::surface::montecarlo::logical_error_rate_par;
use qisim::surface::target::Target;
use qisim::surface::Lattice;
use qisim::QciDesign;

/// Runs `f` once per thread-count override and asserts every result is
/// identical (`PartialEq`) to the 1-thread baseline.
fn assert_thread_count_invariant<T: PartialEq + std::fmt::Debug>(f: impl Fn() -> T) -> T {
    let mut baseline = None;
    for threads in [1usize, 2, 8] {
        qisim::par::set_threads(Some(threads));
        let got = f();
        match &baseline {
            None => baseline = Some(got),
            Some(want) => {
                assert_eq!(&got, want, "result changed between 1 and {threads} threads")
            }
        }
    }
    qisim::par::set_threads(None);
    baseline.unwrap()
}

#[test]
fn sweep_is_bit_identical_across_thread_counts_and_matches_serial() {
    let design = QciDesign::cmos_baseline();
    let counts: Vec<u64> = (1..=12).map(|i| i * 128).collect();
    let points = assert_thread_count_invariant(|| sweep(&design, &counts));
    assert_eq!(points.len(), counts.len());
    // Strictly increasing qubit counts survive the parallel reordering.
    for (pt, n) in points.iter().zip(&counts) {
        assert_eq!(pt.qubits, *n);
    }
}

#[test]
fn analyze_many_is_bit_identical_across_thread_counts_and_matches_serial() {
    let designs = [
        QciDesign::cmos_baseline(),
        QciDesign::rsfq_baseline(),
        QciDesign::cmos_long_term(),
        QciDesign::ersfq_long_term(),
    ];
    let target = Target::near_term();
    let verdicts = assert_thread_count_invariant(|| analyze_many(&designs, &target));
    // The batched bisections agree with one-at-a-time analysis.
    let serial: Vec<_> = designs.iter().map(|d| analyze(d, &target)).collect();
    assert_eq!(verdicts, serial);
}

#[test]
fn monte_carlo_is_bit_identical_across_thread_counts() {
    let lattice = Lattice::new(5);
    let est = assert_thread_count_invariant(|| {
        let e = logical_error_rate_par(&lattice, 0.05, 4_096, 0xDEC0DE);
        (e.failures, e.trials)
    });
    assert_eq!(est.1, 4_096);
    assert!(est.0 > 0, "p=0.05 at d=5 must produce some failures");
}

#[test]
fn experiment_suite_subset_is_bit_identical_across_thread_counts() {
    // Cheap drivers only; the full suite is exercised by the examples.
    // Compared via the Debug rendering because informational rows carry
    // `paper: NaN`, which `PartialEq` would (correctly) reject.
    let rendered = assert_thread_count_invariant(|| {
        let picked = run_matching(|id| id == "Fig. 12" || id == "Fig. 14" || id == "Table 2");
        let ids: Vec<_> = picked.iter().map(|e| e.id).collect();
        assert_eq!(ids, ["Fig. 12", "Fig. 14", "Table 2"], "paper order preserved");
        format!("{picked:?}")
    });
    assert!(rendered.contains("Fig. 14"));
}

#[test]
fn power_memo_cache_does_not_change_results() {
    let design = QciDesign::cmos_baseline();
    let counts = [256u64, 512, 1024];
    qisim::power::clear_cache();
    let cold = sweep(&design, &counts);
    assert!(qisim::power::cache_len() > 0, "sweep populates the memo cache");
    let warm = sweep(&design, &counts);
    assert_eq!(cold, warm, "cache replay must be bit-identical");
}
