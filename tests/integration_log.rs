//! Integration tests for the structured JSONL logger: leveled
//! filtering, typed fields, rate limiting with a suppression summary,
//! request-id stamping through `RequestScope`, per-stage engine records
//! at debug level — and the hard acceptance criterion that arming the
//! logger never perturbs analysis results.

use qisim::obs::log::{self, Level};
use qisim::obs::{self, RequestScope};
use qisim::surface::target::Target;
use qisim::{engine, QciDesign};
use std::path::PathBuf;
use std::sync::Mutex;

/// The log sink is process-global (one file, one level, one rate
/// window); tests that arm it must not interleave.
static LOG_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOG_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn temp_log(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("qisim_log_{tag}_{}.jsonl", std::process::id()))
}

/// Arm the logger at `level`, run `f`, disarm, and return the emitted
/// JSONL lines. Returns `None` when the obs feature is compiled out
/// (`start` refuses and the hot path stays inert).
fn capture(tag: &str, level: Level, f: impl FnOnce()) -> Option<Vec<String>> {
    let path = temp_log(tag);
    if !log::start(&path.to_string_lossy(), level) {
        assert!(!log::armed(Level::Error), "start() refused but the sink claims to be armed");
        return None;
    }
    f();
    assert!(log::shutdown(), "shutdown must report an armed sink was closed");
    let text = std::fs::read_to_string(&path).expect("read log file");
    let _ = std::fs::remove_file(&path);
    Some(text.lines().map(str::to_owned).collect())
}

#[test]
fn levels_below_the_threshold_are_filtered() {
    let _l = lock();
    let Some(lines) = capture("levels", Level::Warn, || {
        assert!(!log::armed(Level::Debug));
        assert!(!log::armed(Level::Info));
        assert!(log::armed(Level::Warn));
        assert!(log::armed(Level::Error));
        log::record(Level::Debug, "test.debug").emit();
        log::record(Level::Info, "test.info").emit();
        log::record(Level::Warn, "test.warn").emit();
        log::record(Level::Error, "test.error").emit();
    }) else {
        return;
    };
    assert_eq!(lines.len(), 2, "only warn and error survive a warn threshold: {lines:?}");
    assert!(
        lines[0].contains("\"level\":\"warn\"") && lines[0].contains("\"event\":\"test.warn\"")
    );
    assert!(
        lines[1].contains("\"level\":\"error\"") && lines[1].contains("\"event\":\"test.error\"")
    );
    for line in &lines {
        assert!(obs::json_is_well_formed(line), "log line is not valid JSON: {line}");
    }
}

#[test]
fn typed_fields_round_trip_as_json() {
    let _l = lock();
    let Some(lines) = capture("fields", Level::Debug, || {
        log::record(Level::Info, "test.fields")
            .str("name", "tab\there \"quoted\"")
            .u64("answer", 42)
            .i64("delta", -7)
            .f64("ratio", 0.5)
            .f64("nan", f64::NAN)
            .bool("flag", true)
            .emit();
    }) else {
        return;
    };
    assert_eq!(lines.len(), 1);
    let line = &lines[0];
    assert!(obs::json_is_well_formed(line), "log line is not valid JSON: {line}");
    for want in [
        "\"ts_ns\":",
        "\"level\":\"info\"",
        "\"event\":\"test.fields\"",
        "\"thread\":",
        "\"name\":\"tab\\there \\\"quoted\\\"\"",
        "\"answer\":42",
        "\"delta\":-7",
        "\"ratio\":0.5",
        "\"nan\":null",
        "\"flag\":true",
    ] {
        assert!(line.contains(want), "missing {want} in {line}");
    }
}

#[test]
fn rate_cap_suppresses_and_shutdown_flushes_the_summary() {
    let _l = lock();
    let result = capture("ratecap", Level::Info, || {
        log::set_rate_cap(5);
        for i in 0..20u64 {
            log::record(Level::Info, "test.burst").u64("i", i).emit();
        }
    });
    log::set_rate_cap(log::DEFAULT_RATE_CAP);
    let Some(lines) = result else { return };
    // 5 records make it through the one-second window; shutdown flushes
    // the deterministic suppression summary for the other 15.
    let burst: Vec<&String> = lines.iter().filter(|l| l.contains("test.burst")).collect();
    assert_eq!(burst.len(), 5, "rate cap of 5 must pass exactly 5 records: {lines:?}");
    let summary: Vec<&String> = lines.iter().filter(|l| l.contains("log.suppressed")).collect();
    assert_eq!(summary.len(), 1, "expected one suppression summary: {lines:?}");
    assert!(
        summary[0].contains("\"level\":\"warn\"") && summary[0].contains("\"dropped\":15"),
        "summary must report the 15 dropped records: {}",
        summary[0]
    );
}

#[test]
fn request_scope_stamps_request_ids() {
    let _l = lock();
    let Some(lines) = capture("reqid", Level::Info, || {
        {
            let _outer = RequestScope::enter(42);
            log::record(Level::Info, "test.outer").emit();
            {
                let _inner = RequestScope::enter(7);
                log::record(Level::Info, "test.inner").emit();
            }
            // Dropping the inner scope restores the outer id.
            log::record(Level::Info, "test.restored").emit();
        }
        log::record(Level::Info, "test.unscoped").emit();
    }) else {
        return;
    };
    assert_eq!(lines.len(), 4);
    assert!(lines[0].contains("\"request_id\":42"), "outer scope: {}", lines[0]);
    assert!(lines[1].contains("\"request_id\":7"), "inner scope: {}", lines[1]);
    assert!(lines[2].contains("\"request_id\":42"), "restored scope: {}", lines[2]);
    assert!(!lines[3].contains("\"request_id\":"), "no open scope: {}", lines[3]);
}

#[test]
fn engine_emits_per_stage_records_at_debug() {
    let _l = lock();
    let design = QciDesign::cmos_baseline();
    let target = Target::near_term();
    let Some(lines) = capture("engine", Level::Debug, || {
        engine::try_analyze(&design, &target).expect("analysis");
    }) else {
        return;
    };
    let stages: Vec<&String> =
        lines.iter().filter(|l| l.contains("\"event\":\"engine.stage\"")).collect();
    assert!(
        stages.len() >= 5,
        "a full analysis runs five plan stages, saw {}: {lines:?}",
        stages.len()
    );
    for label in ["inventory", "schedule", "power", "logical_error", "verdict"] {
        assert!(
            stages.iter().any(|l| l.contains(&format!("\"stage\":\"{label}\""))),
            "missing stage record for {label}"
        );
    }
    for line in &stages {
        assert!(line.contains("\"elapsed_ms\":"), "stage record lacks timing: {line}");
        assert!(obs::json_is_well_formed(line), "stage record is not valid JSON: {line}");
    }
}

#[test]
fn results_are_bit_identical_with_the_log_armed() {
    let _l = lock();
    let design = QciDesign::rsfq_near_term();
    let target = Target::long_term();
    let disarmed = engine::try_analyze(&design, &target).expect("disarmed analysis");
    let mut armed = None;
    capture("identity", Level::Debug, || {
        armed = Some(engine::try_analyze(&design, &target).expect("armed analysis"));
    });
    let Some(armed) = armed else { return };
    assert_eq!(disarmed, armed, "arming QISIM_LOG changed the verdict");
    assert_eq!(
        qisim::codec::encode_scalability(&disarmed),
        qisim::codec::encode_scalability(&armed),
        "arming QISIM_LOG changed the encoded bytes"
    );
}

#[test]
fn start_refuses_a_second_sink_and_shutdown_is_idempotent() {
    let _l = lock();
    let path = temp_log("exclusive");
    if !log::start(&path.to_string_lossy(), Level::Info) {
        return; // obs feature compiled out
    }
    let other = temp_log("exclusive_other");
    assert!(
        !log::start(&other.to_string_lossy(), Level::Info),
        "a second start() must refuse while a sink is armed"
    );
    assert!(!other.exists() || std::fs::metadata(&other).map(|m| m.len()).unwrap_or(0) == 0);
    assert!(log::shutdown());
    assert!(!log::shutdown(), "second shutdown must report nothing was armed");
    assert!(!log::armed(Level::Error));
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&other);
}
