//! Integration tests for the HTTP admin plane and end-to-end request
//! ids: probe endpoints next to a live service, `/metrics` scrapes that
//! stay well-formed mid-burst, and one request's id showing up in its
//! wire response, its chrome-trace span args, and its JSONL log records.

use qisim_serve::{proto, AdminServer, ServeConfig, Server};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::Duration;

/// The log sink and metrics registry are process-global; serialize the
/// tests that arm them.
static ADMIN_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    ADMIN_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("qisim_admin_{tag}_{}", std::process::id()))
}

/// One blocking HTTP/1.1 GET; the admin plane closes the connection
/// after the response, so read-to-EOF captures the whole exchange.
fn http_get(addr: SocketAddr, path: &str) -> String {
    http_request(addr, &format!("GET {path} HTTP/1.1\r\nHost: qisim\r\n\r\n"))
}

fn http_request(addr: SocketAddr, head: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect to admin");
    stream.write_all(head.as_bytes()).expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    response
}

fn body_of(response: &str) -> &str {
    response.split_once("\r\n\r\n").map(|(_, body)| body).unwrap_or("")
}

#[test]
fn admin_routes_answer_alongside_the_service() {
    let _l = lock();
    let server = Server::bind("127.0.0.1:0", ServeConfig::default()).expect("bind service");
    let admin = AdminServer::bind("127.0.0.1:0", server.status()).expect("bind admin");
    let addr = admin.addr();

    let health = http_get(addr, "/healthz");
    assert!(health.starts_with("HTTP/1.1 200"), "healthz: {health}");
    assert_eq!(body_of(&health), "ok\n");

    let ready = http_get(addr, "/readyz");
    assert!(ready.starts_with("HTTP/1.1 200"), "readyz: {ready}");
    assert_eq!(body_of(&ready), "ready\n");

    let index = http_get(addr, "/");
    assert!(index.starts_with("HTTP/1.1 200"), "index: {index}");
    for route in ["/healthz", "/readyz", "/metrics", "/statusz"] {
        assert!(body_of(&index).contains(route), "index must list {route}: {index}");
    }

    let missing = http_get(addr, "/nope");
    assert!(missing.starts_with("HTTP/1.1 404"), "unknown route: {missing}");
    let post = http_request(addr, "POST /healthz HTTP/1.1\r\nHost: qisim\r\n\r\n");
    assert!(post.starts_with("HTTP/1.1 405"), "non-GET: {post}");
    let garbage = http_request(addr, "NOT-HTTP\r\n\r\n");
    assert!(garbage.starts_with("HTTP/1.1 400"), "bad request line: {garbage}");

    // Query strings are stripped before routing.
    let with_query = http_get(addr, "/healthz?verbose=1");
    assert!(with_query.starts_with("HTTP/1.1 200"), "query string: {with_query}");

    admin.shutdown();
    server.shutdown();
}

#[test]
fn statusz_reports_service_and_stage_state() {
    let _l = lock();
    let server = Server::bind("127.0.0.1:0", ServeConfig::default()).expect("bind service");
    let admin = AdminServer::bind("127.0.0.1:0", server.status()).expect("bind admin");

    // Run one request through the service so the stats and the
    // engine.stage spans are warm.
    let stream = TcpStream::connect(server.addr()).expect("connect service");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    writeln!(writer, "preset = cmos_baseline").expect("send");
    let mut response = String::new();
    reader.read_line(&mut response).expect("receive");
    assert_eq!(proto::response_kind(&response), Some(proto::ResponseKind::Ok));

    let status = http_get(admin.addr(), "/statusz");
    assert!(status.starts_with("HTTP/1.1 200"), "statusz: {status}");
    let body = body_of(&status);
    for want in [
        "qisim-serve statusz",
        "uptime_s = ",
        "queue_depth = 0",
        "queue_cap = ",
        "requests = 1; ok = 1; errors = 0; shed = 0",
        "memo: hits = ",
    ] {
        assert!(body.contains(want), "statusz missing {want:?}:\n{body}");
    }
    if qisim_obs::enabled() {
        assert!(
            body.contains("stage engine.stage.power: count = "),
            "statusz missing stage percentiles:\n{body}"
        );
        assert!(body.contains("p99_ms = "), "statusz missing percentiles:\n{body}");
    }

    admin.shutdown();
    server.shutdown();
}

#[test]
fn metrics_scrapes_stay_well_formed_mid_burst() {
    let _l = lock();
    let server = Server::bind("127.0.0.1:0", ServeConfig::default()).expect("bind service");
    let admin = AdminServer::bind("127.0.0.1:0", server.status()).expect("bind admin");
    let service_addr = server.addr();
    let admin_addr = admin.addr();

    // A client thread hammers the service while the main thread
    // scrapes /metrics: every scrape must be well-formed OpenMetrics
    // even with the registry mutating underneath it.
    let burst = std::thread::spawn(move || {
        let stream = TcpStream::connect(service_addr).expect("connect service");
        let mut writer = stream.try_clone().expect("clone");
        let mut reader = BufReader::new(stream);
        for _ in 0..24 {
            writeln!(writer, "preset = cmos_baseline").expect("send");
            let mut response = String::new();
            reader.read_line(&mut response).expect("receive");
            assert!(
                proto::response_request_id(&response).is_some(),
                "every response carries a request id: {response}"
            );
        }
    });
    for _ in 0..6 {
        let scrape = http_get(admin_addr, "/metrics");
        assert!(scrape.starts_with("HTTP/1.1 200"), "metrics: {scrape}");
        assert!(scrape.contains("application/openmetrics-text"), "metrics content type: {scrape}");
        assert!(
            qisim_obs::openmetrics_is_well_formed(body_of(&scrape)),
            "mid-burst scrape is not well-formed OpenMetrics:\n{}",
            body_of(&scrape)
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    burst.join().expect("burst client");

    admin.shutdown();
    server.shutdown();
}

#[test]
fn readyz_flips_unready_when_stopping() {
    let _l = lock();
    let stop_file = temp_path("stop");
    let _ = std::fs::remove_file(&stop_file);
    let config = ServeConfig { stop_file: Some(stop_file.clone()), ..ServeConfig::default() };
    let server = Server::bind("127.0.0.1:0", config).expect("bind service");
    let admin = AdminServer::bind("127.0.0.1:0", server.status()).expect("bind admin");

    assert!(http_get(admin.addr(), "/readyz").starts_with("HTTP/1.1 200"));
    std::fs::write(&stop_file, b"").expect("write stop file");
    // The stop-file poller runs on an interval; wait for the flip.
    let mut flipped = false;
    for _ in 0..100 {
        let ready = http_get(admin.addr(), "/readyz");
        if ready.starts_with("HTTP/1.1 503") {
            assert!(body_of(&ready).contains("stopping"), "readyz body: {ready}");
            flipped = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(flipped, "/readyz must report 503 once the stop file appears");

    admin.shutdown();
    server.shutdown();
    let _ = std::fs::remove_file(&stop_file);
}

#[test]
fn request_id_threads_response_trace_and_log() {
    let _l = lock();
    if !qisim_obs::enabled() {
        return; // obs compiled out: no traces, no logs
    }
    let trace_dir = temp_path("traces");
    let _ = std::fs::remove_dir_all(&trace_dir);
    std::fs::create_dir_all(&trace_dir).expect("create trace dir");
    let log_path = temp_path("e2e.log.jsonl");
    assert!(
        qisim_obs::log::start(&log_path.to_string_lossy(), qisim_obs::log::Level::Info),
        "arm the JSONL logger"
    );

    let config = ServeConfig { trace_dir: Some(trace_dir.clone()), ..ServeConfig::default() };
    let server = Server::bind("127.0.0.1:0", config).expect("bind service");
    let stream = TcpStream::connect(server.addr()).expect("connect service");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    writeln!(writer, "trace = 1; id = e2e; preset = cmos_baseline").expect("send");
    let mut response = String::new();
    reader.read_line(&mut response).expect("receive");
    server.shutdown();
    assert!(qisim_obs::log::shutdown());

    // 1. The wire response echoes the id.
    assert_eq!(proto::response_kind(&response), Some(proto::ResponseKind::Ok));
    let rid = proto::response_request_id(&response).expect("response carries request_id");

    // 2. The chrome-trace file carries it in the span args.
    let trace_path = trace_dir.join(format!("req-{rid}.trace.json"));
    let trace = std::fs::read_to_string(&trace_path).expect("read per-request trace");
    assert!(qisim_obs::trace_is_well_formed(&trace), "trace is not well-formed");
    assert!(
        trace.contains(&format!("\"request_id\":{rid}")),
        "trace args must carry request_id {rid}"
    );

    // 3. The JSONL log records carry it, start to finish.
    let log = std::fs::read_to_string(&log_path).expect("read log");
    let stamp = format!("\"request_id\":{rid}");
    for event in ["serve.request.start", "serve.request.finish"] {
        assert!(
            log.lines().any(|l| l.contains(event) && l.contains(&stamp)),
            "log must carry a {event} record stamped {stamp}:\n{log}"
        );
    }
    assert!(
        log.lines().any(|l| l.contains("serve.request.finish") && l.contains("\"outcome\":\"ok\"")),
        "finish record must carry the outcome:\n{log}"
    );

    let _ = std::fs::remove_file(&log_path);
    let _ = std::fs::remove_dir_all(&trace_dir);
}
