//! Integration tests for the observability layer: instrumentation must
//! never perturb the science, and an instrumented run must actually
//! record the metrics the `BENCH_obs.json` artifact promises.

use qisim::obs;
use qisim::surface::target::Target;
use qisim::{analyze, sweep, QciDesign};
use std::sync::Mutex;

/// The metrics registry is process-global; tests that reset or toggle it
/// must not interleave.
static OBS_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn results_are_bit_identical_with_obs_on_and_off() {
    let _l = lock();
    let target = Target::near_term();
    for design in [QciDesign::cmos_baseline(), QciDesign::rsfq_near_term()] {
        obs::set_enabled(true);
        obs::reset();
        let on = analyze(&design, &target);
        obs::set_enabled(false);
        let off = analyze(&design, &target);
        obs::set_enabled(true);
        // `Scalability` is all plain numbers; PartialEq compares every
        // field (including the per-stage watt attribution) exactly.
        assert_eq!(on, off, "instrumentation changed the verdict");
    }
    obs::reset();
}

#[test]
fn sweep_is_bit_identical_with_obs_on_and_off() {
    let _l = lock();
    let counts = [64u64, 256, 1024];
    obs::set_enabled(true);
    let on = sweep(&QciDesign::cmos_baseline(), &counts);
    obs::set_enabled(false);
    let off = sweep(&QciDesign::cmos_baseline(), &counts);
    obs::set_enabled(true);
    assert_eq!(on, off);
    obs::reset();
}

#[test]
fn instrumented_analysis_records_spans_counters_and_gauges() {
    let _l = lock();
    obs::set_enabled(true);
    obs::reset();
    let verdict = analyze(&QciDesign::cmos_baseline(), &Target::near_term());
    assert!(verdict.power_limited_qubits > 0);
    let snap = obs::snapshot();
    if !obs::enabled() {
        // Compiled with --no-default-features: the registry must stay
        // empty and the exporters must degrade gracefully.
        assert!(snap.is_empty());
        assert!(obs::json_is_well_formed(&obs::report_json()));
        return;
    }
    // Spans from every instrumented layer of the Fig. 6 pipeline.
    for name in ["scalability.analyze", "power.max_qubits", "power.evaluate", "microarch.build"] {
        let s = snap.span(name).unwrap_or_else(|| panic!("span {name} missing"));
        assert!(s.count > 0, "span {name} never fired");
    }
    // The bisection did real work.
    let iters = snap.counter("power.bisection.iters").expect("bisection counter");
    assert!(iters >= 10, "bisection iterations {iters}");
    // Per-stage watt attribution gauges for the binding 4 K stage.
    for g in ["power.stage.4K.device_dynamic_w", "power.stage.4K.utilization"] {
        assert!(snap.gauge(g).is_some(), "gauge {g} missing");
    }
    // The export formats agree with the snapshot and are well-formed.
    let json = obs::report_json();
    assert!(obs::json_is_well_formed(&json), "{json}");
    assert!(json.contains("power.max_qubits"));
    assert!(json.contains("p99_ns"));
    assert!(obs::report_text().contains("scalability.analyze"));
    obs::reset();
}

#[test]
fn scale_out_analysis_publishes_topology_gauges() {
    let _l = lock();
    obs::set_enabled(true);
    obs::reset();
    let spec = qisim::spec::DesignSpec::new(qisim::spec::Preset::CmosBaseline)
        .fridges(4)
        .link(qisim::hal::topology::LinkKind::CryoCoax);
    let verdict =
        qisim::engine::try_analyze_spec(&spec, &Target::near_term()).expect("scale-out analysis");
    assert!(verdict.scale_out.is_some());
    let snap = obs::snapshot();
    if !obs::enabled() {
        assert!(snap.is_empty());
        return;
    }
    // Fleet shape gauges, sharded fan-out counter, and per-stage
    // interconnect heat attribution.
    assert_eq!(snap.gauge("topology.fridges"), Some(4.0));
    assert_eq!(snap.gauge("topology.links_per_fridge"), Some(2.0));
    assert_eq!(snap.gauge("topology.shared_controllers"), Some(1.0));
    let per_fridge = snap.gauge("engine.fridge.qubits").expect("per-fridge gauge");
    assert_eq!(per_fridge as u64, verdict.scale_out.as_ref().unwrap().per_fridge_qubits);
    assert_eq!(snap.counter("engine.fridge.shards"), Some(4));
    let heat_4k = snap.gauge("topology.interconnect.4K_w").expect("4K interconnect gauge");
    assert!(heat_4k > 0.0, "cryo coax must dissipate at 4 K: {heat_4k}");
    // A classic single-fridge run leaves the topology gauges untouched.
    obs::reset();
    let _ = analyze(&QciDesign::cmos_baseline(), &Target::near_term());
    assert!(obs::snapshot().gauge("topology.fridges").is_none());
    obs::reset();
}

#[test]
fn runtime_disable_stops_recording_mid_process() {
    let _l = lock();
    obs::set_enabled(true);
    obs::reset();
    obs::set_enabled(false);
    let _ = analyze(&QciDesign::cmos_baseline(), &Target::near_term());
    obs::set_enabled(true);
    assert!(obs::snapshot().is_empty(), "disabled run must record nothing");
    obs::reset();
}
