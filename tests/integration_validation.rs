//! Validation-suite integration: the §5 experiments, asserted at the
//! tolerances the paper reports (or the documented substitution
//! tolerances where our substrate differs).

use qisim::experiments::{longterm, nearterm, setup, validation};

/// Fig. 8: CMOS power model vs. the Horse Ridge anchors (paper ≤5.1 %;
/// we allow 10 % against our digitized bars).
#[test]
fn fig08_cmos_power_validation() {
    let e = validation::fig08();
    assert!(e.max_relative_error() < 0.10, "{e}");
}

/// Fig. 10: RSFQ frequency/power model vs. post-layout anchors
/// (paper ≤7.2 %).
#[test]
fn fig10_sfq_power_validation() {
    let e = validation::fig10();
    assert!(e.max_relative_error() < 0.10, "{e}");
}

/// Fig. 11: workload-fidelity estimator tracks the analytic reference
/// within the paper's 5.1 % average difference (loosened to 8 % for
/// Monte-Carlo scatter).
#[test]
fn fig11_workload_fidelity_validation() {
    let e = validation::fig11();
    let avg = e.rows.last().unwrap().measured;
    assert!(avg < 0.08, "average fidelity difference {avg}\n{e}");
}

/// Table 1: every gate-error model lands within 3x of its experimental
/// reference (the Hamiltonian-simulation substrate differs from the
/// authors'; see DESIGN.md §1 for the substitutions).
#[test]
fn table1_gate_error_validation() {
    let e = validation::table1();
    for row in &e.rows {
        let ratio = row.ratio();
        assert!(
            (1.0 / 3.0..=3.0).contains(&ratio),
            "{}: measured {:.2e} vs reference {:.2e} (ratio {:.2})\n{e}",
            row.label,
            row.measured,
            row.paper,
            ratio
        );
    }
}

/// Table 2: the setup constants wired into the crates are exactly the
/// paper's.
#[test]
fn table2_setup_self_check() {
    let e = setup::table2();
    assert!(e.max_relative_error() < 1e-9, "{e}");
}

/// Fig. 15/16/18 relative claims (power cuts, bandwidth cut) hold.
#[test]
fn optimization_percentages_hold() {
    let f15 = nearterm::fig15();
    assert!((f15.rows[1].ratio() - 1.0).abs() < 0.02, "pipelined latency\n{f15}");
    let f16 = nearterm::fig16();
    assert!((f16.rows[0].measured - 0.982).abs() < 0.03, "Opt-4 bitgen cut\n{f16}");
    let f18 = longterm::fig18();
    assert!(f18.rows[1].measured > 0.80, "Opt-6 bandwidth cut\n{f18}");
}
