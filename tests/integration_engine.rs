//! Integration tests of the fallible staged engine: the new `try_*`
//! entry points must be **bit-identical** to the historical infallible
//! pipeline for every paper design, and every malformed input must come
//! back as the right typed [`QisimError`] variant instead of a panic.

use qisim::engine::{self, AnalysisPlan, PlanStage};
use qisim::error::{ConfigError, QisimError, TargetError};
use qisim::hal::fridge::{Fridge, Stage};
use qisim::hal::wire::InstructionLink;
use qisim::microarch::cryo_cmos::CryoCmosConfig;
use qisim::microarch::sfq::SfqConfig;
use qisim::power::{PowerError, StagePower};
use qisim::quantum::rng::{Rng, Xorshift64Star};
use qisim::spec::{DesignSpec, Preset};
use qisim::surface::analytic::CALIBRATION;
use qisim::surface::target::{Target, CODE_DISTANCE};
use qisim::{scalability, QciDesign, Scalability};

/// A verbatim copy of the pre-refactor `scalability::analyze_on` body,
/// kept as the bit-identity oracle for the staged path.
fn legacy_analyze_on(design: &QciDesign, target: &Target, fridge: &Fridge) -> Scalability {
    let arch = design.arch();
    let (power_limited_qubits, binding_stage) = qisim::power::max_qubits(&arch, fridge);
    let link = InstructionLink::standard();
    let key = qisim::power::MemoKey::new(&arch, fridge, &link);
    let stages =
        qisim::power::evaluate_memo(key, &arch, fridge, power_limited_qubits.max(1), &link).stages;
    let logical_error = design.physical_budget().logical_error(CODE_DISTANCE, &CALIBRATION);
    let target_error = target.logical_error_target();
    Scalability {
        design: design.name(),
        power_limited_qubits,
        binding_stage,
        stages,
        logical_error,
        target_error,
        error_ok: logical_error <= target_error,
        esm_cycle_ns: design.esm_cycle_ns(),
        scale_out: None,
    }
}

/// Every paper design point the experiment drivers touch: the nine
/// presets plus the optimized/degraded variants of Figs. 13–17.
fn paper_designs() -> Vec<QciDesign> {
    let mut designs: Vec<QciDesign> = Preset::ALL.iter().map(|p| p.design()).collect();
    designs.push(QciDesign::Sfq(SfqConfig {
        sharing: qisim::microarch::sfq::JpmSharing::SharedNaive,
        ..SfqConfig::baseline_rsfq()
    }));
    designs.push(QciDesign::CryoCmos(CryoCmosConfig {
        drive_fdm: 32,
        readout_ns: qisim::microarch::cryo_cmos::READOUT_NS,
        ..CryoCmosConfig::long_term()
    }));
    designs.push(QciDesign::CryoCmos(CryoCmosConfig {
        masked_isa: true,
        ..CryoCmosConfig::baseline()
    }));
    designs
}

#[test]
fn staged_path_is_bit_identical_to_the_legacy_pipeline() {
    for target in [Target::near_term(), Target::long_term()] {
        for design in paper_designs() {
            let legacy = legacy_analyze_on(&design, &target, &Fridge::standard());
            let staged = engine::try_analyze(&design, &target).expect("paper design");
            assert_eq!(staged, legacy, "{} vs {}", staged.design, target.name);
            // The infallible wrapper is the same staged path.
            assert_eq!(scalability::analyze(&design, &target), legacy);
        }
    }
}

#[test]
fn staged_path_matches_legacy_on_custom_fridges() {
    let fridges = [
        Fridge::standard().with_budget(Stage::K4, 6.0),
        Fridge::standard().with_budget(Stage::Mk20, 1e-2),
    ];
    let t = Target::near_term();
    for fridge in &fridges {
        for design in [QciDesign::cmos_baseline(), QciDesign::rsfq_baseline()] {
            let legacy = legacy_analyze_on(&design, &t, fridge);
            let staged = engine::try_analyze_on(&design, &t, fridge).expect("paper design");
            assert_eq!(staged, legacy);
        }
    }
}

#[test]
fn try_sweep_matches_the_infallible_sweep() {
    let counts = [64u64, 256, 1024, 4096];
    for design in [QciDesign::cmos_baseline(), QciDesign::rsfq_near_term()] {
        let legacy = scalability::sweep(&design, &counts);
        let fallible = engine::try_sweep(&design, &counts).expect("valid sweep");
        assert_eq!(fallible, legacy);
    }
}

#[test]
fn try_analyze_many_matches_serial_try_analyze() {
    let t = Target::near_term();
    let designs = paper_designs();
    let many = engine::try_analyze_many(&designs, &t).expect("paper designs");
    let serial: Vec<_> =
        designs.iter().map(|d| engine::try_analyze(d, &t).expect("paper design")).collect();
    assert_eq!(many, serial);
}

#[test]
fn plan_exposes_every_intermediate_artifact() {
    let mut plan =
        AnalysisPlan::new(&QciDesign::cmos_baseline(), &Target::near_term()).expect("valid");
    assert_eq!(plan.next_stage(), Some(PlanStage::Inventory));
    let mut ran = Vec::new();
    while let Some(stage) = plan.run_next().expect("paper design") {
        ran.push(stage);
    }
    assert_eq!(ran, PlanStage::ALL);
    let arch = plan.inventory().expect("inventory artifact");
    assert!(!arch.components.is_empty());
    let schedule = plan.schedule().expect("schedule artifact");
    assert!(schedule.cycle_ns > 0.0);
    let power = plan.stage_powers().expect("power artifact");
    assert_eq!(power.stages.len(), Stage::ALL.len());
    let verdict = plan.verdict().expect("verdict").clone();
    assert_eq!(
        verdict,
        legacy_analyze_on(&QciDesign::cmos_baseline(), &Target::near_term(), &Fridge::standard())
    );
}

/// Every invalid spec knob yields its documented [`QisimError`] variant
/// — never a panic, never a wrong variant.
#[test]
fn invalid_spec_knobs_map_to_their_variants() {
    let t = Target::near_term();
    let config = |spec: &DesignSpec| match engine::try_analyze_spec(spec, &t) {
        Err(QisimError::Config(e)) => e,
        other => panic!("expected a config error, got {other:?}"),
    };
    // FDM degree 0 (would divide by zero in the ESM profile).
    let e = config(&DesignSpec::new(Preset::CmosBaseline).drive_fdm(0));
    assert!(matches!(e, ConfigError::OutOfRange { knob: "drive_fdm", value: 0, .. }), "{e:?}");
    // DAC precision past the calibrated sweep.
    let e = config(&DesignSpec::new(Preset::CmosBaseline).drive_bits(17));
    assert!(matches!(e, ConfigError::OutOfRange { knob: "drive_bits", value: 17, .. }), "{e:?}");
    // SFQ broadcast parallelism out of range.
    let e = config(&DesignSpec::new(Preset::RsfqBaseline).bs(0));
    assert!(matches!(e, ConfigError::OutOfRange { knob: "bs", .. }), "{e:?}");
    // Negative fridge budget.
    let e = config(&DesignSpec::new(Preset::CmosBaseline).budget(Stage::K4, -2.5));
    assert!(matches!(e, ConfigError::Budget { stage: Stage::K4, .. }), "{e:?}");
    // Empty design name.
    let e = config(&DesignSpec::new(Preset::CmosBaseline).name(""));
    assert!(matches!(e, ConfigError::EmptyName), "{e:?}");
    // Technology mismatch: an SFQ knob on a CMOS preset.
    let e = config(&DesignSpec::new(Preset::CmosBaseline).bs(1));
    assert!(matches!(e, ConfigError::KnobMismatch { knob: "bs", .. }), "{e:?}");
    // Non-finite analog knob.
    let e = config(&DesignSpec::new(Preset::CmosBaseline).readout_ns(f64::NAN));
    assert!(matches!(e, ConfigError::NotPositive { knob: "readout_ns", .. }), "{e:?}");
}

#[test]
fn invalid_raw_designs_and_targets_are_typed() {
    let t = Target::near_term();
    let bad = QciDesign::CryoCmos(CryoCmosConfig { drive_fdm: 0, ..CryoCmosConfig::baseline() });
    assert!(matches!(
        engine::try_analyze(&bad, &t),
        Err(QisimError::Config(ConfigError::OutOfRange { knob: "drive_fdm", .. }))
    ));
    assert!(matches!(
        engine::try_sweep(&bad, &[64]),
        Err(QisimError::Config(ConfigError::OutOfRange { .. }))
    ));
    // One bad design poisons an analyze_many batch with the same error.
    assert!(matches!(
        engine::try_analyze_many(&[QciDesign::cmos_baseline(), bad], &t),
        Err(QisimError::Config(_))
    ));
    // A zero qubit count is the power model's typed refusal.
    assert!(matches!(
        engine::try_sweep(&QciDesign::cmos_baseline(), &[0]),
        Err(QisimError::Power(PowerError::NoQubits))
    ));
    // Malformed targets.
    let mut t0 = Target::near_term();
    t0.logical_ops = f64::INFINITY;
    assert!(matches!(
        engine::try_analyze(&QciDesign::cmos_baseline(), &t0),
        Err(QisimError::Target(TargetError::InvalidOps { .. }))
    ));
    let mut t0 = Target::near_term();
    t0.logical_qubits = 0;
    assert!(matches!(
        engine::try_analyze(&QciDesign::cmos_baseline(), &t0),
        Err(QisimError::Target(TargetError::NoLogicalQubits))
    ));
}

#[test]
fn errors_render_and_chain_like_std_errors() {
    use std::error::Error as _;
    let err = engine::try_sweep(&QciDesign::cmos_baseline(), &[0]).expect_err("zero count");
    assert_eq!(err.to_string(), "power model: need at least one qubit");
    let source = err.source().expect("source-chained to qisim-power");
    assert_eq!(source.to_string(), "need at least one qubit");
}

/// A seeded randomized grid of near-valid knob combinations: every
/// `try_analyze_spec` call must return `Ok` or a typed error — this test
/// would abort on any panic escaping the engine. (The `proptest` feature
/// gates a heavier generative version of the same property.)
#[test]
fn randomized_near_valid_knob_grid_never_panics() {
    let mut rng = Xorshift64Star::seed_from_u64(0x5157_5349_4d21);
    let t = Target::near_term();
    let mut oks = 0usize;
    let mut errs = 0usize;
    for _ in 0..200 {
        let preset = Preset::ALL[(rng.next_u64() % 9) as usize];
        let mut spec = DesignSpec::new(preset);
        // Knob values straddle the validated boundaries (0..=2 around
        // each limit), mixed across technologies to exercise mismatches.
        if rng.gen_f64() < 0.5 {
            spec = spec.drive_fdm((rng.next_u64() % 68) as u32);
        }
        if rng.gen_f64() < 0.5 {
            spec = spec.drive_bits((rng.next_u64() % 19) as u32);
        }
        if rng.gen_f64() < 0.3 {
            spec = spec.bs((rng.next_u64() % 10) as u32);
        }
        if rng.gen_f64() < 0.3 {
            spec = spec.readout_ns((rng.gen_f64() - 0.25) * 4000.0);
        }
        if rng.gen_f64() < 0.3 {
            spec = spec.analog_scale(rng.gen_f64() * 2.0 - 0.5);
        }
        if rng.gen_f64() < 0.3 {
            let stage = Stage::ALL[(rng.next_u64() % 5) as usize];
            spec = spec.budget(stage, rng.gen_f64() * 4.0 - 1.0);
        }
        match engine::try_analyze_spec(&spec, &t) {
            Ok(s) => {
                oks += 1;
                assert!(s.power_limited_qubits >= 1 || !s.error_ok || s.stages.is_empty());
            }
            Err(e) => {
                errs += 1;
                // Every diagnostic renders.
                assert!(!e.to_string().is_empty());
            }
        }
    }
    assert!(oks > 0, "the grid must hit some valid points ({oks} ok / {errs} err)");
    assert!(errs > 0, "the grid must hit some invalid points ({oks} ok / {errs} err)");
}

/// N=1 identity gate (the scale-out analogue of the legacy-vs-staged
/// gate above): a single-fridge topology must be **bit-identical** to
/// the classic pipeline for every preset and target — both through
/// `with_topology` directly and through a spec carrying `fridges = 1`.
#[test]
fn single_fridge_topology_is_bit_identical_for_every_preset_and_target() {
    use qisim::hal::topology::{FridgeTopology, LinkKind};
    for target in [Target::near_term(), Target::long_term()] {
        for design in paper_designs() {
            let classic = engine::try_analyze(&design, &target).expect("paper design");
            // Even with link knobs configured, one fridge has no peers:
            // the classic path runs verbatim.
            for topology in [
                FridgeTopology::standard(),
                FridgeTopology::standard().with_link(LinkKind::Photonic).with_links_per_fridge(64),
            ] {
                let topo = engine::try_analyze_topology(
                    &design,
                    &target,
                    &topology,
                    qisim::spec::Estimator::Packed,
                )
                .expect("paper design");
                assert_eq!(topo, classic, "{} vs {}", classic.design, target.name);
                assert_eq!(topo.scale_out, None);
            }
        }
    }
    // Spec route: `fridges = 1` (with or without link knobs) is the
    // classic verdict for every preset.
    for preset in Preset::ALL {
        let t = Target::near_term();
        let classic = engine::try_analyze_spec(&DesignSpec::new(preset), &t).expect("preset");
        let via_spec = engine::try_analyze_spec(
            &DesignSpec::new(preset).fridges(1).link(LinkKind::CryoCoax),
            &t,
        )
        .expect("preset");
        assert_eq!(via_spec, classic, "{preset:?}");
    }
}

/// N>1 semantics: the cluster total is fridges x per-fridge yield, the
/// verdict carries a fully-populated scale-out block, and explain()
/// names the binding constraint end to end.
#[test]
fn multi_fridge_analysis_aggregates_and_attributes() {
    use qisim::hal::topology::{FridgeTopology, LinkKind};
    use qisim::scalability::ScaleOutBinding;
    use qisim::spec::Estimator;
    let t = Target::near_term();
    let design = QciDesign::cmos_baseline();
    let single = engine::try_analyze(&design, &t).expect("paper design");
    let topology = FridgeTopology::standard().with_fridges(4).with_link(LinkKind::CryoCoax);
    let clustered =
        engine::try_analyze_topology(&design, &t, &topology, Estimator::Packed).expect("cluster");
    let so = clustered.scale_out.as_ref().expect("multi-fridge verdicts carry scale-out");
    assert_eq!(so.fridges, 4);
    assert_eq!(so.link, LinkKind::CryoCoax);
    assert_eq!(clustered.power_limited_qubits, 4 * so.per_fridge_qubits);
    // Interconnect heat derates each fridge below the solo yield, but a
    // 4-fridge cluster still beats one fridge overall.
    assert!(so.per_fridge_qubits <= single.power_limited_qubits);
    assert!(so.per_fridge_qubits > 0, "cryo-coax links must leave budget");
    assert!(clustered.power_limited_qubits > single.power_limited_qubits);
    // The cryo-coax bundle leaks at 4K (and only where Table 2 says).
    assert!(so.interconnect_w[1] > 0.0, "4K interconnect heat");
    assert_eq!(so.interconnect_w[0], 0.0, "superconducting coax is free at 50K");
    // Fridges-to-target is the ceiling division of the target scale.
    let tq = so.target_qubits;
    assert_eq!(tq, qisim::surface::target::Target::near_term().physical_qubits() as u64);
    assert_eq!(so.fridges_to_target, Some(tq.div_ceil(so.per_fridge_qubits).max(1)));
    // The binding constraint names a stage either way...
    let binding = so.binding.expect("a binding constraint");
    // ...and for a CMOS design over light cryo links it is the design's
    // own 4K dissipation, not the interconnect.
    assert_eq!(binding, ScaleOutBinding::StageBudget(Stage::K4));
    assert_eq!(clustered.binding_stage, Some(binding.stage()));
    let text = clustered.explain();
    assert!(text.contains("scale-out: 4 fridges"), "{text}");
    assert!(text.contains("qubits/fridge"), "{text}");
    assert!(text.contains("binding constraint"), "{text}");
    assert!(text.contains("fridges to reach"), "{text}");
}

/// A link bundle that eats a stage whole: zero qubits per fridge, the
/// interconnect link is the named binding constraint, and no fridge
/// count reaches the target.
#[test]
fn interconnect_can_bind_a_starved_stage() {
    use qisim::scalability::ScaleOutBinding;
    use qisim::spec::Estimator;
    let t = Target::near_term();
    // 64 photonic links against a 1 uW mixing-chamber budget: the
    // photodetectors alone (~790 nW each) bury the stage.
    let spec = DesignSpec::new(Preset::CmosBaseline)
        .fridges(4)
        .link(qisim::hal::topology::LinkKind::Photonic)
        .links_per_fridge(64)
        .budget(Stage::Mk20, 1e-6);
    let design = spec.build().expect("valid design");
    let topology = spec.topology().expect("valid topology");
    let verdict =
        engine::try_analyze_topology(&design, &t, &topology, Estimator::Packed).expect("cluster");
    let so = verdict.scale_out.as_ref().expect("scale-out block");
    assert_eq!(so.per_fridge_qubits, 0);
    assert_eq!(verdict.power_limited_qubits, 0);
    assert_eq!(so.fridges_to_target, None);
    assert_eq!(so.binding, Some(ScaleOutBinding::Link(Stage::Mk20)));
    let text = verdict.explain();
    assert!(text.contains("interconnect link heat at the 20mK stage"), "{text}");
    assert!(text.contains("unreachable at any fridge count"), "{text}");
}

/// Sharded aggregation is deterministic: the verdict is bit-identical
/// at every thread count, and bigger clusters scale linearly.
#[test]
fn sharded_power_stage_is_thread_count_independent() {
    use qisim::hal::topology::FridgeTopology;
    use qisim::spec::Estimator;
    let t = Target::near_term();
    let design = QciDesign::rsfq_near_term();
    let topology = FridgeTopology::standard().with_fridges(6);
    let baseline =
        engine::try_analyze_topology(&design, &t, &topology, Estimator::Packed).expect("cluster");
    for threads in [1usize, 2, 4] {
        qisim::par::set_threads(Some(threads));
        let v = engine::try_analyze_topology(&design, &t, &topology, Estimator::Packed)
            .expect("cluster");
        assert_eq!(v, baseline, "{threads} threads");
    }
    qisim::par::set_threads(None);
    // Linear tiling: 12 fridges carry exactly twice the 6-fridge total.
    let doubled = engine::try_analyze_topology(
        &design,
        &t,
        &topology.clone().with_fridges(12),
        Estimator::Packed,
    )
    .expect("cluster");
    assert_eq!(doubled.power_limited_qubits, 2 * baseline.power_limited_qubits);
}

/// Seeded randomized topologies round-trip the codec losslessly and
/// never panic the engine (the always-on sibling of the `proptest`
/// suite).
#[test]
fn randomized_topologies_round_trip_and_never_panic() {
    use qisim::hal::topology::LinkKind;
    let mut rng = Xorshift64Star::seed_from_u64(0x70_0b_01_09);
    let t = Target::near_term();
    for i in 0..120 {
        let preset = Preset::ALL[(rng.next_u64() % 9) as usize];
        let mut spec = DesignSpec::new(preset);
        if rng.gen_f64() < 0.9 {
            spec = spec.fridges((rng.next_u64() % 9 + 1) as u32);
        }
        if rng.gen_f64() < 0.7 {
            spec = spec.link(LinkKind::ALL[(rng.next_u64() % 3) as usize]);
        }
        if rng.gen_f64() < 0.7 {
            spec = spec.links_per_fridge((rng.next_u64() % 64 + 1) as u32);
        }
        if rng.gen_f64() < 0.5 {
            spec = spec.shared_controllers(rng.next_u64().is_multiple_of(2));
        }
        if rng.gen_f64() < 0.3 {
            let stage = Stage::ALL[(rng.next_u64() % 5) as usize];
            spec = spec.budget(stage, rng.gen_f64() * 2.0 + 1e-7);
        }
        // Codec round-trip is lossless for every valid topology spec.
        let text = qisim::codec::encode_spec(&spec);
        assert_eq!(qisim::codec::parse_spec(&text).expect("round-trip"), spec, "case {i}");
        // The verdict itself round-trips with its scale-out block.
        match engine::try_analyze_spec(&spec, &t) {
            Ok(v) => {
                assert_eq!(v.scale_out.is_some(), spec.has_scale_out(), "case {i}");
                let doc = qisim::codec::encode_scalability(&v);
                assert_eq!(qisim::codec::parse_scalability(&doc).expect("verdict"), v, "case {i}");
            }
            Err(e) => assert!(!e.to_string().is_empty(), "case {i}"),
        }
    }
}

/// The per-stage watt attribution exposed by the plan equals the
/// verdict's (same memoized probe, not a recomputation).
#[test]
fn plan_power_artifact_backs_the_verdict() {
    let mut plan =
        AnalysisPlan::new(&QciDesign::rsfq_near_term(), &Target::near_term()).expect("valid");
    let verdict = plan.run().expect("paper design");
    let power = plan.stage_powers().expect("power artifact");
    assert_eq!(power.power_limited_qubits, verdict.power_limited_qubits);
    assert_eq!(power.binding_stage, verdict.binding_stage);
    assert_eq!(power.stages, verdict.stages);
    let total: f64 = verdict.stages.iter().map(StagePower::total_w).sum();
    assert!(total > 0.0);
}
