//! Integration tests of the fallible staged engine: the new `try_*`
//! entry points must be **bit-identical** to the historical infallible
//! pipeline for every paper design, and every malformed input must come
//! back as the right typed [`QisimError`] variant instead of a panic.

use qisim::engine::{self, AnalysisPlan, PlanStage};
use qisim::error::{ConfigError, QisimError, TargetError};
use qisim::hal::fridge::{Fridge, Stage};
use qisim::hal::wire::InstructionLink;
use qisim::microarch::cryo_cmos::CryoCmosConfig;
use qisim::microarch::sfq::SfqConfig;
use qisim::power::{PowerError, StagePower};
use qisim::quantum::rng::{Rng, Xorshift64Star};
use qisim::spec::{DesignSpec, Preset};
use qisim::surface::analytic::CALIBRATION;
use qisim::surface::target::{Target, CODE_DISTANCE};
use qisim::{scalability, QciDesign, Scalability};

/// A verbatim copy of the pre-refactor `scalability::analyze_on` body,
/// kept as the bit-identity oracle for the staged path.
fn legacy_analyze_on(design: &QciDesign, target: &Target, fridge: &Fridge) -> Scalability {
    let arch = design.arch();
    let (power_limited_qubits, binding_stage) = qisim::power::max_qubits(&arch, fridge);
    let link = InstructionLink::standard();
    let key = qisim::power::MemoKey::new(&arch, fridge, &link);
    let stages =
        qisim::power::evaluate_memo(key, &arch, fridge, power_limited_qubits.max(1), &link).stages;
    let logical_error = design.physical_budget().logical_error(CODE_DISTANCE, &CALIBRATION);
    let target_error = target.logical_error_target();
    Scalability {
        design: design.name(),
        power_limited_qubits,
        binding_stage,
        stages,
        logical_error,
        target_error,
        error_ok: logical_error <= target_error,
        esm_cycle_ns: design.esm_cycle_ns(),
    }
}

/// Every paper design point the experiment drivers touch: the nine
/// presets plus the optimized/degraded variants of Figs. 13–17.
fn paper_designs() -> Vec<QciDesign> {
    let mut designs: Vec<QciDesign> = Preset::ALL.iter().map(|p| p.design()).collect();
    designs.push(QciDesign::Sfq(SfqConfig {
        sharing: qisim::microarch::sfq::JpmSharing::SharedNaive,
        ..SfqConfig::baseline_rsfq()
    }));
    designs.push(QciDesign::CryoCmos(CryoCmosConfig {
        drive_fdm: 32,
        readout_ns: qisim::microarch::cryo_cmos::READOUT_NS,
        ..CryoCmosConfig::long_term()
    }));
    designs.push(QciDesign::CryoCmos(CryoCmosConfig {
        masked_isa: true,
        ..CryoCmosConfig::baseline()
    }));
    designs
}

#[test]
fn staged_path_is_bit_identical_to_the_legacy_pipeline() {
    for target in [Target::near_term(), Target::long_term()] {
        for design in paper_designs() {
            let legacy = legacy_analyze_on(&design, &target, &Fridge::standard());
            let staged = engine::try_analyze(&design, &target).expect("paper design");
            assert_eq!(staged, legacy, "{} vs {}", staged.design, target.name);
            // The infallible wrapper is the same staged path.
            assert_eq!(scalability::analyze(&design, &target), legacy);
        }
    }
}

#[test]
fn staged_path_matches_legacy_on_custom_fridges() {
    let fridges = [
        Fridge::standard().with_budget(Stage::K4, 6.0),
        Fridge::standard().with_budget(Stage::Mk20, 1e-2),
    ];
    let t = Target::near_term();
    for fridge in &fridges {
        for design in [QciDesign::cmos_baseline(), QciDesign::rsfq_baseline()] {
            let legacy = legacy_analyze_on(&design, &t, fridge);
            let staged = engine::try_analyze_on(&design, &t, fridge).expect("paper design");
            assert_eq!(staged, legacy);
        }
    }
}

#[test]
fn try_sweep_matches_the_infallible_sweep() {
    let counts = [64u64, 256, 1024, 4096];
    for design in [QciDesign::cmos_baseline(), QciDesign::rsfq_near_term()] {
        let legacy = scalability::sweep(&design, &counts);
        let fallible = engine::try_sweep(&design, &counts).expect("valid sweep");
        assert_eq!(fallible, legacy);
    }
}

#[test]
fn try_analyze_many_matches_serial_try_analyze() {
    let t = Target::near_term();
    let designs = paper_designs();
    let many = engine::try_analyze_many(&designs, &t).expect("paper designs");
    let serial: Vec<_> =
        designs.iter().map(|d| engine::try_analyze(d, &t).expect("paper design")).collect();
    assert_eq!(many, serial);
}

#[test]
fn plan_exposes_every_intermediate_artifact() {
    let mut plan =
        AnalysisPlan::new(&QciDesign::cmos_baseline(), &Target::near_term()).expect("valid");
    assert_eq!(plan.next_stage(), Some(PlanStage::Inventory));
    let mut ran = Vec::new();
    while let Some(stage) = plan.run_next().expect("paper design") {
        ran.push(stage);
    }
    assert_eq!(ran, PlanStage::ALL);
    let arch = plan.inventory().expect("inventory artifact");
    assert!(!arch.components.is_empty());
    let schedule = plan.schedule().expect("schedule artifact");
    assert!(schedule.cycle_ns > 0.0);
    let power = plan.stage_powers().expect("power artifact");
    assert_eq!(power.stages.len(), Stage::ALL.len());
    let verdict = plan.verdict().expect("verdict").clone();
    assert_eq!(
        verdict,
        legacy_analyze_on(&QciDesign::cmos_baseline(), &Target::near_term(), &Fridge::standard())
    );
}

/// Every invalid spec knob yields its documented [`QisimError`] variant
/// — never a panic, never a wrong variant.
#[test]
fn invalid_spec_knobs_map_to_their_variants() {
    let t = Target::near_term();
    let config = |spec: &DesignSpec| match engine::try_analyze_spec(spec, &t) {
        Err(QisimError::Config(e)) => e,
        other => panic!("expected a config error, got {other:?}"),
    };
    // FDM degree 0 (would divide by zero in the ESM profile).
    let e = config(&DesignSpec::new(Preset::CmosBaseline).drive_fdm(0));
    assert!(matches!(e, ConfigError::OutOfRange { knob: "drive_fdm", value: 0, .. }), "{e:?}");
    // DAC precision past the calibrated sweep.
    let e = config(&DesignSpec::new(Preset::CmosBaseline).drive_bits(17));
    assert!(matches!(e, ConfigError::OutOfRange { knob: "drive_bits", value: 17, .. }), "{e:?}");
    // SFQ broadcast parallelism out of range.
    let e = config(&DesignSpec::new(Preset::RsfqBaseline).bs(0));
    assert!(matches!(e, ConfigError::OutOfRange { knob: "bs", .. }), "{e:?}");
    // Negative fridge budget.
    let e = config(&DesignSpec::new(Preset::CmosBaseline).budget(Stage::K4, -2.5));
    assert!(matches!(e, ConfigError::Budget { stage: Stage::K4, .. }), "{e:?}");
    // Empty design name.
    let e = config(&DesignSpec::new(Preset::CmosBaseline).name(""));
    assert!(matches!(e, ConfigError::EmptyName), "{e:?}");
    // Technology mismatch: an SFQ knob on a CMOS preset.
    let e = config(&DesignSpec::new(Preset::CmosBaseline).bs(1));
    assert!(matches!(e, ConfigError::KnobMismatch { knob: "bs", .. }), "{e:?}");
    // Non-finite analog knob.
    let e = config(&DesignSpec::new(Preset::CmosBaseline).readout_ns(f64::NAN));
    assert!(matches!(e, ConfigError::NotPositive { knob: "readout_ns", .. }), "{e:?}");
}

#[test]
fn invalid_raw_designs_and_targets_are_typed() {
    let t = Target::near_term();
    let bad = QciDesign::CryoCmos(CryoCmosConfig { drive_fdm: 0, ..CryoCmosConfig::baseline() });
    assert!(matches!(
        engine::try_analyze(&bad, &t),
        Err(QisimError::Config(ConfigError::OutOfRange { knob: "drive_fdm", .. }))
    ));
    assert!(matches!(
        engine::try_sweep(&bad, &[64]),
        Err(QisimError::Config(ConfigError::OutOfRange { .. }))
    ));
    // One bad design poisons an analyze_many batch with the same error.
    assert!(matches!(
        engine::try_analyze_many(&[QciDesign::cmos_baseline(), bad], &t),
        Err(QisimError::Config(_))
    ));
    // A zero qubit count is the power model's typed refusal.
    assert!(matches!(
        engine::try_sweep(&QciDesign::cmos_baseline(), &[0]),
        Err(QisimError::Power(PowerError::NoQubits))
    ));
    // Malformed targets.
    let mut t0 = Target::near_term();
    t0.logical_ops = f64::INFINITY;
    assert!(matches!(
        engine::try_analyze(&QciDesign::cmos_baseline(), &t0),
        Err(QisimError::Target(TargetError::InvalidOps { .. }))
    ));
    let mut t0 = Target::near_term();
    t0.logical_qubits = 0;
    assert!(matches!(
        engine::try_analyze(&QciDesign::cmos_baseline(), &t0),
        Err(QisimError::Target(TargetError::NoLogicalQubits))
    ));
}

#[test]
fn errors_render_and_chain_like_std_errors() {
    use std::error::Error as _;
    let err = engine::try_sweep(&QciDesign::cmos_baseline(), &[0]).expect_err("zero count");
    assert_eq!(err.to_string(), "power model: need at least one qubit");
    let source = err.source().expect("source-chained to qisim-power");
    assert_eq!(source.to_string(), "need at least one qubit");
}

/// A seeded randomized grid of near-valid knob combinations: every
/// `try_analyze_spec` call must return `Ok` or a typed error — this test
/// would abort on any panic escaping the engine. (The `proptest` feature
/// gates a heavier generative version of the same property.)
#[test]
fn randomized_near_valid_knob_grid_never_panics() {
    let mut rng = Xorshift64Star::seed_from_u64(0x5157_5349_4d21);
    let t = Target::near_term();
    let mut oks = 0usize;
    let mut errs = 0usize;
    for _ in 0..200 {
        let preset = Preset::ALL[(rng.next_u64() % 9) as usize];
        let mut spec = DesignSpec::new(preset);
        // Knob values straddle the validated boundaries (0..=2 around
        // each limit), mixed across technologies to exercise mismatches.
        if rng.gen_f64() < 0.5 {
            spec = spec.drive_fdm((rng.next_u64() % 68) as u32);
        }
        if rng.gen_f64() < 0.5 {
            spec = spec.drive_bits((rng.next_u64() % 19) as u32);
        }
        if rng.gen_f64() < 0.3 {
            spec = spec.bs((rng.next_u64() % 10) as u32);
        }
        if rng.gen_f64() < 0.3 {
            spec = spec.readout_ns((rng.gen_f64() - 0.25) * 4000.0);
        }
        if rng.gen_f64() < 0.3 {
            spec = spec.analog_scale(rng.gen_f64() * 2.0 - 0.5);
        }
        if rng.gen_f64() < 0.3 {
            let stage = Stage::ALL[(rng.next_u64() % 5) as usize];
            spec = spec.budget(stage, rng.gen_f64() * 4.0 - 1.0);
        }
        match engine::try_analyze_spec(&spec, &t) {
            Ok(s) => {
                oks += 1;
                assert!(s.power_limited_qubits >= 1 || !s.error_ok || s.stages.is_empty());
            }
            Err(e) => {
                errs += 1;
                // Every diagnostic renders.
                assert!(!e.to_string().is_empty());
            }
        }
    }
    assert!(oks > 0, "the grid must hit some valid points ({oks} ok / {errs} err)");
    assert!(errs > 0, "the grid must hit some invalid points ({oks} ok / {errs} err)");
}

/// The per-stage watt attribution exposed by the plan equals the
/// verdict's (same memoized probe, not a recomputation).
#[test]
fn plan_power_artifact_backs_the_verdict() {
    let mut plan =
        AnalysisPlan::new(&QciDesign::rsfq_near_term(), &Target::near_term()).expect("valid");
    let verdict = plan.run().expect("paper design");
    let power = plan.stage_powers().expect("power artifact");
    assert_eq!(power.power_limited_qubits, verdict.power_limited_qubits);
    assert_eq!(power.binding_stage, verdict.binding_stage);
    assert_eq!(power.stages, verdict.stages);
    let total: f64 = verdict.stages.iter().map(StagePower::total_w).sum();
    assert!(total > 0.0);
}
