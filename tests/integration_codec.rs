//! Round-trip tests of the zero-dependency text codec: every paper
//! design spec and every analysis verdict must survive
//! `parse(encode(x)) == x` bit-for-bit, so a batch design-space search
//! can ship specs and replay reports through plain text files.

use qisim::codec;
use qisim::engine;
use qisim::error::QisimError;
use qisim::hal::fridge::Stage;
use qisim::microarch::sfq::{BitgenKind, JpmSharing};
use qisim::microarch::DecisionKind;
use qisim::spec::{DesignSpec, Preset};
use qisim::surface::target::Target;
use qisim::Opt;

/// Specs covering all nine presets, the paper's optimized variants, and
/// the name/budget override features.
fn paper_specs() -> Vec<DesignSpec> {
    let mut specs: Vec<DesignSpec> = Preset::ALL.iter().map(|&p| DesignSpec::new(p)).collect();
    // Fig. 13a: CMOS baseline + Opt-1 + Opt-2.
    specs.push(
        DesignSpec::new(Preset::CmosBaseline)
            .apply(Opt::MemorylessDecision)
            .apply(Opt::LowPrecisionDrive),
    );
    // Fig. 13b: RSFQ baseline + Opt-3/4/5.
    specs.push(
        DesignSpec::new(Preset::RsfqBaseline)
            .apply(Opt::SharedPipelinedReadout)
            .apply(Opt::LowPowerBitgen)
            .apply(Opt::SingleBroadcast),
    );
    // Fig. 17a: long-term CMOS + Opt-6 + Opt-7.
    specs.push(
        DesignSpec::new(Preset::CmosLongTerm)
            .apply(Opt::MaskedIsa)
            .apply(Opt::FastMultiRoundReadout),
    );
    // Fig. 17b: ERSFQ + Opt-8.
    specs.push(DesignSpec::new(Preset::ErsfqLongTerm).apply(Opt::FastDrivingUnshared));
    // Every remaining knob and override feature in one spec.
    specs.push(
        DesignSpec::new(Preset::CmosBaseline)
            .name("what-if: big 4K stage")
            .drive_fdm(24)
            .decision(DecisionKind::SinglePoint)
            .readout_ns(437.5)
            .analog_scale(0.25)
            .budget(Stage::K4, 6.0)
            .budget(Stage::Mk20, 0.002),
    );
    specs.push(
        DesignSpec::new(Preset::RsfqBaseline)
            .bitgen(BitgenKind::SplitterShared)
            .sharing(JpmSharing::SharedNaive)
            .fast_driving(false)
            .bs(4),
    );
    specs
}

#[test]
fn every_paper_spec_round_trips_losslessly() {
    for spec in paper_specs() {
        let text = codec::encode_spec(&spec);
        let parsed = codec::parse_spec(&text).unwrap_or_else(|e| {
            panic!("{} failed to parse its own encoding: {e}\n{text}", spec.display_name())
        });
        assert_eq!(parsed, spec, "round-trip mismatch for\n{text}");
        // Round-tripped specs build the same design point.
        assert_eq!(
            parsed.build().map_err(|e| e.to_string()),
            spec.build().map_err(|e| e.to_string())
        );
    }
}

#[test]
fn scalability_reports_round_trip_for_both_targets() {
    for target in [Target::near_term(), Target::long_term()] {
        for preset in Preset::ALL {
            let spec = DesignSpec::new(preset);
            let report = engine::try_analyze_spec(&spec, &target).expect("paper preset");
            let text = codec::encode_scalability(&report);
            let parsed = codec::parse_scalability(&text)
                .unwrap_or_else(|e| panic!("{} report failed to parse: {e}\n{text}", preset.id()));
            // Bit-for-bit: floats ride the shortest round-trip Display.
            assert_eq!(parsed, report, "round-trip mismatch for\n{text}");
        }
    }
}

#[test]
fn spec_files_are_stable_under_reencoding() {
    for spec in paper_specs() {
        let once = codec::encode_spec(&spec);
        let twice = codec::encode_spec(&codec::parse_spec(&once).expect("own encoding"));
        assert_eq!(once, twice, "encoding must be canonical");
    }
}

#[test]
fn hand_written_spec_files_replay_through_the_engine() {
    let text = "# Fig. 13a optimized design on a doubled 4 K budget\n\
                qisim spec v1\n\
                preset = cmos_baseline\n\
                name = opt12 on big fridge\n\
                decision = memoryless\n\
                drive_bits = 6\n\
                budget.4K = 3\n";
    let spec = codec::parse_spec(text).expect("hand-written spec");
    let report = engine::try_analyze_spec(&spec, &Target::near_term()).expect("valid spec");
    assert_eq!(report.design, "opt12 on big fridge");
    // The doubled budget must beat the standard-fridge run.
    let std_spec = codec::parse_spec(
        "qisim spec v1\npreset = cmos_baseline\ndecision = memoryless\ndrive_bits = 6\n",
    )
    .expect("spec");
    let std_report = engine::try_analyze_spec(&std_spec, &Target::near_term()).expect("valid spec");
    assert!(report.power_limited_qubits > std_report.power_limited_qubits);
}

#[test]
fn decode_failures_are_line_anchored_decode_errors() {
    let line_of = |text: &str| match codec::parse_spec(text) {
        Err(QisimError::Decode(e)) => e.line,
        other => panic!("expected a decode error, got {other:?}"),
    };
    assert_eq!(line_of("qisim scalability v1\n"), 1, "wrong header is rejected");
    assert_eq!(line_of("qisim spec v1\npreset = cmos_baseline\nnot a pair\n"), 3);
    assert_eq!(line_of("qisim spec v1\ndrive_bits = 6\n"), 2, "preset must come first");
    assert_eq!(line_of("qisim spec v1\npreset = cmos_baseline\nbudget.3K = 1\n"), 3);
    // Scalability documents are checked the same way.
    assert!(matches!(codec::parse_scalability("qisim spec v1\n"), Err(QisimError::Decode(_))));
    assert!(matches!(
        codec::parse_scalability("qisim scalability v1\ndesign = x\n"),
        Err(QisimError::Decode(_))
    ));
}

/// Regression: empty input and trailing-newline-only input used to
/// anchor at the ambiguous line 0 (a "whole document" diagnostic a user
/// cannot point at in an editor). Both must be typed decode errors
/// anchored at an actual line.
#[test]
fn empty_and_trailing_newline_documents_are_typed_line_anchored_errors() {
    let decode_err = |text: &str| match codec::parse_spec(text) {
        Err(QisimError::Decode(e)) => e,
        other => panic!("expected a decode error for {text:?}, got {other:?}"),
    };
    for text in ["", "\n", "\n\n", "  \n", "# only a comment\n"] {
        let e = decode_err(text);
        assert_eq!(e.line, 1, "empty document {text:?} must anchor at line 1");
        assert!(e.reason.contains("empty document"), "{e}");
    }
    // A header followed only by its trailing newline: the error points
    // at line 2, where the mandatory `preset` key belongs.
    let e = decode_err("qisim spec v1\n");
    assert_eq!(e.line, 2);
    assert!(e.reason.contains("missing key `preset`"), "{e}");
    // Same grammar, same anchoring for report documents.
    match codec::parse_scalability("") {
        Err(QisimError::Decode(e)) => {
            assert_eq!(e.line, 1);
            assert!(e.reason.contains("empty document"), "{e}");
        }
        other => panic!("expected a decode error, got {other:?}"),
    }
}
