//! End-to-end scalability integration: the paper's Section 6 narrative,
//! replayed as assertions.

use qisim::paperdata::scalability as anchors;
use qisim::surface::target::Target;
use qisim::{analyze, apply_all, Opt, QciDesign};

/// Fig. 12 + Fig. 13: every baseline misses the near-term scale, every
/// optimized design reaches it, and the measured maxima track the
/// paper's headline numbers within 2x.
#[test]
fn near_term_story() {
    let t = Target::near_term();
    let within2x = |measured: u64, paper: u64| {
        let r = measured as f64 / paper as f64;
        (0.5..=2.0).contains(&r)
    };

    for (design, paper) in [
        (QciDesign::room_coax(), anchors::ROOM_COAX),
        (QciDesign::room_microstrip(), anchors::ROOM_MICROSTRIP),
        (QciDesign::room_photonic(), anchors::ROOM_PHOTONIC),
        (QciDesign::cmos_baseline(), anchors::CMOS_BASELINE),
        (QciDesign::rsfq_baseline(), anchors::RSFQ_BASELINE),
    ] {
        let s = analyze(&design, &t);
        assert!(!s.reaches(&t), "{}: baseline must miss 1,152", s.design);
        assert!(
            within2x(s.power_limited_qubits, paper),
            "{}: {} vs paper {paper}",
            s.design,
            s.power_limited_qubits
        );
    }

    let cmos =
        apply_all(&QciDesign::cmos_baseline(), &[Opt::MemorylessDecision, Opt::LowPrecisionDrive])
            .unwrap();
    let s = analyze(&cmos, &t);
    assert!(s.reaches(&t));
    assert!(within2x(s.power_limited_qubits, anchors::CMOS_OPTIMIZED));

    let rsfq = QciDesign::rsfq_near_term();
    let s = analyze(&rsfq, &t);
    assert!(s.reaches(&t));
    assert!(within2x(s.power_limited_qubits, anchors::RSFQ_OPTIMIZED));
}

/// Fig. 17: both long-term designs support 62,208 qubits at the
/// 1.69e-17 logical-error target.
#[test]
fn long_term_story() {
    let t = Target::long_term();
    for (design, paper) in [
        (QciDesign::cmos_long_term(), anchors::CMOS_LONG_TERM),
        (QciDesign::ersfq_long_term(), anchors::ERSFQ_LONG_TERM),
    ] {
        let s = analyze(&design, &t);
        assert!(s.reaches(&t), "{}: {:?}", s.design, s);
        let r = s.power_limited_qubits as f64 / paper as f64;
        assert!(
            (0.5..=2.0).contains(&r),
            "{}: {} vs paper {}",
            s.design,
            s.power_limited_qubits,
            paper
        );
    }
}

/// The ordering of manageable scales across all eight designs matches
/// the paper's narrative arc.
#[test]
fn scalability_ordering() {
    let t = Target::near_term();
    let m = |d: QciDesign| analyze(&d, &t).power_limited_qubits;
    let photonic = m(QciDesign::room_photonic());
    let rsfq = m(QciDesign::rsfq_baseline());
    let coax = m(QciDesign::room_coax());
    let ustrip = m(QciDesign::room_microstrip());
    let cmos = m(QciDesign::cmos_baseline());
    let cmos_lt = m(QciDesign::cmos_long_term());
    let ersfq = m(QciDesign::ersfq_long_term());
    assert!(photonic < rsfq, "photonic {photonic} vs rsfq {rsfq}");
    assert!(rsfq < coax, "rsfq {rsfq} vs coax {coax}");
    assert!(coax < ustrip, "coax {coax} vs microstrip {ustrip}");
    assert!(ustrip < cmos * 2, "microstrip {ustrip} vs cmos {cmos}");
    assert!(cmos < cmos_lt, "cmos {cmos} vs long-term {cmos_lt}");
    assert!(cmos_lt < ersfq * 2, "cmos_lt {cmos_lt} vs ersfq {ersfq}");
}

/// Optimizations never hurt: applying each applicable optimization never
/// reduces the power-limited scale nor raises the logical error.
#[test]
fn optimizations_are_never_harmful() {
    let t = Target::near_term();
    let cases: [(QciDesign, &[Opt]); 2] = [
        (
            QciDesign::cmos_baseline(),
            &[Opt::MemorylessDecision, Opt::LowPrecisionDrive, Opt::MaskedIsa],
        ),
        (
            QciDesign::rsfq_baseline(),
            &[Opt::SharedPipelinedReadout, Opt::LowPowerBitgen, Opt::SingleBroadcast],
        ),
    ];
    for (base, opts) in cases {
        let mut current = base;
        let mut last_power = analyze(&current, &t).power_limited_qubits;
        for &o in opts {
            current = qisim::apply(&current, o).unwrap();
            let s = analyze(&current, &t);
            // Opt-3 trades logical error for power; power must still
            // improve or hold.
            assert!(
                s.power_limited_qubits + 1 >= last_power,
                "{o}: power regressed {} -> {}",
                last_power,
                s.power_limited_qubits
            );
            last_power = s.power_limited_qubits;
        }
    }
}

/// §7.1 what-if: future refrigerators with bigger budgets scale every
/// design further (the tool's forward-compatibility claim).
#[test]
fn future_fridge_what_if() {
    use qisim::hal::fridge::{Fridge, Stage};
    let t = Target::near_term();
    let future = Fridge::standard()
        .with_budget(Stage::K4, 10.0)
        .with_budget(Stage::Mk100, 2e-3)
        .with_budget(Stage::Mk20, 2e-4);
    for d in [QciDesign::room_coax(), QciDesign::cmos_baseline(), QciDesign::rsfq_baseline()] {
        let now = analyze(&d, &t).power_limited_qubits;
        let then = qisim::analyze_on(&d, &t, &future).power_limited_qubits;
        assert!(then as f64 >= 5.0 * now as f64, "{}: {now} -> {then}", d.name());
    }
}
