//! Integration tests for the flight recorder: a traced two-thread sweep
//! must export a valid Chrome `trace_event` timeline with per-worker
//! lanes, and arming the recorder must never perturb the science.

use qisim::obs::{self, trace, trace_export};
use qisim::par;
use qisim::surface::target::Target;
use qisim::{analyze, sweep, QciDesign};
use std::sync::Mutex;

/// The recorder and registry are process-global; tests that arm, drain,
/// or toggle them must not interleave.
static OBS_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

const SWEEP_COUNTS: [u64; 6] = [64, 128, 256, 512, 1024, 2048];

#[test]
fn traced_two_thread_sweep_exports_valid_chrome_json() {
    let _l = lock();
    obs::set_enabled(true);
    obs::reset();
    par::set_threads(Some(2));
    trace::arm();
    trace::clear();
    let points = sweep(&QciDesign::cmos_baseline(), &SWEEP_COUNTS);
    let session = trace::TraceSession::drain();
    trace::disarm();
    par::set_threads(None);
    assert_eq!(points.len(), SWEEP_COUNTS.len());

    if !obs::enabled() {
        // Kill-switch build (--no-default-features): the recorder is
        // inert and the exporters must degrade to an empty, well-formed
        // timeline.
        assert!(session.is_empty());
        assert!(obs::trace_is_well_formed(&trace_export::chrome_trace_json(&session)));
        return;
    }

    // Timestamps are non-decreasing within every lane.
    for t in &session.threads {
        assert!(
            t.events.windows(2).all(|w| w[0].t_ns <= w[1].t_ns),
            "lane {} ({}) timestamps not monotonic",
            t.lane,
            t.label
        );
    }

    // Every sweep point produced its instant, with the qubit count.
    let point_events: Vec<_> = session
        .threads
        .iter()
        .flat_map(|t| &t.events)
        .filter(|e| e.name == "scalability.sweep.point")
        .collect();
    assert_eq!(point_events.len(), SWEEP_COUNTS.len());
    let mut seen: Vec<u64> =
        point_events.iter().map(|e| e.args[0].expect("qubits arg").1 as u64).collect();
    seen.sort_unstable();
    assert_eq!(seen, SWEEP_COUNTS);

    if par::is_parallel_build() {
        // Two workers ran, so the session has at least two lanes and the
        // worker lanes carry their pool labels.
        assert!(session.threads.len() >= 2, "lanes: {:?}", session.threads.len());
        assert!(
            session.threads.iter().any(|t| t.label.starts_with("qisim-par worker-")),
            "worker lanes must be labeled"
        );
        // Chunk-dispatch instants carry worker id, chunk index, and
        // queue-to-start latency.
        let dispatch = session
            .threads
            .iter()
            .flat_map(|t| &t.events)
            .find(|e| e.name == "par.chunk.dispatch")
            .expect("dispatch event recorded");
        assert_eq!(dispatch.args[0].map(|a| a.0), Some("worker"));
        assert_eq!(dispatch.args[1].map(|a| a.0), Some("chunk"));
        assert_eq!(dispatch.args[2].map(|a| a.0), Some("queue_ns"));
    }

    // The Chrome export is well-formed, balanced, and labeled.
    let json = trace_export::chrome_trace_json(&session);
    assert!(obs::trace_is_well_formed(&json), "{json}");
    assert_eq!(
        json.matches("\"ph\":\"B\"").count(),
        json.matches("\"ph\":\"E\"").count(),
        "begin/end events must balance"
    );
    assert!(json.contains("thread_name"), "lane metadata missing");
    assert!(json.contains("scalability.sweep"), "sweep span missing from export");

    // The folded stacks are flamegraph.pl-shaped: `path weight` lines.
    let folded = trace_export::folded_stacks(&session);
    assert!(!folded.is_empty());
    for line in folded.lines() {
        let weight = line.rsplit(' ').next().expect("weight column");
        assert!(weight.parse::<u64>().is_ok(), "bad folded line: {line}");
    }
    obs::reset();
}

#[test]
fn results_are_bit_identical_with_tracing_armed_disarmed_and_disabled() {
    let _l = lock();
    obs::set_enabled(true);
    obs::reset();
    let design = QciDesign::cmos_baseline();
    let target = Target::near_term();

    trace::arm();
    trace::clear();
    let armed_verdict = analyze(&design, &target);
    let armed_sweep = sweep(&design, &SWEEP_COUNTS);
    trace::clear();
    trace::disarm();

    let disarmed_verdict = analyze(&design, &target);
    let disarmed_sweep = sweep(&design, &SWEEP_COUNTS);
    assert_eq!(armed_verdict, disarmed_verdict, "arming the recorder changed the verdict");
    assert_eq!(armed_sweep, disarmed_sweep, "arming the recorder changed the sweep");

    // Recording disabled entirely (and, in the --no-default-features
    // build where arm() above was already a no-op, compiled out): the
    // numbers still cannot move.
    obs::set_enabled(false);
    let off_verdict = analyze(&design, &target);
    let off_sweep = sweep(&design, &SWEEP_COUNTS);
    obs::set_enabled(true);
    assert_eq!(armed_verdict, off_verdict);
    assert_eq!(armed_sweep, off_sweep);
    obs::reset();
}

#[test]
fn drained_rings_stay_reusable_across_runs() {
    let _l = lock();
    obs::set_enabled(true);
    obs::reset();
    trace::arm();
    trace::clear();
    let _ = analyze(&QciDesign::cmos_baseline(), &Target::near_term());
    let first = trace::TraceSession::drain();
    let _ = analyze(&QciDesign::cmos_baseline(), &Target::near_term());
    let second = trace::TraceSession::drain();
    trace::disarm();
    if !obs::enabled() {
        assert!(first.is_empty() && second.is_empty());
        return;
    }
    assert!(first.event_count() > 0, "first run recorded");
    assert!(second.event_count() > 0, "rings kept recording after a drain");
    obs::reset();
}
