//! Integration tests for the live-telemetry layer at the facade level:
//! delta snapshots over real workloads, the OpenMetrics exposition, the
//! periodic exporter round trip, and the bounded power memo cache's
//! bit-identity contract under thrash.

use qisim::obs::{self, telemetry};
use qisim::surface::target::Target;
use qisim::{analyze, sweep, QciDesign};
use std::sync::Mutex;

/// The metrics registry, the exporter singleton, and the power memo
/// cache are all process-global; tests touching them must not
/// interleave.
static TELEMETRY_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    TELEMETRY_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn delta_snapshots_isolate_the_second_interval() {
    let _l = lock();
    obs::set_enabled(true);
    obs::reset();
    if !obs::enabled() {
        // Compiled with --no-default-features: snapshots stay empty and
        // deltas of empty snapshots are empty.
        let empty = obs::snapshot().delta_since(&obs::snapshot());
        assert!(empty.is_empty());
        return;
    }
    let _ = sweep(&QciDesign::cmos_baseline(), &[64, 128, 256]);
    let first = obs::snapshot();
    let _ = sweep(&QciDesign::cmos_baseline(), &[512, 1024]);
    let second = obs::snapshot();

    let delta = second.delta_since(&first);
    // Lifetime counter says 5 points; the interval delta says 2.
    assert_eq!(second.counter("scalability.sweep.points"), Some(5));
    assert_eq!(delta.counter("scalability.sweep.points"), Some(2));
    // Interval timestamps are monotone and the delta carries the
    // interval's end stamp.
    assert!(second.at_ns >= first.at_ns);
    assert_eq!(delta.at_ns, second.at_ns);
    // Delta of identical snapshots is all-zero for every series.
    let idle = second.delta_since(&second);
    assert_eq!(idle.counter("scalability.sweep.points"), Some(0));
    obs::reset();
}

#[test]
fn openmetrics_export_of_a_live_run_validates() {
    let _l = lock();
    obs::set_enabled(true);
    obs::reset();
    let verdict = analyze(&QciDesign::cmos_baseline(), &Target::near_term());
    assert!(verdict.power_limited_qubits > 0);
    let snap = obs::snapshot();
    let text = obs::openmetrics(&snap);
    assert!(obs::openmetrics_is_well_formed(&text), "{text}");
    assert!(text.ends_with("# EOF\n"));
    if !obs::enabled() {
        return;
    }
    // Counter, histogram, and span families all made it out, with
    // sanitized names.
    assert!(text.contains("# TYPE power_cache_misses counter"));
    assert!(text.contains("power_bisection_iters_total"));
    assert!(text.contains("scalability_analyze_duration_ns_bucket"));
    assert!(text.contains("le=\"+Inf\""));
    obs::reset();
}

#[test]
fn programmatic_exporter_round_trip_writes_interval_deltas() {
    let _l = lock();
    obs::set_enabled(true);
    obs::reset();
    let path = std::env::temp_dir().join(format!("qisim_it_metrics_{}.om", std::process::id()));
    // A huge interval so every write on disk is flush- or
    // shutdown-driven — no timing dependence.
    let started = telemetry::start(&path, std::time::Duration::from_secs(3600));
    if !obs::enabled() {
        assert!(!started, "exporter must refuse to start when compiled out");
        assert!(telemetry::shutdown().is_none());
        return;
    }
    assert!(started, "exporter failed to start");
    assert!(telemetry::armed());

    let _ = analyze(&QciDesign::rsfq_near_term(), &Target::near_term());
    assert!(telemetry::flush_now());
    let text = std::fs::read_to_string(&path).expect("exposition after flush");
    assert!(obs::openmetrics_is_well_formed(&text), "{text}");
    assert!(text.contains("telemetry_ticks_total"));
    assert!(text.contains("power_cache_misses_total"));

    let returned = telemetry::shutdown().expect("shutdown returns the path");
    assert_eq!(returned, path);
    assert!(!telemetry::armed());
    // The final (shutdown-driven) write is still well-formed, and the
    // atomic-rename protocol left no temp file behind.
    let final_text = std::fs::read_to_string(&path).expect("exposition after shutdown");
    assert!(obs::openmetrics_is_well_formed(&final_text), "{final_text}");
    assert!(!path.with_extension("om.tmp").exists());
    let _ = std::fs::remove_file(&path);
    obs::reset();
}

#[test]
fn delta_across_a_registry_reset_reports_the_full_current_values() {
    let _l = lock();
    obs::set_enabled(true);
    obs::reset();
    if !obs::enabled() {
        return;
    }
    // A big first interval, then a reset, then a smaller second one: the
    // current counter is *lower* than the previous snapshot's, which an
    // exporter must read as "everything restarted — the whole current
    // value is new", never as a negative (or wrapped) increment.
    for counts in [[64u64, 128], [256, 512], [1024, 2048]] {
        let _ = sweep(&QciDesign::cmos_baseline(), &counts);
    }
    let before_reset = obs::snapshot();
    let tall = before_reset.counter("scalability.sweep.points").expect("first interval counted");
    assert_eq!(tall, 6);
    obs::reset();
    for counts in [[96u64, 192], [384, 768]] {
        let _ = sweep(&QciDesign::cmos_baseline(), &counts);
    }
    let after_reset = obs::snapshot();

    let delta = after_reset.delta_since(&before_reset);
    assert_eq!(after_reset.counter("scalability.sweep.points"), Some(4));
    assert_eq!(
        delta.counter("scalability.sweep.points"),
        Some(4),
        "a shrunken counter means a reset: the delta is the full current value"
    );
    // Three sweep spans before the reset, two after: the shrunken count
    // routes the span diff through the same everything-is-new rule.
    let spans = delta.span("scalability.sweep").expect("sweep span survives the diff");
    assert_eq!(spans.count, 2, "span stats follow the same reset rule");
    // And the delta still exports cleanly.
    assert!(obs::openmetrics_is_well_formed(&obs::openmetrics(&delta)));
    obs::reset();
}

#[test]
fn exporter_shutdown_flushes_the_final_partial_interval() {
    let _l = lock();
    obs::set_enabled(true);
    obs::reset();
    let path = std::env::temp_dir().join(format!("qisim_it_final_{}.om", std::process::id()));
    let _ = std::fs::remove_file(&path);
    // Interval far beyond the test's lifetime: nothing lands on disk on
    // a timer tick, so whatever the file holds after shutdown() came
    // from the final flush of the still-open partial interval.
    let started = telemetry::start(&path, std::time::Duration::from_secs(3600));
    if !obs::enabled() {
        assert!(!started);
        return;
    }
    assert!(started, "exporter failed to start");
    let _ = sweep(&QciDesign::cmos_baseline(), &[64, 128]);
    let returned = telemetry::shutdown().expect("shutdown returns the path");
    assert_eq!(returned, path);

    let text = std::fs::read_to_string(&path).expect("shutdown must leave a final exposition");
    assert!(obs::openmetrics_is_well_formed(&text), "{text}");
    // The sweep ran entirely inside the never-flushed interval, so its
    // series can only be present if shutdown exported the partial delta.
    assert!(
        text.contains("scalability_sweep_points_total 2"),
        "final flush must carry the partial interval's work:\n{text}"
    );
    assert!(!path.with_extension("om.tmp").exists(), "atomic-rename left a temp file");
    let _ = std::fs::remove_file(&path);
    obs::reset();
}

/// The ISSUE acceptance check: at `QISIM_MEMO_CAP=8` (installed here via
/// the runtime override) a 200-point sweep must evict, stay within
/// bounds, and produce bit-identical results to the unbounded cache.
#[test]
fn bounded_memo_cache_thrash_is_bit_identical() {
    let _l = lock();
    let counts: Vec<u64> = (1..=200u64).map(|i| 8 * i).collect();

    qisim::power::set_cache_cap(Some(8));
    qisim::power::clear_cache();
    let bounded = sweep(&QciDesign::cmos_baseline(), &counts);
    let stats = qisim::power::cache_stats();
    assert!(stats.evictions > 0, "200 distinct points at cap 8 must evict: {stats:?}");
    assert!(qisim::power::cache_len() <= 8, "cache exceeded its cap");

    qisim::power::set_cache_cap(None);
    qisim::power::clear_cache();
    let unbounded = sweep(&QciDesign::cmos_baseline(), &counts);
    assert_eq!(bounded, unbounded, "cache bounding changed the science");
    qisim::power::clear_cache();
}
