//! Cross-crate pipeline integration: QASM → cycle-accurate timing →
//! workload fidelity, and microarchitecture → power report — the full
//! Fig. 6 flow exercised end to end.

use qisim::cyclesim::{qasm, simulate, workloads, TimingModel};
use qisim::errormodel::workload::{seeded_rng, ErrorRates, WorkloadSim};
use qisim::hal::fridge::{Fridge, Stage};
use qisim::microarch::sfq::ReadoutSchedule;
use qisim::power::evaluate;
use qisim::QciDesign;

#[test]
fn qasm_to_fidelity_pipeline() {
    let source = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[4];\ncreg c[4];\n\
                  h q[0];\ncx q[0],q[1];\ncx q[1],q[2];\ncx q[2],q[3];\n\
                  rz(pi/4) q[3];\nmeasure q[0] -> c[0];\nmeasure q[1] -> c[1];\n\
                  measure q[2] -> c[2];\nmeasure q[3] -> c[3];";
    let circuit = qasm::parse(source).expect("valid qasm");
    let timeline = simulate(&circuit, &TimingModel::cmos_baseline());
    assert!(timeline.makespan_ns() > 517.0);

    let sim = WorkloadSim { rates: ErrorRates::cmos_table2(), trajectories: 150 };
    let f = sim.fidelity(&circuit, &timeline, &mut seeded_rng(5));
    assert!(f > 0.9 && f <= 1.0, "pipeline fidelity {f}");
}

#[test]
fn esm_timing_feeds_the_power_model_consistently() {
    // The microarch duty profile and the cycle-accurate simulation must
    // tell the same story about the ESM round.
    let design = QciDesign::cmos_baseline();
    let profile_cycle = design.esm_cycle_ns();
    let patch = workloads::Patch::new(23);
    let timeline = simulate(&patch.esm_circuit(1), &TimingModel::cmos_baseline());
    // The simulated round is shorter (boundary ancillas thin out the FDM
    // groups) but within 2x of the profile's nominal peak.
    assert!(
        timeline.makespan_ns() <= profile_cycle * 1.05,
        "sim {} vs profile {}",
        timeline.makespan_ns(),
        profile_cycle
    );
    assert!(timeline.makespan_ns() >= profile_cycle * 0.5);

    // Activity factors land in the same regime the inventory assumes.
    let act = timeline.activity();
    let esm = design.esm_profile();
    assert!((act.readout_duty - esm.readout_bank_duty()).abs() < 0.25);
    assert!(act.cz_duty < 2.0 * esm.cz_duty());
}

#[test]
fn sfq_readout_schedules_propagate_to_cycle_times() {
    let patch = workloads::Patch::new(5);
    let circuit = patch.esm_circuit(1);
    let base = simulate(&circuit, &TimingModel::sfq(1, ReadoutSchedule::baseline()));
    let opt3 = simulate(&circuit, &TimingModel::sfq(1, ReadoutSchedule::opt3()));
    let opt8 = simulate(&circuit, &TimingModel::sfq(1, ReadoutSchedule::opt8()));
    assert!(opt8.makespan_ns() < base.makespan_ns());
    assert!(base.makespan_ns() < opt3.makespan_ns());
}

#[test]
fn power_reports_are_complete_for_every_design() {
    let fridge = Fridge::standard();
    for design in [
        QciDesign::room_coax(),
        QciDesign::room_photonic(),
        QciDesign::cmos_baseline(),
        QciDesign::rsfq_baseline(),
        QciDesign::ersfq_long_term(),
    ] {
        let report = evaluate(&design.arch(), &fridge, 256);
        assert_eq!(report.stages.len(), 5, "{}", design.name());
        let total: f64 = report.stages.iter().map(|s| s.total_w()).sum();
        assert!(total > 0.0, "{} reports zero power", design.name());
        // The mK stages never see instruction-link heat.
        assert_eq!(report.stage(Stage::Mk20).unwrap().instr_link_w, 0.0);
    }
}
