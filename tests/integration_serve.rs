//! End-to-end tests of the `qisim-serve` batch analysis service: the
//! stdin/stdout framing round-trips every paper preset bit-identically
//! to a direct engine call, malformed requests become typed errors with
//! the service still alive, concurrent TCP clients get the same bytes a
//! direct `try_analyze_spec` produces, and a saturated queue sheds with
//! an observable `busy` response instead of queueing without bound.

use qisim::codec;
use qisim::engine;
use qisim::spec::Preset;
use qisim::surface::target::Target;
use qisim_serve::{proto, serve_lines, ServeConfig, Server};
use std::io::{BufRead, BufReader, Cursor, Write};
use std::net::TcpStream;
use std::sync::Mutex;
use std::time::Duration;

/// Serializes tests: service counters, the flight recorder, and the
/// `qisim-obs` registry are process-global.
static SERVE_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    SERVE_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// The response line the service must produce for a request line —
/// computed through the direct, single-spec engine path. Carries no
/// server-assigned `request_id`; compare against
/// [`proto::strip_request_id`]-ed service output.
fn expected_response(line: &str) -> String {
    let request = proto::parse_request_line(line).expect("well-formed request");
    let verdict = engine::try_analyze_spec(&request.spec, &request.target.target())
        .expect("analyzable request");
    proto::ok_response(None, request.id.as_deref(), &[], &verdict)
}

/// Strips the server-assigned `request_id` pair from every response line
/// of a multi-line service output.
fn strip_ids(output: &str) -> String {
    output.lines().map(|line| proto::strip_request_id(line) + "\n").collect()
}

#[test]
fn stdio_round_trips_every_paper_preset_bit_identically() {
    let _guard = lock();
    let mut input = String::new();
    let mut expected = String::new();
    for target in ["near_term", "long_term"] {
        for preset in Preset::ALL {
            let line = format!("target = {target}; preset = {}", preset.id());
            expected.push_str(&expected_response(&line));
            input.push_str(&line);
            input.push('\n');
        }
    }
    let mut output = Vec::new();
    let stats = serve_lines(Cursor::new(input), &mut output, &ServeConfig::default())
        .expect("stdio transport");
    let output = String::from_utf8(output).expect("utf-8 responses");
    assert_eq!(
        strip_ids(&output),
        expected,
        "served responses must be bit-identical to direct analysis"
    );
    assert_eq!(stats.requests, 2 * Preset::ALL.len() as u64);
    assert_eq!(stats.ok, stats.requests);
    assert_eq!(stats.errors, 0);
    // Every response carries the server-assigned request id, in accept
    // order (the stdio framing numbers lines 1..=N).
    let ids: Vec<Option<u64>> = output.lines().map(proto::response_request_id).collect();
    let want: Vec<Option<u64>> = (1..=stats.requests).map(Some).collect();
    assert_eq!(ids, want, "request ids must be present and sequential");
    // And the folded report unfolds back into a parseable document
    // matching the direct verdict.
    let first = output.lines().next().expect("at least one response");
    let report = proto::response_report(first).expect("ok response carries a report");
    let direct = engine::try_analyze_spec(
        &qisim::spec::DesignSpec::new(Preset::ALL[0]),
        &Target::near_term(),
    )
    .expect("preset");
    assert_eq!(codec::parse_scalability(&report).expect("unfolded report"), direct);
}

#[test]
fn estimator_requests_round_trip_each_engine_bit_identically() {
    let _guard = lock();
    // One round trip per estimator value, each bit-identical to the
    // direct try_analyze_spec path (the Monte-Carlo estimators bypass
    // the grouped try_analyze_many fan-out inside the service).
    let mut input = String::new();
    let mut expected = String::new();
    for estimator in ["packed", "sliced", "rare"] {
        let line = format!("id = {estimator}; preset = cmos_baseline; estimator = {estimator}");
        expected.push_str(&expected_response(&line));
        input.push_str(&line);
        input.push('\n');
    }
    let mut output = Vec::new();
    let stats = serve_lines(Cursor::new(input), &mut output, &ServeConfig::default())
        .expect("stdio transport");
    let output = String::from_utf8(output).expect("utf-8 responses");
    assert_eq!(strip_ids(&output), expected, "estimator responses must match direct analysis");
    assert_eq!(stats.ok, 3);
    assert_eq!(stats.errors, 0);
    // The three estimators genuinely diverge on the logical-error line:
    // the analytic fit, the finite sliced batch, and the splitting
    // ladder each report their own number.
    let errors: Vec<&str> = output
        .lines()
        .map(|l| proto::pair_value(l, "logical_error").expect("logical_error pair"))
        .collect();
    assert_eq!(errors.len(), 3);
    assert_ne!(errors[0], errors[1], "packed vs sliced: {errors:?}");
    assert_ne!(errors[0], errors[2], "packed vs rare: {errors:?}");
    // An unknown estimator is a typed decode error, not a dead service.
    let mut output = Vec::new();
    let stats = serve_lines(
        Cursor::new("id = bad; preset = cmos_baseline; estimator = bogus\n"),
        &mut output,
        &ServeConfig::default(),
    )
    .expect("stdio transport");
    let response = String::from_utf8(output).expect("utf-8");
    assert_eq!(proto::response_kind(&response), Some(proto::ResponseKind::Error));
    assert_eq!(proto::pair_value(&response, "error"), Some("decode"));
    assert_eq!(proto::pair_value(&response, "id"), Some("bad"));
    assert!(
        proto::pair_value(&response, "reason")
            .is_some_and(|r| r.contains("unknown estimator `bogus`")),
        "{response}"
    );
    assert_eq!(stats.errors, 1);
}

#[test]
fn malformed_requests_get_typed_errors_and_the_service_survives() {
    let _guard = lock();
    // (request line, expected error kind, reason needle)
    let cases = [
        ("", "decode", "empty request line"),
        ("preset = warp_drive", "decode", "unknown preset"),
        ("drive_bits = 6", "decode", "preset"),
        ("target = mars; preset = cmos_baseline", "decode", "unknown target"),
        ("preset = cmos_baseline; what even", "decode", "key = value"),
        ("preset = cmos_baseline; drive_fdm = 0", "config", "drive_fdm"),
        ("id = 9; preset = cmos_baseline; budget.4K = -1", "config", "budget"),
    ];
    let mut input = String::new();
    for (line, _, _) in &cases {
        input.push_str(line);
        input.push('\n');
    }
    // The service must still answer a good request after every failure.
    input.push_str("id = alive; preset = cmos_baseline\n");
    let mut output = Vec::new();
    let stats = serve_lines(Cursor::new(input), &mut output, &ServeConfig::default())
        .expect("stdio transport");
    let output = String::from_utf8(output).expect("utf-8 responses");
    let responses: Vec<&str> = output.lines().collect();
    assert_eq!(responses.len(), cases.len() + 1, "one response per request\n{output}");
    for ((line, kind, needle), response) in cases.iter().zip(&responses) {
        assert_eq!(
            proto::response_kind(response),
            Some(proto::ResponseKind::Error),
            "{line:?} -> {response}"
        );
        assert_eq!(proto::pair_value(response, "error"), Some(*kind), "{line:?} -> {response}");
        let reason = proto::pair_value(response, "reason").expect("reason pair");
        assert!(reason.contains(needle), "{line:?} -> {response}");
    }
    // The id = 9 error response still echoes the client token.
    assert_eq!(proto::pair_value(responses[6], "id"), Some("9"));
    let last = responses.last().expect("final response");
    assert_eq!(proto::response_kind(last), Some(proto::ResponseKind::Ok));
    assert_eq!(proto::pair_value(last, "id"), Some("alive"));
    assert_eq!(stats.errors, cases.len() as u64);
    assert_eq!(stats.ok, 1);
}

#[test]
fn concurrent_tcp_clients_get_bit_identical_ordered_responses() {
    let _guard = lock();
    let server =
        Server::bind("127.0.0.1:0", ServeConfig::default()).expect("bind an OS-assigned port");
    let addr = server.addr();
    let preset_ids: Vec<&str> = Preset::ALL.iter().map(|p| p.id()).collect();
    let mut clients = Vec::new();
    for client in 0..4 {
        let preset_ids = preset_ids.clone();
        clients.push(std::thread::spawn(move || {
            let stream = TcpStream::connect(addr).expect("connect");
            let mut writer = stream.try_clone().expect("clone stream");
            let mut reader = BufReader::new(stream);
            // Pipeline everything, then read everything: responses must
            // come back in request order with matching ids.
            let lines: Vec<String> = (0..24)
                .map(|i| {
                    let preset = preset_ids[(client + i) % preset_ids.len()];
                    let target = if i % 3 == 0 { "target = long_term; " } else { "" };
                    format!("id = c{client}-{i}; {target}preset = {preset}")
                })
                .collect();
            for line in &lines {
                writeln!(writer, "{line}").expect("send");
            }
            for line in &lines {
                let mut response = String::new();
                reader.read_line(&mut response).expect("receive");
                assert!(
                    proto::response_request_id(&response).is_some(),
                    "TCP responses carry a request id: {response}"
                );
                assert_eq!(
                    proto::strip_request_id(&response),
                    expected_response(line),
                    "for request {line:?}"
                );
            }
        }));
    }
    for client in clients {
        client.join().expect("client thread");
    }
    let stats = server.shutdown();
    assert_eq!(stats.requests, 4 * 24);
    assert_eq!(stats.ok, 4 * 24);
    assert_eq!(stats.errors, 0);
    assert_eq!(stats.shed, 0);
}

#[test]
fn overload_sheds_with_busy_responses_and_the_service_stays_up() {
    let _guard = lock();
    let before_shed = qisim_obs::snapshot().counter("serve.shed").unwrap_or(0);
    let config = ServeConfig {
        queue_depth: 1,
        batch_max: 1,
        // Fault injection: make each batch slow so a pipelined burst
        // must overflow the depth-1 queue.
        batch_delay: Duration::from_millis(25),
        ..ServeConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", config).expect("bind");
    let stream = TcpStream::connect(server.addr()).expect("connect");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    const BURST: usize = 16;
    for i in 0..BURST {
        writeln!(writer, "id = {i}; preset = cmos_baseline").expect("send");
    }
    let mut ok = 0u64;
    let mut busy = 0u64;
    for _ in 0..BURST {
        let mut response = String::new();
        reader.read_line(&mut response).expect("receive");
        match proto::response_kind(&response) {
            Some(proto::ResponseKind::Ok) => ok += 1,
            Some(proto::ResponseKind::Busy) => {
                assert!(
                    proto::pair_value(&response, "reason")
                        .is_some_and(|r| r.contains("queue full")),
                    "{response}"
                );
                busy += 1;
            }
            other => panic!("unexpected response kind {other:?}: {response}"),
        }
    }
    assert_eq!(ok + busy, BURST as u64, "every request is answered");
    assert!(busy >= 1, "a depth-1 queue under a {BURST}-deep burst must shed");
    assert!(ok >= 1, "shedding must not starve the queue entirely");
    // Shed is backpressure, not failure: the service keeps answering.
    writeln!(writer, "id = after; preset = rsfq_baseline").expect("send");
    let mut response = String::new();
    reader.read_line(&mut response).expect("read after shed burst");
    assert_eq!(
        proto::strip_request_id(&response),
        expected_response("id = after; preset = rsfq_baseline")
    );
    let stats = server.shutdown();
    assert_eq!(stats.shed, busy);
    assert_eq!(stats.ok, ok + 1);
    // The shed path is observable through the serve.shed counter
    // whenever observability is compiled in and enabled.
    if qisim_obs::enabled() {
        let after_shed = qisim_obs::snapshot().counter("serve.shed").unwrap_or(0);
        assert_eq!(after_shed - before_shed, busy, "serve.shed must count every busy response");
    }
}

#[test]
fn scale_out_requests_round_trip_with_datacenter_verdicts() {
    let _guard = lock();
    // A multi-fridge request rides the same wire format: the topology
    // keys fold into the spec document and the response carries the
    // scale-out block plus a binding-constraint explanation.
    let line = "id = dc; explain = 1; preset = cmos_baseline; fridges = 4; link = cryo_coax";
    let mut output = Vec::new();
    let stats = serve_lines(Cursor::new(format!("{line}\n")), &mut output, &ServeConfig::default())
        .expect("stdio transport");
    let response = String::from_utf8(output).expect("utf-8");
    assert_eq!(proto::response_kind(&response), Some(proto::ResponseKind::Ok), "{response}");
    assert_eq!(stats.ok, 1);
    let report = proto::response_report(&response).expect("report");
    let verdict = codec::parse_scalability(&report).expect("unfolded report");
    let scale_out = verdict.scale_out.as_ref().expect("multi-fridge verdict carries scale-out");
    assert_eq!(scale_out.fridges, 4);
    assert_eq!(verdict.power_limited_qubits, 4 * scale_out.per_fridge_qubits);
    // And it is bit-identical to the direct engine path.
    let direct = engine::try_analyze_spec(
        &qisim::spec::DesignSpec::new(Preset::CmosBaseline)
            .fridges(4)
            .link(qisim::hal::topology::LinkKind::CryoCoax),
        &Target::near_term(),
    )
    .expect("direct scale-out analysis");
    assert_eq!(verdict, direct);
    // The embedded explanation names the fleet and its binding constraint.
    let explain = proto::pair_value(&response, "explain").expect("explain pair");
    assert!(explain.contains("scale-out: 4 fridges"), "{explain}");
    assert!(explain.contains("binding constraint"), "{explain}");
    assert!(explain.contains("fridges to reach"), "{explain}");
}

#[test]
fn budget_override_requests_pin_to_the_direct_engine_path() {
    let _guard = lock();
    // Satellite: per-stage fridge budget overrides ride the request line
    // and produce exactly the verdict the direct spec route computes.
    let cases = [
        "id = b4; preset = cmos_baseline; budget.4K = 6",
        "id = bmix; preset = rsfq_near_term; budget.50K = 45; budget.20mK = 1e-5",
        "id = bdc; preset = cmos_near_term; fridges = 3; budget.4K = 0.5",
    ];
    let mut input = String::new();
    let mut expected = String::new();
    for line in &cases {
        expected.push_str(&expected_response(line));
        input.push_str(line);
        input.push('\n');
    }
    let mut output = Vec::new();
    let stats = serve_lines(Cursor::new(input), &mut output, &ServeConfig::default())
        .expect("stdio transport");
    let output = String::from_utf8(output).expect("utf-8 responses");
    assert_eq!(strip_ids(&output), expected, "override responses must match direct analysis");
    assert_eq!(stats.ok, cases.len() as u64);
    assert_eq!(stats.errors, 0);
}

#[test]
fn invalid_topology_requests_get_typed_errors() {
    let _guard = lock();
    // (request line, expected error kind, reason needle)
    let cases = [
        ("id = l; preset = cmos_baseline; link = warp", "decode", "unknown link `warp`"),
        ("id = f0; preset = cmos_baseline; fridges = 0", "config", "fridges"),
        ("id = fk; preset = cmos_baseline; fridges = 2000", "config", "fridges"),
        ("id = lp; preset = cmos_baseline; links_per_fridge = 0", "config", "links_per_fridge"),
        ("id = s; preset = cmos_baseline; budget.3K = 1", "decode", "unknown fridge stage `3K`"),
    ];
    let mut input = String::new();
    for (line, _, _) in &cases {
        input.push_str(line);
        input.push('\n');
    }
    input.push_str("id = alive; preset = cmos_baseline; fridges = 2\n");
    let mut output = Vec::new();
    let stats = serve_lines(Cursor::new(input), &mut output, &ServeConfig::default())
        .expect("stdio transport");
    let output = String::from_utf8(output).expect("utf-8 responses");
    let responses: Vec<&str> = output.lines().collect();
    assert_eq!(responses.len(), cases.len() + 1, "one response per request\n{output}");
    for ((line, kind, needle), response) in cases.iter().zip(&responses) {
        assert_eq!(
            proto::response_kind(response),
            Some(proto::ResponseKind::Error),
            "{line:?} -> {response}"
        );
        assert_eq!(proto::pair_value(response, "error"), Some(*kind), "{line:?} -> {response}");
        let reason = proto::pair_value(response, "reason").expect("reason pair");
        assert!(reason.contains(needle), "{line:?} -> {response}");
    }
    let last = responses.last().expect("final response");
    assert_eq!(proto::response_kind(last), Some(proto::ResponseKind::Ok));
    assert_eq!(stats.errors, cases.len() as u64);
    assert_eq!(stats.ok, 1);
}

#[test]
fn multi_fridge_requests_mixed_into_batches_stay_bit_identical() {
    let _guard = lock();
    // Scale-out requests run individually (they are excluded from the
    // grouped fan-out), but interleaving them with groupable classic
    // requests must not perturb either side's bytes or ordering.
    let lines: Vec<String> = (0..12)
        .map(|i| {
            let preset = Preset::ALL[i % Preset::ALL.len()].id();
            if i % 3 == 0 {
                format!("id = m{i}; preset = {preset}; fridges = {}; link = photonic", 2 + i % 4)
            } else {
                format!("id = m{i}; preset = {preset}")
            }
        })
        .collect();
    let mut input = String::new();
    let mut expected = String::new();
    for line in &lines {
        expected.push_str(&expected_response(line));
        input.push_str(line);
        input.push('\n');
    }
    let mut output = Vec::new();
    let stats = serve_lines(Cursor::new(input), &mut output, &ServeConfig::default())
        .expect("stdio transport");
    let output = String::from_utf8(output).expect("utf-8 responses");
    assert_eq!(
        strip_ids(&output),
        expected,
        "mixed batches must stay bit-identical in request order"
    );
    assert_eq!(stats.ok, lines.len() as u64);
    assert_eq!(stats.errors, 0);
}

#[test]
fn traced_requests_report_event_counts_and_explain_embeds_text() {
    let _guard = lock();
    let mut output = Vec::new();
    serve_lines(
        Cursor::new("trace = 1; explain = 1; preset = cmos_baseline\n"),
        &mut output,
        &ServeConfig::default(),
    )
    .expect("stdio transport");
    let response = String::from_utf8(output).expect("utf-8");
    assert_eq!(proto::response_kind(&response), Some(proto::ResponseKind::Ok));
    let events: u64 = proto::pair_value(&response, "trace_events")
        .expect("traced response carries trace_events")
        .parse()
        .expect("numeric event count");
    // With the obs feature the engine's spans land in the recorder;
    // with the kill switch the capture is an explicit zero.
    if qisim_obs::enabled() {
        assert!(events > 0, "{response}");
    }
    let explain = proto::pair_value(&response, "explain").expect("explain pair");
    assert!(explain.contains("qubits"), "{response}");
    // The folded report still parses even with extras up front.
    let report = proto::response_report(&response).expect("report");
    assert!(codec::parse_scalability(&report).is_ok());
}
