//! Observability overhead benchmark: what does instrumentation cost when
//! it is off, and what does it cost when everything is on?
//!
//! Three configurations run the same fixed sweep (a
//! `qisim::sweep` utilization curve of the paper baseline over a fixed
//! qubit-count grid, single-threaded, min-of-reps like
//! `bench_scaleout`):
//!
//! 1. **off** — `qisim::obs::set_enabled(false)`: the runtime kill
//!    switch; every macro short-circuits on one relaxed atomic load.
//! 2. **disarmed** — recording enabled, but no log sink, no metrics
//!    exporter, no flight recorder armed. This is the production
//!    default, and the **gate**: it must cost ≤ 2% over `off`.
//! 3. **armed** — `QISIM_LOG`-style JSONL logging at debug level, the
//!    flight recorder, and the telemetry exporter all live at once
//!    (informational — armed overhead is a choice, not a regression).
//!
//! The bench also pins the acceptance criterion that arming the logger
//! cannot perturb results: the verdict (and its codec encoding) is
//! bit-identical with and without `QISIM_LOG` armed.
//!
//! Run with `cargo run --release --example bench_obs` to (re)write
//! `BENCH_obs.json` — the gate numbers plus a full registry dump from an
//! armed paper sweep — or with `-- --smoke` for the CI gate (tiny reps,
//! no artifact rewrite).

use qisim::engine;
use qisim::obs::log::Level;
use qisim::spec::{DesignSpec, Preset};
use qisim::surface::target::Target;
use qisim::QciDesign;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// One timed batch of `f` in milliseconds.
fn batch_ms(iters: usize, mut f: impl FnMut()) -> f64 {
    let started = Instant::now();
    for _ in 0..iters {
        f();
    }
    started.elapsed().as_secs_f64() * 1e3
}

/// The fixed qubit-count grid every configuration sweeps (Fig. 12/13
/// x-axis flavor: powers of two through the paper's long-term scale).
const SWEEP_COUNTS: [u64; 9] = [64, 128, 256, 512, 1024, 2048, 4096, 16384, 65536];

/// One iteration of the fixed sweep: a full utilization curve through
/// the (warm) power memo — the steady-state production workload whose
/// overhead budget the gate protects.
fn sweep_once(design: &QciDesign) {
    std::hint::black_box(qisim::sweep(design, &SWEEP_COUNTS));
}

/// Min-of-reps timing of the fixed sweep under whatever observability
/// configuration the caller armed.
fn measure_ms(reps: usize, iters: usize) -> f64 {
    let design = QciDesign::cmos_baseline();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        best = best.min(batch_ms(iters, || sweep_once(&design)));
    }
    best
}

/// off vs disarmed, alternating batch-by-batch so clock drift and
/// scheduler noise hit both symmetrically.
fn measure_disarmed_overhead(reps: usize, iters: usize) -> (f64, f64, f64) {
    let design = QciDesign::cmos_baseline();
    let mut off_ms = f64::INFINITY;
    let mut disarmed_ms = f64::INFINITY;
    for _ in 0..reps {
        qisim::obs::set_enabled(false);
        off_ms = off_ms.min(batch_ms(iters, || sweep_once(&design)));
        qisim::obs::set_enabled(true);
        disarmed_ms = disarmed_ms.min(batch_ms(iters, || sweep_once(&design)));
    }
    (off_ms, disarmed_ms, (disarmed_ms / off_ms - 1.0) * 100.0)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let parallelism = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
    println!(
        "bench_obs: disarmed-overhead gate + fully-armed cost, {parallelism} core(s){}",
        if smoke { " (smoke)" } else { "" }
    );

    // Fixed single-threaded footing: measure the instrumentation
    // against the real analysis, without thread-pool noise.
    qisim::par::set_threads(Some(1));
    qisim::obs::reset();
    let design = QciDesign::cmos_baseline();
    let target = Target::near_term();
    let baseline_verdict = engine::try_analyze(&design, &target).expect("warmup");
    sweep_once(&design); // warm the power memo before any timing

    // 1. The gate: recording enabled but nothing armed must be free
    //    (<= 2% over the kill switch). Re-measure once before failing so
    //    one scheduler hiccup cannot fail the build.
    let (reps, iters) = if smoke { (8, 128) } else { (24, 512) };
    let (mut off_ms, mut disarmed_ms, mut disarmed_pct) = measure_disarmed_overhead(reps, iters);
    if disarmed_pct > 2.0 {
        let retry = measure_disarmed_overhead(reps, iters);
        if retry.2 < disarmed_pct {
            (off_ms, disarmed_ms, disarmed_pct) = retry;
        }
    }
    println!(
        "  disarmed: off {off_ms:.3} ms vs enabled-disarmed {disarmed_ms:.3} ms per {iters} \
         sweeps -> {disarmed_pct:+.2}%"
    );
    assert!(
        disarmed_pct <= 2.0,
        "acceptance: disarmed observability must cost <= 2% over the kill switch, \
         got {disarmed_pct:+.2}%"
    );

    // 2. Everything on at once: JSONL debug logging, the flight
    //    recorder, and the telemetry exporter. Informational.
    let log_path = std::env::temp_dir().join(format!("bench_obs_{}.log.jsonl", std::process::id()));
    let om_path = std::env::temp_dir().join(format!("bench_obs_{}.om", std::process::id()));
    qisim::obs::set_enabled(true);
    assert!(
        qisim::obs::log::start(&log_path.to_string_lossy(), Level::Debug),
        "arm the JSONL logger"
    );
    qisim::obs::trace::arm();
    qisim::obs::telemetry::start(&om_path, Duration::from_millis(100));
    let armed_ms = measure_ms(reps, iters);
    let armed_verdict = engine::try_analyze(&design, &target).expect("armed analysis");

    // The registry dump for the artifact: one armed pass over every
    // paper preset and both targets, so the committed BENCH_obs.json
    // carries the full span/counter/gauge trajectory.
    for target in [Target::near_term(), Target::long_term()] {
        for preset in Preset::ALL {
            let _ = engine::try_analyze_spec(&DesignSpec::new(preset), &target);
        }
    }
    let registry_json = qisim::obs::report_json();

    qisim::obs::trace::disarm();
    qisim::obs::telemetry::shutdown();
    qisim::obs::log::shutdown();
    let log_bytes = std::fs::metadata(&log_path).map(|m| m.len()).unwrap_or(0);
    let log_records = std::fs::read_to_string(&log_path).map(|s| s.lines().count()).unwrap_or(0);
    let _ = std::fs::remove_file(&log_path);
    let _ = std::fs::remove_file(&om_path);
    let armed_pct = (armed_ms / off_ms - 1.0) * 100.0;
    println!(
        "  armed (log+trace+metrics): {armed_ms:.3} ms -> {armed_pct:+.2}% over off; \
         {log_records} log records, {log_bytes} bytes JSONL"
    );

    // 3. Arming the logger observes; it must not perturb. Same verdict,
    //    same encoded bytes.
    let identical = baseline_verdict == armed_verdict
        && qisim::codec::encode_scalability(&baseline_verdict)
            == qisim::codec::encode_scalability(&armed_verdict);
    println!("  bit_identical_with_log_armed: {identical}");
    assert!(identical, "analysis results must be bit-identical with QISIM_LOG armed");
    qisim::par::set_threads(None);

    if smoke {
        println!("bench_obs smoke gate passed.");
        return;
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(
        json,
        "  \"workload\": \"single-threaded qisim::sweep of the paper baseline over a fixed 9-point qubit grid, \
         {iters} iterations x {reps} reps min-of-reps, under three observability \
         configurations (kill switch / enabled-disarmed / log+trace+metrics armed); \
         registry dump from an armed full paper sweep\",",
    );
    let _ = writeln!(json, "  \"available_parallelism\": {parallelism},");
    json.push_str("  \"overhead\": {\n");
    let _ = writeln!(json, "    \"off_batch_ms\": {off_ms:.4},");
    let _ = writeln!(json, "    \"disarmed_batch_ms\": {disarmed_ms:.4},");
    let _ = writeln!(json, "    \"disarmed_overhead_pct\": {disarmed_pct:.3},");
    let _ = writeln!(json, "    \"gate_pct\": 2.0,");
    let _ = writeln!(json, "    \"armed_batch_ms\": {armed_ms:.4},");
    let _ = writeln!(json, "    \"armed_overhead_pct\": {armed_pct:.3},");
    let _ = writeln!(json, "    \"armed_log_records\": {log_records},");
    let _ = writeln!(json, "    \"armed_log_bytes\": {log_bytes}");
    json.push_str("  },\n");
    let _ = writeln!(json, "  \"bit_identical_with_log_armed\": {identical},");
    let _ = writeln!(json, "  \"registry\": {}", registry_json.trim_end());
    json.push_str("}\n");
    std::fs::write("BENCH_obs.json", &json).expect("write BENCH_obs.json");
    println!("wrote BENCH_obs.json ({} bytes)", json.len());
}
