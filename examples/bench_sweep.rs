//! Serial-vs-parallel wall-clock benchmark of the hot paths the
//! `qisim-par` engine threads through: a Fig. 17-style design-point
//! sweep (one power bisection per design), the per-stage utilization
//! curve, and a surface-code Monte-Carlo shot batch.
//!
//! Each configuration runs the identical workload with the thread pool
//! pinned to 1, 2, and 4 workers (power memo cache cleared before every
//! run, so nothing is amortized across configurations), checks that the
//! three result sets are **byte-identical**, and writes the
//! `BENCH_par.json` artifact.
//!
//! Run with `cargo run --release --example bench_sweep`.

use qisim::scalability::{analyze_many, sweep, Scalability, SweepPoint};
use qisim::surface::montecarlo::{logical_error_rate_par, McEstimate};
use qisim::surface::target::Target;
use qisim::surface::Lattice;
use qisim::QciDesign;
use std::fmt::Write as _;
use std::time::Instant;

/// Fixed workload: every Fig. 17 long-term design point (plus the
/// near-term anchors), the baseline utilization curve, and a 16k-trial
/// distance-7 Monte-Carlo batch.
fn workload() -> (Vec<Scalability>, Vec<SweepPoint>, McEstimate) {
    let designs = [
        QciDesign::cmos_long_term(),
        QciDesign::ersfq_long_term(),
        QciDesign::cmos_baseline(),
        QciDesign::rsfq_baseline(),
        QciDesign::rsfq_near_term(),
        QciDesign::room_coax(),
        QciDesign::room_microstrip(),
        QciDesign::room_photonic(),
    ];
    let verdicts = analyze_many(&designs, &Target::long_term());
    let counts: Vec<u64> = (1..=24).map(|i| i * 4096).collect();
    let curve = sweep(&QciDesign::cmos_long_term(), &counts);
    let mc = logical_error_rate_par(&Lattice::new(7), 0.04, 16_000, 20230617);
    (verdicts, curve, mc)
}

fn main() {
    let parallelism = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
    println!(
        "bench_sweep: fig17-style sweep, {} available core(s), par build: {}",
        parallelism,
        qisim::par::is_parallel_build()
    );

    let mut wall_ms = Vec::new();
    let mut digests = Vec::new();
    for threads in [1usize, 2, 4] {
        qisim::par::set_threads(Some(threads));
        qisim::power::clear_cache();
        let started = Instant::now();
        let results = workload();
        let elapsed = started.elapsed();
        wall_ms.push((threads, elapsed.as_secs_f64() * 1e3));
        // The Debug rendering covers every field of every result; equal
        // strings mean byte-identical science.
        digests.push(format!("{results:?}"));
        println!("  {threads} thread(s): {:8.1} ms", elapsed.as_secs_f64() * 1e3);
    }
    qisim::par::set_threads(None);

    let identical = digests.windows(2).all(|w| w[0] == w[1]);
    let serial_ms = wall_ms[0].1;
    let par4_ms = wall_ms[2].1;
    let speedup = serial_ms / par4_ms;
    println!(
        "  identical across thread counts: {identical}; 4-thread speedup: {speedup:.2}x \
         (ideal bounded by the {parallelism} available core(s))"
    );
    assert!(identical, "parallel results diverged from the serial run");

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(
        json,
        "  \"workload\": \"fig17-style sweep: 8 design-point analyses (one power bisection \
         each) + 24-point utilization curve + 16000-trial d=7 Monte-Carlo\","
    );
    let _ = writeln!(json, "  \"available_parallelism\": {parallelism},");
    let _ = writeln!(json, "  \"parallel_build\": {},", qisim::par::is_parallel_build());
    json.push_str("  \"runs\": [\n");
    for (i, (threads, ms)) in wall_ms.iter().enumerate() {
        let comma = if i + 1 < wall_ms.len() { "," } else { "" };
        let _ = writeln!(json, "    {{\"threads\": {threads}, \"wall_ms\": {ms:.3}}}{comma}");
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"speedup_4_threads_vs_serial\": {speedup:.4},");
    let _ = writeln!(json, "  \"results_identical_across_thread_counts\": {identical},");
    let _ = writeln!(json, "  \"power_cache_entries\": {}", qisim::power::cache_len());
    json.push_str("}\n");
    std::fs::write("BENCH_par.json", &json).expect("write BENCH_par.json");
    println!("wrote BENCH_par.json ({} bytes)", json.len());
}
