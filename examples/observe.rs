//! Observability demo: analyze the 4 K CMOS baseline and the optimized
//! near-term RSFQ design with full instrumentation, print each design's
//! `explain()` report and the global metrics table, and write a
//! machine-readable `observe_registry.json` dump (per-stage watt
//! attribution plus p50/p99 span timings for `power.max_qubits` and
//! `scalability.analyze`). The committed `BENCH_obs.json` artifact —
//! overhead gate numbers plus the same registry dump — is written by
//! `examples/bench_obs.rs` instead.
//!
//! The run also demonstrates the flight recorder: with
//! `QISIM_TRACE=trace.json` set (or via the programmatic `trace::arm()`
//! fallback below), the drained `TraceSession` is exported as a Chrome
//! `trace_event` timeline — open it in `chrome://tracing` or
//! <https://ui.perfetto.dev> — plus folded flamegraph stacks.
//!
//! Run with `cargo run --release --example observe`, or traced:
//! `QISIM_TRACE=trace.json cargo run --release --example observe`.
//!
//! Pass `--watch` to also demo the periodic telemetry exporter: two
//! flush-bounded intervals over an analysis batch, then the p50/p99 of
//! every `engine.stage.*` span computed from the second interval's
//! delta snapshot. With `QISIM_METRICS=<path>[:interval_ms]` set the
//! exporter uses that spec; otherwise `--watch` starts it
//! programmatically on `metrics.om`.

use qisim::obs::{self, telemetry, trace, trace_export};
use qisim::surface::target::Target;
use qisim::{analyze, sweep, QciDesign};
use std::time::Duration;

fn main() {
    let watch = std::env::args().any(|a| a == "--watch");
    obs::reset();
    // Arm the recorder even without QISIM_TRACE so the demo always has a
    // timeline to summarize; with the env var set, finish() below also
    // writes the artifacts to disk.
    trace::arm();
    let target = Target::near_term();

    for design in [QciDesign::cmos_baseline(), QciDesign::rsfq_near_term()] {
        let verdict = analyze(&design, &target);
        print!("{}", verdict.explain());
        println!(
            "  manageable scale: {} qubits (target provisions {})\n",
            verdict.manageable_qubits(),
            target.physical_qubits()
        );
    }

    // A utilization sweep adds histogram samples on top of the spans the
    // analyses recorded — and, traced, scatters per-point instants
    // across the qisim-par worker lanes.
    let _ = sweep(&QciDesign::cmos_baseline(), &[64, 128, 256, 512, 1024]);

    println!("{}", obs::report_text());

    let json = obs::report_json();
    std::fs::write("observe_registry.json", &json).expect("write observe_registry.json");
    println!("wrote observe_registry.json ({} bytes)", json.len());

    // Drain the flight recorder and exercise both exporters.
    let session = trace::TraceSession::drain();
    let chrome = trace_export::chrome_trace_json(&session);
    let folded = trace_export::folded_stacks(&session);
    println!(
        "trace: {} events on {} lane(s), {} dropped; chrome export {} bytes, {} folded stacks",
        session.event_count(),
        session.threads.len(),
        session.dropped_events,
        chrome.len(),
        folded.lines().count()
    );
    assert!(trace_export::trace_is_well_formed(&chrome), "chrome export must validate");
    println!("trace export: well-formed");
    // With QISIM_TRACE=<path> set this writes <path> and <path>.folded;
    // without it, it's a no-op returning None.
    match session.finish() {
        Ok(Some(path)) => println!("wrote {} (+ .folded)", path.display()),
        Ok(None) => println!("QISIM_TRACE unset; trace artifacts not written"),
        Err(e) => panic!("trace dump failed: {e}"),
    }

    if watch {
        watch_intervals(&target);
    }

    // Stop the exporter (whether QISIM_METRICS armed it or --watch
    // started it) and validate the final exposition it left behind.
    match telemetry::shutdown() {
        Some(path) => {
            let text = std::fs::read_to_string(&path).expect("read metrics exposition");
            assert!(obs::openmetrics_is_well_formed(&text), "metrics exposition must validate");
            println!("openmetrics export: well-formed ({}, {} bytes)", path.display(), text.len());
        }
        None => println!("QISIM_METRICS unset; telemetry exporter not started"),
    }
}

/// The `--watch` demo: two exporter intervals bounded by `flush_now`,
/// each covering one analysis batch, then per-stage p50/p99 latencies
/// read out of the *second* interval's delta snapshot — the live-rate
/// view a scraper would see, not the lifetime aggregate.
fn watch_intervals(target: &Target) {
    if !telemetry::armed() {
        // QISIM_METRICS did not arm the exporter; start it ourselves so
        // the demo always has a file to scrape.
        telemetry::start("metrics.om", Duration::from_millis(200));
    }
    // A batch of every preset, repeated so both intervals exercise the
    // full engine pipeline (and the power memo cache) many times.
    let presets = [
        QciDesign::room_coax(),
        QciDesign::room_microstrip(),
        QciDesign::room_photonic(),
        QciDesign::cmos_baseline(),
        QciDesign::cmos_long_term(),
        QciDesign::rsfq_baseline(),
        QciDesign::rsfq_near_term(),
        QciDesign::ersfq_long_term(),
    ];
    let designs: Vec<QciDesign> = presets.iter().cycle().take(32).cloned().collect();

    // Interval 1: first batch, then force an export and mark the
    // interval boundary with a snapshot.
    let _ = qisim::try_analyze_many(&designs, target);
    telemetry::flush_now();
    let mid = obs::snapshot();

    // Interval 2: second batch; its delta against `mid` holds only this
    // interval's samples.
    let _ = qisim::try_analyze_many(&designs, target);
    telemetry::flush_now();
    let delta = obs::snapshot().delta_since(&mid);

    println!("watch: engine.stage.* latency over the second interval");
    for (name, stats) in &delta.spans {
        if !name.starts_with("engine.stage.") || stats.count == 0 {
            continue;
        }
        println!(
            "  {name}: p50 {:.0} ns / p99 {:.0} ns over {} calls",
            stats.durations.quantile(0.5),
            stats.durations.quantile(0.99),
            stats.count
        );
    }
}
