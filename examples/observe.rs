//! Observability demo: analyze the 4 K CMOS baseline and the optimized
//! near-term RSFQ design with full instrumentation, print each design's
//! `explain()` report and the global metrics table, and write the
//! machine-readable `BENCH_obs.json` artifact (per-stage watt
//! attribution plus p50/p99 span timings for `power.max_qubits` and
//! `scalability.analyze`).
//!
//! The run also demonstrates the flight recorder: with
//! `QISIM_TRACE=trace.json` set (or via the programmatic `trace::arm()`
//! fallback below), the drained `TraceSession` is exported as a Chrome
//! `trace_event` timeline — open it in `chrome://tracing` or
//! <https://ui.perfetto.dev> — plus folded flamegraph stacks.
//!
//! Run with `cargo run --release --example observe`, or traced:
//! `QISIM_TRACE=trace.json cargo run --release --example observe`.

use qisim::obs::{self, trace, trace_export};
use qisim::surface::target::Target;
use qisim::{analyze, sweep, QciDesign};

fn main() {
    obs::reset();
    // Arm the recorder even without QISIM_TRACE so the demo always has a
    // timeline to summarize; with the env var set, finish() below also
    // writes the artifacts to disk.
    trace::arm();
    let target = Target::near_term();

    for design in [QciDesign::cmos_baseline(), QciDesign::rsfq_near_term()] {
        let verdict = analyze(&design, &target);
        print!("{}", verdict.explain());
        println!(
            "  manageable scale: {} qubits (target provisions {})\n",
            verdict.manageable_qubits(),
            target.physical_qubits()
        );
    }

    // A utilization sweep adds histogram samples on top of the spans the
    // analyses recorded — and, traced, scatters per-point instants
    // across the qisim-par worker lanes.
    let _ = sweep(&QciDesign::cmos_baseline(), &[64, 128, 256, 512, 1024]);

    println!("{}", obs::report_text());

    let json = obs::report_json();
    std::fs::write("BENCH_obs.json", &json).expect("write BENCH_obs.json");
    println!("wrote BENCH_obs.json ({} bytes)", json.len());

    // Drain the flight recorder and exercise both exporters.
    let session = trace::TraceSession::drain();
    let chrome = trace_export::chrome_trace_json(&session);
    let folded = trace_export::folded_stacks(&session);
    println!(
        "trace: {} events on {} lane(s), {} dropped; chrome export {} bytes, {} folded stacks",
        session.event_count(),
        session.threads.len(),
        session.dropped_events,
        chrome.len(),
        folded.lines().count()
    );
    assert!(trace_export::trace_is_well_formed(&chrome), "chrome export must validate");
    println!("trace export: well-formed");
    // With QISIM_TRACE=<path> set this writes <path> and <path>.folded;
    // without it, it's a no-op returning None.
    match session.finish() {
        Ok(Some(path)) => println!("wrote {} (+ .folded)", path.display()),
        Ok(None) => println!("QISIM_TRACE unset; trace artifacts not written"),
        Err(e) => panic!("trace dump failed: {e}"),
    }
}
