//! Observability demo: analyze the 4 K CMOS baseline and the optimized
//! near-term RSFQ design with full instrumentation, print each design's
//! `explain()` report and the global metrics table, and write the
//! machine-readable `BENCH_obs.json` artifact (per-stage watt
//! attribution plus p50/p99 span timings for `power.max_qubits` and
//! `scalability.analyze`).
//!
//! Run with `cargo run --release --example observe`.

use qisim::obs;
use qisim::surface::target::Target;
use qisim::{analyze, sweep, QciDesign};

fn main() {
    obs::reset();
    let target = Target::near_term();

    for design in [QciDesign::cmos_baseline(), QciDesign::rsfq_near_term()] {
        let verdict = analyze(&design, &target);
        print!("{}", verdict.explain());
        println!(
            "  manageable scale: {} qubits (target provisions {})\n",
            verdict.manageable_qubits(),
            target.physical_qubits()
        );
    }

    // A utilization sweep adds histogram samples on top of the spans the
    // analyses recorded.
    let _ = sweep(&QciDesign::cmos_baseline(), &[64, 128, 256, 512, 1024]);

    println!("{}", obs::report_text());

    let json = obs::report_json();
    std::fs::write("BENCH_obs.json", &json).expect("write BENCH_obs.json");
    println!("wrote BENCH_obs.json ({} bytes)", json.len());
}
