//! Regenerates the paper's evaluation tables/figures offline: every
//! experiment in [`qisim::experiments::SUITE`] runs **concurrently** on
//! the `qisim-par` pool and prints its paper-vs-measured rows in paper
//! order, followed by a summary of each experiment's worst relative
//! error. This is the in-workspace counterpart of the criterion bench
//! harness (`crates/bench`), which needs registry access.
//!
//! Run with `cargo run --release --example paper_suite` — or pass id
//! substrings to run a subset, e.g.
//! `cargo run --release --example paper_suite -- "Fig. 13" "Table 2"`.
//! (Table 1 and Fig. 11 re-run the heavyweight error models and take a
//! few minutes; the figure experiments are seconds.)

use qisim::experiments::{run_matching, SUITE};

fn main() {
    let filters: Vec<String> = std::env::args().skip(1).collect();
    let matches = |id: &str| filters.is_empty() || filters.iter().any(|f| id.contains(f.as_str()));
    let picked: Vec<&str> = SUITE.iter().map(|(id, _)| *id).filter(|id| matches(id)).collect();
    if picked.is_empty() {
        eprintln!("no experiment id matches {filters:?}; known ids:");
        for (id, _) in SUITE {
            eprintln!("  {id}");
        }
        std::process::exit(1);
    }
    println!("running {} experiment(s) on {} thread(s)...\n", picked.len(), qisim::par::threads());

    let experiments = run_matching(matches);
    for e in &experiments {
        println!("{e}");
    }

    println!("{:<12} {:<55} {:>14}", "experiment", "title", "max |rel err|");
    for e in &experiments {
        let worst = e.max_relative_error();
        let shown = if worst == 0.0 { "-".into() } else { format!("{worst:.3}") };
        println!("{:<12} {:<55} {:>14}", e.id, e.title, shown);
    }
}
