//! Regenerates the paper's scalability story end to end: every design of
//! Figs. 12/13/17, its power-limited scale, binding stage, and
//! logical-error verdict against both roadmap targets.
//!
//! Run with `cargo run --example scalability_sweep`.

use qisim::scalability::analyze_many;
use qisim::{analyze, sweep, QciDesign};
use qisim_surface::target::Target;

fn main() {
    let near = Target::near_term();
    let long = Target::long_term();
    println!(
        "{:<48} {:>12} {:>9} {:>12} {:>6} {:>6}",
        "design", "max qubits", "binds", "p_L(d=23)", "near", "long"
    );
    let designs = [
        QciDesign::room_coax(),
        QciDesign::room_microstrip(),
        QciDesign::room_photonic(),
        QciDesign::cmos_baseline(),
        QciDesign::rsfq_baseline(),
        QciDesign::rsfq_near_term(),
        QciDesign::cmos_long_term(),
        QciDesign::ersfq_long_term(),
    ];
    // One parallel task per design point (each runs its own bisection).
    for s in analyze_many(&designs, &near) {
        let design = designs.iter().find(|d| d.name() == s.design).expect("by name");
        println!(
            "{:<48} {:>12} {:>9} {:>12.2e} {:>6} {:>6}",
            truncate(&s.design, 48),
            s.power_limited_qubits,
            s.binding_stage.map(|b| b.label()).unwrap_or("-"),
            s.logical_error,
            s.reaches(&near),
            analyze(design, &long).reaches(&long),
        );
    }

    println!("\nPer-stage utilization sweep of the 4K CMOS baseline (Fig. 13a):");
    println!("{:>8} {:>10} {:>10} {:>11}", "qubits", "4K util", "mK util", "total W");
    for pt in sweep(&QciDesign::cmos_baseline(), &[128, 256, 512, 666, 1024, 1399]) {
        println!("{:>8} {:>10.3} {:>10.3} {:>11.4}", pt.qubits, pt.util_4k, pt.util_mk, pt.power_w);
    }
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        format!("{}...", &s[..n - 3])
    }
}
