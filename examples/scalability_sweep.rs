//! Regenerates the paper's scalability story end to end: every design of
//! Figs. 12/13/17, its power-limited scale, binding stage, and
//! logical-error verdict against both roadmap targets.
//!
//! Run with `cargo run --example scalability_sweep`.

use qisim::{analyze, sweep, QciDesign};
use qisim_surface::target::Target;

fn main() {
    let near = Target::near_term();
    let long = Target::long_term();
    println!(
        "{:<48} {:>12} {:>9} {:>12} {:>6} {:>6}",
        "design", "max qubits", "binds", "p_L(d=23)", "near", "long"
    );
    for design in [
        QciDesign::room_coax(),
        QciDesign::room_microstrip(),
        QciDesign::room_photonic(),
        QciDesign::cmos_baseline(),
        QciDesign::rsfq_baseline(),
        QciDesign::rsfq_near_term(),
        QciDesign::cmos_long_term(),
        QciDesign::ersfq_long_term(),
    ] {
        let s = analyze(&design, &near);
        println!(
            "{:<48} {:>12} {:>9} {:>12.2e} {:>6} {:>6}",
            truncate(&s.design, 48),
            s.power_limited_qubits,
            s.binding_stage.map(|b| b.label()).unwrap_or("-"),
            s.logical_error,
            s.reaches(&near),
            analyze(&design, &long).reaches(&long),
        );
    }

    println!("\nPer-stage utilization sweep of the 4K CMOS baseline (Fig. 13a):");
    println!("{:>8} {:>10} {:>10}", "qubits", "4K util", "mK util");
    for (n, k4, mk, _) in sweep(&QciDesign::cmos_baseline(), &[128, 256, 512, 666, 1024, 1399]) {
        println!("{n:>8} {k4:>10.3} {mk:>10.3}");
    }
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        format!("{}...", &s[..n - 3])
    }
}
