//! Quickstart: analyze one QCI design end to end.
//!
//! Run with `cargo run --example quickstart`.

use qisim::{analyze, QciDesign};
use qisim_surface::target::Target;

fn main() {
    let target = Target::near_term();
    println!(
        "QIsim-rs quickstart: near-term target = {} qubits at logical error {:.2e}\n",
        target.physical_qubits(),
        target.logical_error_target()
    );

    for design in [
        QciDesign::room_coax(),
        QciDesign::room_microstrip(),
        QciDesign::room_photonic(),
        QciDesign::cmos_baseline(),
        QciDesign::rsfq_baseline(),
        QciDesign::rsfq_near_term(),
    ] {
        let s = analyze(&design, &target);
        println!("{}", s.design);
        println!(
            "  power-limited scale : {} qubits (binds at {:?})",
            s.power_limited_qubits, s.binding_stage
        );
        println!("  ESM round           : {:.1} ns", s.esm_cycle_ns);
        println!(
            "  logical error (d=23): {:.2e} (target {:.2e}) -> {}",
            s.logical_error,
            s.target_error,
            if s.error_ok { "ok" } else { "ERROR-LIMITED" }
        );
        println!("  reaches 1,152 qubits: {}\n", s.reaches(&target));
    }
}
