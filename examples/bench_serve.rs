//! Latency/throughput benchmark of the `qisim-serve` TCP service:
//! concurrent clients replay thousands of codec wire-format requests
//! against an in-process server, every response is checked
//! **bit-identical** to a direct `try_analyze_spec` call, and the
//! sorted-latency percentiles land in the `BENCH_serve.json` artifact.
//!
//! A second, deliberately tiny server (queue depth 2, injected batch
//! delay) is then driven past saturation to demonstrate the shed path:
//! under sustained overload some requests must come back as typed
//! `busy` responses while the service keeps answering.
//!
//! Run with `cargo run --release --example bench_serve`; pass `--smoke`
//! for the seconds-scale CI variant (no artifact).

use qisim::engine;
use qisim::spec::Preset;
use qisim_serve::{proto, ServeConfig, Server};
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// The request mix: all nine paper presets plus the paper's optimized
/// variants, against both roadmap targets — a dozen distinct analyses,
/// so the process-wide power memo cache sees a realistic hot set.
fn request_mix() -> Vec<String> {
    let mut lines: Vec<String> =
        Preset::ALL.iter().map(|p| format!("preset = {}", p.id())).collect();
    lines.push("target = long_term; preset = cmos_long_term; masked_isa = true".to_string());
    lines.push("target = long_term; preset = ersfq_long_term; fast_driving = true".to_string());
    lines.push("preset = cmos_baseline; decision = memoryless; drive_bits = 6".to_string());
    lines
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (clients, per_client) = if smoke { (4, 16) } else { (8, 640) };
    let mix = request_mix();

    // Ground truth once, up front: the exact bytes every response must
    // carry, computed through the direct single-spec engine path.
    let expected: Vec<String> = mix
        .iter()
        .map(|line| {
            let request = proto::parse_request_line(line).expect("well-formed request");
            let verdict = engine::try_analyze_spec(&request.spec, &request.target.target())
                .expect("analyzable request");
            proto::ok_response(None, None, &[], &verdict)
        })
        .collect();

    let total = clients * per_client;
    println!(
        "bench_serve: {clients} client(s) x {per_client} request(s) = {total} requests, \
         {} distinct specs, par build: {}",
        mix.len(),
        qisim::par::is_parallel_build()
    );

    let server = Server::bind("127.0.0.1:0", ServeConfig::default()).expect("bind");
    let addr = server.addr();
    let started = Instant::now();
    let mut workers = Vec::new();
    for client in 0..clients {
        let mix = mix.clone();
        let expected = expected.clone();
        workers.push(std::thread::spawn(move || {
            let stream = TcpStream::connect(addr).expect("connect");
            stream.set_nodelay(true).expect("nodelay");
            let mut writer = stream.try_clone().expect("clone stream");
            let mut reader = BufReader::new(stream);
            let mut latencies_ns = Vec::with_capacity(per_client);
            let mut identical = true;
            // Closed loop: send, await the response, compare, repeat —
            // each sample is a full request round trip.
            for i in 0..per_client {
                let at = (client + i) % mix.len();
                let t0 = Instant::now();
                writeln!(writer, "{}", mix[at]).expect("send");
                let mut response = String::new();
                reader.read_line(&mut response).expect("receive");
                latencies_ns.push(t0.elapsed().as_nanos() as u64);
                // The server stamps a per-request id; strip it before
                // the byte-identity comparison against direct analysis.
                identical &= proto::strip_request_id(&response) == expected[at];
            }
            (latencies_ns, identical)
        }));
    }
    let mut latencies_ns: Vec<u64> = Vec::with_capacity(total);
    let mut identical = true;
    for worker in workers {
        let (lat, ok) = worker.join().expect("client thread");
        latencies_ns.extend(lat);
        identical &= ok;
    }
    let wall = started.elapsed();
    qisim_obs::telemetry::flush_now();
    let stats = server.shutdown();
    println!("  clean shutdown: drained, all threads joined");

    latencies_ns.sort_unstable();
    let pct = |p: f64| latencies_ns[((latencies_ns.len() - 1) as f64 * p) as usize];
    let p50_us = pct(0.50) as f64 / 1e3;
    let p99_us = pct(0.99) as f64 / 1e3;
    let throughput = total as f64 / wall.as_secs_f64();
    println!(
        "  {total} requests in {:.1} ms: {throughput:.0} req/s, \
         p50 {p50_us:.1} us, p99 {p99_us:.1} us",
        wall.as_secs_f64() * 1e3
    );
    println!(
        "  responses bit-identical to direct try_analyze: {identical}; \
         server counters: requests = {} ok = {} errors = {} shed = {}",
        stats.requests, stats.ok, stats.errors, stats.shed
    );
    assert!(identical, "served responses diverged from direct analysis");
    assert_eq!(stats.ok, total as u64, "every request must succeed");

    // Sample response, so logs show what the wire actually carries.
    println!("  sample response: {}", expected[0].trim_end());

    // Overload drill: a queue this small under a pipelined burst must
    // shed — and answer everything it sheds with a typed busy line.
    let tiny = ServeConfig {
        queue_depth: 2,
        batch_max: 1,
        batch_delay: Duration::from_millis(5),
        ..ServeConfig::default()
    };
    let overload = Server::bind("127.0.0.1:0", tiny).expect("bind overload server");
    let stream = TcpStream::connect(overload.addr()).expect("connect");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    let burst = 64;
    for _ in 0..burst {
        writeln!(writer, "preset = cmos_baseline").expect("send");
    }
    let mut shed = 0u64;
    for _ in 0..burst {
        let mut response = String::new();
        reader.read_line(&mut response).expect("receive");
        if proto::response_kind(&response) == Some(proto::ResponseKind::Busy) {
            shed += 1;
        }
    }
    let overload_stats = overload.shutdown();
    println!(
        "  overload drill: {burst} pipelined requests vs queue depth 2 -> {shed} shed \
         (server kept answering; counters shed = {})",
        overload_stats.shed
    );
    assert!(shed >= 1, "sustained overload of a depth-2 queue must shed");
    assert_eq!(shed, overload_stats.shed);

    if smoke {
        println!("smoke mode: skipping BENCH_serve.json");
        return;
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(
        json,
        "  \"workload\": \"{clients} concurrent closed-loop TCP clients x {per_client} \
         requests over {} distinct paper specs, responses checked bit-identical to direct \
         try_analyze_spec\",",
        mix.len()
    );
    let _ = writeln!(json, "  \"requests\": {total},");
    let _ = writeln!(json, "  \"clients\": {clients},");
    let _ = writeln!(json, "  \"wall_ms\": {:.3},", wall.as_secs_f64() * 1e3);
    let _ = writeln!(json, "  \"throughput_req_per_s\": {throughput:.1},");
    let _ = writeln!(json, "  \"latency_p50_us\": {p50_us:.1},");
    let _ = writeln!(json, "  \"latency_p99_us\": {p99_us:.1},");
    let _ = writeln!(json, "  \"responses_bit_identical\": {identical},");
    let _ = writeln!(json, "  \"overload_burst\": {burst},");
    let _ = writeln!(json, "  \"overload_shed\": {shed},");
    let _ = writeln!(json, "  \"power_cache_entries\": {}", qisim::power::cache_len());
    json.push_str("}\n");
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("wrote BENCH_serve.json ({} bytes)", json.len());
}
