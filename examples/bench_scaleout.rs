//! Scale-out benchmark: datacenter fridge-count sweep throughput plus
//! the single-fridge wrapper-overhead gate.
//!
//! Three checks, two of which land in `BENCH_scaleout.json`:
//!
//! 1. **N = 1 identity** — for every paper design and both targets,
//!    [`qisim::engine::try_analyze_topology`] on the standard topology
//!    must be bit-identical to the classic [`qisim::engine::try_analyze`]
//!    path (asserted in-process, not recorded).
//! 2. **4-fridge sweep throughput** — a fridges-to-reach-Q sweep over
//!    every paper design at 2/4/8/16 fridges, reported as points/s.
//! 3. **N = 1 overhead** — min-of-reps timing of the topology route vs
//!    the direct route over memo-cached iterations; the wrapper must
//!    cost <= 2% (the topology route *is* the classic code path when
//!    `fridges == 1`, so anything above that is a regression).
//!
//! Run with `cargo run --release --example bench_scaleout`, or with
//! `-- --smoke` for the CI gate (tiny reps, no artifact rewrite).

use qisim::engine;
use qisim::hal::topology::{FridgeTopology, LinkKind};
use qisim::scalability::Scalability;
use qisim::spec::Estimator;
use qisim::surface::target::Target;
use qisim::QciDesign;
use std::fmt::Write as _;
use std::time::Instant;

fn paper_designs() -> Vec<QciDesign> {
    vec![
        QciDesign::room_coax(),
        QciDesign::room_microstrip(),
        QciDesign::room_photonic(),
        QciDesign::cmos_baseline(),
        QciDesign::cmos_long_term(),
        QciDesign::rsfq_baseline(),
        QciDesign::rsfq_near_term(),
        QciDesign::ersfq_long_term(),
    ]
}

/// Every paper design x both targets, through both the classic and the
/// single-fridge topology route. Equal `Scalability` values (and equal
/// Debug renderings) mean the refactor left the classic pipeline alone.
fn check_n1_identity() -> bool {
    let topology = FridgeTopology::standard();
    for design in paper_designs() {
        for target in [Target::near_term(), Target::long_term()] {
            let classic = engine::try_analyze(&design, &target).expect("classic analysis");
            let routed =
                engine::try_analyze_topology(&design, &target, &topology, Estimator::Packed)
                    .expect("topology analysis");
            if classic != routed || format!("{classic:?}") != format!("{routed:?}") {
                println!("  N=1 MISMATCH: {} / {:?}", design.name(), target);
                return false;
            }
        }
    }
    true
}

/// The datacenter sweep: every paper design at 2/4/8/16 fridges over
/// cryo coax, answering "how many fridges to reach Q" at each point.
fn sweep_points(fridge_counts: &[u32]) -> Vec<Scalability> {
    let target = Target::long_term();
    let mut verdicts = Vec::new();
    for design in paper_designs() {
        for &fridges in fridge_counts {
            let topology =
                FridgeTopology::standard().with_fridges(fridges).with_link(LinkKind::CryoCoax);
            verdicts.push(
                engine::try_analyze_topology(&design, &target, &topology, Estimator::Packed)
                    .expect("scale-out analysis"),
            );
        }
    }
    verdicts
}

/// One timed batch of `f` in milliseconds.
fn batch_ms(iters: usize, mut f: impl FnMut()) -> f64 {
    let started = Instant::now();
    for _ in 0..iters {
        f();
    }
    started.elapsed().as_secs_f64() * 1e3
}

/// N = 1 overhead of the topology route vs the direct route, in percent,
/// over memo-cached iterations. The two routes alternate batch-by-batch
/// (direct, topology, direct, ...) and each takes its min over the reps,
/// so clock-frequency drift and scheduler noise hit both symmetrically.
fn measure_overhead_pct(reps: usize, iters: usize) -> (f64, f64, f64) {
    let design = QciDesign::cmos_baseline();
    let target = Target::near_term();
    let topology = FridgeTopology::standard();
    // Warm the power memo cache so both routes measure the wrapper, not
    // the bisection.
    let _ = engine::try_analyze(&design, &target).expect("warmup");
    let mut direct_ms = f64::INFINITY;
    let mut topo_ms = f64::INFINITY;
    for _ in 0..reps {
        direct_ms = direct_ms.min(batch_ms(iters, || {
            std::hint::black_box(engine::try_analyze(&design, &target).expect("direct"));
        }));
        topo_ms = topo_ms.min(batch_ms(iters, || {
            std::hint::black_box(
                engine::try_analyze_topology(&design, &target, &topology, Estimator::Packed)
                    .expect("routed"),
            );
        }));
    }
    (direct_ms, topo_ms, (topo_ms / direct_ms - 1.0) * 100.0)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let parallelism = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
    println!(
        "bench_scaleout: multi-fridge sweep + N=1 overhead gate, {parallelism} core(s){}",
        if smoke { " (smoke)" } else { "" }
    );

    // 1. Bit-identity of the single-fridge route.
    let identical = check_n1_identity();
    println!("  n1_identical_to_classic: {identical}");
    assert!(identical, "single-fridge topology route diverged from the classic pipeline");

    // 2. Fridge-count sweep throughput (sharded power stage under the
    //    default thread pool).
    let fridge_counts: &[u32] = if smoke { &[2, 4] } else { &[2, 4, 8, 16] };
    qisim::power::clear_cache();
    let started = Instant::now();
    let verdicts = sweep_points(fridge_counts);
    let sweep_ms = started.elapsed().as_secs_f64() * 1e3;
    let points = verdicts.len();
    let points_per_s = points as f64 / (sweep_ms / 1e3);
    let reachable = verdicts
        .iter()
        .filter(|v| v.scale_out.as_ref().is_some_and(|so| so.fridges_to_target.is_some()))
        .count();
    println!(
        "  sweep: {points} points in {sweep_ms:.1} ms ({points_per_s:.0} points/s), \
         {reachable}/{points} reach the long-term target at some fridge count"
    );
    assert!(
        verdicts.iter().all(|v| v.scale_out.is_some()),
        "every sweep point must carry a scale-out block"
    );

    // 3. The N = 1 overhead gate, single-threaded and memo-cached. The
    //    gate re-measures once before failing so a scheduler hiccup in
    //    the first pass cannot fail the build.
    qisim::par::set_threads(Some(1));
    let (reps, iters) = if smoke { (8, 128) } else { (24, 512) };
    let (mut direct_ms, mut topo_ms, mut overhead_pct) = measure_overhead_pct(reps, iters);
    if overhead_pct > 2.0 {
        let retry = measure_overhead_pct(reps, iters);
        if retry.2 < overhead_pct {
            (direct_ms, topo_ms, overhead_pct) = retry;
        }
    }
    qisim::par::set_threads(None);
    println!(
        "  n1 overhead: direct {direct_ms:.3} ms vs topology {topo_ms:.3} ms per {iters} \
         memo-cached analyses -> {overhead_pct:+.2}%"
    );
    assert!(
        overhead_pct <= 2.0,
        "acceptance: N=1 topology route must cost <= 2% over direct analysis, \
         got {overhead_pct:+.2}%"
    );

    // Flush the fleet gauges for an armed QISIM_METRICS exporter before
    // the process exits.
    qisim::obs::telemetry::flush_now();

    if smoke {
        println!("bench_scaleout smoke gate passed.");
        return;
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(
        json,
        "  \"workload\": \"multi-fridge scale-out: {points}-point fridges-to-reach-Q sweep \
         (8 paper designs x {:?} fridges over cryo coax) + single-threaded N=1 \
         wrapper-overhead gate over {iters} memo-cached analyses x {reps} reps\",",
        fridge_counts
    );
    let _ = writeln!(json, "  \"available_parallelism\": {parallelism},");
    let _ = writeln!(json, "  \"n1_identical_to_classic\": {identical},");
    json.push_str("  \"sweep\": {\n");
    let _ = writeln!(json, "    \"points\": {points},");
    let _ = writeln!(json, "    \"wall_ms\": {sweep_ms:.3},");
    let _ = writeln!(json, "    \"points_per_s\": {points_per_s:.1},");
    let _ = writeln!(json, "    \"points_reaching_target\": {reachable}");
    json.push_str("  },\n");
    json.push_str("  \"n1_overhead\": {\n");
    let _ = writeln!(json, "    \"direct_batch_ms\": {direct_ms:.4},");
    let _ = writeln!(json, "    \"topology_batch_ms\": {topo_ms:.4},");
    let _ = writeln!(json, "    \"overhead_pct\": {overhead_pct:.3},");
    let _ = writeln!(json, "    \"gate_pct\": 2.0");
    json.push_str("  }\n");
    json.push_str("}\n");
    std::fs::write("BENCH_scaleout.json", &json).expect("write BENCH_scaleout.json");
    println!("wrote BENCH_scaleout.json ({} bytes)", json.len());
}
