//! Before/after benchmark of the bit-packed surface-code Monte-Carlo
//! kernel (ISSUE 3): trials/sec of the legacy allocate-per-trial kernel
//! vs. the allocation-free bit-packed engine, across code distances, at
//! a supremacy-regime physical error rate — plus the two correctness
//! gates the speedup is worthless without:
//!
//! * **bit-identical failure counts** between the packed kernel and the
//!   bool-vec reference (same RNG stream, pinned seeds);
//! * **thread-count-independent** parallel estimates.
//!
//! Run with `cargo run --release --example bench_mc` (writes
//! `BENCH_mc.json`), or `-- --smoke` for the CI regression gate (tiny
//! trial counts, correctness checks only, no artifact).

use qisim::surface::decoder::DecodingGraph;
use qisim::surface::montecarlo::{
    logical_error_rate_par, run_trials_legacy, run_trials_packed, run_trials_reference, McScratch,
};
use qisim::surface::{Lattice, PackedLattice};
use qisim_quantum::rng::Xorshift64Star;
use std::fmt::Write as _;
use std::time::Instant;

/// The supremacy-regime physical error rate the sweep cares about.
const P: f64 = 0.001;
/// Pinned seed for every timing and equality run.
const SEED: u64 = 0x51_C0DE;
/// Distances benchmarked (d = 7 carries the acceptance gate).
const DISTANCES: [usize; 5] = [3, 5, 7, 9, 11];

struct Row {
    d: usize,
    before_tps: f64,
    after_tps: f64,
    speedup: f64,
    failures_match: bool,
}

fn bench_distance(d: usize, legacy_trials: usize, packed_trials: usize) -> Row {
    let lattice = Lattice::new(d);
    let graph = DecodingGraph::new(&lattice, false);
    let packed = PackedLattice::new(&lattice);
    let mut scratch = McScratch::new(&packed, &graph);

    // Warm the scratch and caches off the clock.
    let mut rng = Xorshift64Star::seed_from_u64(SEED);
    let _ = run_trials_packed(&packed, &graph, P, 1000, &mut rng, &mut scratch);

    let before_tps = {
        let mut rng = Xorshift64Star::seed_from_u64(SEED);
        let started = Instant::now();
        let failures = run_trials_legacy(&lattice, &graph, P, legacy_trials, &mut rng);
        let tps = legacy_trials as f64 / started.elapsed().as_secs_f64();
        std::hint::black_box(failures);
        tps
    };
    let after_tps = {
        let mut rng = Xorshift64Star::seed_from_u64(SEED);
        let started = Instant::now();
        let failures = run_trials_packed(&packed, &graph, P, packed_trials, &mut rng, &mut scratch);
        let tps = packed_trials as f64 / started.elapsed().as_secs_f64();
        std::hint::black_box(failures);
        tps
    };

    // Bit-equality gate: packed vs. bool-vec reference on the same
    // stream, at the bench p and a denser one that exercises the
    // decoder path heavily.
    let failures_match = [P, 0.02].iter().all(|&p| {
        let n_eq = legacy_trials.min(4000);
        let fast = {
            let mut rng = Xorshift64Star::seed_from_u64(SEED ^ d as u64);
            run_trials_packed(&packed, &graph, p, n_eq, &mut rng, &mut scratch)
        };
        let oracle = {
            let mut rng = Xorshift64Star::seed_from_u64(SEED ^ d as u64);
            run_trials_reference(&lattice, &graph, p, n_eq, &mut rng)
        };
        fast == oracle
    });

    Row { d, before_tps, after_tps, speedup: after_tps / before_tps, failures_match }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (legacy_trials, packed_trials) = if smoke { (400, 4000) } else { (20_000, 400_000) };

    // Single-thread comparison, per the acceptance criteria.
    qisim::par::set_threads(Some(1));
    println!(
        "bench_mc: packed vs legacy Monte-Carlo kernel, p = {P}, single thread{}",
        if smoke { " (smoke)" } else { "" }
    );
    let rows: Vec<Row> =
        DISTANCES.iter().map(|&d| bench_distance(d, legacy_trials, packed_trials)).collect();
    for r in &rows {
        println!(
            "  d = {:>2}: before {:>11.0} trials/s | after {:>12.0} trials/s | {:>6.1}x | \
             failures match reference: {}",
            r.d, r.before_tps, r.after_tps, r.speedup, r.failures_match
        );
    }

    // Thread-count determinism of the parallel estimator (exercises the
    // remainder chunk: 5000 = 19·256 + 136).
    let lattice = Lattice::new(7);
    let reference = logical_error_rate_par(&lattice, 0.01, 5000, SEED);
    let identical = [1usize, 2, 4].iter().all(|&t| {
        qisim::par::set_threads(Some(t));
        logical_error_rate_par(&lattice, 0.01, 5000, SEED) == reference
    });
    qisim::par::set_threads(None);

    let all_match = rows.iter().all(|r| r.failures_match);
    let d7 = rows.iter().find(|r| r.d == 7).expect("d = 7 row");
    println!(
        "  results_identical_across_thread_counts: {identical}; \
         d=7 speedup {:.1}x; all failure counts match: {all_match}",
        d7.speedup
    );
    assert!(identical, "parallel estimates diverged across thread counts");
    assert!(all_match, "packed kernel diverged from the bool-vec reference");
    if smoke {
        // The CI gate checks correctness, not machine-dependent speed.
        println!("bench_mc smoke gate passed.");
        return;
    }
    assert!(d7.speedup >= 3.0, "acceptance: need >= 3x at d = 7, p = {P}, got {:.2}x", d7.speedup);

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(
        json,
        "  \"workload\": \"surface-code Monte-Carlo kernel, single thread: legacy \
         allocate-per-trial bool-vec kernel ({legacy_trials} trials) vs bit-packed \
         allocation-free kernel ({packed_trials} trials)\","
    );
    let _ = writeln!(json, "  \"p\": {P},");
    let _ = writeln!(json, "  \"seed\": {SEED},");
    json.push_str("  \"distances\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"d\": {}, \"before_trials_per_sec\": {:.0}, \
             \"after_trials_per_sec\": {:.0}, \"speedup\": {:.2}, \
             \"failure_counts_match_reference\": {}}}{comma}",
            r.d, r.before_tps, r.after_tps, r.speedup, r.failures_match
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"speedup_d7\": {:.2},", d7.speedup);
    let _ = writeln!(json, "  \"results_identical_across_thread_counts\": {identical},");
    let _ = writeln!(json, "  \"failure_counts_match_legacy_path\": {all_match}");
    json.push_str("}\n");
    std::fs::write("BENCH_mc.json", &json).expect("write BENCH_mc.json");
    println!("wrote BENCH_mc.json ({} bytes)", json.len());
}
