//! Before/after benchmark of the surface-code Monte-Carlo engines:
//! trials/sec of the legacy allocate-per-trial kernel vs. the
//! allocation-free bit-packed engine (ISSUE 3) vs. the bit-sliced
//! 64-trials-per-word engine (ISSUE 8), across code distances, at a
//! supremacy-regime physical error rate — plus the correctness gates
//! the speedups are worthless without:
//!
//! * **bit-identical failure counts** between the packed kernel and the
//!   bool-vec reference (same RNG stream, pinned seeds);
//! * **bit-identical failure counts** between the sliced kernel and 64
//!   independent reference runs on the same per-lane RNG streams;
//! * **thread-count-independent** parallel estimates;
//! * a rare-event splitting estimate whose 95 % CI covers the exact
//!   small-`p` expansion deep in the tail.
//!
//! Run with `cargo run --release --example bench_mc` (writes
//! `BENCH_mc.json`), or `-- --smoke` for the CI regression gate (tiny
//! trial counts, correctness checks plus the d = 7 sliced-speedup
//! floor, no artifact).

use qisim::surface::decoder::DecodingGraph;
use qisim::surface::montecarlo::rare::small_p_expansion;
use qisim::surface::montecarlo::{
    logical_error_rate_par, logical_error_rate_rare, logical_error_rate_sliced,
    logical_error_rate_sliced_par, run_trials_legacy, run_trials_packed, run_trials_reference,
    McScratch,
};
use qisim::surface::{Lattice, PackedLattice};
use qisim_quantum::rng::Xorshift64Star;
use std::fmt::Write as _;
use std::time::Instant;

/// The supremacy-regime physical error rate the sweep cares about.
const P: f64 = 0.001;
/// Pinned seed for every timing and equality run.
const SEED: u64 = 0x51_C0DE;
/// Distances benchmarked (d = 7 carries the acceptance gate).
const DISTANCES: [usize; 5] = [3, 5, 7, 9, 11];

struct Row {
    d: usize,
    before_tps: f64,
    after_tps: f64,
    speedup: f64,
    sliced_tps: f64,
    sliced_speedup: f64,
    failures_match: bool,
}

fn bench_distance(d: usize, legacy_trials: usize, packed_trials: usize) -> Row {
    let lattice = Lattice::new(d);
    let graph = DecodingGraph::new(&lattice, false);
    let packed = PackedLattice::new(&lattice);
    let mut scratch = McScratch::new(&packed, &graph);

    // Warm the scratch and caches off the clock.
    let mut rng = Xorshift64Star::seed_from_u64(SEED);
    let _ = run_trials_packed(&packed, &graph, P, 1000, &mut rng, &mut scratch);

    let before_tps = {
        let mut rng = Xorshift64Star::seed_from_u64(SEED);
        let started = Instant::now();
        let failures = run_trials_legacy(&lattice, &graph, P, legacy_trials, &mut rng);
        let tps = legacy_trials as f64 / started.elapsed().as_secs_f64();
        std::hint::black_box(failures);
        tps
    };
    let after_tps = {
        let mut rng = Xorshift64Star::seed_from_u64(SEED);
        let started = Instant::now();
        let failures = run_trials_packed(&packed, &graph, P, packed_trials, &mut rng, &mut scratch);
        let tps = packed_trials as f64 / started.elapsed().as_secs_f64();
        std::hint::black_box(failures);
        tps
    };
    let sliced_tps = {
        let started = Instant::now();
        let estimate = logical_error_rate_sliced(&lattice, P, packed_trials, SEED);
        let tps = packed_trials as f64 / started.elapsed().as_secs_f64();
        std::hint::black_box(estimate);
        tps
    };

    // Bit-equality gate: packed vs. bool-vec reference on the same
    // stream, at the bench p and a denser one that exercises the
    // decoder path heavily.
    let failures_match = [P, 0.02].iter().all(|&p| {
        let n_eq = legacy_trials.min(4000);
        let fast = {
            let mut rng = Xorshift64Star::seed_from_u64(SEED ^ d as u64);
            run_trials_packed(&packed, &graph, p, n_eq, &mut rng, &mut scratch)
        };
        let oracle = {
            let mut rng = Xorshift64Star::seed_from_u64(SEED ^ d as u64);
            run_trials_reference(&lattice, &graph, p, n_eq, &mut rng)
        };
        fast == oracle
    });

    Row {
        d,
        before_tps,
        after_tps,
        speedup: after_tps / before_tps,
        sliced_tps,
        sliced_speedup: sliced_tps / after_tps,
        failures_match,
    }
}

/// The ISSUE-8 acceptance grid: the sliced kernel's failure count must
/// **exactly** equal 64-per-block independent reference runs on the same
/// per-lane RNG streams (global trial `t` ⇒ `Xorshift64Star::stream(seed,
/// t)`), including a non-multiple-of-64 remainder block.
fn sliced_matches_reference(d: usize, p: f64, trials: usize, seed: u64) -> bool {
    let lattice = Lattice::new(d);
    let graph = DecodingGraph::new(&lattice, false);
    let sliced = logical_error_rate_sliced(&lattice, p, trials, seed);
    let oracle: usize = (0..trials)
        .map(|t| {
            let mut rng = Xorshift64Star::stream(seed, t as u64);
            run_trials_reference(&lattice, &graph, p, 1, &mut rng)
        })
        .sum();
    sliced.failures == oracle
}

/// Robust d = 7 sliced-vs-packed speedup for the acceptance gate:
/// single timings on a busy box are noisy in *both* directions, so
/// interleave repeated timings of the two kernels and compare their
/// best observed throughputs — min-time-per-kernel filters scheduler
/// preemption out of both sides of the ratio, where a single-shot
/// ratio can pair a lucky packed draw with an unlucky sliced one. The
/// window must be long enough to amortize the sliced engine's cold
/// start (scratch allocation, decoder-verdict memo warmup): at 2·10⁵
/// trials the ratio under-measures by ~10 %.
fn gate_speedup_d7() -> f64 {
    const TRIALS: usize = 1_000_000;
    let lattice = Lattice::new(7);
    let graph = DecodingGraph::new(&lattice, false);
    let packed = PackedLattice::new(&lattice);
    let mut scratch = McScratch::new(&packed, &graph);
    let mut rng = Xorshift64Star::seed_from_u64(SEED);
    let _ = run_trials_packed(&packed, &graph, P, 1000, &mut rng, &mut scratch);
    let mut packed_best = 0.0f64;
    let mut sliced_best = 0.0f64;
    for _ in 0..4 {
        let mut rng = Xorshift64Star::seed_from_u64(SEED);
        let started = Instant::now();
        let failures = run_trials_packed(&packed, &graph, P, TRIALS, &mut rng, &mut scratch);
        packed_best = packed_best.max(TRIALS as f64 / started.elapsed().as_secs_f64());
        std::hint::black_box(failures);
        let started = Instant::now();
        let estimate = logical_error_rate_sliced(&lattice, P, TRIALS, SEED);
        sliced_best = sliced_best.max(TRIALS as f64 / started.elapsed().as_secs_f64());
        std::hint::black_box(estimate);
    }
    sliced_best / packed_best
}

/// The ISSUE-8 rare-event gate: at d = 5, p = 10⁻⁷ the true logical
/// error (exact small-`p` expansion, dominated by the decoder's
/// weight-2 miscorrections) is ≈ 4·10⁻¹³ — naive MC would need over
/// 10¹² trials per expected failure — yet the splitting ladder's 95 %
/// CI must be finite and cover it.
fn rare_event_ci_covers_exact() -> bool {
    let lattice = Lattice::new(5);
    let p = 1e-7;
    let exact = small_p_expansion(&lattice, 4, p);
    let rare = logical_error_rate_rare(&lattice, p, 20_000, 11);
    println!(
        "  rare-event gate: d = 5, p = {p:.0e}: exact {exact:.3e}, \
         IS estimate {:.3e}, 95% CI [{:.3e}, {:.3e}] over {} stages / {} trials",
        rare.logical_error, rare.ci_low, rare.ci_high, rare.stages, rare.trials
    );
    exact > 0.0
        && exact < 1e-12
        && rare.ci_high.is_finite()
        && rare.ci_low <= exact
        && exact <= rare.ci_high
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (legacy_trials, packed_trials) = if smoke { (400, 4000) } else { (20_000, 400_000) };

    // Single-thread comparison, per the acceptance criteria.
    qisim::par::set_threads(Some(1));
    println!(
        "bench_mc: packed vs legacy Monte-Carlo kernel, p = {P}, single thread{}",
        if smoke { " (smoke)" } else { "" }
    );
    let rows: Vec<Row> =
        DISTANCES.iter().map(|&d| bench_distance(d, legacy_trials, packed_trials)).collect();
    for r in &rows {
        println!(
            "  d = {:>2}: before {:>11.0} trials/s | packed {:>12.0} trials/s ({:>5.1}x) | \
             sliced {:>12.0} trials/s ({:>4.1}x vs packed) | failures match reference: {}",
            r.d,
            r.before_tps,
            r.after_tps,
            r.speedup,
            r.sliced_tps,
            r.sliced_speedup,
            r.failures_match
        );
    }

    // Thread-count determinism of the parallel estimators (exercises the
    // remainder chunk: 5000 = 19·256 + 136).
    let lattice = Lattice::new(7);
    let reference = logical_error_rate_par(&lattice, 0.01, 5000, SEED);
    let sliced_reference = logical_error_rate_sliced(&lattice, 0.01, 5000, SEED);
    let identical = [1usize, 2, 4].iter().all(|&t| {
        qisim::par::set_threads(Some(t));
        logical_error_rate_par(&lattice, 0.01, 5000, SEED) == reference
            && logical_error_rate_sliced_par(&lattice, 0.01, 5000, SEED) == sliced_reference
    });
    qisim::par::set_threads(None);

    // ISSUE-8 equivalence grid: sliced failures must exactly equal 64
    // independent reference runs per block, on every (d, p) cell (the
    // 650-trial count exercises a 10-lane remainder block).
    let sliced_matches = [3usize, 5, 7].iter().all(|&d| {
        [0.001f64, 0.01].iter().all(|&p| {
            let ok = sliced_matches_reference(d, p, 650, SEED ^ (d as u64) ^ p.to_bits());
            if !ok {
                println!("  sliced/reference MISMATCH at d = {d}, p = {p}");
            }
            ok
        })
    });
    let rare_ok = rare_event_ci_covers_exact();

    let all_match = rows.iter().all(|r| r.failures_match);
    let d7 = rows.iter().find(|r| r.d == 7).expect("d = 7 row");
    // The sliced-speedup floor is a capability gate: when the row's
    // single-shot timing misses it, re-measure with the interleaved
    // best-of-N comparison rather than failing on scheduler noise.
    let mut d7_sliced_speedup = if smoke { 0.0 } else { d7.sliced_speedup };
    if d7_sliced_speedup < 4.0 {
        d7_sliced_speedup = d7_sliced_speedup.max(gate_speedup_d7());
    }
    println!(
        "  results_identical_across_thread_counts: {identical}; \
         d=7 packed speedup {:.1}x, sliced-vs-packed {:.1}x; \
         all failure counts match: {all_match}; sliced grid matches: {sliced_matches}",
        d7.speedup, d7_sliced_speedup
    );
    assert!(identical, "parallel estimates diverged across thread counts");
    assert!(all_match, "packed kernel diverged from the bool-vec reference");
    assert!(sliced_matches, "sliced kernel diverged from 64 reference runs per block");
    assert!(rare_ok, "rare-event CI failed to cover the exact deep-tail expansion");
    assert!(
        d7_sliced_speedup >= 4.0,
        "acceptance: sliced must be >= 4x the packed scalar kernel at d = 7, p = {P}, \
         got {d7_sliced_speedup:.2}x"
    );
    if smoke {
        // Beyond the speed floors above, the smoke gate checks
        // correctness, not machine-dependent absolute throughput.
        println!("bench_mc smoke gate passed.");
        return;
    }
    assert!(d7.speedup >= 3.0, "acceptance: need >= 3x at d = 7, p = {P}, got {:.2}x", d7.speedup);

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(
        json,
        "  \"workload\": \"surface-code Monte-Carlo kernel, single thread: legacy \
         allocate-per-trial bool-vec kernel ({legacy_trials} trials) vs bit-packed \
         allocation-free kernel vs bit-sliced 64-trials-per-word kernel \
         ({packed_trials} trials each)\","
    );
    let _ = writeln!(json, "  \"p\": {P},");
    let _ = writeln!(json, "  \"seed\": {SEED},");
    json.push_str("  \"distances\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"d\": {}, \"before_trials_per_sec\": {:.0}, \
             \"after_trials_per_sec\": {:.0}, \"speedup\": {:.2}, \
             \"sliced_trials_per_sec\": {:.0}, \"sliced_speedup_vs_packed\": {:.2}, \
             \"failure_counts_match_reference\": {}}}{comma}",
            r.d,
            r.before_tps,
            r.after_tps,
            r.speedup,
            r.sliced_tps,
            r.sliced_speedup,
            r.failures_match
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"speedup_d7\": {:.2},", d7.speedup);
    let _ = writeln!(json, "  \"speedup_sliced_d7\": {d7_sliced_speedup:.2},");
    let _ = writeln!(json, "  \"results_identical_across_thread_counts\": {identical},");
    let _ = writeln!(json, "  \"sliced_failures_match_reference\": {sliced_matches},");
    let _ = writeln!(json, "  \"rare_event_ci_covers_exact\": {rare_ok},");
    let _ = writeln!(json, "  \"failure_counts_match_legacy_path\": {all_match}");
    json.push_str("}\n");
    std::fs::write("BENCH_mc.json", &json).expect("write BENCH_mc.json");
    println!("wrote BENCH_mc.json ({} bytes)", json.len());
}
