//! Gate-error laboratory: run the Hamiltonian-simulation error models of
//! §4.4 at their reference operating points (Table 1 / Table 2 anchors).
//!
//! Run with `cargo run --release --example gate_error_lab`
//! (release strongly recommended: the CZ calibrator and SFQ bitstream
//! search do real numerical work).

use qisim::errormodel::cmos_1q::{Axis, Cmos1qModel};
use qisim::errormodel::readout_cmos::{CmosReadoutModel, MultiRound};
use qisim::errormodel::readout_sfq::SfqReadoutModel;
use qisim::errormodel::sfq_1q::Sfq1qModel;
use qisim::errormodel::workload::seeded_rng;
use qisim::errormodel::CzModel;
use qisim::microarch::DecisionKind;
use qisim::quantum::rng::Xorshift64Star;
use std::f64::consts::PI;

fn main() {
    println!("== CMOS single-qubit gate (25 ns DRAG Hann pulse) ==");
    let cmos = Cmos1qModel::baseline();
    for bits in [4u32, 6, 9, 14] {
        let e = cmos.coherent_gate_error::<Xorshift64Star>(Axis::X, PI, bits, None);
        println!("  {bits:>2}-bit DAC: coherent error {e:.3e}");
    }
    let coh = cmos.coherent_gate_error::<Xorshift64Star>(Axis::X, PI, 14, None);
    println!(
        "  + decoherence (T1=T2=280us): {:.3e} (Table 1: 6.59e-5)",
        cmos.with_decoherence(coh, 280.0, 280.0)
    );

    println!("\n== SFQ single-qubit gate (21-bit bitstream) ==");
    let sfq = Sfq1qModel::baseline();
    let naive = sfq.naive_ry_pi2();
    let opt = sfq.optimized_ry_pi2();
    println!("  naive 5-pulse train : {:.3e}", naive.error);
    println!(
        "  optimized bitstream : {:.3e} at slots {:?}, tip {:.4} rad (Table 1: 1.37e-5)",
        opt.error, opt.pulses, opt.delta_theta
    );
    println!(
        "  worst table-Rz error: {:.3e}",
        (0..8).map(|n| sfq.rz_error(n as f64 * PI / 4.0)).fold(0.0f64, f64::max)
    );

    println!("\n== CZ gate (flux pulse, coupled 3-level transmons) ==");
    let cz = CzModel::baseline();
    let cal = cz.calibrate();
    println!("  calibrated ramp: peak {:.4}, ideal error {:.3e}", cal.peak, cal.ideal_error);
    let mut rng = seeded_rng(11);
    println!(
        "  10-bit + thermal noise: {:.3e} (Table 1: 9.0e-4 +/- 7e-4)",
        cz.noisy_cz_error(&cal, 10, 0.004, &mut rng)
    );
    println!("  unit-step pulse (old Horse Ridge II design): {:.3e}", cz.unit_step_error());

    println!("\n== CMOS dispersive readout ==");
    let ro = CmosReadoutModel::baseline();
    let e = ro.error_rate(DecisionKind::BinCounting, 4000, &mut rng);
    println!("  bin-counting, 517 ns: {e:.3e} (Table 2: 1.0e-3)");
    let (mre, mrl) = MultiRound::standard().error_and_latency(&ro, 4000, &mut rng);
    println!("  multi-round (Opt-7): {mre:.3e} at mean {mrl:.1} ns");

    println!("\n== SFQ JPM readout ==");
    let sro = SfqReadoutModel::baseline();
    let errs = sro.errors();
    println!(
        "  driving+tunneling {:.3e}, LJJ comparator {:.3e}, reset {:.3e}",
        errs.driving_tunneling, errs.jpm_readout, errs.reset
    );
    println!(
        "  assignment error {:.3e} (Table 1: 6.0e-3); total {:.3e}",
        errs.assignment(),
        errs.total()
    );
}
