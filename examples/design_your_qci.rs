//! Design-space exploration: build a custom QCI, apply optimizations one
//! at a time, and watch the scalability verdict move — the workflow the
//! paper's §6 walks through. The second half shows the fallible engine:
//! validated [`qisim::spec::DesignSpec`]s, the staged
//! [`qisim::engine::AnalysisPlan`], typed diagnostics, and the lossless
//! text codec.
//!
//! Run with `cargo run --example design_your_qci`.

use qisim::engine::{self, AnalysisPlan};
use qisim::hal::fridge::Stage;
use qisim::spec::{DesignSpec, Preset};
use qisim::{analyze, apply, codec, Opt, QciDesign};
use qisim_surface::target::Target;

fn report(step: &str, design: &QciDesign, target: &Target) {
    let s = analyze(design, target);
    println!(
        "{step:<38} -> {:>8} qubits (binds {:?}), p_L {:.2e}, target met: {}",
        s.power_limited_qubits,
        s.binding_stage,
        s.logical_error,
        s.reaches(target)
    );
}

fn main() {
    let near = Target::near_term();
    println!("== Near-term 4K CMOS chain (Fig. 13a) ==");
    let mut d = QciDesign::cmos_baseline();
    report("baseline (bin-counting, 14-bit)", &d, &near);
    d = apply(&d, Opt::MemorylessDecision).expect("opt-1 applies to CMOS");
    report("+ Opt-1 memoryless decision", &d, &near);
    d = apply(&d, Opt::LowPrecisionDrive).expect("opt-2 applies to CMOS");
    report("+ Opt-2 6-bit drive", &d, &near);

    println!("\n== Near-term RSFQ chain (Fig. 13b) ==");
    let mut s = QciDesign::rsfq_baseline();
    report("baseline (unshared, 256-SR bitgen)", &s, &near);
    s = apply(&s, Opt::SharedPipelinedReadout).expect("opt-3 applies to SFQ");
    report("+ Opt-3 shared+pipelined readout", &s, &near);
    s = apply(&s, Opt::LowPowerBitgen).expect("opt-4 applies to SFQ");
    report("+ Opt-4 low-power bitgen", &s, &near);
    s = apply(&s, Opt::SingleBroadcast).expect("opt-5 applies to SFQ");
    report("+ Opt-5 #BS=1", &s, &near);

    println!("\n== Long-term chains (Fig. 17) ==");
    let long = Target::long_term();
    report("advanced CMOS + Opt-6,7", &QciDesign::cmos_long_term(), &long);
    report("ERSFQ + Opt-8", &QciDesign::ersfq_long_term(), &long);

    println!("\nMis-applied optimizations are rejected:");
    let err = apply(&QciDesign::cmos_baseline(), Opt::LowPowerBitgen).unwrap_err();
    println!("  {err}");

    println!("\n== The fallible engine: specs, plans, and the codec ==");
    // A validated spec: the Fig. 13a optimized design on a doubled 4 K
    // budget, built without any panic risk.
    let spec = DesignSpec::new(Preset::CmosBaseline)
        .name("opt12 on a big fridge")
        .apply(Opt::MemorylessDecision)
        .apply(Opt::LowPrecisionDrive)
        .budget(Stage::K4, 3.0);
    let text = codec::encode_spec(&spec);
    println!("spec file ({} bytes, round-trips losslessly):\n{text}", text.len());
    assert_eq!(codec::parse_spec(&text).expect("own encoding"), spec);

    // Stage-by-stage execution: stop after Power for a watts-only
    // question, then finish for the verdict.
    let design = spec.build().expect("validated spec");
    let fridge = spec.fridge().expect("validated budgets");
    let mut plan = AnalysisPlan::on(&design, &near, &fridge).expect("validated inputs");
    while plan.stage_powers().is_none() {
        plan.run_next().expect("paper design");
    }
    let power = plan.stage_powers().expect("power stage ran");
    println!(
        "after the Power stage: {} qubits, binds {:?}",
        power.power_limited_qubits, power.binding_stage
    );
    let verdict = plan.run().expect("paper design");
    println!(
        "verdict: {} qubits, target met: {}",
        verdict.power_limited_qubits,
        verdict.reaches(&near)
    );

    // Invalid knobs are typed diagnostics, not panics.
    for bad in [
        DesignSpec::new(Preset::CmosBaseline).drive_fdm(0),
        DesignSpec::new(Preset::CmosBaseline).drive_bits(40),
        DesignSpec::new(Preset::RsfqBaseline).drive_bits(6),
        DesignSpec::new(Preset::CmosBaseline).budget(Stage::K4, -1.0),
    ] {
        let err = engine::try_analyze_spec(&bad, &near).unwrap_err();
        println!("  rejected: {err}");
    }

    // Verdicts round-trip through the same codec for replay/diffing.
    let report = codec::encode_scalability(&verdict);
    assert_eq!(codec::parse_scalability(&report).expect("own encoding"), verdict);
    println!("verdict report round-trips through {} bytes of text", report.len());
}
