//! Design-space exploration: build a custom QCI, apply optimizations one
//! at a time, and watch the scalability verdict move — the workflow the
//! paper's §6 walks through.
//!
//! Run with `cargo run --example design_your_qci`.

use qisim::{analyze, apply, Opt, QciDesign};
use qisim_surface::target::Target;

fn report(step: &str, design: &QciDesign, target: &Target) {
    let s = analyze(design, target);
    println!(
        "{step:<38} -> {:>8} qubits (binds {:?}), p_L {:.2e}, target met: {}",
        s.power_limited_qubits,
        s.binding_stage,
        s.logical_error,
        s.reaches(target)
    );
}

fn main() {
    let near = Target::near_term();
    println!("== Near-term 4K CMOS chain (Fig. 13a) ==");
    let mut d = QciDesign::cmos_baseline();
    report("baseline (bin-counting, 14-bit)", &d, &near);
    d = apply(&d, Opt::MemorylessDecision).expect("opt-1 applies to CMOS");
    report("+ Opt-1 memoryless decision", &d, &near);
    d = apply(&d, Opt::LowPrecisionDrive).expect("opt-2 applies to CMOS");
    report("+ Opt-2 6-bit drive", &d, &near);

    println!("\n== Near-term RSFQ chain (Fig. 13b) ==");
    let mut s = QciDesign::rsfq_baseline();
    report("baseline (unshared, 256-SR bitgen)", &s, &near);
    s = apply(&s, Opt::SharedPipelinedReadout).expect("opt-3 applies to SFQ");
    report("+ Opt-3 shared+pipelined readout", &s, &near);
    s = apply(&s, Opt::LowPowerBitgen).expect("opt-4 applies to SFQ");
    report("+ Opt-4 low-power bitgen", &s, &near);
    s = apply(&s, Opt::SingleBroadcast).expect("opt-5 applies to SFQ");
    report("+ Opt-5 #BS=1", &s, &near);

    println!("\n== Long-term chains (Fig. 17) ==");
    let long = Target::long_term();
    report("advanced CMOS + Opt-6,7", &QciDesign::cmos_long_term(), &long);
    report("ERSFQ + Opt-8", &QciDesign::ersfq_long_term(), &long);

    println!("\nMis-applied optimizations are rejected:");
    let err = apply(&QciDesign::cmos_baseline(), Opt::LowPowerBitgen).unwrap_err();
    println!("  {err}");
}
