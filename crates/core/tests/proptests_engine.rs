//! Property-based tests of the fallible staged engine: `try_analyze` is
//! panic-free over randomized near-valid knob grids, and the codec
//! round-trips arbitrary well-formed specs.
//!
//! Requires the `proptest` crate, which the offline reference build
//! cannot fetch; enable with `cargo test --features proptest` on a
//! machine with registry access (and add the dev-dependency back).

#![cfg(feature = "proptest")]

use proptest::prelude::*;
use qisim::codec;
use qisim::engine::try_analyze_spec;
use qisim::spec::{DesignSpec, Preset};
use qisim_hal::fridge::Stage;
use qisim_surface::target::Target;

fn presets() -> impl Strategy<Value = Preset> {
    prop_oneof![
        Just(Preset::RoomCoax),
        Just(Preset::RoomMicrostrip),
        Just(Preset::RoomPhotonic),
        Just(Preset::CmosBaseline),
        Just(Preset::CmosNearTerm),
        Just(Preset::CmosLongTerm),
        Just(Preset::RsfqBaseline),
        Just(Preset::RsfqNearTerm),
        Just(Preset::ErsfqLongTerm),
    ]
}

/// Near-valid knob grids: each override straddles its validated range
/// (and is applied regardless of the preset's technology, so mismatches
/// are generated too).
fn near_valid_specs() -> impl Strategy<Value = DesignSpec> {
    (
        presets(),
        proptest::option::of(0u32..68),
        proptest::option::of(0u32..19),
        proptest::option::of(0u32..10),
        proptest::option::of(-100.0f64..4000.0),
        proptest::option::of(-0.5f64..2.0),
        proptest::option::of((0usize..5, -1.0f64..8.0)),
    )
        .prop_map(|(preset, fdm, bits, bs, readout, scale, budget)| {
            let mut spec = DesignSpec::new(preset);
            if let Some(v) = fdm {
                spec = spec.drive_fdm(v);
            }
            if let Some(v) = bits {
                spec = spec.drive_bits(v);
            }
            if let Some(v) = bs {
                spec = spec.bs(v);
            }
            if let Some(v) = readout {
                spec = spec.readout_ns(v);
            }
            if let Some(v) = scale {
                spec = spec.analog_scale(v);
            }
            if let Some((i, w)) = budget {
                spec = spec.budget(Stage::ALL[i], w);
            }
            spec
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `try_analyze_spec` never panics: every input is either a verdict
    /// or a typed diagnostic that renders.
    #[test]
    fn try_analyze_is_panic_free(spec in near_valid_specs()) {
        match try_analyze_spec(&spec, &Target::near_term()) {
            Ok(s) => prop_assert!(s.logical_error >= 0.0),
            Err(e) => prop_assert!(!e.to_string().is_empty()),
        }
    }

    /// Any well-formed spec survives `parse(encode(spec)) == spec`,
    /// valid knobs or not (validation belongs to `build()`, not the
    /// codec).
    #[test]
    fn codec_round_trips_arbitrary_specs(spec in near_valid_specs()) {
        let text = codec::encode_spec(&spec);
        prop_assert_eq!(codec::parse_spec(&text).unwrap(), spec);
    }
}
