//! Property-based tests of the scalability engine.
//!
//! Requires the `proptest` crate, which the offline reference build
//! cannot fetch; enable with `cargo test --features proptest` on a
//! machine with registry access (and add the dev-dependency back).

#![cfg(feature = "proptest")]

use proptest::prelude::*;
use qisim::config::cmos_1q_error_for_bits;
use qisim::spec::{DesignSpec, Preset};
use qisim::{analyze_on, codec, QciDesign};
use qisim_hal::fridge::{Fridge, Stage};
use qisim_hal::topology::LinkKind;
use qisim_microarch::cryo_cmos::CryoCmosConfig;
use qisim_microarch::DecisionKind;
use qisim_surface::target::Target;

fn presets() -> impl Strategy<Value = Preset> {
    prop_oneof![
        Just(Preset::RoomCoax),
        Just(Preset::CmosBaseline),
        Just(Preset::CmosNearTerm),
        Just(Preset::RsfqBaseline),
        Just(Preset::RsfqNearTerm),
    ]
}

fn links() -> impl Strategy<Value = LinkKind> {
    prop_oneof![Just(LinkKind::RoomCoax), Just(LinkKind::CryoCoax), Just(LinkKind::Photonic)]
}

fn designs() -> impl Strategy<Value = QciDesign> {
    prop_oneof![
        Just(QciDesign::room_coax()),
        Just(QciDesign::room_microstrip()),
        Just(QciDesign::room_photonic()),
        Just(QciDesign::cmos_baseline()),
        Just(QciDesign::rsfq_baseline()),
        Just(QciDesign::rsfq_near_term()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A larger refrigerator budget never reduces any design's
    /// power-limited scale.
    #[test]
    fn budget_is_monotone(design in designs(), scale in 1.0f64..8.0) {
        let t = Target::near_term();
        let std = Fridge::standard();
        let big = Fridge::standard()
            .with_budget(Stage::K4, 1.5 * scale)
            .with_budget(Stage::Mk100, 200e-6 * scale)
            .with_budget(Stage::Mk20, 20e-6 * scale);
        let a = analyze_on(&design, &t, &std).power_limited_qubits;
        let b = analyze_on(&design, &t, &big).power_limited_qubits;
        prop_assert!(b >= a, "{}: {a} -> {b}", design.name());
    }

    /// The drive-precision error model is monotone decreasing in bits and
    /// bounded below by the Table 2 floor.
    #[test]
    fn precision_error_is_monotone(bits in 2u32..15) {
        let e = cmos_1q_error_for_bits(bits);
        let e_next = cmos_1q_error_for_bits(bits + 1);
        prop_assert!(e_next < e);
        prop_assert!(e > 8.17e-7);
    }

    /// Scalability analysis is deterministic and internally consistent:
    /// `manageable <= power_limited`, and `reaches` implies both the
    /// error check and the scale check.
    #[test]
    fn analysis_invariants(design in designs()) {
        let t = Target::near_term();
        let s1 = analyze_on(&design, &t, &Fridge::standard());
        let s2 = analyze_on(&design, &t, &Fridge::standard());
        prop_assert_eq!(&s1, &s2, "analysis must be deterministic");
        prop_assert!(s1.manageable_qubits() <= s1.power_limited_qubits);
        if s1.reaches(&t) {
            prop_assert!(s1.error_ok);
            prop_assert!(s1.power_limited_qubits >= t.physical_qubits() as u64);
        }
        prop_assert!(s1.logical_error >= 0.0 && s1.logical_error <= 1.0);
    }

    /// Longer readout windows never improve the logical error and never
    /// raise the power-limited scale of a CMOS design (the Opt-7 axis).
    #[test]
    fn readout_time_tradeoff(extra in 0.0f64..2000.0) {
        let t = Target::near_term();
        let base = CryoCmosConfig {
            decision: DecisionKind::Memoryless,
            ..CryoCmosConfig::baseline()
        };
        let slow = CryoCmosConfig { readout_ns: base.readout_ns + extra, ..base };
        let f = Fridge::standard();
        let s_base = analyze_on(&QciDesign::CryoCmos(base), &t, &f);
        let s_slow = analyze_on(&QciDesign::CryoCmos(slow), &t, &f);
        prop_assert!(s_slow.logical_error >= s_base.logical_error);
        prop_assert!(s_slow.esm_cycle_ns >= s_base.esm_cycle_ns);
    }

    /// Any valid fridge topology survives the spec codec byte-for-byte:
    /// encode → parse → encode is a fixed point, the parsed spec builds
    /// the same [`qisim_hal::topology::FridgeTopology`], and the
    /// scale-out flag tracks the fridge count.
    #[test]
    fn fridge_topology_codec_round_trips(
        preset in presets(),
        fridges in 1u32..=1024,
        link in links(),
        links_per_fridge in 1u32..=64,
        shared in any::<bool>(),
    ) {
        let spec = DesignSpec::new(preset)
            .fridges(fridges)
            .link(link)
            .links_per_fridge(links_per_fridge)
            .shared_controllers(shared);
        let text = codec::encode_spec(&spec);
        let parsed = codec::parse_spec(&text).expect("encoded spec must parse");
        prop_assert_eq!(&parsed, &spec);
        prop_assert_eq!(codec::encode_spec(&parsed), text, "encode must be a fixed point");
        let topology = parsed.topology().expect("valid knobs must build a topology");
        prop_assert_eq!(topology.fridges(), fridges);
        prop_assert_eq!(topology.link(), link);
        prop_assert_eq!(topology.links_per_fridge(), links_per_fridge);
        prop_assert_eq!(topology.shared_controllers(), shared);
        prop_assert_eq!(parsed.has_scale_out(), fridges > 1);
    }

    /// FDM degree trades power for error: higher FDM never lengthens the
    /// per-qubit drive-hardware budget but never shortens the cycle.
    #[test]
    fn fdm_tradeoff(fdm in 4u32..64) {
        let cfg = CryoCmosConfig { drive_fdm: fdm, ..CryoCmosConfig::baseline() };
        let tight = CryoCmosConfig { drive_fdm: fdm + 4, ..cfg };
        prop_assert!(tight.esm_profile().cycle_ns() >= cfg.esm_profile().cycle_ns());
        let n = 512;
        let drive_lines = |c: &CryoCmosConfig| {
            c.build().wires.iter().find(|w| w.name == "drive lines").unwrap().cables(n)
        };
        prop_assert!(drive_lines(&tight) <= drive_lines(&cfg));
    }
}
