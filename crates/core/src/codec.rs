//! A zero-dependency `key = value` text codec for the pipeline's
//! boundary artifacts: [`DesignSpec`] inputs and [`Scalability`]
//! verdicts round-trip losslessly through plain text.
//!
//! The format is deliberately boring — one artifact per document, a
//! versioned header line, `#` comments, one `key = value` pair per line —
//! so spec files can be written by hand, diffed in review, and replayed
//! by a batch search without any serde machinery (the workspace builds
//! fully offline). Floats are rendered with Rust's shortest round-trip
//! `Display`, so `parse(encode(x)) == x` bit-for-bit.
//!
//! # Examples
//!
//! ```
//! use qisim::codec;
//! use qisim::spec::{DesignSpec, Preset};
//!
//! let spec = DesignSpec::new(Preset::CmosBaseline).drive_bits(6).name("lab-7");
//! let text = codec::encode_spec(&spec);
//! assert_eq!(codec::parse_spec(&text).unwrap(), spec);
//! ```

use crate::error::{DecodeError, QisimError};
use crate::scalability::{Scalability, ScaleOut, ScaleOutBinding};
use crate::spec::{DesignSpec, Estimator, Preset};
use qisim_hal::fridge::Stage;
use qisim_hal::topology::LinkKind;
use qisim_microarch::sfq::{BitgenKind, JpmSharing};
use qisim_microarch::DecisionKind;
use std::fmt::Write as _;

/// Header line of a serialized [`DesignSpec`].
pub const SPEC_HEADER: &str = "qisim spec v1";
/// Header line of a serialized [`Scalability`] report.
pub const SCALABILITY_HEADER: &str = "qisim scalability v1";

/// Serializes a [`DesignSpec`] (only the overrides that are actually
/// set, so the document reads like the builder chain that made it).
pub fn encode_spec(spec: &DesignSpec) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{SPEC_HEADER}");
    let _ = writeln!(out, "preset = {}", spec.preset.id());
    if let Some(name) = &spec.name {
        let _ = writeln!(out, "name = {name}");
    }
    if let Some(v) = spec.estimator {
        let _ = writeln!(out, "estimator = {}", v.label());
    }
    if let Some(v) = spec.drive_fdm {
        let _ = writeln!(out, "drive_fdm = {v}");
    }
    if let Some(v) = spec.drive_bits {
        let _ = writeln!(out, "drive_bits = {v}");
    }
    if let Some(v) = spec.decision {
        let _ = writeln!(out, "decision = {}", v.label());
    }
    if let Some(v) = spec.masked_isa {
        let _ = writeln!(out, "masked_isa = {v}");
    }
    if let Some(v) = spec.readout_ns {
        let _ = writeln!(out, "readout_ns = {v}");
    }
    if let Some(v) = spec.analog_scale {
        let _ = writeln!(out, "analog_scale = {v}");
    }
    if let Some(v) = spec.bs {
        let _ = writeln!(out, "bs = {v}");
    }
    if let Some(v) = spec.bitgen {
        let _ = writeln!(out, "bitgen = {}", v.label());
    }
    if let Some(v) = spec.sharing {
        let _ = writeln!(out, "sharing = {}", v.label());
    }
    if let Some(v) = spec.fast_driving {
        let _ = writeln!(out, "fast_driving = {v}");
    }
    for (i, &stage) in Stage::ALL.iter().enumerate() {
        if let Some(w) = spec.budgets_w[i] {
            let _ = writeln!(out, "budget.{} = {w}", stage.label());
        }
    }
    if let Some(v) = spec.fridges {
        let _ = writeln!(out, "fridges = {v}");
    }
    if let Some(v) = spec.link {
        let _ = writeln!(out, "link = {}", v.label());
    }
    if let Some(v) = spec.links_per_fridge {
        let _ = writeln!(out, "links_per_fridge = {v}");
    }
    if let Some(v) = spec.shared_controllers {
        let _ = writeln!(out, "shared_controllers = {v}");
    }
    out
}

/// Parses the output of [`encode_spec`].
///
/// # Errors
///
/// Returns [`QisimError::Decode`] with a 1-based line number for a
/// missing/wrong header, an unknown or duplicate key, or an unparsable
/// value. Parsing does **not** validate knob ranges — that stays with
/// [`DesignSpec::build`], so a well-formed file carrying a bad knob
/// still round-trips and diagnoses at build time.
pub fn parse_spec(text: &str) -> Result<DesignSpec, QisimError> {
    let (header_line, mut lines) = content_lines(text, SPEC_HEADER)?;
    let Some((line_no, key, value)) = lines.next().transpose()? else {
        // A header-only document (e.g. `"qisim spec v1\n"`) anchors at
        // the line where `preset` should have been.
        return Err(DecodeError::new(header_line + 1, "missing key `preset`").into());
    };
    if key != "preset" {
        return Err(DecodeError::new(line_no, "first key must be `preset`").into());
    }
    let preset = Preset::from_id(value)
        .ok_or_else(|| DecodeError::new(line_no, format!("unknown preset `{value}`")))?;
    let mut spec = DesignSpec::new(preset);
    for item in lines {
        let (line_no, key, value) = item?;
        let dup = |set: bool| {
            if set {
                Err(DecodeError::new(line_no, format!("duplicate key `{key}`")))
            } else {
                Ok(())
            }
        };
        match key {
            "preset" => return Err(DecodeError::new(line_no, "duplicate key `preset`").into()),
            "name" => {
                dup(spec.name.is_some())?;
                spec.name = Some(value.to_string());
            }
            "estimator" => {
                dup(spec.estimator.is_some())?;
                spec.estimator = Some(parse_label(line_no, key, value, Estimator::from_label)?);
            }
            "drive_fdm" => {
                dup(spec.drive_fdm.is_some())?;
                spec.drive_fdm = Some(parse_num(line_no, key, value)?);
            }
            "drive_bits" => {
                dup(spec.drive_bits.is_some())?;
                spec.drive_bits = Some(parse_num(line_no, key, value)?);
            }
            "decision" => {
                dup(spec.decision.is_some())?;
                spec.decision = Some(parse_label(line_no, key, value, DecisionKind::from_label)?);
            }
            "masked_isa" => {
                dup(spec.masked_isa.is_some())?;
                spec.masked_isa = Some(parse_num(line_no, key, value)?);
            }
            "readout_ns" => {
                dup(spec.readout_ns.is_some())?;
                spec.readout_ns = Some(parse_num(line_no, key, value)?);
            }
            "analog_scale" => {
                dup(spec.analog_scale.is_some())?;
                spec.analog_scale = Some(parse_num(line_no, key, value)?);
            }
            "bs" => {
                dup(spec.bs.is_some())?;
                spec.bs = Some(parse_num(line_no, key, value)?);
            }
            "bitgen" => {
                dup(spec.bitgen.is_some())?;
                spec.bitgen = Some(parse_label(line_no, key, value, BitgenKind::from_label)?);
            }
            "sharing" => {
                dup(spec.sharing.is_some())?;
                spec.sharing = Some(parse_label(line_no, key, value, JpmSharing::from_label)?);
            }
            "fast_driving" => {
                dup(spec.fast_driving.is_some())?;
                spec.fast_driving = Some(parse_num(line_no, key, value)?);
            }
            "fridges" => {
                dup(spec.fridges.is_some())?;
                spec.fridges = Some(parse_num(line_no, key, value)?);
            }
            "link" => {
                dup(spec.link.is_some())?;
                spec.link = Some(parse_label(line_no, key, value, LinkKind::from_label)?);
            }
            "links_per_fridge" => {
                dup(spec.links_per_fridge.is_some())?;
                spec.links_per_fridge = Some(parse_num(line_no, key, value)?);
            }
            "shared_controllers" => {
                dup(spec.shared_controllers.is_some())?;
                spec.shared_controllers = Some(parse_num(line_no, key, value)?);
            }
            _ => {
                let Some(label) = key.strip_prefix("budget.") else {
                    return Err(DecodeError::new(line_no, format!("unknown key `{key}`")).into());
                };
                let stage = Stage::from_label(label).ok_or_else(|| {
                    DecodeError::new(line_no, format!("unknown fridge stage `{label}`"))
                })?;
                let idx = Stage::ALL.iter().position(|s| *s == stage).unwrap_or(0);
                dup(spec.budgets_w[idx].is_some())?;
                spec.budgets_w[idx] = Some(parse_num(line_no, key, value)?);
            }
        }
    }
    Ok(spec)
}

/// Serializes a [`Scalability`] verdict, per-stage watt attribution
/// included.
pub fn encode_scalability(report: &Scalability) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{SCALABILITY_HEADER}");
    let _ = writeln!(out, "design = {}", report.design);
    let _ = writeln!(out, "power_limited_qubits = {}", report.power_limited_qubits);
    match report.binding_stage {
        Some(stage) => {
            let _ = writeln!(out, "binding_stage = {}", stage.label());
        }
        None => {
            let _ = writeln!(out, "binding_stage = -");
        }
    }
    let _ = writeln!(out, "logical_error = {}", report.logical_error);
    let _ = writeln!(out, "target_error = {}", report.target_error);
    let _ = writeln!(out, "error_ok = {}", report.error_ok);
    let _ = writeln!(out, "esm_cycle_ns = {}", report.esm_cycle_ns);
    let _ = writeln!(out, "stages = {}", report.stages.len());
    for (i, s) in report.stages.iter().enumerate() {
        let _ = writeln!(
            out,
            "stage.{i} = {} {} {} {} {} {}",
            s.stage.label(),
            s.device_static_w,
            s.device_dynamic_w,
            s.wire_w,
            s.instr_link_w,
            s.budget_w,
        );
    }
    // Scale-out block: only multi-fridge verdicts carry one, so every
    // pre-scale-out document stays byte-identical.
    if let Some(so) = &report.scale_out {
        let _ = writeln!(out, "scaleout.fridges = {}", so.fridges);
        let _ = writeln!(out, "scaleout.link = {}", so.link.label());
        let _ = writeln!(out, "scaleout.links_per_fridge = {}", so.links_per_fridge);
        let _ = writeln!(out, "scaleout.shared_controllers = {}", so.shared_controllers);
        let _ = writeln!(out, "scaleout.per_fridge_qubits = {}", so.per_fridge_qubits);
        let _ = writeln!(out, "scaleout.target_qubits = {}", so.target_qubits);
        match so.fridges_to_target {
            Some(n) => {
                let _ = writeln!(out, "scaleout.fridges_to_target = {n}");
            }
            None => {
                let _ = writeln!(out, "scaleout.fridges_to_target = -");
            }
        }
        match so.binding {
            Some(b) => {
                let _ = writeln!(out, "scaleout.binding = {}", b.label());
            }
            None => {
                let _ = writeln!(out, "scaleout.binding = -");
            }
        }
        let [a, b, c, d, e] = so.interconnect_w;
        let _ = writeln!(out, "scaleout.interconnect_w = {a} {b} {c} {d} {e}");
    }
    out
}

/// Parses the output of [`encode_scalability`].
///
/// # Errors
///
/// Returns [`QisimError::Decode`] with a 1-based line number for a bad
/// header, missing or duplicate keys, unparsable values, or a stage
/// count that does not match the `stage.<i>` rows.
pub fn parse_scalability(text: &str) -> Result<Scalability, QisimError> {
    let mut design: Option<String> = None;
    let mut power_limited_qubits: Option<u64> = None;
    let mut binding_stage: Option<Option<Stage>> = None;
    let mut logical_error: Option<f64> = None;
    let mut target_error: Option<f64> = None;
    let mut error_ok: Option<bool> = None;
    let mut esm_cycle_ns: Option<f64> = None;
    let mut n_stages: Option<usize> = None;
    let mut stages: Vec<qisim_power::StagePower> = Vec::new();
    let mut so_fridges: Option<u32> = None;
    let mut so_link: Option<LinkKind> = None;
    let mut so_links_per_fridge: Option<u32> = None;
    let mut so_shared_controllers: Option<bool> = None;
    let mut so_per_fridge_qubits: Option<u64> = None;
    let mut so_target_qubits: Option<u64> = None;
    let mut so_fridges_to_target: Option<Option<u64>> = None;
    let mut so_binding: Option<Option<ScaleOutBinding>> = None;
    let mut so_interconnect_w: Option<[f64; 5]> = None;
    let (_, lines) = content_lines(text, SCALABILITY_HEADER)?;
    for item in lines {
        let (line_no, key, value) = item?;
        let dup = |set: bool| {
            if set {
                Err(DecodeError::new(line_no, format!("duplicate key `{key}`")))
            } else {
                Ok(())
            }
        };
        match key {
            "design" => {
                dup(design.is_some())?;
                design = Some(value.to_string());
            }
            "power_limited_qubits" => {
                dup(power_limited_qubits.is_some())?;
                power_limited_qubits = Some(parse_num(line_no, key, value)?);
            }
            "binding_stage" => {
                dup(binding_stage.is_some())?;
                binding_stage = Some(if value == "-" {
                    None
                } else {
                    Some(Stage::from_label(value).ok_or_else(|| {
                        DecodeError::new(line_no, format!("unknown fridge stage `{value}`"))
                    })?)
                });
            }
            "logical_error" => {
                dup(logical_error.is_some())?;
                logical_error = Some(parse_num(line_no, key, value)?);
            }
            "target_error" => {
                dup(target_error.is_some())?;
                target_error = Some(parse_num(line_no, key, value)?);
            }
            "error_ok" => {
                dup(error_ok.is_some())?;
                error_ok = Some(parse_num(line_no, key, value)?);
            }
            "esm_cycle_ns" => {
                dup(esm_cycle_ns.is_some())?;
                esm_cycle_ns = Some(parse_num(line_no, key, value)?);
            }
            "stages" => {
                dup(n_stages.is_some())?;
                n_stages = Some(parse_num(line_no, key, value)?);
            }
            "scaleout.fridges" => {
                dup(so_fridges.is_some())?;
                so_fridges = Some(parse_num(line_no, key, value)?);
            }
            "scaleout.link" => {
                dup(so_link.is_some())?;
                so_link = Some(parse_label(line_no, key, value, LinkKind::from_label)?);
            }
            "scaleout.links_per_fridge" => {
                dup(so_links_per_fridge.is_some())?;
                so_links_per_fridge = Some(parse_num(line_no, key, value)?);
            }
            "scaleout.shared_controllers" => {
                dup(so_shared_controllers.is_some())?;
                so_shared_controllers = Some(parse_num(line_no, key, value)?);
            }
            "scaleout.per_fridge_qubits" => {
                dup(so_per_fridge_qubits.is_some())?;
                so_per_fridge_qubits = Some(parse_num(line_no, key, value)?);
            }
            "scaleout.target_qubits" => {
                dup(so_target_qubits.is_some())?;
                so_target_qubits = Some(parse_num(line_no, key, value)?);
            }
            "scaleout.fridges_to_target" => {
                dup(so_fridges_to_target.is_some())?;
                so_fridges_to_target =
                    Some(if value == "-" { None } else { Some(parse_num(line_no, key, value)?) });
            }
            "scaleout.binding" => {
                dup(so_binding.is_some())?;
                so_binding = Some(if value == "-" {
                    None
                } else {
                    Some(parse_label(line_no, key, value, ScaleOutBinding::from_label)?)
                });
            }
            "scaleout.interconnect_w" => {
                dup(so_interconnect_w.is_some())?;
                let mut watts = [0.0; 5];
                let mut fields = value.split_whitespace();
                for w in &mut watts {
                    let Some(field) = fields.next() else {
                        return Err(DecodeError::new(
                            line_no,
                            "scaleout.interconnect_w needs 5 stage fields",
                        )
                        .into());
                    };
                    *w = parse_num(line_no, key, field)?;
                }
                if fields.next().is_some() {
                    return Err(DecodeError::new(
                        line_no,
                        "trailing fields in scaleout.interconnect_w",
                    )
                    .into());
                }
                so_interconnect_w = Some(watts);
            }
            _ => {
                let Some(idx) = key.strip_prefix("stage.") else {
                    return Err(DecodeError::new(line_no, format!("unknown key `{key}`")).into());
                };
                let idx: usize = parse_num(line_no, key, idx)?;
                if idx != stages.len() {
                    return Err(DecodeError::new(
                        line_no,
                        format!("stage rows must be in order; expected stage.{}", stages.len()),
                    )
                    .into());
                }
                stages.push(parse_stage_row(line_no, value)?);
            }
        }
    }
    fn required<T>(field: Option<T>, key: &str) -> Result<T, DecodeError> {
        field.ok_or_else(|| DecodeError::new(0, format!("missing key `{key}`")))
    }
    let n_stages = required(n_stages, "stages")?;
    if stages.len() != n_stages {
        return Err(DecodeError::new(
            0,
            format!("stages = {n_stages} but {} stage rows present", stages.len()),
        )
        .into());
    }
    // The scale-out block is all-or-nothing: absent entirely for classic
    // verdicts, and every key required once any `scaleout.*` appears.
    let any_scaleout = so_fridges.is_some()
        || so_link.is_some()
        || so_links_per_fridge.is_some()
        || so_shared_controllers.is_some()
        || so_per_fridge_qubits.is_some()
        || so_target_qubits.is_some()
        || so_fridges_to_target.is_some()
        || so_binding.is_some()
        || so_interconnect_w.is_some();
    let scale_out = if any_scaleout {
        Some(ScaleOut {
            fridges: required(so_fridges, "scaleout.fridges")?,
            link: required(so_link, "scaleout.link")?,
            links_per_fridge: required(so_links_per_fridge, "scaleout.links_per_fridge")?,
            shared_controllers: required(so_shared_controllers, "scaleout.shared_controllers")?,
            per_fridge_qubits: required(so_per_fridge_qubits, "scaleout.per_fridge_qubits")?,
            interconnect_w: required(so_interconnect_w, "scaleout.interconnect_w")?,
            target_qubits: required(so_target_qubits, "scaleout.target_qubits")?,
            fridges_to_target: required(so_fridges_to_target, "scaleout.fridges_to_target")?,
            binding: required(so_binding, "scaleout.binding")?,
        })
    } else {
        None
    };
    Ok(Scalability {
        design: required(design, "design")?,
        power_limited_qubits: required(power_limited_qubits, "power_limited_qubits")?,
        binding_stage: required(binding_stage, "binding_stage")?,
        stages,
        logical_error: required(logical_error, "logical_error")?,
        target_error: required(target_error, "target_error")?,
        error_ok: required(error_ok, "error_ok")?,
        esm_cycle_ns: required(esm_cycle_ns, "esm_cycle_ns")?,
        scale_out,
    })
}

/// One `stage.<i>` row: `<label> <static> <dynamic> <wire> <link>
/// <budget>`.
fn parse_stage_row(line_no: usize, value: &str) -> Result<qisim_power::StagePower, QisimError> {
    let mut fields = value.split_whitespace();
    let Some(label) = fields.next() else {
        return Err(DecodeError::new(line_no, "empty stage row").into());
    };
    let stage = Stage::from_label(label)
        .ok_or_else(|| DecodeError::new(line_no, format!("unknown fridge stage `{label}`")))?;
    let mut watts = |name: &str| -> Result<f64, QisimError> {
        let Some(field) = fields.next() else {
            return Err(DecodeError::new(line_no, format!("stage row is missing {name}")).into());
        };
        Ok(parse_num(line_no, name, field)?)
    };
    let row = qisim_power::StagePower {
        stage,
        device_static_w: watts("device_static_w")?,
        device_dynamic_w: watts("device_dynamic_w")?,
        wire_w: watts("wire_w")?,
        instr_link_w: watts("instr_link_w")?,
        budget_w: watts("budget_w")?,
    };
    if fields.next().is_some() {
        return Err(DecodeError::new(line_no, "trailing fields in stage row").into());
    }
    Ok(row)
}

/// Checks the header, then yields the 1-based header line number plus
/// `(line_no, key, value)` for every non-empty, non-comment line.
///
/// An empty document (no content at all, or only blank/comment lines —
/// including a lone trailing newline) anchors its error at line 1: there
/// is no ambiguous "empty success" and no line-0 diagnostic for input a
/// user can actually point at.
#[allow(clippy::type_complexity)]
fn content_lines<'a>(
    text: &'a str,
    header: &'static str,
) -> Result<(usize, impl Iterator<Item = Result<(usize, &'a str, &'a str), DecodeError>>), QisimError>
{
    let mut lines = text.lines().enumerate().filter(|(_, line)| {
        let t = line.trim();
        !t.is_empty() && !t.starts_with('#')
    });
    let header_line = match lines.next() {
        Some((i, line)) if line.trim() == header => i + 1,
        Some((i, line)) => {
            return Err(DecodeError::new(
                i + 1,
                format!("expected header `{header}`, found `{}`", line.trim()),
            )
            .into());
        }
        None => return Err(DecodeError::new(1, format!("empty document (no `{header}`)")).into()),
    };
    Ok((
        header_line,
        lines.map(|(i, line)| {
            let line_no = i + 1;
            match line.split_once('=') {
                Some((key, value)) => Ok((line_no, key.trim(), value.trim())),
                None => Err(DecodeError::new(
                    line_no,
                    format!("expected `key = value`, found `{}`", line.trim()),
                )),
            }
        }),
    ))
}

/// Parses any `FromStr` value with a line-anchored diagnostic.
fn parse_num<T: std::str::FromStr>(
    line_no: usize,
    key: &str,
    value: &str,
) -> Result<T, DecodeError> {
    value
        .parse()
        .map_err(|_| DecodeError::new(line_no, format!("cannot parse `{value}` for `{key}`")))
}

/// Parses a labelled enum (`from_label`-style) with a line-anchored
/// diagnostic.
fn parse_label<T>(
    line_no: usize,
    key: &str,
    value: &str,
    from_label: impl Fn(&str) -> Option<T>,
) -> Result<T, DecodeError> {
    from_label(value).ok_or_else(|| DecodeError::new(line_no, format!("unknown {key} `{value}`")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::QisimError;

    #[test]
    fn spec_documents_only_list_set_overrides() {
        let text = encode_spec(&DesignSpec::new(Preset::RsfqBaseline));
        assert_eq!(text, "qisim spec v1\npreset = rsfq_baseline\n");
        let text = encode_spec(&DesignSpec::new(Preset::CmosBaseline).drive_bits(6));
        assert!(text.contains("drive_bits = 6"), "{text}");
        assert!(!text.contains("drive_fdm"), "{text}");
    }

    #[test]
    fn estimator_key_round_trips_and_defaults_stay_byte_identical() {
        // A default spec never mentions the estimator — pre-knob
        // documents and encoders stay byte-for-byte identical.
        let text = encode_spec(&DesignSpec::new(Preset::RsfqBaseline));
        assert_eq!(text, "qisim spec v1\npreset = rsfq_baseline\n");
        for e in Estimator::ALL {
            let spec = DesignSpec::new(Preset::CmosBaseline).estimator(e);
            let text = encode_spec(&spec);
            assert!(text.contains(&format!("estimator = {}", e.label())), "{text}");
            assert_eq!(parse_spec(&text).unwrap(), spec);
        }
        // An unknown estimator is a line-anchored typed diagnostic.
        match parse_spec("qisim spec v1\npreset = cmos_baseline\nestimator = oracle\n") {
            Err(QisimError::Decode(e)) => {
                assert_eq!(e.line, 3);
                assert!(e.reason.contains("unknown estimator `oracle`"), "{e}");
            }
            other => panic!("expected a decode error, got {other:?}"),
        }
        // Duplicates are rejected like every other key.
        let text = "qisim spec v1\npreset = cmos_baseline\nestimator = rare\nestimator = rare\n";
        assert!(parse_spec(text).is_err());
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let spec = parse_spec(
            "# a hand-written spec\n\nqisim spec v1\n# the preset\npreset = cmos_baseline\n\ndrive_bits = 6\n",
        )
        .unwrap();
        assert_eq!(spec, DesignSpec::new(Preset::CmosBaseline).drive_bits(6));
    }

    #[test]
    fn parse_failures_carry_line_numbers() {
        let err = |text: &str| match parse_spec(text) {
            Err(QisimError::Decode(e)) => e,
            other => panic!("expected a decode error, got {other:?}"),
        };
        assert_eq!(err("not a spec\n").line, 1);
        let e = err("qisim spec v1\npreset = cmos_baseline\nfrobnicate = 1\n");
        assert_eq!(e.line, 3);
        assert!(e.reason.contains("frobnicate"), "{e}");
        let e = err("qisim spec v1\npreset = cmos_baseline\ndrive_bits = banana\n");
        assert_eq!(e.line, 3);
        let e = err("qisim spec v1\npreset = cmos_baseline\ndrive_bits = 6\ndrive_bits = 7\n");
        assert!(e.reason.contains("duplicate"), "{e}");
        assert_eq!(err("qisim spec v1\npreset = warp_drive\n").line, 2);
    }

    #[test]
    fn empty_and_header_only_documents_are_line_anchored_errors() {
        let err = |text: &str| match parse_spec(text) {
            Err(QisimError::Decode(e)) => e,
            other => panic!("expected a decode error, got {other:?}"),
        };
        // Nothing at all, a lone newline, and whitespace/comment-only
        // documents all anchor at line 1 (never the ambiguous line 0).
        for text in ["", "\n", "   \n", "# just a comment\n", "\n\n# note\n\n"] {
            let e = err(text);
            assert_eq!(e.line, 1, "{text:?}");
            assert!(e.reason.contains("empty document"), "{e}");
        }
        // A header with nothing after it anchors where `preset` belongs.
        let e = err("qisim spec v1\n");
        assert_eq!(e.line, 2);
        assert!(e.reason.contains("missing key `preset`"), "{e}");
        // Leading comments shift the anchor with the header.
        let e = err("# comment\n\nqisim spec v1\n");
        assert_eq!(e.line, 4);
        match parse_scalability("\n") {
            Err(QisimError::Decode(e)) => assert_eq!(e.line, 1),
            other => panic!("expected a decode error, got {other:?}"),
        }
    }

    #[test]
    fn specs_keep_invalid_knobs_for_build_to_diagnose() {
        // The codec ships the file; validation stays with build().
        let spec = parse_spec("qisim spec v1\npreset = cmos_baseline\ndrive_fdm = 0\n").unwrap();
        assert!(spec.build().is_err());
    }

    #[test]
    fn scalability_round_trips_non_finite_free() {
        let report = Scalability {
            design: "4K CMOS baseline".to_string(),
            power_limited_qubits: 1034,
            binding_stage: Some(Stage::K4),
            stages: vec![qisim_power::StagePower {
                stage: Stage::K4,
                device_static_w: 0.1234567890123,
                device_dynamic_w: 2e-3,
                wire_w: 0.0,
                instr_link_w: 1.5e-7,
                budget_w: 1.5,
            }],
            logical_error: 3.1e-12,
            target_error: 1.11e-11,
            error_ok: true,
            esm_cycle_ns: 1437.5,
            scale_out: None,
        };
        let text = encode_scalability(&report);
        assert_eq!(parse_scalability(&text).unwrap(), report);
        // A classic verdict never mentions the scale-out block.
        assert!(!text.contains("scaleout."), "{text}");
        // A report with no binding stage uses the `-` sentinel.
        let unbound = Scalability { binding_stage: None, ..report };
        let text = encode_scalability(&unbound);
        assert!(text.contains("binding_stage = -"), "{text}");
        assert_eq!(parse_scalability(&text).unwrap(), unbound);
    }

    #[test]
    fn spec_topology_keys_round_trip() {
        use crate::spec::{DesignSpec, Preset};
        let spec = DesignSpec::new(Preset::CmosBaseline)
            .fridges(4)
            .link(LinkKind::Photonic)
            .links_per_fridge(8)
            .shared_controllers(false);
        let text = encode_spec(&spec);
        assert!(text.contains("fridges = 4"), "{text}");
        assert!(text.contains("link = photonic"), "{text}");
        assert!(text.contains("links_per_fridge = 8"), "{text}");
        assert!(text.contains("shared_controllers = false"), "{text}");
        assert_eq!(parse_spec(&text).unwrap(), spec);
        // Specs without topology overrides never mention the keys.
        let plain = encode_spec(&DesignSpec::new(Preset::CmosBaseline));
        for key in ["fridges", "link", "links_per_fridge", "shared_controllers"] {
            assert!(!plain.contains(key), "{plain}");
        }
        // An unknown link is a line-anchored typed diagnostic.
        match parse_spec("qisim spec v1\npreset = cmos_baseline\nlink = warp\n") {
            Err(QisimError::Decode(e)) => {
                assert_eq!(e.line, 3);
                assert!(e.reason.contains("unknown link `warp`"), "{e}");
            }
            other => panic!("expected a decode error, got {other:?}"),
        }
        // Duplicates are rejected like every other key.
        let text = "qisim spec v1\npreset = cmos_baseline\nfridges = 2\nfridges = 3\n";
        assert!(parse_spec(text).is_err());
    }

    #[test]
    fn scaleout_block_round_trips_and_is_all_or_nothing() {
        use crate::scalability::{ScaleOut, ScaleOutBinding};
        let base = Scalability {
            design: "cluster".to_string(),
            power_limited_qubits: 4000,
            binding_stage: Some(Stage::Mk20),
            stages: Vec::new(),
            logical_error: 1e-12,
            target_error: 1e-11,
            error_ok: true,
            esm_cycle_ns: 1437.5,
            scale_out: Some(ScaleOut {
                fridges: 4,
                link: LinkKind::Photonic,
                links_per_fridge: 2,
                shared_controllers: true,
                per_fridge_qubits: 1000,
                interconnect_w: [0.0, 1.25e-3, 0.0, 0.0, 1.58e-6],
                target_qubits: 9216,
                fridges_to_target: Some(10),
                binding: Some(ScaleOutBinding::Link(Stage::Mk20)),
            }),
        };
        let text = encode_scalability(&base);
        assert!(text.contains("scaleout.binding = link:20mK"), "{text}");
        assert_eq!(parse_scalability(&text).unwrap(), base);
        // Sentinels: an unreachable target and no binding constraint.
        let unbound = Scalability {
            scale_out: base.scale_out.clone().map(|so| ScaleOut {
                fridges_to_target: None,
                binding: None,
                ..so
            }),
            ..base.clone()
        };
        let text = encode_scalability(&unbound);
        assert!(text.contains("scaleout.fridges_to_target = -"), "{text}");
        assert!(text.contains("scaleout.binding = -"), "{text}");
        assert_eq!(parse_scalability(&text).unwrap(), unbound);
        // The StageBudget flavour round-trips too.
        let stagebound = Scalability {
            scale_out: base.scale_out.clone().map(|so| ScaleOut {
                binding: Some(ScaleOutBinding::StageBudget(Stage::K4)),
                ..so
            }),
            ..base.clone()
        };
        let text = encode_scalability(&stagebound);
        assert!(text.contains("scaleout.binding = stage:4K"), "{text}");
        assert_eq!(parse_scalability(&text).unwrap(), stagebound);
        // A partial block is a typed diagnostic, not a silent None.
        let text = encode_scalability(&base);
        let partial: String =
            text.lines().filter(|l| !l.starts_with("scaleout.link")).collect::<Vec<_>>().join("\n");
        match parse_scalability(&partial) {
            Err(QisimError::Decode(e)) => {
                assert!(e.reason.contains("scaleout.link"), "{e}");
            }
            other => panic!("expected a decode error, got {other:?}"),
        }
        // A malformed interconnect row is line-anchored.
        let short = text.replace(
            "scaleout.interconnect_w = 0 0.00125 0 0 0.00000158",
            "scaleout.interconnect_w = 0 1",
        );
        assert_ne!(short, text, "replacement must hit the encoded row");
        assert!(parse_scalability(&short).is_err());
    }

    #[test]
    fn scalability_stage_rows_are_checked() {
        let report = Scalability {
            design: "x".to_string(),
            power_limited_qubits: 1,
            binding_stage: None,
            stages: Vec::new(),
            logical_error: 0.0,
            target_error: 0.0,
            error_ok: true,
            esm_cycle_ns: 1.0,
            scale_out: None,
        };
        let good = encode_scalability(&report);
        assert_eq!(parse_scalability(&good).unwrap(), report);
        // Claiming a stage that is not present fails the count check.
        let lying = good.replace("stages = 0", "stages = 2");
        assert!(parse_scalability(&lying).is_err());
        // A truncated stage row is a line-anchored error.
        let text = "qisim scalability v1\ndesign = x\npower_limited_qubits = 1\n\
                    binding_stage = -\nlogical_error = 0\ntarget_error = 0\nerror_ok = true\n\
                    esm_cycle_ns = 1\nstages = 1\nstage.0 = 4K 1 2 3\n";
        match parse_scalability(text) {
            Err(QisimError::Decode(e)) => {
                assert_eq!(e.line, 10);
                assert!(e.reason.contains("missing"), "{e}");
            }
            other => panic!("expected a decode error, got {other:?}"),
        }
    }
}
