//! Validated design specifications: the typed, serializable front door
//! to [`QciDesign`].
//!
//! `QciDesign` and its configuration structs are plain-old-data — any
//! knob combination is *constructible*, including ones the models reject
//! at run time (an FDM degree of 0 divides by zero inside the ESM
//! profile; a 40-bit DAC is outside the calibrated precision sweep). A
//! [`DesignSpec`] is the validated counterpart: it names a paper
//! [`Preset`] as the starting point, records knob overrides without
//! judging them, and [`DesignSpec::build`] turns the whole combination
//! into a [`QciDesign`] or a typed [`QisimError`] diagnostic.
//!
//! Specs are value types (`PartialEq`) and round-trip losslessly through
//! the text codec ([`crate::codec`]), which is what makes the analysis
//! pipeline batch-friendly: a design-space search can generate, ship,
//! and replay spec files without ever risking a panic in the library.
//!
//! # Examples
//!
//! ```
//! use qisim::spec::{DesignSpec, Preset};
//! use qisim::error::QisimError;
//!
//! // The Fig. 13a optimized design, built safely:
//! let design = DesignSpec::new(Preset::CmosBaseline)
//!     .drive_bits(6)
//!     .decision(qisim::microarch::DecisionKind::Memoryless)
//!     .build()
//!     .unwrap();
//! assert!(design.esm_cycle_ns() > 1000.0);
//!
//! // An invalid knob is a diagnostic, not a panic:
//! let err = DesignSpec::new(Preset::CmosBaseline).drive_fdm(0).build().unwrap_err();
//! assert!(matches!(err, QisimError::Config(_)));
//! ```

use crate::config::QciDesign;
use crate::error::{ConfigError, QisimError};
use crate::opts::Opt;
use qisim_hal::fridge::{Fridge, Stage};
use qisim_hal::topology::{FridgeTopology, LinkKind};
use qisim_microarch::cryo_cmos::{CryoCmosConfig, MULTI_ROUND_READOUT_NS};
use qisim_microarch::sfq::{BitgenKind, JpmSharing, SfqConfig};
use qisim_microarch::DecisionKind;

/// Validated range of the CMOS drive FDM degree (`drive_fdm`). The
/// paper's designs use 20–32; one cable cannot multiplex more than 64
/// qubits within the drive band.
pub const FDM_RANGE: (u32, u32) = (1, 64);
/// Validated range of the drive DAC precision in bits (`drive_bits`).
/// The precision sweep of Fig. 14b is calibrated up to 16 bits.
pub const DAC_BITS_RANGE: (u32, u32) = (1, 16);
/// Validated range of the SFQ broadcast parallelism (`bs`). The paper
/// explores 8 (baseline) down to 1 (Opt-5).
pub const BS_RANGE: (u32, u32) = (1, 8);
/// Validated range of the scale-out fridge count (`fridges`). A kilofridge
/// datacenter is far beyond any published floor plan.
pub const FRIDGES_RANGE: (u32, u32) = (1, 1024);
/// Validated range of inter-fridge links terminating in each fridge
/// (`links_per_fridge`). 64 cables is already a full feedthrough flange.
pub const LINKS_RANGE: (u32, u32) = (1, 64);

/// The nine paper preset designs (Figs. 12, 13, 17): every spec starts
/// from one of these and applies knob overrides on top.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Preset {
    /// 300 K rack over stainless coax (Fig. 12a).
    RoomCoax,
    /// 300 K rack over flexible microstrip (Fig. 12b).
    RoomMicrostrip,
    /// 300 K rack over a photonic link (Fig. 12c).
    RoomPhotonic,
    /// Near-term 4 K CMOS baseline (Fig. 13a).
    CmosBaseline,
    /// Near-term 4 K CMOS with Opt-1 + Opt-2 (the 1,399-qubit design).
    CmosNearTerm,
    /// Long-term advanced 4 K CMOS (Fig. 17a).
    CmosLongTerm,
    /// Near-term RSFQ baseline (Fig. 13b).
    RsfqBaseline,
    /// RSFQ with Opt-3/4/5 (the 1,248-qubit design).
    RsfqNearTerm,
    /// Long-term ERSFQ with Opt-8 (Fig. 17b).
    ErsfqLongTerm,
}

impl Preset {
    /// All nine presets, in paper order.
    pub const ALL: [Preset; 9] = [
        Preset::RoomCoax,
        Preset::RoomMicrostrip,
        Preset::RoomPhotonic,
        Preset::CmosBaseline,
        Preset::CmosNearTerm,
        Preset::CmosLongTerm,
        Preset::RsfqBaseline,
        Preset::RsfqNearTerm,
        Preset::ErsfqLongTerm,
    ];

    /// Stable text-codec identifier.
    pub fn id(self) -> &'static str {
        match self {
            Preset::RoomCoax => "room_coax",
            Preset::RoomMicrostrip => "room_microstrip",
            Preset::RoomPhotonic => "room_photonic",
            Preset::CmosBaseline => "cmos_baseline",
            Preset::CmosNearTerm => "cmos_near_term",
            Preset::CmosLongTerm => "cmos_long_term",
            Preset::RsfqBaseline => "rsfq_baseline",
            Preset::RsfqNearTerm => "rsfq_near_term",
            Preset::ErsfqLongTerm => "ersfq_long_term",
        }
    }

    /// Inverse of [`Preset::id`]; `None` for unknown identifiers.
    pub fn from_id(id: &str) -> Option<Preset> {
        Preset::ALL.into_iter().find(|p| p.id() == id)
    }

    /// The preset's design point.
    pub fn design(self) -> QciDesign {
        match self {
            Preset::RoomCoax => QciDesign::room_coax(),
            Preset::RoomMicrostrip => QciDesign::room_microstrip(),
            Preset::RoomPhotonic => QciDesign::room_photonic(),
            Preset::CmosBaseline => QciDesign::cmos_baseline(),
            Preset::CmosNearTerm => QciDesign::CryoCmos(CryoCmosConfig {
                decision: DecisionKind::Memoryless,
                drive_bits: 6,
                ..CryoCmosConfig::baseline()
            }),
            Preset::CmosLongTerm => QciDesign::cmos_long_term(),
            Preset::RsfqBaseline => QciDesign::rsfq_baseline(),
            Preset::RsfqNearTerm => QciDesign::rsfq_near_term(),
            Preset::ErsfqLongTerm => QciDesign::ersfq_long_term(),
        }
    }
}

/// How the engine's logical-error stage evaluates a design point.
///
/// The estimator is an *analysis* knob, not a technology knob: it is
/// valid on every preset, defaults to [`Estimator::Packed`], and never
/// changes the built [`QciDesign`] — only which error model the
/// pipeline's `LogicalError` stage runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Estimator {
    /// The calibrated analytic model (the paper's Eq. 1 fit) — the
    /// historical default, bit-identical to every pre-knob verdict.
    Packed,
    /// The bit-sliced Monte-Carlo engine
    /// (`qisim_surface::montecarlo::sliced`): an empirical estimate from
    /// a fixed-seed trial batch, 64 trials per machine word.
    Sliced,
    /// The multilevel-splitting rare-event sampler
    /// (`qisim_surface::montecarlo::rare`): importance-sampled trials
    /// reweighted down to the operating point, for deep-tail rates.
    Rare,
}

impl Estimator {
    /// All estimators, default first.
    pub const ALL: [Estimator; 3] = [Estimator::Packed, Estimator::Sliced, Estimator::Rare];

    /// Stable text-codec identifier.
    pub fn label(self) -> &'static str {
        match self {
            Estimator::Packed => "packed",
            Estimator::Sliced => "sliced",
            Estimator::Rare => "rare",
        }
    }

    /// Inverse of [`Estimator::label`]; `None` for unknown identifiers.
    pub fn from_label(label: &str) -> Option<Estimator> {
        Estimator::ALL.into_iter().find(|e| e.label() == label)
    }
}

/// A validated, serializable design specification: a [`Preset`] plus
/// knob overrides plus optional refrigerator-budget overrides.
///
/// Setters record values without judging them; [`DesignSpec::build`]
/// validates the whole combination at once and returns every problem as
/// a typed [`QisimError::Config`] diagnostic.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignSpec {
    pub(crate) preset: Preset,
    pub(crate) name: Option<String>,
    pub(crate) estimator: Option<Estimator>,
    // CMOS knobs.
    pub(crate) drive_fdm: Option<u32>,
    pub(crate) drive_bits: Option<u32>,
    pub(crate) decision: Option<DecisionKind>,
    pub(crate) masked_isa: Option<bool>,
    pub(crate) readout_ns: Option<f64>,
    pub(crate) analog_scale: Option<f64>,
    // SFQ knobs.
    pub(crate) bs: Option<u32>,
    pub(crate) bitgen: Option<BitgenKind>,
    pub(crate) sharing: Option<JpmSharing>,
    pub(crate) fast_driving: Option<bool>,
    // Refrigerator budget overrides, indexed like `Stage::ALL`.
    pub(crate) budgets_w: [Option<f64>; 5],
    // Scale-out topology knobs (None = the single-fridge default).
    pub(crate) fridges: Option<u32>,
    pub(crate) link: Option<LinkKind>,
    pub(crate) links_per_fridge: Option<u32>,
    pub(crate) shared_controllers: Option<bool>,
}

impl DesignSpec {
    /// A spec with no overrides: exactly the preset design on the
    /// standard refrigerator.
    pub fn new(preset: Preset) -> Self {
        DesignSpec {
            preset,
            name: None,
            estimator: None,
            drive_fdm: None,
            drive_bits: None,
            decision: None,
            masked_isa: None,
            readout_ns: None,
            analog_scale: None,
            bs: None,
            bitgen: None,
            sharing: None,
            fast_driving: None,
            budgets_w: [None; 5],
            fridges: None,
            link: None,
            links_per_fridge: None,
            shared_controllers: None,
        }
    }

    /// The preset this spec starts from.
    pub fn preset(&self) -> Preset {
        self.preset
    }

    /// Overrides the display name (must be non-empty at build time).
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Selects the logical-error estimator (valid on every preset; the
    /// default is [`Estimator::Packed`], the analytic model).
    pub fn estimator(mut self, estimator: Estimator) -> Self {
        self.estimator = Some(estimator);
        self
    }

    /// The logical-error estimator this spec analyzes with:
    /// [`Estimator::Packed`] unless overridden.
    pub fn chosen_estimator(&self) -> Estimator {
        self.estimator.unwrap_or(Estimator::Packed)
    }

    /// Overrides the CMOS drive FDM degree (validated against
    /// [`FDM_RANGE`]).
    pub fn drive_fdm(mut self, fdm: u32) -> Self {
        self.drive_fdm = Some(fdm);
        self
    }

    /// Overrides the drive DAC precision in bits (validated against
    /// [`DAC_BITS_RANGE`]).
    pub fn drive_bits(mut self, bits: u32) -> Self {
        self.drive_bits = Some(bits);
        self
    }

    /// Overrides the RX decision unit.
    pub fn decision(mut self, kind: DecisionKind) -> Self {
        self.decision = Some(kind);
        self
    }

    /// Enables/disables the Opt-6 masked ISA.
    pub fn masked_isa(mut self, masked: bool) -> Self {
        self.masked_isa = Some(masked);
        self
    }

    /// Overrides the readout duration in ns (must be positive and
    /// finite).
    pub fn readout_ns(mut self, ns: f64) -> Self {
        self.readout_ns = Some(ns);
        self
    }

    /// Overrides the analog power scale (must be positive and finite).
    pub fn analog_scale(mut self, scale: f64) -> Self {
        self.analog_scale = Some(scale);
        self
    }

    /// Overrides the SFQ broadcast parallelism #BS (validated against
    /// [`BS_RANGE`]).
    pub fn bs(mut self, bs: u32) -> Self {
        self.bs = Some(bs);
        self
    }

    /// Overrides the SFQ bitstream-generator flavour.
    pub fn bitgen(mut self, kind: BitgenKind) -> Self {
        self.bitgen = Some(kind);
        self
    }

    /// Overrides the JPM readout sharing.
    pub fn sharing(mut self, sharing: JpmSharing) -> Self {
        self.sharing = Some(sharing);
        self
    }

    /// Enables/disables Opt-8 fast resonator driving.
    pub fn fast_driving(mut self, fast: bool) -> Self {
        self.fast_driving = Some(fast);
        self
    }

    /// Overrides one refrigerator stage's cooling budget in watts (must
    /// be positive and finite).
    pub fn budget(mut self, stage: Stage, watts: f64) -> Self {
        self.budgets_w[stage_index(stage)] = Some(watts);
        self
    }

    /// Overrides the scale-out fridge count (validated against
    /// [`FRIDGES_RANGE`]; 1 is the classic single-fridge pipeline).
    pub fn fridges(mut self, fridges: u32) -> Self {
        self.fridges = Some(fridges);
        self
    }

    /// Overrides the inter-fridge link technology.
    pub fn link(mut self, link: LinkKind) -> Self {
        self.link = Some(link);
        self
    }

    /// Overrides how many inter-fridge links terminate in each fridge
    /// (validated against [`LINKS_RANGE`]).
    pub fn links_per_fridge(mut self, links: u32) -> Self {
        self.links_per_fridge = Some(links);
        self
    }

    /// Overrides whether one room-temperature controller rack is shared
    /// across the cluster.
    pub fn shared_controllers(mut self, shared: bool) -> Self {
        self.shared_controllers = Some(shared);
        self
    }

    /// Records the knob overrides of one paper optimization (the spec
    /// counterpart of [`crate::opts::apply`]). Technology mismatches —
    /// an SFQ optimization on a CMOS preset — surface at
    /// [`DesignSpec::build`] as [`ConfigError::KnobMismatch`].
    pub fn apply(self, opt: Opt) -> Self {
        match opt {
            Opt::MemorylessDecision => self.decision(DecisionKind::Memoryless),
            Opt::LowPrecisionDrive => self.drive_bits(6),
            Opt::SharedPipelinedReadout => self.sharing(JpmSharing::SharedPipelined),
            Opt::LowPowerBitgen => self.bitgen(BitgenKind::SplitterShared),
            Opt::SingleBroadcast => self.bs(1),
            Opt::MaskedIsa => self.masked_isa(true),
            Opt::FastMultiRoundReadout => self.drive_fdm(20).readout_ns(MULTI_ROUND_READOUT_NS),
            Opt::FastDrivingUnshared => self.fast_driving(true).sharing(JpmSharing::Unshared),
        }
    }

    /// The display name: the override if set, else the built design's
    /// derived name (falls back to the preset id for unbuildable specs).
    pub fn display_name(&self) -> String {
        match (&self.name, self.build()) {
            (Some(n), _) => n.clone(),
            (None, Ok(design)) => design.name(),
            (None, Err(_)) => self.preset.id().to_string(),
        }
    }

    /// Validates every knob and assembles the design point.
    ///
    /// # Errors
    ///
    /// Returns [`QisimError::Config`] naming the first offending knob:
    /// out-of-range values ([`ConfigError::OutOfRange`] /
    /// [`ConfigError::NotPositive`]), overrides that do not exist on the
    /// preset's technology ([`ConfigError::KnobMismatch`]), an empty
    /// name ([`ConfigError::EmptyName`]), or an invalid budget override
    /// ([`ConfigError::Budget`]).
    pub fn build(&self) -> Result<QciDesign, QisimError> {
        if let Some(name) = &self.name {
            if name.trim().is_empty() {
                return Err(ConfigError::EmptyName.into());
            }
        }
        for (i, &stage) in Stage::ALL.iter().enumerate() {
            if let Some(w) = self.budgets_w[i] {
                if !(w.is_finite() && w > 0.0) {
                    return Err(ConfigError::Budget { stage, value: w }.into());
                }
            }
        }
        if let Some(n) = self.fridges {
            check_range("fridges", n, FRIDGES_RANGE)?;
        }
        if let Some(links) = self.links_per_fridge {
            check_range("links_per_fridge", links, LINKS_RANGE)?;
        }
        let base = self.preset.design();
        let design = match base {
            QciDesign::Room(_) => {
                self.reject_cmos_knobs(&base)?;
                self.reject_sfq_knobs(&base)?;
                base
            }
            QciDesign::CryoCmos(cfg) => {
                self.reject_sfq_knobs(&base)?;
                QciDesign::CryoCmos(CryoCmosConfig {
                    drive_fdm: self.drive_fdm.unwrap_or(cfg.drive_fdm),
                    drive_bits: self.drive_bits.unwrap_or(cfg.drive_bits),
                    decision: self.decision.unwrap_or(cfg.decision),
                    masked_isa: self.masked_isa.unwrap_or(cfg.masked_isa),
                    readout_ns: self.readout_ns.unwrap_or(cfg.readout_ns),
                    analog_scale: self.analog_scale.unwrap_or(cfg.analog_scale),
                    ..cfg
                })
            }
            QciDesign::Sfq(cfg) => {
                self.reject_cmos_knobs(&base)?;
                QciDesign::Sfq(SfqConfig {
                    bs: self.bs.unwrap_or(cfg.bs),
                    bitgen: self.bitgen.unwrap_or(cfg.bitgen),
                    sharing: self.sharing.unwrap_or(cfg.sharing),
                    fast_driving: self.fast_driving.unwrap_or(cfg.fast_driving),
                    ..cfg
                })
            }
        };
        validate_design(&design)?;
        Ok(design)
    }

    /// The refrigerator this spec analyzes on: the standard fridge with
    /// the recorded budget overrides applied.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::Budget`] for a non-positive or non-finite
    /// override.
    pub fn fridge(&self) -> Result<Fridge, QisimError> {
        let mut fridge = Fridge::standard();
        for (i, &stage) in Stage::ALL.iter().enumerate() {
            if let Some(w) = self.budgets_w[i] {
                if !(w.is_finite() && w > 0.0) {
                    return Err(ConfigError::Budget { stage, value: w }.into());
                }
                fridge = fridge.with_budget(stage, w);
            }
        }
        Ok(fridge)
    }

    /// Whether this spec carries any per-stage cooling-budget override —
    /// i.e. whether [`DesignSpec::fridge`] would differ from
    /// [`Fridge::standard`]. Batch executors use this to group
    /// standard-fridge specs through `try_analyze_many`.
    pub fn has_budget_overrides(&self) -> bool {
        self.budgets_w.iter().any(Option::is_some)
    }

    /// The scale-out topology this spec analyzes on: the standard
    /// single-fridge topology with the recorded fridge-count / link /
    /// controller overrides applied, around the (possibly
    /// budget-overridden) refrigerator of [`DesignSpec::fridge`].
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::OutOfRange`] for a fridge or link count
    /// outside [`FRIDGES_RANGE`] / [`LINKS_RANGE`], or
    /// [`ConfigError::Budget`] for an invalid budget override.
    pub fn topology(&self) -> Result<FridgeTopology, QisimError> {
        if let Some(n) = self.fridges {
            check_range("fridges", n, FRIDGES_RANGE)?;
        }
        if let Some(links) = self.links_per_fridge {
            check_range("links_per_fridge", links, LINKS_RANGE)?;
        }
        let mut topology = FridgeTopology::standard().with_fridge(self.fridge()?);
        if let Some(n) = self.fridges {
            topology = topology.with_fridges(n);
        }
        if let Some(link) = self.link {
            topology = topology.with_link(link);
        }
        if let Some(links) = self.links_per_fridge {
            topology = topology.with_links_per_fridge(links);
        }
        if let Some(shared) = self.shared_controllers {
            topology = topology.with_shared_controllers(shared);
        }
        Ok(topology)
    }

    /// Whether this spec asks for a genuine multi-fridge analysis
    /// (`fridges > 1`). Single-fridge specs — even ones that set link
    /// knobs — take the classic pipeline bit-for-bit, so batch executors
    /// keep grouping them through `try_analyze_many`.
    pub fn has_scale_out(&self) -> bool {
        self.fridges.is_some_and(|n| n > 1)
    }

    fn reject_cmos_knobs(&self, design: &QciDesign) -> Result<(), ConfigError> {
        let mismatch = |knob| ConfigError::KnobMismatch { knob, design: design.name() };
        if self.drive_fdm.is_some() {
            return Err(mismatch("drive_fdm"));
        }
        if self.drive_bits.is_some() {
            return Err(mismatch("drive_bits"));
        }
        if self.decision.is_some() {
            return Err(mismatch("decision"));
        }
        if self.masked_isa.is_some() {
            return Err(mismatch("masked_isa"));
        }
        if self.readout_ns.is_some() {
            return Err(mismatch("readout_ns"));
        }
        if self.analog_scale.is_some() {
            return Err(mismatch("analog_scale"));
        }
        Ok(())
    }

    fn reject_sfq_knobs(&self, design: &QciDesign) -> Result<(), ConfigError> {
        let mismatch = |knob| ConfigError::KnobMismatch { knob, design: design.name() };
        if self.bs.is_some() {
            return Err(mismatch("bs"));
        }
        if self.bitgen.is_some() {
            return Err(mismatch("bitgen"));
        }
        if self.sharing.is_some() {
            return Err(mismatch("sharing"));
        }
        if self.fast_driving.is_some() {
            return Err(mismatch("fast_driving"));
        }
        Ok(())
    }
}

fn stage_index(stage: Stage) -> usize {
    Stage::ALL.iter().position(|s| *s == stage).unwrap_or(0)
}

/// Validates a raw [`QciDesign`]'s knobs against the same ranges
/// [`DesignSpec::build`] enforces. The fallible engine entry points call
/// this before touching the models, so a free-form design with e.g.
/// `drive_fdm: 0` is a typed diagnostic instead of a downstream panic.
///
/// # Errors
///
/// Returns the first offending knob as a [`ConfigError`].
pub fn validate_design(design: &QciDesign) -> Result<(), ConfigError> {
    match design {
        QciDesign::Room(_) => Ok(()),
        QciDesign::CryoCmos(cfg) => {
            check_range("drive_fdm", cfg.drive_fdm, FDM_RANGE)?;
            check_range("drive_bits", cfg.drive_bits, DAC_BITS_RANGE)?;
            check_positive("readout_ns", cfg.readout_ns)?;
            check_positive("analog_scale", cfg.analog_scale)?;
            Ok(())
        }
        QciDesign::Sfq(cfg) => check_range("bs", cfg.bs, BS_RANGE),
    }
}

fn check_range(knob: &'static str, value: u32, (min, max): (u32, u32)) -> Result<(), ConfigError> {
    if value < min || value > max {
        return Err(ConfigError::OutOfRange {
            knob,
            value: value as u64,
            min: min as u64,
            max: max as u64,
        });
    }
    Ok(())
}

fn check_positive(knob: &'static str, value: f64) -> Result<(), ConfigError> {
    if !(value.is_finite() && value > 0.0) {
        return Err(ConfigError::NotPositive { knob, value });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opts;

    #[test]
    fn presets_build_their_paper_designs() {
        assert_eq!(
            DesignSpec::new(Preset::CmosBaseline).build().unwrap(),
            QciDesign::cmos_baseline()
        );
        assert_eq!(
            DesignSpec::new(Preset::RsfqNearTerm).build().unwrap(),
            QciDesign::rsfq_near_term()
        );
        assert_eq!(
            DesignSpec::new(Preset::ErsfqLongTerm).build().unwrap(),
            QciDesign::ersfq_long_term()
        );
        // The ninth preset is the Fig. 13a Opt-1+2 design.
        let via_opts = opts::apply_all(
            &QciDesign::cmos_baseline(),
            &[Opt::MemorylessDecision, Opt::LowPrecisionDrive],
        )
        .unwrap();
        assert_eq!(DesignSpec::new(Preset::CmosNearTerm).build().unwrap(), via_opts);
    }

    #[test]
    fn preset_ids_round_trip() {
        for p in Preset::ALL {
            assert_eq!(Preset::from_id(p.id()), Some(p));
        }
        assert_eq!(Preset::from_id("warp_drive"), None);
    }

    #[test]
    fn overrides_change_only_their_knob() {
        let d = DesignSpec::new(Preset::CmosBaseline).drive_fdm(20).build().unwrap();
        match d {
            QciDesign::CryoCmos(cfg) => {
                assert_eq!(cfg.drive_fdm, 20);
                assert_eq!(cfg.drive_bits, CryoCmosConfig::baseline().drive_bits);
            }
            _ => panic!("preset must stay CMOS"),
        }
    }

    #[test]
    fn out_of_range_knobs_are_typed_diagnostics() {
        let fdm0 = DesignSpec::new(Preset::CmosBaseline).drive_fdm(0).build().unwrap_err();
        assert!(
            matches!(
                fdm0,
                QisimError::Config(ConfigError::OutOfRange { knob: "drive_fdm", value: 0, .. })
            ),
            "{fdm0:?}"
        );
        let bits = DesignSpec::new(Preset::CmosBaseline).drive_bits(17).build().unwrap_err();
        assert!(
            matches!(bits, QisimError::Config(ConfigError::OutOfRange { knob: "drive_bits", .. })),
            "{bits:?}"
        );
        let bs = DesignSpec::new(Preset::RsfqBaseline).bs(9).build().unwrap_err();
        assert!(
            matches!(bs, QisimError::Config(ConfigError::OutOfRange { knob: "bs", .. })),
            "{bs:?}"
        );
    }

    #[test]
    fn knob_mismatches_name_the_design() {
        let err = DesignSpec::new(Preset::RsfqBaseline).drive_bits(6).build().unwrap_err();
        match err {
            QisimError::Config(ConfigError::KnobMismatch { knob, design }) => {
                assert_eq!(knob, "drive_bits");
                assert!(design.contains("SFQ"), "{design}");
            }
            other => panic!("wrong variant: {other:?}"),
        }
        assert!(DesignSpec::new(Preset::RoomCoax).bs(1).build().is_err());
        assert!(DesignSpec::new(Preset::RoomCoax).masked_isa(true).build().is_err());
    }

    #[test]
    fn budgets_and_names_are_validated() {
        let err =
            DesignSpec::new(Preset::CmosBaseline).budget(Stage::K4, -1.0).build().unwrap_err();
        assert!(
            matches!(err, QisimError::Config(ConfigError::Budget { stage: Stage::K4, .. })),
            "{err:?}"
        );
        let err = DesignSpec::new(Preset::CmosBaseline).name("  ").build().unwrap_err();
        assert!(matches!(err, QisimError::Config(ConfigError::EmptyName)), "{err:?}");
        let fridge = DesignSpec::new(Preset::CmosBaseline).budget(Stage::K4, 6.0).fridge().unwrap();
        assert_eq!(fridge.budget_w(Stage::K4), 6.0);
    }

    #[test]
    fn apply_records_the_paper_opts() {
        let spec = DesignSpec::new(Preset::RsfqBaseline)
            .apply(Opt::SharedPipelinedReadout)
            .apply(Opt::LowPowerBitgen)
            .apply(Opt::SingleBroadcast);
        assert_eq!(spec.build().unwrap(), QciDesign::rsfq_near_term());
        // A mismatched opt is recorded, then rejected at build time.
        let err = DesignSpec::new(Preset::CmosBaseline).apply(Opt::SingleBroadcast).build();
        assert!(matches!(err, Err(QisimError::Config(ConfigError::KnobMismatch { .. }))));
    }

    #[test]
    fn validate_design_catches_free_form_poison() {
        let bad =
            QciDesign::CryoCmos(CryoCmosConfig { drive_fdm: 0, ..CryoCmosConfig::baseline() });
        assert!(validate_design(&bad).is_err());
        let bad = QciDesign::CryoCmos(CryoCmosConfig {
            readout_ns: f64::NAN,
            ..CryoCmosConfig::baseline()
        });
        assert!(validate_design(&bad).is_err());
        assert!(validate_design(&QciDesign::rsfq_baseline()).is_ok());
        assert!(validate_design(&QciDesign::room_photonic()).is_ok());
    }

    #[test]
    fn estimator_labels_round_trip_and_default_to_packed() {
        for e in Estimator::ALL {
            assert_eq!(Estimator::from_label(e.label()), Some(e));
        }
        assert_eq!(Estimator::from_label("oracle"), None);
        assert_eq!(DesignSpec::new(Preset::CmosBaseline).chosen_estimator(), Estimator::Packed);
        let spec = DesignSpec::new(Preset::CmosBaseline).estimator(Estimator::Rare);
        assert_eq!(spec.chosen_estimator(), Estimator::Rare);
    }

    #[test]
    fn estimator_is_valid_on_every_preset() {
        // The estimator is an analysis knob: unlike drive_bits or bs it
        // must never trip the technology-mismatch checks.
        for preset in Preset::ALL {
            for e in Estimator::ALL {
                let spec = DesignSpec::new(preset).estimator(e);
                assert!(spec.build().is_ok(), "{preset:?} + {e:?}");
                // ...and it never changes the built design itself.
                assert_eq!(spec.build().unwrap(), DesignSpec::new(preset).build().unwrap());
            }
        }
    }

    #[test]
    fn topology_knobs_validate_and_compose_with_budgets() {
        let spec = DesignSpec::new(Preset::CmosBaseline)
            .fridges(4)
            .link(LinkKind::Photonic)
            .links_per_fridge(8)
            .shared_controllers(false)
            .budget(Stage::K4, 3.0);
        let t = spec.topology().unwrap();
        assert_eq!(t.fridges(), 4);
        assert_eq!(t.link(), LinkKind::Photonic);
        assert_eq!(t.links_per_fridge(), 8);
        assert!(!t.shared_controllers());
        // Budget overrides ride along on every fridge in the cluster.
        assert_eq!(t.fridge().budget_w(Stage::K4), 3.0);
        assert!(spec.has_scale_out());
        assert!(spec.build().is_ok(), "topology knobs are technology-neutral");

        // Defaults: the degenerate single-fridge topology.
        let plain = DesignSpec::new(Preset::CmosBaseline);
        assert_eq!(plain.topology().unwrap(), FridgeTopology::standard());
        assert!(!plain.has_scale_out());
        assert!(!DesignSpec::new(Preset::CmosBaseline).fridges(1).has_scale_out());

        // Out-of-range counts are typed diagnostics at build and topology.
        for bad in [
            DesignSpec::new(Preset::CmosBaseline).fridges(0),
            DesignSpec::new(Preset::CmosBaseline).fridges(1025),
            DesignSpec::new(Preset::CmosBaseline).links_per_fridge(0),
            DesignSpec::new(Preset::CmosBaseline).links_per_fridge(65),
        ] {
            assert!(matches!(
                bad.topology().unwrap_err(),
                QisimError::Config(ConfigError::OutOfRange { .. })
            ));
            assert!(bad.build().is_err());
        }
    }

    #[test]
    fn topology_knobs_are_valid_on_every_preset() {
        for preset in Preset::ALL {
            let spec = DesignSpec::new(preset).fridges(4).link(LinkKind::CryoCoax);
            assert!(spec.build().is_ok(), "{preset:?}");
            // Topology never changes the built design itself.
            assert_eq!(spec.build().unwrap(), DesignSpec::new(preset).build().unwrap());
        }
    }

    #[test]
    fn display_name_prefers_the_override() {
        let spec = DesignSpec::new(Preset::CmosBaseline).name("my qci");
        assert_eq!(spec.display_name(), "my qci");
        let spec = DesignSpec::new(Preset::CmosBaseline);
        assert_eq!(spec.display_name(), QciDesign::cmos_baseline().name());
        // Unbuildable specs fall back to the preset id.
        assert_eq!(
            DesignSpec::new(Preset::CmosBaseline).drive_fdm(0).display_name(),
            "cmos_baseline"
        );
    }
}
