//! Near-term scalability experiments (§6.2–6.3): Figs. 12–16.

use super::{Experiment, Row};
use crate::config::{cmos_1q_error_for_bits, QciDesign};
use crate::opts::{apply_all, Opt};
use crate::paperdata::{logical, power_cuts, readout, scalability};
use crate::scalability::analyze;
use qisim_hal::fridge::{Fridge, Stage};
use qisim_microarch::cryo_cmos::CryoCmosConfig;
use qisim_microarch::sfq::{
    drive::bitgen_cells, BitgenKind, JpmSharing, ReadoutSchedule, SfqConfig,
};
use qisim_power::max_qubits;
use qisim_surface::analytic::{sfq_budget, PhysicalBudget, CALIBRATION};
use qisim_surface::target::{Target, CODE_DISTANCE};

fn power_limit(design: &QciDesign) -> u64 {
    max_qubits(&design.arch(), &Fridge::standard()).0
}

/// Fig. 12 — 300 K QCI scalability (coax ≈400, microstrip ≈650,
/// photonic ≈70 qubits).
pub fn fig12() -> Experiment {
    let rows = vec![
        Row::new(
            "coaxial cable: max qubits (100mK-bound)",
            scalability::ROOM_COAX as f64,
            power_limit(&QciDesign::room_coax()) as f64,
            "qubits",
        ),
        Row::new(
            "microstrip: max qubits (100mK-bound)",
            scalability::ROOM_MICROSTRIP as f64,
            power_limit(&QciDesign::room_microstrip()) as f64,
            "qubits",
        ),
        Row::new(
            "photonic link: max qubits (20mK-bound)",
            scalability::ROOM_PHOTONIC as f64,
            power_limit(&QciDesign::room_photonic()) as f64,
            "qubits",
        ),
    ];
    Experiment {
        id: "Fig. 12",
        title: "300K QCI scalability (wire passive/active loads bind)",
        rows,
        notes: vec!["ordering must hold: photonic << coax < microstrip".into()],
    }
}

/// Fig. 13 — 4 K QCI scalability: CMOS <700 → 1,399 (Opt-1/2); RSFQ
/// <160 → 1,248 (Opt-3/4/5), with the logical-error anchors of the
/// readout-sharing story.
pub fn fig13() -> Experiment {
    let t = Target::near_term();
    let cmos_base = QciDesign::cmos_baseline();
    let cmos_opt = apply_all(&cmos_base, &[Opt::MemorylessDecision, Opt::LowPrecisionDrive])
        .expect("cmos opts");
    let rsfq_base = QciDesign::rsfq_baseline();
    let rsfq_opt = apply_all(
        &rsfq_base,
        &[Opt::SharedPipelinedReadout, Opt::LowPowerBitgen, Opt::SingleBroadcast],
    )
    .expect("rsfq opts");

    let d23 = |design: &QciDesign| analyze(design, &t);
    let base = d23(&cmos_base);
    let opt = d23(&cmos_opt);
    let sbase = d23(&rsfq_base);
    let sopt = d23(&rsfq_opt);

    Experiment {
        id: "Fig. 13",
        title: "4K QCI scalability: baselines vs. near-term optimized designs",
        rows: vec![
            Row::new(
                "4K CMOS baseline: max qubits (4K-bound, <700)",
                scalability::CMOS_BASELINE as f64,
                base.power_limited_qubits as f64,
                "qubits",
            ),
            Row::new(
                "4K CMOS + Opt-1,2: max qubits",
                scalability::CMOS_OPTIMIZED as f64,
                opt.power_limited_qubits as f64,
                "qubits",
            ),
            Row::new(
                "RSFQ baseline: max qubits (20mK-bound, <160)",
                scalability::RSFQ_BASELINE as f64,
                sbase.power_limited_qubits as f64,
                "qubits",
            ),
            Row::new(
                "RSFQ + Opt-3,4,5: max qubits",
                scalability::RSFQ_OPTIMIZED as f64,
                sopt.power_limited_qubits as f64,
                "qubits",
            ),
            Row::new(
                "RSFQ baseline logical error (d=23)",
                logical::SFQ_BASELINE,
                sbase.logical_error,
                "",
            ),
        ],
        notes: vec![
            format!("near-term target scale: {} qubits", scalability::NEAR_TERM_QUBITS),
            format!("CMOS optimized reaches target: {}", opt.reaches(&t)),
            format!("RSFQ optimized reaches target: {}", sopt.reaches(&t)),
        ],
    }
}

/// Fig. 14 — Opt-1/2: single-qubit gate error and logical error vs.
/// drive bit precision, plus the RX/drive power cuts.
pub fn fig14() -> Experiment {
    let mut rows = Vec::new();
    for bits in [4u32, 6, 8, 9, 10, 12, 14] {
        let p1q = cmos_1q_error_for_bits(bits);
        let budget = PhysicalBudget {
            p_1q: p1q,
            ..qisim_surface::analytic::cmos_budget(QciDesign::cmos_baseline().esm_cycle_ns())
        };
        let p_l = budget.logical_error(CODE_DISTANCE, &CALIBRATION);
        rows.push(Row::new(format!("{bits}-bit: 1Q gate error"), f64::NAN, p1q, ""));
        rows.push(Row::new(format!("{bits}-bit: logical-qubit error"), f64::NAN, p_l, ""));
    }
    // Power cuts.
    let n = 1024;
    let p4k = |cfg: &CryoCmosConfig| {
        let a = cfg.build();
        a.device_static_w(Stage::K4, n) + a.device_dynamic_w(Stage::K4, n)
    };
    let base = CryoCmosConfig::baseline();
    let opt1 = CryoCmosConfig { decision: qisim_microarch::DecisionKind::Memoryless, ..base };
    let opt12 = CryoCmosConfig { drive_bits: 6, ..opt1 };
    let rx_power = |cfg: &CryoCmosConfig| {
        let a = cfg.build();
        a.group_power_per_qubit_w("RX NCO", n) + a.group_power_per_qubit_w("RX decision", n)
    };
    rows.push(Row::new(
        "Opt-1: RX digital power cut",
        power_cuts::OPT1_RX,
        1.0 - rx_power(&opt1) / rx_power(&base),
        "",
    ));
    rows.push(Row::new(
        "Opt-1: total 4K power cut",
        power_cuts::OPT1_TOTAL,
        1.0 - p4k(&opt1) / p4k(&base),
        "",
    ));
    rows.push(Row::new(
        "Opt-2: total 4K power cut (after Opt-1)",
        power_cuts::OPT2_TOTAL,
        1.0 - p4k(&opt12) / p4k(&opt1),
        "",
    ));
    Experiment {
        id: "Fig. 14",
        title: "Opt-1/2: bit-precision sweep and decision-unit power cuts",
        rows,
        notes: vec![
            "gate error saturates ~9 bits; logical error saturates at 6 bits (paper's insight)"
                .into(),
        ],
    }
}

/// Fig. 15 — Opt-3: shared/pipelined JPM readout latency and the
/// logical-error consequences.
pub fn fig15() -> Experiment {
    let base = ReadoutSchedule::baseline();
    let naive = ReadoutSchedule { sharing: JpmSharing::SharedNaive, ..base };
    let piped = ReadoutSchedule::opt3();
    let p_l = |sched: ReadoutSchedule| {
        let cycle = 2.0 * 25.0 + 200.0 + sched.group_latency_ns();
        sfq_budget(cycle).logical_error(CODE_DISTANCE, &CALIBRATION)
    };
    Experiment {
        id: "Fig. 15",
        title: "Opt-3: shared + pipelined JPM readout",
        rows: vec![
            Row::new(
                "naive 8x-shared readout latency",
                readout::NAIVE_NS,
                naive.group_latency_ns(),
                "ns",
            ),
            Row::new(
                "pipelined readout latency",
                readout::PIPELINED_NS,
                piped.group_latency_ns(),
                "ns",
            ),
            Row::new("baseline logical error", logical::SFQ_BASELINE, p_l(base), ""),
            Row::new("naive-sharing logical error", logical::SFQ_NAIVE_SHARED, p_l(naive), ""),
            Row::new("pipelined logical error", logical::SFQ_PIPELINED, p_l(piped), ""),
        ],
        notes: vec![
            "sharing cuts the mK static power 8x; pipelining recovers the latency".into(),
            "logical-error rows are order-of-magnitude anchors (d = 23)".into(),
        ],
    }
}

/// Fig. 16 — Opt-4/5: low-power bitstream generator and controllers.
pub fn fig16() -> Experiment {
    use qisim_hal::sfq::{SfqFamily, SfqStage, SfqTech};
    let tech = SfqTech::new(SfqFamily::Rsfq, SfqStage::Cryo4K);
    let bitgen_power = |kind: BitgenKind| tech.static_power_w(&bitgen_cells(kind));
    let bitgen_cut = 1.0
        - bitgen_power(BitgenKind::SplitterShared) / bitgen_power(BitgenKind::PerPhiShiftRegisters);

    let n = 1024;
    let p4k = |cfg: &SfqConfig| {
        let a = cfg.build();
        a.device_static_w(Stage::K4, n) + a.device_dynamic_w(Stage::K4, n)
    };
    let base = SfqConfig::baseline_rsfq();
    let opt4 = SfqConfig { bitgen: BitgenKind::SplitterShared, ..base };
    let opt45 = SfqConfig { bs: 1, ..opt4 };
    Experiment {
        id: "Fig. 16",
        title: "Opt-4/5: low-power bitstream generator and #BS reduction",
        rows: vec![
            Row::new("Opt-4: bitgen power cut", power_cuts::OPT4_BITGEN, bitgen_cut, ""),
            Row::new(
                "Opt-4: total 4K power cut",
                power_cuts::OPT4_TOTAL,
                1.0 - p4k(&opt4) / p4k(&base),
                "",
            ),
            Row::new(
                "Opt-5: total 4K power cut (after Opt-4)",
                power_cuts::OPT5_TOTAL,
                1.0 - p4k(&opt45) / p4k(&opt4),
                "",
            ),
        ],
        notes: vec![
            "Opt-4 replaces 256 output shift registers with one splitter-equipped register".into(),
            "Opt-5 exploits that FTQC layers need few distinct simultaneous 1Q gates".into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig12_shape_holds() {
        let e = fig12();
        assert!(e.all_within_factor(1.6), "{e}");
        // Ordering.
        assert!(e.rows[2].measured < e.rows[0].measured);
        assert!(e.rows[0].measured < e.rows[1].measured);
    }

    #[test]
    fn fig13_shape_holds() {
        let e = fig13();
        for r in &e.rows[..4] {
            let ratio = r.ratio();
            assert!((0.5..2.0).contains(&ratio), "{}: ratio {ratio}", r.label);
        }
    }

    #[test]
    fn fig14_logical_error_saturates_at_6_bits() {
        let e = fig14();
        let logical_at = |bits: u32| {
            e.rows
                .iter()
                .find(|r| r.label == format!("{bits}-bit: logical-qubit error"))
                .expect("row")
                .measured
        };
        // 6-bit within 15 % of 14-bit; 4-bit visibly worse.
        assert!((logical_at(6) - logical_at(14)) / logical_at(14) < 0.15);
        assert!(logical_at(4) > 1.3 * logical_at(14));
    }

    #[test]
    fn fig15_latencies_match() {
        let e = fig15();
        assert!(e.rows[0].ratio() < 1.05 && e.rows[0].ratio() > 0.95, "naive latency");
        assert!((e.rows[1].ratio() - 1.0).abs() < 0.01, "pipelined latency");
        // Logical-error ordering: baseline < pipelined << naive.
        assert!(e.rows[2].measured < e.rows[4].measured);
        assert!(e.rows[4].measured < e.rows[3].measured);
    }

    #[test]
    fn fig16_power_cuts_are_close() {
        let e = fig16();
        assert!((e.rows[0].measured - power_cuts::OPT4_BITGEN).abs() < 0.03, "{e}");
        assert!((e.rows[1].measured - power_cuts::OPT4_TOTAL).abs() < 0.08, "{e}");
        assert!((e.rows[2].measured - power_cuts::OPT5_TOTAL).abs() < 0.10, "{e}");
    }
}
