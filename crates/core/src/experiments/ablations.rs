//! Ablation studies on the design choices DESIGN.md calls out, plus the
//! §7.1 future-technology what-ifs the paper's discussion section frames
//! ("architects can analyze those future systems by changing the
//! simulation parameters").

use super::{Experiment, Row};
use crate::config::QciDesign;
use crate::scalability::{analyze, analyze_on};
use qisim_hal::fridge::{Fridge, Stage};
use qisim_hal::wire::WireKind;
use qisim_microarch::cryo_cmos::CryoCmosConfig;
use qisim_microarch::sfq::readout::{JpmSharing, ReadoutSchedule, RESET_NS, TUNNELING_NS};
use qisim_power::max_qubits;
use qisim_surface::analytic::{cmos_budget, Calibration, PhysicalBudget, CALIBRATION};
use qisim_surface::target::{Target, CODE_DISTANCE};

/// Ablation A — interconnect technology: the same 4 K CMOS baseline on
/// every 4K–mK wire, isolating how much of Fig. 13a's story is the
/// superconducting cable.
pub fn wire_ablation() -> Experiment {
    let fridge = Fridge::standard();
    let mut rows = Vec::new();
    for (label, wire) in [
        ("regular coax (300K-grade)", WireKind::Coax),
        ("regular microstrip", WireKind::Microstrip),
        ("superconducting coax (paper's near-term)", WireKind::SuperconductingCoax),
        ("superconducting microstrip (paper's long-term)", WireKind::SuperconductingMicrostrip),
    ] {
        let cfg = CryoCmosConfig { wire, ..CryoCmosConfig::baseline() };
        let (max, binding) = max_qubits(&cfg.build(), &fridge);
        rows.push(Row::new(
            format!("{label} -> max qubits (binds {})", binding.map(|s| s.label()).unwrap_or("-")),
            f64::NAN,
            max as f64,
            "qubits",
        ));
    }
    Experiment {
        id: "Ablation A",
        title: "4K CMOS baseline across 4K-mK interconnects",
        rows,
        notes: vec![
            "with regular cables the mK stages bind; superconducting cables move the".into(),
            "bottleneck to 4K device power — the premise of Section 6.2.2".into(),
        ],
    }
}

/// Ablation B — JPM readout sharing degree: Opt-3 fixes 8; sweep it.
pub fn sharing_ablation() -> Experiment {
    let mut rows = Vec::new();
    for share in [1usize, 2, 4, 8, 16] {
        // Pipelined latency generalized to `share` JPMs per circuit.
        let sched = ReadoutSchedule::opt3();
        let r = sched.jpm_read_ns();
        let latency = if share == 1 {
            ReadoutSchedule::baseline().group_latency_ns()
        } else {
            sched.driving_ns
                + TUNNELING_NS
                + share as f64 * r
                + (share as f64 - 1.0) * RESET_NS.max(TUNNELING_NS)
                + RESET_NS
        };
        let cycle = 50.0 + 200.0 + latency;
        let p_l =
            qisim_surface::analytic::sfq_budget(cycle).logical_error(CODE_DISTANCE, &CALIBRATION);
        // mK static power scales as 1/share (the Opt-3 win).
        let mk_rel = 1.0 / share as f64;
        rows.push(Row::new(format!("share={share}: readout latency"), f64::NAN, latency, "ns"));
        rows.push(Row::new(format!("share={share}: logical error"), f64::NAN, p_l, ""));
        rows.push(Row::new(format!("share={share}: relative mK static"), f64::NAN, mk_rel, "x"));
    }
    Experiment {
        id: "Ablation B",
        title: "JPM readout-circuit sharing degree (Opt-3 fixes 8)",
        rows,
        notes: vec![
            "8 is the knee: 16x sharing doubles the serialized latency for one more".into(),
            "halving of a power that no longer binds".into(),
        ],
    }
}

/// Ablation C — drive FDM degree for the long-term CMOS design (Opt-7
/// picks 20 "within the 4K power budget").
pub fn fdm_ablation() -> Experiment {
    let t = Target::long_term();
    let fridge = Fridge::standard();
    let mut rows = Vec::new();
    for fdm in [8u32, 16, 20, 24, 32] {
        let cfg = CryoCmosConfig { drive_fdm: fdm, ..CryoCmosConfig::long_term() };
        let s = analyze_on(&QciDesign::CryoCmos(cfg), &t, &fridge);
        rows.push(Row::new(
            format!("FDM {fdm}: power-limited qubits"),
            f64::NAN,
            s.power_limited_qubits as f64,
            "qubits",
        ));
        rows.push(Row::new(
            format!("FDM {fdm}: logical error (target {:.2e})", t.logical_error_target()),
            f64::NAN,
            s.logical_error,
            "",
        ));
    }
    Experiment {
        id: "Ablation C",
        title: "drive FDM degree of the long-term CMOS design (Opt-7 picks 20)",
        rows,
        notes: vec!["lower FDM shortens the serialized H layers (less decoherence) but needs more drive lines".into()],
    }
}

/// Ablation D — logical-error calibration sensitivity: perturb each
/// weight of `CALIBRATION` by ±25 % and check that every Section 6
/// verdict survives (the conclusions do not hinge on the exact fit).
pub fn calibration_sensitivity() -> Experiment {
    let near = Target::near_term();
    let long = Target::long_term();
    let verdicts = |cal: &Calibration| -> [bool; 4] {
        let p = |d: &QciDesign| d.physical_budget().logical_error(CODE_DISTANCE, cal);
        [
            // CMOS baseline passes near-term error.
            p(&QciDesign::cmos_baseline()) <= near.logical_error_target(),
            // Naive-shared SFQ fails near-term error.
            {
                let naive = QciDesign::Sfq(qisim_microarch::SfqConfig {
                    sharing: JpmSharing::SharedNaive,
                    ..qisim_microarch::SfqConfig::baseline_rsfq()
                });
                p(&naive) > near.logical_error_target()
            },
            // Long-term CMOS passes the supremacy target.
            p(&QciDesign::cmos_long_term()) <= long.logical_error_target(),
            // Pre-Opt-7 advanced CMOS fails it.
            {
                let pre = QciDesign::CryoCmos(CryoCmosConfig {
                    drive_fdm: 32,
                    readout_ns: qisim_microarch::cryo_cmos::READOUT_NS,
                    ..CryoCmosConfig::long_term()
                });
                p(&pre) > long.logical_error_target()
            },
        ]
    };
    let nominal = verdicts(&CALIBRATION);
    let mut rows = vec![Row::new(
        "verdicts stable at nominal calibration",
        1.0,
        nominal.iter().all(|v| *v) as u8 as f64,
        "",
    )];
    let mut stable = 0usize;
    let mut total = 0usize;
    for scale in [0.75f64, 1.25] {
        for knob in 0..4usize {
            let mut cal = CALIBRATION;
            match knob {
                0 => cal.w_1q *= scale,
                1 => cal.w_2q *= scale,
                2 => cal.w_ro *= scale,
                _ => cal.w_idle *= scale,
            }
            total += 1;
            if verdicts(&cal) == nominal {
                stable += 1;
            }
        }
    }
    rows.push(Row::new(
        "fraction of +/-25% weight perturbations preserving all verdicts",
        1.0,
        stable as f64 / total as f64,
        "",
    ));
    Experiment {
        id: "Ablation D",
        title: "sensitivity of Section 6 verdicts to the logical-error calibration",
        rows,
        notes: vec!["see DESIGN.md 5a for the calibration and its anchors".into()],
    }
}

/// §7.1 what-ifs — future technology scenarios: longer coherence, bigger
/// refrigerators, lighter wires.
pub fn whatif() -> Experiment {
    let near = Target::near_term();
    let mut rows = Vec::new();

    // Longer coherence: T1/T2 5x — how much readout serialization could a
    // future machine tolerate?
    let budget_now = cmos_budget(QciDesign::cmos_baseline().esm_cycle_ns());
    let budget_future = PhysicalBudget { t1_us: 610.0, t2_us: 590.0, ..budget_now };
    rows.push(Row::new(
        "logical error, today's T1/T2 (122/118 us)",
        f64::NAN,
        budget_now.logical_error(CODE_DISTANCE, &CALIBRATION),
        "",
    ));
    rows.push(Row::new(
        "logical error, 5x coherence",
        f64::NAN,
        budget_future.logical_error(CODE_DISTANCE, &CALIBRATION),
        "",
    ));

    // Bigger fridge: 10 W at 4K (multi-cooler future systems).
    let big = Fridge::standard().with_budget(Stage::K4, 10.0);
    let s_now = analyze(&QciDesign::cmos_baseline(), &near);
    let s_big = analyze_on(&QciDesign::cmos_baseline(), &near, &big);
    rows.push(Row::new(
        "4K CMOS baseline, 1.5 W fridge",
        f64::NAN,
        s_now.power_limited_qubits as f64,
        "qubits",
    ));
    rows.push(Row::new(
        "4K CMOS baseline, 10 W fridge",
        f64::NAN,
        s_big.power_limited_qubits as f64,
        "qubits",
    ));

    // Lighter wires: a hypothetical 10x-lighter 300K cable rescues the
    // room-temperature approach to ~4k qubits.
    let coax_now = analyze(&QciDesign::room_coax(), &near);
    rows.push(Row::new(
        "300K coax, today's cable",
        f64::NAN,
        coax_now.power_limited_qubits as f64,
        "qubits",
    ));
    let light = Fridge::standard().with_budget(Stage::Mk100, 2e-3).with_budget(Stage::Mk20, 2e-4);
    let coax_light = analyze_on(&QciDesign::room_coax(), &near, &light);
    rows.push(Row::new(
        "300K coax, 10x mK budgets (equiv. 10x lighter cable)",
        f64::NAN,
        coax_light.power_limited_qubits as f64,
        "qubits",
    ));

    Experiment {
        id: "What-if (7.1)",
        title: "future-technology scenarios via simulation parameters",
        rows,
        notes: vec![
            "the tool's forward-compatibility claim: change the inputs, not the code".into()
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_ablation_shows_sc_cable_advantage() {
        let e = wire_ablation();
        // Regular coax < superconducting coax in max qubits.
        assert!(e.rows[0].measured < e.rows[2].measured, "{e}");
    }

    #[test]
    fn sharing_knee_is_at_eight() {
        let e = sharing_ablation();
        // Logical error grows with sharing degree.
        let p = |i: usize| e.rows[3 * i + 1].measured;
        assert!(p(0) < p(3), "{e}");
        assert!(p(3) < p(4), "{e}");
    }

    #[test]
    fn fdm_20_meets_the_target_fdm_32_does_not() {
        let e = fdm_ablation();
        let target = Target::long_term().logical_error_target();
        let err_at = |fdm: u32| {
            e.rows
                .iter()
                .find(|r| r.label.starts_with(&format!("FDM {fdm}: logical")))
                .unwrap()
                .measured
        };
        assert!(err_at(20) <= target, "{e}");
        assert!(err_at(32) > target, "{e}");
    }

    #[test]
    fn verdicts_survive_calibration_perturbations() {
        let e = calibration_sensitivity();
        assert_eq!(e.rows[0].measured, 1.0, "{e}");
        assert!(e.rows[1].measured >= 0.75, "verdict stability {e}");
    }

    #[test]
    fn whatif_scenarios_move_the_right_direction() {
        let e = whatif();
        assert!(e.rows[1].measured < e.rows[0].measured, "coherence should help: {e}");
        assert!(e.rows[3].measured > e.rows[2].measured, "budget should help: {e}");
        assert!(e.rows[5].measured > e.rows[4].measured, "lighter cable should help: {e}");
    }
}
