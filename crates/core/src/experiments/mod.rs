//! One driver per paper table/figure: each returns an [`Experiment`]
//! with *paper vs. measured* rows, which the bench harnesses print and
//! `EXPERIMENTS.md` records.

pub mod ablations;
pub mod longterm;
pub mod nearterm;
pub mod setup;
pub mod validation;

use std::fmt;

/// One paper-vs-measured comparison row.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// What is being compared.
    pub label: String,
    /// The paper's value (`NaN` for informational rows).
    pub paper: f64,
    /// Our measured value.
    pub measured: f64,
    /// Unit for display.
    pub unit: &'static str,
}

impl Row {
    /// Creates a comparison row.
    pub fn new(label: impl Into<String>, paper: f64, measured: f64, unit: &'static str) -> Self {
        Row { label: label.into(), paper, measured, unit }
    }

    /// Measured / paper ratio (`NaN` when the paper value is missing).
    pub fn ratio(&self) -> f64 {
        self.measured / self.paper
    }

    /// Signed relative error.
    pub fn relative_error(&self) -> f64 {
        (self.measured - self.paper) / self.paper
    }
}

/// A regenerated experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Experiment {
    /// Paper identifier ("Fig. 13", "Table 1"...).
    pub id: &'static str,
    /// One-line description.
    pub title: &'static str,
    /// Comparison rows.
    pub rows: Vec<Row>,
    /// Free-form notes (substitutions, caveats).
    pub notes: Vec<String>,
}

impl Experiment {
    /// Worst absolute relative error across rows with paper values.
    pub fn max_relative_error(&self) -> f64 {
        self.rows
            .iter()
            .filter(|r| r.paper.is_finite() && r.paper != 0.0)
            .map(|r| r.relative_error().abs())
            .fold(0.0, f64::max)
    }

    /// Whether every row's measured value is within `factor`× of the
    /// paper value (the "shape" check for order-of-magnitude rows).
    pub fn all_within_factor(&self, factor: f64) -> bool {
        assert!(factor >= 1.0, "factor must be at least 1");
        self.rows.iter().filter(|r| r.paper.is_finite() && r.paper != 0.0).all(|r| {
            let ratio = r.ratio().abs();
            ratio <= factor && ratio >= 1.0 / factor
        })
    }
}

fn format_value(v: f64) -> String {
    if !v.is_finite() {
        return "-".into();
    }
    let a = v.abs();
    if a == 0.0 {
        "0".into()
    } else if a >= 1e4 || a < 1e-2 {
        format!("{v:.3e}")
    } else {
        format!("{v:.3}")
    }
}

impl fmt::Display for Experiment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "=== {} — {} ===", self.id, self.title)?;
        writeln!(f, "{:<52} {:>12} {:>12} {:>9}", "quantity", "paper", "measured", "ratio")?;
        for r in &self.rows {
            let ratio = if r.paper.is_finite() && r.paper != 0.0 {
                format!("{:>8.3}", r.ratio())
            } else {
                "       -".into()
            };
            writeln!(
                f,
                "{:<52} {:>12} {:>12} {} {}",
                r.label,
                format_value(r.paper),
                format_value(r.measured),
                ratio,
                r.unit
            )?;
        }
        for n in &self.notes {
            writeln!(f, "  note: {n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_math() {
        let r = Row::new("x", 2.0, 3.0, "W");
        assert!((r.ratio() - 1.5).abs() < 1e-12);
        assert!((r.relative_error() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn within_factor_check() {
        let e = Experiment {
            id: "T",
            title: "t",
            rows: vec![Row::new("a", 1.0, 2.0, ""), Row::new("b", 10.0, 6.0, "")],
            notes: vec![],
        };
        assert!(e.all_within_factor(2.0));
        assert!(!e.all_within_factor(1.2));
        assert!((e.max_relative_error() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn display_renders_rows_and_notes() {
        let e = Experiment {
            id: "Fig. 0",
            title: "demo",
            rows: vec![Row::new("metric", 1.0, 1.05, "W")],
            notes: vec!["a note".into()],
        };
        let s = e.to_string();
        assert!(s.contains("Fig. 0"));
        assert!(s.contains("metric"));
        assert!(s.contains("a note"));
    }
}
