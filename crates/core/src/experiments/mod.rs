//! One driver per paper table/figure: each returns an [`Experiment`]
//! with *paper vs. measured* rows, which the bench harnesses print and
//! `EXPERIMENTS.md` records.
//!
//! [`SUITE`] enumerates every driver in figure/table order and
//! [`suite`] runs them all **concurrently** on the [`qisim_par`] pool
//! (each driver is a pure function, so the results are identical to
//! running them one by one — in the same order, at any thread count).

pub mod ablations;
pub mod longterm;
pub mod nearterm;
pub mod setup;
pub mod validation;

use std::fmt;

/// One paper-vs-measured comparison row.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// What is being compared.
    pub label: String,
    /// The paper's value (`NaN` for informational rows).
    pub paper: f64,
    /// Our measured value.
    pub measured: f64,
    /// Unit for display.
    pub unit: &'static str,
}

impl Row {
    /// Creates a comparison row.
    pub fn new(label: impl Into<String>, paper: f64, measured: f64, unit: &'static str) -> Self {
        Row { label: label.into(), paper, measured, unit }
    }

    /// Measured / paper ratio (`NaN` when the paper value is missing).
    pub fn ratio(&self) -> f64 {
        self.measured / self.paper
    }

    /// Signed relative error.
    pub fn relative_error(&self) -> f64 {
        (self.measured - self.paper) / self.paper
    }
}

/// A regenerated experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Experiment {
    /// Paper identifier ("Fig. 13", "Table 1"...).
    pub id: &'static str,
    /// One-line description.
    pub title: &'static str,
    /// Comparison rows.
    pub rows: Vec<Row>,
    /// Free-form notes (substitutions, caveats).
    pub notes: Vec<String>,
}

impl Experiment {
    /// Worst absolute relative error across rows with paper values.
    pub fn max_relative_error(&self) -> f64 {
        self.rows
            .iter()
            .filter(|r| r.paper.is_finite() && r.paper != 0.0)
            .map(|r| r.relative_error().abs())
            .fold(0.0, f64::max)
    }

    /// Whether every row's measured value is within `factor`× of the
    /// paper value (the "shape" check for order-of-magnitude rows).
    pub fn all_within_factor(&self, factor: f64) -> bool {
        assert!(factor >= 1.0, "factor must be at least 1");
        self.rows.iter().filter(|r| r.paper.is_finite() && r.paper != 0.0).all(|r| {
            let ratio = r.ratio().abs();
            ratio <= factor && ratio >= 1.0 / factor
        })
    }
}

/// One [`SUITE`] entry: the paper id plus the driver that regenerates it.
/// The id matches the [`Experiment::id`] the constructor returns.
pub type SuiteEntry = (&'static str, fn() -> Experiment);

/// Every experiment driver, in paper order.
pub const SUITE: &[SuiteEntry] = &[
    ("Fig. 8", validation::fig08),
    ("Fig. 10", validation::fig10),
    ("Table 1", validation::table1),
    ("Fig. 11", validation::fig11),
    ("Fig. 12", nearterm::fig12),
    ("Fig. 13", nearterm::fig13),
    ("Fig. 14", nearterm::fig14),
    ("Fig. 15", nearterm::fig15),
    ("Fig. 16", nearterm::fig16),
    ("Fig. 17", longterm::fig17),
    ("Fig. 18", longterm::fig18),
    ("Fig. 19", longterm::fig19),
    ("Fig. 20", longterm::fig20),
    ("Table 2", setup::table2),
    ("Ablation A", ablations::wire_ablation),
    ("Ablation B", ablations::sharing_ablation),
    ("Ablation C", ablations::fdm_ablation),
    ("Ablation D", ablations::calibration_sensitivity),
    ("What-ifs", ablations::whatif),
];

/// Regenerates the whole paper evaluation: every [`SUITE`] entry, run
/// concurrently, returned in paper order.
pub fn suite() -> Vec<Experiment> {
    run_matching(|_| true)
}

/// Runs the [`SUITE`] experiments whose id satisfies `pred`,
/// concurrently on the [`qisim_par`] pool, preserving paper order.
/// Matching is by the exact id string (`"Fig. 13"`, `"Table 1"`, …).
pub fn run_matching(pred: impl Fn(&str) -> bool + Sync) -> Vec<Experiment> {
    qisim_obs::span!("experiments.suite");
    let picked: Vec<&SuiteEntry> = SUITE.iter().filter(|(id, _)| pred(id)).collect();
    qisim_obs::counter!("experiments.suite.runs", picked.len() as u64);
    qisim_par::par_map(&picked, |(_, build)| build())
}

fn format_value(v: f64) -> String {
    if !v.is_finite() {
        return "-".into();
    }
    let a = v.abs();
    if a == 0.0 {
        "0".into()
    } else if !(1e-2..1e4).contains(&a) {
        format!("{v:.3e}")
    } else {
        format!("{v:.3}")
    }
}

impl fmt::Display for Experiment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "=== {} — {} ===", self.id, self.title)?;
        writeln!(f, "{:<52} {:>12} {:>12} {:>9}", "quantity", "paper", "measured", "ratio")?;
        for r in &self.rows {
            let ratio = if r.paper.is_finite() && r.paper != 0.0 {
                format!("{:>8.3}", r.ratio())
            } else {
                "       -".into()
            };
            writeln!(
                f,
                "{:<52} {:>12} {:>12} {} {}",
                r.label,
                format_value(r.paper),
                format_value(r.measured),
                ratio,
                r.unit
            )?;
        }
        for n in &self.notes {
            writeln!(f, "  note: {n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_math() {
        let r = Row::new("x", 2.0, 3.0, "W");
        assert!((r.ratio() - 1.5).abs() < 1e-12);
        assert!((r.relative_error() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn within_factor_check() {
        let e = Experiment {
            id: "T",
            title: "t",
            rows: vec![Row::new("a", 1.0, 2.0, ""), Row::new("b", 10.0, 6.0, "")],
            notes: vec![],
        };
        assert!(e.all_within_factor(2.0));
        assert!(!e.all_within_factor(1.2));
        assert!((e.max_relative_error() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn suite_ids_are_unique_and_match_their_experiments() {
        let mut seen = std::collections::HashSet::new();
        for (id, _) in super::SUITE {
            assert!(seen.insert(id), "duplicate suite id {id}");
        }
        // Cheap drivers really produce the id they are registered under
        // (the heavyweight ones are covered by the integration suites).
        let picked = super::run_matching(|id| id == "Fig. 12" || id == "Table 2");
        assert_eq!(picked.len(), 2);
        assert_eq!(picked[0].id, "Fig. 12");
        assert_eq!(picked[1].id, "Table 2");
    }

    #[test]
    fn display_renders_rows_and_notes() {
        let e = Experiment {
            id: "Fig. 0",
            title: "demo",
            rows: vec![Row::new("metric", 1.0, 1.05, "W")],
            notes: vec!["a note".into()],
        };
        let s = e.to_string();
        assert!(s.contains("Fig. 0"));
        assert!(s.contains("metric"));
        assert!(s.contains("a note"));
    }
}
