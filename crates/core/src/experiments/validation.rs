//! Validation experiments (§5): Fig. 8, Fig. 10, Table 1, Fig. 11.

use super::{Experiment, Row};
use crate::paperdata::{table1, validation};
use qisim_cyclesim::{simulate, workloads, TimingModel};
use qisim_error::cmos_1q::{Axis, Cmos1qModel};
use qisim_error::readout_cmos::CmosReadoutModel;
use qisim_error::readout_sfq::SfqReadoutModel;
use qisim_error::sfq_1q::Sfq1qModel;
use qisim_error::workload::{seeded_rng, ErrorRates, WorkloadSim};
use qisim_error::CzModel;
use qisim_hal::cmos::{CmosNode, CmosTech, CmosTemp};
use qisim_hal::sfq::{SfqFamily, SfqStage, SfqTech, SFQ_CLOCK_HZ};
use qisim_microarch::cryo_cmos::CryoCmosConfig;
use qisim_microarch::sfq::drive::{bitgen_cells, BitgenKind};
use qisim_microarch::DecisionKind;

/// Fig. 8 — 4 K CMOS power validation vs. Intel Horse Ridge I & II
/// (22 nm, 2.5 GHz; the paper reports ≤5.1 % model error).
pub fn fig08() -> Experiment {
    // Horse-Ridge-equivalent configuration: 22 nm, baseline microarch,
    // new circuits (Z-correction, AWG pulse) excluded from the drive sum.
    let cfg = CryoCmosConfig {
        tech: CmosTech::new(CmosNode::N22, CmosTemp::Cryo4K),
        decision: DecisionKind::BinCounting,
        ..CryoCmosConfig::baseline()
    };
    let arch = cfg.build();
    let n = 1024;
    let drive = arch.group_power_per_qubit_w("drive NCO", n)
        + arch.group_power_per_qubit_w("drive envelope", n)
        + arch.group_power_per_qubit_w("drive bank", n)
        + arch.group_power_per_qubit_w("drive analog", n);
    let tx = arch.group_power_per_qubit_w("TX", n);
    let rx = arch.group_power_per_qubit_w("RX NCO", n)
        + arch.group_power_per_qubit_w("RX decision", n)
        + arch.group_power_per_qubit_w("RX analog", n)
        + arch.group_power_per_qubit_w("RX HEMT", n);
    Experiment {
        id: "Fig. 8",
        title: "4K CMOS power validation vs. Horse Ridge I & II (per qubit)",
        rows: vec![
            Row::new("drive circuit (HR-I)", validation::HR_DRIVE_PER_QUBIT_W, drive, "W"),
            Row::new("TX circuit (HR-II)", validation::HR_TX_PER_QUBIT_W, tx, "W"),
            Row::new("RX circuit (HR-II)", validation::HR_RX_PER_QUBIT_W, rx, "W"),
        ],
        notes: vec![
            "reference bars digitized from Fig. 8; the paper reports <=5.1% model error".into(),
            "model frequency fixed at the 2.5 GHz synthesis target, as in the paper".into(),
        ],
    }
}

/// Fig. 10 — RSFQ frequency/power validation vs. the AIST post-layout
/// analysis of the four most power-hungry drive blocks.
pub fn fig10() -> Experiment {
    let tech = SfqTech::new(SfqFamily::Rsfq, SfqStage::Cryo4K);
    let activity = 0.2;
    let power = |cells: &[(qisim_hal::sfq::SfqCell, u64)]| -> f64 {
        tech.static_power_w(cells) + tech.dynamic_power_w(cells, SFQ_CLOCK_HZ, activity) * 0.3
    };
    let bitgen = power(&bitgen_cells(BitgenKind::PerPhiShiftRegisters));
    let controller =
        power(&[(qisim_hal::sfq::SfqCell::Mux2, 255 * 8), (qisim_hal::sfq::SfqCell::Jtl, 160)]);
    let per_qubit = power(&[
        (qisim_hal::sfq::SfqCell::Ndro, 8),
        (qisim_hal::sfq::SfqCell::Merger, 8),
        (qisim_hal::sfq::SfqCell::Jtl, 117 * 8),
    ]);
    let cdb = power(&[(qisim_hal::sfq::SfqCell::Dff, 42), (qisim_hal::sfq::SfqCell::Ndro, 42)]);
    let p = validation::SFQ_BLOCK_POWER_W;
    Experiment {
        id: "Fig. 10",
        title: "RSFQ frequency & power validation vs. AIST post-layout",
        rows: vec![
            Row::new("max clock", validation::SFQ_BLOCK_CLOCK_HZ, SFQ_CLOCK_HZ, "Hz"),
            Row::new("bitstream generator", p[0], bitgen, "W"),
            Row::new("bitstream controller", p[1], controller, "W"),
            Row::new("per-qubit controller", p[2], per_qubit, "W"),
            Row::new("control-data buffer", p[3], cdb, "W"),
        ],
        notes: vec![
            "8 qubits, #BS=8, 21-bit bitstream, as in the paper's layouts (Fig. 9)".into(),
            "paper reports <=6.7% frequency and <=7.2% power error".into(),
        ],
    }
}

/// Table 1 — gate-error validation. Runs every error model at its
/// reference operating point. The heaviest rows (CZ calibration, SFQ
/// bitstream search, readout Monte-Carlo) take a few seconds each.
pub fn table1() -> Experiment {
    // CMOS 1Q with decoherence at ibm_peekskill-like coherence.
    let cmos = Cmos1qModel::baseline();
    let coh = cmos.coherent_gate_error::<qisim_quantum::rng::Xorshift64Star>(
        Axis::X,
        std::f64::consts::PI,
        14,
        None,
    );
    let cmos_1q = cmos.with_decoherence(coh, 280.0, 280.0);
    // SFQ 1Q.
    let sfq_1q = Sfq1qModel::baseline().basis_gate_error();
    // CZ.
    let cz_model = CzModel::baseline();
    let cal = cz_model.calibrate();
    let mut rng = seeded_rng(11);
    let cz = (0..4).map(|_| cz_model.noisy_cz_error(&cal, 10, 0.004, &mut rng)).sum::<f64>() / 4.0;
    // CMOS readout with decoherence (T1 of ibm_washington-class qubits).
    let ro_model = CmosReadoutModel { t1_us: 90.0, ..CmosReadoutModel::baseline() };
    let cmos_ro = ro_model.error_rate(DecisionKind::BinCounting, 4000, &mut rng);
    // SFQ readout without state preparation.
    let sfq_ro = SfqReadoutModel::baseline().errors().assignment();
    Experiment {
        id: "Table 1",
        title: "gate-error validation vs. IBMQ machines and literature",
        rows: vec![
            Row::new("CMOS 1Q (incl. decoherence)", table1::CMOS_1Q_REF, cmos_1q, ""),
            Row::new("SFQ 1Q", table1::SFQ_1Q_REF, sfq_1q, ""),
            Row::new("2Q (CZ)", table1::TWO_Q_REF, cz, ""),
            Row::new("CMOS readout (incl. decoherence)", table1::CMOS_RO_REF, cmos_ro, ""),
            Row::new("SFQ readout (no state prep)", table1::SFQ_RO_REF, sfq_ro, ""),
        ],
        notes: vec![
            format!(
                "paper's own model values: {:.2e} / {:.2e} / {:.2e} / {:.2e} / {:.2e}",
                table1::CMOS_1Q_MODEL,
                table1::SFQ_1Q_MODEL,
                table1::TWO_Q_MODEL,
                table1::CMOS_RO_MODEL,
                table1::SFQ_RO_MODEL
            ),
            "2Q reference is 9.0e-4 +/- 7e-4 (experimental range)".into(),
        ],
    }
}

/// Fig. 11 — workload-level fidelity validation: the nine-benchmark
/// suite, Monte-Carlo vs. the first-order analytic estimate (our stand-in
/// for the IBMQ hardware runs; the paper reports 5.1 % average
/// difference).
pub fn fig11() -> Experiment {
    let rates =
        ErrorRates { one_q: 3.0e-4, two_q: 8.0e-3, readout: 1.5e-2, t1_us: 120.0, t2_us: 100.0 };
    let sim = WorkloadSim { rates, trajectories: 300 };
    let mut rows = Vec::new();
    let mut total_diff = 0.0;
    let suite = workloads::validation_suite();
    for c in &suite {
        let timeline = simulate(c, &TimingModel::cmos_baseline());
        let mc = sim.fidelity(c, &timeline, &mut seeded_rng(17));
        let analytic = sim.analytic_fidelity(c, &timeline);
        total_diff += (mc - analytic).abs();
        rows.push(Row::new(c.name.clone(), analytic, mc, "fidelity"));
    }
    rows.push(Row::new(
        "average |difference|",
        validation::FIG11_AVG_DIFF,
        total_diff / suite.len() as f64,
        "",
    ));
    Experiment {
        id: "Fig. 11",
        title: "workload-level fidelity validation (9 benchmarks, IBMQ-class errors)",
        rows,
        notes: vec![
            "reference column: first-order analytic fidelity (IBMQ hardware substitute)".into(),
            "error rates set to IBMQ-class values; paper reports 5.1% average difference".into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig08_matches_digitized_anchors() {
        let e = fig08();
        assert!(e.max_relative_error() < 0.10, "Fig. 8 worst error {}", e.max_relative_error());
    }

    #[test]
    fn fig10_matches_postlayout_anchors() {
        let e = fig10();
        assert!(e.max_relative_error() < 0.10, "Fig. 10 worst error {}", e.max_relative_error());
    }

    #[test]
    fn fig11_mc_tracks_analytic() {
        let e = fig11();
        let avg = e.rows.last().expect("average row");
        assert!(avg.measured < 0.08, "average fidelity difference {}", avg.measured);
    }
}
