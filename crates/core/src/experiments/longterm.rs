//! Long-term scalability experiments (§6.4): Figs. 17–20.

use super::{Experiment, Row};
use crate::config::QciDesign;
use crate::paperdata::{logical, power_cuts, readout, scalability};
use crate::scalability::analyze;
use qisim_error::readout_cmos::{CmosReadoutModel, MultiRound};
use qisim_error::readout_sfq::SfqReadoutModel;
use qisim_error::workload::seeded_rng;
use qisim_hal::fridge::{Fridge, Stage};
use qisim_microarch::cryo_cmos::{CryoCmosConfig, READOUT_NS};
use qisim_microarch::sfq::{ReadoutSchedule, SfqConfig};
use qisim_microarch::DecisionKind;
use qisim_power::{evaluate, max_qubits};
use qisim_surface::target::{Target, CODE_DISTANCE};

/// Fig. 17 — long-term scalability: advanced 4 K CMOS (63,883 qubits)
/// and ERSFQ (82,413 qubits), step by step.
pub fn fig17() -> Experiment {
    let t = Target::long_term();
    // CMOS chain: 14 nm optimized → advanced tech/voltage → Opt-6 → Opt-7.
    let near = CryoCmosConfig {
        decision: DecisionKind::Memoryless,
        drive_bits: 6,
        wire: qisim_hal::wire::WireKind::SuperconductingMicrostrip,
        ..CryoCmosConfig::baseline()
    };
    let advanced = CryoCmosConfig {
        tech: qisim_hal::cmos::CmosTech::advanced_4k(),
        analog_scale: 1.0 / (4.15 * 16.0),
        ..near
    };
    let masked = CryoCmosConfig { masked_isa: true, ..advanced };
    let full = CryoCmosConfig::long_term();
    let fridge = Fridge::standard();
    let pl = |cfg: CryoCmosConfig| max_qubits(&cfg.build(), &fridge).0;

    let cmos_final = analyze(&QciDesign::CryoCmos(full), &t);
    let cmos_pre_opt7 = analyze(&QciDesign::CryoCmos(masked), &t);

    // ERSFQ chain.
    let ersfq_shared = SfqConfig {
        family: qisim_hal::sfq::SfqFamily::Ersfq,
        wire: qisim_hal::wire::WireKind::SuperconductingMicrostrip,
        ..SfqConfig::near_term_optimized()
    };
    let ersfq_full = SfqConfig::long_term_ersfq();
    let sfq_shared = analyze(&QciDesign::Sfq(ersfq_shared), &t);
    let sfq_final = analyze(&QciDesign::Sfq(ersfq_full), &t);

    Experiment {
        id: "Fig. 17",
        title: "long-term scalability: advanced 4K CMOS and ERSFQ",
        rows: vec![
            Row::new(
                "advanced CMOS + Opt-6,7: max qubits",
                scalability::CMOS_LONG_TERM as f64,
                cmos_final.power_limited_qubits as f64,
                "qubits",
            ),
            Row::new(
                "ERSFQ + Opt-8: max qubits",
                scalability::ERSFQ_LONG_TERM as f64,
                sfq_final.power_limited_qubits as f64,
                "qubits",
            ),
            Row::new(
                "pre-Opt-7 logical error / target (must be > 1)",
                43.0,
                cmos_pre_opt7.logical_error / t.logical_error_target(),
                "x",
            ),
            Row::new(
                "Opt-8 logical-error improvement",
                logical::OPT8_IMPROVEMENT,
                sfq_shared.logical_error / sfq_final.logical_error,
                "x",
            ),
        ],
        notes: vec![
            format!("14nm optimized (no advanced scaling) power limit: {} qubits", pl(near)),
            format!("advanced (7nm + V-scaled) before Opt-6: {} qubits", pl(advanced)),
            format!("+ Opt-6 masked ISA: {} qubits", pl(masked)),
            format!("CMOS final meets 1.69e-17 target: {}", cmos_final.reaches(&t)),
            format!("ERSFQ final meets target: {}", sfq_final.reaches(&t)),
        ],
    }
}

/// Fig. 18 — Opt-6: advanced-CMOS 4 K power breakdown (wire-dominated)
/// and the instruction-masking bandwidth cut.
pub fn fig18() -> Experiment {
    let unmasked = CryoCmosConfig { masked_isa: false, ..CryoCmosConfig::long_term() };
    let masked = CryoCmosConfig::long_term();
    let n = scalability::LONG_TERM_QUBITS;
    let fridge = Fridge::standard();
    let report = evaluate(&unmasked.build(), &fridge, n);
    let k4 = report.stage(Stage::K4).expect("4K row");
    let wire_share = k4.instr_link_w / k4.total_w();
    let bw_cut = 1.0
        - masked.build().instr_bandwidth_bps_per_qubit
            / unmasked.build().instr_bandwidth_bps_per_qubit;
    Experiment {
        id: "Fig. 18",
        title: "Opt-6: FTQC-friendly instruction masking",
        rows: vec![
            Row::new(
                "wire share of advanced-CMOS 4K power",
                power_cuts::FIG18_WIRE_SHARE,
                wire_share,
                "",
            ),
            Row::new("instruction-bandwidth cut", power_cuts::OPT6_BANDWIDTH, bw_cut, ""),
        ],
        notes: vec![format!(
            "at {} qubits: link {:.3} W of {:.3} W total 4K",
            n,
            k4.instr_link_w,
            k4.total_w()
        )],
    }
}

/// Fig. 19 — Opt-7: error and latency of the decision methods, including
/// the fast multi-round readout.
pub fn fig19() -> Experiment {
    let model = CmosReadoutModel::baseline();
    let mr = MultiRound::standard();
    let mut rng = seeded_rng(23);
    let shots = 8000;
    let bin = model.error_rate(DecisionKind::BinCounting, shots, &mut rng);
    let single = model.error_rate(DecisionKind::SinglePoint, shots, &mut rng);
    let memless = model.error_rate(DecisionKind::Memoryless, shots, &mut rng);
    let (mr_err, mr_lat) = mr.error_and_latency(&model, shots, &mut rng);
    // Fraction decided within 267 ns.
    let mut within = 0usize;
    for s in 0..shots {
        let (_, lat) = mr.shot(&model, s % 2 == 1, &mut rng);
        if lat <= 267.0 {
            within += 1;
        }
    }
    Experiment {
        id: "Fig. 19",
        title: "Opt-7: multi-round readout vs. single-shot decision methods",
        rows: vec![
            Row::new("bin-counting error", 1.0e-3, bin, ""),
            Row::new("single-point error", 1.2e-3, single, ""),
            Row::new("memoryless (Opt-1) error", 1.0e-3, memless, ""),
            Row::new("multi-round error", 1.0e-3, mr_err, ""),
            Row::new(
                "multi-round speedup",
                readout::MULTIROUND_SPEEDUP,
                1.0 - mr_lat / READOUT_NS,
                "",
            ),
            Row::new(
                "fraction decided within 267 ns",
                readout::SHORT_ACCURACY,
                within as f64 / shots as f64,
                "",
            ),
        ],
        notes: vec![format!("mean multi-round latency: {mr_lat:.1} ns (baseline 517 ns)")],
    }
}

/// Fig. 20 — Opt-8: fast resonator driving and unsharing.
pub fn fig20() -> Experiment {
    let base = SfqReadoutModel::baseline();
    let fast = SfqReadoutModel::fast_driving();
    let sched_piped = ReadoutSchedule::opt3();
    let sched_fast = ReadoutSchedule::opt8();
    let breakdown = base.latency_breakdown(&sched_piped);
    let total: f64 = breakdown.iter().sum();
    // Logical errors before/after on ERSFQ.
    let before = analyze(
        &QciDesign::Sfq(SfqConfig {
            family: qisim_hal::sfq::SfqFamily::Ersfq,
            wire: qisim_hal::wire::WireKind::SuperconductingMicrostrip,
            ..SfqConfig::near_term_optimized()
        }),
        &Target::long_term(),
    );
    let after = analyze(&QciDesign::ersfq_long_term(), &Target::long_term());
    let _ = CODE_DISTANCE;
    Experiment {
        id: "Fig. 20",
        title: "Opt-8: fast resonator driving and unshared JPM readout",
        rows: vec![
            Row::new(
                "fast resonator-driving time",
                readout::FAST_DRIVING_NS,
                fast.driving_ns(),
                "ns",
            ),
            Row::new(
                "driving share of shared readout",
                readout::DRIVING_SHARE,
                breakdown[0] / total,
                "",
            ),
            Row::new(
                "pipeline-serialization share",
                readout::PIPELINE_SHARE,
                breakdown[2] / total,
                "",
            ),
            Row::new(
                "unshared fast readout latency",
                230.9 + 12.8 + 4.0 + 70.0,
                fast.latency_ns(&sched_fast),
                "ns",
            ),
            Row::new(
                "logical-error improvement",
                logical::OPT8_IMPROVEMENT,
                before.logical_error / after.logical_error,
                "x",
            ),
        ],
        notes: vec![
            "our energy-limited driving model gives 289.1 ns (2x clock) vs. the paper's 230.9 ns"
                .into(),
            format!(
                "same-error check: baseline {:?} vs fast {:?}",
                base.errors().total(),
                fast.errors().total()
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig17_reaches_long_term_scales() {
        let e = fig17();
        assert!((0.6..1.7).contains(&e.rows[0].ratio()), "CMOS long-term: {e}");
        assert!((0.5..2.0).contains(&e.rows[1].ratio()), "ERSFQ long-term: {e}");
        // Pre-Opt-7 design must miss the target.
        assert!(e.rows[2].measured > 1.0, "pre-Opt-7 must be error-limited: {e}");
    }

    #[test]
    fn fig18_wire_dominates_before_masking() {
        let e = fig18();
        assert!(e.rows[0].measured > 0.45, "wire share {}", e.rows[0].measured);
        assert!(e.rows[1].measured > 0.80, "bandwidth cut {}", e.rows[1].measured);
    }

    #[test]
    fn fig20_fast_driving_and_gain() {
        let e = fig20();
        // Driving time within 30 % of the paper.
        assert!((e.rows[0].ratio() - 1.0).abs() < 0.30, "{e}");
        // Opt-8 gains orders of magnitude.
        assert!(e.rows[4].measured > 1e3, "Opt-8 gain {}", e.rows[4].measured);
    }
}
