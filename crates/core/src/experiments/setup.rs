//! Setup experiments: Table 2 (self-check of the analysis constants) and
//! Table 3 (technology-maturity survey, informational).

use super::{Experiment, Row};
use crate::paperdata::table2;
use qisim_hal::fridge::Stage;
use qisim_hal::sfq::SFQ_CLOCK_HZ;
use qisim_hal::wire::WireKind;
use qisim_microarch::cryo_cmos::{CMOS_CLOCK_HZ, ONE_Q_NS, READOUT_NS, TWO_Q_NS};
use qisim_microarch::sfq::readout::{DRIVING_NS, JPM_READ_NS, RESET_NS, TUNNELING_NS};

/// Table 2 — the scalability-analysis setup, cross-checked against the
/// constants actually wired into the HAL and microarchitecture crates.
pub fn table2() -> Experiment {
    let rows = vec![
        Row::new("1Q gate latency", table2::LATENCIES_NS[0], ONE_Q_NS, "ns"),
        Row::new("2Q gate latency", table2::LATENCIES_NS[1], TWO_Q_NS, "ns"),
        Row::new("CMOS readout latency", table2::LATENCIES_NS[2], READOUT_NS, "ns"),
        Row::new("SFQ resonator driving", table2::SFQ_RO_STEPS_NS[0], DRIVING_NS, "ns"),
        Row::new("SFQ JPM tunneling", table2::SFQ_RO_STEPS_NS[1], TUNNELING_NS, "ns"),
        Row::new("SFQ JPM readout", table2::SFQ_RO_STEPS_NS[2], JPM_READ_NS, "ns"),
        Row::new("SFQ reset", table2::SFQ_RO_STEPS_NS[3], RESET_NS, "ns"),
        Row::new("4K CMOS clock", table2::CLOCKS_HZ[0], CMOS_CLOCK_HZ, "Hz"),
        Row::new("SFQ clock", table2::CLOCKS_HZ[1], SFQ_CLOCK_HZ, "Hz"),
        Row::new("4K cooling capacity", 1.5, Stage::K4.cooling_capacity_w(), "W"),
        Row::new("100mK cooling capacity", 200e-6, Stage::Mk100.cooling_capacity_w(), "W"),
        Row::new("20mK cooling capacity", 20e-6, Stage::Mk20.cooling_capacity_w(), "W"),
        Row::new("coax passive @4K", 1e-3, WireKind::Coax.passive_load_w(Stage::K4), "W"),
        Row::new("coax passive @100mK", 400e-9, WireKind::Coax.passive_load_w(Stage::Mk100), "W"),
        Row::new("coax passive @20mK", 13e-9, WireKind::Coax.passive_load_w(Stage::Mk20), "W"),
        Row::new(
            "microstrip passive @100mK",
            210e-9,
            WireKind::Microstrip.passive_load_w(Stage::Mk100),
            "W",
        ),
        Row::new(
            "photonic PD active @20mK",
            790e-9,
            WireKind::PhotonicLink.active_load_w(Stage::Mk20),
            "W",
        ),
        Row::new(
            "sc coax passive ratio vs coax",
            7.4,
            WireKind::Coax.passive_load_w(Stage::Mk100)
                / WireKind::SuperconductingCoax.passive_load_w(Stage::Mk100),
            "x",
        ),
        Row::new(
            "attenuator chain total",
            60.0,
            Stage::ALL.iter().map(|s| s.attenuation_db()).sum::<f64>(),
            "dB",
        ),
    ];
    Experiment {
        id: "Table 2",
        title: "scalability-analysis setup (self-check against wired constants)",
        rows,
        notes: vec![
            format!("Table 2 error rates: CMOS 1Q {:.2e}, 2Q {:.2e}, RO {:.2e}; SFQ 1Q {:.2e}, 2Q {:.2e}",
                table2::CMOS_1Q, table2::CMOS_2Q, table2::CMOS_RO, table2::SFQ_1Q, table2::SFQ_2Q),
            format!("SFQ driving error {:.2e}, reset error {:.2e}", table2::SFQ_DRIVING, table2::SFQ_RESET),
            format!("T1/T2 = {:?} us (ibm_mumbai)", table2::COHERENCE_US),
        ],
    }
}

/// Table 3 — current status and maturity of QCI technologies
/// (informational survey; maturity grades A–E per the paper's legend).
pub fn table3() -> Vec<(&'static str, [&'static str; 6])> {
    // Columns: 300K CMOS, 4K CMOS, 4K SFQ, 300K cable, 4K microstrip,
    // photonic.
    vec![
        ("1Q gate", ["E", "D", "D", "E", "C", "D"]),
        ("2Q gate (CZ)", ["E", "C", "C", "E", "C", "A"]),
        ("readout", ["E", "C", "A", "E", "C", "D"]),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_self_check_is_exact() {
        let e = table2();
        assert!(e.max_relative_error() < 1e-9, "Table 2 drift: {e}");
    }

    #[test]
    fn table3_has_three_gate_types() {
        let t = table3();
        assert_eq!(t.len(), 3);
        // SFQ readout is the least mature (grade A).
        assert_eq!(t[2].1[2], "A");
    }
}
