//! The headline scalability analysis (Fig. 6 right-hand side): combine
//! the runtime-power model and the logical-error model into the
//! *manageable qubit scale* of a QCI design.
//!
//! A design supports `n` qubits iff (1) its total dissipation fits every
//! refrigerator stage at scale `n`, and (2) its logical error at `d = 23`
//! meets the roadmap target. The paper reports the power-limited count
//! when the error target is met; a design failing the error target is
//! "error-limited" regardless of its power headroom (like the
//! naively-shared RSFQ readout, Fig. 13b).

use crate::config::QciDesign;
use crate::engine;
use qisim_hal::fridge::{Fridge, Stage};
use qisim_hal::topology::LinkKind;
use qisim_power::StagePower;
use qisim_surface::target::Target;
use std::fmt::Write as _;

/// The scalability verdict of one design against one roadmap target.
#[derive(Debug, Clone, PartialEq)]
pub struct Scalability {
    /// Design name.
    pub design: String,
    /// Maximum qubit count the refrigerator budgets allow.
    pub power_limited_qubits: u64,
    /// The stage that binds at that scale.
    pub binding_stage: Option<Stage>,
    /// Per-stage power accounting at the power-limited scale (warm →
    /// cold) — where every watt goes when the design tops out.
    pub stages: Vec<StagePower>,
    /// Logical error per round at `d = 23`.
    pub logical_error: f64,
    /// The target analyzed against.
    pub target_error: f64,
    /// Whether the error target is met.
    pub error_ok: bool,
    /// ESM round time in ns.
    pub esm_cycle_ns: f64,
    /// Multi-fridge scale-out verdict: `None` for the classic
    /// single-fridge analysis (every pre-scale-out report stays
    /// byte-identical), `Some` when the topology has more than one
    /// fridge.
    pub scale_out: Option<ScaleOut>,
}

/// What binds a multi-fridge cluster first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScaleOutBinding {
    /// A refrigerator stage's budget binds on the design's own
    /// dissipation — more interconnect won't help, the fridge itself is
    /// full.
    StageBudget(Stage),
    /// The inter-fridge links' heat at this stage is what crowds out the
    /// design — a lighter link technology or fewer links buys scale.
    Link(Stage),
}

impl ScaleOutBinding {
    /// Stable text-codec identifier (`stage:<label>` / `link:<label>`).
    pub fn label(self) -> String {
        match self {
            ScaleOutBinding::StageBudget(s) => format!("stage:{}", s.label()),
            ScaleOutBinding::Link(s) => format!("link:{}", s.label()),
        }
    }

    /// Inverse of [`ScaleOutBinding::label`]; `None` for unknown text.
    pub fn from_label(label: &str) -> Option<ScaleOutBinding> {
        let (kind, stage) = label.split_once(':')?;
        let stage = Stage::from_label(stage)?;
        match kind {
            "stage" => Some(ScaleOutBinding::StageBudget(stage)),
            "link" => Some(ScaleOutBinding::Link(stage)),
            _ => None,
        }
    }

    /// The refrigerator stage where the constraint lives.
    pub fn stage(self) -> Stage {
        match self {
            ScaleOutBinding::StageBudget(s) | ScaleOutBinding::Link(s) => s,
        }
    }
}

/// The datacenter-scale half of a [`Scalability`] verdict: how a design
/// tiles across N fridges, what the interconnect costs, and how many
/// fridges the requested target takes.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleOut {
    /// Fridge count analyzed.
    pub fridges: u32,
    /// Inter-fridge link technology.
    pub link: LinkKind,
    /// Inter-fridge links terminating in each fridge.
    pub links_per_fridge: u32,
    /// Whether one room-temperature controller rack serves the cluster.
    pub shared_controllers: bool,
    /// Qubits each fridge supports after interconnect heat is folded
    /// into its stage budgets.
    pub per_fridge_qubits: u64,
    /// Interconnect heat folded into each fridge's stages, in watts
    /// (warm → cold, indexed like [`Stage::ALL`]).
    pub interconnect_w: [f64; 5],
    /// The target's provisioned physical-qubit count.
    pub target_qubits: u64,
    /// Fridges needed to reach `target_qubits` at this per-fridge yield;
    /// `None` when the interconnect eats a stage whole and the
    /// per-fridge yield is zero (no fridge count reaches the target).
    pub fridges_to_target: Option<u64>,
    /// What binds first at the per-fridge scale.
    pub binding: Option<ScaleOutBinding>,
}

impl Scalability {
    /// The manageable qubit scale: power-limited if the error target is
    /// met, zero otherwise (the design cannot run the workload at any
    /// scale).
    pub fn manageable_qubits(&self) -> u64 {
        if self.error_ok {
            self.power_limited_qubits
        } else {
            0
        }
    }

    /// Whether the design reaches the target's provisioned scale.
    pub fn reaches(&self, target: &Target) -> bool {
        self.error_ok && self.power_limited_qubits >= target.physical_qubits() as u64
    }

    /// A human-readable report of *why* the design tops out where it
    /// does: error-limited designs name the failing error target,
    /// power-limited designs name the binding refrigerator stage, and
    /// every stage's utilization and watt attribution is itemized.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}:", self.design);
        if !self.error_ok {
            let _ = writeln!(
                out,
                "  error-limited: logical error {:.3e} misses the {:.3e} target \
                 (manageable scale 0; power alone would allow {} qubits)",
                self.logical_error, self.target_error, self.power_limited_qubits
            );
        } else {
            match self.binding_stage {
                Some(stage) => {
                    let util = self
                        .stages
                        .iter()
                        .find(|s| s.stage == stage)
                        .map_or(f64::NAN, StagePower::utilization);
                    let _ = writeln!(
                        out,
                        "  power-limited at {} qubits by the {} stage ({:.1}% of budget)",
                        self.power_limited_qubits,
                        stage,
                        100.0 * util
                    );
                }
                None => {
                    let _ = writeln!(
                        out,
                        "  power-limited at {} qubits (no single binding stage)",
                        self.power_limited_qubits
                    );
                }
            }
            let _ = writeln!(
                out,
                "  logical error {:.3e} meets the {:.3e} target (ESM round {:.1} ns)",
                self.logical_error, self.target_error, self.esm_cycle_ns
            );
        }
        if let Some(so) = &self.scale_out {
            let _ = writeln!(
                out,
                "  scale-out: {} fridges x {} qubits/fridge over {} {} link(s)/fridge \
                 (controllers {})",
                so.fridges,
                so.per_fridge_qubits,
                so.links_per_fridge,
                so.link,
                if so.shared_controllers { "shared" } else { "dedicated" },
            );
            match so.binding {
                Some(ScaleOutBinding::StageBudget(stage)) => {
                    let _ = writeln!(
                        out,
                        "    binding constraint: the {stage} stage budget (the design's own \
                         dissipation tops out each fridge)",
                    );
                }
                Some(ScaleOutBinding::Link(stage)) => {
                    let _ = writeln!(
                        out,
                        "    binding constraint: interconnect link heat at the {stage} stage \
                         (lighter links or fewer of them buy scale)",
                    );
                }
                None => {
                    let _ = writeln!(out, "    binding constraint: none identified");
                }
            }
            let interconnect: Vec<String> = Stage::ALL
                .iter()
                .zip(so.interconnect_w.iter())
                .filter(|(_, w)| **w > 0.0)
                .map(|(s, w)| format!("{} {:.2e} W", s.label(), w))
                .collect();
            if !interconnect.is_empty() {
                let _ =
                    writeln!(out, "    interconnect heat per fridge: {}", interconnect.join(", "));
            }
            match so.fridges_to_target {
                Some(n) => {
                    let _ = writeln!(
                        out,
                        "    fridges to reach the {}-qubit target: {n}",
                        so.target_qubits
                    );
                }
                None => {
                    let _ = writeln!(
                        out,
                        "    the {}-qubit target is unreachable at any fridge count \
                         (interconnect heat consumes a stage budget)",
                        so.target_qubits
                    );
                }
            }
        }
        if !self.stages.is_empty() {
            // Multi-fridge verdicts attribute watts per fridge at the
            // per-fridge yield; classic verdicts at the machine scale.
            let (scope, n) = match &self.scale_out {
                Some(so) => (" (per fridge)", so.per_fridge_qubits.max(1)),
                None => ("", self.power_limited_qubits.max(1)),
            };
            let _ = writeln!(out, "  per-stage power{scope} at n = {n}:");
            for s in &self.stages {
                let _ = writeln!(
                    out,
                    "    {:>5}: {:>10.4e} W of {:>9.3e} W budget ({:>6.1}%) \
                     [static {:.2e}, dynamic {:.2e}, wire {:.2e}, link {:.2e}]",
                    s.stage.label(),
                    s.total_w(),
                    s.budget_w,
                    100.0 * s.utilization(),
                    s.device_static_w,
                    s.device_dynamic_w,
                    s.wire_w,
                    s.instr_link_w,
                );
            }
        }
        // The power memo cache backs every bisection probe behind this
        // verdict; its process-wide hit rate says how much of the work
        // was amortized (the counters exist whenever obs is compiled in).
        let snap = qisim_obs::snapshot();
        if let (Some(hits), Some(misses)) =
            (snap.counter("power.cache.hits"), snap.counter("power.cache.misses"))
        {
            let total = hits + misses;
            if total > 0 {
                let stats = qisim_power::cache_stats();
                let _ = writeln!(
                    out,
                    "  power memo cache: {hits} hits / {misses} misses ({:.1}% hit rate, \
                     process-wide); {} entries resident of {} cap, {} evicted",
                    100.0 * hits as f64 / total as f64,
                    stats.len,
                    stats.cap,
                    stats.evictions,
                );
            }
        }
        // Monte-Carlo estimator counters (process-wide): present only
        // after a sliced or rare-event estimation ran, mirroring the
        // conditional cache block above.
        if let Some(trials) = snap.counter("surface.sliced.trials") {
            let words = snap.counter("surface.sliced.words").unwrap_or(0);
            let fallback = snap.counter("surface.sliced.fallback_trials").unwrap_or(0);
            if trials > 0 {
                let _ = writeln!(
                    out,
                    "  sliced MC engine: {trials} trials across {words} lattice words, \
                     {fallback} decoder fallbacks ({:.1}% resolved word-wide, process-wide)",
                    100.0 * (trials.saturating_sub(fallback)) as f64 / trials as f64,
                );
            }
        }
        if let Some(trials) = snap.counter("surface.rare.trials") {
            let weights = snap.counter("surface.rare.stage_weights").unwrap_or(0);
            if trials > 0 {
                let _ = writeln!(
                    out,
                    "  rare-event sampler: {trials} importance-sampled trials, \
                     {weights} ladder stages carrying weight (process-wide)",
                );
            }
        }
        out
    }
}

/// Analyzes a design against a roadmap target on the standard fridge.
///
/// Infallible wrapper over [`engine::try_analyze`]: panics with the
/// typed diagnostic's text on a malformed design or target (DESIGN.md
/// error-handling policy — batch callers should use the `try_*` API).
pub fn analyze(design: &QciDesign, target: &Target) -> Scalability {
    analyze_on(design, target, &Fridge::standard())
}

/// [`analyze`] with a custom refrigerator (future-capacity what-ifs,
/// §7.1).
pub fn analyze_on(design: &QciDesign, target: &Target, fridge: &Fridge) -> Scalability {
    // Allowlisted panic (tools/panic_allowlist.txt): infallible wrapper.
    engine::try_analyze_on(design, target, fridge).unwrap_or_else(|e| panic!("{e}"))
}

/// One row of a scalability utilization curve (the Fig. 12/13/17 plot
/// data): a design evaluated at one qubit count.
///
/// Replaces the old `(u64, f64, f64, f64)` tuple return of [`sweep`],
/// whose field order callers had to guess.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Evaluated qubit count.
    pub qubits: u64,
    /// Total dissipation summed over every refrigerator stage, in watts.
    pub power_w: f64,
    /// 4 K stage utilization (fraction of the stage budget).
    pub util_4k: f64,
    /// Worst mK-stage utilization (100 mK vs. 20 mK).
    pub util_mk: f64,
    /// Logical error per round at `d = 23` (scale-independent for a
    /// fixed design, so constant along a sweep).
    pub logical_error: f64,
}

impl SweepPoint {
    /// The binding utilization: the worst of the tracked stages.
    pub fn utilization(&self) -> f64 {
        self.util_4k.max(self.util_mk)
    }

    /// Whether every tracked stage is within its cooling budget here.
    pub fn fits(&self) -> bool {
        self.utilization() <= 1.0
    }
}

/// Per-stage utilization curve for scalability plots (Fig. 12/13/17),
/// one [`SweepPoint`] per requested qubit count.
///
/// Points are evaluated **in parallel** on the [`qisim_par`] pool (one
/// design point per task) through the power memo cache; the returned
/// rows are always in `qubit_counts` order, independent of thread count.
///
/// A stage absent from a report (a custom fridge or architecture that
/// doesn't model it) contributes utilization 0 rather than panicking.
///
/// Infallible wrapper over [`engine::try_sweep`] (panics on a malformed
/// design or a zero qubit count).
pub fn sweep(design: &QciDesign, qubit_counts: &[u64]) -> Vec<SweepPoint> {
    // Allowlisted panic (tools/panic_allowlist.txt): infallible wrapper.
    engine::try_sweep(design, qubit_counts).unwrap_or_else(|e| panic!("{e}"))
}

/// Analyzes many designs against one target concurrently: one task per
/// design point, each including its own power bisection. Results are in
/// `designs` order and bit-identical to mapping [`analyze`] serially.
///
/// Infallible wrapper over [`engine::try_analyze_many`] (panics on the
/// first malformed design).
pub fn analyze_many(designs: &[QciDesign], target: &Target) -> Vec<Scalability> {
    // Allowlisted panic (tools/panic_allowlist.txt): infallible wrapper.
    engine::try_analyze_many(designs, target).unwrap_or_else(|e| panic!("{e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opts::{apply_all, Opt};

    #[test]
    fn near_term_verdicts_match_fig13() {
        let t = Target::near_term();
        // CMOS baseline: error fine, power-limited under 1,152.
        let base = analyze(&QciDesign::cmos_baseline(), &t);
        assert!(base.error_ok);
        assert!(!base.reaches(&t), "baseline should miss 1,152: {base:?}");
        // Opt-1 + Opt-2 reach it.
        let opt = apply_all(
            &QciDesign::cmos_baseline(),
            &[Opt::MemorylessDecision, Opt::LowPrecisionDrive],
        )
        .unwrap();
        assert!(analyze(&opt, &t).reaches(&t));
        // RSFQ baseline misses on power; the optimized design reaches.
        assert!(!analyze(&QciDesign::rsfq_baseline(), &t).reaches(&t));
        assert!(analyze(&QciDesign::rsfq_near_term(), &t).reaches(&t));
    }

    #[test]
    fn naive_sharing_is_error_limited() {
        // Fig. 15: naive sharing solves the power problem but the
        // serialized readout wrecks the logical error.
        let naive = QciDesign::Sfq(qisim_microarch::SfqConfig {
            sharing: qisim_microarch::sfq::JpmSharing::SharedNaive,
            ..qisim_microarch::SfqConfig::baseline_rsfq()
        });
        let s = analyze(&naive, &Target::near_term());
        assert!(!s.error_ok, "naive sharing must be error-limited: {s:?}");
        assert_eq!(s.manageable_qubits(), 0);
        assert!(s.power_limited_qubits > 500, "power alone would allow scale");
    }

    #[test]
    fn long_term_verdicts_match_fig17() {
        let t = Target::long_term();
        let cmos = analyze(&QciDesign::cmos_long_term(), &t);
        assert!(cmos.reaches(&t), "advanced CMOS should reach 62,208: {cmos:?}");
        let ersfq = analyze(&QciDesign::ersfq_long_term(), &t);
        assert!(ersfq.reaches(&t), "ERSFQ should reach 62,208: {ersfq:?}");
        // Without Opt-7 the advanced CMOS is error-limited.
        let no_opt7 = QciDesign::CryoCmos(qisim_microarch::CryoCmosConfig {
            drive_fdm: 32,
            readout_ns: qisim_microarch::cryo_cmos::READOUT_NS,
            ..qisim_microarch::CryoCmosConfig::long_term()
        });
        let s = analyze(&no_opt7, &t);
        assert!(!s.error_ok, "pre-Opt-7 advanced CMOS should be error-limited: {s:?}");
    }

    #[test]
    fn room_designs_are_wire_limited() {
        let t = Target::near_term();
        for d in [QciDesign::room_coax(), QciDesign::room_microstrip(), QciDesign::room_photonic()]
        {
            let s = analyze(&d, &t);
            assert!(s.error_ok, "{}: 300K error should be fine", s.design);
            assert!(!s.reaches(&t), "{}: must miss 1,152 qubits", s.design);
            assert!(
                matches!(s.binding_stage, Some(Stage::Mk100) | Some(Stage::Mk20)),
                "{}: binding {:?}",
                s.design,
                s.binding_stage
            );
        }
    }

    #[test]
    fn explain_names_the_binding_stage() {
        let s = analyze(&QciDesign::cmos_baseline(), &Target::near_term());
        let text = s.explain();
        assert!(text.contains("power-limited"), "{text}");
        assert!(text.contains("4K"), "{text}");
        assert!(text.contains("per-stage power"), "{text}");
        assert_eq!(s.stages.len(), Stage::ALL.len());
    }

    #[test]
    fn explain_reports_the_memo_cache_hit_rate() {
        // The bisection behind analyze() always probes the memo cache,
        // so the counters exist by the time explain() renders.
        let s = analyze(&QciDesign::cmos_baseline(), &Target::near_term());
        let text = s.explain();
        if qisim_obs::enabled() {
            assert!(text.contains("power memo cache"), "{text}");
            assert!(text.contains("hit rate"), "{text}");
        } else {
            assert!(!text.contains("power memo cache"), "{text}");
        }
    }

    #[test]
    fn explain_reports_the_estimator_counters_once_they_exist() {
        use crate::engine::try_analyze_with;
        use crate::spec::Estimator;
        let t = Target::near_term();
        let d = QciDesign::cmos_baseline();
        // Run both estimators so their process-wide counters exist
        // before explain() renders.
        try_analyze_with(&d, &t, &Fridge::standard(), Estimator::Sliced).unwrap();
        let rare = try_analyze_with(&d, &t, &Fridge::standard(), Estimator::Rare).unwrap();
        let text = rare.explain();
        if qisim_obs::enabled() {
            assert!(text.contains("sliced MC engine"), "{text}");
            assert!(text.contains("resolved word-wide"), "{text}");
            assert!(text.contains("rare-event sampler"), "{text}");
            assert!(text.contains("ladder stages carrying weight"), "{text}");
        } else {
            assert!(!text.contains("sliced MC engine"), "{text}");
            assert!(!text.contains("rare-event sampler"), "{text}");
        }
    }

    #[test]
    fn explain_reports_error_limited_designs() {
        let naive = QciDesign::Sfq(qisim_microarch::SfqConfig {
            sharing: qisim_microarch::sfq::JpmSharing::SharedNaive,
            ..qisim_microarch::SfqConfig::baseline_rsfq()
        });
        let text = analyze(&naive, &Target::near_term()).explain();
        assert!(text.contains("error-limited"), "{text}");
        assert!(text.contains("misses"), "{text}");
    }

    #[test]
    fn sweep_produces_monotone_utilizations() {
        let rows = sweep(&QciDesign::cmos_baseline(), &[64, 128, 256, 512]);
        assert_eq!(rows.len(), 4);
        for (row, &n) in rows.iter().zip(&[64u64, 128, 256, 512]) {
            assert_eq!(row.qubits, n, "rows must stay in input order");
        }
        for w in rows.windows(2) {
            assert!(w[1].util_4k > w[0].util_4k, "4K utilization must grow");
            assert!(w[1].power_w > w[0].power_w, "total power must grow");
        }
        let last = rows.last().unwrap();
        assert_eq!(last.utilization(), last.util_4k.max(last.util_mk));
        assert!(rows[0].fits(), "64 qubits must fit the baseline budgets");
    }

    #[test]
    fn analyze_many_matches_serial_analysis_at_any_thread_count() {
        let t = Target::near_term();
        let designs =
            [QciDesign::cmos_baseline(), QciDesign::rsfq_baseline(), QciDesign::room_coax()];
        let serial: Vec<Scalability> = designs.iter().map(|d| analyze(d, &t)).collect();
        for threads in [1usize, 3] {
            qisim_par::set_threads(Some(threads));
            assert_eq!(analyze_many(&designs, &t), serial, "{threads} threads");
        }
        qisim_par::set_threads(None);
    }

    #[test]
    fn bigger_fridge_extends_scale() {
        let t = Target::near_term();
        let d = QciDesign::cmos_baseline();
        let std = analyze(&d, &t).power_limited_qubits;
        let big = analyze_on(&d, &t, &Fridge::standard().with_budget(Stage::K4, 6.0))
            .power_limited_qubits;
        assert!(big as f64 > 3.0 * std as f64);
    }
}
