//! The eight architectural optimizations (§6.3–6.4) as typed design
//! transforms.
//!
//! | Opt | Applies to | Lever |
//! |-----|-----------|-------|
//! | 1 | 4K CMOS | memoryless RX decision unit (−88.4 % RX power) |
//! | 2 | 4K CMOS | 6-bit drive precision (−30.9 % drive power) |
//! | 3 | RSFQ | shared + pipelined JPM readout (−8× mK power) |
//! | 4 | SFQ | splitter-shared bitstream generator (−98.2 % bitgen) |
//! | 5 | SFQ | #BS 8 → 1 (−43.8 % 4K power) |
//! | 6 | 4K CMOS | FTQC-masked ISA (−93 % instruction bandwidth) |
//! | 7 | 4K CMOS | FDM 32 → 20 + fast multi-round readout |
//! | 8 | ERSFQ | 48 GHz fast resonator driving + unsharing |

use crate::config::QciDesign;
use qisim_microarch::cryo_cmos::{CryoCmosConfig, MULTI_ROUND_READOUT_NS};
use qisim_microarch::sfq::{BitgenKind, JpmSharing, SfqConfig};
use qisim_microarch::DecisionKind;
use std::fmt;

/// One of the paper's eight optimizations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Opt {
    /// Opt-1: decision unit without bin-counter memory.
    MemorylessDecision,
    /// Opt-2: 6-bit drive precision.
    LowPrecisionDrive,
    /// Opt-3: shared and pipelined JPM readout.
    SharedPipelinedReadout,
    /// Opt-4: low-power bitstream generator.
    LowPowerBitgen,
    /// Opt-5: low-power controllers (#BS = 1).
    SingleBroadcast,
    /// Opt-6: FTQC-friendly instruction masking.
    MaskedIsa,
    /// Opt-7: FDM 20 + fast multi-round readout.
    FastMultiRoundReadout,
    /// Opt-8: fast resonator driving + unsharing.
    FastDrivingUnshared,
}

impl Opt {
    /// All eight, in paper order.
    pub const ALL: [Opt; 8] = [
        Opt::MemorylessDecision,
        Opt::LowPrecisionDrive,
        Opt::SharedPipelinedReadout,
        Opt::LowPowerBitgen,
        Opt::SingleBroadcast,
        Opt::MaskedIsa,
        Opt::FastMultiRoundReadout,
        Opt::FastDrivingUnshared,
    ];

    /// Paper numbering (1-based).
    pub fn number(self) -> u8 {
        match self {
            Opt::MemorylessDecision => 1,
            Opt::LowPrecisionDrive => 2,
            Opt::SharedPipelinedReadout => 3,
            Opt::LowPowerBitgen => 4,
            Opt::SingleBroadcast => 5,
            Opt::MaskedIsa => 6,
            Opt::FastMultiRoundReadout => 7,
            Opt::FastDrivingUnshared => 8,
        }
    }
}

impl fmt::Display for Opt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Opt-#{}", self.number())
    }
}

/// Error returned when an optimization does not apply to a design's
/// technology (e.g. a JPM-readout optimization on a CMOS QCI).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApplyOptError {
    /// The rejected optimization.
    pub opt: Opt,
    /// The design it was applied to.
    pub design: String,
}

impl fmt::Display for ApplyOptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} does not apply to `{}`", self.opt, self.design)
    }
}

impl std::error::Error for ApplyOptError {}

/// Applies one optimization to a design.
///
/// # Errors
///
/// Returns [`ApplyOptError`] when the optimization targets a different
/// technology (300 K designs accept none — §6.2.1: "little room for
/// architectural innovations").
pub fn apply(design: &QciDesign, opt: Opt) -> Result<QciDesign, ApplyOptError> {
    let reject = || ApplyOptError { opt, design: design.name() };
    match (design, opt) {
        (QciDesign::CryoCmos(cfg), Opt::MemorylessDecision) => {
            Ok(QciDesign::CryoCmos(CryoCmosConfig { decision: DecisionKind::Memoryless, ..*cfg }))
        }
        (QciDesign::CryoCmos(cfg), Opt::LowPrecisionDrive) => {
            Ok(QciDesign::CryoCmos(CryoCmosConfig { drive_bits: 6, ..*cfg }))
        }
        (QciDesign::CryoCmos(cfg), Opt::MaskedIsa) => {
            Ok(QciDesign::CryoCmos(CryoCmosConfig { masked_isa: true, ..*cfg }))
        }
        (QciDesign::CryoCmos(cfg), Opt::FastMultiRoundReadout) => {
            Ok(QciDesign::CryoCmos(CryoCmosConfig {
                drive_fdm: 20,
                readout_ns: MULTI_ROUND_READOUT_NS,
                ..*cfg
            }))
        }
        (QciDesign::Sfq(cfg), Opt::SharedPipelinedReadout) => {
            Ok(QciDesign::Sfq(SfqConfig { sharing: JpmSharing::SharedPipelined, ..*cfg }))
        }
        (QciDesign::Sfq(cfg), Opt::LowPowerBitgen) => {
            Ok(QciDesign::Sfq(SfqConfig { bitgen: BitgenKind::SplitterShared, ..*cfg }))
        }
        (QciDesign::Sfq(cfg), Opt::SingleBroadcast) => {
            Ok(QciDesign::Sfq(SfqConfig { bs: 1, ..*cfg }))
        }
        (QciDesign::Sfq(cfg), Opt::FastDrivingUnshared) => Ok(QciDesign::Sfq(SfqConfig {
            fast_driving: true,
            sharing: JpmSharing::Unshared,
            ..*cfg
        })),
        _ => Err(reject()),
    }
}

/// Applies a sequence of optimizations, failing on the first mismatch.
///
/// # Errors
///
/// Propagates the first [`ApplyOptError`].
pub fn apply_all(design: &QciDesign, opts: &[Opt]) -> Result<QciDesign, ApplyOptError> {
    let mut d = *design;
    for &o in opts {
        d = apply(&d, o)?;
    }
    Ok(d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qisim_hal::fridge::{Fridge, Stage};
    use qisim_power::max_qubits;

    #[test]
    fn opt_numbers_are_one_through_eight() {
        let nums: Vec<u8> = Opt::ALL.iter().map(|o| o.number()).collect();
        assert_eq!(nums, vec![1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(Opt::MaskedIsa.to_string(), "Opt-#6");
    }

    #[test]
    fn cmos_opts_raise_the_power_limit() {
        let base = QciDesign::cmos_baseline();
        let opt = apply_all(&base, &[Opt::MemorylessDecision, Opt::LowPrecisionDrive]).unwrap();
        let f = Fridge::standard();
        let before = max_qubits(&base.arch(), &f).0;
        let after = max_qubits(&opt.arch(), &f).0;
        assert!(after as f64 > 1.7 * before as f64, "before {before} after {after}");
    }

    #[test]
    fn sfq_opts_raise_the_power_limit() {
        let base = QciDesign::rsfq_baseline();
        let opt = apply_all(
            &base,
            &[Opt::SharedPipelinedReadout, Opt::LowPowerBitgen, Opt::SingleBroadcast],
        )
        .unwrap();
        assert_eq!(opt, QciDesign::rsfq_near_term());
        let f = Fridge::standard();
        let before = max_qubits(&base.arch(), &f).0;
        let after = max_qubits(&opt.arch(), &f).0;
        assert!(after as f64 > 5.0 * before as f64, "before {before} after {after}");
    }

    #[test]
    fn opt7_shortens_the_cycle() {
        let base = QciDesign::cmos_baseline();
        let opt = apply(&base, Opt::FastMultiRoundReadout).unwrap();
        assert!(opt.esm_cycle_ns() < base.esm_cycle_ns() - 300.0);
    }

    #[test]
    fn opt8_shortens_the_sfq_cycle() {
        let base = QciDesign::rsfq_near_term();
        let opt = apply(&base, Opt::FastDrivingUnshared).unwrap();
        assert!(opt.esm_cycle_ns() < base.esm_cycle_ns());
    }

    #[test]
    fn mismatched_opts_are_rejected() {
        assert!(apply(&QciDesign::cmos_baseline(), Opt::LowPowerBitgen).is_err());
        assert!(apply(&QciDesign::rsfq_baseline(), Opt::MemorylessDecision).is_err());
        let err = apply(&QciDesign::room_coax(), Opt::MaskedIsa).unwrap_err();
        assert!(err.to_string().contains("does not apply"));
    }

    #[test]
    fn masked_isa_cuts_link_power() {
        let base = QciDesign::cmos_long_term();
        let unmasked = QciDesign::CryoCmos(qisim_microarch::cryo_cmos::CryoCmosConfig {
            masked_isa: false,
            ..qisim_microarch::cryo_cmos::CryoCmosConfig::long_term()
        });
        let n = 62_208;
        let f = Fridge::standard();
        let with = qisim_power::evaluate(&base.arch(), &f, n);
        let without = qisim_power::evaluate(&unmasked.arch(), &f, n);
        let w_link = with.stage(Stage::K4).unwrap().instr_link_w;
        let wo_link = without.stage(Stage::K4).unwrap().instr_link_w;
        assert!(w_link < 0.2 * wo_link, "masked {w_link} vs unmasked {wo_link}");
    }
}
