//! Unified QCI design description — the knob set QIsim evaluates.

use qisim_microarch::cryo_cmos::{CryoCmosConfig, EsmProfile};
use qisim_microarch::room_cmos::{self, RoomInterconnect};
use qisim_microarch::sfq::SfqConfig;
use qisim_microarch::QciArch;
use qisim_surface::analytic::{cmos_budget, sfq_budget, PhysicalBudget};

/// Growth of the CMOS single-qubit gate error as the drive DAC precision
/// drops below saturation (Fig. 14b): `p = p_floor + 0.25·4^(−bits)`.
/// Matches the Hamiltonian-simulated precision sweep of
/// `qisim_error::cmos_1q` within its Monte-Carlo scatter.
pub fn cmos_1q_error_for_bits(bits: u32) -> f64 {
    8.17e-7 + 0.25 * 4.0f64.powi(-(bits as i32))
}

/// A complete QCI design: temperature × technology × wire ×
/// microarchitecture.
///
/// # Examples
///
/// ```
/// use qisim::config::QciDesign;
///
/// let base = QciDesign::cmos_baseline();
/// assert!(base.esm_cycle_ns() > 1000.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QciDesign {
    /// 300 K rack electronics over an interconnect (§3.1–3.2).
    Room(RoomInterconnect),
    /// 4 K CMOS QCI (§3.3).
    CryoCmos(CryoCmosConfig),
    /// 4 K SFQ QCI (§3.4).
    Sfq(SfqConfig),
}

impl QciDesign {
    /// The 300 K coax design of Fig. 12a.
    pub fn room_coax() -> Self {
        QciDesign::Room(RoomInterconnect::Coax)
    }

    /// The 300 K microstrip design of Fig. 12b.
    pub fn room_microstrip() -> Self {
        QciDesign::Room(RoomInterconnect::Microstrip)
    }

    /// The 300 K photonic-link design of Fig. 12c.
    pub fn room_photonic() -> Self {
        QciDesign::Room(RoomInterconnect::Photonic)
    }

    /// The near-term 4 K CMOS baseline of Fig. 13a.
    pub fn cmos_baseline() -> Self {
        QciDesign::CryoCmos(CryoCmosConfig::baseline())
    }

    /// The long-term advanced 4 K CMOS design of Fig. 17a (63,883 qubits).
    pub fn cmos_long_term() -> Self {
        QciDesign::CryoCmos(CryoCmosConfig::long_term())
    }

    /// The near-term RSFQ baseline of Fig. 13b.
    pub fn rsfq_baseline() -> Self {
        QciDesign::Sfq(SfqConfig::baseline_rsfq())
    }

    /// The Opt-3/4/5 RSFQ design of Fig. 13b (1,248 qubits).
    pub fn rsfq_near_term() -> Self {
        QciDesign::Sfq(SfqConfig::near_term_optimized())
    }

    /// The long-term ERSFQ design of Fig. 17b (82,413 qubits).
    pub fn ersfq_long_term() -> Self {
        QciDesign::Sfq(SfqConfig::long_term_ersfq())
    }

    /// Builds the hardware inventory.
    pub fn arch(&self) -> QciArch {
        match self {
            QciDesign::Room(kind) => room_cmos::build(*kind),
            QciDesign::CryoCmos(cfg) => cfg.build(),
            QciDesign::Sfq(cfg) => cfg.build(),
        }
    }

    /// The steady-state ESM timing profile.
    pub fn esm_profile(&self) -> EsmProfile {
        match self {
            QciDesign::Room(kind) => room_cmos::esm_profile(*kind),
            QciDesign::CryoCmos(cfg) => cfg.esm_profile(),
            QciDesign::Sfq(cfg) => cfg.esm_profile(),
        }
    }

    /// ESM round time in ns.
    pub fn esm_cycle_ns(&self) -> f64 {
        self.esm_profile().cycle_ns()
    }

    /// The per-round physical error budget (Table 2 rates at this
    /// design's cycle time, with precision-degraded 1Q error for
    /// low-bit CMOS drives).
    pub fn physical_budget(&self) -> PhysicalBudget {
        let cycle = self.esm_cycle_ns();
        match self {
            QciDesign::Room(_) => cmos_budget(cycle),
            QciDesign::CryoCmos(cfg) => PhysicalBudget {
                p_1q: cmos_1q_error_for_bits(cfg.drive_bits),
                ..cmos_budget(cycle)
            },
            QciDesign::Sfq(_) => sfq_budget(cycle),
        }
    }

    /// Display name.
    pub fn name(&self) -> String {
        match self {
            QciDesign::Room(kind) => format!("300K CMOS ({})", kind.label()),
            QciDesign::CryoCmos(_) | QciDesign::Sfq(_) => self.arch().name,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_error_model_saturates_like_fig14() {
        // Gate error saturates around 9 bits, and 6-bit precision is
        // within 10 % on the logical-error axis (w₁·Δp ≪ p_eff).
        let e6 = cmos_1q_error_for_bits(6);
        let e9 = cmos_1q_error_for_bits(9);
        let e14 = cmos_1q_error_for_bits(14);
        assert!(e6 > 5.0 * e9, "6-bit {e6} vs 9-bit {e9}");
        assert!((e9 - e14) / e14 < 2.0, "9-bit is near saturation");
        assert!(e6 < 1e-4, "6-bit error {e6} stays logically negligible");
    }

    #[test]
    fn cycle_times_match_microarch_profiles() {
        assert!((QciDesign::cmos_baseline().esm_cycle_ns() - 1117.0).abs() < 1e-9);
        assert!((QciDesign::rsfq_baseline().esm_cycle_ns() - 915.0).abs() < 1e-9);
        assert!(QciDesign::room_photonic().esm_cycle_ns() < 800.0);
    }

    #[test]
    fn budgets_pick_the_right_technology_rates() {
        let cmos = QciDesign::cmos_baseline().physical_budget();
        let sfq = QciDesign::rsfq_baseline().physical_budget();
        assert!(cmos.p_1q < 1e-5);
        assert!((sfq.p_ro - 1.48e-2).abs() < 1e-12);
    }

    #[test]
    fn names_are_distinct() {
        let designs = [
            QciDesign::room_coax(),
            QciDesign::room_microstrip(),
            QciDesign::cmos_baseline(),
            QciDesign::rsfq_baseline(),
            QciDesign::ersfq_long_term(),
        ];
        let mut names: Vec<String> = designs.iter().map(QciDesign::name).collect();
        names.dedup();
        assert_eq!(names.len(), designs.len());
    }
}
