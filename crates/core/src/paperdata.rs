//! Reference values reported by the paper, used by the experiment
//! drivers to print *paper vs. measured* rows.
//!
//! Sources: exact numbers quoted in the text/tables where available;
//! values only shown graphically (Fig. 8, 10, 12) are our best reading
//! of the figures and are marked `(digitized)` in reports.

/// Table 1 — gate-error validation references.
pub mod table1 {
    /// CMOS 1Q error of `ibm_peekskill` Q21 (decoherence included).
    pub const CMOS_1Q_REF: f64 = 6.59e-5;
    /// The paper's model value for the same.
    pub const CMOS_1Q_MODEL: f64 = 6.07e-5;
    /// SFQ 1Q error of Li et al.
    pub const SFQ_1Q_REF: f64 = 1.37e-5;
    /// The paper's model value.
    pub const SFQ_1Q_MODEL: f64 = 1.51e-5;
    /// CZ error of Sung et al. (±7e-4 experimental range).
    pub const TWO_Q_REF: f64 = 9.0e-4;
    /// The paper's model value.
    pub const TWO_Q_MODEL: f64 = 1.09e-3;
    /// CMOS readout error of `ibm_washington` Q117 (decoherence incl.).
    pub const CMOS_RO_REF: f64 = 1.5e-3;
    /// The paper's model value.
    pub const CMOS_RO_MODEL: f64 = 1.47e-3;
    /// SFQ readout error of Opremcak et al. (no state preparation).
    pub const SFQ_RO_REF: f64 = 6.0e-3;
    /// The paper's model value.
    pub const SFQ_RO_MODEL: f64 = 6.1e-3;
}

/// Table 2 — scalability-analysis setup.
pub mod table2 {
    /// CMOS single-qubit gate error (no decoherence).
    pub const CMOS_1Q: f64 = 8.17e-7;
    /// CMOS CZ error.
    pub const CMOS_2Q: f64 = 7.8e-4;
    /// CMOS readout error.
    pub const CMOS_RO: f64 = 1.0e-3;
    /// SFQ single-qubit gate error.
    pub const SFQ_1Q: f64 = 1.18e-4;
    /// SFQ CZ error.
    pub const SFQ_2Q: f64 = 1.09e-3;
    /// SFQ resonator-driving (+tunneling) error.
    pub const SFQ_DRIVING: f64 = 7.8e-3;
    /// SFQ reset error.
    pub const SFQ_RESET: f64 = 7.0e-3;
    /// Gate latencies in ns: 1Q, 2Q, CMOS readout.
    pub const LATENCIES_NS: [f64; 3] = [25.0, 50.0, 517.0];
    /// SFQ readout step latencies in ns: driving, tunneling, JPM
    /// readout, reset.
    pub const SFQ_RO_STEPS_NS: [f64; 4] = [578.2, 12.8, 4.0, 70.0];
    /// `ibm_mumbai` coherence times in µs (T1, T2).
    pub const COHERENCE_US: [f64; 2] = [122.0, 118.0];
    /// Clock frequencies in Hz (4K CMOS, SFQ).
    pub const CLOCKS_HZ: [f64; 2] = [2.5e9, 24.0e9];
}

/// Scalability headline numbers (Figs. 12, 13, 17).
pub mod scalability {
    /// 300 K coax (Fig. 12a).
    pub const ROOM_COAX: u64 = 400;
    /// 300 K microstrip (Fig. 12b).
    pub const ROOM_MICROSTRIP: u64 = 650;
    /// 300 K photonic link (Fig. 12c).
    pub const ROOM_PHOTONIC: u64 = 70;
    /// 4 K CMOS baseline (Fig. 13a, "<700").
    pub const CMOS_BASELINE: u64 = 700;
    /// 4 K CMOS with Opt-1/2 (Fig. 13a).
    pub const CMOS_OPTIMIZED: u64 = 1_399;
    /// RSFQ baseline (Fig. 13b, "<160").
    pub const RSFQ_BASELINE: u64 = 160;
    /// RSFQ with Opt-3/4/5 (Fig. 13b).
    pub const RSFQ_OPTIMIZED: u64 = 1_248;
    /// Advanced 4 K CMOS with Opt-6/7 (Fig. 17a).
    pub const CMOS_LONG_TERM: u64 = 63_883;
    /// ERSFQ with Opt-8 (Fig. 17b).
    pub const ERSFQ_LONG_TERM: u64 = 82_413;
    /// The near/long-term provisioned scales (§6.1).
    pub const NEAR_TERM_QUBITS: u64 = 1_152;
    /// Long-term: 54 patches.
    pub const LONG_TERM_QUBITS: u64 = 62_208;
}

/// Logical-error anchors (Figs. 13b, 15, 17).
pub mod logical {
    /// SFQ baseline (unshared readout) at d = 23.
    pub const SFQ_BASELINE: f64 = 4.13e-16;
    /// Naive 8× shared readout.
    pub const SFQ_NAIVE_SHARED: f64 = 3.50e-7;
    /// Shared + pipelined (Opt-3).
    pub const SFQ_PIPELINED: f64 = 1.34e-13;
    /// Opt-8's improvement factor over the pipelined ERSFQ design.
    pub const OPT8_IMPROVEMENT: f64 = 28_355.0;
    /// Opt-7's FDM-reduction improvement factor.
    pub const OPT7_FDM_IMPROVEMENT: f64 = 3.85;
    /// Opt-7's multi-round-readout improvement factor.
    pub const OPT7_READOUT_IMPROVEMENT: f64 = 3.62;
}

/// Power-reduction percentages quoted in §6.3–6.4.
pub mod power_cuts {
    /// Opt-1: RX power reduction.
    pub const OPT1_RX: f64 = 0.884;
    /// Opt-1: total 4 K power reduction.
    pub const OPT1_TOTAL: f64 = 0.483;
    /// Opt-2: drive digital power reduction.
    pub const OPT2_DRIVE: f64 = 0.309;
    /// Opt-2: total 4 K power reduction.
    pub const OPT2_TOTAL: f64 = 0.041;
    /// Opt-4: bitstream-generator power reduction.
    pub const OPT4_BITGEN: f64 = 0.982;
    /// Opt-4: total 4 K power reduction.
    pub const OPT4_TOTAL: f64 = 0.232;
    /// Opt-5: total 4 K power reduction (#BS 8 → 1).
    pub const OPT5_TOTAL: f64 = 0.438;
    /// Opt-6: instruction-bandwidth (and wire-power) reduction.
    pub const OPT6_BANDWIDTH: f64 = 0.93;
    /// Fig. 18a: wire share of the advanced-CMOS 4 K power.
    pub const FIG18_WIRE_SHARE: f64 = 0.812;
    /// §6.3.1: RX digital share of baseline 4 K power.
    pub const RX_DIGITAL_SHARE: f64 = 0.547;
    /// §6.3.1: drive digital share of baseline 4 K power.
    pub const DRIVE_DIGITAL_SHARE: f64 = 0.133;
    /// §6.3.2: drive share of RSFQ 4 K power.
    pub const SFQ_DRIVE_SHARE: f64 = 0.717;
    /// §6.3.2: mK static share of RSFQ mK power.
    pub const SFQ_MK_STATIC_SHARE: f64 = 0.997;
}

/// Readout-latency anchors (Figs. 15, 19, 20).
pub mod readout {
    /// Eight naively-serialized SFQ readouts (Fig. 15b).
    pub const NAIVE_NS: f64 = 5_320.0;
    /// Shared + pipelined (Fig. 15b).
    pub const PIPELINED_NS: f64 = 1_255.0;
    /// Opt-7 multi-round speedup over the 517 ns baseline.
    pub const MULTIROUND_SPEEDUP: f64 = 0.409;
    /// Short-readout accuracy anchor: 98.6 % within 267 ns.
    pub const SHORT_ACCURACY: f64 = 0.986;
    /// Opt-8 fast resonator driving (Fig. 20a).
    pub const FAST_DRIVING_NS: f64 = 230.9;
    /// Resonator-driving and pipelining shares of SFQ readout latency.
    pub const DRIVING_SHARE: f64 = 0.461;
    /// Pipelining-overhead share.
    pub const PIPELINE_SHARE: f64 = 0.463;
}

/// Fig. 8/10 validation anchors. The paper validates against Intel Horse
/// Ridge I/II (CMOS, 22 nm, 2.5 GHz) and an AIST post-layout analysis
/// (RSFQ) with ≤5.1 % / ≤7.2 % error; absolute milliwatt values are read
/// off the figures (digitized) and our model is calibrated to the same
/// published anchor points.
pub mod validation {
    /// Fig. 8 — per-qubit digital power of Horse Ridge I drive (22 nm,
    /// 2.5 GHz), digitized, in watts.
    pub const HR_DRIVE_PER_QUBIT_W: f64 = 7.0e-4;
    /// Fig. 8 — per-qubit TX power of Horse Ridge II, digitized.
    pub const HR_TX_PER_QUBIT_W: f64 = 1.6e-4;
    /// Fig. 8 — per-qubit RX power of Horse Ridge II, digitized.
    pub const HR_RX_PER_QUBIT_W: f64 = 2.1e-3;
    /// Fig. 8 — maximum model error the paper reports.
    pub const FIG8_MAX_ERR: f64 = 0.051;
    /// Fig. 10 — post-layout power of the four drive blocks (bitstream
    /// generator, bitstream controller, per-qubit controller ×8,
    /// control-data buffer ×8), digitized, in watts.
    pub const SFQ_BLOCK_POWER_W: [f64; 4] = [6.1e-3, 5.3e-3, 3.8e-4, 1.2e-4];
    /// Fig. 10 — post-layout maximum clock of the blocks, in Hz.
    pub const SFQ_BLOCK_CLOCK_HZ: f64 = 24.0e9;
    /// Fig. 10 — maximum frequency/power errors the paper reports.
    pub const FIG10_MAX_ERR: (f64, f64) = (0.067, 0.072);
    /// Fig. 11 — average fidelity difference vs. IBMQ machines.
    pub const FIG11_AVG_DIFF: f64 = 0.051;
}

#[cfg(test)]
mod tests {
    #[test]
    fn opt1_percentages_are_consistent() {
        // 0.547 × 0.884 ≈ 0.483 (the paper's own cross-check).
        let implied = super::power_cuts::RX_DIGITAL_SHARE * super::power_cuts::OPT1_RX;
        assert!((implied - super::power_cuts::OPT1_TOTAL).abs() < 0.01);
    }

    #[test]
    fn opt2_percentages_are_consistent() {
        let implied = super::power_cuts::DRIVE_DIGITAL_SHARE * super::power_cuts::OPT2_DRIVE;
        assert!((implied - super::power_cuts::OPT2_TOTAL).abs() < 0.01);
    }

    #[test]
    fn near_term_scale_is_d23_patch() {
        assert_eq!(super::scalability::NEAR_TERM_QUBITS, 2 * 24 * 24);
        assert_eq!(super::scalability::LONG_TERM_QUBITS, 54 * 1152);
    }
}
