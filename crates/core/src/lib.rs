//! # QIsim-rs
//!
//! A from-scratch Rust reproduction of **QIsim** (Min et al., *QIsim:
//! Architecting 10+K Qubit QC Interfaces Toward Quantum Supremacy*,
//! ISCA 2023): a quantum–classical interface (QCI) scalability-analysis
//! framework, plus the paper's eight architectural optimizations and its
//! 60,000+-qubit QCI designs.
//!
//! The analysis pipeline mirrors the paper's Fig. 6:
//!
//! 1. **circuit model** — `qisim-hal` + `qisim-microarch` turn a design
//!    point (temperature × technology × wire × microarchitecture) into
//!    per-component frequencies and static/dynamic powers;
//! 2. **cycle-accurate simulation** — `qisim-cyclesim` schedules the
//!    surface-code ESM round and produces gate timings and activity
//!    factors;
//! 3. **runtime power** — `qisim-power` aggregates per-stage dissipation
//!    against the dilution refrigerator's budgets;
//! 4. **error** — `qisim-error` + `qisim-surface` turn gate/readout
//!    errors and the ESM cycle time into a logical error rate;
//! 5. **scalability** — [`scalability::analyze`] combines (3) and (4)
//!    into the manageable qubit scale.
//!
//! The pipeline has two front doors. The historical infallible API
//! ([`scalability::analyze`] and friends) panics on malformed inputs and
//! suits one-shot paper drivers. The **fallible engine** ([`engine`])
//! returns typed [`error::QisimError`] diagnostics, exposes the pipeline
//! as a staged [`engine::AnalysisPlan`], and pairs with validated,
//! serializable [`spec::DesignSpec`]s and the [`codec`] text format —
//! the API a batch design-space search should use.
//!
//! # Examples
//!
//! Reproduce the headline Fig. 13a result — the 4 K CMOS baseline stalls
//! below 700 qubits, and Opt-1 + Opt-2 lift it past the 1,152-qubit
//! near-term target:
//!
//! ```
//! use qisim::{config::QciDesign, opts::{self, Opt}, scalability::analyze};
//! use qisim_surface::target::Target;
//!
//! # fn main() -> Result<(), qisim::opts::ApplyOptError> {
//! let target = Target::near_term();
//! let baseline = analyze(&QciDesign::cmos_baseline(), &target);
//! assert!(!baseline.reaches(&target));
//!
//! let optimized = opts::apply_all(
//!     &QciDesign::cmos_baseline(),
//!     &[Opt::MemorylessDecision, Opt::LowPrecisionDrive],
//! )?;
//! assert!(analyze(&optimized, &target).reaches(&target));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod codec;
pub mod config;
pub mod engine;
pub mod error;
pub mod experiments;
pub mod opts;
pub mod paperdata;
pub mod scalability;
pub mod spec;

pub use config::QciDesign;
pub use engine::{try_analyze, try_analyze_many, try_analyze_on, try_sweep, AnalysisPlan};
pub use error::QisimError;
pub use opts::{apply, apply_all, Opt};
pub use scalability::{analyze, analyze_on, sweep, Scalability};
pub use spec::{DesignSpec, Preset};

// Re-export the component crates so downstream users need only `qisim`.
// (`qisim-error` is the physical gate/readout *error model*; the typed
// failure hierarchy lives in [`error`].)
pub use qisim_cyclesim as cyclesim;
pub use qisim_error as errormodel;
pub use qisim_hal as hal;
pub use qisim_microarch as microarch;
pub use qisim_obs as obs;
pub use qisim_par as par;
pub use qisim_power as power;
pub use qisim_quantum as quantum;
pub use qisim_surface as surface;
