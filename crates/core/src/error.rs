//! The typed error hierarchy of the fallible engine layer.
//!
//! Every `try_*` entry point of the analysis pipeline ([`crate::engine`])
//! and every validated constructor ([`crate::spec::DesignSpec::build`],
//! [`crate::codec`]) returns a [`QisimError`]. The four variants mirror
//! the places the Fig. 6 pipeline can reject an input:
//!
//! * [`QisimError::Config`] — a design-spec knob is out of range or does
//!   not exist on the design's technology;
//! * [`QisimError::Power`] — the runtime-power model rejected a request
//!   (wraps [`qisim_power::PowerError`], source-chained);
//! * [`QisimError::Decode`] — a serialized spec or report failed to
//!   parse ([`crate::codec`]);
//! * [`QisimError::Target`] — a roadmap target is malformed.
//!
//! The error-handling policy (DESIGN.md §error handling): **libraries
//! return `Result`, binaries and examples may unwrap.** The historical
//! infallible APIs (`analyze`, `sweep`, …) survive as thin wrappers that
//! panic with the typed error's `Display` text, so the paper drivers
//! keep their exact behavior.

use qisim_hal::fridge::Stage;
use qisim_power::PowerError;
use std::fmt;

/// Top-level error of the `qisim` analysis engine.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum QisimError {
    /// A design-spec knob failed validation.
    Config(ConfigError),
    /// The runtime-power model rejected a request.
    Power(PowerError),
    /// A serialized artifact failed to parse.
    Decode(DecodeError),
    /// A roadmap target is malformed.
    Target(TargetError),
}

impl fmt::Display for QisimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QisimError::Config(e) => write!(f, "invalid design spec: {e}"),
            QisimError::Power(e) => write!(f, "power model: {e}"),
            QisimError::Decode(e) => write!(f, "decode error: {e}"),
            QisimError::Target(e) => write!(f, "invalid target: {e}"),
        }
    }
}

impl std::error::Error for QisimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QisimError::Config(e) => Some(e),
            QisimError::Power(e) => Some(e),
            QisimError::Decode(e) => Some(e),
            QisimError::Target(e) => Some(e),
        }
    }
}

impl From<ConfigError> for QisimError {
    fn from(e: ConfigError) -> Self {
        QisimError::Config(e)
    }
}

impl From<PowerError> for QisimError {
    fn from(e: PowerError) -> Self {
        QisimError::Power(e)
    }
}

impl From<DecodeError> for QisimError {
    fn from(e: DecodeError) -> Self {
        QisimError::Decode(e)
    }
}

impl From<TargetError> for QisimError {
    fn from(e: TargetError) -> Self {
        QisimError::Target(e)
    }
}

/// A design-spec knob failed validation ([`crate::spec`]).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ConfigError {
    /// An integer knob is outside its validated range.
    OutOfRange {
        /// Knob name (`"drive_fdm"`, `"drive_bits"`, `"bs"`).
        knob: &'static str,
        /// The rejected value.
        value: u64,
        /// Smallest accepted value.
        min: u64,
        /// Largest accepted value.
        max: u64,
    },
    /// A real-valued knob must be positive and finite.
    NotPositive {
        /// Knob name (`"readout_ns"`, `"analog_scale"`).
        knob: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// The knob does not exist on the design's technology (e.g. a DAC
    /// precision on an SFQ QCI).
    KnobMismatch {
        /// Knob name.
        knob: &'static str,
        /// Display name of the design that rejected it.
        design: String,
    },
    /// The spec's display-name override is empty.
    EmptyName,
    /// A refrigerator stage budget override must be positive and finite.
    Budget {
        /// The stage whose budget was overridden.
        stage: Stage,
        /// The rejected budget in watts.
        value: f64,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::OutOfRange { knob, value, min, max } => {
                write!(f, "{knob} = {value} is outside the supported range {min}..={max}")
            }
            ConfigError::NotPositive { knob, value } => {
                write!(f, "{knob} = {value} must be positive and finite")
            }
            ConfigError::KnobMismatch { knob, design } => {
                write!(f, "knob `{knob}` does not exist on `{design}`")
            }
            ConfigError::EmptyName => f.write_str("design name must not be empty"),
            ConfigError::Budget { stage, value } => {
                write!(f, "{stage} budget = {value} W must be positive and finite")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// A serialized artifact failed to parse ([`crate::codec`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// 1-based line number of the offending input line (0 when the
    /// failure is about the document as a whole, e.g. a missing key).
    pub line: usize,
    /// Human-readable reason.
    pub reason: String,
}

impl DecodeError {
    /// Creates a decode error anchored at `line` (1-based; 0 = whole
    /// document).
    pub fn new(line: usize, reason: impl Into<String>) -> Self {
        DecodeError { line, reason: reason.into() }
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            f.write_str(&self.reason)
        } else {
            write!(f, "line {}: {}", self.line, self.reason)
        }
    }
}

impl std::error::Error for DecodeError {}

/// A roadmap target is malformed ([`qisim_surface::target::Target`] is a
/// plain-old-data struct, so the engine validates it on entry).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TargetError {
    /// `logical_ops` must be positive and finite (it divides the error
    /// budget).
    InvalidOps {
        /// The rejected operation count.
        value: f64,
    },
    /// `logical_qubits` must be at least 1.
    NoLogicalQubits,
}

impl fmt::Display for TargetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TargetError::InvalidOps { value } => {
                write!(f, "logical_ops = {value} must be positive and finite")
            }
            TargetError::NoLogicalQubits => f.write_str("logical_qubits must be at least 1"),
        }
    }
}

impl std::error::Error for TargetError {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn display_is_prefixed_by_variant_context() {
        let e = QisimError::from(ConfigError::OutOfRange {
            knob: "drive_bits",
            value: 40,
            min: 1,
            max: 16,
        });
        assert_eq!(
            e.to_string(),
            "invalid design spec: drive_bits = 40 is outside the supported range 1..=16"
        );
        let e = QisimError::from(PowerError::NoQubits);
        assert_eq!(e.to_string(), "power model: need at least one qubit");
        let e = QisimError::from(DecodeError::new(3, "unknown key `frobnicate`"));
        assert_eq!(e.to_string(), "decode error: line 3: unknown key `frobnicate`");
        let e = QisimError::from(TargetError::NoLogicalQubits);
        assert_eq!(e.to_string(), "invalid target: logical_qubits must be at least 1");
    }

    #[test]
    fn sources_chain_across_crates() {
        let e = QisimError::from(PowerError::NoQubits);
        let src = e.source().expect("power errors are source-chained");
        assert_eq!(src.to_string(), "need at least one qubit");
        // The chain bottoms out at the component crate's error.
        assert!(src.source().is_none());
        let e = QisimError::from(ConfigError::EmptyName);
        assert!(e.source().is_some());
    }

    #[test]
    fn decode_errors_render_line_numbers() {
        assert_eq!(DecodeError::new(0, "missing key `preset`").to_string(), "missing key `preset`");
        assert_eq!(DecodeError::new(7, "bad float").to_string(), "line 7: bad float");
    }
}
