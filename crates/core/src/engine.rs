//! The fallible, staged analysis engine: the Fig. 6 pipeline as an
//! explicit [`AnalysisPlan`] with typed errors and named per-stage
//! artifacts.
//!
//! The plan names the five artifacts of a scalability verdict —
//! **inventory** (the component/wire netlist) → **schedule** (the ESM
//! timing profile) → **stage powers** (the bisection's per-stage watt
//! accounting) → **logical error** (the `d = 23` error-model landing) →
//! **verdict** (the assembled [`Scalability`]) — and lets callers run
//! them one at a time, inspect intermediate artifacts, and reuse the
//! `qisim-power` memo cache between stages. Every stage is wrapped in an
//! `engine.stage.*` observability span.
//!
//! [`try_analyze`] / [`try_analyze_many`] / [`try_sweep`] are the
//! batch-friendly entry points: malformed design points come back as
//! [`QisimError`] diagnostics instead of aborting the process, which is
//! what a design-space-search service needs. The historical infallible
//! APIs ([`crate::scalability::analyze`] and friends) are thin wrappers
//! over these.
//!
//! # Examples
//!
//! Run the pipeline stage by stage and inspect the artifacts:
//!
//! ```
//! use qisim::engine::{AnalysisPlan, PlanStage};
//! use qisim::QciDesign;
//! use qisim_surface::target::Target;
//!
//! # fn main() -> Result<(), qisim::error::QisimError> {
//! let mut plan = AnalysisPlan::new(&QciDesign::cmos_baseline(), &Target::near_term())?;
//! assert_eq!(plan.next_stage(), Some(PlanStage::Inventory));
//! plan.run_next()?; // inventory
//! assert!(plan.inventory().is_some());
//! let verdict = plan.run()?; // remaining stages
//! assert!(verdict.power_limited_qubits > 0);
//! # Ok(())
//! # }
//! ```

use crate::config::QciDesign;
use crate::error::{QisimError, TargetError};
use crate::scalability::{Scalability, ScaleOut, ScaleOutBinding, SweepPoint};
use crate::spec::{validate_design, DesignSpec, Estimator};
use qisim_hal::fridge::{Fridge, Stage};
use qisim_hal::topology::FridgeTopology;
use qisim_hal::wire::InstructionLink;
use qisim_microarch::cryo_cmos::EsmProfile;
use qisim_microarch::QciArch;
use qisim_obs::{counter, gauge, span};
use qisim_power::{MemoKey, PowerError, StagePower};
use qisim_surface::analytic::CALIBRATION;
use qisim_surface::montecarlo::{logical_error_rate_rare, logical_error_rate_sliced_par};
use qisim_surface::target::{Target, CODE_DISTANCE};
use qisim_surface::Lattice;

/// Trial count of the [`Estimator::Sliced`] logical-error stage: 512
/// whole 64-trial lane words, enough that the empirical rate resolves
/// error-limited designs while keeping a service request interactive.
const SLICED_ESTIMATOR_TRIALS: usize = 32_768;
/// Per-stage trial count of the [`Estimator::Rare`] splitting ladder.
const RARE_ESTIMATOR_TRIALS: usize = 2_000;
/// Fixed RNG seed for both Monte-Carlo estimators: verdicts must be
/// reproducible across calls, batches, and thread counts.
const ESTIMATOR_SEED: u64 = 0x51_C0DE;

/// One named stage of the Fig. 6 analysis pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlanStage {
    /// Build the component/wire inventory (`hal` + `microarch`).
    Inventory,
    /// Derive the steady-state ESM schedule (`cyclesim`'s steady-state
    /// profile).
    Schedule,
    /// Bisect the power-limited scale and account per-stage watts
    /// (`power`).
    Power,
    /// Evaluate the logical error rate at `d = 23` (`errormodel` +
    /// `surface`).
    LogicalError,
    /// Assemble the [`Scalability`] verdict.
    Verdict,
}

impl PlanStage {
    /// All stages, in execution order.
    pub const ALL: [PlanStage; 5] = [
        PlanStage::Inventory,
        PlanStage::Schedule,
        PlanStage::Power,
        PlanStage::LogicalError,
        PlanStage::Verdict,
    ];

    /// Stable lower-case label (observability span suffix).
    pub fn label(self) -> &'static str {
        match self {
            PlanStage::Inventory => "inventory",
            PlanStage::Schedule => "schedule",
            PlanStage::Power => "power",
            PlanStage::LogicalError => "logical_error",
            PlanStage::Verdict => "verdict",
        }
    }
}

/// The schedule artifact: the steady-state ESM timing profile the power
/// duty cycles and the decoherence error model both consume.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EsmSchedule {
    /// Per-phase timing profile.
    pub profile: EsmProfile,
    /// Total ESM round time in ns.
    pub cycle_ns: f64,
}

/// The stage-powers artifact: the power bisection's landing point.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerArtifact {
    /// Maximum qubit count the refrigerator budgets allow.
    pub power_limited_qubits: u64,
    /// The stage that binds at that scale.
    pub binding_stage: Option<Stage>,
    /// Per-stage watt accounting at the power-limited scale.
    pub stages: Vec<StagePower>,
}

/// The logical-error artifact: the error model evaluated against the
/// roadmap target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogicalArtifact {
    /// Logical error per round at `d = 23`.
    pub logical_error: f64,
    /// The target's required logical error.
    pub target_error: f64,
    /// Whether the target is met.
    pub error_ok: bool,
}

/// A staged run of the scalability pipeline for one design point.
///
/// Construction validates the design and target up front (typed
/// [`QisimError`] diagnostics); afterwards each [`AnalysisPlan::run_next`]
/// call executes exactly one stage and stores its artifact.
#[derive(Debug, Clone)]
pub struct AnalysisPlan {
    design: QciDesign,
    target: Target,
    topology: FridgeTopology,
    estimator: Estimator,
    link: InstructionLink,
    inventory: Option<QciArch>,
    schedule: Option<EsmSchedule>,
    power: Option<PowerArtifact>,
    scale_out: Option<ScaleOut>,
    logical: Option<LogicalArtifact>,
    verdict: Option<Scalability>,
}

impl AnalysisPlan {
    /// Plans an analysis on the standard refrigerator.
    ///
    /// # Errors
    ///
    /// Returns [`QisimError::Config`] for an invalid design knob or
    /// [`QisimError::Target`] for a malformed target.
    pub fn new(design: &QciDesign, target: &Target) -> Result<Self, QisimError> {
        AnalysisPlan::on(design, target, &Fridge::standard())
    }

    /// Plans an analysis on a custom refrigerator (§7.1 what-ifs).
    ///
    /// # Errors
    ///
    /// Same as [`AnalysisPlan::new`].
    pub fn on(design: &QciDesign, target: &Target, fridge: &Fridge) -> Result<Self, QisimError> {
        AnalysisPlan::with_estimator(design, target, fridge, Estimator::Packed)
    }

    /// Plans an analysis whose logical-error stage runs the chosen
    /// [`Estimator`] ([`AnalysisPlan::on`] is the [`Estimator::Packed`]
    /// shorthand; `Packed` plans are bit-identical to the pre-knob
    /// pipeline).
    ///
    /// # Errors
    ///
    /// Same as [`AnalysisPlan::new`].
    pub fn with_estimator(
        design: &QciDesign,
        target: &Target,
        fridge: &Fridge,
        estimator: Estimator,
    ) -> Result<Self, QisimError> {
        let topology = FridgeTopology::standard().with_fridge(fridge.clone());
        AnalysisPlan::with_topology(design, target, &topology, estimator)
    }

    /// Plans an analysis across a whole [`FridgeTopology`] — the general
    /// form behind every other constructor. A single-fridge topology
    /// runs the classic pipeline bit-for-bit; with N > 1 fridges the
    /// power stage shards per fridge, folds interconnect heat into the
    /// stage budgets, and the verdict gains a
    /// [`crate::scalability::ScaleOut`] block.
    ///
    /// # Errors
    ///
    /// Same as [`AnalysisPlan::new`].
    pub fn with_topology(
        design: &QciDesign,
        target: &Target,
        topology: &FridgeTopology,
        estimator: Estimator,
    ) -> Result<Self, QisimError> {
        validate_design(design)?;
        validate_target(target)?;
        Ok(AnalysisPlan {
            design: *design,
            target: *target,
            topology: topology.clone(),
            estimator,
            link: InstructionLink::standard(),
            inventory: None,
            schedule: None,
            power: None,
            scale_out: None,
            logical: None,
            verdict: None,
        })
    }

    /// The design under analysis.
    pub fn design(&self) -> &QciDesign {
        &self.design
    }

    /// The fridge topology under analysis.
    pub fn topology(&self) -> &FridgeTopology {
        &self.topology
    }

    /// The target analyzed against.
    pub fn target(&self) -> &Target {
        &self.target
    }

    /// The next stage [`AnalysisPlan::run_next`] would execute (`None`
    /// when the plan is complete).
    pub fn next_stage(&self) -> Option<PlanStage> {
        if self.inventory.is_none() {
            Some(PlanStage::Inventory)
        } else if self.schedule.is_none() {
            Some(PlanStage::Schedule)
        } else if self.power.is_none() {
            Some(PlanStage::Power)
        } else if self.logical.is_none() {
            Some(PlanStage::LogicalError)
        } else if self.verdict.is_none() {
            Some(PlanStage::Verdict)
        } else {
            None
        }
    }

    /// Executes the next pending stage and returns which one ran
    /// (`Ok(None)` when the plan was already complete). Each stage
    /// records an `engine.stage.<label>` observability span and, when
    /// `QISIM_LOG` is armed at debug level, an `engine.stage` log record
    /// with the stage label and elapsed time (carrying the serving
    /// request id when one is in scope).
    ///
    /// # Errors
    ///
    /// Propagates the stage's typed failure; the plan stays resumable
    /// (already-computed artifacts are kept).
    pub fn run_next(&mut self) -> Result<Option<PlanStage>, QisimError> {
        let Some(stage) = self.next_stage() else {
            return Ok(None);
        };
        counter!("engine.plan.stages");
        let log_stages = qisim_obs::log::armed(qisim_obs::log::Level::Debug);
        let t0 = log_stages.then(std::time::Instant::now);
        match stage {
            PlanStage::Inventory => {
                span!("engine.stage.inventory");
                self.inventory = Some(self.design.arch());
            }
            PlanStage::Schedule => {
                span!("engine.stage.schedule");
                let profile = self.design.esm_profile();
                self.schedule = Some(EsmSchedule { profile, cycle_ns: profile.cycle_ns() });
            }
            PlanStage::Power => {
                span!("engine.stage.power");
                if self.topology.is_single() {
                    self.run_power_single()?;
                } else {
                    self.run_power_sharded()?;
                }
            }
            PlanStage::LogicalError => {
                span!("engine.stage.logical_error");
                let logical_error = self.estimate_logical_error();
                let target_error = self.target.logical_error_target();
                self.logical = Some(LogicalArtifact {
                    logical_error,
                    target_error,
                    error_ok: logical_error <= target_error,
                });
            }
            PlanStage::Verdict => {
                span!("engine.stage.verdict");
                if let (Some(power), Some(logical), Some(schedule)) =
                    (&self.power, &self.logical, &self.schedule)
                {
                    gauge!("scalability.power_limited_qubits", power.power_limited_qubits as f64);
                    gauge!("scalability.logical_error", logical.logical_error);
                    self.verdict = Some(Scalability {
                        design: self.design.name(),
                        power_limited_qubits: power.power_limited_qubits,
                        binding_stage: power.binding_stage,
                        stages: power.stages.clone(),
                        logical_error: logical.logical_error,
                        target_error: logical.target_error,
                        error_ok: logical.error_ok,
                        esm_cycle_ns: schedule.cycle_ns,
                        scale_out: self.scale_out.clone(),
                    });
                } else {
                    // next_stage() only yields Verdict once every
                    // upstream artifact exists.
                    debug_assert!(false, "verdict scheduled before its artifacts");
                }
            }
        }
        if let Some(t0) = t0 {
            qisim_obs::log::record(qisim_obs::log::Level::Debug, "engine.stage")
                .str("stage", stage.label())
                .f64("elapsed_ms", t0.elapsed().as_secs_f64() * 1e3)
                .emit();
        }
        if qisim_obs::trace::armed() {
            self.trace_stage_artifact(stage);
        }
        Ok(Some(stage))
    }

    /// The classic single-fridge power stage: bisect the power-limited
    /// scale and replay the landing probe from the memo cache for the
    /// per-stage attribution. This path is bit-identical to the
    /// pre-topology pipeline (the N=1 identity gate in
    /// `tests/integration_engine.rs` pins it).
    fn run_power_single(&mut self) -> Result<(), QisimError> {
        let design = self.design;
        let arch = self.inventory.get_or_insert_with(|| design.arch());
        let fridge = self.topology.fridge();
        let (n, binding) = qisim_power::try_max_qubits_with_link(arch, fridge, &self.link)?;
        // The bisection's landing probe is in the memo cache;
        // replay it for the per-stage attribution.
        let key = MemoKey::new(arch, fridge, &self.link);
        let stages =
            qisim_power::try_evaluate_memo(key, arch, fridge, n.max(1), &self.link)?.stages;
        self.power =
            Some(PowerArtifact { power_limited_qubits: n, binding_stage: binding, stages });
        Ok(())
    }

    /// The multi-fridge power stage: derate each fridge's budgets by the
    /// interconnect heat, bisect the per-fridge scale on one shard per
    /// fridge (parallel on the [`qisim_par`] pool, folded in fridge
    /// order so the result is thread-count independent), and aggregate
    /// the cluster verdict plus its [`ScaleOut`] attribution.
    fn run_power_sharded(&mut self) -> Result<(), QisimError> {
        let design = self.design;
        let arch: &QciArch = self.inventory.get_or_insert_with(|| design.arch());
        let fridges = self.topology.fridges();
        counter!("engine.fridge.shards", fridges as u64);
        let (per_fridge, binding) = match self.topology.effective_fridge() {
            Some(eff) => {
                // One shard per fridge. Fridges in the cluster are
                // identical, so every shard lands on the same probe —
                // the first one does the bisection, the rest replay it
                // from the memo cache; the fold walks shards in fridge
                // order (first error wins deterministically).
                let link = &self.link;
                let shards = qisim_par::par_map_indices(fridges as usize, |i| {
                    if qisim_obs::trace::armed() {
                        qisim_obs::trace::instant("engine.fridge.shard", &[("fridge", i as f64)]);
                    }
                    qisim_power::try_max_qubits_with_link(arch, &eff, link)
                });
                let mut landing = None;
                for shard in shards {
                    let shard = shard?;
                    landing.get_or_insert(shard);
                }
                landing.unwrap_or((0, None))
            }
            // The interconnect eats some stage's budget whole: zero
            // qubits per fridge, and the worst-loaded stage (total_cmp
            // ordering inside worst_link_stage) names the culprit.
            None => (0, self.topology.worst_link_stage()),
        };
        // Attribute per-stage watts at the per-fridge yield against the
        // *real* budgets; the interconnect share is itemized separately
        // in the ScaleOut block.
        let fridge = self.topology.fridge();
        let key = MemoKey::new(arch, fridge, &self.link);
        let stages =
            qisim_power::try_evaluate_memo(key, arch, fridge, per_fridge.max(1), &self.link)?
                .stages;
        let mut interconnect_w = [0.0; 5];
        for (i, &stage) in Stage::ALL.iter().enumerate() {
            interconnect_w[i] = self.topology.interconnect_w(stage);
        }
        let binding = binding.map(|stage| {
            // At the binding stage: if the links leak at least as much
            // heat as the design itself dissipates there, the link is
            // what crowds out scale; otherwise the stage budget binds on
            // the design's own footprint. total_cmp keeps the
            // classification NaN-safe.
            let own_w = stages.iter().find(|s| s.stage == stage).map_or(0.0, StagePower::total_w);
            let idx = Stage::ALL.iter().position(|s| *s == stage).unwrap_or(0);
            if interconnect_w[idx].total_cmp(&own_w).is_ge() {
                ScaleOutBinding::Link(stage)
            } else {
                ScaleOutBinding::StageBudget(stage)
            }
        });
        let target_qubits = self.target.physical_qubits() as u64;
        let fridges_to_target =
            (per_fridge > 0).then(|| target_qubits.div_ceil(per_fridge)).map(|n| n.max(1));
        self.publish_topology_gauges(per_fridge, &interconnect_w);
        self.scale_out = Some(ScaleOut {
            fridges,
            link: self.topology.link(),
            links_per_fridge: self.topology.links_per_fridge(),
            shared_controllers: self.topology.shared_controllers(),
            per_fridge_qubits: per_fridge,
            interconnect_w,
            target_qubits,
            fridges_to_target,
            binding,
        });
        self.power = Some(PowerArtifact {
            power_limited_qubits: per_fridge * fridges as u64,
            binding_stage: binding.map(ScaleOutBinding::stage),
            stages,
        });
        Ok(())
    }

    /// Publishes the `topology.*` / `engine.fridge.*` gauges for a
    /// sharded power stage (telemetry exporter and flight recorder both
    /// read these).
    fn publish_topology_gauges(&self, per_fridge: u64, interconnect_w: &[f64; 5]) {
        if !qisim_obs::enabled() {
            return;
        }
        gauge!("topology.fridges", self.topology.fridges() as f64);
        gauge!("topology.links_per_fridge", self.topology.links_per_fridge() as f64);
        gauge!(
            "topology.shared_controllers",
            if self.topology.shared_controllers() { 1.0 } else { 0.0 }
        );
        gauge!("engine.fridge.qubits", per_fridge as f64);
        for (i, &stage) in Stage::ALL.iter().enumerate() {
            gauge!(format!("topology.interconnect.{}_w", stage.label()), interconnect_w[i]);
        }
    }

    /// Evaluates the logical error per round at `d = 23` with the plan's
    /// [`Estimator`].
    ///
    /// `Packed` is the calibrated analytic fit (bit-identical to the
    /// historical pipeline). `Sliced` and `Rare` run the design's
    /// effective physical error through the fixed-seed Monte-Carlo
    /// engines; the rate is clamped into each kernel's domain so a
    /// validated design can never panic the stage.
    fn estimate_logical_error(&self) -> f64 {
        let budget = self.design.physical_budget();
        match self.estimator {
            Estimator::Packed => budget.logical_error(CODE_DISTANCE, &CALIBRATION),
            Estimator::Sliced => {
                counter!("engine.estimator.sliced");
                let p = budget.effective_error(&CALIBRATION).clamp(0.0, 1.0);
                let lattice = Lattice::new(CODE_DISTANCE as usize);
                logical_error_rate_sliced_par(&lattice, p, SLICED_ESTIMATOR_TRIALS, ESTIMATOR_SEED)
                    .logical_error
            }
            Estimator::Rare => {
                counter!("engine.estimator.rare");
                let p = budget.effective_error(&CALIBRATION).clamp(f64::MIN_POSITIVE, 1.0 - 1e-12);
                let lattice = Lattice::new(CODE_DISTANCE as usize);
                logical_error_rate_rare(&lattice, p, RARE_ESTIMATOR_TRIALS, ESTIMATOR_SEED)
                    .logical_error
            }
        }
    }

    /// Emits a flight-recorder instant sizing the artifact a stage just
    /// produced (approximate in-memory bytes), so timeline views show
    /// what each `engine.stage.*` span handed downstream.
    fn trace_stage_artifact(&self, stage: PlanStage) {
        use std::mem::{size_of, size_of_val};
        let stage_power_bytes = |stages: &[StagePower]| size_of_val(stages);
        let (name, bytes) = match stage {
            PlanStage::Inventory => ("engine.stage.inventory.artifact", size_of::<QciArch>()),
            PlanStage::Schedule => ("engine.stage.schedule.artifact", size_of::<EsmSchedule>()),
            PlanStage::Power => (
                "engine.stage.power.artifact",
                self.power
                    .as_ref()
                    .map_or(0, |p| size_of::<PowerArtifact>() + stage_power_bytes(&p.stages)),
            ),
            PlanStage::LogicalError => {
                ("engine.stage.logical_error.artifact", size_of::<LogicalArtifact>())
            }
            PlanStage::Verdict => (
                "engine.stage.verdict.artifact",
                self.verdict.as_ref().map_or(0, |v| {
                    size_of::<Scalability>() + stage_power_bytes(&v.stages) + v.design.len()
                }),
            ),
        };
        qisim_obs::trace::instant(name, &[("bytes", bytes as f64)]);
    }

    /// Runs every remaining stage and returns the verdict.
    ///
    /// # Errors
    ///
    /// Propagates the first stage failure.
    pub fn run(&mut self) -> Result<Scalability, QisimError> {
        loop {
            if let Some(v) = &self.verdict {
                return Ok(v.clone());
            }
            self.run_next()?;
        }
    }

    /// The inventory artifact, if that stage has run.
    pub fn inventory(&self) -> Option<&QciArch> {
        self.inventory.as_ref()
    }

    /// The schedule artifact, if that stage has run.
    pub fn schedule(&self) -> Option<&EsmSchedule> {
        self.schedule.as_ref()
    }

    /// The stage-powers artifact, if that stage has run.
    pub fn stage_powers(&self) -> Option<&PowerArtifact> {
        self.power.as_ref()
    }

    /// The logical-error artifact, if that stage has run.
    pub fn logical(&self) -> Option<&LogicalArtifact> {
        self.logical.as_ref()
    }

    /// The verdict, if the plan is complete.
    pub fn verdict(&self) -> Option<&Scalability> {
        self.verdict.as_ref()
    }
}

/// Validates a [`Target`]'s fields (it is plain-old-data, so the engine
/// checks it on entry).
///
/// # Errors
///
/// Returns a [`TargetError`] for non-positive/non-finite `logical_ops`
/// or zero `logical_qubits`.
pub fn validate_target(target: &Target) -> Result<(), TargetError> {
    if !(target.logical_ops.is_finite() && target.logical_ops > 0.0) {
        return Err(TargetError::InvalidOps { value: target.logical_ops });
    }
    if target.logical_qubits == 0 {
        return Err(TargetError::NoLogicalQubits);
    }
    Ok(())
}

/// Fallible [`crate::scalability::analyze`]: validates the design point,
/// then runs the staged pipeline on the standard refrigerator.
///
/// # Errors
///
/// Returns [`QisimError::Config`] / [`QisimError::Target`] for invalid
/// inputs and propagates any stage failure.
pub fn try_analyze(design: &QciDesign, target: &Target) -> Result<Scalability, QisimError> {
    try_analyze_on(design, target, &Fridge::standard())
}

/// Fallible [`crate::scalability::analyze_on`].
///
/// # Errors
///
/// Same as [`try_analyze`].
pub fn try_analyze_on(
    design: &QciDesign,
    target: &Target,
    fridge: &Fridge,
) -> Result<Scalability, QisimError> {
    try_analyze_with(design, target, fridge, Estimator::Packed)
}

/// Fallible analysis with an explicit logical-error [`Estimator`]
/// (the general form behind [`try_analyze_on`]; `Packed` verdicts are
/// bit-identical to the pre-knob pipeline).
///
/// # Errors
///
/// Same as [`try_analyze`].
pub fn try_analyze_with(
    design: &QciDesign,
    target: &Target,
    fridge: &Fridge,
    estimator: Estimator,
) -> Result<Scalability, QisimError> {
    span!("scalability.analyze");
    counter!("scalability.analyze.calls");
    AnalysisPlan::with_estimator(design, target, fridge, estimator)?.run()
}

/// Fallible analysis across a whole [`FridgeTopology`]: the scale-out
/// entry point. A single-fridge topology is bit-identical to
/// [`try_analyze_with`] on its fridge; with N > 1 fridges the verdict
/// carries a [`crate::scalability::ScaleOut`] block and
/// `power_limited_qubits` is the cluster total.
///
/// # Errors
///
/// Same as [`try_analyze`].
pub fn try_analyze_topology(
    design: &QciDesign,
    target: &Target,
    topology: &FridgeTopology,
    estimator: Estimator,
) -> Result<Scalability, QisimError> {
    span!("scalability.analyze");
    counter!("scalability.analyze.calls");
    AnalysisPlan::with_topology(design, target, topology, estimator)?.run()
}

/// Analyzes a validated [`DesignSpec`]: builds the design and the
/// (possibly budget-overridden, possibly multi-fridge) topology, runs
/// the staged pipeline with the spec's chosen [`Estimator`], and stamps
/// the spec's display name on the verdict.
///
/// # Errors
///
/// Returns the spec's validation diagnostics or any stage failure.
pub fn try_analyze_spec(spec: &DesignSpec, target: &Target) -> Result<Scalability, QisimError> {
    let design = spec.build()?;
    let topology = spec.topology()?;
    let mut verdict = try_analyze_topology(&design, target, &topology, spec.chosen_estimator())?;
    verdict.design = spec.display_name();
    Ok(verdict)
}

/// Fallible [`crate::scalability::analyze_many`]: every design is
/// validated, then analyzed concurrently on the [`qisim_par`] pool.
/// Results are in `designs` order and bit-identical to mapping
/// [`try_analyze`] serially; the first error (in `designs` order) wins.
///
/// # Errors
///
/// Returns the first design's [`QisimError`], if any.
pub fn try_analyze_many(
    designs: &[QciDesign],
    target: &Target,
) -> Result<Vec<Scalability>, QisimError> {
    span!("scalability.analyze_many");
    counter!("scalability.analyze_many.designs", designs.len() as u64);
    qisim_par::par_map_indices(designs.len(), |i| {
        if qisim_obs::trace::armed() {
            qisim_obs::trace::instant("scalability.analyze_many.design", &[("design", i as f64)]);
        }
        // Per-candidate latency distribution: the autotuner workload is
        // thousands of these points, so its p50/p99 is the service's
        // headline histogram.
        let t0 = qisim_obs::enabled().then(std::time::Instant::now);
        let verdict = try_analyze(&designs[i], target);
        if let Some(t0) = t0 {
            qisim_obs::observe!(
                "scalability.analyze_many.point_ns",
                t0.elapsed().as_nanos() as f64
            );
        }
        verdict
    })
    .into_iter()
    .collect()
}

/// Fallible [`crate::scalability::sweep`]: validates the design and the
/// qubit counts, then evaluates the utilization curve in parallel
/// through the power memo cache.
///
/// # Errors
///
/// Returns [`QisimError::Config`] for an invalid design and
/// [`QisimError::Power`] ([`PowerError::NoQubits`]) when a requested
/// count is zero.
pub fn try_sweep(design: &QciDesign, qubit_counts: &[u64]) -> Result<Vec<SweepPoint>, QisimError> {
    validate_design(design)?;
    if qubit_counts.contains(&0) {
        return Err(PowerError::NoQubits.into());
    }
    span!("scalability.sweep");
    counter!("scalability.sweep.points", qubit_counts.len() as u64);
    let arch = design.arch();
    let fridge = Fridge::standard();
    let link = InstructionLink::standard();
    let key = MemoKey::new(&arch, &fridge, &link);
    let p_l = design.physical_budget().logical_error(CODE_DISTANCE, &CALIBRATION);
    let util = |r: &qisim_power::PowerReport, stage: Stage| {
        r.stage(stage).map_or(0.0, StagePower::utilization)
    };
    qisim_par::par_map(qubit_counts, |&n| {
        if qisim_obs::trace::armed() {
            qisim_obs::trace::instant("scalability.sweep.point", &[("qubits", n as f64)]);
        }
        let r = qisim_power::try_evaluate_memo(key, &arch, &fridge, n, &link)?;
        Ok(SweepPoint {
            qubits: n,
            power_w: r.stages.iter().map(StagePower::total_w).sum(),
            util_4k: util(&r, Stage::K4),
            util_mk: util(&r, Stage::Mk100).max(util(&r, Stage::Mk20)),
            logical_error: p_l,
        })
    })
    .into_iter()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ConfigError;
    use qisim_microarch::CryoCmosConfig;

    #[test]
    fn plan_runs_stages_in_order() {
        let mut plan =
            AnalysisPlan::new(&QciDesign::cmos_baseline(), &Target::near_term()).unwrap();
        let mut ran = Vec::new();
        while let Some(stage) = plan.run_next().unwrap() {
            ran.push(stage);
        }
        assert_eq!(ran, PlanStage::ALL);
        assert!(plan.inventory().is_some());
        assert!(plan.schedule().is_some());
        assert!(plan.stage_powers().is_some());
        assert!(plan.logical().is_some());
        let verdict = plan.verdict().unwrap();
        assert!(verdict.power_limited_qubits > 0);
        // A completed plan is a no-op.
        assert_eq!(plan.run_next().unwrap(), None);
    }

    #[test]
    fn plan_artifacts_feed_the_verdict() {
        let mut plan =
            AnalysisPlan::new(&QciDesign::rsfq_baseline(), &Target::near_term()).unwrap();
        let verdict = plan.run().unwrap();
        let power = plan.stage_powers().unwrap();
        assert_eq!(power.power_limited_qubits, verdict.power_limited_qubits);
        assert_eq!(power.stages, verdict.stages);
        let schedule = plan.schedule().unwrap();
        assert_eq!(schedule.cycle_ns, verdict.esm_cycle_ns);
        let logical = plan.logical().unwrap();
        assert_eq!(logical.error_ok, verdict.error_ok);
    }

    #[test]
    fn invalid_designs_are_rejected_at_plan_time() {
        let bad =
            QciDesign::CryoCmos(CryoCmosConfig { drive_fdm: 0, ..CryoCmosConfig::baseline() });
        let err = AnalysisPlan::new(&bad, &Target::near_term()).unwrap_err();
        assert!(matches!(err, QisimError::Config(ConfigError::OutOfRange { .. })), "{err:?}");
        assert!(try_analyze(&bad, &Target::near_term()).is_err());
    }

    #[test]
    fn invalid_targets_are_typed() {
        let mut t = Target::near_term();
        t.logical_ops = 0.0;
        assert!(matches!(
            try_analyze(&QciDesign::cmos_baseline(), &t),
            Err(QisimError::Target(TargetError::InvalidOps { .. }))
        ));
        let mut t = Target::near_term();
        t.logical_qubits = 0;
        assert!(matches!(validate_target(&t), Err(TargetError::NoLogicalQubits)));
    }

    #[test]
    fn try_sweep_rejects_zero_counts() {
        let err = try_sweep(&QciDesign::cmos_baseline(), &[64, 0, 128]).unwrap_err();
        assert!(matches!(err, QisimError::Power(PowerError::NoQubits)), "{err:?}");
    }

    #[test]
    fn estimators_route_the_logical_error_stage() {
        let design = QciDesign::cmos_baseline();
        let t = Target::near_term();
        let fridge = Fridge::standard();
        // Packed is the default and stays bit-identical to the
        // historical entry points.
        let packed = try_analyze_with(&design, &t, &fridge, Estimator::Packed).unwrap();
        assert_eq!(packed, try_analyze_on(&design, &t, &fridge).unwrap());
        assert_eq!(packed, try_analyze(&design, &t).unwrap());
        // The Monte-Carlo estimators replace only the logical-error
        // number; the power side of the verdict is untouched.
        for est in [Estimator::Sliced, Estimator::Rare] {
            let mc = try_analyze_with(&design, &t, &fridge, est).unwrap();
            assert_eq!(mc.power_limited_qubits, packed.power_limited_qubits);
            assert_eq!(mc.stages, packed.stages);
            assert!((0.0..=1.0).contains(&mc.logical_error), "{est:?}: {}", mc.logical_error);
            // Fixed seed: the verdict is reproducible call to call.
            assert_eq!(mc, try_analyze_with(&design, &t, &fridge, est).unwrap(), "{est:?}");
        }
        // The baseline's operating point is deep below threshold, so the
        // finite sliced batch sees no failures while the splitting
        // ladder still resolves a nonzero tail estimate.
        let sliced = try_analyze_with(&design, &t, &fridge, Estimator::Sliced).unwrap();
        assert_eq!(sliced.logical_error, 0.0);
        let rare = try_analyze_with(&design, &t, &fridge, Estimator::Rare).unwrap();
        assert!(rare.logical_error > 0.0 && rare.logical_error < 1e-6, "{}", rare.logical_error);
        assert!(rare.error_ok);
    }

    #[test]
    fn spec_estimator_threads_through_try_analyze_spec() {
        use crate::spec::Preset;
        let t = Target::near_term();
        let spec = DesignSpec::new(Preset::CmosBaseline).estimator(Estimator::Sliced);
        let via_spec = try_analyze_spec(&spec, &t).unwrap();
        let direct = try_analyze_with(
            &QciDesign::cmos_baseline(),
            &t,
            &Fridge::standard(),
            Estimator::Sliced,
        )
        .unwrap();
        assert_eq!(via_spec.logical_error, direct.logical_error);
        assert_eq!(via_spec.power_limited_qubits, direct.power_limited_qubits);
    }

    #[test]
    fn spec_analysis_stamps_the_display_name() {
        use crate::spec::Preset;
        let spec = DesignSpec::new(Preset::CmosBaseline).name("svc-design-7");
        let verdict = try_analyze_spec(&spec, &Target::near_term()).unwrap();
        assert_eq!(verdict.design, "svc-design-7");
        let plain = try_analyze(&QciDesign::cmos_baseline(), &Target::near_term()).unwrap();
        assert_eq!(verdict.power_limited_qubits, plain.power_limited_qubits);
    }
}
