//! SFQ (JPM-based) readout error model (§4.4.5) with the Opt-3 and Opt-8
//! schedules.
//!
//! The four steps and how each is modelled:
//!
//! 1. **Resonator driving** — an SFQ pulse train at the resonator period
//!    rings the readout resonator up only when the qubit is in `|1⟩`
//!    (the drive sits on the excited-pulled frequency; the ground-pulled
//!    resonator is detuned by `2χ` and stays dim). Driving time is
//!    energy-limited: boosting the driving circuit to 48 GHz (Opt-8)
//!    packs twice the pulses into each half resonator period and reaches
//!    the same target photon number in a fraction of the time (Fig. 20a).
//! 2. **JPM tunneling** — Govia-style rate model ([`qisim_quantum::jpm`]):
//!    bright photons tunnel the JPM with high probability inside the
//!    12.8 ns window, dark counts stay low.
//! 3. **JPM readout** — the mK LJJ delay comparator; thermal jitter vs.
//!    the designed delay difference gives a failure rate that is
//!    numerically zero (§5.2: "neither our results nor the previous
//!    studies observe any error").
//! 4. **Reset** — technology-independent; error and 70 ns delay adopted
//!    from the microwave-photon-counter experiment (Opremcak et al.).

use qisim_microarch::sfq::readout::{ReadoutSchedule, DRIVING_NS, RESET_NS, TUNNELING_NS};
use qisim_quantum::jpm::Jpm;
use qisim_quantum::resonator::DispersiveResonator;

/// Error probability of one readout *step* plus the total.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SfqReadoutError {
    /// Resonator-driving + JPM-tunneling assignment error (the photon
    /// contrast term).
    pub driving_tunneling: f64,
    /// mK LJJ comparator failure probability.
    pub jpm_readout: f64,
    /// Reset error (from the reference experiment).
    pub reset: f64,
}

impl SfqReadoutError {
    /// Assignment error excluding state preparation/reset — the quantity
    /// Table 1 validates against Opremcak et al.'s 6.0e-3.
    pub fn assignment(&self) -> f64 {
        self.driving_tunneling + self.jpm_readout
    }

    /// Full per-readout error including reset.
    pub fn total(&self) -> f64 {
        self.assignment() + self.reset
    }
}

/// SFQ readout operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SfqReadoutModel {
    /// Readout resonator; for JPM readout the dispersive shift is large
    /// (χ/2π = 40 MHz) so the dark resonator stays near-empty.
    pub resonator: DispersiveResonator,
    /// The photomultiplier.
    pub jpm: Jpm,
    /// Target bright-state photon number.
    pub n_target: f64,
    /// Driving-circuit clock boost (1.0 = 24 GHz baseline, 2.0 = Opt-8's
    /// 48 GHz burst).
    pub boost: f64,
    /// Designed LJJ delay difference in ps.
    pub ljj_delay_ps: f64,
    /// LJJ thermal timing jitter (std) in ps at the AIST operating point.
    pub ljj_jitter_ps: f64,
    /// Reset error (Opremcak et al.).
    pub reset_error: f64,
}

impl SfqReadoutModel {
    /// The paper's baseline operating point.
    pub fn baseline() -> Self {
        SfqReadoutModel {
            resonator: DispersiveResonator {
                freq_ghz: 7.0,
                kappa_ghz: 0.005,
                chi_ghz: 0.040,
                // Drive parked on the excited-pulled frequency.
                drive_detuning_ghz: 0.040,
            },
            jpm: Jpm::standard(),
            n_target: 10.0,
            boost: 1.0,
            ljj_delay_ps: 10.0,
            ljj_jitter_ps: 1.0,
            reset_error: 7.0e-3,
        }
    }

    /// Opt-8 operating point (48 GHz fast driving).
    pub fn fast_driving() -> Self {
        SfqReadoutModel { boost: 2.0, ..SfqReadoutModel::baseline() }
    }

    /// Resonator-driving time in ns: energy-limited, so the baseline
    /// 578.2 ns shrinks by the clock boost (more pulses per half
    /// resonator period deliver energy proportionally faster).
    pub fn driving_ns(&self) -> f64 {
        DRIVING_NS / self.boost
    }

    /// Bright/dark photon numbers at the end of driving. The drive rate
    /// is chosen to land `n_target` photons in the bright resonator; the
    /// dark resonator is suppressed by the `2χ` detuning Lorentzian.
    pub fn photon_numbers(&self) -> (f64, f64) {
        let r = self.resonator;
        let suppress = 1.0 + (2.0 * r.chi_rad() / (r.kappa_rad() / 2.0)).powi(2);
        (self.n_target, self.n_target / suppress)
    }

    /// Per-step and total readout errors.
    pub fn errors(&self) -> SfqReadoutError {
        let (n_bright, n_dark) = self.photon_numbers();
        SfqReadoutError {
            driving_tunneling: self.jpm.assignment_error(n_bright, n_dark, TUNNELING_NS),
            jpm_readout: ljj_failure(self.ljj_delay_ps, self.ljj_jitter_ps),
            reset: self.reset_error,
        }
    }

    /// Assignment-error curve vs. driving time (the Fig. 20a saturation
    /// series): the bright resonator rings up as `n̄·(1−e^{−κt/2})²`,
    /// and the JPM error saturates once the bright population does.
    pub fn saturation_curve(&self, times_ns: &[f64]) -> Vec<f64> {
        let r = self.resonator;
        let (n_inf_bright, n_inf_dark) = {
            // Driving hard enough that the asymptote overshoots the
            // target slightly; the error saturates where n(t) ≈ target.
            let (b, d) = self.photon_numbers();
            (b * 1.05, d * 1.05)
        };
        times_ns
            .iter()
            .map(|&t| {
                let ring = 1.0 - (-r.kappa_rad() * t * self.boost.max(1.0) / 2.0).exp();
                let nb = n_inf_bright * ring * ring;
                let nd = n_inf_dark * ring * ring;
                self.jpm.assignment_error(nb, nd, TUNNELING_NS) + self.reset_error
            })
            .collect()
    }

    /// Full readout latency for a given schedule organization, in ns.
    pub fn latency_ns(&self, schedule: &ReadoutSchedule) -> f64 {
        ReadoutSchedule { driving_ns: self.driving_ns(), ..*schedule }.group_latency_ns()
    }

    /// Latency breakdown (driving, tunneling, JPM readout incl. pipeline
    /// serialization, reset) of the group readout, in ns.
    pub fn latency_breakdown(&self, schedule: &ReadoutSchedule) -> [f64; 4] {
        let sched = ReadoutSchedule { driving_ns: self.driving_ns(), ..*schedule };
        let total = sched.group_latency_ns();
        let driving = self.driving_ns();
        let read_serial = total - driving - TUNNELING_NS - RESET_NS;
        [driving, TUNNELING_NS, read_serial.max(sched.jpm_read_ns()), RESET_NS]
    }
}

/// LJJ delay-comparator failure probability: the DFF misfires when the
/// thermal jitter swamps the designed delay difference —
/// `P = Q(Δt/σ)` with the Gaussian tail function.
pub fn ljj_failure(delay_ps: f64, jitter_ps: f64) -> f64 {
    assert!(jitter_ps > 0.0, "jitter must be positive");
    let x = delay_ps / jitter_ps;
    0.5 * erfc_approx(x / std::f64::consts::SQRT_2)
}

/// Abramowitz–Stegun complementary-error-function approximation (7.1.26),
/// accurate to ~1.5e-7 — enough for tail probabilities down to ~1e-12.
fn erfc_approx(x: f64) -> f64 {
    if x < 0.0 {
        return 2.0 - erfc_approx(-x);
    }
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    poly * (-x * x).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qisim_microarch::sfq::readout::FAST_DRIVING_NS;

    #[test]
    fn assignment_error_matches_table1_scale() {
        // Table 1: model 6.1e-3 vs reference 6.0e-3.
        let m = SfqReadoutModel::baseline();
        let e = m.errors();
        assert!(
            e.assignment() > 2e-3 && e.assignment() < 1.5e-2,
            "assignment error {}",
            e.assignment()
        );
    }

    #[test]
    fn total_includes_reset() {
        let m = SfqReadoutModel::baseline();
        let e = m.errors();
        assert!((e.total() - e.assignment() - 7.0e-3).abs() < 1e-12);
    }

    #[test]
    fn jpm_comparator_never_fails_at_design_point() {
        let m = SfqReadoutModel::baseline();
        assert!(m.errors().jpm_readout < 1e-12, "LJJ failure {}", m.errors().jpm_readout);
        // But a marginal design would.
        assert!(ljj_failure(1.0, 1.0) > 0.1);
    }

    #[test]
    fn fast_driving_halves_the_driving_time_at_same_error() {
        // Fig. 20: 578.2 → 230.9 ns (our energy-limited model gives the
        // exact 2× of the clock boost: 289.1 ns).
        let base = SfqReadoutModel::baseline();
        let fast = SfqReadoutModel::fast_driving();
        assert!((base.driving_ns() - DRIVING_NS).abs() < 1e-9);
        assert!((fast.driving_ns() - DRIVING_NS / 2.0).abs() < 1e-9);
        // Within 30 % of the paper's 230.9 ns.
        assert!((fast.driving_ns() - FAST_DRIVING_NS).abs() / FAST_DRIVING_NS < 0.3);
        // Same target photons → same error.
        assert!((base.errors().total() - fast.errors().total()).abs() < 1e-12);
    }

    #[test]
    fn saturation_curve_is_monotone_then_flat() {
        let m = SfqReadoutModel::baseline();
        let times: Vec<f64> = (1..=12).map(|k| k as f64 * 60.0).collect();
        let errs = m.saturation_curve(&times);
        // Decreasing early...
        assert!(errs[0] > errs[3]);
        // ...and flat at the end (within 2 %).
        let tail = (errs[10] - errs[11]).abs() / errs[11];
        assert!(tail < 0.02, "tail change {tail}");
    }

    #[test]
    fn dark_resonator_is_strongly_suppressed() {
        let m = SfqReadoutModel::baseline();
        let (b, d) = m.photon_numbers();
        assert!(b / d > 100.0, "contrast {}", b / d);
    }

    #[test]
    fn latency_breakdown_sums_to_group_latency() {
        let m = SfqReadoutModel::baseline();
        for sched in [ReadoutSchedule::baseline(), ReadoutSchedule::opt3()] {
            let parts = m.latency_breakdown(&sched);
            let total = m.latency_ns(&sched);
            let sum: f64 = parts.iter().sum();
            assert!((sum - total).abs() < 1e-6, "{parts:?} vs {total}");
        }
    }

    #[test]
    fn erfc_matches_known_values() {
        assert!((erfc_approx(0.0) - 1.0).abs() < 1e-7);
        assert!((erfc_approx(1.0) - 0.157_299_2).abs() < 1e-6);
        assert!(erfc_approx(5.0) < 2e-12);
        assert!((erfc_approx(-1.0) - (2.0 - 0.157_299_2)).abs() < 1e-6);
    }
}
