//! SFQ single-qubit gate error model (§4.4.2).
//!
//! The SFQ drive realizes `Ry(π/2)·Rz(φ)` with a **21-bit bitstream**
//! (§5.1.2: 5-bit `Ry(π/2)` + 16-bit `Rz(φ)` select): within a 21-cycle
//! window at the 24 GHz QCI clock, a handful of SFQ pulses tip the qubit
//! by a fixed per-pulse angle `δθ` about an axis that precesses at the
//! qubit frequency; the *idle delay before the window* (one of 256 DFF
//! delays) sets `Rz(φ)` through free precession.
//!
//! Grid quantization mis-phases the tips, so the paper optimizes the
//! bitstream by iteratively editing pulses and re-running the Hamiltonian
//! simulation until the error stops improving (Fig. 7 ③–④); we reproduce
//! that loop, co-optimizing the pulse slots and the per-pulse tip
//! calibration.
//!
//! The default qubit frequency sits at 5.087 GHz — detuned from the
//! 5 GHz nominal exactly as fabrication spread does in practice — so the
//! 256 delay-realizable `Rz` angles equidistribute over the circle
//! (a commensurate `f_q/f_QCI` would collapse them onto 24 points).

use qisim_microarch::sfq::drive::BITSTREAM_BITS;
use qisim_quantum::fidelity::gate_error;
use qisim_quantum::CMatrix;
use std::f64::consts::PI;

/// SFQ single-qubit gate model.
///
/// # Examples
///
/// ```
/// use qisim_error::sfq_1q::Sfq1qModel;
///
/// let m = Sfq1qModel::baseline();
/// let opt = m.optimized_ry_pi2();
/// assert!(opt.error < 1e-3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sfq1qModel {
    /// Qubit frequency in GHz.
    pub f_qubit_ghz: f64,
    /// QCI clock in GHz (Table 2: 24 GHz).
    pub f_qci_ghz: f64,
    /// Bitstream window in clock cycles (21, §5.1.2).
    pub window: usize,
    /// `Rz` delay-table size (256 entries).
    pub rz_table: usize,
}

/// An optimized bitstream: pulse slots, calibrated per-pulse tip, error.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizedTrain {
    /// Clock-cycle indices of the pulses inside the window.
    pub pulses: Vec<usize>,
    /// Calibrated per-pulse tip angle in radians.
    pub delta_theta: f64,
    /// Hamiltonian-simulated `Ry(π/2)` error.
    pub error: f64,
}

impl Sfq1qModel {
    /// The paper's operating point.
    pub fn baseline() -> Self {
        Sfq1qModel { f_qubit_ghz: 5.087, f_qci_ghz: 24.0, window: BITSTREAM_BITS, rz_table: 256 }
    }

    /// Precession phase (radians) accumulated per clock cycle.
    pub fn phase_per_cycle(&self) -> f64 {
        2.0 * PI * self.f_qubit_ghz / self.f_qci_ghz
    }

    /// The rotating-frame unitary of a pulse train: a pulse at clock
    /// cycle `n` tips by `delta_theta` about the axis at phase
    /// `2π·f_q·n/f_QCI`.
    pub fn train_unitary(&self, pulses: &[usize], delta_theta: f64) -> CMatrix {
        let mut u = CMatrix::identity(2);
        for &n in pulses {
            let phase = self.phase_per_cycle() * n as f64;
            let rot = &(&CMatrix::rz(phase) * &CMatrix::ry(delta_theta)) * &CMatrix::rz(-phase);
            u = &rot * &u;
        }
        u
    }

    /// Error of a pulse train (with tip `delta_theta`) against `Ry(π/2)`.
    pub fn ry_pi2_error(&self, pulses: &[usize], delta_theta: f64) -> f64 {
        gate_error(&CMatrix::ry(PI / 2.0), &self.train_unitary(pulses, delta_theta))
    }

    /// The seed train: the `count` window slots whose precession phase is
    /// closest to zero (mod 2π) — where tips add most coherently.
    pub fn seed_train(&self, count: usize) -> Vec<usize> {
        let wrap = |n: usize| -> f64 {
            let turns = (self.f_qubit_ghz / self.f_qci_ghz * n as f64).rem_euclid(1.0);
            if turns > 0.5 {
                turns - 1.0
            } else {
                turns
            }
        };
        let mut slots: Vec<usize> = (0..self.window).collect();
        slots.sort_by(|&a, &b| wrap(a).abs().partial_cmp(&wrap(b).abs()).expect("finite"));
        let mut seed: Vec<usize> = slots.into_iter().take(count).collect();
        seed.sort_unstable();
        seed
    }

    /// Best tip angle for a fixed pulse set: the error is oscillatory in
    /// `δθ`, so scan a fine grid and refine the best bracket locally.
    pub fn calibrate_tip(&self, pulses: &[usize]) -> (f64, f64) {
        if pulses.is_empty() {
            return (0.0, self.ry_pi2_error(pulses, 0.0));
        }
        let grid = 240;
        let lo = 0.01;
        let hi = PI;
        let mut best = (f64::INFINITY, lo);
        for k in 0..=grid {
            let delta = lo + (hi - lo) * k as f64 / grid as f64;
            let e = self.ry_pi2_error(pulses, delta);
            if e < best.0 {
                best = (e, delta);
            }
        }
        // Golden refinement inside the winning bracket.
        let phi = (5.0f64.sqrt() - 1.0) / 2.0;
        let half = (hi - lo) / grid as f64;
        let (mut a, mut b) = (best.1 - half, best.1 + half);
        for _ in 0..50 {
            let c = b - phi * (b - a);
            let d = a + phi * (b - a);
            if self.ry_pi2_error(pulses, c) < self.ry_pi2_error(pulses, d) {
                b = d;
            } else {
                a = c;
            }
        }
        let delta = 0.5 * (a + b);
        (delta, self.ry_pi2_error(pulses, delta))
    }

    /// The naive (uncalibrated) train: the 5-slot seed with the nominal
    /// `δθ = (π/2)/5` tip — what a designer would try before running the
    /// optimization loop.
    pub fn naive_ry_pi2(&self) -> OptimizedTrain {
        let pulses = self.seed_train(5);
        let delta_theta = PI / 2.0 / pulses.len() as f64;
        let error = self.ry_pi2_error(&pulses, delta_theta);
        OptimizedTrain { pulses, delta_theta, error }
    }

    /// The paper's bitstream optimization (Fig. 7 ③–④): exhaustively
    /// search the 5-pulse placements inside the 21-cycle window (the
    /// 5-bit `Ry` section of §5.1.2), screening each placement with a
    /// coarse tip grid and fully calibrating the finalists. At the
    /// baseline operating point this lands at ≈1.7e-5 — matching the
    /// paper's 1.51e-5 Table 1 value.
    pub fn optimized_ry_pi2(&self) -> OptimizedTrain {
        let mut best =
            OptimizedTrain { pulses: self.seed_train(5), delta_theta: 0.0, error: f64::INFINITY };
        let (d0, e0) = self.calibrate_tip(&best.pulses);
        best.delta_theta = d0;
        best.error = e0;
        let window = self.window.min(21) as u32;
        let mut finalists: Vec<(f64, Vec<usize>)> = Vec::new();
        for mask in 0u32..(1 << window) {
            if mask.count_ones() != 5 {
                continue;
            }
            let pulses: Vec<usize> = (0..window as usize).filter(|b| mask >> b & 1 == 1).collect();
            // Coarse screen: 40-point tip grid.
            let mut screen = f64::INFINITY;
            for g in 1..=40 {
                let d = g as f64 * (PI / 40.0);
                screen = screen.min(self.ry_pi2_error(&pulses, d));
            }
            if screen < 10.0 * best.error.max(1e-6) {
                finalists.push((screen, pulses));
            }
        }
        finalists.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
        for (_, pulses) in finalists.into_iter().take(50) {
            let (d, e) = self.calibrate_tip(&pulses);
            if e < best.error {
                best = OptimizedTrain { pulses, delta_theta: d, error: e };
            }
        }
        best
    }

    /// `Rz(φ)` error from the 256-entry delay table: the realizable
    /// angles are `2π·f_q·k/f_QCI mod 2π`.
    pub fn rz_error(&self, phi: f64) -> f64 {
        let mut best = f64::INFINITY;
        for k in 0..self.rz_table {
            let realized = (self.phase_per_cycle() * k as f64).rem_euclid(2.0 * PI);
            let mut d = (realized - phi.rem_euclid(2.0 * PI)).abs();
            if d > PI {
                d = 2.0 * PI - d;
            }
            best = best.min((d / 2.0).sin().powi(2));
        }
        best
    }

    /// Combined basis-gate error `Ry(π/2)·Rz(φ)` (worst case over the
    /// `φ = nπ/4` lattice-surgery angles) — the Table 2 "SFQ 1Q" number.
    pub fn basis_gate_error(&self) -> f64 {
        let opt = self.optimized_ry_pi2();
        let rz_worst = (0..8).map(|n| self.rz_error(n as f64 * PI / 4.0)).fold(0.0f64, f64::max);
        opt.error + rz_worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commensurate_clock_gives_clean_aligned_slots() {
        // 25 GHz / 5 GHz = 5 cycles per period: slots 0, 5, 10, 15, 20
        // are perfectly phase-aligned and the calibrated train is exact.
        let m = Sfq1qModel { f_qubit_ghz: 5.0, f_qci_ghz: 25.0, ..Sfq1qModel::baseline() };
        let seed = m.seed_train(5);
        assert_eq!(seed, vec![0, 5, 10, 15, 20]);
        let (_, e) = m.calibrate_tip(&seed);
        assert!(e < 1e-12, "aligned train error {e}");
    }

    #[test]
    fn naive_train_has_visible_error() {
        let m = Sfq1qModel::baseline();
        let naive = m.naive_ry_pi2();
        assert!(naive.error > 1e-5, "naive error {}", naive.error);
    }

    #[test]
    fn optimizer_beats_naive_and_reaches_1e4_scale() {
        // Table 1: SFQ 1Q model error 1.51e-5 (Ry part; Rz precision adds
        // ~7e-5 worst-case at this operating point).
        let m = Sfq1qModel::baseline();
        let naive = m.naive_ry_pi2();
        let opt = m.optimized_ry_pi2();
        assert!(opt.error <= naive.error);
        assert!(opt.error < 1e-4, "optimized Ry error {}", opt.error);
        assert!(opt.pulses.len() >= 2);
        assert!(*opt.pulses.last().unwrap() < m.window);
    }

    #[test]
    fn rz_table_is_dense_at_detuned_frequency() {
        let m = Sfq1qModel::baseline();
        for phi in [0.0, PI / 4.0, PI / 2.0, 1.0, 2.5, 5.0] {
            let e = m.rz_error(phi);
            assert!(e < 2e-4, "rz({phi}) error {e}");
        }
        // The commensurate 5.0 GHz case collapses to 24 angles and the
        // error explodes — the reason the operating point is detuned.
        let bad = Sfq1qModel { f_qubit_ghz: 5.0, ..Sfq1qModel::baseline() };
        assert!(bad.rz_error(1.0) > 1e-4);
    }

    #[test]
    fn basis_gate_error_matches_table2_scale() {
        // Table 2: SFQ 1Q error 1.18e-4.
        let m = Sfq1qModel::baseline();
        let e = m.basis_gate_error();
        assert!(e > 1e-6 && e < 5e-4, "basis gate error {e}");
    }

    #[test]
    fn tip_calibration_is_necessary() {
        let m = Sfq1qModel::baseline();
        let seed = m.seed_train(5);
        let uncal = m.ry_pi2_error(&seed, PI / 2.0 / 5.0);
        let (_, cal) = m.calibrate_tip(&seed);
        assert!(cal <= uncal, "calibrated {cal} vs nominal {uncal}");
    }

    #[test]
    fn empty_train_is_identity_not_ry() {
        let m = Sfq1qModel::baseline();
        let e = m.ry_pi2_error(&[], 0.3);
        assert!(e > 0.1);
    }
}
