//! Workload-level error simulator (§4.5): Monte-Carlo Pauli-channel
//! trajectories over the statevector engine, with decoherence injected
//! from the cycle-accurate simulator's gate timings.
//!
//! The paper argues (citing Geller & Zhou) that Pauli channels suffice in
//! the FTQC regime; a trajectory Monte-Carlo over the same channels
//! converges to the same fidelities as Qiskit's density-matrix
//! simulation while scaling to 20+ qubits.

use qisim_cyclesim::{Circuit, OpKind, Timeline};
use qisim_quantum::rng::Rng;
use qisim_quantum::{CMatrix, Statevector};
use std::f64::consts::PI;

/// Physical error rates driving the Pauli channels.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorRates {
    /// Single-qubit (drive) gate error.
    pub one_q: f64,
    /// Two-qubit gate error.
    pub two_q: f64,
    /// Readout assignment error.
    pub readout: f64,
    /// Relaxation time in µs.
    pub t1_us: f64,
    /// Dephasing time in µs.
    pub t2_us: f64,
}

impl ErrorRates {
    /// Table 2's CMOS operating point with the `ibm_mumbai` coherence
    /// times.
    pub fn cmos_table2() -> Self {
        ErrorRates { one_q: 8.17e-7, two_q: 7.8e-4, readout: 1.0e-3, t1_us: 122.0, t2_us: 118.0 }
    }

    /// Table 2's SFQ operating point.
    pub fn sfq_table2() -> Self {
        ErrorRates { one_q: 1.18e-4, two_q: 1.09e-3, readout: 1.48e-2, t1_us: 122.0, t2_us: 118.0 }
    }

    /// Pauli-twirled idle-decoherence probabilities `(p_x, p_y, p_z)` for
    /// an idle window of `t_ns`.
    pub fn idle_paulis(&self, t_ns: f64) -> (f64, f64, f64) {
        let t1 = self.t1_us * 1e3;
        let t2 = self.t2_us * 1e3;
        let p_relax = 1.0 - (-t_ns / t1).exp();
        // Pure-dephasing rate 1/Tφ = 1/T2 − 1/(2T1).
        let inv_tphi = (1.0 / t2 - 0.5 / t1).max(0.0);
        let p_phi = 1.0 - (-t_ns * inv_tphi).exp();
        let px = p_relax / 4.0;
        let py = p_relax / 4.0;
        let pz = (p_phi / 2.0 + p_relax / 4.0).min(0.5);
        (px, py, pz)
    }
}

fn gate_matrix(kind: OpKind) -> Option<CMatrix> {
    Some(match kind {
        OpKind::H => CMatrix::hadamard(),
        OpKind::X => CMatrix::pauli_x(),
        OpKind::Y => CMatrix::pauli_y(),
        OpKind::Z => CMatrix::pauli_z(),
        OpKind::S => CMatrix::rz(PI / 2.0),
        OpKind::Sdg => CMatrix::rz(-PI / 2.0),
        OpKind::T => CMatrix::rz(PI / 4.0),
        OpKind::Tdg => CMatrix::rz(-PI / 4.0),
        OpKind::Rx(t) => CMatrix::rx(t),
        OpKind::Ry(t) => CMatrix::ry(t),
        OpKind::Rz(t) => CMatrix::rz(t),
        OpKind::RyPi2Rz(phi) => &CMatrix::ry(PI / 2.0) * &CMatrix::rz(phi),
        _ => return None,
    })
}

fn apply_ideal(state: &mut Statevector, kind: OpKind, qubit: u32, other: Option<u32>) {
    match kind {
        OpKind::Cz => {
            state.apply_2q(&CMatrix::cz(), qubit as usize, other.expect("cz partner") as usize);
        }
        OpKind::Cx => {
            // CX = (I⊗H)·CZ·(I⊗H) on the target.
            let t = other.expect("cx target") as usize;
            state.apply_1q(&CMatrix::hadamard(), t);
            state.apply_2q(&CMatrix::cz(), qubit as usize, t);
            state.apply_1q(&CMatrix::hadamard(), t);
        }
        OpKind::Measure | OpKind::Barrier => {}
        k => {
            let m = gate_matrix(k).expect("single-qubit kind");
            state.apply_1q(&m, qubit as usize);
        }
    }
}

fn random_pauli<R: Rng>(state: &mut Statevector, qubit: u32, rng: &mut R) {
    let p = ['X', 'Y', 'Z'][rng.gen_below(3) as usize];
    state.apply_pauli(p, qubit as usize);
}

/// Runs the ideal (error-free) circuit and returns the pre-measurement
/// state.
///
/// # Panics
///
/// Panics if the circuit exceeds the statevector engine's qubit capacity.
pub fn ideal_state(circuit: &Circuit) -> Statevector {
    let mut state = Statevector::zero_state(circuit.qubits() as usize);
    for op in circuit.ops() {
        apply_ideal(&mut state, op.kind, op.qubit, op.other);
    }
    state
}

/// Workload-level fidelity estimator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSim {
    /// Physical error rates.
    pub rates: ErrorRates,
    /// Monte-Carlo trajectories.
    pub trajectories: usize,
}

impl WorkloadSim {
    /// A simulator with the given rates and 200 trajectories.
    pub fn new(rates: ErrorRates) -> Self {
        WorkloadSim { rates, trajectories: 200 }
    }

    /// Estimates the workload fidelity: mean squared overlap of noisy
    /// trajectories with the ideal pre-measurement state, multiplied by
    /// the probability that every measurement reads out correctly.
    ///
    /// Decoherence uses the `timeline`'s per-qubit idle gaps (the §4.5
    /// identity-gate injection, at exact gap granularity).
    pub fn fidelity<R: Rng>(&self, circuit: &Circuit, timeline: &Timeline, rng: &mut R) -> f64 {
        let ideal = ideal_state(circuit);
        let nq = circuit.qubits() as usize;
        let mut total = 0.0;
        for _ in 0..self.trajectories {
            let mut state = Statevector::zero_state(nq);
            let mut last_t = vec![0.0f64; nq];
            // Events sorted by start time (stable for equal starts).
            let mut order: Vec<usize> = (0..timeline.events().len()).collect();
            order.sort_by(|&a, &b| {
                timeline.events()[a]
                    .start_ns
                    .partial_cmp(&timeline.events()[b].start_ns)
                    .expect("finite times")
                    .then(a.cmp(&b))
            });
            for &ei in &order {
                let e = timeline.events()[ei];
                // Idle decoherence on the involved qubits since their
                // last activity.
                for q in std::iter::once(e.qubit).chain(e.other) {
                    let gap = e.start_ns - last_t[q as usize];
                    if gap > 0.0 {
                        let (px, py, pz) = self.rates.idle_paulis(gap);
                        let u = rng.gen_f64();
                        if u < px {
                            state.apply_pauli('X', q as usize);
                        } else if u < px + py {
                            state.apply_pauli('Y', q as usize);
                        } else if u < px + py + pz {
                            state.apply_pauli('Z', q as usize);
                        }
                    }
                    last_t[q as usize] = e.end_ns;
                }
                apply_ideal(&mut state, e.kind, e.qubit, e.other);
                // Gate-error Pauli channel.
                match e.kind {
                    OpKind::Measure | OpKind::Barrier => {}
                    k if k.is_two_qubit() => {
                        if rng.gen_f64() < self.rates.two_q {
                            random_pauli(&mut state, e.qubit, rng);
                            if rng.gen_bool() {
                                random_pauli(&mut state, e.other.expect("2q partner"), rng);
                            }
                        }
                    }
                    _ => {
                        if rng.gen_f64() < self.rates.one_q {
                            random_pauli(&mut state, e.qubit, rng);
                        }
                    }
                }
            }
            total += ideal
                .amplitudes()
                .iter()
                .zip(state.amplitudes())
                .map(|(a, b)| a.conj() * *b)
                .fold(qisim_quantum::C64::ZERO, |acc, x| acc + x)
                .norm_sqr();
        }
        let state_fid = total / self.trajectories as f64;
        let ro_success = (1.0 - self.rates.readout).powi(circuit.measure_count() as i32);
        state_fid * ro_success
    }

    /// First-order analytic fidelity estimate: `Π(1−p)` over every gate,
    /// idle window, and measurement — the cheap cross-check the
    /// Monte-Carlo must agree with for small error rates.
    pub fn analytic_fidelity(&self, circuit: &Circuit, timeline: &Timeline) -> f64 {
        let mut log_f = 0.0f64;
        for e in timeline.events() {
            match e.kind {
                OpKind::Measure => log_f += (1.0 - self.rates.readout).ln(),
                OpKind::Barrier => {}
                k if k.is_two_qubit() => log_f += (1.0 - self.rates.two_q).ln(),
                _ => log_f += (1.0 - self.rates.one_q).ln(),
            }
        }
        // Idle decoherence: every qubit decoheres over its idle time.
        for q in 0..circuit.qubits() {
            let idle = timeline.qubit_idle_ns(q);
            let (px, py, pz) = self.rates.idle_paulis(idle);
            log_f += (1.0 - (px + py + pz)).ln();
        }
        log_f.exp()
    }
}

/// Convenience: a deterministic seeded RNG for reproducible experiments.
pub fn seeded_rng(seed: u64) -> impl Rng {
    qisim_quantum::rng::Xorshift64Star::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qisim_cyclesim::{simulate, workloads, TimingModel};

    fn run(circuit: &Circuit, rates: ErrorRates, traj: usize, seed: u64) -> f64 {
        let timeline = simulate(circuit, &TimingModel::cmos_baseline());
        let sim = WorkloadSim { rates, trajectories: traj };
        sim.fidelity(circuit, &timeline, &mut seeded_rng(seed))
    }

    #[test]
    fn zero_error_gives_unit_fidelity() {
        let rates = ErrorRates {
            one_q: 0.0,
            two_q: 0.0,
            readout: 0.0,
            t1_us: f64::INFINITY,
            t2_us: f64::INFINITY,
        };
        let f = run(&workloads::ghz(4), rates, 20, 1);
        assert!((f - 1.0).abs() < 1e-9, "fidelity {f}");
    }

    #[test]
    fn fidelity_decreases_with_error_rate() {
        let base = ErrorRates::cmos_table2();
        let worse = ErrorRates { two_q: 0.05, readout: 0.05, ..base };
        let f_good = run(&workloads::ghz(6), base, 120, 2);
        let f_bad = run(&workloads::ghz(6), worse, 120, 2);
        assert!(f_bad < f_good, "bad {f_bad} vs good {f_good}");
    }

    #[test]
    fn mc_matches_analytic_for_small_errors() {
        let circuit = workloads::qaoa_ring(5, 0.6, 0.3);
        let timeline = simulate(&circuit, &TimingModel::cmos_baseline());
        let sim = WorkloadSim { rates: ErrorRates::cmos_table2(), trajectories: 400 };
        let mc = sim.fidelity(&circuit, &timeline, &mut seeded_rng(7));
        let analytic = sim.analytic_fidelity(&circuit, &timeline);
        assert!(
            (mc - analytic).abs() < 0.05,
            "MC {mc} vs analytic {analytic} (Fig. 11-style 5% agreement)"
        );
    }

    #[test]
    fn decoherence_hits_idle_heavy_circuits_harder() {
        // Identical gate counts, but a slower readout leaves the waiting
        // qubit idle (decohering) far longer — the mechanism behind the
        // Opt-7 logical-error gains.
        use qisim_cyclesim::{Op, OpKind};
        let rates = ErrorRates { one_q: 0.0, two_q: 0.0, readout: 0.0, t1_us: 10.0, t2_us: 10.0 };
        let mut c = Circuit::new(2, 2);
        c.push(Op::one_q(OpKind::H, 0));
        c.push(Op::two_q(OpKind::Cz, 0, 1));
        c.push(Op::measure(0, 0));
        c.push(Op { kind: OpKind::Barrier, qubit: 0, other: None, cbit: None });
        c.push(Op::one_q(OpKind::X, 1));
        c.push(Op::measure(1, 1));
        let fast = simulate(&c, &TimingModel::cmos(8, 300.0));
        let slow = simulate(&c, &TimingModel::cmos(8, 4000.0));
        assert!(slow.qubit_idle_ns(1) > fast.qubit_idle_ns(1));
        let sim = WorkloadSim { rates, trajectories: 400 };
        let f_fast = sim.fidelity(&c, &fast, &mut seeded_rng(3));
        let f_slow = sim.fidelity(&c, &slow, &mut seeded_rng(3));
        assert!(f_slow < f_fast, "slow {f_slow} vs fast {f_fast}");
    }

    #[test]
    fn idle_paulis_grow_with_time_and_saturate() {
        let r = ErrorRates::cmos_table2();
        let (x1, _, z1) = r.idle_paulis(100.0);
        let (x2, _, z2) = r.idle_paulis(10_000.0);
        assert!(x2 > x1);
        assert!(z2 > z1);
        let (x3, y3, z3) = r.idle_paulis(1e12);
        assert!(x3 <= 0.25 + 1e-9 && y3 <= 0.25 + 1e-9 && z3 <= 0.5 + 1e-9);
    }

    #[test]
    fn validation_suite_fidelities_are_physical() {
        for c in workloads::validation_suite() {
            if c.qubits() > 9 {
                continue; // keep the unit test fast
            }
            let f = run(&c, ErrorRates::cmos_table2(), 60, 11);
            assert!((0.0..=1.0 + 1e-9).contains(&f), "{}: fidelity {f}", c.name);
            assert!(f > 0.5, "{}: fidelity {f} implausibly low", c.name);
        }
    }
}
