//! Two-qubit CZ gate error model (§4.4.3).
//!
//! A flux pulse detunes the tunable transmon from its idle point down to
//! the `|11⟩ ↔ |02⟩` resonance (`Δ = −α` of the partner); after one full
//! coherent cycle in that two-state subspace, `|11⟩` returns with a π
//! phase — a CZ up to virtual single-qubit Z's. The model:
//!
//! 1. **calibrates** an ideal ramped pulse (peak detuning fraction × hold
//!    length) by minimizing the Hamiltonian-simulated CZ error — the role
//!    Baidu Quanlse plays in the paper;
//! 2. **quantizes** the amplitude samples to the pulse DAC's precision
//!    and injects thermal noise;
//! 3. reports the resulting CZ error (Table 1/2 anchor ≈ 1e-3), and shows
//!    that the *unit-step* pulse of the unmodified Horse Ridge II /
//!    DigiQ designs "almost cannot realize the CZ gate" (§3.3.2).

use crate::noise;
use qisim_microarch::cryo_cmos::pulse::{ramped_pulse, unit_step_pulse, AmplitudeRun};
use qisim_quantum::fidelity::gate_error;
use qisim_quantum::integrate::propagator;
use qisim_quantum::rng::Rng;
use qisim_quantum::transmon::CoupledTransmons;
use qisim_quantum::{CMatrix, C64};
use std::f64::consts::PI;

/// CZ gate model over a coupled-transmon pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CzModel {
    /// The coupled pair.
    pub pair: CoupledTransmons,
    /// Gate window in ns (Table 2: 50 ns).
    pub gate_ns: f64,
    /// DAC sample rate in Hz.
    pub sample_rate_hz: f64,
    /// Integration steps for the full window.
    pub steps: usize,
}

/// A calibrated flux pulse: peak fraction of the idle→resonance swing
/// plus the run table that realizes it.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibratedPulse {
    /// Peak detuning as a fraction of (idle − resonance).
    pub peak: f64,
    /// The pulse's run table (amplitude in fraction-of-peak units).
    pub runs: Vec<AmplitudeRun>,
    /// Ideal-pulse CZ error achieved by the calibration.
    pub ideal_error: f64,
}

impl CzModel {
    /// The paper's operating point: the standard pair, 50 ns, 2.5 GHz.
    pub fn baseline() -> Self {
        CzModel {
            pair: CoupledTransmons::standard(),
            gate_ns: 50.0,
            sample_rate_hz: 2.5e9,
            steps: 2500,
        }
    }

    /// Total samples in the gate window.
    pub fn samples(&self) -> usize {
        (self.gate_ns * self.sample_rate_hz * 1e-9).round() as usize
    }

    /// Expands a run table into per-sample amplitudes, padded with zeros
    /// to the gate window.
    fn expand(&self, runs: &[AmplitudeRun]) -> Vec<f64> {
        let mut amps = Vec::with_capacity(self.samples());
        for r in runs {
            for _ in 0..r.length {
                amps.push(r.amplitude);
            }
        }
        amps.truncate(self.samples());
        while amps.len() < self.samples() {
            amps.push(0.0);
        }
        amps
    }

    /// Simulates the gate for per-sample amplitudes (`1.0` = the given
    /// peak fraction of the idle→resonance swing) and returns the CZ
    /// error after virtual-Z compensation.
    pub fn cz_error_for(&self, amps: &[f64], peak: f64) -> f64 {
        let pair = self.pair;
        let idle = pair.idle_detuning_ghz();
        let res = pair.cz_resonance_detuning_ghz();
        let n = amps.len().max(1);
        let dt = self.gate_ns / n as f64;
        let u = propagator(
            pair.dim(),
            |t| {
                let k = ((t / dt) as usize).min(n - 1);
                let delta = idle - amps[k] * peak * (idle - res);
                pair.hamiltonian(delta)
            },
            0.0,
            self.gate_ns,
            self.steps,
        );
        // Computational block.
        let idx = [
            pair.basis_index(0, 0),
            pair.basis_index(0, 1),
            pair.basis_index(1, 0),
            pair.basis_index(1, 1),
        ];
        let mut block = CMatrix::zeros(4, 4);
        for (r, &ir) in idx.iter().enumerate() {
            for (c, &ic) in idx.iter().enumerate() {
                block[(r, c)] = u[(ir, ic)];
            }
        }
        // Virtual-Z freedom: compare against the CZ dressed with the
        // measured single-qubit phases.
        let p00 = block[(0, 0)].arg();
        let p01 = block[(1, 1)].arg();
        let p10 = block[(2, 2)].arg();
        let ideal = CMatrix::diag(&[
            C64::cis(p00),
            C64::cis(p01),
            C64::cis(p10),
            C64::cis(p01 + p10 - p00 + PI),
        ]);
        gate_error(&ideal, &block)
    }

    /// Calibrates the ramped pulse: coordinate descent over the peak
    /// fraction and plateau length (the Quanlse stand-in). The cosine
    /// ramp's residual non-adiabatic error floors near 1.2e-3 — right at
    /// the Table 1 anchor (model 1.09e-3, experiment 9.0e-4 ± 7e-4).
    pub fn calibrate(&self) -> CalibratedPulse {
        let ramp_runs = 6u32;
        let ramp_cycles = 6u32;
        let mut best = (f64::INFINITY, 1.0f64, 27u32);
        // Coarse grid.
        for peak in [0.97, 0.98, 0.99, 1.0, 1.01] {
            for plateau in (15..=45).step_by(2) {
                let runs = ramped_pulse(1.0, ramp_runs, ramp_cycles, plateau);
                let e = self.cz_error_for(&self.expand(&runs), peak);
                if e < best.0 {
                    best = (e, peak, plateau);
                }
            }
        }
        // Local refinement with shrinking peak steps.
        for step in [0.002, 0.0004] {
            let mut improved = true;
            while improved {
                improved = false;
                for (dp, dl) in [(step, 0i64), (-step, 0), (0.0, 1), (0.0, -1)] {
                    let peak = best.1 + dp;
                    let plateau = (best.2 as i64 + dl).max(4) as u32;
                    let runs = ramped_pulse(1.0, ramp_runs, ramp_cycles, plateau);
                    let e = self.cz_error_for(&self.expand(&runs), peak);
                    if e < best.0 {
                        best = (e, peak, plateau);
                        improved = true;
                    }
                }
            }
        }
        let runs = ramped_pulse(1.0, ramp_runs, ramp_cycles, best.2);
        CalibratedPulse { peak: best.1, runs, ideal_error: best.0 }
    }

    /// CZ error of a calibrated pulse after amplitude quantization to
    /// `bits` and per-sample thermal noise of relative amplitude
    /// `noise_rel` (pass a seeded RNG for reproducibility).
    pub fn noisy_cz_error<R: Rng>(
        &self,
        cal: &CalibratedPulse,
        bits: u32,
        noise_rel: f64,
        rng: &mut R,
    ) -> f64 {
        assert!((2..=16).contains(&bits), "DAC precision must be 2..=16 bits");
        let levels = (1u32 << bits) as f64 / 2.0 - 1.0;
        let amps: Vec<f64> = self
            .expand(&cal.runs)
            .iter()
            .map(|a| (a * levels).round() / levels + noise::normal(rng, 0.0, noise_rel))
            .collect();
        self.cz_error_for(&amps, cal.peak)
    }

    /// CZ error of the *unit-step* pulse (the unmodified Horse Ridge II /
    /// DigiQ pulse circuit) with the best-case step length.
    pub fn unit_step_error(&self) -> f64 {
        let mut best = f64::INFINITY;
        for cycles in (30..=90).step_by(5) {
            let runs = unit_step_pulse(1.0, cycles);
            for peak in [0.96, 1.0, 1.04] {
                best = best.min(self.cz_error_for(&self.expand(&runs), peak));
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qisim_quantum::rng::Xorshift64Star;

    #[test]
    fn calibrated_pulse_reaches_low_error() {
        let m = CzModel::baseline();
        let cal = m.calibrate();
        assert!(cal.ideal_error < 2e-3, "ideal CZ error {}", cal.ideal_error);
        assert!(cal.peak > 0.9 && cal.peak < 1.1, "peak {}", cal.peak);
    }

    #[test]
    fn quantization_and_noise_land_on_the_1e3_anchor() {
        // Table 1: model CZ error 1.09e-3 (reference 9.0e-4 ± 7e-4).
        let m = CzModel::baseline();
        let cal = m.calibrate();
        let mut rng = Xorshift64Star::seed_from_u64(11);
        let noisy: f64 =
            (0..4).map(|_| m.noisy_cz_error(&cal, 10, 0.004, &mut rng)).sum::<f64>() / 4.0;
        assert!(noisy > 0.8 * cal.ideal_error, "noise should not improve the gate: {noisy}");
        assert!(noisy > 2e-4 && noisy < 1e-2, "noisy CZ error {noisy}");
    }

    #[test]
    fn unit_step_pulse_fails_badly() {
        // §3.3.2: "the unit-step voltage almost cannot realize the CZ".
        // Our virtual-Z-compensated metric is more forgiving than the
        // paper's raw comparison, but the step pulse is still several
        // times worse than the calibrated ramp even at its best length.
        let m = CzModel::baseline();
        let cal = m.calibrate();
        let step = m.unit_step_error();
        assert!(step > 3.0 * cal.ideal_error, "step {} vs ramped {}", step, cal.ideal_error);
        assert!(step > 4e-3, "unit-step error {step}");
    }

    #[test]
    fn detuned_pulse_is_worse() {
        let m = CzModel::baseline();
        let cal = m.calibrate();
        let amps = m.expand(&cal.runs);
        let off = m.cz_error_for(&amps, cal.peak * 0.90);
        assert!(off > 3.0 * cal.ideal_error.max(1e-6), "off-resonance error {off}");
    }

    #[test]
    fn idle_pulse_is_not_a_cz() {
        let m = CzModel::baseline();
        let zeros = vec![0.0; m.samples()];
        let e = m.cz_error_for(&zeros, 1.0);
        assert!(e > 0.1, "identity mistaken for CZ: {e}");
    }
}
