//! # qisim-error
//!
//! Gate and readout error-rate models for the QIsim scalability framework
//! (reproduction of Min et al., *QIsim*, ISCA 2023 — Sections 4.4–4.5).
//!
//! Every model follows the paper's Fig. 7 pipeline: generate the *digital*
//! waveform the microarchitecture would emit, corrupt it with the
//! hardware's quantization and noise, drive a Hamiltonian simulation from
//! `qisim-quantum`, and report the gate/readout error:
//!
//! * [`cmos_1q`] — I/Q-sample single-qubit gates with DRAG, bit-precision
//!   and SNR knobs (+ Bloch–Redfield decoherence for validation);
//! * [`sfq_1q`] — SFQ pulse-train `Ry(π/2)·Rz(φ)` gates with the
//!   bitstream-optimization loop;
//! * [`cz`] — flux-pulsed CZ with a Quanlse-style calibrator, showing why
//!   the unit-step pulse circuits had to be redesigned;
//! * [`readout_cmos`] — dispersive readout Monte-Carlo over the three RX
//!   decision units plus the Opt-7 multi-round scheme;
//! * [`readout_sfq`] — the four-step JPM readout with Opt-3/Opt-8
//!   schedules;
//! * [`workload`] — Pauli-channel Monte-Carlo workload fidelity driven by
//!   cycle-accurate gate timings.
//!
//! # Examples
//!
//! Why the paper's 4 K CMOS drive adds a virtual-Rz datapath: tracking Z
//! rotations in the NCO's phase register is essentially free *and*
//! essentially exact, so only X/Y rotations pay the waveform error:
//!
//! ```
//! use qisim_error::Cmos1qModel;
//!
//! let drive = Cmos1qModel::baseline();
//! // A frame-tracked Rz(π/3) is exact to the 24-bit phase step...
//! assert!(drive.virtual_rz_error(std::f64::consts::FRAC_PI_3) < 1e-13);
//! // ...which is far below any physical-gate error budget in Table 2.
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cmos_1q;
pub mod cz;
pub mod noise;
pub mod readout_cmos;
pub mod readout_sfq;
pub mod sfq_1q;
pub mod workload;

pub use cmos_1q::Cmos1qModel;
pub use cz::CzModel;
pub use readout_cmos::{CmosReadoutModel, MultiRound};
pub use readout_sfq::SfqReadoutModel;
pub use sfq_1q::Sfq1qModel;
pub use workload::{ErrorRates, WorkloadSim};
