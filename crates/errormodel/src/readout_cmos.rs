//! CMOS dispersive-readout error model (§4.4.4) and the Opt-7 fast
//! multi-round readout (Fig. 19).
//!
//! Per shot: the qubit-state-dependent resonator trajectory (ring-up to
//! the pulled steady state) is sampled by the RX chain; every I/Q sample
//! carries the aggregate TWPA/HEMT/digital noise as a Gaussian; a qubit
//! in `|1⟩` may relax mid-readout (T1), snapping its trajectory to the
//! ground pointer. The decision units of
//! [`qisim_microarch::cryo_cmos::rx`] then classify the stream.

use crate::noise;
use qisim_microarch::cryo_cmos::rx::{
    bin_counting, memoryless, single_point, DecisionKind, DiscriminatingLine,
};
use qisim_quantum::resonator::DispersiveResonator;
use qisim_quantum::rng::Rng;

/// CMOS readout operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CmosReadoutModel {
    /// The dispersive resonator.
    pub resonator: DispersiveResonator,
    /// Sample period of the decimated RX stream in ns.
    pub sample_ns: f64,
    /// Resonator ring-up before samples become useful, in ns.
    pub ring_up_ns: f64,
    /// Total readout window in ns (Table 2: 517).
    pub total_ns: f64,
    /// Per-sample noise std in units of the pointer separation
    /// (aggregates TWPA, HEMT, and digital/analog noise).
    pub noise_rel: f64,
    /// Qubit relaxation time in µs (`f64::INFINITY` disables decay).
    pub t1_us: f64,
}

impl CmosReadoutModel {
    /// The paper's baseline: 517 ns window, 117 ns ring-up, 1 ns samples,
    /// noise calibrated so the readout error lands near the 1e-3 anchor
    /// (Table 2) with the `ibm_mumbai` T1 of 122 µs.
    pub fn baseline() -> Self {
        CmosReadoutModel {
            resonator: DispersiveResonator::standard(),
            sample_ns: 1.0,
            ring_up_ns: 117.0,
            total_ns: 517.0,
            noise_rel: 1.0,
            t1_us: 122.0,
        }
    }

    /// Pointer-state centers `(α₀, α₁)` as (I, Q) pairs.
    pub fn pointers(&self) -> ((f64, f64), (f64, f64)) {
        let eps = self.resonator.steady_drive_rad();
        let a0 = self.resonator.steady_state(false, eps);
        let a1 = self.resonator.steady_state(true, eps);
        ((a0.re, a0.im), (a1.re, a1.im))
    }

    /// The optimal discriminating line for this operating point.
    pub fn line(&self) -> DiscriminatingLine {
        let (p0, p1) = self.pointers();
        DiscriminatingLine::between(p0, p1)
    }

    /// Generates one shot's I/Q sample stream for initial state `excited`,
    /// over `window_ns` of post-ring-up integration.
    ///
    /// # Panics
    ///
    /// Panics if `window_ns` is not positive.
    pub fn shot<R: Rng>(&self, excited: bool, window_ns: f64, rng: &mut R) -> Vec<(f64, f64)> {
        assert!(window_ns > 0.0, "integration window must be positive");
        let (p0, p1) = self.pointers();
        let sep = ((p1.0 - p0.0).powi(2) + (p1.1 - p0.1).powi(2)).sqrt();
        let sigma = self.noise_rel * sep;
        // T1 flip time (ns), measured from the start of integration.
        let flip_ns = if excited && self.t1_us.is_finite() {
            let u = rng.gen_open01();
            -u.ln() * self.t1_us * 1e3
        } else {
            f64::INFINITY
        };
        let n = (window_ns / self.sample_ns).floor() as usize;
        (0..n)
            .map(|k| {
                let t = k as f64 * self.sample_ns;
                let p = if excited && t < flip_ns { p1 } else { p0 };
                (p.0 + noise::normal(rng, 0.0, sigma), p.1 + noise::normal(rng, 0.0, sigma))
            })
            .collect()
    }

    /// Monte-Carlo readout error of a single-shot decision method over
    /// `shots` prepared alternately in `|0⟩`/`|1⟩`.
    pub fn error_rate<R: Rng>(&self, method: DecisionKind, shots: usize, rng: &mut R) -> f64 {
        let line = self.line();
        let (p0, p1) = self.pointers();
        let sep = ((p1.0 - p0.0).powi(2) + (p1.1 - p0.1).powi(2)).sqrt();
        let full_scale = sep * 4.0;
        let window = self.total_ns - self.ring_up_ns;
        let mut wrong = 0usize;
        for s in 0..shots {
            let excited = s % 2 == 1;
            let samples = self.shot(excited, window, rng);
            let decision = match method {
                DecisionKind::BinCounting => bin_counting(&samples, &line, full_scale),
                DecisionKind::Memoryless => memoryless(&samples, &line, full_scale),
                DecisionKind::SinglePoint => single_point(&samples, &line),
            };
            if decision.excited != excited {
                wrong += 1;
            }
        }
        wrong as f64 / shots as f64
    }
}

/// The Opt-7 multi-round readout (Fig. 19a): after ring-up, integrate
/// 50 ns rounds; if the accumulated sample-count difference leaves the
/// `±range` ambiguity band, decide immediately, otherwise take another
/// round (up to the baseline window).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiRound {
    /// Round length in ns.
    pub round_ns: f64,
    /// Ambiguity half-width on the accumulated count difference.
    pub range: f64,
    /// Maximum rounds before forcing a decision.
    pub max_rounds: usize,
}

impl MultiRound {
    /// The paper's scheme: 50 ns rounds within the 517 ns budget.
    pub fn standard() -> Self {
        MultiRound { round_ns: 50.0, range: 45.0, max_rounds: 8 }
    }

    /// Runs one multi-round shot; returns `(decision, latency_ns)` where
    /// latency includes the ring-up.
    pub fn shot<R: Rng>(
        &self,
        model: &CmosReadoutModel,
        excited: bool,
        rng: &mut R,
    ) -> (bool, f64) {
        let line = model.line();
        let (p0, p1) = model.pointers();
        let sep = ((p1.0 - p0.0).powi(2) + (p1.1 - p0.1).powi(2)).sqrt();
        let full_scale = sep * 4.0;
        let mut diff = 0.0;
        for round in 1..=self.max_rounds {
            let samples = model.shot(excited, self.round_ns, rng);
            diff += memoryless(&samples, &line, full_scale).confidence;
            if diff.abs() > self.range || round == self.max_rounds {
                return (diff > 0.0, model.ring_up_ns + round as f64 * self.round_ns);
            }
        }
        unreachable!("loop always returns by max_rounds");
    }

    /// Monte-Carlo error rate and mean latency over `shots`.
    pub fn error_and_latency<R: Rng>(
        &self,
        model: &CmosReadoutModel,
        shots: usize,
        rng: &mut R,
    ) -> (f64, f64) {
        let mut wrong = 0usize;
        let mut latency = 0.0;
        for s in 0..shots {
            let excited = s % 2 == 1;
            let (dec, lat) = self.shot(model, excited, rng);
            if dec != excited {
                wrong += 1;
            }
            latency += lat;
        }
        (wrong as f64 / shots as f64, latency / shots as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qisim_quantum::rng::Xorshift64Star;

    #[test]
    fn baseline_error_is_1e3_scale() {
        // Table 2: CMOS readout error 1.0e-3 (T1-limited at 122 µs).
        let m = CmosReadoutModel::baseline();
        let mut rng = Xorshift64Star::seed_from_u64(3);
        let e = m.error_rate(DecisionKind::Memoryless, 4000, &mut rng);
        assert!(e > 1e-4 && e < 6e-3, "baseline readout error {e}");
    }

    #[test]
    fn no_decay_no_noise_is_error_free() {
        let m = CmosReadoutModel {
            t1_us: f64::INFINITY,
            noise_rel: 0.02,
            ..CmosReadoutModel::baseline()
        };
        let mut rng = Xorshift64Star::seed_from_u64(5);
        let e = m.error_rate(DecisionKind::SinglePoint, 400, &mut rng);
        assert_eq!(e, 0.0);
    }

    #[test]
    fn methods_agree_within_mc_noise() {
        let m = CmosReadoutModel::baseline();
        let mut rng = Xorshift64Star::seed_from_u64(9);
        let bin = m.error_rate(DecisionKind::BinCounting, 1500, &mut rng);
        let mem = m.error_rate(DecisionKind::Memoryless, 1500, &mut rng);
        let sp = m.error_rate(DecisionKind::SinglePoint, 1500, &mut rng);
        for e in [bin, mem, sp] {
            assert!(e < 2e-2, "method error {e}");
        }
    }

    #[test]
    fn multi_round_is_about_40pct_faster_with_same_error() {
        // Fig. 19b: 40.9 % faster readout at equal error.
        let m = CmosReadoutModel::baseline();
        let mr = MultiRound::standard();
        let mut rng = Xorshift64Star::seed_from_u64(17);
        let (err, lat) = mr.error_and_latency(&m, 3000, &mut rng);
        let base_err = m.error_rate(DecisionKind::Memoryless, 3000, &mut rng);
        assert!(lat < 0.75 * m.total_ns, "mean latency {lat}");
        assert!(lat > m.ring_up_ns + mr.round_ns, "latency {lat} implausibly low");
        assert!(err < base_err + 4e-3, "multi-round {err} vs baseline {base_err}");
    }

    #[test]
    fn most_shots_decide_within_267ns() {
        // §6.4.1: "98.6 % accuracy within 267 ns".
        let m = CmosReadoutModel::baseline();
        let mr = MultiRound::standard();
        let mut rng = Xorshift64Star::seed_from_u64(23);
        let mut within = 0;
        let shots = 1500;
        for s in 0..shots {
            let (_, lat) = mr.shot(&m, s % 2 == 1, &mut rng);
            if lat <= 267.0 {
                within += 1;
            }
        }
        let frac = within as f64 / shots as f64;
        assert!(frac > 0.5, "fraction decided by 267 ns: {frac}");
    }

    #[test]
    fn shorter_t1_raises_error() {
        let long = CmosReadoutModel::baseline();
        let short = CmosReadoutModel { t1_us: 10.0, ..long };
        let mut rng = Xorshift64Star::seed_from_u64(31);
        let e_long = long.error_rate(DecisionKind::Memoryless, 2000, &mut rng);
        let e_short = short.error_rate(DecisionKind::Memoryless, 2000, &mut rng);
        assert!(e_short > e_long, "T1 10us {e_short} vs 122us {e_long}");
    }

    #[test]
    fn pointer_states_are_separated() {
        let m = CmosReadoutModel::baseline();
        let (p0, p1) = m.pointers();
        let sep = ((p1.0 - p0.0).powi(2) + (p1.1 - p0.1).powi(2)).sqrt();
        assert!(sep > 1.0, "pointer separation {sep}");
    }
}
