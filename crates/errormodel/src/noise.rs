//! Small noise-sampling helpers shared by the error models.

use qisim_quantum::rng::Rng;

/// Samples a standard-normal variate via the Box–Muller transform (keeps
/// the workspace free of external distribution crates).
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1 = rng.gen_open01(); // (0, 1]: safe to ln()
    let u2 = rng.gen_f64();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Samples `N(mu, sigma²)`.
///
/// # Panics
///
/// Panics if `sigma` is negative.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    assert!(sigma >= 0.0, "sigma must be non-negative");
    mu + sigma * standard_normal(rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qisim_quantum::rng::Xorshift64Star;

    #[test]
    fn moments_are_right() {
        let mut rng = Xorshift64Star::seed_from_u64(42);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 1.5, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 1.5).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    #[should_panic(expected = "sigma must be non-negative")]
    fn negative_sigma_panics() {
        let mut rng = Xorshift64Star::seed_from_u64(0);
        let _ = normal(&mut rng, 0.0, -1.0);
    }
}
