//! CMOS single-qubit gate error model (§4.4.1).
//!
//! The pipeline mirrors Fig. 7 ①–②: generate the digital I/Q samples the
//! drive circuit would emit at a given bit precision, corrupt them with
//! the analog chain's Gaussian noise (SNR), drive a three-level transmon
//! Hamiltonian with the noisy waveform, and compare the resulting unitary
//! against the ideal gate. A Bloch–Redfield-style decoherence add-on
//! reproduces the decoherence-included errors IBMQ machines report
//! (Table 1 validation).

use crate::noise;
use qisim_microarch::cryo_cmos::drive::iq_samples;
use qisim_quantum::fidelity::gate_error_leaky;
use qisim_quantum::integrate::propagator;
use qisim_quantum::rng::Rng;
use qisim_quantum::transmon::Transmon;
use qisim_quantum::CMatrix;
use std::f64::consts::PI;

/// Gate error of a multi-level propagator against an ideal 2×2 gate with
/// the *virtual-Z calibration freedom*: real controllers absorb the
/// deterministic drive-induced Stark phase into the NCO's frame (`Rz`
/// pre/post rotations are free), so the reported error minimizes over
/// both frame phases. Coarse 24×24 grid plus one local refinement.
pub fn virtual_z_compensated_error(ideal_2x2: &CMatrix, actual_multilevel: &CMatrix) -> f64 {
    let eval = |pre: f64, post: f64| -> f64 {
        let dressed = &(&CMatrix::rz(post) * ideal_2x2) * &CMatrix::rz(pre);
        gate_error_leaky(&dressed, actual_multilevel)
    };
    let mut best = (f64::INFINITY, 0.0, 0.0);
    let n = 24;
    for i in 0..n {
        for j in 0..n {
            let pre = i as f64 / n as f64 * 2.0 * PI;
            let post = j as f64 / n as f64 * 2.0 * PI;
            let e = eval(pre, post);
            if e < best.0 {
                best = (e, pre, post);
            }
        }
    }
    // Local refinement: shrink a square around the best grid point.
    let mut step = 2.0 * PI / n as f64;
    let (mut e0, mut pre, mut post) = best;
    for _ in 0..24 {
        let mut moved = false;
        for (dp, dq) in [(step, 0.0), (-step, 0.0), (0.0, step), (0.0, -step)] {
            let e = eval(pre + dp, post + dq);
            if e < e0 {
                e0 = e;
                pre += dp;
                post += dq;
                moved = true;
            }
        }
        if !moved {
            step /= 2.0;
        }
    }
    e0
}

/// Which single-qubit rotation the drive plays.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Axis {
    /// Rotation about x.
    X,
    /// Rotation about y.
    Y,
}

/// CMOS single-qubit gate error model.
///
/// # Examples
///
/// ```
/// use qisim_error::cmos_1q::{Axis, Cmos1qModel};
///
/// let model = Cmos1qModel::baseline();
/// let err = model.coherent_gate_error::<qisim_quantum::rng::Xorshift64Star>(
///     Axis::X,
///     std::f64::consts::PI,
///     14,
///     None,
/// );
/// assert!(err < 1e-4); // high-precision DRAG pulse
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cmos1qModel {
    /// The driven transmon.
    pub transmon: Transmon,
    /// Gate duration in ns (Table 2: 25 ns).
    pub gate_ns: f64,
    /// DAC sample rate in Hz (2.5 GHz).
    pub sample_rate_hz: f64,
    /// Analog-chain signal-to-noise ratio in dB (Van Dijk et al. report
    /// ≈48 dB for the full chain).
    pub snr_db: f64,
    /// DRAG coefficient multiplying the derivative quadrature (`−1/α`
    /// scaling is folded in; 1.0 = standard first-order DRAG).
    pub drag: f64,
    /// DRAG detuning-correction coefficient: the drive is detuned by
    /// `drag_detune·Ω²/(2α)` to cancel the drive-induced Stark tilt of
    /// the rotation axis (1.0 = standard first-order value).
    pub drag_detune: f64,
    /// Integration steps per sample.
    pub steps_per_sample: usize,
}

impl Cmos1qModel {
    /// The paper's baseline operating point.
    pub fn baseline() -> Self {
        Cmos1qModel {
            transmon: Transmon::standard(),
            gate_ns: 25.0,
            sample_rate_hz: 2.5e9,
            snr_db: 48.0,
            drag: 1.0,
            drag_detune: 1.0,
            steps_per_sample: 40,
        }
    }

    /// Number of DAC samples in one gate.
    pub fn samples(&self) -> usize {
        (self.gate_ns * self.sample_rate_hz * 1e-9).round() as usize
    }

    /// The noiseless continuous envelope (I, Q) at sample `n`, in rad/ns
    /// of Rabi rate: Hann-shaped main quadrature with peak `2θ/T · …`
    /// (area = θ) plus the DRAG derivative on the other quadrature.
    fn ideal_envelope(&self, theta: f64) -> Vec<(f64, f64)> {
        let n = self.samples();
        let t_total = self.gate_ns;
        // Hann pulse Ω(t) = A·½(1−cos 2πt/T); ∫Ω = A·T/2 = θ → A = 2θ/T.
        let a = 2.0 * theta / t_total;
        let alpha_rad = 2.0 * PI * self.transmon.anharmonicity_ghz;
        (0..n)
            .map(|k| {
                let t = (k as f64 + 0.5) / n as f64 * t_total;
                let x = 2.0 * PI * t / t_total;
                let omega = a * 0.5 * (1.0 - x.cos());
                let domega = a * 0.5 * (2.0 * PI / t_total) * x.sin();
                // First-order DRAG: Q = −Ω̇/α.
                (omega, -self.drag * domega / alpha_rad)
            })
            .collect()
    }

    /// Quantizes an envelope to `bits` and optionally adds Gaussian noise
    /// at the configured SNR, returning per-sample (I, Q) Rabi rates.
    fn digital_waveform<R: Rng>(
        &self,
        theta: f64,
        bits: u32,
        mut rng: Option<&mut R>,
    ) -> Vec<(f64, f64)> {
        let env = self.ideal_envelope(theta);
        let peak = env.iter().map(|(i, q)| i.abs().max(q.abs())).fold(0.0f64, f64::max).max(1e-12);
        // Reuse the drive circuit's quantizer: amplitudes normalized to
        // the DAC full scale, zero gate phase (axis handled below).
        let pairs: Vec<(f64, f64)> = env.iter().map(|&(i, _)| (i / peak, 0.0)).collect();
        let qi = iq_samples(&pairs, 0.0, 0.0, bits.clamp(2, 16));
        let pairs_q: Vec<(f64, f64)> = env.iter().map(|&(_, q)| (q.abs() / peak, 0.0)).collect();
        let qq = iq_samples(&pairs_q, 0.0, 0.0, bits.clamp(2, 16));

        let sigma = peak * 10f64.powf(-self.snr_db / 20.0);
        env.iter()
            .enumerate()
            .map(|(k, &(_, q_raw))| {
                let mut i = qi[k].0 * peak;
                let mut q = qq[k].0 * peak * q_raw.signum();
                if let Some(r) = rng.as_deref_mut() {
                    i += noise::normal(r, 0.0, sigma);
                    q += noise::normal(r, 0.0, sigma);
                }
                (i, q)
            })
            .collect()
    }

    /// Propagates a waveform and reports the virtual-Z-compensated error.
    fn error_of_waveform(&self, axis: Axis, theta: f64, wave: &[(f64, f64)]) -> f64 {
        let n = wave.len();
        let dt = self.gate_ns / n as f64;
        let q = self.transmon;
        let alpha_rad = 2.0 * PI * q.anharmonicity_ghz;
        let u = propagator(
            q.levels,
            |t| {
                let k = ((t / dt) as usize).min(n - 1);
                let (i, qq) = wave[k];
                let detune_ghz = self.drag_detune * (i * i) / (2.0 * alpha_rad) / (2.0 * PI);
                match axis {
                    Axis::X => q.driven_hamiltonian(detune_ghz, i, qq),
                    Axis::Y => q.driven_hamiltonian(detune_ghz, -qq, i),
                }
            },
            0.0,
            self.gate_ns,
            n * self.steps_per_sample,
        );
        let ideal = match axis {
            Axis::X => CMatrix::rx(theta),
            Axis::Y => CMatrix::ry(theta),
        };
        virtual_z_compensated_error(&ideal, &u)
    }

    /// Rabi amplitude calibration: the scale factor on the nominal
    /// envelope that minimizes the gate error (the third level's
    /// repulsion renormalizes the effective Rabi rate, so the naive
    /// `area = θ` pulse under-rotates — every real controller sweeps the
    /// amplitude to fix this).
    pub fn calibrate_amplitude(&self, axis: Axis, theta: f64) -> f64 {
        let eval = |scale: f64| -> f64 {
            let wave: Vec<(f64, f64)> =
                self.ideal_envelope(theta).iter().map(|&(i, q)| (i * scale, q * scale)).collect();
            self.error_of_waveform(axis, theta, &wave)
        };
        let phi = (5.0f64.sqrt() - 1.0) / 2.0;
        let (mut a, mut b) = (0.98, 1.02);
        for _ in 0..40 {
            let c = b - phi * (b - a);
            let d = a + phi * (b - a);
            if eval(c) < eval(d) {
                b = d;
            } else {
                a = c;
            }
        }
        0.5 * (a + b)
    }

    /// Coherent (decoherence-free) gate error of `Rx/Ry(theta)` at the
    /// given DAC precision, after amplitude calibration. Pass a `rng` to
    /// include analog SNR noise; `None` gives the pure quantization +
    /// leakage error.
    ///
    /// # Panics
    ///
    /// Panics if `theta` is not finite or zero.
    pub fn coherent_gate_error<R: Rng>(
        &self,
        axis: Axis,
        theta: f64,
        bits: u32,
        rng: Option<&mut R>,
    ) -> f64 {
        assert!(theta.is_finite() && theta != 0.0, "rotation angle must be finite and nonzero");
        let scale = self.calibrate_amplitude(axis, theta);
        let wave = self.digital_waveform(theta * scale, bits, rng);
        self.error_of_waveform(axis, theta, &wave)
    }

    /// Adds the Bloch–Redfield decoherence contribution for the given
    /// relaxation/dephasing times (in µs): the standard incoherent error
    /// of a gate of length `t` is `(t/3)(1/T1 + 1/T2)` on average over
    /// input states (Krantz et al. §2).
    ///
    /// # Panics
    ///
    /// Panics if either time is not positive.
    pub fn with_decoherence(&self, coherent_error: f64, t1_us: f64, t2_us: f64) -> f64 {
        assert!(t1_us > 0.0 && t2_us > 0.0, "coherence times must be positive");
        let t = self.gate_ns;
        coherent_error + t / 3.0 * (1.0 / (t1_us * 1e3) + 1.0 / (t2_us * 1e3))
    }

    /// Virtual-Rz error at the NCO's phase resolution: a frame-tracking
    /// update with a `2π/2^24` step is exact to below 1e-14 — the reason
    /// the paper adds the virtual-Rz datapath.
    pub fn virtual_rz_error(&self, phi: f64) -> f64 {
        let step = 2.0 * PI / (1u64 << 24) as f64;
        let residual = (phi / step - (phi / step).round()) * step;
        (residual / 2.0).sin().powi(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qisim_quantum::rng::Xorshift64Star;

    #[test]
    fn high_precision_pi_pulse_is_sub_1em4() {
        let m = Cmos1qModel::baseline();
        let e = m.coherent_gate_error::<Xorshift64Star>(Axis::X, PI, 14, None);
        assert!(e < 2e-5, "14-bit DRAG pi-pulse error {e}");
    }

    #[test]
    fn drag_suppresses_leakage() {
        let with = Cmos1qModel::baseline();
        let without = Cmos1qModel { drag: 0.0, drag_detune: 0.0, ..with };
        let e_with = with.coherent_gate_error::<Xorshift64Star>(Axis::X, PI, 14, None);
        let e_without = without.coherent_gate_error::<Xorshift64Star>(Axis::X, PI, 14, None);
        assert!(e_with < 0.5 * e_without, "DRAG {e_with} vs no-DRAG {e_without}");
    }

    #[test]
    fn error_saturates_with_bit_precision() {
        // Fig. 14b: the gate error saturates around 9 bits.
        let m = Cmos1qModel::baseline();
        let errs: Vec<f64> = [4u32, 6, 9, 14]
            .iter()
            .map(|&b| m.coherent_gate_error::<Xorshift64Star>(Axis::X, PI, b, None))
            .collect();
        assert!(errs[0] > errs[1], "4-bit {} should exceed 6-bit {}", errs[0], errs[1]);
        assert!(errs[1] > errs[2] * 0.9, "6-bit {} vs 9-bit {}", errs[1], errs[2]);
        // 9 → 14 bits changes little (saturated).
        assert!(errs[2] < 2.0 * errs[3] + 1e-6, "9-bit {} vs 14-bit {}", errs[2], errs[3]);
    }

    #[test]
    fn snr_noise_raises_error() {
        let m = Cmos1qModel { snr_db: 25.0, ..Cmos1qModel::baseline() };
        let mut rng = Xorshift64Star::seed_from_u64(7);
        let noisy: f64 =
            (0..12).map(|_| m.coherent_gate_error(Axis::X, PI, 14, Some(&mut rng))).sum::<f64>()
                / 12.0;
        let clean = m.coherent_gate_error::<Xorshift64Star>(Axis::X, PI, 14, None);
        assert!(noisy > clean, "noisy {noisy} vs clean {clean}");
    }

    #[test]
    fn y_axis_matches_x_axis_error_scale() {
        let m = Cmos1qModel::baseline();
        let ex = m.coherent_gate_error::<Xorshift64Star>(Axis::X, PI / 2.0, 14, None);
        let ey = m.coherent_gate_error::<Xorshift64Star>(Axis::Y, PI / 2.0, 14, None);
        assert!((ex - ey).abs() < 5.0 * ex.max(ey).max(1e-9), "x {ex} vs y {ey}");
    }

    #[test]
    fn decoherence_addon_matches_ibm_scale() {
        // Table 1: ibm_peekskill Q21 reports 6.59e-5; the model with
        // T1 = T2 = 280 µs lands within the validation tolerance.
        let m = Cmos1qModel::baseline();
        let coh = m.coherent_gate_error::<Xorshift64Star>(Axis::X, PI, 14, None);
        let total = m.with_decoherence(coh, 280.0, 280.0);
        assert!(total > 4.0e-5 && total < 9.0e-5, "decoherence-included error {total}");
    }

    #[test]
    fn virtual_rz_is_essentially_exact() {
        let m = Cmos1qModel::baseline();
        for phi in [0.1, PI / 4.0, 1.2345, -2.5] {
            assert!(m.virtual_rz_error(phi) < 1e-13);
        }
    }

    #[test]
    #[should_panic(expected = "finite and nonzero")]
    fn zero_angle_panics() {
        let m = Cmos1qModel::baseline();
        let _ = m.coherent_gate_error::<Xorshift64Star>(Axis::X, 0.0, 14, None);
    }
}
