//! Property-based tests of the error models' invariants.
//!
//! Requires the `proptest` crate, which the offline reference build
//! cannot fetch; enable with `cargo test --features proptest` on a
//! machine with registry access (and add the dev-dependency back).

#![cfg(feature = "proptest")]

use proptest::prelude::*;
use qisim_error::readout_sfq::{ljj_failure, SfqReadoutModel};
use qisim_error::sfq_1q::Sfq1qModel;
use qisim_error::workload::ErrorRates;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Idle Pauli probabilities are a sub-distribution, monotone in time,
    /// and vanish at t = 0.
    #[test]
    fn idle_paulis_are_a_subdistribution(
        t1 in 1.0f64..1000.0,
        t2_frac in 0.1f64..2.0,
        t in 0.0f64..1e6,
    ) {
        let rates = ErrorRates {
            one_q: 0.0,
            two_q: 0.0,
            readout: 0.0,
            t1_us: t1,
            t2_us: t1 * t2_frac,
        };
        let (px, py, pz) = rates.idle_paulis(t);
        prop_assert!(px >= 0.0 && py >= 0.0 && pz >= 0.0);
        prop_assert!(px + py + pz <= 1.0 + 1e-12, "total {}", px + py + pz);
        let (x0, y0, z0) = rates.idle_paulis(0.0);
        prop_assert!(x0.abs() < 1e-15 && y0.abs() < 1e-15 && z0.abs() < 1e-15);
        let (x2, y2, z2) = rates.idle_paulis(t + 100.0);
        prop_assert!(x2 >= px && y2 >= py && z2 >= pz);
    }

    /// The LJJ comparator failure rate is a probability, monotone in the
    /// jitter and anti-monotone in the designed delay.
    #[test]
    fn ljj_failure_is_well_behaved(delay in 0.1f64..50.0, jitter in 0.1f64..20.0) {
        let p = ljj_failure(delay, jitter);
        prop_assert!((0.0..=0.5).contains(&p), "failure {p}");
        prop_assert!(ljj_failure(delay * 2.0, jitter) <= p + 1e-15);
        prop_assert!(ljj_failure(delay, jitter * 2.0) >= p - 1e-15);
    }

    /// SFQ Rz-table error is bounded by the worst quantization gap and is
    /// zero at realizable angles.
    #[test]
    fn rz_error_bounds(phi in 0.0f64..6.28) {
        let m = Sfq1qModel::baseline();
        let e = m.rz_error(phi);
        prop_assert!((0.0..=1.0).contains(&e));
        prop_assert!(e < 2e-4, "table density violated at {phi}: {e}");
        // A realized angle has zero error.
        let realized = m.phase_per_cycle() * 17.0 % std::f64::consts::TAU;
        prop_assert!(m.rz_error(realized) < 1e-20);
    }

    /// Any pulse train's Ry error is a valid infidelity, and doubling the
    /// tip of an aligned train moves the result (sanity of the unitary
    /// composition).
    #[test]
    fn train_error_is_bounded(
        slots in proptest::collection::btree_set(0usize..21, 1..8),
        tip in 0.01f64..1.5,
    ) {
        let m = Sfq1qModel::baseline();
        let pulses: Vec<usize> = slots.into_iter().collect();
        let e = m.ry_pi2_error(&pulses, tip);
        prop_assert!((0.0..=1.0).contains(&e), "error {e}");
        let u = m.train_unitary(&pulses, tip);
        prop_assert!(u.is_unitary(1e-9));
    }

    /// SFQ readout errors decompose consistently for any boost and target
    /// photon number.
    #[test]
    fn sfq_readout_error_decomposition(boost in 1.0f64..4.0, n_target in 2.0f64..40.0) {
        let m = SfqReadoutModel { boost, n_target, ..SfqReadoutModel::baseline() };
        let e = m.errors();
        prop_assert!((e.total() - e.assignment() - e.reset).abs() < 1e-15);
        prop_assert!(e.driving_tunneling >= 0.0 && e.driving_tunneling <= 1.0);
        // Driving time scales exactly inversely with the boost.
        prop_assert!((m.driving_ns() * boost - 578.2).abs() < 1e-9);
    }

    /// More photons at fixed suppression never increase the miss
    /// probability side of the assignment error beyond the dark floor.
    #[test]
    fn more_photons_help_until_dark_counts(n in 2.0f64..30.0) {
        let low = SfqReadoutModel { n_target: n, ..SfqReadoutModel::baseline() };
        let high = SfqReadoutModel { n_target: n * 1.5, ..SfqReadoutModel::baseline() };
        // Not strictly monotone once false clicks dominate, but within
        // the operating range brighter is never catastrophically worse.
        prop_assert!(high.errors().assignment() < 2.0 * low.errors().assignment() + 1e-3);
    }
}
