//! Property-based tests of the microarchitecture models.
//!
//! Requires the `proptest` crate, which the offline reference build
//! cannot fetch; enable with `cargo test --features proptest` on a
//! machine with registry access (and add the dev-dependency back).

#![cfg(feature = "proptest")]

use proptest::prelude::*;
use qisim_hal::fridge::Stage;
use qisim_microarch::cryo_cmos::drive::{hann_envelope, iq_samples, Nco};
use qisim_microarch::cryo_cmos::pulse::{ramped_pulse, CzTarget, PulseSequencer};
use qisim_microarch::cryo_cmos::rx::{memoryless, single_point, DiscriminatingLine};
use qisim_microarch::cryo_cmos::{CryoCmosConfig, EsmProfile};
use qisim_microarch::isa::{EsmTraffic, IsaFormat};
use qisim_microarch::sfq::drive::BitstreamGenerator;
use qisim_microarch::sfq::readout::{JpmSharing, ReadoutSchedule, SHARING_DEGREE};
use std::f64::consts::TAU;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// NCO phase arithmetic: `n` ticks then `virtual_rz(φ)` equals the
    /// accumulated value mod 2π (up to the 24-bit quantization).
    #[test]
    fn nco_accumulates_mod_2pi(omega in 0.0f64..1.0, n in 1u64..10_000, phi in -10.0f64..10.0) {
        let mut nco = Nco::new(omega);
        nco.tick_n(n);
        nco.virtual_rz(phi);
        let quantum = TAU / (1u64 << 24) as f64;
        let q = |x: f64| ((x / quantum).round() * quantum).rem_euclid(TAU);
        let expected = (q(omega) * n as f64 + q(phi)).rem_euclid(TAU);
        let mut diff = (nco.phase() - expected).abs();
        if diff > TAU / 2.0 {
            diff = TAU - diff;
        }
        prop_assert!(diff < n as f64 * quantum + 1e-9, "phase drift {diff}");
    }

    /// Quantized I/Q samples never exceed the DAC full scale.
    #[test]
    fn iq_samples_respect_full_scale(
        amp in 0.0f64..1.0,
        phase in -3.2f64..3.2,
        omega in 0.0f64..0.5,
        bits in 2u32..=16,
    ) {
        let env = hann_envelope(32, amp, phase);
        for (i, q) in iq_samples(&env, 0.0, omega, bits) {
            prop_assert!(i.abs() <= 1.0 + 1e-12);
            prop_assert!(q.abs() <= 1.0 + 1e-12);
        }
    }

    /// The pulse sequencer plays exactly the programmed length and stays
    /// within [-1, 1].
    #[test]
    fn pulse_sequencer_length_and_range(
        peak in 0.05f64..1.0,
        ramp_runs in 1u32..12,
        ramp_cycles in 1u32..6,
        plateau in 1u32..80,
        bits in 2u32..16,
    ) {
        let mut seq = PulseSequencer::new(bits);
        let runs = ramped_pulse(peak, ramp_runs, ramp_cycles, plateau);
        seq.load(CzTarget::North, runs);
        let samples = seq.play(CzTarget::North);
        prop_assert_eq!(samples.len() as u64, seq.pulse_cycles(CzTarget::North));
        prop_assert_eq!(
            samples.len() as u32,
            2 * ramp_runs * ramp_cycles + plateau
        );
        for s in samples {
            prop_assert!((-1.0..=1.0).contains(&s));
        }
    }

    /// Memoryless and bin-counting decisions agree with the sign of the
    /// projection for far-away clouds, and single-point agrees too.
    #[test]
    fn decision_units_agree_on_clear_signals(cx in -0.9f64..0.9, cy in -0.9f64..0.9) {
        prop_assume!(cx.abs() > 0.2);
        let line = DiscriminatingLine::between((-1.0, 0.0), (1.0, 0.0));
        let samples: Vec<(f64, f64)> = (0..64).map(|k| {
            (cx + 0.01 * (k % 5) as f64, cy + 0.01 * (k % 3) as f64)
        }).collect();
        let expect = cx > 0.0;
        prop_assert_eq!(memoryless(&samples, &line, 2.0).excited, expect);
        prop_assert_eq!(single_point(&samples, &line).excited, expect);
    }

    /// The bitstream generator's delayed outputs preserve pulse count and
    /// shift the first pulse by exactly the φ index.
    #[test]
    fn bitgen_outputs_are_delays(idx in 0usize..256) {
        let g = BitstreamGenerator::standard();
        let out = g.output(idx);
        prop_assert_eq!(out.first_pulse(), Some(idx));
        prop_assert_eq!(out.pulse_count(), 5);
    }

    /// The ESM profile's duties are fractions and the cycle decomposes.
    #[test]
    fn esm_profile_is_consistent(fdm in 1u32..64, readout in 100.0f64..2000.0) {
        let p = EsmProfile::for_cmos(fdm, readout);
        let cycle = p.cycle_ns();
        prop_assert!((cycle - (2.0 * p.h_layer_ns + p.cz_phase_ns + p.readout_ns)).abs() < 1e-9);
        for duty in [
            p.drive_bank_duty(),
            p.per_qubit_gate_duty(),
            p.cz_duty(),
            p.readout_line_duty(),
            p.readout_bank_duty(),
        ] {
            prop_assert!((0.0..=1.0).contains(&duty));
        }
    }

    /// Device power grows monotonically with qubit count at every stage.
    #[test]
    fn power_is_monotone_in_qubits(n1 in 1u64..5000, extra in 1u64..5000) {
        let arch = CryoCmosConfig::baseline().build();
        let n2 = n1 + extra;
        for stage in [Stage::K4, Stage::Mk100, Stage::Mk20] {
            let p1 = arch.device_static_w(stage, n1)
                + arch.device_dynamic_w(stage, n1)
                + arch.wire_load_w(stage, n1);
            let p2 = arch.device_static_w(stage, n2)
                + arch.device_dynamic_w(stage, n2)
                + arch.wire_load_w(stage, n2);
            prop_assert!(p2 >= p1, "{stage}: {p1} -> {p2}");
        }
    }

    /// Masked ISA bandwidth is always below the unmasked encoding, for
    /// any group size and cycle time.
    #[test]
    fn masked_isa_always_wins(group in 2u32..64, cycle in 300.0f64..3000.0) {
        let t = EsmTraffic::standard_esm();
        let pulse = IsaFormat::pulse_masked();
        let ro = IsaFormat::readout();
        let base = t.bandwidth_bps_per_qubit(&IsaFormat::horse_ridge_drive(), &pulse, &ro, group, cycle);
        let masked = t.bandwidth_bps_per_qubit(&IsaFormat::masked_drive(), &pulse, &ro, group, cycle);
        prop_assert!(masked < base);
    }

    /// Readout-schedule latencies: unshared ≤ pipelined ≤ naive for any
    /// driving time, and per-qubit latencies never exceed the group's
    /// completion plus the trailing reset.
    #[test]
    fn readout_schedule_ordering(driving in 50.0f64..1000.0) {
        let mk = |sharing| ReadoutSchedule { driving_ns: driving, sharing };
        let unshared = mk(JpmSharing::Unshared).group_latency_ns();
        let piped = mk(JpmSharing::SharedPipelined).group_latency_ns();
        let naive = mk(JpmSharing::SharedNaive).group_latency_ns();
        prop_assert!(unshared <= piped);
        prop_assert!(piped <= naive);
        for i in 0..SHARING_DEGREE {
            for sched in [mk(JpmSharing::Unshared), mk(JpmSharing::SharedPipelined)] {
                prop_assert!(sched.qubit_latency_ns(i) <= sched.group_latency_ns());
            }
        }
    }
}
