//! Generic hardware-inventory abstraction.
//!
//! The paper's circuit model (Fig. 6) consumes, for every QCI block, a
//! per-unit static power, a per-access dynamic energy, and a count of units
//! as a function of the managed qubit number. This module provides the
//! [`Component`] type that carries exactly that information, with the
//! technology-specific numbers delegated to `qisim-hal`.
//!
//! A full QCI microarchitecture is a [`Vec<Component>`] plus a wiring plan
//! ([`WirePlan`]) and an instruction-bandwidth figure — see [`QciArch`].

use qisim_hal::analog::AnalogBlock;
use qisim_hal::cmos::CmosTech;
use qisim_hal::fridge::Stage;
use qisim_hal::sfq::{SfqCell, SfqTech};
use qisim_hal::wire::WireKind;

/// The physical substance of a component, delegating power math to the HAL.
#[derive(Debug, Clone, PartialEq)]
pub enum Resource {
    /// Synthesized CMOS logic measured in gate equivalents (GE).
    CmosLogic {
        /// Technology operating point.
        tech: CmosTech,
        /// Gate-equivalent count of one instance.
        ge: f64,
        /// Fraction of gates toggling per clock cycle while the unit is
        /// active (synthesis-style switching activity).
        activity: f64,
    },
    /// An SRAM macro.
    CmosSram {
        /// Technology operating point.
        tech: CmosTech,
        /// Macro capacity in kilobytes.
        kb: f64,
        /// Average accesses per clock cycle while the unit is active.
        accesses_per_cycle: f64,
    },
    /// SFQ logic described as a library-cell mix.
    SfqCells {
        /// Technology operating point (family × stage).
        tech: SfqTech,
        /// `(cell, count)` pairs of one instance.
        cells: Vec<(SfqCell, u64)>,
        /// Fraction of JJs switching per clock cycle while active.
        activity: f64,
    },
    /// A published analog block (fixed active/idle powers).
    Analog(AnalogBlock),
}

/// One microarchitectural unit of a QCI, replicated with qubit count.
///
/// # Examples
///
/// ```
/// use qisim_microarch::inventory::{Component, Resource};
/// use qisim_hal::{cmos::CmosTech, fridge::Stage};
///
/// let nco = Component {
///     name: "drive NCO".into(),
///     stage: Stage::K4,
///     resource: Resource::CmosLogic { tech: CmosTech::baseline_4k(), ge: 9000.0, activity: 0.2 },
///     qubits_per_instance: 1.0,
///     duty: 0.13,
/// };
/// assert_eq!(nco.instances(1152), 1152.0);
/// assert!(nco.dynamic_power_w(2.5e9) > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Component {
    /// Human-readable unit name (used as the activity-map key).
    pub name: String,
    /// Temperature stage where the unit dissipates.
    pub stage: Stage,
    /// What the unit is made of.
    pub resource: Resource,
    /// How many qubits share one instance (1 = per-qubit, 32 = one per 32
    /// qubits as in FDM drive). Fractional values are allowed for blocks
    /// amortized over large groups.
    pub qubits_per_instance: f64,
    /// Fraction of the steady-state workload (ESM) during which the unit is
    /// actively clocked; the cycle-accurate simulator can override this.
    pub duty: f64,
}

impl Component {
    /// Number of instances needed for `n_qubits` (ceiling division).
    ///
    /// # Panics
    ///
    /// Panics if `qubits_per_instance` is not positive.
    pub fn instances(&self, n_qubits: u64) -> f64 {
        assert!(self.qubits_per_instance > 0.0, "sharing must be positive");
        (n_qubits as f64 / self.qubits_per_instance).ceil()
    }

    /// Static power of **one instance**, in watts.
    pub fn static_power_w(&self) -> f64 {
        match &self.resource {
            Resource::CmosLogic { tech, ge, .. } => tech.logic_static_power_w() * ge,
            Resource::CmosSram { tech, kb, .. } => tech.sram_static_power_w(*kb),
            Resource::SfqCells { tech, cells, .. } => tech.static_power_w(cells),
            Resource::Analog(block) => block.idle_power_w,
        }
    }

    /// Dynamic power of **one instance** at its duty cycle, in watts.
    ///
    /// For digital resources this is `energy/access × clock × activity ×
    /// duty`; for analog blocks it is the active-idle power gap times duty
    /// (the idle part is accounted as static).
    pub fn dynamic_power_w(&self, clock_hz: f64) -> f64 {
        match &self.resource {
            Resource::CmosLogic { tech, ge, activity } => {
                tech.logic_dynamic_power_w(*ge, clock_hz, *activity) * self.duty
            }
            Resource::CmosSram { tech, kb, accesses_per_cycle } => {
                tech.sram_access_energy_j(*kb) * accesses_per_cycle * clock_hz * self.duty
            }
            Resource::SfqCells { tech, cells, activity } => {
                tech.dynamic_power_w(cells, clock_hz, *activity) * self.duty
            }
            Resource::Analog(block) => (block.active_power_w - block.idle_power_w) * self.duty,
        }
    }

    /// Total power of one instance (static + dynamic), in watts.
    pub fn power_w(&self, clock_hz: f64) -> f64 {
        self.static_power_w() + self.dynamic_power_w(clock_hz)
    }

    /// Returns a copy with a different duty cycle.
    ///
    /// # Panics
    ///
    /// Panics if `duty` is outside `[0, 1]`.
    pub fn with_duty(mut self, duty: f64) -> Self {
        assert!((0.0..=1.0).contains(&duty), "duty must be in [0,1]");
        self.duty = duty;
        self
    }

    /// Scales the dynamic cost of the component by scaling its activity
    /// (CMOS logic / SFQ) or accesses-per-cycle (SRAM). Analog blocks are
    /// unaffected. Used by optimizations that thin out datapath switching.
    pub fn with_activity_scale(mut self, k: f64) -> Self {
        assert!(k >= 0.0, "activity scale must be non-negative");
        match &mut self.resource {
            Resource::CmosLogic { activity, .. } => *activity = (*activity * k).min(1.0),
            Resource::CmosSram { accesses_per_cycle, .. } => *accesses_per_cycle *= k,
            Resource::SfqCells { activity, .. } => *activity = (*activity * k).min(1.0),
            Resource::Analog(_) => {}
        }
        self
    }
}

/// A group of analog cables of one kind serving the QCI.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WirePlan {
    /// Descriptive name ("drive lines", "TX lines"...).
    pub name: &'static str,
    /// Cable technology.
    pub kind: WireKind,
    /// Qubits served per cable (FDM degree for drive/readout lines).
    pub qubits_per_cable: f64,
    /// Fraction of time the cable carries signal during ESM.
    pub duty: f64,
}

impl WirePlan {
    /// Cables needed for `n_qubits`.
    pub fn cables(&self, n_qubits: u64) -> f64 {
        assert!(self.qubits_per_cable > 0.0, "sharing must be positive");
        (n_qubits as f64 / self.qubits_per_cable).ceil()
    }

    /// Total heat load of the group at one stage for `n_qubits`, in watts.
    ///
    /// Wires that cannot span room temperature (the superconducting 4K–mK
    /// interconnects) originate at the 4 K stage: they load only the
    /// stages *below* their anchor (100 mK and 20 mK), never 4 K itself.
    pub fn load_w(&self, stage: Stage, n_qubits: u64) -> f64 {
        if !self.kind.spans_room_to_mk() && !matches!(stage, Stage::Mk100 | Stage::Mk20) {
            return 0.0;
        }
        self.cables(n_qubits) * self.kind.load_w(stage, self.duty)
    }
}

/// A complete QCI microarchitecture: components + wires + ISA bandwidth.
#[derive(Debug, Clone, PartialEq)]
pub struct QciArch {
    /// Design name for reports.
    pub name: String,
    /// Digital clock in Hz (2.5 GHz CMOS, 24 GHz SFQ).
    pub clock_hz: f64,
    /// Hardware units.
    pub components: Vec<Component>,
    /// Analog cable groups.
    pub wires: Vec<WirePlan>,
    /// Average 300K→4K instruction bandwidth per qubit in bits/s during
    /// ESM (zero for 300 K QCIs, whose "instructions" stay in the rack).
    pub instr_bandwidth_bps_per_qubit: f64,
}

impl QciArch {
    /// Sum of `f(component)` weighted by instance count for `n_qubits`.
    fn sum_over<F: Fn(&Component) -> f64>(&self, n_qubits: u64, f: F) -> f64 {
        self.components.iter().map(|c| c.instances(n_qubits) * f(c)).sum()
    }

    /// Total device static power at one stage, in watts.
    pub fn device_static_w(&self, stage: Stage, n_qubits: u64) -> f64 {
        self.sum_over(n_qubits, |c| if c.stage == stage { c.static_power_w() } else { 0.0 })
    }

    /// Total device dynamic power at one stage, in watts.
    pub fn device_dynamic_w(&self, stage: Stage, n_qubits: u64) -> f64 {
        self.sum_over(n_qubits, |c| {
            if c.stage == stage {
                c.dynamic_power_w(self.clock_hz)
            } else {
                0.0
            }
        })
    }

    /// Total wire heat load at one stage, in watts (analog cables only).
    pub fn wire_load_w(&self, stage: Stage, n_qubits: u64) -> f64 {
        self.wires.iter().map(|w| w.load_w(stage, n_qubits)).sum()
    }

    /// Instruction-link bandwidth for `n_qubits`, in bits/s.
    pub fn instr_bandwidth_bps(&self, n_qubits: u64) -> f64 {
        self.instr_bandwidth_bps_per_qubit * n_qubits as f64
    }

    /// Power of the named component group per qubit, in watts (for
    /// breakdown reports; name matching is by prefix so "RX" covers
    /// "RX NCO bank", "RX decision"...).
    pub fn group_power_per_qubit_w(&self, prefix: &str, n_qubits: u64) -> f64 {
        let total: f64 = self
            .components
            .iter()
            .filter(|c| c.name.starts_with(prefix))
            .map(|c| c.instances(n_qubits) * c.power_w(self.clock_hz))
            .sum();
        total / n_qubits as f64
    }

    /// Replaces a component by name; returns whether a match was found.
    pub fn replace_component(&mut self, name: &str, new: Component) -> bool {
        if let Some(slot) = self.components.iter_mut().find(|c| c.name == name) {
            *slot = new;
            true
        } else {
            false
        }
    }

    /// Removes components whose name starts with `prefix`; returns how many
    /// were removed.
    pub fn remove_components(&mut self, prefix: &str) -> usize {
        let before = self.components.len();
        self.components.retain(|c| !c.name.starts_with(prefix));
        before - self.components.len()
    }

    /// Finds a component by exact name.
    pub fn component(&self, name: &str) -> Option<&Component> {
        self.components.iter().find(|c| c.name == name)
    }

    /// Mutable access to a component by exact name.
    pub fn component_mut(&mut self, name: &str) -> Option<&mut Component> {
        self.components.iter_mut().find(|c| c.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qisim_hal::cmos::CmosTech;
    use qisim_hal::sfq::{SfqFamily, SfqStage};

    fn logic(name: &str, ge: f64, share: f64, duty: f64) -> Component {
        Component {
            name: name.into(),
            stage: Stage::K4,
            resource: Resource::CmosLogic { tech: CmosTech::baseline_4k(), ge, activity: 0.2 },
            qubits_per_instance: share,
            duty,
        }
    }

    #[test]
    fn instance_count_uses_ceiling() {
        let c = logic("x", 100.0, 32.0, 1.0);
        assert_eq!(c.instances(32), 1.0);
        assert_eq!(c.instances(33), 2.0);
        assert_eq!(c.instances(1), 1.0);
    }

    #[test]
    fn duty_scales_dynamic_not_static() {
        let full = logic("x", 1000.0, 1.0, 1.0);
        let half = full.clone().with_duty(0.5);
        assert_eq!(full.static_power_w(), half.static_power_w());
        let ratio = full.dynamic_power_w(2.5e9) / half.dynamic_power_w(2.5e9);
        assert!((ratio - 2.0).abs() < 1e-12);
    }

    #[test]
    fn sram_dynamic_counts_accesses() {
        let tech = CmosTech::baseline_4k();
        let c = Component {
            name: "bin counter".into(),
            stage: Stage::K4,
            resource: Resource::CmosSram { tech, kb: 32.0, accesses_per_cycle: 2.0 },
            qubits_per_instance: 1.0,
            duty: 1.0,
        };
        let p = c.dynamic_power_w(2.5e9);
        let expect = tech.sram_access_energy_j(32.0) * 2.0 * 2.5e9;
        assert!((p - expect).abs() < 1e-15);
    }

    #[test]
    fn sfq_component_power() {
        let tech = SfqTech::new(SfqFamily::Rsfq, SfqStage::Cryo4K);
        let c = Component {
            name: "per-qubit controller".into(),
            stage: Stage::K4,
            resource: Resource::SfqCells {
                tech,
                cells: vec![(SfqCell::Dff, 21), (SfqCell::Mux2, 7)],
                activity: 0.3,
            },
            qubits_per_instance: 1.0,
            duty: 0.5,
        };
        assert!(c.static_power_w() > 0.0);
        assert!(c.dynamic_power_w(24e9) > 0.0);
        // Static dominates for RSFQ at these activities.
        assert!(c.static_power_w() > c.dynamic_power_w(24e9));
    }

    #[test]
    fn activity_scale_touches_dynamic_only() {
        let c = logic("x", 1000.0, 1.0, 1.0);
        let thinned = c.clone().with_activity_scale(0.25);
        assert_eq!(c.static_power_w(), thinned.static_power_w());
        let ratio = c.dynamic_power_w(2.5e9) / thinned.dynamic_power_w(2.5e9);
        assert!((ratio - 4.0).abs() < 1e-12);
    }

    #[test]
    fn wire_plan_counts_cables() {
        let w = WirePlan { name: "drive", kind: WireKind::Coax, qubits_per_cable: 32.0, duty: 0.2 };
        assert_eq!(w.cables(64), 2.0);
        assert_eq!(w.cables(65), 3.0);
        let load = w.load_w(Stage::Mk100, 64);
        let per = WireKind::Coax.load_w(Stage::Mk100, 0.2);
        assert!((load - 2.0 * per).abs() < 1e-18);
    }

    #[test]
    fn arch_aggregation_and_edit() {
        let mut arch = QciArch {
            name: "test".into(),
            clock_hz: 2.5e9,
            components: vec![
                logic("RX bank", 1000.0, 1.0, 0.5),
                logic("drive NCO", 500.0, 1.0, 0.2),
            ],
            wires: vec![WirePlan {
                name: "drive",
                kind: WireKind::Coax,
                qubits_per_cable: 32.0,
                duty: 0.2,
            }],
            instr_bandwidth_bps_per_qubit: 1e8,
        };
        assert!(arch.device_dynamic_w(Stage::K4, 100) > 0.0);
        assert_eq!(arch.device_dynamic_w(Stage::Mk20, 100), 0.0);
        assert!(arch.wire_load_w(Stage::Mk100, 100) > 0.0);
        assert_eq!(arch.instr_bandwidth_bps(10), 1e9);
        assert!(arch.group_power_per_qubit_w("RX", 100) > 0.0);

        assert!(arch.replace_component("RX bank", logic("RX bank", 100.0, 1.0, 0.5)));
        assert!(!arch.replace_component("missing", logic("y", 1.0, 1.0, 0.1)));
        assert_eq!(arch.remove_components("drive"), 1);
        assert_eq!(arch.components.len(), 1);
    }
}
