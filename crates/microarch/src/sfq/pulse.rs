//! 4 K SFQ pulse circuit — the paper's **new** SFQDC-based AWG (§3.4.2,
//! Fig. 5c).
//!
//! DigiQ's pulse circuit could only switch a fixed number of SFQ-to-DC
//! converter (SFQDC) cells on, producing a unit-step flux pulse. The new
//! design stores *SFQDC-control bitstreams at 4 K*: every clock cycle the
//! bitstream sets how many SFQDC cells are on, so the DC amplitude follows
//! an arbitrary staircase — an AWG with no extra 300K–4K bandwidth.
//!
//! For parallel ESM the lattice is divided into four qubit subgroups with
//! different CZ frequencies; the ISA carries a per-subgroup *CZ select* and
//! a per-qubit *mask*.

use crate::inventory::{Component, Resource};
use qisim_hal::fridge::Stage;
use qisim_hal::sfq::{SfqCell, SfqTech};

/// Number of CZ-frequency subgroups driven in parallel (§3.4.2).
pub const CZ_SUBGROUPS: usize = 4;
/// SFQDC cells per qubit — the amplitude resolution in unit steps.
pub const SFQDC_PER_QUBIT: usize = 8;

/// A per-cycle SFQDC on-count sequence: the staircase waveform one
/// subgroup's CZ pulse follows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SfqdcWaveform {
    on_counts: Vec<u8>,
}

impl SfqdcWaveform {
    /// Creates a waveform from per-cycle on-counts.
    ///
    /// # Panics
    ///
    /// Panics if any count exceeds [`SFQDC_PER_QUBIT`].
    pub fn new(on_counts: Vec<u8>) -> Self {
        assert!(
            on_counts.iter().all(|c| (*c as usize) <= SFQDC_PER_QUBIT),
            "on-count exceeds SFQDC cell count"
        );
        SfqdcWaveform { on_counts }
    }

    /// A unit-step pulse (the old DigiQ behaviour): `level` cells on for
    /// `cycles` cycles.
    pub fn unit_step(level: u8, cycles: usize) -> Self {
        SfqdcWaveform::new(vec![level; cycles])
    }

    /// A ramped pulse: cosine ramp over `ramp_cycles` up to `peak`, hold
    /// for `plateau_cycles`, cosine ramp down.
    ///
    /// # Panics
    ///
    /// Panics if `peak as usize > SFQDC_PER_QUBIT`.
    pub fn ramped(peak: u8, ramp_cycles: usize, plateau_cycles: usize) -> Self {
        assert!((peak as usize) <= SFQDC_PER_QUBIT, "peak exceeds SFQDC cells");
        let mut counts = Vec::with_capacity(2 * ramp_cycles + plateau_cycles);
        for k in 0..ramp_cycles {
            let x = (k as f64 + 0.5) / ramp_cycles as f64;
            let a = peak as f64 * 0.5 * (1.0 - (std::f64::consts::PI * x).cos());
            counts.push(a.round() as u8);
        }
        counts.extend(std::iter::repeat_n(peak, plateau_cycles));
        for k in (0..ramp_cycles).rev() {
            let x = (k as f64 + 0.5) / ramp_cycles as f64;
            let a = peak as f64 * 0.5 * (1.0 - (std::f64::consts::PI * x).cos());
            counts.push(a.round() as u8);
        }
        SfqdcWaveform { on_counts: counts }
    }

    /// Normalized amplitude samples in `[0, 1]` (on-count / cell count).
    pub fn amplitudes(&self) -> Vec<f64> {
        self.on_counts.iter().map(|c| *c as f64 / SFQDC_PER_QUBIT as f64).collect()
    }

    /// Pulse length in QCI clock cycles.
    pub fn cycles(&self) -> usize {
        self.on_counts.len()
    }

    /// Whether the waveform ever changes level mid-pulse (i.e. is a true
    /// AWG shape rather than a unit step).
    pub fn is_shaped(&self) -> bool {
        let interior = &self.on_counts[..];
        interior.windows(2).any(|w| w[0] != w[1])
    }
}

/// The SFQDC controller: routes the selected waveform of each subgroup to
/// the masked qubits.
///
/// Returns, per qubit, the waveform it receives (`None` when masked off).
///
/// # Panics
///
/// Panics if `subgroup_of.len() != mask.len()`, or any subgroup index is
/// out of range.
pub fn route_waveforms<'a>(
    waveforms: &'a [SfqdcWaveform; CZ_SUBGROUPS],
    subgroup_of: &[u8],
    mask: &[bool],
) -> Vec<Option<&'a SfqdcWaveform>> {
    assert_eq!(subgroup_of.len(), mask.len(), "one mask bit per qubit");
    subgroup_of
        .iter()
        .zip(mask)
        .map(|(&sg, &on)| {
            assert!((sg as usize) < CZ_SUBGROUPS, "subgroup out of range");
            if on {
                Some(&waveforms[sg as usize])
            } else {
                None
            }
        })
        .collect()
}

/// Builds the SFQ pulse-circuit inventory.
pub fn components(tech: SfqTech, cz_duty: f64) -> Vec<Component> {
    vec![
        // Per-qubit SFQDC bank.
        Component {
            name: "SFQ pulse SFQDC cells".into(),
            stage: Stage::K4,
            resource: Resource::SfqCells {
                tech,
                cells: vec![(SfqCell::SfqDc, SFQDC_PER_QUBIT as u64), (SfqCell::Jtl, 20)],
                activity: 0.3,
            },
            qubits_per_instance: 1.0,
            duty: cz_duty,
        },
        // Per-subgroup control-bitstream registers, shared by 16 qubits.
        Component {
            name: "SFQ pulse subgroup controller".into(),
            stage: Stage::K4,
            resource: Resource::SfqCells {
                tech,
                cells: vec![
                    (SfqCell::Dff, 64 * CZ_SUBGROUPS as u64),
                    (SfqCell::Splitter, 15 * CZ_SUBGROUPS as u64),
                ],
                activity: 0.25,
            },
            qubits_per_instance: 16.0,
            duty: cz_duty,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_step_is_flat() {
        let w = SfqdcWaveform::unit_step(5, 100);
        assert!(!w.is_shaped());
        assert_eq!(w.cycles(), 100);
        assert!(w.amplitudes().iter().all(|a| (*a - 5.0 / 8.0).abs() < 1e-12));
    }

    #[test]
    fn ramped_is_shaped_and_peaks_correctly() {
        let w = SfqdcWaveform::ramped(8, 20, 60);
        assert!(w.is_shaped());
        assert_eq!(w.cycles(), 100);
        let amps = w.amplitudes();
        assert!((amps[50] - 1.0).abs() < 1e-12);
        assert!(amps[0] < 0.2);
        assert!(amps[99] < 0.2);
    }

    #[test]
    #[should_panic(expected = "exceeds SFQDC")]
    fn overdriven_waveform_panics() {
        let _ = SfqdcWaveform::unit_step(9, 10);
    }

    #[test]
    fn routing_respects_mask_and_subgroup() {
        let ws = [
            SfqdcWaveform::unit_step(1, 4),
            SfqdcWaveform::unit_step(2, 4),
            SfqdcWaveform::unit_step(3, 4),
            SfqdcWaveform::unit_step(4, 4),
        ];
        let routed = route_waveforms(&ws, &[0, 1, 2, 3], &[true, false, true, true]);
        assert_eq!(routed[0], Some(&ws[0]));
        assert_eq!(routed[1], None);
        assert_eq!(routed[2], Some(&ws[2]));
        assert_eq!(routed[3], Some(&ws[3]));
    }

    #[test]
    #[should_panic(expected = "subgroup out of range")]
    fn bad_subgroup_panics() {
        let ws = [
            SfqdcWaveform::unit_step(0, 1),
            SfqdcWaveform::unit_step(0, 1),
            SfqdcWaveform::unit_step(0, 1),
            SfqdcWaveform::unit_step(0, 1),
        ];
        let _ = route_waveforms(&ws, &[4], &[true]);
    }

    #[test]
    fn inventory_is_cheap_relative_to_drive() {
        use qisim_hal::sfq::{SfqFamily, SfqStage};
        let tech = SfqTech::new(SfqFamily::Rsfq, SfqStage::Cryo4K);
        let per_qubit: f64 = components(tech, 0.18)
            .iter()
            .map(|c| c.instances(16) * c.static_power_w())
            .sum::<f64>()
            / 16.0;
        // Pulse hardware is a small slice of the 2.8 mW/qubit total.
        assert!(per_qubit < 0.2e-3, "pulse static/qubit {per_qubit}");
    }
}
