//! Full SFQ readout chain (§3.4.3) — the paper's **new design**: resonator
//! driving, JPM tunneling, the mK LJJ delay-comparator JPM readout, and
//! reset, plus the Opt-3 shared/pipelined and Opt-8 fast/unshared
//! schedules.
//!
//! Latency anchors (Table 2 / Fig. 15 / Fig. 20):
//!
//! * resonator driving 578.2 ns (Opt-8 boosts the driving circuit to
//!   48 GHz → 230.9 ns);
//! * JPM tunneling 12.8 ns;
//! * JPM readout 4 ns unshared, 13 ns when eight JPMs share one circuit
//!   with 4 pH LJJs;
//! * reset 70 ns.

use crate::inventory::{Component, Resource};
use qisim_hal::fridge::Stage;
use qisim_hal::sfq::{SfqCell, SfqTech};

/// Baseline resonator-driving duration in ns (Table 2).
pub const DRIVING_NS: f64 = 578.2;
/// Opt-8 fast resonator driving (48 GHz burst) in ns (Fig. 20a).
pub const FAST_DRIVING_NS: f64 = 230.9;
/// JPM tunneling window in ns (Table 2).
pub const TUNNELING_NS: f64 = 12.8;
/// Unshared mK JPM-readout latency in ns (Table 2).
pub const JPM_READ_NS: f64 = 4.0;
/// Shared (8×, 4 pH LJJ) JPM-readout latency in ns (§6.3.2).
pub const JPM_READ_SHARED_NS: f64 = 13.0;
/// JPM reset duration in ns (Table 2).
pub const RESET_NS: f64 = 70.0;

/// How the mK JPM-readout circuit is organized across a readout group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JpmSharing {
    /// One readout circuit per JPM (baseline; Opt-8 returns here once
    /// ERSFQ makes mK static power free).
    Unshared,
    /// Eight JPMs share one circuit, readouts strictly serialized
    /// (the power fix that wrecks latency, Fig. 15b top).
    SharedNaive,
    /// Opt-3: shared, with readouts pipelined so JPM-read stages never
    /// overlap JPM-write stages (tunneling/reset) of the *same* JPM while
    /// writes of different JPMs overlap freely (Fig. 15b bottom).
    SharedPipelined,
}

impl JpmSharing {
    /// Stable text-codec label (`qisim::codec`).
    pub fn label(self) -> &'static str {
        match self {
            JpmSharing::Unshared => "unshared",
            JpmSharing::SharedNaive => "shared_naive",
            JpmSharing::SharedPipelined => "shared_pipelined",
        }
    }

    /// Inverse of [`JpmSharing::label`]; `None` for unknown labels.
    pub fn from_label(label: &str) -> Option<JpmSharing> {
        [JpmSharing::Unshared, JpmSharing::SharedNaive, JpmSharing::SharedPipelined]
            .into_iter()
            .find(|k| k.label() == label)
    }
}

/// JPMs per shared readout circuit (Opt-3).
pub const SHARING_DEGREE: usize = 8;

/// The four-step readout schedule for a group of qubits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadoutSchedule {
    /// Resonator-driving duration in ns.
    pub driving_ns: f64,
    /// Sharing/pipelining mode.
    pub sharing: JpmSharing,
}

impl ReadoutSchedule {
    /// Baseline unshared schedule.
    pub fn baseline() -> Self {
        ReadoutSchedule { driving_ns: DRIVING_NS, sharing: JpmSharing::Unshared }
    }

    /// Opt-3 shared + pipelined schedule.
    pub fn opt3() -> Self {
        ReadoutSchedule { driving_ns: DRIVING_NS, sharing: JpmSharing::SharedPipelined }
    }

    /// Opt-8: fast driving and unsharing (for ERSFQ).
    pub fn opt8() -> Self {
        ReadoutSchedule { driving_ns: FAST_DRIVING_NS, sharing: JpmSharing::Unshared }
    }

    /// Per-JPM read latency under this sharing mode.
    pub fn jpm_read_ns(&self) -> f64 {
        match self.sharing {
            JpmSharing::Unshared => JPM_READ_NS,
            JpmSharing::SharedNaive | JpmSharing::SharedPipelined => JPM_READ_SHARED_NS,
        }
    }

    /// Total latency to read all eight qubits of one readout group, in ns.
    ///
    /// * Unshared: everything in parallel — one full chain.
    /// * Shared naive: eight complete chains back to back.
    /// * Shared pipelined: resonators all drive in parallel, then the
    ///   read stages serialize on the shared circuit while each JPM's
    ///   reset overlaps the *next* JPM's tunneling (both are writes):
    ///   `D + T + n·R + (n−1)·max(reset, T) + reset`.
    pub fn group_latency_ns(&self) -> f64 {
        let n = SHARING_DEGREE as f64;
        let r = self.jpm_read_ns();
        match self.sharing {
            JpmSharing::Unshared => self.driving_ns + TUNNELING_NS + r + RESET_NS,
            JpmSharing::SharedNaive => n * (self.driving_ns + TUNNELING_NS + r + RESET_NS),
            JpmSharing::SharedPipelined => {
                self.driving_ns
                    + TUNNELING_NS
                    + n * r
                    + (n - 1.0) * RESET_NS.max(TUNNELING_NS)
                    + RESET_NS
            }
        }
    }

    /// Latency until a *specific* qubit's outcome is available (ns),
    /// `index` within the group (0-based). Useful for decoherence
    /// accounting of early vs. late readouts.
    ///
    /// # Panics
    ///
    /// Panics if `index >= SHARING_DEGREE`.
    pub fn qubit_latency_ns(&self, index: usize) -> f64 {
        assert!(index < SHARING_DEGREE, "index out of readout group");
        let i = index as f64;
        let r = self.jpm_read_ns();
        match self.sharing {
            JpmSharing::Unshared => self.driving_ns + TUNNELING_NS + r,
            JpmSharing::SharedNaive => {
                (i + 1.0) * (self.driving_ns + TUNNELING_NS + r + RESET_NS) - RESET_NS
            }
            JpmSharing::SharedPipelined => {
                self.driving_ns + TUNNELING_NS + (i + 1.0) * r + i * RESET_NS.max(TUNNELING_NS)
            }
        }
    }
}

/// Builds the mK JPM-readout inventory for a sharing mode. Biased-JJ
/// counts are calibrated so that the unshared RSFQ circuit limits the
/// 20 mK budget to ~160 qubits and Opt-3 sharing recovers ~8× (Fig. 13b).
pub fn mk_components(tech: SfqTech, sharing: JpmSharing) -> Vec<Component> {
    debug_assert!(
        matches!(tech.stage, qisim_hal::sfq::SfqStage::MilliKelvin),
        "JPM readout lives at the mK stage"
    );
    // Per-JPM LJJ trains are inductance-biased — zero static power — and
    // stay per-JPM even when the comparator is shared (§6.3.2).
    let per_jpm_ljj = Component {
        name: "mK JPM LJJ trains".into(),
        stage: Stage::Mk20,
        resource: Resource::SfqCells {
            tech,
            cells: vec![(SfqCell::LjjSegment, 80)],
            activity: 0.1,
        },
        qubits_per_instance: 1.0,
        duty: 0.05,
    };
    // The biased part: DFF comparator, merger, DC/SFQ interfaces, and the
    // SFQDC cells that flux-pulse the JPM.
    let comparator_cells =
        vec![(SfqCell::Dff, 1u64), (SfqCell::Merger, 1), (SfqCell::DcSfq, 2), (SfqCell::SfqDc, 2)];
    let share = match sharing {
        JpmSharing::Unshared => 1.0,
        JpmSharing::SharedNaive | JpmSharing::SharedPipelined => SHARING_DEGREE as f64,
    };
    vec![
        per_jpm_ljj,
        Component {
            name: "mK JPM readout comparator".into(),
            stage: Stage::Mk20,
            resource: Resource::SfqCells { tech, cells: comparator_cells, activity: 0.1 },
            qubits_per_instance: share,
            duty: 0.05,
        },
    ]
}

/// Builds the 4 K side of the readout: the resonator-driving circuit (a
/// modified drive circuit), JPM pulse circuit, and the SFQ send/receive
/// interface to the mK stage.
pub fn four_k_components(tech: SfqTech, readout_duty: f64) -> Vec<Component> {
    vec![
        Component {
            name: "SFQ resonator-driving circuit".into(),
            stage: Stage::K4,
            resource: Resource::SfqCells {
                tech,
                cells: vec![(SfqCell::Dff, 24), (SfqCell::Tff, 4), (SfqCell::Jtl, 60)],
                activity: 0.3,
            },
            qubits_per_instance: 1.0,
            duty: readout_duty,
        },
        Component {
            name: "SFQ JPM pulse circuit".into(),
            stage: Stage::K4,
            resource: Resource::SfqCells {
                tech,
                cells: vec![(SfqCell::SfqDc, 4), (SfqCell::Dff, 16), (SfqCell::Jtl, 20)],
                activity: 0.2,
            },
            qubits_per_instance: 1.0,
            duty: readout_duty,
        },
        Component {
            name: "SFQ readout 4K-mK interface".into(),
            stage: Stage::K4,
            resource: Resource::SfqCells {
                tech,
                cells: vec![(SfqCell::DcSfq, 8), (SfqCell::Dff, 8), (SfqCell::Jtl, 40)],
                activity: 0.1,
            },
            qubits_per_instance: 1.0,
            duty: readout_duty,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use qisim_hal::sfq::{SfqFamily, SfqStage};

    #[test]
    fn baseline_chain_is_665ns() {
        let s = ReadoutSchedule::baseline();
        assert!((s.group_latency_ns() - 665.0).abs() < 1e-9);
    }

    #[test]
    fn naive_sharing_explodes_latency() {
        let s = ReadoutSchedule { driving_ns: DRIVING_NS, sharing: JpmSharing::SharedNaive };
        // Paper: "the eight serialized readouts take 5,320 ns". With the
        // shared 13 ns read our chain gives 8 × 674 = 5,392 ns.
        let t = s.group_latency_ns();
        assert!((t - 5392.0).abs() < 1.0, "naive {t}");
        assert!((t - 5320.0).abs() / 5320.0 < 0.02, "within 2% of paper: {t}");
    }

    #[test]
    fn pipelined_sharing_is_1255ns() {
        // Fig. 15b: sharing + pipelining achieves 1,255 ns.
        let t = ReadoutSchedule::opt3().group_latency_ns();
        assert!((t - 1255.0).abs() < 1e-6, "pipelined {t}");
    }

    #[test]
    fn opt8_fast_unshared_is_about_318ns() {
        let t = ReadoutSchedule::opt8().group_latency_ns();
        assert!((t - (230.9 + 12.8 + 4.0 + 70.0)).abs() < 1e-9, "opt8 {t}");
    }

    #[test]
    fn per_qubit_latencies_are_monotone_under_sharing() {
        let s = ReadoutSchedule::opt3();
        let mut last = 0.0;
        for i in 0..SHARING_DEGREE {
            let t = s.qubit_latency_ns(i);
            assert!(t > last);
            last = t;
        }
        // Last qubit's outcome lands before the full group latency (the
        // trailing reset is not outcome-blocking).
        assert!(last < s.group_latency_ns());
    }

    #[test]
    fn unshared_latency_is_index_independent() {
        let s = ReadoutSchedule::baseline();
        assert_eq!(s.qubit_latency_ns(0), s.qubit_latency_ns(7));
    }

    #[test]
    fn sharing_cuts_mk_static_power_8x() {
        let tech = SfqTech::new(SfqFamily::Rsfq, SfqStage::MilliKelvin);
        let static_per_qubit = |sharing| -> f64 {
            mk_components(tech, sharing)
                .iter()
                .map(|c| c.instances(SHARING_DEGREE as u64) * c.static_power_w())
                .sum::<f64>()
                / SHARING_DEGREE as f64
        };
        let unshared = static_per_qubit(JpmSharing::Unshared);
        let shared = static_per_qubit(JpmSharing::SharedPipelined);
        assert!((unshared / shared - 8.0).abs() < 0.5, "{unshared} / {shared}");
    }

    #[test]
    fn mk_budget_limits_unshared_rsfq_near_160_qubits() {
        let tech = SfqTech::new(SfqFamily::Rsfq, SfqStage::MilliKelvin);
        let per_qubit: f64 = mk_components(tech, JpmSharing::Unshared)
            .iter()
            .map(|c| c.instances(1) * c.static_power_w())
            .sum();
        let max = Stage::Mk20.cooling_capacity_w() / per_qubit;
        assert!(max > 120.0 && max < 210.0, "mK-limited scale {max}");
    }

    #[test]
    fn ljj_trains_draw_no_static_power() {
        let tech = SfqTech::new(SfqFamily::Rsfq, SfqStage::MilliKelvin);
        let cs = mk_components(tech, JpmSharing::Unshared);
        let ljj = cs.iter().find(|c| c.name.contains("LJJ")).unwrap();
        assert_eq!(ljj.static_power_w(), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of readout group")]
    fn bad_index_panics() {
        let _ = ReadoutSchedule::opt3().qubit_latency_ns(8);
    }
}
