//! The full 4 K SFQ QCI (§3.4): DigiQ-style drive with the paper's
//! re-designed control-data buffer and bitstream generator, the new SFQDC
//! AWG pulse circuit, and the new full-SFQ JPM readout chain.

pub mod drive;
pub mod pulse;
pub mod readout;

use crate::cryo_cmos::{EsmProfile, ONE_Q_NS, TWO_Q_NS};
use crate::inventory::{Component, QciArch, Resource, WirePlan};
use crate::isa::{EsmTraffic, IsaFormat};
use qisim_hal::sfq::{SfqCell, SfqFamily, SfqStage, SfqTech, SFQ_CLOCK_HZ};
use qisim_hal::wire::WireKind;

pub use drive::BitgenKind;
pub use readout::{JpmSharing, ReadoutSchedule};

/// Qubits sharing one bitstream generator / controller group.
pub const DRIVE_GROUP: u32 = 8;

/// Configuration of a 4 K SFQ QCI design.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SfqConfig {
    /// Logic family (RSFQ near-term, ERSFQ long-term).
    pub family: SfqFamily,
    /// Bitstream-generator flavour (Opt-4 switches to `SplitterShared`).
    pub bitgen: BitgenKind,
    /// Broadcast parallelism #BS (Opt-5 reduces 8 → 1).
    pub bs: u32,
    /// JPM readout organization (Opt-3 / Opt-8).
    pub sharing: JpmSharing,
    /// Opt-8 fast resonator driving (48 GHz burst).
    pub fast_driving: bool,
    /// 4K–mK interconnect.
    pub wire: WireKind,
}

impl SfqConfig {
    /// The paper's RSFQ baseline (Fig. 13b leftmost bars).
    pub fn baseline_rsfq() -> Self {
        SfqConfig {
            family: SfqFamily::Rsfq,
            bitgen: BitgenKind::PerPhiShiftRegisters,
            bs: 8,
            sharing: JpmSharing::Unshared,
            fast_driving: false,
            wire: WireKind::SuperconductingCoax,
        }
    }

    /// RSFQ with Opt-3/4/5 applied (the 1,248-qubit design).
    pub fn near_term_optimized() -> Self {
        SfqConfig {
            bitgen: BitgenKind::SplitterShared,
            bs: 1,
            sharing: JpmSharing::SharedPipelined,
            ..SfqConfig::baseline_rsfq()
        }
    }

    /// ERSFQ with Opt-8 (the 82,413-qubit long-term design).
    pub fn long_term_ersfq() -> Self {
        SfqConfig {
            family: SfqFamily::Ersfq,
            bitgen: BitgenKind::SplitterShared,
            bs: 1,
            sharing: JpmSharing::Unshared,
            fast_driving: true,
            wire: WireKind::SuperconductingMicrostrip,
        }
    }

    /// The readout schedule implied by this configuration.
    pub fn readout_schedule(&self) -> ReadoutSchedule {
        ReadoutSchedule {
            driving_ns: if self.fast_driving {
                readout::FAST_DRIVING_NS
            } else {
                readout::DRIVING_NS
            },
            sharing: self.sharing,
        }
    }

    /// ESM timing profile.
    ///
    /// All ancillas receive the *same* basis gate each layer, so SFQ
    /// broadcasting never serializes single-qubit layers regardless of #BS
    /// (this is exactly the Opt-5 observation).
    pub fn esm_profile(&self) -> EsmProfile {
        EsmProfile {
            h_layer_ns: ONE_Q_NS,
            cz_phase_ns: 4.0 * TWO_Q_NS,
            readout_ns: self.readout_schedule().group_latency_ns(),
        }
    }

    /// Assembles the full component/wire inventory.
    pub fn build(&self) -> QciArch {
        qisim_obs::span!("microarch.build");
        qisim_obs::counter!("microarch.builds");
        let tech_4k = SfqTech::new(self.family, SfqStage::Cryo4K);
        let tech_mk = SfqTech::new(self.family, SfqStage::MilliKelvin);
        let esm = self.esm_profile();
        let cycle = esm.cycle_ns();
        let gate_duty = 2.0 * esm.h_layer_ns / cycle;
        let cz_duty = 0.5 * esm.cz_phase_ns / cycle;
        let readout_duty = esm.readout_ns / cycle;

        let mut components = Vec::new();
        components.extend(drive::components(tech_4k, self.bitgen, self.bs, DRIVE_GROUP, gate_duty));
        components.extend(pulse::components(tech_4k, cz_duty));
        components.extend(readout::four_k_components(tech_4k, readout_duty));
        components.extend(readout::mk_components(tech_mk, self.sharing));
        // Clock distribution and inter-block JTL interconnect — the silent
        // majority of any SFQ chip's junction count.
        components.push(Component {
            name: "SFQ clock/interconnect JTL".into(),
            stage: qisim_hal::fridge::Stage::K4,
            resource: Resource::SfqCells {
                tech: tech_4k,
                cells: vec![(SfqCell::Jtl, 2000), (SfqCell::Splitter, 100)],
                activity: 0.5,
            },
            qubits_per_instance: 1.0,
            duty: 1.0,
        });

        // SFQ lines carry attojoule flux quanta, not attenuated
        // microwaves: their signal dissipation is already counted as the
        // devices' switching energy, so the cables contribute passive heat
        // only (duty 0 disables the microwave-attenuator active load).
        let readout_share = match self.sharing {
            JpmSharing::Unshared => 1.0,
            _ => readout::SHARING_DEGREE as f64,
        };
        let wires = vec![
            WirePlan {
                name: "drive pulse lines",
                kind: self.wire,
                qubits_per_cable: 1.0,
                duty: 0.0,
            },
            WirePlan {
                name: "flux/pulse lines",
                kind: self.wire,
                qubits_per_cable: 1.0,
                duty: 0.0,
            },
            WirePlan {
                name: "readout send lines",
                kind: self.wire,
                qubits_per_cable: readout_share,
                duty: 0.0,
            },
            WirePlan {
                name: "readout return lines",
                kind: self.wire,
                qubits_per_cable: readout_share,
                duty: 0.0,
            },
        ];
        let _ = readout_duty;

        let traffic = EsmTraffic::standard_esm();
        let bw = traffic.bandwidth_bps_per_qubit(
            &IsaFormat::sfq_drive(self.bs),
            &IsaFormat::pulse_masked(),
            &IsaFormat::readout(),
            DRIVE_GROUP,
            cycle,
        );

        QciArch {
            name: format!(
                "4K SFQ ({:?}, {:?}, #BS={}, {:?}{})",
                self.family,
                self.bitgen,
                self.bs,
                self.sharing,
                if self.fast_driving { ", fast driving" } else { "" }
            ),
            clock_hz: SFQ_CLOCK_HZ,
            components,
            wires,
            instr_bandwidth_bps_per_qubit: bw,
        }
    }
}

impl Default for SfqConfig {
    fn default() -> Self {
        SfqConfig::baseline_rsfq()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qisim_hal::fridge::Stage;

    fn power_per_qubit(arch: &QciArch, stage: Stage, n: u64) -> f64 {
        (arch.device_static_w(stage, n)
            + arch.device_dynamic_w(stage, n)
            + arch.wire_load_w(stage, n))
            / n as f64
    }

    #[test]
    fn baseline_rsfq_is_mk_limited_near_160() {
        let arch = SfqConfig::baseline_rsfq().build();
        let per_mk = power_per_qubit(&arch, Stage::Mk20, 1024);
        let max_mk = Stage::Mk20.cooling_capacity_w() / per_mk;
        assert!(max_mk > 110.0 && max_mk < 220.0, "mK-limited scale {max_mk}");
    }

    #[test]
    fn baseline_rsfq_4k_power_is_milliwatts_per_qubit() {
        let arch = SfqConfig::baseline_rsfq().build();
        let per_4k = power_per_qubit(&arch, Stage::K4, 1024);
        // Calibration: ~2.8 mW/qubit → 4K-limited scale ~540.
        assert!(per_4k > 2.0e-3 && per_4k < 3.6e-3, "4K per-qubit {per_4k}");
    }

    #[test]
    fn drive_is_roughly_70pct_of_rsfq_4k_power() {
        let arch = SfqConfig::baseline_rsfq().build();
        let n = 1024;
        let total = arch.device_static_w(Stage::K4, n) + arch.device_dynamic_w(Stage::K4, n);
        let drive: f64 = arch
            .components
            .iter()
            .filter(|c| c.name.starts_with("SFQ drive"))
            .map(|c| c.instances(n) * c.power_w(arch.clock_hz))
            .sum();
        let frac = drive / total;
        assert!((frac - 0.717).abs() < 0.08, "drive fraction {frac}");
    }

    #[test]
    fn near_term_opts_unlock_1k_qubits() {
        let arch = SfqConfig::near_term_optimized().build();
        let n = 1248;
        let p4k = power_per_qubit(&arch, Stage::K4, n) * n as f64;
        let pmk = power_per_qubit(&arch, Stage::Mk20, n) * n as f64;
        assert!(p4k < Stage::K4.cooling_capacity_w() * 1.15, "4K at 1248 = {p4k}");
        assert!(pmk < Stage::Mk20.cooling_capacity_w() * 1.15, "mK at 1248 = {pmk}");
    }

    #[test]
    fn ersfq_removes_static_power_entirely() {
        let arch = SfqConfig::long_term_ersfq().build();
        assert_eq!(arch.device_static_w(Stage::K4, 1024), 0.0);
        assert_eq!(arch.device_static_w(Stage::Mk20, 1024), 0.0);
    }

    #[test]
    fn ersfq_supports_60k_qubits_on_power() {
        let arch = SfqConfig::long_term_ersfq().build();
        let n = 82_413;
        let p4k = arch.device_dynamic_w(Stage::K4, n) + arch.wire_load_w(Stage::K4, n);
        let pmk = arch.device_dynamic_w(Stage::Mk20, n) + arch.wire_load_w(Stage::Mk20, n);
        assert!(p4k < Stage::K4.cooling_capacity_w(), "4K at 82k = {p4k}");
        assert!(pmk < Stage::Mk20.cooling_capacity_w(), "mK at 82k = {pmk}");
    }

    #[test]
    fn esm_cycle_reflects_readout_schedule() {
        let base = SfqConfig::baseline_rsfq().esm_profile();
        assert!((base.cycle_ns() - (50.0 + 200.0 + 665.0)).abs() < 1e-9);
        let naive = SfqConfig { sharing: JpmSharing::SharedNaive, ..SfqConfig::baseline_rsfq() };
        assert!(naive.esm_profile().cycle_ns() > 5000.0);
        let opt8 = SfqConfig::long_term_ersfq().esm_profile();
        assert!(opt8.cycle_ns() < base.cycle_ns());
    }

    #[test]
    fn sfq_never_serializes_1q_layers() {
        for bs in [1, 8] {
            let cfg = SfqConfig { bs, ..SfqConfig::baseline_rsfq() };
            assert_eq!(cfg.esm_profile().h_layer_ns, ONE_Q_NS);
        }
        let _ = TWO_Q_NS;
    }
}
