//! 4 K SFQ drive circuit (§3.4.1): DigiQ-style bitstream drive with the
//! paper's **re-designed** control-data buffer and bitstream generator.
//!
//! The drive applies `Ry(π/2)·Rz(φ)` basis gates as SFQ pulse trains: a
//! short burst of pulses tips the qubit by π/2 around y, and the *idle
//! time before the burst* sets φ through free z-precession. The bitstream
//! generator therefore only needs **one** stored `Ry(π/2)` pulse pattern
//! and a bank of output shift registers with different numbers of DFF
//! delays — each delay realizing a different `Rz(NΔφ)` (Fig. 5b).
//!
//! Opt-4 replaces the 256 output shift registers with a single
//! splitter-equipped register; Opt-5 reduces the broadcast parallelism
//! #BS from 8 to 1 (FTQC workloads never need eight distinct simultaneous
//! single-qubit gates).

use crate::inventory::{Component, Resource};
use qisim_hal::fridge::Stage;
use qisim_hal::sfq::{SfqCell, SfqTech};

/// Number of distinct `Rz(NΔφ)` values the generator provides (8-bit φ
/// select; §5.1.2's 16-bit Rz field addresses pairs of these).
pub const RZ_VARIANTS: usize = 256;
/// Length of the `Ry(π/2)` pulse section in QCI clock cycles (5-bit).
pub const RY_SECTION_BITS: usize = 5;
/// Total bitstream register length in QCI clock cycles (21-bit: 5-bit Ry +
/// 16-bit Rz idle section, §5.1.2).
pub const BITSTREAM_BITS: usize = 21;

/// An SFQ pulse pattern clocked at the QCI frequency: `true` = pulse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitstream {
    bits: Vec<bool>,
}

impl Bitstream {
    /// Creates a bitstream from explicit pulse positions.
    pub fn new(bits: Vec<bool>) -> Self {
        Bitstream { bits }
    }

    /// The base `Ry(π/2)` pattern: `RY_SECTION_BITS` consecutive pulses at
    /// the head of a `BITSTREAM_BITS`-cycle frame.
    pub fn ry_base() -> Self {
        let mut bits = vec![false; BITSTREAM_BITS];
        for b in bits.iter_mut().take(RY_SECTION_BITS) {
            *b = true;
        }
        Bitstream { bits }
    }

    /// Delays the pattern by `dffs` cycles (prepends idle time) — the
    /// free-precession `Rz` knob. The frame grows by the delay.
    pub fn delayed(&self, dffs: usize) -> Self {
        let mut bits = vec![false; dffs];
        bits.extend_from_slice(&self.bits);
        Bitstream { bits }
    }

    /// Raw pulse pattern.
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }

    /// Number of pulses in the pattern.
    pub fn pulse_count(&self) -> usize {
        self.bits.iter().filter(|b| **b).count()
    }

    /// Index of the first pulse, or `None` for an all-idle stream.
    pub fn first_pulse(&self) -> Option<usize> {
        self.bits.iter().position(|b| *b)
    }
}

/// Behavioral bitstream generator: one stored base pattern, `RZ_VARIANTS`
/// delayed outputs.
#[derive(Debug, Clone)]
pub struct BitstreamGenerator {
    base: Bitstream,
}

impl BitstreamGenerator {
    /// Generator loaded with the standard `Ry(π/2)` base pattern.
    pub fn standard() -> Self {
        BitstreamGenerator { base: Bitstream::ry_base() }
    }

    /// Output of the `phi_index`-th shift register: the base pattern
    /// delayed by `phi_index` DFFs.
    ///
    /// # Panics
    ///
    /// Panics if `phi_index >= RZ_VARIANTS`.
    pub fn output(&self, phi_index: usize) -> Bitstream {
        assert!(phi_index < RZ_VARIANTS, "φ select out of range");
        self.base.delayed(phi_index)
    }

    /// The `Rz` angle realized by output `phi_index` for a qubit of
    /// frequency `f_qubit_hz` clocked at `f_qci_hz`: `φ = 2π·f_q·k/f_QCI`
    /// (mod 2π).
    pub fn rz_angle(&self, phi_index: usize, f_qubit_hz: f64, f_qci_hz: f64) -> f64 {
        assert!(phi_index < RZ_VARIANTS, "φ select out of range");
        let turns = f_qubit_hz * phi_index as f64 / f_qci_hz;
        turns.rem_euclid(1.0) * std::f64::consts::TAU
    }
}

/// Behavioral control-data buffer (Fig. 5b): shift registers collect the
/// next instruction bit-serially while the NDRO memory broadcasts the
/// current one every cycle.
#[derive(Debug, Clone)]
pub struct ControlDataBuffer {
    width: usize,
    shift: Vec<bool>,
    ndro: Vec<bool>,
}

impl ControlDataBuffer {
    /// Creates a buffer for `width`-bit instructions.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn new(width: usize) -> Self {
        assert!(width > 0, "instruction width must be positive");
        ControlDataBuffer { width, shift: vec![false; width], ndro: vec![false; width] }
    }

    /// Shifts one instruction bit in (clocked by the *Valid* signal).
    pub fn shift_in(&mut self, bit: bool) {
        self.shift.rotate_right(1);
        self.shift[0] = bit;
    }

    /// The *Go* signal: latches the shift registers into the NDRO memory.
    pub fn go(&mut self) {
        self.ndro.copy_from_slice(&self.shift);
    }

    /// The currently-broadcast instruction (NDRO reads are non-destructive,
    /// so this may be called every cycle).
    pub fn current(&self) -> &[bool] {
        &self.ndro
    }

    /// Instruction width in bits.
    pub fn width(&self) -> usize {
        self.width
    }
}

/// Per-qubit controller: selects one of the #BS broadcast lanes (or idles).
///
/// # Panics
///
/// Panics if `select` is `Some(lane)` with `lane >= lanes.len()`.
pub fn select_lane(lanes: &[Bitstream], select: Option<usize>) -> Option<&Bitstream> {
    match select {
        None => None,
        Some(lane) => {
            assert!(lane < lanes.len(), "lane select out of range");
            Some(&lanes[lane])
        }
    }
}

/// Bitstream-generator flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BitgenKind {
    /// DigiQ-style: 256 output shift registers (power-hungry baseline).
    PerPhiShiftRegisters,
    /// Opt-4: one splitter-equipped shift register.
    SplitterShared,
}

impl BitgenKind {
    /// Stable text-codec label (`qisim::codec`).
    pub fn label(self) -> &'static str {
        match self {
            BitgenKind::PerPhiShiftRegisters => "per_phi_shift_registers",
            BitgenKind::SplitterShared => "splitter_shared",
        }
    }

    /// Inverse of [`BitgenKind::label`]; `None` for unknown labels.
    pub fn from_label(label: &str) -> Option<BitgenKind> {
        [BitgenKind::PerPhiShiftRegisters, BitgenKind::SplitterShared]
            .into_iter()
            .find(|k| k.label() == label)
    }
}

/// Cell inventory of the bitstream generator (shared by `group` qubits).
pub fn bitgen_cells(kind: BitgenKind) -> Vec<(SfqCell, u64)> {
    match kind {
        BitgenKind::PerPhiShiftRegisters => vec![
            // 256 output shift registers × 21 DFFs.
            (SfqCell::Dff, (RZ_VARIANTS * BITSTREAM_BITS) as u64),
            // Broadcast tree feeding them.
            (SfqCell::Splitter, (RZ_VARIANTS - 1) as u64),
        ],
        BitgenKind::SplitterShared => vec![
            // One shared 21-bit register...
            (SfqCell::Dff, BITSTREAM_BITS as u64),
            // ...tapped by a splitter per φ output.
            (SfqCell::Splitter, (RZ_VARIANTS - 1) as u64),
        ],
    }
}

/// Builds the SFQ drive inventory.
///
/// * `tech` — 4 K SFQ operating point (RSFQ or ERSFQ);
/// * `bitgen` — generator flavour (Opt-4 toggles this);
/// * `bs` — broadcast parallelism #BS (Opt-5 reduces 8 → 1);
/// * `group` — qubits sharing one generator/controller (8);
/// * `gate_duty` — fraction of the ESM cycle single-qubit gates play.
pub fn components(
    tech: SfqTech,
    bitgen: BitgenKind,
    bs: u32,
    group: u32,
    gate_duty: f64,
) -> Vec<Component> {
    assert!(bs >= 1, "#BS must be at least 1");
    vec![
        Component {
            name: format!("SFQ drive bitstream generator ({bitgen:?})"),
            stage: Stage::K4,
            resource: Resource::SfqCells { tech, cells: bitgen_cells(bitgen), activity: 0.2 },
            qubits_per_instance: group as f64,
            duty: gate_duty,
        },
        // Bitstream controller: one 256:1 serial-stream selector per lane.
        Component {
            name: "SFQ drive bitstream controller".into(),
            stage: Stage::K4,
            resource: Resource::SfqCells {
                tech,
                cells: vec![
                    (SfqCell::Mux2, (RZ_VARIANTS as u64 - 1) * bs as u64),
                    (SfqCell::Jtl, 20 * bs as u64),
                ],
                activity: 0.15,
            },
            qubits_per_instance: group as f64,
            duty: gate_duty,
        },
        // Per-qubit lane receiver: NDRO gate + merger + JTL run per lane.
        Component {
            name: "SFQ drive per-qubit receiver".into(),
            stage: Stage::K4,
            resource: Resource::SfqCells {
                tech,
                cells: vec![
                    (SfqCell::Ndro, bs as u64),
                    (SfqCell::Merger, bs as u64),
                    (SfqCell::Jtl, 117 * bs as u64),
                ],
                activity: 0.15,
            },
            qubits_per_instance: 1.0,
            duty: gate_duty,
        },
        // Per-qubit control-data buffer (42-bit instructions).
        Component {
            name: "SFQ drive control-data buffer".into(),
            stage: Stage::K4,
            resource: Resource::SfqCells {
                tech,
                cells: vec![(SfqCell::Dff, 42), (SfqCell::Ndro, 42)],
                activity: 0.2,
            },
            qubits_per_instance: 1.0,
            duty: gate_duty,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use qisim_hal::sfq::{SfqFamily, SfqStage, SfqTech};

    #[test]
    fn ry_base_has_five_leading_pulses() {
        let b = Bitstream::ry_base();
        assert_eq!(b.pulse_count(), RY_SECTION_BITS);
        assert_eq!(b.first_pulse(), Some(0));
        assert_eq!(b.bits().len(), BITSTREAM_BITS);
    }

    #[test]
    fn delay_shifts_pulses_not_count() {
        let g = BitstreamGenerator::standard();
        for k in [0usize, 1, 100, 255] {
            let out = g.output(k);
            assert_eq!(out.pulse_count(), RY_SECTION_BITS);
            assert_eq!(out.first_pulse(), Some(k));
        }
    }

    #[test]
    fn rz_angle_wraps_mod_2pi() {
        let g = BitstreamGenerator::standard();
        // 5 GHz qubit, 24 GHz clock: one delay step = 2π·5/24.
        let step = g.rz_angle(1, 5.0e9, 24.0e9);
        assert!((step - std::f64::consts::TAU * 5.0 / 24.0).abs() < 1e-12);
        let a24 = g.rz_angle(24, 5.0e9, 24.0e9);
        // 24 steps = 5 full turns → 0.
        assert!(a24 < 1e-9 || (std::f64::consts::TAU - a24) < 1e-9);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn phi_select_out_of_range_panics() {
        let _ = BitstreamGenerator::standard().output(RZ_VARIANTS);
    }

    #[test]
    fn control_data_buffer_double_buffers() {
        let mut cdb = ControlDataBuffer::new(4);
        for bit in [true, false, true, true] {
            cdb.shift_in(bit);
        }
        // Still broadcasting the old (empty) instruction.
        assert_eq!(cdb.current(), &[false; 4]);
        cdb.go();
        assert_eq!(cdb.current(), &[true, true, false, true]);
        // Shifting a new instruction does not disturb the broadcast.
        cdb.shift_in(false);
        assert_eq!(cdb.current(), &[true, true, false, true]);
    }

    #[test]
    fn lane_selection() {
        let g = BitstreamGenerator::standard();
        let lanes = vec![g.output(0), g.output(7)];
        assert!(select_lane(&lanes, None).is_none());
        assert_eq!(select_lane(&lanes, Some(1)).unwrap().first_pulse(), Some(7));
    }

    #[test]
    fn opt4_bitgen_saves_more_than_95pct_of_jjs() {
        let base = SfqTech::total_jj(&bitgen_cells(BitgenKind::PerPhiShiftRegisters));
        let opt = SfqTech::total_jj(&bitgen_cells(BitgenKind::SplitterShared));
        let cut = 1.0 - opt as f64 / base as f64;
        assert!(cut > 0.95, "Opt-4 JJ cut {cut}");
    }

    #[test]
    fn opt5_cuts_bs_proportional_power() {
        let tech = SfqTech::new(SfqFamily::Rsfq, SfqStage::Cryo4K);
        let p = |bs: u32| -> f64 {
            components(tech, BitgenKind::SplitterShared, bs, 8, 0.3)
                .iter()
                .map(|c| c.instances(8) * c.power_w(24e9))
                .sum()
        };
        let p8 = p(8);
        let p1 = p(1);
        assert!(p1 < 0.6 * p8, "#BS 8→1: {p1} vs {p8}");
    }

    #[test]
    fn drive_dominates_rsfq_4k_power() {
        // §6.3.2: the drive circuit is ~71.7 % of RSFQ 4 K power; here we
        // check the weaker invariant that its static power per qubit is
        // milliwatt-scale (the scalability killer).
        let tech = SfqTech::new(SfqFamily::Rsfq, SfqStage::Cryo4K);
        let per_qubit: f64 = components(tech, BitgenKind::PerPhiShiftRegisters, 8, 8, 0.3)
            .iter()
            .map(|c| c.instances(8) * c.static_power_w())
            .sum::<f64>()
            / 8.0;
        assert!(per_qubit > 1.0e-3 && per_qubit < 4.0e-3, "drive/qubit {per_qubit}");
    }
}
