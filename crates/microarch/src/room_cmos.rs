//! 300 K CMOS QCIs (§3.1, §3.2): today's rack electronics driving the
//! qubits through 300K–mK cables, in three interconnect flavours —
//! coaxial cable, flexible microstrip, and photonic link.
//!
//! The defining property of the 300 K designs is that all digital/analog
//! generation happens *outside* the refrigerator: the fridge only sees the
//! cables' passive heat leaks, the dissipated signal (active load), the
//! 20 mK photodetectors of the photonic variant, and the 100 mK TWPA pumps.
//! That is why the paper finds them to have "little room for architectural
//! innovation": their scalability is entirely a wire story (Fig. 12).

use crate::cryo_cmos::{EsmProfile, ONE_Q_NS, READOUT_NS, TWO_Q_NS};
use crate::inventory::{Component, QciArch, Resource, WirePlan};
use qisim_hal::analog;
use qisim_hal::fridge::Stage;
use qisim_hal::wire::WireKind;

/// The electrical interconnect of a 300 K QCI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RoomInterconnect {
    /// Stainless coaxial cable (baseline, Fig. 12a).
    Coax,
    /// Flexible multi-channel microstrip (Fig. 12b).
    Microstrip,
    /// Photonic link with 20 mK photodetectors (Fig. 12c).
    Photonic,
}

impl RoomInterconnect {
    /// Display name.
    pub fn label(self) -> &'static str {
        match self {
            RoomInterconnect::Coax => "coaxial cable",
            RoomInterconnect::Microstrip => "microstrip",
            RoomInterconnect::Photonic => "photonic link",
        }
    }
}

/// ESM timing profile of a 300 K QCI.
///
/// The electrical variants share one AWG among 32 qubits (state-of-the-art
/// FDM) and serialize single-qubit gates exactly like the 4 K CMOS design;
/// the photonic variant has a *per-qubit* AWG, so nothing serializes.
pub fn esm_profile(kind: RoomInterconnect) -> EsmProfile {
    match kind {
        RoomInterconnect::Coax | RoomInterconnect::Microstrip => {
            EsmProfile::for_cmos(32, READOUT_NS)
        }
        RoomInterconnect::Photonic => {
            EsmProfile { h_layer_ns: ONE_Q_NS, cz_phase_ns: 4.0 * TWO_Q_NS, readout_ns: READOUT_NS }
        }
    }
}

/// Builds the 300 K QCI architecture for the chosen interconnect.
pub fn build(kind: RoomInterconnect) -> QciArch {
    qisim_obs::span!("microarch.build");
    qisim_obs::counter!("microarch.builds");
    let esm = esm_profile(kind);
    // The 300 K rack electronics (AWGs, readout analyzers, EOM drivers)
    // dissipate outside the refrigerator and are not budget-constrained,
    // so — like the paper — they are not part of the inventory. Only the
    // in-fridge hardware appears below.
    let components = vec![
        // TWPA pump at 100 mK, one per 8-qubit readout chain.
        Component {
            name: "RX TWPA pump".into(),
            stage: Stage::Mk100,
            resource: Resource::Analog(analog::TWPA),
            qubits_per_instance: 8.0,
            duty: esm.readout_line_duty(),
        },
    ];

    let wires = match kind {
        RoomInterconnect::Coax | RoomInterconnect::Microstrip => {
            let w =
                if kind == RoomInterconnect::Coax { WireKind::Coax } else { WireKind::Microstrip };
            vec![
                WirePlan {
                    name: "drive lines",
                    kind: w,
                    qubits_per_cable: 32.0,
                    duty: esm.drive_bank_duty(),
                },
                WirePlan {
                    name: "TX lines",
                    kind: w,
                    qubits_per_cable: 8.0,
                    duty: esm.readout_line_duty(),
                },
                WirePlan {
                    name: "RX lines",
                    kind: w,
                    qubits_per_cable: 8.0,
                    duty: esm.readout_line_duty(),
                },
                WirePlan {
                    name: "flux/pulse lines",
                    kind: w,
                    qubits_per_cable: 1.0,
                    duty: esm.cz_duty(),
                },
            ]
        }
        RoomInterconnect::Photonic => {
            vec![
                // Per-qubit optical drive link: the 20 mK photodetector's
                // 790 nW dissipation is the wire's active load.
                WirePlan {
                    name: "drive photonic links",
                    kind: WireKind::PhotonicLink,
                    qubits_per_cable: 1.0,
                    duty: esm.per_qubit_gate_duty(),
                },
                // Per-qubit optical TX link (readout drive).
                WirePlan {
                    name: "TX photonic links",
                    kind: WireKind::PhotonicLink,
                    qubits_per_cable: 1.0,
                    duty: esm.readout_bank_duty(),
                },
                // Reflected readout returns optically through the mK EOM;
                // the EOM modulates passively, so only fiber passive load.
                WirePlan {
                    name: "RX optical return",
                    kind: WireKind::PhotonicLink,
                    qubits_per_cable: 8.0,
                    duty: 0.0,
                },
                // No two-qubit-gate demonstration over photonics (§3.2):
                // the pulse circuit keeps per-qubit microstrips.
                WirePlan {
                    name: "flux/pulse microstrips",
                    kind: WireKind::Microstrip,
                    qubits_per_cable: 1.0,
                    duty: esm.cz_duty(),
                },
            ]
        }
    };

    QciArch {
        name: format!("300K CMOS ({})", kind.label()),
        clock_hz: 2.5e9,
        components,
        wires,
        // Instructions never cross the fridge boundary: the AWGs sit in
        // the rack next to the control processor.
        instr_bandwidth_bps_per_qubit: 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk_power_per_qubit(kind: RoomInterconnect, stage: Stage) -> f64 {
        let arch = build(kind);
        let n = 1024;
        (arch.wire_load_w(stage, n)
            + arch.device_static_w(stage, n)
            + arch.device_dynamic_w(stage, n))
            / n as f64
    }

    #[test]
    fn coax_is_bound_near_400_qubits_at_100mk() {
        let per_qubit = mk_power_per_qubit(RoomInterconnect::Coax, Stage::Mk100);
        let max = Stage::Mk100.cooling_capacity_w() / per_qubit;
        assert!(max > 300.0 && max < 500.0, "coax scalability {max}");
    }

    #[test]
    fn microstrip_is_bound_near_650_qubits_at_100mk() {
        let per_qubit = mk_power_per_qubit(RoomInterconnect::Microstrip, Stage::Mk100);
        let max = Stage::Mk100.cooling_capacity_w() / per_qubit;
        assert!(max > 500.0 && max < 850.0, "microstrip scalability {max}");
    }

    #[test]
    fn photonic_is_bound_near_70_qubits_at_20mk() {
        let per_qubit = mk_power_per_qubit(RoomInterconnect::Photonic, Stage::Mk20);
        let max = Stage::Mk20.cooling_capacity_w() / per_qubit;
        assert!(max > 40.0 && max < 110.0, "photonic scalability {max}");
    }

    #[test]
    fn ordering_matches_fig12() {
        // photonic << coax < microstrip in manageable qubits.
        let scal = |k, s| Stage::Mk100.cooling_capacity_w().min(1e9) / mk_power_per_qubit(k, s);
        let coax = Stage::Mk100.cooling_capacity_w()
            / mk_power_per_qubit(RoomInterconnect::Coax, Stage::Mk100);
        let ustrip = Stage::Mk100.cooling_capacity_w()
            / mk_power_per_qubit(RoomInterconnect::Microstrip, Stage::Mk100);
        let photonic = Stage::Mk20.cooling_capacity_w()
            / mk_power_per_qubit(RoomInterconnect::Photonic, Stage::Mk20);
        assert!(photonic < coax && coax < ustrip);
        let _ = scal; // silence helper when unused in future edits
    }

    #[test]
    fn no_instruction_link_heat() {
        for k in [RoomInterconnect::Coax, RoomInterconnect::Microstrip, RoomInterconnect::Photonic]
        {
            assert_eq!(build(k).instr_bandwidth_bps_per_qubit, 0.0);
        }
    }

    #[test]
    fn photonic_has_no_fdm_serialization() {
        let e = esm_profile(RoomInterconnect::Photonic);
        assert_eq!(e.h_layer_ns, ONE_Q_NS);
        let e_el = esm_profile(RoomInterconnect::Coax);
        assert!(e_el.h_layer_ns > e.h_layer_ns);
    }

    #[test]
    fn four_kelvin_does_not_bind_300k_designs() {
        // Fig. 12: 300 K designs die at the mK stages, not at 4 K.
        for k in [RoomInterconnect::Coax, RoomInterconnect::Microstrip] {
            let p4k = mk_power_per_qubit(k, Stage::K4);
            let pmk = mk_power_per_qubit(k, Stage::Mk100);
            let max4k = Stage::K4.cooling_capacity_w() / p4k;
            let maxmk = Stage::Mk100.cooling_capacity_w() / pmk;
            assert!(max4k > maxmk, "{k:?}: 4K {max4k} vs mK {maxmk}");
        }
    }
}
