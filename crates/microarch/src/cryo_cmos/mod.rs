//! The full 4 K CMOS QCI (§3.3): our reproduction of Horse Ridge I & II
//! plus the paper's newly-designed virtual-Rz/Z-correction NCO and
//! arbitrary-ramp pulse circuit.

pub mod drive;
pub mod pulse;
pub mod rx;
pub mod tx;

use crate::inventory::{QciArch, WirePlan};
use crate::isa::{EsmTraffic, IsaFormat};
use qisim_hal::cmos::CmosTech;
use qisim_hal::wire::WireKind;

pub use rx::DecisionKind;

/// Per-operation latencies of the CMOS QCI (Table 2).
pub const ONE_Q_NS: f64 = 25.0;
/// CZ gate latency in ns (Table 2).
pub const TWO_Q_NS: f64 = 50.0;
/// Baseline dispersive readout latency in ns (Table 2).
pub const READOUT_NS: f64 = 517.0;
/// CMOS digital clock (Table 2).
pub const CMOS_CLOCK_HZ: f64 = 2.5e9;
/// Mean latency of the Opt-7 multi-round readout in ns (Fig. 19b:
/// 40.9 % faster than the 517 ns baseline).
pub const MULTI_ROUND_READOUT_NS: f64 = 305.6;

/// Steady-state ESM timing profile used to derive power duty cycles. The
/// cycle-accurate simulator (`qisim-cyclesim`) computes the same structure
/// from the instruction stream; a cross-crate test asserts they agree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EsmProfile {
    /// Duration of one serialized single-qubit (H) layer in ns.
    pub h_layer_ns: f64,
    /// Total CZ phase (four lattice-surgery CZ layers) in ns.
    pub cz_phase_ns: f64,
    /// Readout duration in ns.
    pub readout_ns: f64,
}

impl EsmProfile {
    /// Profile for a CMOS QCI with drive FDM degree `fdm`.
    ///
    /// Within one drive line's FDM group (half of whose members are
    /// ancillas needing a Hadamard each layer), two gates play at a time
    /// (Horse Ridge I's two banks), so one H layer takes
    /// `(fdm/2)/2 × 25 ns`.
    ///
    /// # Panics
    ///
    /// Panics if `fdm == 0`.
    pub fn for_cmos(fdm: u32, readout_ns: f64) -> Self {
        assert!(fdm > 0, "FDM degree must be positive");
        let ancillas_per_line = (fdm as f64 / 2.0).ceil();
        let serial_slots = (ancillas_per_line / 2.0).ceil().max(1.0);
        EsmProfile { h_layer_ns: serial_slots * ONE_Q_NS, cz_phase_ns: 4.0 * TWO_Q_NS, readout_ns }
    }

    /// Total ESM round time in ns (two H layers + CZ phase + readout).
    pub fn cycle_ns(&self) -> f64 {
        2.0 * self.h_layer_ns + self.cz_phase_ns + self.readout_ns
    }

    /// Duty of the shared drive bank (active through both H layers).
    pub fn drive_bank_duty(&self) -> f64 {
        2.0 * self.h_layer_ns / self.cycle_ns()
    }

    /// Average duty of one qubit's envelope memory (ancillas see two 25 ns
    /// gates per round; data qubits none).
    pub fn per_qubit_gate_duty(&self) -> f64 {
        0.5 * 2.0 * ONE_Q_NS / self.cycle_ns()
    }

    /// Average duty of the per-qubit pulse circuit (each CZ pulses one of
    /// the pair, so a qubit is pulsed in about half of the four layers).
    pub fn cz_duty(&self) -> f64 {
        0.5 * self.cz_phase_ns / self.cycle_ns()
    }

    /// Duty of shared readout lines (active through the readout window).
    pub fn readout_line_duty(&self) -> f64 {
        self.readout_ns / self.cycle_ns()
    }

    /// Average duty of a per-qubit RX bank (ancillas only).
    pub fn readout_bank_duty(&self) -> f64 {
        0.5 * self.readout_line_duty()
    }
}

/// Configuration of a 4 K CMOS QCI design.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CryoCmosConfig {
    /// CMOS operating point (baseline: 14 nm at 4 K; long-term: 7 nm
    /// voltage-scaled).
    pub tech: CmosTech,
    /// Drive DAC precision in bits (baseline 14; Opt-2 uses 6).
    pub drive_bits: u32,
    /// Drive FDM degree (baseline 32; Opt-7 reduces to 20).
    pub drive_fdm: u32,
    /// RX state-decision unit (baseline bin counting; Opt-1 memoryless).
    pub decision: DecisionKind,
    /// 4K–mK interconnect (near-term superconducting coax; long-term
    /// superconducting microstrip).
    pub wire: WireKind,
    /// Opt-6 FTQC-friendly instruction masking.
    pub masked_isa: bool,
    /// Readout duration in ns (baseline 517; Opt-7 multi-round averages
    /// ~305.6).
    pub readout_ns: f64,
    /// Power scale applied to the analog chains. The paper's long-term
    /// technology + voltage scaling (4.15× and 16×, §6.4.1) is quoted
    /// against the whole 4 K power (Fig. 17a), so the advanced design
    /// scales its analog blocks by the same combined 1/66.4.
    pub analog_scale: f64,
}

impl CryoCmosConfig {
    /// The paper's near-term 4 K CMOS baseline (Fig. 13a, leftmost bars).
    pub fn baseline() -> Self {
        CryoCmosConfig {
            tech: CmosTech::baseline_4k(),
            drive_bits: 14,
            drive_fdm: 32,
            decision: DecisionKind::BinCounting,
            wire: WireKind::SuperconductingCoax,
            masked_isa: false,
            readout_ns: READOUT_NS,
            analog_scale: 1.0,
        }
    }

    /// The paper's long-term "advanced 4K CMOS" design (Fig. 17a): 7 nm,
    /// voltage-scaled, Opt-1/2/6/7 applied, superconducting microstrip.
    pub fn long_term() -> Self {
        CryoCmosConfig {
            tech: CmosTech::advanced_4k(),
            drive_bits: 6,
            drive_fdm: 20,
            decision: DecisionKind::Memoryless,
            wire: WireKind::SuperconductingMicrostrip,
            masked_isa: true,
            readout_ns: MULTI_ROUND_READOUT_NS,
            analog_scale: 1.0 / (4.15 * 16.0),
        }
    }

    /// The ESM timing profile of this configuration.
    pub fn esm_profile(&self) -> EsmProfile {
        EsmProfile::for_cmos(self.drive_fdm, self.readout_ns)
    }

    /// Assembles the full component/wire inventory.
    pub fn build(&self) -> QciArch {
        qisim_obs::span!("microarch.build");
        qisim_obs::counter!("microarch.builds");
        assert!(self.analog_scale > 0.0, "analog scale must be positive");
        let esm = self.esm_profile();
        let mut components = Vec::new();
        components.extend(drive::components(
            self.tech,
            self.drive_bits,
            self.drive_fdm,
            esm.drive_bank_duty(),
            esm.per_qubit_gate_duty(),
        ));
        components.extend(pulse::components(self.tech, esm.cz_duty()));
        components.extend(tx::components(self.tech, esm.readout_line_duty()));
        components.extend(rx::components(
            self.tech,
            self.decision,
            esm.readout_bank_duty(),
            esm.readout_line_duty(),
        ));
        if self.analog_scale != 1.0 {
            for c in &mut components {
                if let crate::inventory::Resource::Analog(block) = &mut c.resource {
                    block.active_power_w *= self.analog_scale;
                    block.idle_power_w *= self.analog_scale;
                }
            }
        }

        let wires = vec![
            WirePlan {
                name: "drive lines",
                kind: self.wire,
                qubits_per_cable: self.drive_fdm as f64,
                duty: esm.drive_bank_duty(),
            },
            WirePlan {
                name: "TX lines",
                kind: self.wire,
                qubits_per_cable: 8.0,
                duty: esm.readout_line_duty(),
            },
            WirePlan {
                name: "RX lines",
                kind: self.wire,
                qubits_per_cable: 8.0,
                duty: esm.readout_line_duty(),
            },
            WirePlan {
                name: "flux/pulse lines",
                kind: self.wire,
                qubits_per_cable: 1.0,
                duty: esm.cz_duty(),
            },
        ];

        let traffic = if self.masked_isa {
            // Opt-6: H·Rz pairs fuse into single Ry(π/2)·Rz instructions.
            let t = EsmTraffic::standard_esm();
            EsmTraffic { one_q_per_qubit: t.one_q_per_qubit / 2.0, ..t }
        } else {
            EsmTraffic::standard_esm()
        };
        let drive_isa = if self.masked_isa {
            IsaFormat::masked_drive()
        } else {
            IsaFormat::horse_ridge_drive()
        };
        let bw = traffic.bandwidth_bps_per_qubit(
            &drive_isa,
            &IsaFormat::pulse_masked(),
            &IsaFormat::readout(),
            self.drive_fdm,
            esm.cycle_ns(),
        );

        QciArch {
            name: format!(
                "4K CMOS ({:?} nm, {}-bit drive, FDM {}, {:?}{})",
                self.tech.node,
                self.drive_bits,
                self.drive_fdm,
                self.decision,
                if self.masked_isa { ", masked ISA" } else { "" }
            ),
            clock_hz: CMOS_CLOCK_HZ,
            components,
            wires,
            instr_bandwidth_bps_per_qubit: bw,
        }
    }
}

impl Default for CryoCmosConfig {
    fn default() -> Self {
        CryoCmosConfig::baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qisim_hal::fridge::Stage;

    #[test]
    fn baseline_cycle_matches_paper_structure() {
        let esm = CryoCmosConfig::baseline().esm_profile();
        // FDM 32 → 16 ancillas per line, 2 at a time → 8 slots × 25 ns.
        assert_eq!(esm.h_layer_ns, 200.0);
        assert_eq!(esm.cz_phase_ns, 200.0);
        assert_eq!(esm.cycle_ns(), 2.0 * 200.0 + 200.0 + 517.0);
    }

    #[test]
    fn lower_fdm_shortens_the_cycle() {
        let e32 = EsmProfile::for_cmos(32, READOUT_NS);
        let e20 = EsmProfile::for_cmos(20, READOUT_NS);
        assert!(e20.cycle_ns() < e32.cycle_ns());
        assert_eq!(e20.h_layer_ns, 125.0);
    }

    #[test]
    fn duties_are_fractions() {
        let esm = CryoCmosConfig::baseline().esm_profile();
        for d in [
            esm.drive_bank_duty(),
            esm.per_qubit_gate_duty(),
            esm.cz_duty(),
            esm.readout_line_duty(),
            esm.readout_bank_duty(),
        ] {
            assert!(d > 0.0 && d < 1.0, "duty {d}");
        }
    }

    #[test]
    fn baseline_4k_power_per_qubit_near_calibration() {
        // Fig. 13a anchor: the baseline supports <700 qubits on the 1.5 W
        // 4 K budget, i.e. ≈2.1–2.3 mW/qubit.
        let arch = CryoCmosConfig::baseline().build();
        let n = 1024;
        let device = arch.device_static_w(Stage::K4, n) + arch.device_dynamic_w(Stage::K4, n);
        let per_qubit = device / n as f64;
        assert!(per_qubit > 1.8e-3 && per_qubit < 2.6e-3, "4K device power per qubit {per_qubit}");
    }

    #[test]
    fn rx_digital_dominates_baseline() {
        // §6.3.1: RX digital 54.7 %, drive digital 13.3 % of 4 K power.
        let arch = CryoCmosConfig::baseline().build();
        let n = 1024;
        let total =
            (arch.device_static_w(Stage::K4, n) + arch.device_dynamic_w(Stage::K4, n)) / n as f64;
        let rx_digital = arch.group_power_per_qubit_w("RX NCO", n)
            + arch.group_power_per_qubit_w("RX decision", n);
        let drive_digital = arch.group_power_per_qubit_w("drive NCO", n)
            + arch.group_power_per_qubit_w("drive Z", n)
            + arch.group_power_per_qubit_w("drive envelope", n)
            + arch.group_power_per_qubit_w("drive bank", n);
        let rx_frac = rx_digital / total;
        let drive_frac = drive_digital / total;
        assert!((rx_frac - 0.547).abs() < 0.08, "RX fraction {rx_frac}");
        assert!((drive_frac - 0.133).abs() < 0.04, "drive fraction {drive_frac}");
    }

    #[test]
    fn opt1_cuts_total_4k_power_by_about_half() {
        let base = CryoCmosConfig::baseline().build();
        let opt =
            CryoCmosConfig { decision: DecisionKind::Memoryless, ..CryoCmosConfig::baseline() }
                .build();
        let n = 1024;
        let p = |a: &QciArch| a.device_static_w(Stage::K4, n) + a.device_dynamic_w(Stage::K4, n);
        let cut = 1.0 - p(&opt) / p(&base);
        assert!((cut - 0.483).abs() < 0.07, "Opt-1 total cut {cut}");
    }

    #[test]
    fn opt2_cuts_total_by_about_4pct() {
        let base =
            CryoCmosConfig { decision: DecisionKind::Memoryless, ..CryoCmosConfig::baseline() };
        let opt = CryoCmosConfig { drive_bits: 6, ..base };
        let n = 1024;
        let p = |c: &CryoCmosConfig| {
            let a = c.build();
            a.device_static_w(Stage::K4, n) + a.device_dynamic_w(Stage::K4, n)
        };
        let cut = 1.0 - p(&opt) / p(&base);
        assert!(cut > 0.02 && cut < 0.09, "Opt-2 total cut {cut}");
    }

    #[test]
    fn masked_isa_slashes_bandwidth() {
        let base = CryoCmosConfig::baseline().build();
        let masked = CryoCmosConfig { masked_isa: true, ..CryoCmosConfig::baseline() }.build();
        let cut = 1.0 - masked.instr_bandwidth_bps_per_qubit / base.instr_bandwidth_bps_per_qubit;
        assert!(cut > 0.80, "Opt-6 bandwidth cut {cut}");
    }

    #[test]
    fn superconducting_wires_leave_mk_unbound() {
        // Fig. 13a: with superconducting coax the mK power does not limit
        // the 4 K CMOS QCI at the 1,152-qubit near-term scale.
        let arch = CryoCmosConfig::baseline().build();
        let n = 1152;
        let mk100 = arch.wire_load_w(Stage::Mk100, n)
            + arch.device_static_w(Stage::Mk100, n)
            + arch.device_dynamic_w(Stage::Mk100, n);
        let mk20 = arch.wire_load_w(Stage::Mk20, n);
        assert!(mk100 < Stage::Mk100.cooling_capacity_w(), "100mK {mk100}");
        assert!(mk20 < Stage::Mk20.cooling_capacity_w(), "20mK {mk20}");
    }
}
