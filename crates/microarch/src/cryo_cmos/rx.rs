//! 4 K CMOS RX (readout-analysis) circuit (§3.3.4) and state-decision
//! units, including the Opt-1 memoryless redesign.
//!
//! The RX chain down-converts the reflected multi-tone microwave, extracts
//! per-qubit DC I/Q samples, and feeds a *state-decision unit*:
//!
//! * **bin counting** (Horse Ridge II baseline): 7-bit-quantize each I/Q
//!   sample, count occupancy of every (I,Q) coordinate in a 32 KB per-qubit
//!   memory, and at the end compare the counts on the two sides of the
//!   state-discriminating line;
//! * **single point**: average all samples and compare the mean's side;
//! * **Opt-1 memoryless**: compare each sample against the line as it
//!   arrives and keep only a signed 32-bit counter — same decision as bin
//!   counting, 88 % less RX power (Fig. 14a).

use crate::inventory::{Component, Resource};
use qisim_hal::analog;
use qisim_hal::cmos::CmosTech;
use qisim_hal::fridge::Stage;

/// Bin-plane resolution (7-bit I × 7-bit Q, 16-bit counters → 32 KB), the
/// error-saturating point per §6.3.1.
pub const BIN_PLANE_BITS: u32 = 7;
/// Per-qubit bin-counter memory in KB.
pub const BIN_MEMORY_KB: f64 = 32.0;

/// The state-discriminating line in the I/Q plane: points with
/// `(p − anchor)·normal > 0` are classified as `|1⟩`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiscriminatingLine {
    /// A point on the line.
    pub anchor: (f64, f64),
    /// The normal direction (need not be normalized).
    pub normal: (f64, f64),
}

impl DiscriminatingLine {
    /// Perpendicular bisector of the two pointer states: the optimal line
    /// for symmetric Gaussian noise.
    pub fn between(p0: (f64, f64), p1: (f64, f64)) -> Self {
        DiscriminatingLine {
            anchor: ((p0.0 + p1.0) / 2.0, (p0.1 + p1.1) / 2.0),
            normal: (p1.0 - p0.0, p1.1 - p0.1),
        }
    }

    /// Signed distance proxy of a sample (positive ⇒ `|1⟩` side).
    pub fn side(&self, p: (f64, f64)) -> f64 {
        (p.0 - self.anchor.0) * self.normal.0 + (p.1 - self.anchor.1) * self.normal.1
    }
}

/// A state-decision outcome with the sample-count difference the multi-round
/// scheme (Opt-7) thresholds on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Decision {
    /// Assigned qubit state.
    pub excited: bool,
    /// `#(|1⟩-side samples) − #(|0⟩-side samples)` (bin/memoryless) or the
    /// signed mean projection (single point) — the decision confidence.
    pub confidence: f64,
}

/// Quantizes a sample to the bin plane's 7-bit grid over `[-full, full]`.
fn quantize(v: f64, full: f64) -> f64 {
    let levels = (1u32 << BIN_PLANE_BITS) as f64;
    let x = (v / full).clamp(-1.0, 1.0);
    (x * (levels / 2.0 - 1.0)).round() / (levels / 2.0 - 1.0) * full
}

/// Bin-counting decision (Horse Ridge II): builds the (I,Q) occupancy
/// histogram, then counts samples on each side of the line.
///
/// `full_scale` sets the ADC range for the 7-bit quantization.
///
/// # Panics
///
/// Panics if `samples` is empty.
pub fn bin_counting(
    samples: &[(f64, f64)],
    line: &DiscriminatingLine,
    full_scale: f64,
) -> Decision {
    assert!(!samples.is_empty(), "readout produced no samples");
    use std::collections::HashMap;
    let mut bins: HashMap<(i32, i32), u32> = HashMap::new();
    let levels = (1u32 << BIN_PLANE_BITS) as f64 / 2.0 - 1.0;
    for &(i, q) in samples {
        let ki = ((i / full_scale).clamp(-1.0, 1.0) * levels).round() as i32;
        let kq = ((q / full_scale).clamp(-1.0, 1.0) * levels).round() as i32;
        *bins.entry((ki, kq)).or_insert(0) += 1;
    }
    let mut diff: i64 = 0;
    for ((ki, kq), n) in bins {
        let p = (ki as f64 / levels * full_scale, kq as f64 / levels * full_scale);
        if line.side(p) > 0.0 {
            diff += n as i64;
        } else {
            diff -= n as i64;
        }
    }
    Decision { excited: diff > 0, confidence: diff as f64 }
}

/// Opt-1 memoryless decision: same per-sample compare as bin counting but
/// with only a running signed counter (no 32 KB memory).
///
/// # Panics
///
/// Panics if `samples` is empty.
pub fn memoryless(samples: &[(f64, f64)], line: &DiscriminatingLine, full_scale: f64) -> Decision {
    assert!(!samples.is_empty(), "readout produced no samples");
    let mut diff: i64 = 0;
    for &(i, q) in samples {
        let p = (quantize(i, full_scale), quantize(q, full_scale));
        if line.side(p) > 0.0 {
            diff += 1;
        } else {
            diff -= 1;
        }
    }
    Decision { excited: diff > 0, confidence: diff as f64 }
}

/// Single-point decision: average all I/Q samples and classify the mean.
///
/// # Panics
///
/// Panics if `samples` is empty.
pub fn single_point(samples: &[(f64, f64)], line: &DiscriminatingLine) -> Decision {
    assert!(!samples.is_empty(), "readout produced no samples");
    let n = samples.len() as f64;
    let mean = (
        samples.iter().map(|s| s.0).sum::<f64>() / n,
        samples.iter().map(|s| s.1).sum::<f64>() / n,
    );
    let proj = line.side(mean);
    Decision { excited: proj > 0.0, confidence: proj }
}

/// Which decision unit an RX circuit instantiates (power differs; Fig. 14a).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DecisionKind {
    /// Horse Ridge II bin-counting memory (baseline).
    BinCounting,
    /// Single-point averaging.
    SinglePoint,
    /// Opt-1: memoryless comparator + 32-bit counter.
    Memoryless,
}

impl DecisionKind {
    /// Stable text-codec label (`qisim::codec`).
    pub fn label(self) -> &'static str {
        match self {
            DecisionKind::BinCounting => "bin_counting",
            DecisionKind::SinglePoint => "single_point",
            DecisionKind::Memoryless => "memoryless",
        }
    }

    /// Inverse of [`DecisionKind::label`]; `None` for unknown labels.
    pub fn from_label(label: &str) -> Option<DecisionKind> {
        [DecisionKind::BinCounting, DecisionKind::SinglePoint, DecisionKind::Memoryless]
            .into_iter()
            .find(|k| k.label() == label)
    }
}

/// Builds the RX component inventory for the chosen decision unit.
///
/// `bank_duty` is the fraction of the ESM cycle any one qubit's digital
/// bank is active (ancillas only, so ~0.5 × readout fraction);
/// `line_duty` is the fraction the shared analog line carries signal.
pub fn components(
    tech: CmosTech,
    decision: DecisionKind,
    bank_duty: f64,
    line_duty: f64,
) -> Vec<Component> {
    let mut cs = vec![
        // Per-qubit digital bank: NCO + sin/cos LUT + down mixer + I/Q
        // accumulators.
        Component {
            name: "RX NCO+mixer bank".into(),
            stage: Stage::K4,
            resource: Resource::CmosLogic { tech, ge: 9000.0, activity: 0.25 },
            qubits_per_instance: 1.0,
            duty: bank_duty,
        },
        // Shared analog per RX line.
        Component {
            name: "RX analog chain".into(),
            stage: Stage::K4,
            resource: Resource::Analog(analog::RX_ANALOG),
            qubits_per_instance: 8.0,
            duty: line_duty,
        },
        Component {
            name: "RX HEMT LNA".into(),
            stage: Stage::K4,
            resource: Resource::Analog(analog::HEMT_LNA),
            qubits_per_instance: 8.0,
            duty: line_duty,
        },
        Component {
            name: "RX TWPA pump".into(),
            stage: Stage::Mk100,
            resource: Resource::Analog(analog::TWPA),
            qubits_per_instance: 8.0,
            duty: line_duty,
        },
    ];
    match decision {
        DecisionKind::BinCounting => {
            cs.push(Component {
                name: "RX decision bin-counter memory".into(),
                stage: Stage::K4,
                resource: Resource::CmosSram {
                    tech,
                    kb: BIN_MEMORY_KB,
                    // Read-modify-write per sample ("twice per cycle").
                    accesses_per_cycle: 2.0,
                },
                qubits_per_instance: 1.0,
                duty: bank_duty,
            });
            // Address generation, counter update, and the end-of-readout
            // plane sweep/compare — the bulk of the decision unit.
            cs.push(Component {
                name: "RX decision control".into(),
                stage: Stage::K4,
                resource: Resource::CmosLogic { tech, ge: 53000.0, activity: 0.25 },
                qubits_per_instance: 1.0,
                duty: bank_duty,
            });
        }
        DecisionKind::SinglePoint => {
            cs.push(Component {
                name: "RX decision averager".into(),
                stage: Stage::K4,
                resource: Resource::CmosLogic { tech, ge: 1200.0, activity: 0.25 },
                qubits_per_instance: 1.0,
                duty: bank_duty,
            });
        }
        DecisionKind::Memoryless => {
            cs.push(Component {
                name: "RX decision comparator".into(),
                stage: Stage::K4,
                resource: Resource::CmosLogic { tech, ge: 700.0, activity: 0.25 },
                qubits_per_instance: 1.0,
                duty: bank_duty,
            });
        }
    }
    cs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line() -> DiscriminatingLine {
        DiscriminatingLine::between((-1.0, 0.0), (1.0, 0.0))
    }

    fn cloud(center: (f64, f64), spread: f64, n: usize) -> Vec<(f64, f64)> {
        // Deterministic pseudo-noise (LCG) — unit tests must not depend on
        // rand seeding.
        let mut state = 0x1234_5678_u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        (0..n).map(|_| (center.0 + spread * next(), center.1 + spread * next())).collect()
    }

    #[test]
    fn all_methods_agree_on_clean_clouds() {
        let l = line();
        for (c, expect) in [((0.8, 0.1), true), ((-0.8, -0.1), false)] {
            let s = cloud(c, 0.2, 200);
            assert_eq!(bin_counting(&s, &l, 2.0).excited, expect);
            assert_eq!(memoryless(&s, &l, 2.0).excited, expect);
            assert_eq!(single_point(&s, &l).excited, expect);
        }
    }

    #[test]
    fn memoryless_matches_bin_counting_decision() {
        // The Opt-1 claim: same precision and functionality without memory.
        let l = line();
        for seed_center in [(0.05, 0.0), (-0.03, 0.1), (0.6, -0.4)] {
            let s = cloud(seed_center, 1.0, 301);
            let a = bin_counting(&s, &l, 2.0);
            let b = memoryless(&s, &l, 2.0);
            assert_eq!(a.excited, b.excited);
            assert_eq!(a.confidence, b.confidence);
        }
    }

    #[test]
    fn confidence_is_near_zero_for_ambiguous_clouds() {
        let l = line();
        let s = cloud((0.0, 0.0), 1.0, 400);
        let d = memoryless(&s, &l, 2.0);
        assert!(d.confidence.abs() < 100.0, "ambiguous cloud diff {}", d.confidence);
        let clear = memoryless(&cloud((0.9, 0.0), 0.1, 400), &l, 2.0);
        assert_eq!(clear.confidence, 400.0);
    }

    #[test]
    fn discriminating_line_bisects() {
        let l = DiscriminatingLine::between((0.0, -1.0), (0.0, 1.0));
        assert!(l.side((0.0, 0.5)) > 0.0);
        assert!(l.side((0.0, -0.5)) < 0.0);
        assert_eq!(l.side((5.0, 0.0)), 0.0);
    }

    #[test]
    fn bin_memory_matches_paper_spec() {
        // (2^7 × 2^7 coordinates) × 16-bit counters = 32 KB.
        let bytes = (1u64 << BIN_PLANE_BITS) * (1u64 << BIN_PLANE_BITS) * 2;
        assert_eq!(bytes, 32 * 1024);
        assert_eq!(BIN_MEMORY_KB, 32.0);
    }

    #[test]
    fn opt1_slashes_rx_decision_power() {
        let tech = CmosTech::baseline_4k();
        let power = |kind| -> f64 {
            components(tech, kind, 0.23, 0.46)
                .iter()
                .filter(|c| c.name.starts_with("RX decision"))
                .map(|c| c.power_w(2.5e9))
                .sum()
        };
        let base = power(DecisionKind::BinCounting);
        let opt = power(DecisionKind::Memoryless);
        assert!(opt < 0.05 * base, "memoryless {opt} vs bin {base}");
    }

    #[test]
    #[should_panic(expected = "no samples")]
    fn empty_samples_panic() {
        let _ = single_point(&[], &line());
    }
}
