//! 4 K CMOS TX (readout-drive) circuit (§3.3.3).
//!
//! Reproduces Horse Ridge II's TX with the FDM level of the state-of-the-art
//! CMOS readout (Kang et al.): eight digital banks — each an NCO plus a
//! sin/cos LUT tuned to one resonator — generate a multi-tone microwave on
//! a single TX line for eight parallel readouts.

use crate::inventory::{Component, Resource};
use qisim_hal::analog;
use qisim_hal::cmos::CmosTech;
use qisim_hal::fridge::Stage;

/// Readout FDM degree of the baseline (eight resonators per TX/RX line).
pub const READOUT_FDM: u32 = 8;

/// Behavioral multi-tone synthesizer: sums the enabled banks' tones.
///
/// `tones` is `(omega_per_sample_rad, phase_rad, enabled)` per bank;
/// returns `samples` time-domain points of the summed waveform, normalized
/// by the bank count so full scale is `[-1, 1]`.
pub fn multi_tone(tones: &[(f64, f64, bool)], samples: usize) -> Vec<f64> {
    assert!(!tones.is_empty(), "need at least one bank");
    let norm = tones.len() as f64;
    (0..samples)
        .map(|n| {
            tones.iter().filter(|t| t.2).map(|&(w, p, _)| (w * n as f64 + p).cos()).sum::<f64>()
                / norm
        })
        .collect()
}

/// Builds the TX component inventory.
pub fn components(tech: CmosTech, readout_duty: f64) -> Vec<Component> {
    vec![
        // Eight per-resonator banks (NCO + sin/cos LUT) per TX line.
        Component {
            name: "TX digital banks".into(),
            stage: Stage::K4,
            resource: Resource::CmosLogic { tech, ge: 1500.0 * READOUT_FDM as f64, activity: 0.25 },
            qubits_per_instance: READOUT_FDM as f64,
            duty: readout_duty,
        },
        Component {
            name: "TX analog chain".into(),
            stage: Stage::K4,
            resource: Resource::Analog(analog::TX_ANALOG),
            qubits_per_instance: READOUT_FDM as f64,
            duty: readout_duty,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_tone_is_cosine() {
        let w = 0.3;
        let s = multi_tone(&[(w, 0.0, true)], 50);
        for (n, v) in s.iter().enumerate() {
            assert!((v - (w * n as f64).cos()).abs() < 1e-12);
        }
    }

    #[test]
    fn disabled_banks_are_silent() {
        let s = multi_tone(&[(0.3, 0.0, false), (0.5, 0.0, false)], 20);
        assert!(s.iter().all(|v| *v == 0.0));
    }

    #[test]
    fn multi_tone_stays_in_range() {
        let tones: Vec<_> = (0..8).map(|k| (0.1 + 0.07 * k as f64, 0.3 * k as f64, true)).collect();
        let s = multi_tone(&tones, 500);
        assert!(s.iter().all(|v| v.abs() <= 1.0 + 1e-12));
    }

    #[test]
    fn inventory_shares_per_eight() {
        for c in components(CmosTech::baseline_4k(), 0.46) {
            assert_eq!(c.qubits_per_instance, 8.0, "{}", c.name);
        }
    }
}
