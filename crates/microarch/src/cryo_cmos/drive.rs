//! 4 K CMOS drive circuit (Fig. 4a/4b).
//!
//! The drive circuit turns a gate instruction into an I/Q sample stream:
//! per-qubit NCOs track each qubit's rotating frame, the gate table +
//! envelope memory supply the pulse shape `A[n], Φ_G[n]`, and the polar
//! modulation unit forms `I/Q[n] = A[n]·cos/sin(ω·n + Φ_Q + Φ_G[n])`
//! (Eq. (1) of the paper).
//!
//! Two pieces are **new designs** the paper contributes on top of Horse
//! Ridge I (and that we therefore implement behaviorally, not just as power
//! inventories):
//!
//! * **virtual `Rz(φ)`** — realized by adding φ to the target qubit's NCO
//!   phase accumulator instead of playing a microwave;
//! * **Z-correction** — after any `Rx/Ry` on one qubit of an FDM group, the
//!   AC-Stark phase shifts incurred by the *other* qubits are compensated
//!   from a per-qubit correction table.

use crate::inventory::{Component, Resource};
use qisim_hal::analog;
use qisim_hal::cmos::CmosTech;
use qisim_hal::fridge::Stage;
use std::f64::consts::PI;

/// Phase accumulator width in bits (phase resolution `2π/2^24`).
pub const PHASE_BITS: u32 = 24;

/// A behavioral numerically-controlled oscillator with the paper's
/// virtual-Rz datapath and Z-correction table.
///
/// # Examples
///
/// ```
/// use qisim_microarch::cryo_cmos::drive::Nco;
/// use std::f64::consts::PI;
///
/// let mut nco = Nco::new(0.1); // 0.1 rad per clock cycle
/// nco.tick();
/// nco.virtual_rz(PI / 2.0);
/// assert!((nco.phase() - (0.1 + PI / 2.0)).abs() < 1e-6);
/// ```
#[derive(Debug, Clone)]
pub struct Nco {
    /// Frequency control word: phase increment per clock in radians.
    omega_per_cycle: f64,
    /// Accumulated phase `Φ_Q`, wrapped to `[0, 2π)` and quantized to
    /// [`PHASE_BITS`].
    phase_acc: u64,
}

const PHASE_LEVELS: u64 = 1 << PHASE_BITS;

fn quantize_phase(rad: f64) -> u64 {
    let turns = rad / (2.0 * PI);
    let frac = turns.rem_euclid(1.0);
    ((frac * PHASE_LEVELS as f64).round() as u64) % PHASE_LEVELS
}

impl Nco {
    /// Creates an NCO with the given per-cycle phase increment (radians).
    pub fn new(omega_per_cycle: f64) -> Self {
        Nco { omega_per_cycle, phase_acc: 0 }
    }

    /// Advances the accumulator by one clock cycle.
    pub fn tick(&mut self) {
        self.phase_acc = (self.phase_acc + quantize_phase(self.omega_per_cycle)) % PHASE_LEVELS;
    }

    /// Advances by `n` cycles.
    pub fn tick_n(&mut self, n: u64) {
        self.phase_acc =
            (self.phase_acc + n.wrapping_mul(quantize_phase(self.omega_per_cycle))) % PHASE_LEVELS;
    }

    /// The virtual-Rz datapath: adds `phi` radians directly to the phase
    /// accumulator (the paper's `Rz mode = 1` path, Fig. 4b).
    pub fn virtual_rz(&mut self, phi: f64) {
        self.phase_acc = (self.phase_acc + quantize_phase(phi)) % PHASE_LEVELS;
    }

    /// Current accumulated phase in radians `[0, 2π)`.
    pub fn phase(&self) -> f64 {
        self.phase_acc as f64 / PHASE_LEVELS as f64 * 2.0 * PI
    }

    /// Phase quantization step in radians.
    pub fn resolution(&self) -> f64 {
        2.0 * PI / PHASE_LEVELS as f64
    }
}

/// The Z-correction table (Fig. 4b): for each (driven qubit, victim qubit)
/// pair of an FDM group, the AC-Stark phase to add to the victim's NCO when
/// the driven qubit receives an `Rx/Ry`.
#[derive(Debug, Clone)]
pub struct ZCorrectionTable {
    group: usize,
    /// `phi[driven][victim]` in radians; diagonal entries are zero.
    phi: Vec<f64>,
}

impl ZCorrectionTable {
    /// Builds a table for an FDM group of `group` qubits from the AC-Stark
    /// model `φ = stark_coeff / |Δf|` (inverse-detuning scaling; Krantz et
    /// al. §4.2), given the group's qubit frequencies in GHz.
    ///
    /// # Panics
    ///
    /// Panics if `freqs_ghz.len() != group` or any two frequencies collide.
    pub fn from_frequencies(group: usize, freqs_ghz: &[f64], stark_coeff: f64) -> Self {
        assert_eq!(freqs_ghz.len(), group, "need one frequency per group member");
        let mut phi = vec![0.0; group * group];
        for d in 0..group {
            for v in 0..group {
                if d == v {
                    continue;
                }
                let df = (freqs_ghz[d] - freqs_ghz[v]).abs();
                assert!(df > 1e-9, "qubits {d} and {v} share a frequency");
                phi[d * group + v] = stark_coeff / df;
            }
        }
        ZCorrectionTable { group, phi }
    }

    /// Correction phase for `victim` when `driven` is driven, in radians.
    pub fn correction(&self, driven: usize, victim: usize) -> f64 {
        assert!(driven < self.group && victim < self.group, "index out of group");
        self.phi[driven * self.group + victim]
    }

    /// Applies corrections for a gate on `driven` to all victims' NCOs.
    ///
    /// # Panics
    ///
    /// Panics if `ncos.len() != group`.
    pub fn apply(&self, driven: usize, ncos: &mut [Nco]) {
        assert_eq!(ncos.len(), self.group, "one NCO per group member");
        for (v, nco) in ncos.iter_mut().enumerate() {
            if v != driven {
                nco.virtual_rz(self.correction(driven, v));
            }
        }
    }

    /// Group size.
    pub fn group(&self) -> usize {
        self.group
    }
}

/// Generates the digital I/Q samples of Eq. (1) for a gate envelope, at a
/// given DAC bit precision (the quantity Opt-2 reduces from 9+ to 6 bits).
///
/// `envelope` holds `(A[n], Φ_G[n])` pairs with `A ∈ [0, 1]`; `phase_q` is
/// the qubit's NCO phase at gate start; `omega` is the NCO increment per
/// sample in radians.
///
/// # Panics
///
/// Panics if `bits` is outside `2..=16` (a 1-bit mid-tread DAC has no
/// nonzero level).
pub fn iq_samples(envelope: &[(f64, f64)], phase_q: f64, omega: f64, bits: u32) -> Vec<(f64, f64)> {
    assert!((2..=16).contains(&bits), "DAC precision must be 2..=16 bits");
    let levels = (1u32 << bits) as f64 / 2.0 - 1.0; // signed mid-tread
    let q = |x: f64| (x * levels).round() / levels;
    envelope
        .iter()
        .enumerate()
        .map(|(n, &(a, phi_g))| {
            let theta = omega * n as f64 + phase_q + phi_g;
            (q(a * theta.cos()), q(a * theta.sin()))
        })
        .collect()
}

/// A raised-cosine (Hann) pulse envelope of `samples` points with peak
/// amplitude `amp` and constant gate phase `phi_g` — the shape QIsim uses
/// for `Rx/Ry(φ)` drives.
pub fn hann_envelope(samples: usize, amp: f64, phi_g: f64) -> Vec<(f64, f64)> {
    assert!(samples >= 2, "envelope needs at least two samples");
    (0..samples)
        .map(|n| {
            let x = n as f64 / (samples - 1) as f64;
            (amp * 0.5 * (1.0 - (2.0 * PI * x).cos()), phi_g)
        })
        .collect()
}

/// Per-qubit envelope-memory capacity in KB (Intel's 7.65 KB/qubit spec,
/// Section 6.1: eight drive + four pulse + one TX envelope per qubit).
pub const ENVELOPE_MEMORY_KB: f64 = 7.65;

/// Gate-equivalent count of the per-qubit NCO datapath as a function of the
/// output bit precision: a fixed phase-accumulator/control part plus a
/// width-proportional polar-modulation datapath. Calibrated so 14-bit →
/// 6-bit precision cuts the drive digital power by the paper's ≈30.9 %
/// (Opt-2, Fig. 14).
pub fn nco_ge(bits: u32) -> f64 {
    1800.0 + 157.0 * bits as f64
}

/// Builds the drive-circuit component inventory for one 4 K CMOS QCI.
///
/// * `tech` — CMOS operating point;
/// * `bits` — DAC bit precision (baseline 14; Opt-2 uses 6);
/// * `fdm` — qubits sharing one drive line/analog chain (baseline 32);
/// * `gate_duty` — fraction of the ESM cycle the shared bank spends
///   generating samples;
/// * `per_qubit_gate_duty` — fraction of the cycle any one qubit's envelope
///   memory is being read.
pub fn components(
    tech: CmosTech,
    bits: u32,
    fdm: u32,
    gate_duty: f64,
    per_qubit_gate_duty: f64,
) -> Vec<Component> {
    vec![
        // Per-qubit NCO: runs every cycle to track the rotating frame
        // (phase coherence cannot be paused), hence duty 1.0.
        Component {
            name: "drive NCO (per-qubit)".into(),
            stage: Stage::K4,
            resource: Resource::CmosLogic { tech, ge: nco_ge(bits), activity: 0.25 },
            qubits_per_instance: 1.0,
            duty: 1.0,
        },
        // Z-correction table: a small per-qubit LUT consulted at gate ends.
        Component {
            name: "drive Z-correction table".into(),
            stage: Stage::K4,
            resource: Resource::CmosSram { tech, kb: 0.25, accesses_per_cycle: 0.05 },
            qubits_per_instance: 1.0,
            duty: per_qubit_gate_duty,
        },
        // Envelope memory: read once per sample while this qubit's gate is
        // being generated.
        Component {
            name: "drive envelope memory".into(),
            stage: Stage::K4,
            resource: Resource::CmosSram { tech, kb: ENVELOPE_MEMORY_KB, accesses_per_cycle: 1.0 },
            qubits_per_instance: 1.0,
            duty: per_qubit_gate_duty,
        },
        // Two digital banks (polar modulation, gate sequencing) shared by
        // the FDM group.
        Component {
            name: "drive bank logic (shared)".into(),
            stage: Stage::K4,
            resource: Resource::CmosLogic {
                tech,
                ge: 6000.0 + 430.0 * bits as f64,
                activity: 0.25,
            },
            qubits_per_instance: fdm as f64,
            duty: gate_duty,
        },
        // Analog up-conversion chain, one per drive line.
        Component {
            name: "drive analog chain".into(),
            stage: Stage::K4,
            resource: Resource::Analog(analog::DRIVE_ANALOG),
            qubits_per_instance: fdm as f64,
            duty: gate_duty,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nco_accumulates_linearly() {
        let mut nco = Nco::new(0.01);
        for _ in 0..100 {
            nco.tick();
        }
        assert!((nco.phase() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn nco_tick_n_matches_loop() {
        let mut a = Nco::new(0.37);
        let mut b = Nco::new(0.37);
        for _ in 0..1000 {
            a.tick();
        }
        b.tick_n(1000);
        assert_eq!(a.phase(), b.phase());
    }

    #[test]
    fn virtual_rz_adds_phase_mod_2pi() {
        let mut nco = Nco::new(0.0);
        nco.virtual_rz(3.0 * PI); // = π mod 2π
        assert!((nco.phase() - PI).abs() < 1e-6);
    }

    #[test]
    fn phase_resolution_is_2pi_over_2p24() {
        let nco = Nco::new(0.0);
        assert!((nco.resolution() - 2.0 * PI / (1 << 24) as f64).abs() < 1e-18);
    }

    #[test]
    fn z_correction_scales_inverse_with_detuning() {
        let t = ZCorrectionTable::from_frequencies(3, &[5.0, 5.1, 5.3], 0.01);
        // Victim closer in frequency gets a larger correction.
        assert!(t.correction(0, 1) > t.correction(0, 2));
        assert_eq!(t.correction(1, 1), 0.0);
    }

    #[test]
    fn z_correction_applies_to_victims_only() {
        let t = ZCorrectionTable::from_frequencies(2, &[5.0, 5.2], 0.02);
        let mut ncos = vec![Nco::new(0.0), Nco::new(0.0)];
        t.apply(0, &mut ncos);
        assert_eq!(ncos[0].phase(), 0.0);
        assert!((ncos[1].phase() - 0.1).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "share a frequency")]
    fn degenerate_frequencies_panic() {
        let _ = ZCorrectionTable::from_frequencies(2, &[5.0, 5.0], 0.01);
    }

    #[test]
    fn iq_samples_respect_precision() {
        let env = hann_envelope(16, 1.0, 0.0);
        let s = iq_samples(&env, 0.3, 0.2, 6);
        let levels = (1u32 << 6) as f64 / 2.0 - 1.0;
        for (i, q) in &s {
            let ri = i * levels;
            let rq = q * levels;
            assert!((ri - ri.round()).abs() < 1e-9);
            assert!((rq - rq.round()).abs() < 1e-9);
        }
    }

    #[test]
    fn more_bits_give_smaller_quantization_error() {
        let env = hann_envelope(64, 0.8, 0.4);
        let fine = iq_samples(&env, 0.1, 0.07, 14);
        let coarse = iq_samples(&env, 0.1, 0.07, 4);
        let err = |s: &[(f64, f64)]| -> f64 {
            env.iter()
                .zip(s)
                .enumerate()
                .map(|(n, (&(a, pg), &(i, q)))| {
                    let th = 0.07 * n as f64 + 0.1 + pg;
                    ((a * th.cos() - i).powi(2) + (a * th.sin() - q).powi(2)).sqrt()
                })
                .sum()
        };
        assert!(err(&fine) < 0.1 * err(&coarse));
    }

    #[test]
    fn hann_envelope_starts_and_ends_at_zero() {
        let e = hann_envelope(32, 1.0, 0.0);
        assert!(e[0].0.abs() < 1e-12);
        assert!(e[31].0.abs() < 1e-12);
        let peak = e.iter().map(|p| p.0).fold(0.0f64, f64::max);
        assert!((peak - 1.0).abs() < 0.01);
    }

    #[test]
    fn opt2_precision_cut_is_about_31_pct() {
        let ratio = 1.0 - nco_ge(6) / nco_ge(14);
        assert!((ratio - 0.309).abs() < 0.02, "drive GE cut {ratio}");
    }

    #[test]
    fn inventory_has_per_qubit_and_shared_parts() {
        let cs = components(CmosTech::baseline_4k(), 14, 32, 0.36, 0.045);
        let nco = cs.iter().find(|c| c.name.contains("NCO")).unwrap();
        assert_eq!(nco.qubits_per_instance, 1.0);
        let bank = cs.iter().find(|c| c.name.contains("bank")).unwrap();
        assert_eq!(bank.qubits_per_instance, 32.0);
    }
}
