//! 4 K CMOS pulse circuit — the paper's **new** arbitrary-ramp design
//! (Fig. 4c).
//!
//! Horse Ridge II's pulse circuit can only hold one amplitude for a counted
//! length (a unit-step pulse), which the paper's Hamiltonian simulations
//! show "almost cannot realize the CZ gate". The new design stores a series
//! of `(amplitude, length)` runs per neighbor direction, so the short
//! ramp-up/ramp-down of a flux pulse is arbitrary while the flat top stays
//! a single run — giving AWG quality with negligible memory.

use crate::inventory::{Component, Resource};
use qisim_hal::analog;
use qisim_hal::cmos::CmosTech;
use qisim_hal::fridge::Stage;

/// One `(amplitude, length)` run of the pulse-amplitude memory.
/// Amplitude is a signed fraction of full scale in `[-1, 1]`; length is in
/// clock cycles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AmplitudeRun {
    /// DAC amplitude as a fraction of full scale.
    pub amplitude: f64,
    /// Run length in clock cycles.
    pub length: u32,
}

/// The four neighbor directions of a qubit in the 2D lattice — the 2-bit
/// *CZ target* field of the pulse ISA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CzTarget {
    /// Neighbor in +x.
    East,
    /// Neighbor in −x.
    West,
    /// Neighbor in +y.
    North,
    /// Neighbor in −y.
    South,
}

impl CzTarget {
    /// All four directions.
    pub const ALL: [CzTarget; 4] =
        [CzTarget::East, CzTarget::West, CzTarget::North, CzTarget::South];

    /// 2-bit ISA encoding.
    pub fn encode(self) -> u8 {
        match self {
            CzTarget::East => 0,
            CzTarget::West => 1,
            CzTarget::North => 2,
            CzTarget::South => 3,
        }
    }

    /// Decodes the 2-bit field.
    ///
    /// # Panics
    ///
    /// Panics if `code > 3`.
    pub fn decode(code: u8) -> Self {
        match code {
            0 => CzTarget::East,
            1 => CzTarget::West,
            2 => CzTarget::North,
            3 => CzTarget::South,
            _ => panic!("CZ target is a 2-bit field, got {code}"),
        }
    }
}

/// Behavioral model of the new pulse sequencer: per-neighbor run tables
/// played out sample by sample.
#[derive(Debug, Clone)]
pub struct PulseSequencer {
    /// Run tables per neighbor direction.
    tables: [Vec<AmplitudeRun>; 4],
    /// DAC bit precision.
    bits: u32,
}

impl PulseSequencer {
    /// Creates a sequencer with empty tables at the given DAC precision.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `2..=16`.
    pub fn new(bits: u32) -> Self {
        assert!((2..=16).contains(&bits), "DAC precision must be 2..=16 bits");
        PulseSequencer { tables: Default::default(), bits }
    }

    /// Loads the run table for one neighbor direction.
    ///
    /// # Panics
    ///
    /// Panics if any run has zero length or amplitude outside `[-1, 1]`.
    pub fn load(&mut self, target: CzTarget, runs: Vec<AmplitudeRun>) {
        for r in &runs {
            assert!(r.length > 0, "zero-length run");
            assert!((-1.0..=1.0).contains(&r.amplitude), "amplitude out of range");
        }
        self.tables[target.encode() as usize] = runs;
    }

    /// Plays out the pulse toward `target` and returns the quantized DAC
    /// samples (one per clock cycle). This is the paper's
    /// read-amplitude/count-length/advance-address loop.
    pub fn play(&self, target: CzTarget) -> Vec<f64> {
        let levels = (1u32 << self.bits) as f64 / 2.0 - 1.0;
        let q = |x: f64| (x * levels).round() / levels;
        let mut out = Vec::new();
        for run in &self.tables[target.encode() as usize] {
            for _ in 0..run.length {
                out.push(q(run.amplitude));
            }
        }
        out
    }

    /// Total pulse length toward `target` in clock cycles.
    pub fn pulse_cycles(&self, target: CzTarget) -> u64 {
        self.tables[target.encode() as usize].iter().map(|r| r.length as u64).sum()
    }

    /// Memory footprint of all loaded tables in bits (amplitude `bits` +
    /// 8-bit length per run) — the "negligible overhead" claim of §3.3.2.
    pub fn memory_bits(&self) -> u64 {
        let runs: u64 = self.tables.iter().map(|t| t.len() as u64).sum();
        runs * (self.bits as u64 + 8)
    }
}

/// Builds an erf-like ramp + flat-top run table: `ramp_runs` quantized ramp
/// steps up, one plateau run, `ramp_runs` steps down.
///
/// # Panics
///
/// Panics if `ramp_runs == 0` or `plateau_cycles == 0`.
pub fn ramped_pulse(
    peak: f64,
    ramp_runs: u32,
    ramp_cycles_per_run: u32,
    plateau_cycles: u32,
) -> Vec<AmplitudeRun> {
    assert!(ramp_runs > 0 && plateau_cycles > 0, "degenerate pulse");
    let mut runs = Vec::with_capacity(2 * ramp_runs as usize + 1);
    for k in 1..=ramp_runs {
        // Smooth (cosine) ramp profile sampled at run midpoints.
        let x = (k as f64 - 0.5) / ramp_runs as f64;
        let a = peak * 0.5 * (1.0 - (std::f64::consts::PI * x).cos());
        runs.push(AmplitudeRun { amplitude: a, length: ramp_cycles_per_run });
    }
    runs.push(AmplitudeRun { amplitude: peak, length: plateau_cycles });
    for k in (1..=ramp_runs).rev() {
        let x = (k as f64 - 0.5) / ramp_runs as f64;
        let a = peak * 0.5 * (1.0 - (std::f64::consts::PI * x).cos());
        runs.push(AmplitudeRun { amplitude: a, length: ramp_cycles_per_run });
    }
    runs
}

/// The unit-step pulse of the *existing* Horse Ridge II design (baseline
/// for the CZ-error comparison): a single full-amplitude run.
pub fn unit_step_pulse(peak: f64, cycles: u32) -> Vec<AmplitudeRun> {
    vec![AmplitudeRun { amplitude: peak, length: cycles }]
}

/// Builds the pulse-circuit component inventory (per-qubit, §3.3.2).
pub fn components(tech: CmosTech, cz_duty: f64) -> Vec<Component> {
    vec![
        Component {
            name: "pulse sequencer logic".into(),
            stage: Stage::K4,
            resource: Resource::CmosLogic { tech, ge: 900.0, activity: 0.25 },
            qubits_per_instance: 1.0,
            duty: cz_duty,
        },
        Component {
            name: "pulse amplitude memory".into(),
            stage: Stage::K4,
            resource: Resource::CmosSram { tech, kb: 1.0, accesses_per_cycle: 1.0 },
            qubits_per_instance: 1.0,
            duty: cz_duty,
        },
        Component {
            name: "pulse DAC".into(),
            stage: Stage::K4,
            resource: Resource::Analog(analog::PULSE_ANALOG),
            qubits_per_instance: 1.0,
            duty: cz_duty,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cz_target_roundtrip() {
        for t in CzTarget::ALL {
            assert_eq!(CzTarget::decode(t.encode()), t);
        }
    }

    #[test]
    #[should_panic(expected = "2-bit field")]
    fn bad_cz_code_panics() {
        let _ = CzTarget::decode(4);
    }

    #[test]
    fn sequencer_plays_run_lengths() {
        let mut seq = PulseSequencer::new(8);
        seq.load(CzTarget::North, ramped_pulse(0.8, 4, 5, 60));
        let samples = seq.play(CzTarget::North);
        assert_eq!(samples.len() as u64, seq.pulse_cycles(CzTarget::North));
        assert_eq!(samples.len(), 4 * 5 + 60 + 4 * 5);
        // Plateau holds the quantized peak.
        let mid = samples[4 * 5 + 30];
        assert!((mid - 0.8).abs() < 1.0 / 127.0);
    }

    #[test]
    fn ramp_is_monotone_up_then_down() {
        let runs = ramped_pulse(1.0, 6, 2, 10);
        for w in runs[..6].windows(2) {
            assert!(w[1].amplitude > w[0].amplitude);
        }
        for w in runs[7..].windows(2) {
            assert!(w[1].amplitude < w[0].amplitude);
        }
        assert_eq!(runs[6].amplitude, 1.0);
    }

    #[test]
    fn unit_step_is_single_run() {
        let runs = unit_step_pulse(0.5, 125);
        assert_eq!(runs.len(), 1);
        let mut seq = PulseSequencer::new(10);
        seq.load(CzTarget::East, runs);
        assert_eq!(seq.play(CzTarget::East).len(), 125);
    }

    #[test]
    fn memory_overhead_is_negligible() {
        // A 50 ns CZ at 2.5 GHz is 125 cycles; an 8-run ramp each side +
        // plateau stores 17 runs ≈ 38 bytes — versus 125 raw samples.
        let mut seq = PulseSequencer::new(10);
        seq.load(CzTarget::East, ramped_pulse(0.7, 8, 2, 93));
        let raw_bits = 125 * 10;
        assert!(seq.memory_bits() < raw_bits / 3, "memory {} bits", seq.memory_bits());
    }

    #[test]
    fn empty_direction_plays_nothing() {
        let seq = PulseSequencer::new(8);
        assert!(seq.play(CzTarget::West).is_empty());
        assert_eq!(seq.pulse_cycles(CzTarget::West), 0);
    }

    #[test]
    fn inventory_is_per_qubit() {
        for c in components(CmosTech::baseline_4k(), 0.18) {
            assert_eq!(c.qubits_per_instance, 1.0, "{}", c.name);
        }
    }
}
