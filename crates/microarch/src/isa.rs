//! Instruction-set encodings and 300K→4K bandwidth accounting.
//!
//! Every QCI circuit receives its instructions from the room-temperature
//! quantum control processor. For 4 K QCIs that traffic crosses the fridge
//! boundary on digital cables whose heat scales with bandwidth — the
//! bottleneck Opt-6 (FTQC-friendly instruction masking, Fig. 18) attacks by
//! compressing the Horse-Ridge-style 42-bit per-gate encoding into an
//! *instruction select* plus a *per-qubit mask*, and by fusing the
//! `H·Rz(nπ/4)` pairs of lattice surgery into single `Ry(π/2)·Rz(nπ/4)`
//! instructions.

/// A fixed-width instruction field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Field {
    /// Field name.
    pub name: &'static str,
    /// Width in bits.
    pub bits: u32,
}

/// An instruction format: a list of fields, possibly plus a per-qubit mask.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IsaFormat {
    /// Format name.
    pub name: &'static str,
    /// Fixed fields sent once per instruction.
    pub fields: Vec<Field>,
    /// Bits sent per *qubit in the group* per instruction (mask bits).
    pub mask_bits_per_qubit: u32,
}

impl IsaFormat {
    /// Total fixed bits per instruction (excluding the mask).
    pub fn fixed_bits(&self) -> u32 {
        self.fields.iter().map(|f| f.bits).sum()
    }

    /// Bits on the wire for one instruction addressing a group of
    /// `group_qubits` qubits.
    pub fn bits_per_instruction(&self, group_qubits: u32) -> u32 {
        self.fixed_bits() + self.mask_bits_per_qubit * group_qubits
    }

    /// Horse Ridge I-style single-qubit drive instruction (Fig. 4a):
    /// `start time(16) | target qubit(5) | gate address(10) | Rz mode(1) |
    /// bank select(2) | parity/framing(8)` = 42 bits, addressing one qubit.
    pub fn horse_ridge_drive() -> Self {
        IsaFormat {
            name: "Horse-Ridge drive (42-bit per gate)",
            fields: vec![
                Field { name: "start time", bits: 16 },
                Field { name: "target qubit", bits: 5 },
                Field { name: "gate table address / Rz angle", bits: 10 },
                Field { name: "Rz mode", bits: 1 },
                Field { name: "bank select", bits: 2 },
                Field { name: "framing", bits: 8 },
            ],
            mask_bits_per_qubit: 0,
        }
    }

    /// Our new 4K-CMOS pulse-circuit instruction (Fig. 4c): `start
    /// time(16)` plus a per-qubit `valid(1) + CZ target(2)` mask.
    pub fn pulse_masked() -> Self {
        IsaFormat {
            name: "AWG pulse (masked)",
            fields: vec![Field { name: "start time", bits: 16 }],
            mask_bits_per_qubit: 3,
        }
    }

    /// Readout (TX+RX) instruction: `start time(16) | duration(12)` plus a
    /// per-qubit enable bit.
    pub fn readout() -> Self {
        IsaFormat {
            name: "readout",
            fields: vec![
                Field { name: "start time", bits: 16 },
                Field { name: "duration", bits: 12 },
            ],
            mask_bits_per_qubit: 1,
        }
    }

    /// SFQ drive instruction (DigiQ-style, Fig. 5): `bitstream select
    /// (3 per #BS lane × lanes)` plus per-qubit gate select of
    /// `ceil(log2(#BS+1))` bits.
    ///
    /// # Panics
    ///
    /// Panics if `bs` is zero.
    pub fn sfq_drive(bs: u32) -> Self {
        assert!(bs > 0, "#BS must be at least 1");
        let select_bits = 8 * bs; // 8-bit gate index per broadcast lane
        let per_qubit = 32 - bs.leading_zeros(); // ceil(log2(bs+1))
        IsaFormat {
            name: "SFQ drive",
            fields: vec![Field { name: "bitstream select", bits: select_bits }],
            mask_bits_per_qubit: per_qubit.max(1),
        }
    }

    /// Opt-6 masked single-qubit instruction: `instruction select(4)`
    /// choosing among the eight `Ry(π/2)·Rz(nπ/4)` basis gates (+idle),
    /// plus a 1-bit per-qubit mask.
    pub fn masked_drive() -> Self {
        IsaFormat {
            name: "FTQC-masked drive (Opt-6)",
            fields: vec![Field { name: "instruction select", bits: 4 }],
            mask_bits_per_qubit: 1,
        }
    }
}

/// Per-qubit instruction traffic of one ESM round, used to size the
/// 300K→4K link (bits averaged over the ESM cycle time).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EsmTraffic {
    /// Single-qubit gate instructions per qubit per round (2 Hadamards on
    /// ancillas → averaged over data+ancilla = 1; plus Z-corrections).
    pub one_q_per_qubit: f64,
    /// Two-qubit (CZ) instructions per qubit per round (4 CZ layers touch
    /// each qubit ~2 times as control side).
    pub two_q_per_qubit: f64,
    /// Readout instructions per qubit per round (ancillas only → 0.5).
    pub readout_per_qubit: f64,
}

impl EsmTraffic {
    /// The surface-code ESM instruction mix (Fig. 1b): per round each
    /// ancilla gets 2 H + 4 CZ + 1 measure; data qubits participate in CZs
    /// and receive AC-Stark Z-corrections. Averaged per physical qubit.
    pub fn standard_esm() -> Self {
        EsmTraffic { one_q_per_qubit: 2.0, two_q_per_qubit: 2.0, readout_per_qubit: 0.5 }
    }

    /// Average link bandwidth in bits/s per qubit for the given formats and
    /// ESM cycle time.
    ///
    /// `group_qubits` is the masking-group size used by mask-style formats.
    ///
    /// # Panics
    ///
    /// Panics if `cycle_ns` is not positive.
    pub fn bandwidth_bps_per_qubit(
        &self,
        drive: &IsaFormat,
        pulse: &IsaFormat,
        readout: &IsaFormat,
        group_qubits: u32,
        cycle_ns: f64,
    ) -> f64 {
        assert!(cycle_ns > 0.0, "cycle time must be positive");
        let g = group_qubits as f64;
        // A masked instruction addresses the whole group at once: its cost
        // *per qubit* is (fixed + mask·g) / g. An unmasked (per-gate) format
        // costs its full width per gate.
        let per_qubit_cost = |fmt: &IsaFormat, ops: f64| -> f64 {
            if fmt.mask_bits_per_qubit > 0 {
                // One group instruction per layer; layers ≈ ops.
                ops * (fmt.fixed_bits() as f64 / g + fmt.mask_bits_per_qubit as f64)
            } else {
                ops * fmt.fixed_bits() as f64
            }
        };
        let bits = per_qubit_cost(drive, self.one_q_per_qubit)
            + per_qubit_cost(pulse, self.two_q_per_qubit)
            + per_qubit_cost(readout, self.readout_per_qubit);
        bits / (cycle_ns * 1e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn horse_ridge_drive_is_42_bits() {
        let isa = IsaFormat::horse_ridge_drive();
        assert_eq!(isa.fixed_bits(), 42);
        assert_eq!(isa.bits_per_instruction(32), 42);
    }

    #[test]
    fn masked_drive_compresses_by_more_than_90pct() {
        // Opt-6, Fig. 18: 93 % bandwidth reduction. The masked format sends
        // 4 fixed bits + 1 bit/qubit for a whole 32-qubit group where the
        // baseline sent 42 bits per gate per qubit; additionally the
        // H·Rz fusion halves the 1Q instruction count.
        let base = IsaFormat::horse_ridge_drive();
        let masked = IsaFormat::masked_drive();
        let t = EsmTraffic::standard_esm();
        let pulse = IsaFormat::pulse_masked();
        let ro = IsaFormat::readout();
        let bw_base = t.bandwidth_bps_per_qubit(&base, &pulse, &ro, 32, 1000.0);
        // Fused basis: half the 1Q instructions.
        let fused = EsmTraffic { one_q_per_qubit: t.one_q_per_qubit / 2.0, ..t };
        let bw_masked = fused.bandwidth_bps_per_qubit(&masked, &pulse, &ro, 32, 1000.0);
        let reduction = 1.0 - bw_masked / bw_base;
        assert!(reduction > 0.80, "reduction {reduction}");
        assert!(reduction < 0.99, "reduction {reduction}");
    }

    #[test]
    fn mask_cost_amortizes_over_group() {
        let pulse = IsaFormat::pulse_masked();
        // 16 fixed bits over 32 qubits + 3 mask bits each.
        assert_eq!(pulse.bits_per_instruction(32), 16 + 3 * 32);
    }

    #[test]
    fn sfq_drive_mask_width_grows_with_bs() {
        let bs1 = IsaFormat::sfq_drive(1);
        let bs8 = IsaFormat::sfq_drive(8);
        assert!(bs8.fixed_bits() > bs1.fixed_bits());
        assert!(bs8.mask_bits_per_qubit > bs1.mask_bits_per_qubit);
        assert_eq!(bs1.mask_bits_per_qubit, 1);
        assert_eq!(bs8.mask_bits_per_qubit, 4);
    }

    #[test]
    fn bandwidth_scales_inverse_with_cycle_time() {
        let t = EsmTraffic::standard_esm();
        let d = IsaFormat::horse_ridge_drive();
        let p = IsaFormat::pulse_masked();
        let r = IsaFormat::readout();
        let fast = t.bandwidth_bps_per_qubit(&d, &p, &r, 32, 500.0);
        let slow = t.bandwidth_bps_per_qubit(&d, &p, &r, 32, 1000.0);
        assert!((fast / slow - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "#BS must be at least 1")]
    fn zero_bs_panics() {
        let _ = IsaFormat::sfq_drive(0);
    }

    #[test]
    fn esm_traffic_baseline_bandwidth_is_hundreds_of_mbps() {
        // Sanity anchor for Fig. 18: at ~1 µs cycles the 42-bit ISA needs
        // O(100 Mb/s) per qubit, which at 62,208 qubits exceeds 1,000
        // 6 Gb/s lanes — exactly the wire-power wall the paper reports.
        let t = EsmTraffic::standard_esm();
        let bw = t.bandwidth_bps_per_qubit(
            &IsaFormat::horse_ridge_drive(),
            &IsaFormat::pulse_masked(),
            &IsaFormat::readout(),
            32,
            1117.0,
        );
        assert!(bw > 50.0e6 && bw < 500.0e6, "bw {bw}");
    }
}
