//! # qisim-microarch
//!
//! Detailed QCI microarchitectures for the QIsim scalability framework
//! (reproduction of Min et al., *QIsim*, ISCA 2023 — Section 3).
//!
//! One module per temperature/technology candidate:
//!
//! * [`room_cmos`] — 300 K CMOS QCIs over coax, microstrip, or photonic
//!   links (§3.1–3.2);
//! * [`cryo_cmos`] — the 4 K CMOS QCI: Horse-Ridge-style drive/TX/RX plus
//!   the paper's new virtual-Rz/Z-correction NCO, arbitrary-ramp pulse
//!   circuit, and the three RX state-decision units (§3.3);
//! * [`sfq`] — the 4 K SFQ QCI: bitstream drive with re-designed
//!   control-data buffer & bitstream generator, the new SFQDC AWG pulse
//!   circuit, and the full four-step JPM readout (§3.4).
//!
//! Each design is expressed twice: *behaviorally* (NCOs, sequencers,
//! bitstreams, decision units — the models the error crates exercise) and
//! as a power *inventory* ([`inventory::QciArch`]) consumed by
//! `qisim-power` and the scalability engine.
//!
//! # Examples
//!
//! Compare the 4 K device power of the baseline and Opt-1-optimized CMOS
//! QCIs:
//!
//! ```
//! use qisim_microarch::cryo_cmos::{CryoCmosConfig, DecisionKind};
//! use qisim_hal::fridge::Stage;
//!
//! let base = CryoCmosConfig::baseline().build();
//! let opt1 = CryoCmosConfig { decision: DecisionKind::Memoryless, ..CryoCmosConfig::baseline() }
//!     .build();
//! let n = 1152;
//! let p = |a: &qisim_microarch::inventory::QciArch| {
//!     a.device_static_w(Stage::K4, n) + a.device_dynamic_w(Stage::K4, n)
//! };
//! assert!(p(&opt1) < 0.6 * p(&base)); // Opt-1 halves the 4 K power
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cryo_cmos;
pub mod inventory;
pub mod isa;
pub mod room_cmos;
pub mod sfq;

pub use cryo_cmos::{CryoCmosConfig, DecisionKind, EsmProfile};
pub use inventory::{Component, QciArch, Resource, WirePlan};
pub use room_cmos::RoomInterconnect;
pub use sfq::SfqConfig;
