//! Property-based tests of the histogram quantile estimator and the
//! delta-snapshot algebra.
//!
//! Requires the `proptest` crate, which the offline reference build
//! cannot fetch; enable with `cargo test --features proptest` on a
//! machine with registry access (and add the dev-dependency back).

#![cfg(feature = "proptest")]

use proptest::prelude::*;
use qisim_obs::{Histogram, Snapshot};

fn histograms() -> impl Strategy<Value = Histogram> {
    prop::collection::vec(0.0f64..1e12, 1..200).prop_map(|samples| {
        let mut h = Histogram::new();
        for s in samples {
            h.observe(s);
        }
        h
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `quantile` is monotone non-decreasing in `q`.
    #[test]
    fn quantile_is_monotone_in_q(h in histograms(), a in 0.0f64..=1.0, b in 0.0f64..=1.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(h.quantile(lo) <= h.quantile(hi), "q{lo} > q{hi}");
    }

    /// The endpoints are exact: `q=0` is the recorded minimum and `q=1`
    /// the recorded maximum, not bucket midpoints.
    #[test]
    fn quantile_endpoints_are_exact(h in histograms()) {
        prop_assert_eq!(h.quantile(0.0), h.min());
        prop_assert_eq!(h.quantile(1.0), h.max());
    }

    /// Every quantile of a non-empty histogram lies within [min, max].
    #[test]
    fn quantiles_stay_within_range(h in histograms(), q in 0.0f64..=1.0) {
        let v = h.quantile(q);
        prop_assert!(v >= h.min() && v <= h.max(), "q{q} = {v} outside range");
    }

    /// Delta-of-delta is zero: once an interval has been differenced
    /// against itself, differencing again changes nothing.
    #[test]
    fn delta_of_delta_is_zero(
        names in prop::collection::vec("[a-z]{1,8}", 1..8),
        base in 0u64..1_000_000,
    ) {
        let mut snap = Snapshot::default();
        for (i, n) in names.iter().enumerate() {
            snap.counters.push((format!("{n}{i}"), base + i as u64));
        }
        let zero = snap.delta_since(&snap);
        for (_, v) in &zero.counters {
            prop_assert_eq!(*v, 0);
        }
        let still_zero = zero.delta_since(&zero);
        for (_, v) in &still_zero.counters {
            prop_assert_eq!(*v, 0);
        }
    }

    /// Counter deltas never go negative, even when the current value is
    /// below the previous one (a `reset()` happened mid-interval): the
    /// delta falls back to the post-reset count.
    #[test]
    fn counter_deltas_are_never_negative(prev in 0u64..1_000_000, cur in 0u64..1_000_000) {
        let mut a = Snapshot::default();
        a.counters.push(("c".into(), prev));
        let mut b = Snapshot::default();
        b.counters.push(("c".into(), cur));
        let d = b.delta_since(&a).counter("c").unwrap();
        let expect = if cur >= prev { cur - prev } else { cur };
        prop_assert_eq!(d, expect);
    }
}
