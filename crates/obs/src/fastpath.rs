//! Lock-free fast path for literal-name metrics.
//!
//! The general registry ([`crate::metrics::Registry`]) serializes every
//! hit through one mutex and a `BTreeMap` walk — fine for a scrape, too
//! expensive for a counter inside a power-bisection probe. Literal-name
//! call sites (`counter!("power.cache.hits")`, `span!("power.evaluate")`)
//! don't need a map at runtime: the name is known at compile time, so the
//! macro plants a per-call-site `static` handle that *interns* its slot
//! on first use and afterwards costs one relaxed atomic op (counters,
//! gauges) or one uncontended per-name mutex (span stats).
//!
//! Slots are leaked `&'static` allocations: the population is bounded by
//! the number of literal metric names in the compiled program. Interning
//! dedups by name, so two call sites bumping the same counter share one
//! slot and totals stay exact. [`crate::snapshot`] merges these slots
//! into the slow-path registry's snapshot and [`crate::reset`] clears
//! them, so exporters, tests, and the admin plane keep seeing a single
//! namespace regardless of which path recorded a series.
//!
//! With the `obs` feature compiled out the handles still exist (macro
//! expansions in dependent crates must type-check) but nothing ever
//! calls them: every macro guards on [`crate::enabled`], which is then a
//! constant `false`.

use crate::metrics::{Snapshot, SpanStats};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Interned counter cells, keyed by literal name.
static COUNTERS: Mutex<Vec<(&'static str, &'static AtomicU64)>> = Mutex::new(Vec::new());

/// Interned gauge cells, keyed by literal name.
static GAUGES: Mutex<Vec<(&'static str, &'static GaugeCell)>> = Mutex::new(Vec::new());

/// Interned span-stat cells, keyed by literal name.
static SPANS: Mutex<Vec<(&'static str, &'static Mutex<SpanStats>)>> = Mutex::new(Vec::new());

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A gauge value plus a "was ever set" flag (so an interned-but-unset
/// gauge stays out of snapshots, mirroring slow-path semantics where a
/// series only exists after its first write).
#[derive(Debug)]
struct GaugeCell {
    bits: AtomicU64,
    set: AtomicBool,
}

fn intern_counter(name: &'static str) -> &'static AtomicU64 {
    let mut table = lock(&COUNTERS);
    if let Some((_, cell)) = table.iter().find(|(n, _)| *n == name) {
        return cell;
    }
    let cell: &'static AtomicU64 = Box::leak(Box::new(AtomicU64::new(0)));
    table.push((name, cell));
    cell
}

fn intern_gauge(name: &'static str) -> &'static GaugeCell {
    let mut table = lock(&GAUGES);
    if let Some((_, cell)) = table.iter().find(|(n, _)| *n == name) {
        return cell;
    }
    let cell: &'static GaugeCell =
        Box::leak(Box::new(GaugeCell { bits: AtomicU64::new(0), set: AtomicBool::new(false) }));
    table.push((name, cell));
    cell
}

#[cfg_attr(not(feature = "obs"), allow(dead_code))]
fn intern_span(name: &'static str) -> &'static Mutex<SpanStats> {
    let mut table = lock(&SPANS);
    if let Some((_, cell)) = table.iter().find(|(n, _)| *n == name) {
        return cell;
    }
    let cell: &'static Mutex<SpanStats> = Box::leak(Box::new(Mutex::new(SpanStats::empty())));
    table.push((name, cell));
    cell
}

/// Macro plumbing: the per-call-site handle behind `counter!("name")`.
/// One relaxed `fetch_add` per hit once the slot is interned.
#[doc(hidden)]
#[derive(Debug)]
pub struct FastCounter {
    name: &'static str,
    slot: OnceLock<&'static AtomicU64>,
}

impl FastCounter {
    #[doc(hidden)]
    #[must_use]
    pub const fn new(name: &'static str) -> FastCounter {
        FastCounter { name, slot: OnceLock::new() }
    }

    #[doc(hidden)]
    #[inline]
    pub fn add(&self, delta: u64) {
        let slot = *self.slot.get_or_init(|| intern_counter(self.name));
        slot.fetch_add(delta, Ordering::Relaxed);
        // Literal counters also feed the flight recorder when armed
        // (same contract as the slow path's `counter_add_traced`).
        crate::trace::counter_event(self.name, delta);
    }
}

/// Macro plumbing: the per-call-site handle behind `gauge!("name", v)`.
#[doc(hidden)]
#[derive(Debug)]
pub struct FastGauge {
    name: &'static str,
    slot: OnceLock<&'static GaugeCell>,
}

impl FastGauge {
    #[doc(hidden)]
    #[must_use]
    pub const fn new(name: &'static str) -> FastGauge {
        FastGauge { name, slot: OnceLock::new() }
    }

    #[doc(hidden)]
    #[inline]
    pub fn set(&self, value: f64) {
        let slot = *self.slot.get_or_init(|| intern_gauge(self.name));
        slot.bits.store(value.to_bits(), Ordering::Relaxed);
        slot.set.store(true, Ordering::Release);
    }
}

/// Macro plumbing: the per-call-site handle behind `span!("name")`; the
/// guard records into this slot's own mutex instead of the registry.
#[doc(hidden)]
#[derive(Debug)]
#[cfg_attr(not(feature = "obs"), allow(dead_code))]
pub struct SpanSlot {
    name: &'static str,
    slot: OnceLock<&'static Mutex<SpanStats>>,
}

impl SpanSlot {
    #[doc(hidden)]
    #[must_use]
    pub const fn new(name: &'static str) -> SpanSlot {
        SpanSlot { name, slot: OnceLock::new() }
    }

    #[cfg_attr(not(feature = "obs"), allow(dead_code))]
    pub(crate) fn name(&self) -> &'static str {
        self.name
    }

    #[cfg_attr(not(feature = "obs"), allow(dead_code))]
    pub(crate) fn record(&self, total_ns: u64, self_ns: u64) {
        let slot = *self.slot.get_or_init(|| intern_span(self.name));
        let mut stats = lock(slot);
        stats.count += 1;
        stats.total_ns += total_ns;
        stats.self_ns += self_ns;
        stats.durations.observe(total_ns as f64);
    }
}

/// Folds every live fast-path slot into `snap`, preserving the
/// deterministic name ordering the slow-path snapshot guarantees. Zero
/// counters and never-set gauges are skipped (a series exists only once
/// it has recorded), and a name present on both paths is combined —
/// summed for counters and span stats, fast-write-wins for gauges.
#[cfg_attr(not(feature = "obs"), allow(dead_code))]
pub(crate) fn merge(snap: &mut Snapshot) {
    for (name, cell) in lock(&COUNTERS).iter() {
        let v = cell.load(Ordering::Relaxed);
        if v == 0 {
            continue;
        }
        match snap.counters.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
            Ok(i) => snap.counters[i].1 += v,
            Err(i) => snap.counters.insert(i, ((*name).to_owned(), v)),
        }
    }
    for (name, cell) in lock(&GAUGES).iter() {
        if !cell.set.load(Ordering::Acquire) {
            continue;
        }
        let v = f64::from_bits(cell.bits.load(Ordering::Relaxed));
        match snap.gauges.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
            Ok(i) => snap.gauges[i].1 = v,
            Err(i) => snap.gauges.insert(i, ((*name).to_owned(), v)),
        }
    }
    for (name, cell) in lock(&SPANS).iter() {
        let stats = lock(cell).clone();
        if stats.count == 0 {
            continue;
        }
        match snap.spans.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
            Ok(i) => {
                let merged = &mut snap.spans[i].1;
                merged.count += stats.count;
                merged.total_ns += stats.total_ns;
                merged.self_ns += stats.self_ns;
                merged.durations.merge_from(&stats.durations);
            }
            Err(i) => snap.spans.insert(i, ((*name).to_owned(), stats)),
        }
    }
}

/// Clears every fast-path slot (the [`crate::reset`] counterpart of
/// [`merge`]). Slots stay interned — only their contents reset.
#[cfg_attr(not(feature = "obs"), allow(dead_code))]
pub(crate) fn reset() {
    for (_, cell) in lock(&COUNTERS).iter() {
        cell.store(0, Ordering::Relaxed);
    }
    for (_, cell) in lock(&GAUGES).iter() {
        cell.set.store(false, Ordering::Relaxed);
        cell.bits.store(0, Ordering::Relaxed);
    }
    for (_, cell) in lock(&SPANS).iter() {
        *lock(cell) = SpanStats::empty();
    }
}

#[cfg(test)]
#[cfg(feature = "obs")]
mod tests {
    use super::*;

    #[test]
    fn interning_dedups_by_name_across_call_sites() {
        static A: FastCounter = FastCounter::new("fastpath.test.shared");
        static B: FastCounter = FastCounter::new("fastpath.test.shared");
        let _l = crate::global_test_lock();
        crate::reset();
        crate::set_enabled(true);
        A.add(2);
        B.add(3);
        let snap = crate::snapshot();
        assert_eq!(snap.counter("fastpath.test.shared"), Some(5));
        crate::reset();
        assert_eq!(crate::snapshot().counter("fastpath.test.shared"), None);
    }

    #[test]
    fn merge_combines_fast_and_slow_series() {
        static FAST: FastCounter = FastCounter::new("fastpath.test.both");
        static GAUGE: FastGauge = FastGauge::new("fastpath.test.gauge");
        let _l = crate::global_test_lock();
        crate::reset();
        crate::set_enabled(true);
        FAST.add(4);
        crate::counter_add("fastpath.test.both", 6); // slow path, same name
        GAUGE.set(2.5);
        let snap = crate::snapshot();
        assert_eq!(snap.counter("fastpath.test.both"), Some(10));
        assert_eq!(snap.gauge("fastpath.test.gauge"), Some(2.5));
        // Snapshot stays deterministically sorted after the merge.
        let mut names: Vec<&String> = snap.counters.iter().map(|(n, _)| n).collect();
        let sorted = names.clone();
        names.sort();
        assert_eq!(names, sorted);
        crate::reset();
    }

    #[test]
    fn span_slots_accumulate_and_reset() {
        static SLOT: SpanSlot = SpanSlot::new("fastpath.test.span");
        let _l = crate::global_test_lock();
        crate::reset();
        crate::set_enabled(true);
        SLOT.record(10, 10);
        SLOT.record(30, 20);
        let snap = crate::snapshot();
        let stats = snap.span("fastpath.test.span").expect("span merged");
        assert_eq!(stats.count, 2);
        assert_eq!(stats.total_ns, 40);
        assert_eq!(stats.self_ns, 30);
        assert_eq!(stats.durations.count(), 2);
        crate::reset();
        assert!(crate::snapshot().span("fastpath.test.span").is_none());
    }
}
