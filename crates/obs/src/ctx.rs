//! Request-scoped observability context: a thread-local request id that
//! every downstream signal — log records ([`crate::log`]), span
//! begin events, and flight-recorder instants ([`crate::trace`]) —
//! stamps automatically while a [`RequestScope`] is open.
//!
//! The context is deliberately tiny: one `u64` per thread (0 = none),
//! set by whoever owns the request boundary (`qisim-serve` assigns one
//! id per wire line) and read by the instrumentation layers. It never
//! crosses threads on its own; a fan-out that must carry the id hands
//! it to the worker explicitly.
//!
//! With the `obs` feature compiled out the scope is inert and
//! [`current`] always returns `None`.

#[cfg(feature = "obs")]
use std::cell::Cell;

#[cfg(feature = "obs")]
thread_local! {
    /// The calling thread's current request id (0 = no request scope).
    static CURRENT: Cell<u64> = const { Cell::new(0) };
}

/// The request id attached to the calling thread, if a [`RequestScope`]
/// is open. Always `None` when the `obs` feature is compiled out.
#[inline]
pub fn current() -> Option<u64> {
    #[cfg(feature = "obs")]
    {
        match CURRENT.with(Cell::get) {
            0 => None,
            id => Some(id),
        }
    }
    #[cfg(not(feature = "obs"))]
    {
        None
    }
}

/// RAII guard scoping a request id to the calling thread: spans, trace
/// events, and log records emitted while the guard lives carry the id;
/// dropping it restores whatever was set before (scopes nest).
#[derive(Debug)]
pub struct RequestScope {
    #[cfg(feature = "obs")]
    prev: u64,
}

impl RequestScope {
    /// Sets `id` as the calling thread's request id until the guard
    /// drops. An `id` of 0 clears the context for the scope's duration.
    pub fn enter(id: u64) -> RequestScope {
        #[cfg(feature = "obs")]
        {
            let prev = CURRENT.with(|c| c.replace(id));
            RequestScope { prev }
        }
        #[cfg(not(feature = "obs"))]
        {
            let _ = id;
            RequestScope {}
        }
    }
}

#[cfg(feature = "obs")]
impl Drop for RequestScope {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
    }
}
