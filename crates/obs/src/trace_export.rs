//! Flight-recorder exporters: render a [`TraceSession`] as Chrome
//! `trace_event` JSON (loads in `chrome://tracing` or
//! <https://ui.perfetto.dev>) or as folded flamegraph stacks (the
//! `stackcollapse` format consumed by `flamegraph.pl` and speedscope).
//!
//! Both exporters are pure functions over a drained session, so they
//! compile (and return empty documents) even when the `obs` feature is
//! off and every session is empty.

use crate::json::{push_f64, push_str_literal, push_u64};
use crate::trace::{ThreadTimeline, TraceEvent, TraceEventKind, TraceSession};
use std::collections::BTreeMap;

/// Chrome `trace_event` process id used for every event (the recorder
/// traces one process).
const PID: u32 = 1;

fn push_ts_us(out: &mut String, t_ns: u64) {
    // Chrome timestamps are microseconds; fractional digits keep the
    // full ns resolution.
    push_f64(out, t_ns as f64 / 1_000.0);
}

fn push_event_header(out: &mut String, name: &str, ph: char, t_ns: u64, tid: u32) {
    out.push_str("{\"name\":");
    push_str_literal(out, name);
    out.push_str(",\"cat\":\"qisim\",\"ph\":\"");
    out.push(ph);
    out.push_str("\",\"ts\":");
    push_ts_us(out, t_ns);
    out.push_str(",\"pid\":");
    push_u64(out, u64::from(PID));
    out.push_str(",\"tid\":");
    push_u64(out, u64::from(tid));
}

fn push_args(out: &mut String, ev: &TraceEvent, with_ids: bool) {
    let has_args = ev.args.iter().any(Option::is_some);
    if !has_args && !with_ids {
        return;
    }
    out.push_str(",\"args\":{");
    let mut first = true;
    let mut field = |out: &mut String, key: &str, value: f64| {
        if !first {
            out.push(',');
        }
        first = false;
        push_str_literal(out, key);
        out.push(':');
        push_f64(out, value);
    };
    if with_ids {
        field(out, "id", ev.span_id as f64);
        if ev.parent_id != 0 {
            field(out, "parent", ev.parent_id as f64);
        }
    }
    for (key, value) in ev.args.iter().flatten() {
        field(out, key, *value);
    }
    out.push('}');
}

/// Renders a session as a Chrome `trace_event` JSON object:
///
/// - one `thread_name` metadata event per lane (labels carry the
///   `qisim-par` worker indices);
/// - strictly balanced `B`/`E` span pairs per lane (span ids in `args`;
///   begins orphaned by ring truncation are closed at the lane's last
///   timestamp, ends whose begin was overwritten are skipped);
/// - `i` instant events (thread scope) with their numeric args;
/// - `C` counter events carrying a per-name running total accumulated
///   over all lanes in timestamp order.
pub fn chrome_trace_json(session: &TraceSession) -> String {
    let mut out = String::with_capacity(4096 + session.event_count() * 96);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if !first {
            out.push(',');
        }
        first = false;
    };
    for thread in &session.threads {
        sep(&mut out);
        out.push_str("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":");
        push_u64(&mut out, u64::from(PID));
        out.push_str(",\"tid\":");
        push_u64(&mut out, u64::from(thread.lane));
        out.push_str(",\"args\":{\"name\":");
        push_str_literal(&mut out, &thread.label);
        out.push_str("}}");
    }
    for thread in &session.threads {
        let last_t = thread.events.last().map_or(0, |e| e.t_ns);
        // Open spans, innermost last: (span_id, name, begin event index).
        let mut open: Vec<(u64, &'static str)> = Vec::new();
        for ev in &thread.events {
            match ev.kind {
                TraceEventKind::Begin => {
                    sep(&mut out);
                    push_event_header(&mut out, ev.name, 'B', ev.t_ns, thread.lane);
                    push_args(&mut out, ev, true);
                    out.push('}');
                    open.push((ev.span_id, ev.name));
                }
                TraceEventKind::End => {
                    let Some(depth) = open.iter().rposition(|&(id, _)| id == ev.span_id) else {
                        // The matching begin was overwritten by the
                        // ring's drop-oldest policy; skip to keep B/E
                        // balanced.
                        continue;
                    };
                    // RAII guards close LIFO, but if an inner end was
                    // lost, close the skipped frames here first.
                    while open.len() > depth {
                        let Some((_, name)) = open.pop() else { break };
                        sep(&mut out);
                        push_event_header(&mut out, name, 'E', ev.t_ns, thread.lane);
                        out.push('}');
                    }
                }
                TraceEventKind::Instant => {
                    sep(&mut out);
                    push_event_header(&mut out, ev.name, 'i', ev.t_ns, thread.lane);
                    out.push_str(",\"s\":\"t\"");
                    push_args(&mut out, ev, false);
                    out.push('}');
                }
                TraceEventKind::Counter => {} // second pass below
            }
        }
        // Spans still open when the session was drained (or whose end
        // was disarmed away): close them at the lane's last timestamp
        // so every emitted B has an E.
        while let Some((_, name)) = open.pop() {
            sep(&mut out);
            push_event_header(&mut out, name, 'E', last_t, thread.lane);
            out.push('}');
        }
    }
    // Counter events: accumulate deltas into per-name running totals in
    // global timestamp order (Chrome counter tracks are per process).
    let mut counters: Vec<(&TraceEvent, u32)> = session
        .threads
        .iter()
        .flat_map(|t| t.events.iter().map(move |e| (e, t.lane)))
        .filter(|(e, _)| e.kind == TraceEventKind::Counter)
        .collect();
    counters.sort_by_key(|(e, lane)| (e.t_ns, *lane));
    let mut totals: BTreeMap<&'static str, f64> = BTreeMap::new();
    for (ev, lane) in counters {
        let delta = ev.args[0].map_or(0.0, |(_, v)| v);
        let total = totals.entry(ev.name).or_insert(0.0);
        *total += delta;
        sep(&mut out);
        push_event_header(&mut out, ev.name, 'C', ev.t_ns, lane);
        out.push_str(",\"args\":{\"value\":");
        push_f64(&mut out, *total);
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

/// Renders a session as folded flamegraph stacks: one
/// `lane;span;span… <self-time-ns>` line per unique stack, sorted, with
/// the lane label as the root frame. Feed the output to `flamegraph.pl`
/// or paste it into <https://www.speedscope.app>.
///
/// Self time is attributed between consecutive span boundaries, so
/// nested spans subtract cleanly from their parents.
pub fn folded_stacks(session: &TraceSession) -> String {
    let mut weights: BTreeMap<String, u64> = BTreeMap::new();
    for thread in &session.threads {
        fold_thread(thread, &mut weights);
    }
    let mut out = String::new();
    for (stack, ns) in &weights {
        out.push_str(stack);
        out.push(' ');
        out.push_str(&ns.to_string());
        out.push('\n');
    }
    out
}

fn fold_thread(thread: &ThreadTimeline, weights: &mut BTreeMap<String, u64>) {
    let mut stack: Vec<(u64, &'static str)> = Vec::new();
    let mut last_t: Option<u64> = None;
    let mut attribute = |stack: &[(u64, &'static str)], last_t: &mut Option<u64>, t: u64| {
        if let Some(prev) = *last_t {
            if !stack.is_empty() && t > prev {
                let mut path = String::with_capacity(thread.label.len() + stack.len() * 24);
                path.push_str(&thread.label);
                for (_, name) in stack {
                    path.push(';');
                    path.push_str(name);
                }
                *weights.entry(path).or_insert(0) += t - prev;
            }
        }
        *last_t = Some(t);
    };
    for ev in &thread.events {
        match ev.kind {
            TraceEventKind::Begin => {
                attribute(&stack, &mut last_t, ev.t_ns);
                stack.push((ev.span_id, ev.name));
            }
            TraceEventKind::End => {
                if let Some(depth) = stack.iter().rposition(|&(id, _)| id == ev.span_id) {
                    attribute(&stack, &mut last_t, ev.t_ns);
                    stack.truncate(depth);
                }
            }
            // Instants and counters carry no duration; they neither
            // advance nor split the attribution window.
            TraceEventKind::Instant | TraceEventKind::Counter => {}
        }
    }
}

/// A well-formedness check for [`chrome_trace_json`] output, used by the
/// tests and the CI trace smoke step: the document must be valid JSON
/// (per [`crate::json_is_well_formed`]), declare a `traceEvents` array,
/// and contain exactly as many span-begin as span-end records.
pub fn trace_is_well_formed(json: &str) -> bool {
    fn count(haystack: &str, needle: &str) -> usize {
        haystack.match_indices(needle).count()
    }
    crate::export::json_is_well_formed(json)
        && json.contains("\"traceEvents\"")
        && count(json, "\"ph\":\"B\"") == count(json, "\"ph\":\"E\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: TraceEventKind, name: &'static str, t_ns: u64, span_id: u64) -> TraceEvent {
        TraceEvent { t_ns, kind, name, span_id, parent_id: 0, args: [None; crate::trace::MAX_ARGS] }
    }

    fn sample_session() -> TraceSession {
        let mut begin = ev(TraceEventKind::Begin, "scalability.analyze", 100, 1);
        begin.args[0] = Some(("qubits", 1024.0));
        let mut counter = ev(TraceEventKind::Counter, "power.bisection.iters", 350, 0);
        counter.args[0] = Some(("delta", 2.0));
        let mut counter2 = ev(TraceEventKind::Counter, "power.bisection.iters", 380, 0);
        counter2.args[0] = Some(("delta", 3.0));
        TraceSession {
            threads: vec![
                ThreadTimeline {
                    lane: 0,
                    label: "main".into(),
                    events: vec![
                        begin,
                        ev(TraceEventKind::Begin, "power.max_qubits", 300, 2),
                        counter,
                        counter2,
                        ev(TraceEventKind::End, "power.max_qubits", 700, 2),
                        ev(TraceEventKind::End, "scalability.analyze", 900, 1),
                    ],
                    dropped: 0,
                },
                ThreadTimeline {
                    lane: 1,
                    label: "qisim-par worker-0".into(),
                    events: vec![
                        ev(TraceEventKind::Instant, "par.chunk.dispatch", 400, 0),
                        ev(TraceEventKind::Begin, "power.evaluate", 410, 3),
                        ev(TraceEventKind::End, "power.evaluate", 600, 3),
                    ],
                    dropped: 0,
                },
            ],
            dropped_events: 0,
        }
    }

    #[test]
    fn chrome_export_is_well_formed_and_labeled() {
        let json = chrome_trace_json(&sample_session());
        assert!(trace_is_well_formed(&json), "{json}");
        assert!(json.contains("\"thread_name\""), "{json}");
        assert!(json.contains("\"qisim-par worker-0\""), "{json}");
        assert!(json.contains("\"ph\":\"i\""), "{json}");
        assert!(json.contains("\"qubits\":1024"), "{json}");
        // Timestamps are microseconds: 100 ns -> 0.1 us.
        assert!(json.contains("\"ts\":0.1"), "{json}");
        // Counter deltas 2 + 3 accumulate into a running total of 5.
        assert!(json.contains("\"value\":2"), "{json}");
        assert!(json.contains("\"value\":5"), "{json}");
    }

    #[test]
    fn orphan_begins_are_closed_and_orphan_ends_skipped() {
        let session = TraceSession {
            threads: vec![ThreadTimeline {
                lane: 0,
                label: "main".into(),
                events: vec![
                    // End whose begin was overwritten by drop-oldest.
                    ev(TraceEventKind::End, "lost.begin", 50, 99),
                    // Begin never closed before the drain.
                    ev(TraceEventKind::Begin, "open.span", 100, 1),
                    ev(TraceEventKind::Instant, "marker", 200, 0),
                ],
                dropped: 3,
            }],
            dropped_events: 3,
        };
        let json = chrome_trace_json(&session);
        assert!(trace_is_well_formed(&json), "{json}");
        assert!(!json.contains("lost.begin"), "{json}");
        // The open span is closed at the lane's last timestamp (200 ns).
        assert!(json.contains("\"open.span\",\"cat\":\"qisim\",\"ph\":\"E\",\"ts\":0.2"), "{json}");
    }

    #[test]
    fn empty_session_exports_cleanly() {
        let session = TraceSession::default();
        let json = chrome_trace_json(&session);
        assert_eq!(json, "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[]}");
        assert!(trace_is_well_formed(&json));
        assert_eq!(folded_stacks(&session), "");
    }

    #[test]
    fn folded_stacks_attribute_self_time() {
        let folded = folded_stacks(&sample_session());
        // Outer span: 900 - 100 total, minus the 300..700 child window.
        assert!(folded.contains("main;scalability.analyze 400\n"), "{folded}");
        assert!(folded.contains("main;scalability.analyze;power.max_qubits 400\n"), "{folded}");
        assert!(folded.contains("qisim-par worker-0;power.evaluate 190\n"), "{folded}");
        // Deterministic: sorted lines, trailing newline.
        let lines: Vec<&str> = folded.lines().collect();
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted);
    }

    #[test]
    fn well_formedness_checker_rejects_unbalanced_traces() {
        assert!(!trace_is_well_formed("{\"traceEvents\":[{\"ph\":\"B\"}]}"));
        assert!(!trace_is_well_formed("not json"));
        assert!(!trace_is_well_formed("{}")); // no traceEvents key
        assert!(trace_is_well_formed("{\"traceEvents\":[{\"ph\":\"B\"},{\"ph\":\"E\"}]}"));
    }
}
