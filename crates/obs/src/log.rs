//! Structured JSONL logging: leveled, rate-limited, one JSON object per
//! line, written to a file or stderr — the audit-trail counterpart to
//! the aggregate registry ([`crate::metrics`]) and the flight recorder
//! ([`crate::trace`]).
//!
//! # Record shape
//!
//! Every record is a single-line JSON object. The header fields are
//! written automatically; typed fields follow in call order:
//!
//! ```text
//! {"ts_ns":10452417,"level":"info","event":"serve.request.finish",
//!  "thread":"qisim-serve-worker","request_id":7,
//!  "outcome":"ok","latency_ms":1.25}
//! ```
//!
//! * `ts_ns` — nanoseconds since the process observability epoch (the
//!   same clock as [`crate::trace::now_ns`] and `Snapshot::at_ns`).
//! * `level` — `debug` / `info` / `warn` / `error`.
//! * `event` — a dotted event name (`serve.request.start`,
//!   `engine.stage`, …).
//! * `thread` — the recording thread's name.
//! * `request_id` — present automatically whenever a
//!   [`crate::ctx::RequestScope`] is open on the recording thread.
//!
//! Floats use the shortest round-trip formatting of [`crate::json`], so
//! a parsed record reproduces the recorded bits exactly.
//!
//! # Arming
//!
//! Mirrors [`crate::trace`] / [`crate::telemetry`]: **disarmed** by
//! default, where [`armed`] is a single relaxed atomic load and
//! [`record`] returns an inert builder whose field calls and `emit` are
//! no-ops. It arms in two ways:
//!
//! - through `QISIM_LOG=<path|stderr>[:level]`, read once on first use
//!   (`stderr` is the one magic path; the suffix after the last colon is
//!   a level name — `debug`, `info`, `warn`, `error` — defaulting to
//!   `info`);
//! - programmatically, via [`start`] / [`start_stderr`] / [`shutdown`] —
//!   the API the tests and `qisim-serve` use.
//!
//! # Rate limiting
//!
//! At most [`DEFAULT_RATE_CAP`] records per second are written
//! ([`set_rate_cap`] overrides); excess records within a window are
//! dropped, counted under `log.suppressed`, and summarized by a
//! synthetic `log.suppressed` record when the window rolls over (and on
//! [`shutdown`]), so a flooded log always says how much it lost.
//!
//! The `obs` cargo feature and [`crate::set_enabled`] remain the outer
//! kill switches for the metrics side; the logger itself only depends on
//! the feature (an operator can log with the registry disabled).

#[cfg(feature = "obs")]
use std::io::Write;
#[cfg(feature = "obs")]
use std::sync::atomic::{AtomicU32, AtomicU8, Ordering};
#[cfg(feature = "obs")]
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Default cap on records written per one-second window
/// ([`set_rate_cap`] overrides).
pub const DEFAULT_RATE_CAP: u32 = 2000;

/// Log severity, ordered `Debug < Info < Warn < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Per-stage and per-step detail (engine stage timings).
    Debug = 0,
    /// Request lifecycle records (the default threshold).
    Info = 1,
    /// Anomalies the service absorbed (slow requests, suppression).
    Warn = 2,
    /// Failures worth an operator's attention.
    Error = 3,
}

impl Level {
    /// Stable wire label (lowercase).
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }

    /// Inverse of [`Level::as_str`].
    pub fn from_label(label: &str) -> Option<Level> {
        match label {
            "debug" => Some(Level::Debug),
            "info" => Some(Level::Info),
            "warn" => Some(Level::Warn),
            "error" => Some(Level::Error),
            _ => None,
        }
    }
}

#[cfg(feature = "obs")]
const STATE_UNINIT: u8 = 0;
#[cfg(feature = "obs")]
const STATE_OFF: u8 = 1;
#[cfg(feature = "obs")]
const STATE_ON: u8 = 2;

#[cfg(feature = "obs")]
static ARMED: AtomicU8 = AtomicU8::new(STATE_UNINIT);
#[cfg(feature = "obs")]
static MIN_LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);
#[cfg(feature = "obs")]
static RATE_CAP: AtomicU32 = AtomicU32::new(DEFAULT_RATE_CAP);

/// Where armed records go.
#[cfg(feature = "obs")]
#[derive(Debug)]
enum SinkOut {
    Stderr,
    File(std::fs::File),
}

/// The sink plus its rate-limiter state, all under one mutex so a
/// window rollover and its suppression record are atomic.
#[cfg(feature = "obs")]
#[derive(Debug)]
struct Sink {
    out: SinkOut,
    window_start_ns: u64,
    written_in_window: u32,
    suppressed_in_window: u64,
}

#[cfg(feature = "obs")]
impl Sink {
    fn write_bytes(&mut self, bytes: &[u8]) {
        // Best-effort: a full disk or closed stderr must never take the
        // workload down.
        match &mut self.out {
            SinkOut::Stderr => {
                let _ = std::io::stderr().write_all(bytes);
            }
            SinkOut::File(f) => {
                let _ = f.write_all(bytes);
            }
        }
    }

    /// Rolls the one-second rate window forward, emitting the synthetic
    /// suppression summary for the window that just closed.
    fn roll_window(&mut self, now_ns: u64) {
        if now_ns.saturating_sub(self.window_start_ns) < 1_000_000_000 {
            return;
        }
        self.flush_suppressed(now_ns);
        self.window_start_ns = now_ns;
        self.written_in_window = 0;
    }

    /// Writes the `log.suppressed` summary record if any records were
    /// dropped since the last summary.
    fn flush_suppressed(&mut self, now_ns: u64) {
        if self.suppressed_in_window == 0 {
            return;
        }
        let mut line = String::with_capacity(96);
        line.push_str("{\"ts_ns\":");
        crate::json::push_u64(&mut line, now_ns);
        line.push_str(",\"level\":\"warn\",\"event\":\"log.suppressed\",\"dropped\":");
        crate::json::push_u64(&mut line, self.suppressed_in_window);
        line.push_str("}\n");
        self.suppressed_in_window = 0;
        self.write_bytes(line.as_bytes());
    }
}

#[cfg(feature = "obs")]
static SINK: Mutex<Option<Sink>> = Mutex::new(None);

#[cfg(feature = "obs")]
fn sink_slot() -> MutexGuard<'static, Option<Sink>> {
    SINK.lock().unwrap_or_else(|e| e.into_inner())
}

/// The `QISIM_LOG` value captured at first use (`None` = unset).
#[cfg(feature = "obs")]
static ENV_SPEC: OnceLock<Option<(String, Level)>> = OnceLock::new();

/// Parses a `<path|stderr>[:level]` spec: the suffix after the *last*
/// colon is the level only when it names one, so paths containing colons
/// still work. Empty specs are `None`.
#[cfg(feature = "obs")]
fn parse_spec(spec: &str) -> Option<(String, Level)> {
    let spec = spec.trim();
    if spec.is_empty() {
        return None;
    }
    if let Some((path, level)) = spec.rsplit_once(':') {
        if !path.is_empty() {
            if let Some(level) = Level::from_label(level.trim()) {
                return Some((path.to_string(), level));
            }
        }
    }
    Some((spec.to_string(), Level::Info))
}

#[cfg(feature = "obs")]
fn env_spec() -> &'static Option<(String, Level)> {
    ENV_SPEC.get_or_init(|| std::env::var("QISIM_LOG").ok().as_deref().and_then(parse_spec))
}

/// One-time arming decision from the environment; returns whether the
/// logger armed.
#[cfg(feature = "obs")]
fn init_from_env() -> bool {
    match env_spec() {
        Some((path, level)) if path == "stderr" => start_stderr(*level),
        Some((path, level)) => {
            let armed = start(path, *level);
            if !armed {
                eprintln!("qisim-obs: QISIM_LOG: cannot open log sink `{path}`; logging disabled");
            }
            armed
        }
        None => {
            ARMED.store(STATE_OFF, Ordering::Relaxed);
            false
        }
    }
}

/// Whether a record at `level` would currently be written. Always
/// `false` when the `obs` feature is compiled out. This is the hot-path
/// gate: when disarmed it is a single relaxed atomic load.
#[inline]
pub fn armed(level: Level) -> bool {
    #[cfg(feature = "obs")]
    {
        let on = match ARMED.load(Ordering::Relaxed) {
            STATE_UNINIT => init_from_env(),
            state => state == STATE_ON,
        };
        on && level as u8 >= MIN_LEVEL.load(Ordering::Relaxed)
    }
    #[cfg(not(feature = "obs"))]
    {
        let _ = level;
        false
    }
}

/// Arms the logger writing JSONL records at or above `level` to the file
/// at `path` (created/truncated). Returns `false` (changing nothing)
/// when a sink is already armed, the file cannot be created, or the
/// `obs` feature is compiled out.
pub fn start(path: &str, level: Level) -> bool {
    #[cfg(feature = "obs")]
    {
        let mut slot = sink_slot();
        if slot.is_some() {
            return false;
        }
        let Ok(file) = std::fs::File::create(path) else {
            ARMED.store(STATE_OFF, Ordering::Relaxed);
            return false;
        };
        *slot = Some(Sink {
            out: SinkOut::File(file),
            window_start_ns: crate::trace::now_ns(),
            written_in_window: 0,
            suppressed_in_window: 0,
        });
        MIN_LEVEL.store(level as u8, Ordering::Relaxed);
        ARMED.store(STATE_ON, Ordering::Relaxed);
        true
    }
    #[cfg(not(feature = "obs"))]
    {
        let _ = (path, level);
        false
    }
}

/// Arms the logger writing to stderr. Same contract as [`start`].
pub fn start_stderr(level: Level) -> bool {
    #[cfg(feature = "obs")]
    {
        let mut slot = sink_slot();
        if slot.is_some() {
            return false;
        }
        *slot = Some(Sink {
            out: SinkOut::Stderr,
            window_start_ns: crate::trace::now_ns(),
            written_in_window: 0,
            suppressed_in_window: 0,
        });
        MIN_LEVEL.store(level as u8, Ordering::Relaxed);
        ARMED.store(STATE_ON, Ordering::Relaxed);
        true
    }
    #[cfg(not(feature = "obs"))]
    {
        let _ = level;
        false
    }
}

/// Disarms the logger: writes the pending suppression summary, flushes,
/// and closes the sink. Returns `false` when no sink was armed.
pub fn shutdown() -> bool {
    #[cfg(feature = "obs")]
    {
        let mut slot = sink_slot();
        let Some(mut sink) = slot.take() else { return false };
        sink.flush_suppressed(crate::trace::now_ns());
        if let SinkOut::File(f) = &mut sink.out {
            let _ = f.flush();
        }
        ARMED.store(STATE_OFF, Ordering::Relaxed);
        true
    }
    #[cfg(not(feature = "obs"))]
    {
        false
    }
}

/// Changes the minimum written level of the armed sink.
pub fn set_level(level: Level) {
    #[cfg(feature = "obs")]
    MIN_LEVEL.store(level as u8, Ordering::Relaxed);
    #[cfg(not(feature = "obs"))]
    let _ = level;
}

/// Overrides the per-second record cap (clamped to at least 1); see
/// [`DEFAULT_RATE_CAP`].
pub fn set_rate_cap(records_per_second: u32) {
    #[cfg(feature = "obs")]
    RATE_CAP.store(records_per_second.max(1), Ordering::Relaxed);
    #[cfg(not(feature = "obs"))]
    let _ = records_per_second;
}

/// A JSONL record under construction; created by [`record`]. Field
/// methods append typed `key:value` pairs in call order and [`emit`]
/// writes the finished line. When the logger is disarmed (or the record
/// is below the threshold) every method is a no-op.
///
/// [`emit`]: Record::emit
#[derive(Debug)]
#[must_use = "a record does nothing until .emit()"]
pub struct Record {
    #[cfg(feature = "obs")]
    buf: Option<String>,
}

/// Opens a record at `level` for `event`. The header fields (`ts_ns`,
/// `level`, `event`, `thread`, and — when a [`crate::ctx::RequestScope`]
/// is open — `request_id`) are filled in automatically; chain typed
/// field calls and finish with [`Record::emit`].
pub fn record(level: Level, event: &str) -> Record {
    #[cfg(feature = "obs")]
    {
        if !armed(level) {
            return Record { buf: None };
        }
        let mut buf = String::with_capacity(192);
        buf.push_str("{\"ts_ns\":");
        crate::json::push_u64(&mut buf, crate::trace::now_ns());
        buf.push_str(",\"level\":\"");
        buf.push_str(level.as_str());
        buf.push_str("\",\"event\":");
        crate::json::push_str_literal(&mut buf, event);
        buf.push_str(",\"thread\":");
        let thread = std::thread::current();
        crate::json::push_str_literal(&mut buf, thread.name().unwrap_or("unnamed"));
        if let Some(id) = crate::ctx::current() {
            buf.push_str(",\"request_id\":");
            crate::json::push_u64(&mut buf, id);
        }
        Record { buf: Some(buf) }
    }
    #[cfg(not(feature = "obs"))]
    {
        let _ = (level, event);
        Record {}
    }
}

impl Record {
    #[cfg(feature = "obs")]
    fn key(&mut self, key: &str) {
        if let Some(buf) = &mut self.buf {
            buf.push(',');
            crate::json::push_str_literal(buf, key);
            buf.push(':');
        }
    }

    /// Appends a string field (JSON-escaped).
    #[cfg_attr(not(feature = "obs"), allow(unused_mut))]
    pub fn str(mut self, key: &str, value: &str) -> Record {
        #[cfg(feature = "obs")]
        {
            self.key(key);
            if let Some(buf) = &mut self.buf {
                crate::json::push_str_literal(buf, value);
            }
        }
        #[cfg(not(feature = "obs"))]
        let _ = (key, value);
        self
    }

    /// Appends an unsigned-integer field.
    #[cfg_attr(not(feature = "obs"), allow(unused_mut))]
    pub fn u64(mut self, key: &str, value: u64) -> Record {
        #[cfg(feature = "obs")]
        {
            self.key(key);
            if let Some(buf) = &mut self.buf {
                crate::json::push_u64(buf, value);
            }
        }
        #[cfg(not(feature = "obs"))]
        let _ = (key, value);
        self
    }

    /// Appends a signed-integer field.
    #[cfg_attr(not(feature = "obs"), allow(unused_mut))]
    pub fn i64(mut self, key: &str, value: i64) -> Record {
        #[cfg(feature = "obs")]
        {
            self.key(key);
            if let Some(buf) = &mut self.buf {
                buf.push_str(&value.to_string());
            }
        }
        #[cfg(not(feature = "obs"))]
        let _ = (key, value);
        self
    }

    /// Appends a float field in shortest round-trip form (non-finite
    /// values become `null`, see [`crate::json::push_f64`]).
    #[cfg_attr(not(feature = "obs"), allow(unused_mut))]
    pub fn f64(mut self, key: &str, value: f64) -> Record {
        #[cfg(feature = "obs")]
        {
            self.key(key);
            if let Some(buf) = &mut self.buf {
                crate::json::push_f64(buf, value);
            }
        }
        #[cfg(not(feature = "obs"))]
        let _ = (key, value);
        self
    }

    /// Appends a boolean field.
    #[cfg_attr(not(feature = "obs"), allow(unused_mut))]
    pub fn bool(mut self, key: &str, value: bool) -> Record {
        #[cfg(feature = "obs")]
        {
            self.key(key);
            if let Some(buf) = &mut self.buf {
                buf.push_str(if value { "true" } else { "false" });
            }
        }
        #[cfg(not(feature = "obs"))]
        let _ = (key, value);
        self
    }

    /// Closes the record and writes it (subject to the rate limiter).
    pub fn emit(self) {
        #[cfg(feature = "obs")]
        {
            let Some(mut buf) = self.buf else { return };
            buf.push_str("}\n");
            write_line(&buf);
        }
    }
}

/// Writes one finished line through the rate limiter.
#[cfg(feature = "obs")]
fn write_line(line: &str) {
    let now_ns = crate::trace::now_ns();
    let mut slot = sink_slot();
    let Some(sink) = slot.as_mut() else { return };
    sink.roll_window(now_ns);
    if sink.written_in_window >= RATE_CAP.load(Ordering::Relaxed) {
        sink.suppressed_in_window += 1;
        drop(slot);
        crate::counter_add("log.suppressed", 1);
        return;
    }
    sink.written_in_window += 1;
    sink.write_bytes(line.as_bytes());
    drop(slot);
    crate::counter_add("log.records", 1);
}
