//! A hand-rolled JSON writer (the build environment has no network, so
//! `serde` is off the table).
//!
//! Only what the exporters need: object/array framing helpers, correct
//! string escaping, and float formatting that never emits invalid JSON
//! (non-finite floats become `null`).

/// Appends `s` to `out` as a JSON string literal (with the quotes).
pub fn push_str_literal(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Escapes a string into a fresh JSON literal.
pub fn string_literal(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    push_str_literal(&mut out, s);
    out
}

/// Appends a float as a JSON number; NaN and ±infinity become `null`
/// (JSON has no representation for them).
///
/// Finite values use shortest-round-trip formatting (the same contract
/// as `qisim::codec`): the emitted text is the shortest of the decimal
/// and scientific renderings that parses back to the exact same bits,
/// so integral values print as `1024` (not `1024.0`) and tiny values as
/// `2e-5` (not `0.00002`), while inexact values keep every digit they
/// need.
pub fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&shortest_f64(v));
    } else {
        out.push_str("null");
    }
}

/// Shortest text for a finite f64 that round-trips bit-exactly. Every
/// candidate (`{}`, `{:?}`, `{:.p$e}`) is a valid JSON number for finite
/// input, so the result always is too.
fn shortest_f64(v: f64) -> String {
    debug_assert!(v.is_finite());
    let bits = v.to_bits();
    let round_trips = |s: &str| s.parse::<f64>().map(f64::to_bits) == Ok(bits);
    // `{:?}` is Rust's shortest-digits formatting and always round-trips;
    // start from it and only accept strictly shorter exact candidates.
    let mut best = format!("{v:?}");
    let display = format!("{v}");
    if display.len() < best.len() && round_trips(&display) {
        best = display;
    }
    for precision in 0..17 {
        let sci = format!("{v:.precision$e}");
        if sci.len() >= best.len() {
            break; // precision only grows the string from here on
        }
        if round_trips(&sci) {
            best = sci;
            break;
        }
    }
    best
}

/// Appends an unsigned integer.
pub fn push_u64(out: &mut String, v: u64) {
    out.push_str(&v.to_string());
}

/// A minimal streaming object writer handling the comma bookkeeping.
#[derive(Debug)]
pub struct ObjectWriter<'a> {
    out: &'a mut String,
    first: bool,
}

impl<'a> ObjectWriter<'a> {
    /// Opens `{`.
    pub fn new(out: &'a mut String) -> Self {
        out.push('{');
        ObjectWriter { out, first: true }
    }

    fn key(&mut self, key: &str) {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        push_str_literal(self.out, key);
        self.out.push(':');
    }

    /// Writes `"key": <float-or-null>`.
    pub fn field_f64(&mut self, key: &str, v: f64) {
        self.key(key);
        push_f64(self.out, v);
    }

    /// Writes `"key": <uint>`.
    pub fn field_u64(&mut self, key: &str, v: u64) {
        self.key(key);
        push_u64(self.out, v);
    }

    /// Writes `"key": "string"`.
    pub fn field_str(&mut self, key: &str, v: &str) {
        self.key(key);
        push_str_literal(self.out, v);
    }

    /// Writes `"key": <raw>` where `raw` is pre-serialized JSON.
    pub fn field_raw(&mut self, key: &str, raw: &str) {
        self.key(key);
        self.out.push_str(raw);
    }

    /// Closes `}`.
    pub fn finish(self) {
        self.out.push('}');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_quotes_and_backslashes() {
        assert_eq!(string_literal(r#"a"b\c"#), r#""a\"b\\c""#);
    }

    #[test]
    fn escapes_control_characters() {
        assert_eq!(string_literal("a\nb\tc\r"), r#""a\nb\tc\r""#);
        assert_eq!(string_literal("\u{01}"), "\"\\u0001\"");
        assert_eq!(string_literal("\u{1f}"), "\"\\u001f\"");
        assert_eq!(string_literal("\u{08}\u{0c}"), r#""\b\f""#);
    }

    #[test]
    fn unicode_passes_through_unescaped() {
        assert_eq!(string_literal("µW @ 20 mK — ok"), "\"µW @ 20 mK — ok\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut s = String::new();
        push_f64(&mut s, f64::NAN);
        s.push(',');
        push_f64(&mut s, f64::INFINITY);
        s.push(',');
        push_f64(&mut s, f64::NEG_INFINITY);
        assert_eq!(s, "null,null,null");
    }

    #[test]
    fn finite_floats_round_trip() {
        for v in [0.0, -1.5, 1e-300, 6.02e23, 1117.0, 0.1, 2e-5, 1.9999999999999998e-5] {
            let mut s = String::new();
            push_f64(&mut s, v);
            assert_eq!(s.parse::<f64>().unwrap().to_bits(), v.to_bits(), "formatting {v}");
        }
    }

    #[test]
    fn floats_use_shortest_round_trip_form() {
        for (v, expected) in [
            (1024.0, "1024"),
            (-1.5, "-1.5"),
            (0.1, "0.1"),
            (2e-5, "2e-5"),
            (0.00002, "2e-5"),
            (1e300, "1e300"),
            (0.0, "0"),
            (691.0, "691"),
        ] {
            let mut s = String::new();
            push_f64(&mut s, v);
            assert_eq!(s, expected, "formatting {v}");
        }
        // Values with no short exact form keep every digit they need.
        let noisy = 1.9999999999999998e-5;
        let mut s = String::new();
        push_f64(&mut s, noisy);
        assert_eq!(s.parse::<f64>().unwrap().to_bits(), noisy.to_bits());
    }

    #[test]
    fn object_writer_handles_commas() {
        let mut s = String::new();
        let mut w = ObjectWriter::new(&mut s);
        w.field_u64("a", 1);
        w.field_str("b", "x\"y");
        w.field_f64("c", f64::NAN);
        w.field_raw("d", "[1,2]");
        w.finish();
        assert_eq!(s, r#"{"a":1,"b":"x\"y","c":null,"d":[1,2]}"#);
    }
}
