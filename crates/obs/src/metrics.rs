//! The metrics registry: named counters, gauges, histograms, and span
//! statistics behind one mutex.
//!
//! Names are dotted paths mirroring the Fig. 6 pipeline
//! (`power.max_qubits`, `cyclesim.simulate`, `scalability.analyze`, …).
//! `BTreeMap` keys keep every export deterministically ordered.

use crate::hist::Histogram;
use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard};

/// Aggregated timing statistics of one span name.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanStats {
    /// Times the span was entered.
    pub count: u64,
    /// Total wall-clock nanoseconds (inclusive of children).
    pub total_ns: u64,
    /// Nanoseconds excluding time spent in nested child spans.
    pub self_ns: u64,
    /// Per-call duration distribution (ns).
    pub durations: Histogram,
}

impl SpanStats {
    fn new() -> Self {
        SpanStats { count: 0, total_ns: 0, self_ns: 0, durations: Histogram::new() }
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    hists: BTreeMap<String, Histogram>,
    spans: BTreeMap<String, SpanStats>,
}

/// A thread-safe registry of counters, gauges, histograms, and spans.
///
/// Most code uses the process-global registry through the crate-level
/// functions and macros; an owned `Registry` exists so tests can run in
/// isolation.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

/// A point-in-time copy of the registry contents, used by the exporters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Counter values.
    pub counters: Vec<(String, u64)>,
    /// Gauge values.
    pub gauges: Vec<(String, f64)>,
    /// Histogram contents.
    pub hists: Vec<(String, Histogram)>,
    /// Span statistics.
    pub spans: Vec<(String, SpanStats)>,
}

impl Snapshot {
    /// Whether the snapshot holds no data at all.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.hists.is_empty()
            && self.spans.is_empty()
    }

    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Looks up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Looks up span statistics by name.
    pub fn span(&self, name: &str) -> Option<&SpanStats> {
        self.spans.iter().find(|(n, _)| n == name).map(|(_, s)| s)
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        // A panic mid-record can only leave a half-updated metric, never a
        // broken invariant worth refusing service over.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Adds `delta` to the named counter.
    pub fn counter_add(&self, name: &str, delta: u64) {
        let mut g = self.lock();
        if let Some(v) = g.counters.get_mut(name) {
            *v += delta;
        } else {
            g.counters.insert(name.to_owned(), delta);
        }
    }

    /// Sets the named gauge to `value` (last write wins).
    pub fn gauge_set(&self, name: &str, value: f64) {
        let mut g = self.lock();
        match g.gauges.get_mut(name) {
            Some(v) => *v = value,
            None => {
                g.gauges.insert(name.to_owned(), value);
            }
        }
    }

    /// Records `value` into the named histogram.
    pub fn observe(&self, name: &str, value: f64) {
        let mut g = self.lock();
        if let Some(h) = g.hists.get_mut(name) {
            h.observe(value);
        } else {
            let mut h = Histogram::new();
            h.observe(value);
            g.hists.insert(name.to_owned(), h);
        }
    }

    /// Records one completed span occurrence.
    pub fn record_span(&self, name: &str, total_ns: u64, self_ns: u64) {
        let mut g = self.lock();
        let s = g.spans.entry(name.to_owned()).or_insert_with(SpanStats::new);
        s.count += 1;
        s.total_ns += total_ns;
        s.self_ns += self_ns;
        s.durations.observe(total_ns as f64);
    }

    /// Copies the current contents out for export.
    pub fn snapshot(&self) -> Snapshot {
        let g = self.lock();
        Snapshot {
            counters: g.counters.iter().map(|(k, &v)| (k.clone(), v)).collect(),
            gauges: g.gauges.iter().map(|(k, &v)| (k.clone(), v)).collect(),
            hists: g.hists.iter().map(|(k, v)| (k.clone(), v.clone())).collect(),
            spans: g.spans.iter().map(|(k, v)| (k.clone(), v.clone())).collect(),
        }
    }

    /// Clears every metric.
    pub fn reset(&self) {
        *self.lock() = Inner::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let r = Registry::new();
        r.counter_add("a.calls", 2);
        r.counter_add("a.calls", 3);
        r.counter_add("b.calls", 1);
        let s = r.snapshot();
        assert_eq!(s.counter("a.calls"), Some(5));
        assert_eq!(s.counter("b.calls"), Some(1));
        assert_eq!(s.counter("missing"), None);
    }

    #[test]
    fn gauges_are_last_write_wins() {
        let r = Registry::new();
        r.gauge_set("u", 0.25);
        r.gauge_set("u", 0.75);
        assert_eq!(r.snapshot().gauge("u"), Some(0.75));
    }

    #[test]
    fn spans_aggregate_count_total_and_self() {
        let r = Registry::new();
        r.record_span("outer", 1000, 400);
        r.record_span("outer", 3000, 1000);
        let s = r.snapshot();
        let st = s.span("outer").unwrap();
        assert_eq!(st.count, 2);
        assert_eq!(st.total_ns, 4000);
        assert_eq!(st.self_ns, 1400);
        assert_eq!(st.durations.count(), 2);
    }

    #[test]
    fn reset_clears_everything() {
        let r = Registry::new();
        r.counter_add("x", 1);
        r.observe("h", 2.0);
        r.record_span("s", 10, 10);
        r.reset();
        assert!(r.snapshot().is_empty());
    }

    #[test]
    fn snapshot_is_deterministically_ordered() {
        let r = Registry::new();
        for name in ["zeta", "alpha", "mid"] {
            r.counter_add(name, 1);
        }
        let snap = r.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["alpha", "mid", "zeta"]);
    }

    #[test]
    fn registry_is_shareable_across_threads() {
        let r = std::sync::Arc::new(Registry::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let r = r.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        r.counter_add("t", 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.snapshot().counter("t"), Some(4000));
    }
}
