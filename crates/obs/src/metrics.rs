//! The metrics registry: named counters, gauges, histograms, and span
//! statistics behind one mutex.
//!
//! Names are dotted paths mirroring the Fig. 6 pipeline
//! (`power.max_qubits`, `cyclesim.simulate`, `scalability.analyze`, …).
//! `BTreeMap` keys keep every export deterministically ordered.

use crate::hist::Histogram;
use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard};

/// Aggregated timing statistics of one span name.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanStats {
    /// Times the span was entered.
    pub count: u64,
    /// Total wall-clock nanoseconds (inclusive of children).
    pub total_ns: u64,
    /// Nanoseconds excluding time spent in nested child spans.
    pub self_ns: u64,
    /// Per-call duration distribution (ns).
    pub durations: Histogram,
}

impl SpanStats {
    fn new() -> Self {
        SpanStats { count: 0, total_ns: 0, self_ns: 0, durations: Histogram::new() }
    }

    /// A zeroed stats block (fast-path slot initializer).
    pub(crate) fn empty() -> Self {
        SpanStats::new()
    }

    /// The occurrences recorded since `prev` (see
    /// [`Snapshot::delta_since`]). A registry reset between the two
    /// snapshots makes the whole current value the delta; counts never
    /// go negative.
    fn delta_since(&self, prev: &SpanStats) -> SpanStats {
        if self.count < prev.count {
            return self.clone();
        }
        SpanStats {
            count: self.count - prev.count,
            total_ns: self.total_ns.saturating_sub(prev.total_ns),
            self_ns: self.self_ns.saturating_sub(prev.self_ns),
            durations: self.durations.delta_since(&prev.durations),
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    hists: BTreeMap<String, Histogram>,
    spans: BTreeMap<String, SpanStats>,
}

/// A thread-safe registry of counters, gauges, histograms, and spans.
///
/// Most code uses the process-global registry through the crate-level
/// functions and macros; an owned `Registry` exists so tests can run in
/// isolation.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

/// A point-in-time copy of the registry contents, used by the exporters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Monotonic capture timestamp: nanoseconds since the process
    /// observability epoch (the recorder's first timestamp request).
    /// Two snapshots of the same registry order by `at_ns`, so an
    /// interval's wall-clock length is `cur.at_ns - prev.at_ns` — the
    /// denominator that turns [`Snapshot::delta_since`] counters into
    /// rates. Always 0 when the `obs` feature is compiled out.
    pub at_ns: u64,
    /// Counter values.
    pub counters: Vec<(String, u64)>,
    /// Gauge values.
    pub gauges: Vec<(String, f64)>,
    /// Histogram contents.
    pub hists: Vec<(String, Histogram)>,
    /// Span statistics.
    pub spans: Vec<(String, SpanStats)>,
}

impl Snapshot {
    /// Whether the snapshot holds no data at all.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.hists.is_empty()
            && self.spans.is_empty()
    }

    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Looks up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Looks up span statistics by name.
    pub fn span(&self, name: &str) -> Option<&SpanStats> {
        self.spans.iter().find(|(n, _)| n == name).map(|(_, s)| s)
    }

    /// Looks up a histogram by name.
    pub fn hist(&self, name: &str) -> Option<&Histogram> {
        self.hists.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// The activity between `prev` and `self`, as a snapshot of its own:
    /// counters become per-interval increments, histograms and span
    /// durations hold only the interval's samples (so p50/p99 describe
    /// the last interval, not the process lifetime), and gauges keep
    /// their latest value (a gauge has no meaningful delta).
    ///
    /// Every series present in `self` stays present in the delta even
    /// when its interval value is zero, so a scraper sees a stable set
    /// of time series instead of families that blink in and out. Series
    /// that vanished entirely (only possible across a [`Registry::reset`])
    /// are dropped. A reset between the snapshots never produces a
    /// negative delta: a counter that shrank reports its full current
    /// value (everything since the reset is new).
    ///
    /// `delta_since` of two identical snapshots is all-zero, and the
    /// delta of a delta against itself is zero again — the operation is
    /// idempotent at zero, which the telemetry tests pin.
    pub fn delta_since(&self, prev: &Snapshot) -> Snapshot {
        let counter_delta = |cur: u64, prev: Option<u64>| {
            let p = prev.unwrap_or(0);
            if cur >= p {
                cur - p
            } else {
                cur // reset in between: everything is new
            }
        };
        Snapshot {
            at_ns: self.at_ns,
            counters: self
                .counters
                .iter()
                .map(|(n, v)| (n.clone(), counter_delta(*v, prev.counter(n))))
                .collect(),
            gauges: self.gauges.clone(),
            hists: self
                .hists
                .iter()
                .map(|(n, h)| {
                    let d = match prev.hist(n) {
                        Some(p) => h.delta_since(p),
                        None => h.clone(),
                    };
                    (n.clone(), d)
                })
                .collect(),
            spans: self
                .spans
                .iter()
                .map(|(n, s)| {
                    let d = match prev.span(n) {
                        Some(p) => s.delta_since(p),
                        None => s.clone(),
                    };
                    (n.clone(), d)
                })
                .collect(),
        }
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        // A panic mid-record can only leave a half-updated metric, never a
        // broken invariant worth refusing service over.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Adds `delta` to the named counter.
    pub fn counter_add(&self, name: &str, delta: u64) {
        let mut g = self.lock();
        if let Some(v) = g.counters.get_mut(name) {
            *v += delta;
        } else {
            g.counters.insert(name.to_owned(), delta);
        }
    }

    /// Sets the named gauge to `value` (last write wins).
    pub fn gauge_set(&self, name: &str, value: f64) {
        let mut g = self.lock();
        match g.gauges.get_mut(name) {
            Some(v) => *v = value,
            None => {
                g.gauges.insert(name.to_owned(), value);
            }
        }
    }

    /// Records `value` into the named histogram.
    pub fn observe(&self, name: &str, value: f64) {
        let mut g = self.lock();
        if let Some(h) = g.hists.get_mut(name) {
            h.observe(value);
        } else {
            let mut h = Histogram::new();
            h.observe(value);
            g.hists.insert(name.to_owned(), h);
        }
    }

    /// Records one completed span occurrence.
    pub fn record_span(&self, name: &str, total_ns: u64, self_ns: u64) {
        let mut g = self.lock();
        let s = g.spans.entry(name.to_owned()).or_insert_with(SpanStats::new);
        s.count += 1;
        s.total_ns += total_ns;
        s.self_ns += self_ns;
        s.durations.observe(total_ns as f64);
    }

    /// Copies the current contents out for export, stamped with the
    /// monotonic capture time ([`Snapshot::at_ns`]).
    pub fn snapshot(&self) -> Snapshot {
        let at_ns = crate::trace::now_ns();
        let g = self.lock();
        Snapshot {
            at_ns,
            counters: g.counters.iter().map(|(k, &v)| (k.clone(), v)).collect(),
            gauges: g.gauges.iter().map(|(k, &v)| (k.clone(), v)).collect(),
            hists: g.hists.iter().map(|(k, v)| (k.clone(), v.clone())).collect(),
            spans: g.spans.iter().map(|(k, v)| (k.clone(), v.clone())).collect(),
        }
    }

    /// The activity since `prev` was captured from this registry:
    /// [`Registry::snapshot`] followed by [`Snapshot::delta_since`]. The
    /// telemetry exporter calls this once per interval; the returned
    /// snapshot's `at_ns` minus `prev.at_ns` is the interval length.
    pub fn delta_since(&self, prev: &Snapshot) -> Snapshot {
        self.snapshot().delta_since(prev)
    }

    /// Clears every metric.
    pub fn reset(&self) {
        *self.lock() = Inner::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let r = Registry::new();
        r.counter_add("a.calls", 2);
        r.counter_add("a.calls", 3);
        r.counter_add("b.calls", 1);
        let s = r.snapshot();
        assert_eq!(s.counter("a.calls"), Some(5));
        assert_eq!(s.counter("b.calls"), Some(1));
        assert_eq!(s.counter("missing"), None);
    }

    #[test]
    fn gauges_are_last_write_wins() {
        let r = Registry::new();
        r.gauge_set("u", 0.25);
        r.gauge_set("u", 0.75);
        assert_eq!(r.snapshot().gauge("u"), Some(0.75));
    }

    #[test]
    fn spans_aggregate_count_total_and_self() {
        let r = Registry::new();
        r.record_span("outer", 1000, 400);
        r.record_span("outer", 3000, 1000);
        let s = r.snapshot();
        let st = s.span("outer").unwrap();
        assert_eq!(st.count, 2);
        assert_eq!(st.total_ns, 4000);
        assert_eq!(st.self_ns, 1400);
        assert_eq!(st.durations.count(), 2);
    }

    #[test]
    fn reset_clears_everything() {
        let r = Registry::new();
        r.counter_add("x", 1);
        r.observe("h", 2.0);
        r.record_span("s", 10, 10);
        r.reset();
        assert!(r.snapshot().is_empty());
    }

    #[test]
    fn snapshot_is_deterministically_ordered() {
        let r = Registry::new();
        for name in ["zeta", "alpha", "mid"] {
            r.counter_add(name, 1);
        }
        let snap = r.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["alpha", "mid", "zeta"]);
    }

    #[test]
    fn delta_since_yields_per_interval_values() {
        let r = Registry::new();
        r.counter_add("c", 10);
        r.gauge_set("g", 1.0);
        r.observe("h", 2.0);
        r.record_span("s", 100, 100);
        let first = r.snapshot();
        r.counter_add("c", 5);
        r.gauge_set("g", 7.0);
        r.observe("h", 40.0);
        r.record_span("s", 300, 200);
        let delta = r.delta_since(&first);
        assert_eq!(delta.counter("c"), Some(5), "interval increment, not lifetime total");
        assert_eq!(delta.gauge("g"), Some(7.0), "gauges keep the latest value");
        assert_eq!(delta.hist("h").unwrap().count(), 1);
        assert_eq!(delta.hist("h").unwrap().sum(), 40.0);
        let s = delta.span("s").unwrap();
        assert_eq!((s.count, s.total_ns, s.self_ns), (1, 300, 200));
        assert_eq!(s.durations.count(), 1);
    }

    #[test]
    fn delta_of_identical_snapshots_is_all_zero() {
        let r = Registry::new();
        r.counter_add("c", 3);
        r.observe("h", 9.0);
        r.record_span("s", 10, 10);
        let snap = r.snapshot();
        let delta = r.delta_since(&snap);
        assert!(delta.counters.iter().all(|&(_, v)| v == 0), "{delta:?}");
        assert!(delta.hists.iter().all(|(_, h)| h.count() == 0), "{delta:?}");
        assert!(delta.spans.iter().all(|(_, s)| s.count == 0), "{delta:?}");
        // Delta-of-delta: diffing the zero delta against itself is still
        // all-zero (idempotent at zero).
        let dd = delta.delta_since(&delta);
        assert!(dd.counters.iter().all(|&(_, v)| v == 0), "{dd:?}");
        assert!(dd.hists.iter().all(|(_, h)| h.count() == 0), "{dd:?}");
    }

    #[test]
    fn counter_deltas_never_go_negative_across_reset() {
        let r = Registry::new();
        r.counter_add("c", 100);
        r.observe("h", 50.0);
        r.observe("h", 60.0);
        let before = r.snapshot();
        r.reset();
        r.counter_add("c", 7);
        r.observe("h", 3.0);
        let delta = r.delta_since(&before);
        // The counter shrank (100 → 7): the delta is the full post-reset
        // value, never a wrapped/negative number.
        assert_eq!(delta.counter("c"), Some(7));
        assert_eq!(delta.hist("h").unwrap().count(), 1);
    }

    #[test]
    fn snapshot_timestamps_are_monotonic() {
        let r = Registry::new();
        let a = r.snapshot();
        r.counter_add("x", 1);
        let b = r.snapshot();
        assert!(b.at_ns >= a.at_ns, "at_ns must never run backwards");
        // The delta carries the interval-end timestamp.
        assert_eq!(b.delta_since(&a).at_ns, b.at_ns);
    }

    #[test]
    fn registry_is_shareable_across_threads() {
        let r = std::sync::Arc::new(Registry::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let r = r.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        r.counter_add("t", 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.snapshot().counter("t"), Some(4000));
    }
}
