//! The periodic telemetry exporter: a named background thread that wakes
//! on a fixed interval, computes the [delta] between the current global
//! registry contents and the previous wake-up, and atomically rewrites an
//! OpenMetrics exposition file — the live-scrape counterpart to the
//! one-shot `BENCH_obs.json` dump.
//!
//! # Delta model
//!
//! Each written file describes **one interval**, not the process
//! lifetime: counters carry the increment since the previous write,
//! histograms and span durations hold only the interval's samples (so
//! `_bucket`-derived p50/p99 are current latencies), and gauges pass
//! through their latest value. Every series present in the registry stays
//! in the file even when its interval value is zero, so scrapers see a
//! stable set of time series. Three meta-series describe the interval
//! itself: the `telemetry.ticks` counter (cumulative writes) and the
//! `telemetry.interval_ms` / `telemetry.interval_start_ns` /
//! `telemetry.interval_end_ns` gauges (bounds in registry-epoch
//! nanoseconds, from [`crate::metrics::Snapshot::at_ns`]).
//!
//! # Arming
//!
//! Mirrors [`crate::trace`]: **disarmed** by default, where [`armed`] is
//! a single relaxed atomic load and nothing is allocated or spawned. It
//! arms in two ways:
//!
//! - through `QISIM_METRICS=<path>[:interval_ms]`, read once on first
//!   use (the first span entered anywhere checks it), which spawns the
//!   `qisim-metrics` thread writing to `<path>` every `interval_ms`
//!   (default [`DEFAULT_INTERVAL_MS`]);
//! - programmatically, via [`start`] / [`flush_now`] / [`shutdown`] —
//!   the API the tests and `examples/observe.rs --watch` use, since the
//!   environment is read only once per process.
//!
//! Every rewrite is atomic (write `<path>.tmp`, then rename), so a
//! scraper never reads a torn file. [`shutdown`] performs a final flush
//! before joining the thread, so short runs still end with a complete
//! exposition on disk. The `obs` cargo feature and [`crate::set_enabled`]
//! remain the outer kill switches.
//!
//! [delta]: crate::metrics::Snapshot::delta_since

#[cfg(feature = "obs")]
use std::path::Path;
use std::path::PathBuf;
#[cfg(feature = "obs")]
use std::sync::atomic::{AtomicU8, Ordering};
#[cfg(feature = "obs")]
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

/// Exporter interval when `QISIM_METRICS` names a path without the
/// `:interval_ms` suffix.
pub const DEFAULT_INTERVAL_MS: u64 = 1000;

/// Shortest accepted interval: a zero or near-zero `interval_ms` would
/// turn the exporter into a busy loop rewriting the file.
pub const MIN_INTERVAL_MS: u64 = 10;

#[cfg(feature = "obs")]
const STATE_UNINIT: u8 = 0;
#[cfg(feature = "obs")]
const STATE_OFF: u8 = 1;
#[cfg(feature = "obs")]
const STATE_ON: u8 = 2;

#[cfg(feature = "obs")]
static ARMED: AtomicU8 = AtomicU8::new(STATE_UNINIT);

/// Worker coordination: `flush_seq` counts flush *requests*, `done_seq`
/// counts requests fully served by an export that **started after** the
/// request was made (so a flush never returns with a stale file).
#[cfg(feature = "obs")]
#[derive(Debug)]
struct Control {
    stop: bool,
    flush_seq: u64,
    done_seq: u64,
}

#[cfg(feature = "obs")]
#[derive(Debug)]
struct Shared {
    ctl: Mutex<Control>,
    cv: Condvar,
}

#[cfg(feature = "obs")]
impl Shared {
    fn lock(&self) -> MutexGuard<'_, Control> {
        self.ctl.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(feature = "obs")]
#[derive(Debug)]
struct Worker {
    shared: Arc<Shared>,
    handle: std::thread::JoinHandle<()>,
    path: PathBuf,
}

#[cfg(feature = "obs")]
static WORKER: Mutex<Option<Worker>> = Mutex::new(None);

#[cfg(feature = "obs")]
fn worker_slot() -> MutexGuard<'static, Option<Worker>> {
    WORKER.lock().unwrap_or_else(|e| e.into_inner())
}

/// The `QISIM_METRICS` value captured at first use (`None` = unset).
#[cfg(feature = "obs")]
static ENV_SPEC: OnceLock<Option<(PathBuf, u64)>> = OnceLock::new();

/// Parses a `<path>[:interval_ms]` spec. The suffix after the *last*
/// colon is read as the interval unless it looks like part of the path
/// (it contains a `/`, or the colon starts the spec), so
/// `dir:odd/metrics` still works. A present interval must be a positive
/// integer: `0` (a busy loop) and non-numeric suffixes are **rejected**
/// with `Err` — a misconfigured exporter must fail loudly at startup,
/// not silently fall back. `Ok(None)` means an empty spec (exporter
/// stays off); valid intervals are clamped to [`MIN_INTERVAL_MS`].
#[cfg(feature = "obs")]
fn parse_spec(spec: &str) -> Result<Option<(PathBuf, u64)>, String> {
    let spec = spec.trim();
    if spec.is_empty() {
        return Ok(None);
    }
    if let Some((path, suffix)) = spec.rsplit_once(':') {
        if !path.is_empty() && !suffix.is_empty() && !suffix.contains('/') {
            return match suffix.parse::<u64>() {
                Ok(0) => {
                    Err(format!("interval_ms must be a positive integer, got `0` (in `{spec}`)"))
                }
                Ok(ms) => Ok(Some((PathBuf::from(path), ms.max(MIN_INTERVAL_MS)))),
                Err(_) => Err(format!(
                    "interval_ms must be a positive integer, got `{suffix}` (in `{spec}`)"
                )),
            };
        }
    }
    Ok(Some((PathBuf::from(spec), DEFAULT_INTERVAL_MS)))
}

#[cfg(feature = "obs")]
fn env_spec() -> Option<(PathBuf, u64)> {
    ENV_SPEC
        .get_or_init(|| match std::env::var("QISIM_METRICS").ok().as_deref().map(parse_spec) {
            Some(Ok(spec)) => spec,
            Some(Err(reason)) => {
                eprintln!(
                    "qisim-obs: invalid QISIM_METRICS ({reason}); telemetry exporter disabled"
                );
                None
            }
            None => None,
        })
        .clone()
}

/// One-time arming decision from the environment; returns the armed
/// state. Threads racing here agree because the spec and the worker slot
/// are both idempotent.
#[cfg(feature = "obs")]
fn init_from_env() -> bool {
    match env_spec() {
        Some((path, ms)) => {
            start(path, Duration::from_millis(ms));
            ARMED.load(Ordering::Relaxed) == STATE_ON
        }
        None => {
            ARMED.store(STATE_OFF, Ordering::Relaxed);
            false
        }
    }
}

/// Whether the exporter is currently running. Always `false` when the
/// `obs` feature is compiled out. This is the hot-path gate: when
/// disarmed it is a single relaxed atomic load.
#[inline]
pub fn armed() -> bool {
    #[cfg(feature = "obs")]
    {
        match ARMED.load(Ordering::Relaxed) {
            STATE_UNINIT => init_from_env(),
            state => state == STATE_ON,
        }
    }
    #[cfg(not(feature = "obs"))]
    {
        false
    }
}

/// Starts the exporter thread writing to `path` every `interval`.
/// Returns `false` (changing nothing) if an exporter is already running,
/// the thread could not be spawned, or the `obs` feature is compiled
/// out. The first write happens immediately, so the file exists as soon
/// as the exporter is up.
pub fn start(path: impl Into<PathBuf>, interval: Duration) -> bool {
    #[cfg(feature = "obs")]
    {
        let mut slot = worker_slot();
        if slot.is_some() {
            return false;
        }
        let path = path.into();
        let interval = interval.max(Duration::from_millis(MIN_INTERVAL_MS));
        let shared = Arc::new(Shared {
            ctl: Mutex::new(Control { stop: false, flush_seq: 0, done_seq: 0 }),
            cv: Condvar::new(),
        });
        let (thread_shared, thread_path) = (Arc::clone(&shared), path.clone());
        let spawned = std::thread::Builder::new()
            .name("qisim-metrics".into())
            .spawn(move || run(thread_shared, thread_path, interval));
        match spawned {
            Ok(handle) => {
                *slot = Some(Worker { shared, handle, path });
                ARMED.store(STATE_ON, Ordering::Relaxed);
                true
            }
            Err(_) => {
                ARMED.store(STATE_OFF, Ordering::Relaxed);
                false
            }
        }
    }
    #[cfg(not(feature = "obs"))]
    {
        let _ = (path.into(), interval);
        false
    }
}

/// Forces an immediate export and blocks until a write that started
/// after this call has finished — the synchronization the tests and the
/// `--watch` demo rely on. Returns `false` when no exporter is running.
pub fn flush_now() -> bool {
    #[cfg(feature = "obs")]
    {
        let slot = worker_slot();
        let Some(worker) = slot.as_ref() else { return false };
        let mut ctl = worker.shared.lock();
        ctl.flush_seq += 1;
        let target = ctl.flush_seq;
        worker.shared.cv.notify_all();
        while ctl.done_seq < target && !ctl.stop {
            ctl = match worker.shared.cv.wait(ctl) {
                Ok(g) => g,
                Err(e) => e.into_inner(),
            };
        }
        true
    }
    #[cfg(not(feature = "obs"))]
    {
        false
    }
}

/// Stops the exporter: performs one final flush (so the file on disk
/// describes the last interval completely), joins the thread, and
/// returns the path it was writing to. `None` when no exporter was
/// running.
pub fn shutdown() -> Option<PathBuf> {
    #[cfg(feature = "obs")]
    {
        let mut slot = worker_slot();
        let worker = slot.take()?;
        {
            let mut ctl = worker.shared.lock();
            ctl.stop = true;
            worker.shared.cv.notify_all();
        }
        let _ = worker.handle.join();
        ARMED.store(STATE_OFF, Ordering::Relaxed);
        Some(worker.path)
    }
    #[cfg(not(feature = "obs"))]
    {
        None
    }
}

/// The exporter thread: export, wait for interval/flush/stop, repeat;
/// one final export on the way out.
#[cfg(feature = "obs")]
fn run(shared: Arc<Shared>, path: PathBuf, interval: Duration) {
    let mut prev = crate::Snapshot::default();
    let mut ticks = 0u64;
    let mut ctl = shared.lock();
    loop {
        let serving = ctl.flush_seq;
        let stopping = ctl.stop;
        drop(ctl);
        ticks += 1;
        export_once(&path, &mut prev, interval, ticks);
        ctl = shared.lock();
        ctl.done_seq = ctl.done_seq.max(serving);
        shared.cv.notify_all();
        if stopping {
            return;
        }
        // Sleep until the interval elapses, a flush is requested, or a
        // stop arrives — whichever is first.
        let t0 = std::time::Instant::now();
        while !ctl.stop && ctl.flush_seq == serving {
            let Some(remaining) = interval.checked_sub(t0.elapsed()) else { break };
            ctl = match shared.cv.wait_timeout(ctl, remaining) {
                Ok((g, _)) => g,
                Err(e) => e.into_inner().0,
            };
        }
    }
}

/// One export: snapshot the global registry, diff against the previous
/// wake-up, inject the interval meta-series, and atomically rewrite the
/// exposition file (write `<path>.tmp`, then rename over `path`).
#[cfg(feature = "obs")]
fn export_once(path: &Path, prev: &mut crate::Snapshot, interval: Duration, ticks: u64) {
    let cur = crate::snapshot();
    let mut delta = cur.delta_since(prev);
    let start_ns = prev.at_ns;
    *prev = cur;
    delta.counters.push(("telemetry.ticks".into(), ticks));
    delta.gauges.push(("telemetry.interval_ms".into(), interval.as_millis() as f64));
    delta.gauges.push(("telemetry.interval_start_ns".into(), start_ns as f64));
    delta.gauges.push(("telemetry.interval_end_ns".into(), delta.at_ns as f64));
    delta.counters.sort_by(|a, b| a.0.cmp(&b.0));
    delta.gauges.sort_by(|a, b| a.0.cmp(&b.0));
    let body = crate::export::openmetrics(&delta);
    let mut tmp = path.as_os_str().to_os_string();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    // Best-effort: an unwritable path must never take the workload down.
    if std::fs::write(&tmp, body).is_ok() {
        let _ = std::fs::rename(&tmp, path);
    }
}

#[cfg(all(test, feature = "obs"))]
mod tests {
    use super::*;

    #[test]
    fn spec_parsing_handles_paths_and_intervals() {
        assert_eq!(parse_spec("metrics.om"), Ok(Some((PathBuf::from("metrics.om"), 1000))));
        assert_eq!(parse_spec("metrics.om:250"), Ok(Some((PathBuf::from("metrics.om"), 250))));
        // A suffix containing `/` is part of the path, not an interval.
        assert_eq!(
            parse_spec("dir:odd/metrics"),
            Ok(Some((PathBuf::from("dir:odd/metrics"), 1000)))
        );
        // Numeric suffix after the last colon wins even with earlier colons.
        assert_eq!(parse_spec("dir:odd/m.om:50"), Ok(Some((PathBuf::from("dir:odd/m.om"), 50))));
        // Near-zero intervals are clamped; empty specs leave the exporter off.
        assert_eq!(parse_spec("m.om:3"), Ok(Some((PathBuf::from("m.om"), MIN_INTERVAL_MS))));
        assert_eq!(parse_spec("   "), Ok(None));
    }

    #[test]
    fn degenerate_intervals_are_rejected_not_defaulted() {
        // `:0` would be a busy loop and `:fast` is a typo; both must be
        // loud startup errors instead of a silent default-interval run.
        let err = parse_spec("m.om:0").unwrap_err();
        assert!(err.contains("positive integer") && err.contains("`0`"), "{err}");
        let err = parse_spec("m.om:fast").unwrap_err();
        assert!(err.contains("`fast`"), "{err}");
        let err = parse_spec("m.om:10x").unwrap_err();
        assert!(err.contains("`10x`"), "{err}");
        // Overflowing digits are garbage too, not a path with a colon.
        assert!(parse_spec("m.om:99999999999999999999999").is_err());
    }

    #[test]
    fn exporter_round_trip_writes_interval_deltas() {
        let _l = crate::global_test_lock();
        crate::set_enabled(true);
        crate::reset();
        let path = std::env::temp_dir().join(format!("qisim_telemetry_{}.om", std::process::id()));
        // A long interval: every write below is driven by flush/shutdown,
        // so the test is deterministic.
        assert!(start(&path, Duration::from_secs(3600)), "exporter started");
        assert!(armed());
        assert!(!start(&path, Duration::from_secs(3600)), "second start refused");

        crate::counter_add("telemetry.test.c", 5);
        crate::observe_f64("telemetry.test.h", 1500.0);
        assert!(flush_now());
        let first = std::fs::read_to_string(&path).expect("exposition written");
        assert!(crate::export::openmetrics_is_well_formed(&first), "malformed:\n{first}");
        assert!(first.contains("telemetry_test_c_total 5"), "{first}");
        assert!(first.contains("telemetry_test_h_bucket"), "{first}");
        assert!(first.contains("# TYPE telemetry_ticks counter"), "{first}");
        assert!(first.contains("telemetry_interval_ms 3600000"), "{first}");

        // Second interval: the file now carries the delta, not the total.
        crate::counter_add("telemetry.test.c", 3);
        assert!(flush_now());
        let second = std::fs::read_to_string(&path).expect("exposition rewritten");
        assert!(second.contains("telemetry_test_c_total 3"), "delta, not lifetime: {second}");

        // Shutdown flushes a final (zero-delta) interval: the series set
        // stays stable even when nothing happened.
        assert_eq!(shutdown(), Some(path.clone()));
        assert!(!armed());
        let last = std::fs::read_to_string(&path).expect("final flush written");
        assert!(crate::export::openmetrics_is_well_formed(&last), "malformed:\n{last}");
        assert!(last.contains("telemetry_test_c_total 0"), "stable series set: {last}");
        assert!(!std::path::Path::new(&format!("{}.tmp", path.display())).exists());

        // The slot is free again after shutdown.
        assert!(start(&path, Duration::from_secs(3600)));
        shutdown();
        let _ = std::fs::remove_file(&path);
        crate::reset();
    }
}
