//! # qisim-obs
//!
//! Zero-dependency observability for the QIsim scalability framework:
//! scoped span timers, a global metrics registry (counters, gauges,
//! log-bucketed histograms), and text/JSON exporters — the introspection
//! substrate behind `Scalability::explain()` and the `BENCH_obs.json`
//! perf artifacts.
//!
//! Everything is built on `std` only (the build environment is offline,
//! so `tracing`/`metrics`/`serde` are unavailable by design, not just by
//! choice).
//!
//! # Examples
//!
//! ```
//! use qisim_obs::{counter, gauge, observe, span};
//!
//! fn bisect() -> u64 {
//!     span!("power.max_qubits");         // RAII: timed until scope end
//!     for _ in 0..7 {
//!         counter!("power.bisection.iters");
//!     }
//!     gauge!("power.stage.4K.utilization", 0.97);
//!     observe!("cyclesim.makespan_ns", 1117.0);
//!     691
//! }
//! bisect();
//! let snap = qisim_obs::snapshot();
//! if qisim_obs::enabled() {
//!     assert_eq!(snap.counter("power.bisection.iters"), Some(7));
//! } else {
//!     assert!(snap.is_empty()); // compile-time kill switch active
//! }
//! println!("{}", qisim_obs::report_text());
//! # qisim_obs::reset();
//! ```
//!
//! # Kill switch
//!
//! The `obs` cargo feature (on by default) is a compile-time kill switch:
//! built with `--no-default-features`, every macro and recording function
//! compiles to a no-op, [`snapshot`] returns an empty [`Snapshot`], and no
//! global state is ever allocated. A runtime toggle ([`set_enabled`])
//! exists as well, so a single binary can compare instrumented and
//! uninstrumented runs (the integration tests use it to prove results are
//! bit-identical either way).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ctx;
pub mod export;
pub mod fastpath;
pub mod hist;
pub mod json;
pub mod log;
pub mod metrics;
pub mod span;
pub mod telemetry;
pub mod trace;
pub mod trace_export;

pub use ctx::RequestScope;
pub use export::{
    json_is_well_formed, openmetrics, openmetrics_is_well_formed, sanitize_metric_name, text_table,
    to_json,
};
#[doc(hidden)]
pub use fastpath::{FastCounter, FastGauge, SpanSlot};
pub use hist::Histogram;
pub use log::Level;
pub use metrics::{Registry, Snapshot, SpanStats};
pub use span::SpanGuard;
pub use trace::TraceSession;
pub use trace_export::trace_is_well_formed;

#[cfg(feature = "obs")]
mod global {
    use crate::metrics::Registry;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::OnceLock;

    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    static ENABLED: AtomicBool = AtomicBool::new(true);

    pub(crate) fn registry() -> &'static Registry {
        REGISTRY.get_or_init(Registry::new)
    }

    pub(crate) fn enabled() -> bool {
        ENABLED.load(Ordering::Relaxed)
    }

    pub(crate) fn set_enabled(on: bool) {
        ENABLED.store(on, Ordering::Relaxed);
    }
}

#[cfg(feature = "obs")]
pub(crate) use global::registry;

/// Whether recording is currently active (always `false` when the `obs`
/// feature is compiled out).
#[inline]
pub fn enabled() -> bool {
    #[cfg(feature = "obs")]
    {
        global::enabled()
    }
    #[cfg(not(feature = "obs"))]
    {
        false
    }
}

/// Runtime toggle: temporarily stop (or resume) all recording. A no-op
/// when the `obs` feature is compiled out.
#[inline]
pub fn set_enabled(on: bool) {
    #[cfg(feature = "obs")]
    global::set_enabled(on);
    #[cfg(not(feature = "obs"))]
    let _ = on;
}

/// Adds `delta` to the named global counter.
#[inline]
pub fn counter_add(name: &str, delta: u64) {
    #[cfg(feature = "obs")]
    if global::enabled() {
        global::registry().counter_add(name, delta);
    }
    #[cfg(not(feature = "obs"))]
    let _ = (name, delta);
}

/// [`counter_add`] for `&'static str` names: additionally emits a
/// flight-recorder counter-delta event when the recorder is armed (see
/// [`trace`]). The [`counter!`] macro routes literal names here.
#[inline]
pub fn counter_add_traced(name: &'static str, delta: u64) {
    #[cfg(feature = "obs")]
    if global::enabled() {
        global::registry().counter_add(name, delta);
        trace::counter_event(name, delta);
    }
    #[cfg(not(feature = "obs"))]
    let _ = (name, delta);
}

/// Sets the named global gauge.
#[inline]
pub fn gauge_set(name: &str, value: f64) {
    #[cfg(feature = "obs")]
    if global::enabled() {
        global::registry().gauge_set(name, value);
    }
    #[cfg(not(feature = "obs"))]
    let _ = (name, value);
}

/// Records a sample into the named global histogram.
#[inline]
pub fn observe_f64(name: &str, value: f64) {
    #[cfg(feature = "obs")]
    if global::enabled() {
        global::registry().observe(name, value);
    }
    #[cfg(not(feature = "obs"))]
    let _ = (name, value);
}

/// Copies the global registry contents out for export. Empty when the
/// `obs` feature is compiled out.
pub fn snapshot() -> Snapshot {
    #[cfg(feature = "obs")]
    {
        let mut snap = global::registry().snapshot();
        fastpath::merge(&mut snap);
        snap
    }
    #[cfg(not(feature = "obs"))]
    {
        Snapshot::default()
    }
}

/// Clears every global metric (spans, counters, gauges, histograms).
pub fn reset() {
    #[cfg(feature = "obs")]
    {
        global::registry().reset();
        fastpath::reset();
    }
}

/// Renders the global registry as an aligned text table.
pub fn report_text() -> String {
    text_table(&snapshot())
}

/// Renders the global registry as a JSON document (the `BENCH_obs.json`
/// artifact format).
pub fn report_json() -> String {
    to_json(&snapshot())
}

/// Opens a scoped span timer recording wall-clock, call count, and
/// self-time (excluding nested spans) under the given `&'static str`
/// name. The guard lives until the end of the enclosing scope.
#[macro_export]
macro_rules! span {
    ($name:literal) => {
        let _qisim_obs_span_guard = {
            static __QISIM_OBS_SPAN: $crate::SpanSlot = $crate::SpanSlot::new($name);
            $crate::SpanGuard::enter_cached(&__QISIM_OBS_SPAN)
        };
    };
    ($name:expr) => {
        let _qisim_obs_span_guard = $crate::SpanGuard::enter($name);
    };
}

/// Increments a named counter (`counter!("name")` adds 1,
/// `counter!("name", n)` adds `n`).
///
/// The name and delta expressions are only evaluated while recording is
/// enabled — a computed name (`counter!(format!(…))`) costs nothing when
/// observability is off. Literal names additionally emit a
/// flight-recorder counter event when the recorder is armed ([`trace`]).
#[macro_export]
macro_rules! counter {
    ($name:literal) => {
        if $crate::enabled() {
            static __QISIM_OBS_CTR: $crate::FastCounter = $crate::FastCounter::new($name);
            __QISIM_OBS_CTR.add(1);
        }
    };
    ($name:literal, $delta:expr) => {
        if $crate::enabled() {
            static __QISIM_OBS_CTR: $crate::FastCounter = $crate::FastCounter::new($name);
            __QISIM_OBS_CTR.add($delta);
        }
    };
    ($name:expr) => {
        if $crate::enabled() {
            $crate::counter_add(&$name, 1);
        }
    };
    ($name:expr, $delta:expr) => {
        if $crate::enabled() {
            $crate::counter_add(&$name, $delta);
        }
    };
}

/// Sets a named gauge to a value (last write wins). The name and value
/// expressions are only evaluated while recording is enabled.
#[macro_export]
macro_rules! gauge {
    ($name:literal, $value:expr) => {
        if $crate::enabled() {
            static __QISIM_OBS_GAUGE: $crate::FastGauge = $crate::FastGauge::new($name);
            __QISIM_OBS_GAUGE.set($value);
        }
    };
    ($name:expr, $value:expr) => {
        if $crate::enabled() {
            $crate::gauge_set(&$name, $value);
        }
    };
}

/// Records a sample into a named histogram. The name and value
/// expressions are only evaluated while recording is enabled.
#[macro_export]
macro_rules! observe {
    ($name:expr, $value:expr) => {
        if $crate::enabled() {
            $crate::observe_f64(&$name, $value);
        }
    };
}

#[cfg(all(test, feature = "obs"))]
pub(crate) fn global_test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(all(test, feature = "obs"))]
mod tests {
    #[test]
    fn macros_drive_the_global_registry() {
        let _l = crate::global_test_lock();
        crate::reset();
        crate::set_enabled(true);
        {
            span!("lib.outer");
            counter!("lib.count");
            counter!("lib.count", 4);
            gauge!("lib.gauge", 2.5);
            observe!(format!("lib.{}", "hist"), 10.0);
        }
        let snap = crate::snapshot();
        assert_eq!(snap.counter("lib.count"), Some(5));
        assert_eq!(snap.gauge("lib.gauge"), Some(2.5));
        assert_eq!(snap.span("lib.outer").map(|s| s.count), Some(1));
        let json = crate::report_json();
        assert!(crate::json_is_well_formed(&json), "{json}");
        assert!(crate::report_text().contains("lib.count"));
        crate::reset();
        assert!(crate::snapshot().is_empty());
    }

    #[test]
    fn disabled_macros_do_not_evaluate_name_or_value_expressions() {
        let _l = crate::global_test_lock();
        crate::reset();
        crate::set_enabled(false);
        let mut evaluations = 0u32;
        {
            let mut name = |n: &str| {
                evaluations += 1;
                format!("lib.lazy.{n}")
            };
            counter!(name("count"));
            counter!(name("count"), 4);
            gauge!(name("gauge"), 2.5);
            observe!(name("hist"), 10.0);
        }
        assert_eq!(evaluations, 0, "disabled macros must not evaluate their name expression");
        crate::set_enabled(true);
        {
            let mut name = |n: &str| {
                evaluations += 1;
                format!("lib.lazy.{n}")
            };
            counter!(name("count"));
        }
        assert_eq!(evaluations, 1, "enabled macros evaluate the name exactly once");
        assert_eq!(crate::snapshot().counter("lib.lazy.count"), Some(1));
        crate::reset();
    }

    #[test]
    fn literal_counter_names_reach_the_flight_recorder() {
        let _l = crate::global_test_lock();
        crate::reset();
        crate::set_enabled(true);
        crate::trace::arm();
        crate::trace::clear();
        counter!("lib.traced.count", 3);
        let session = crate::trace::TraceSession::drain();
        crate::trace::disarm();
        let ev = session
            .threads
            .iter()
            .flat_map(|t| &t.events)
            .find(|e| e.name == "lib.traced.count")
            .expect("counter event recorded");
        assert_eq!(ev.kind, crate::trace::TraceEventKind::Counter);
        assert_eq!(ev.args[0], Some(("delta", 3.0)));
        assert_eq!(crate::snapshot().counter("lib.traced.count"), Some(3));
        crate::reset();
    }

    #[test]
    fn runtime_disable_suppresses_recording() {
        let _l = crate::global_test_lock();
        crate::reset();
        crate::set_enabled(false);
        counter!("lib.suppressed");
        {
            span!("lib.suppressed.span");
        }
        crate::set_enabled(true);
        let snap = crate::snapshot();
        assert_eq!(snap.counter("lib.suppressed"), None);
        assert!(snap.span("lib.suppressed.span").is_none());
        crate::reset();
    }
}

#[cfg(all(test, not(feature = "obs")))]
mod killswitch_tests {
    #[test]
    fn everything_is_inert_without_the_feature() {
        assert!(!crate::enabled());
        counter!("dead");
        gauge!("dead", 1.0);
        observe!("dead", 1.0);
        {
            span!("dead");
        }
        assert!(crate::snapshot().is_empty());
        assert_eq!(
            crate::report_json(),
            r#"{"counters":{},"gauges":{},"histograms":{},"spans":{}}"#
        );
    }
}
