//! Log-bucketed histograms with quantile estimation.
//!
//! Buckets are geometric with ratio `2^(1/8)` (≈9 % relative width), so a
//! histogram spans twelve decades of nanoseconds (or watts, or anything
//! positive) in a few kilobytes while keeping p50/p90/p99 estimates within
//! one bucket width of the truth.

/// Sub-bucket resolution: buckets per doubling.
const BUCKETS_PER_OCTAVE: usize = 8;
/// Number of octaves covered above 1.0; values beyond land in the top
/// bucket. 2^50 ns ≈ 13 days, far past any span we time.
const OCTAVES: usize = 50;
const N_BUCKETS: usize = BUCKETS_PER_OCTAVE * OCTAVES;

/// A fixed-memory log-bucketed histogram over non-negative samples.
///
/// # Examples
///
/// ```
/// use qisim_obs::Histogram;
///
/// let mut h = Histogram::new();
/// for v in 1..=1000 {
///     h.observe(v as f64);
/// }
/// assert_eq!(h.count(), 1000);
/// let p50 = h.quantile(0.5);
/// assert!((p50 - 500.0).abs() < 0.15 * 500.0, "p50 {p50}");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    /// Samples below 1.0 (including zero and negatives, clamped).
    underflow: u64,
    buckets: Vec<u64>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            underflow: 0,
            buckets: Vec::new(), // grown lazily on first observe
        }
    }

    fn bucket_index(v: f64) -> Option<usize> {
        if v < 1.0 {
            return None; // underflow bucket
        }
        let idx = (v.log2() * BUCKETS_PER_OCTAVE as f64).floor() as usize;
        Some(idx.min(N_BUCKETS - 1))
    }

    /// Lower edge of bucket `i`.
    fn bucket_lo(i: usize) -> f64 {
        2f64.powf(i as f64 / BUCKETS_PER_OCTAVE as f64)
    }

    /// Geometric midpoint of bucket `i` — the quantile representative.
    fn bucket_mid(i: usize) -> f64 {
        2f64.powf((i as f64 + 0.5) / BUCKETS_PER_OCTAVE as f64)
    }

    /// Records one sample. Non-finite samples are counted in `count` but
    /// excluded from the bucket statistics (they would otherwise poison
    /// every quantile).
    pub fn observe(&mut self, v: f64) {
        self.count += 1;
        if !v.is_finite() {
            return;
        }
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        match Self::bucket_index(v) {
            None => self.underflow += 1,
            Some(i) => {
                if self.buckets.is_empty() {
                    self.buckets = vec![0; N_BUCKETS];
                }
                self.buckets[i] += 1;
            }
        }
    }

    /// Folds another histogram's samples into this one (exact: counts,
    /// sums, extremes, and buckets all add elementwise).
    pub(crate) fn merge_from(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.underflow += other.underflow;
        if !other.buckets.is_empty() {
            if self.buckets.is_empty() {
                self.buckets = vec![0; N_BUCKETS];
            }
            for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
                *mine += theirs;
            }
        }
    }

    /// Number of samples observed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all finite samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of finite samples, or NaN when empty.
    pub fn mean(&self) -> f64 {
        let finite = self.underflow + self.buckets.iter().sum::<u64>();
        if finite == 0 {
            f64::NAN
        } else {
            self.sum / finite as f64
        }
    }

    /// Smallest finite sample, or NaN when empty.
    pub fn min(&self) -> f64 {
        if self.min.is_finite() {
            self.min
        } else {
            f64::NAN
        }
    }

    /// Largest finite sample, or NaN when empty.
    pub fn max(&self) -> f64 {
        if self.max.is_finite() {
            self.max
        } else {
            f64::NAN
        }
    }

    /// Estimates the `q`-quantile (`0 ≤ q ≤ 1`) from the bucket counts:
    /// the geometric midpoint of the bucket holding the target rank,
    /// clamped into the observed `[min, max]`. The endpoints are exact:
    /// `quantile(0.0)` returns the observed minimum and `quantile(1.0)`
    /// the observed maximum. Returns NaN when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        let finite = self.underflow + self.buckets.iter().sum::<u64>();
        if finite == 0 {
            return f64::NAN;
        }
        if q == 0.0 {
            return self.min();
        }
        if q == 1.0 {
            return self.max();
        }
        let target = ((q * finite as f64).ceil() as u64).max(1);
        let mut seen = self.underflow;
        if seen >= target {
            return self.min.clamp(0.0, 1.0);
        }
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bucket_mid(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Number of samples below the first bucket edge (`v < 1.0`,
    /// including zero; the OpenMetrics exporter folds these into the
    /// `le="1"` bucket).
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// The samples recorded since `prev`, as a histogram of their own:
    /// the per-interval view the telemetry exporter publishes, so
    /// p50/p99 describe the last interval instead of the process
    /// lifetime.
    ///
    /// `prev` must be an earlier snapshot of the same histogram. If it
    /// is not a prefix of `self` — the registry was [`reset`] between
    /// the two snapshots — the full current contents are returned
    /// (everything since the reset is new), so delta counts never go
    /// negative. The interval's exact min/max are not recoverable from
    /// two cumulative snapshots; the cumulative bounds are kept as the
    /// clamp window, which can only widen quantile estimates, never
    /// corrupt them.
    ///
    /// [`reset`]: crate::reset
    pub fn delta_since(&self, prev: &Histogram) -> Histogram {
        if self.count < prev.count {
            return self.clone(); // reset in between: everything is new
        }
        let count = self.count - prev.count;
        if count == 0 {
            return Histogram::new();
        }
        let buckets = if self.buckets.is_empty() {
            Vec::new()
        } else {
            self.buckets
                .iter()
                .enumerate()
                .map(|(i, &c)| c.saturating_sub(prev.buckets.get(i).copied().unwrap_or(0)))
                .collect()
        };
        Histogram {
            count,
            sum: (self.sum - prev.sum).max(0.0),
            min: self.min,
            max: self.max,
            underflow: self.underflow.saturating_sub(prev.underflow),
            buckets,
        }
    }

    /// Iterates non-empty buckets as `(lo, hi, count)` triples.
    pub fn nonempty_buckets(&self) -> impl Iterator<Item = (f64, f64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_lo(i), Self::bucket_lo(i + 1), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_nan() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert!(h.mean().is_nan());
        assert!(h.quantile(0.5).is_nan());
    }

    #[test]
    fn uniform_quantiles_land_within_bucket_resolution() {
        let mut h = Histogram::new();
        for v in 1..=10_000u32 {
            h.observe(v as f64);
        }
        for (q, expect) in [(0.5, 5000.0), (0.9, 9000.0), (0.99, 9900.0)] {
            let got = h.quantile(q);
            assert!((got - expect).abs() < 0.15 * expect, "q{q}: got {got}, expected ≈{expect}");
        }
        assert_eq!(h.count(), 10_000);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 10_000.0);
        assert!((h.mean() - 5000.5).abs() < 1.0);
    }

    #[test]
    fn single_sample_quantiles_are_exact_within_clamp() {
        let mut h = Histogram::new();
        h.observe(42.0);
        for q in [0.0, 0.5, 0.99, 1.0] {
            let v = h.quantile(q);
            assert!((v - 42.0).abs() <= 42.0 * 0.1, "q{q} -> {v}");
        }
    }

    #[test]
    fn underflow_and_extremes_are_binned_not_lost() {
        let mut h = Histogram::new();
        h.observe(0.0);
        h.observe(0.5);
        h.observe(1e300); // far past the top bucket
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 1e300);
        // p33 sits in the underflow region.
        assert!(h.quantile(0.3) <= 1.0);
    }

    #[test]
    fn non_finite_samples_do_not_poison_quantiles() {
        let mut h = Histogram::new();
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        h.observe(10.0);
        assert_eq!(h.count(), 3);
        let p50 = h.quantile(0.5);
        assert!(p50.is_finite() && (p50 - 10.0).abs() < 2.0, "p50 {p50}");
        assert_eq!(h.max(), 10.0);
    }

    #[test]
    fn quantiles_are_monotone_in_q() {
        let mut h = Histogram::new();
        for v in [3.0, 8.0, 90.0, 700.0, 701.0, 1e6] {
            h.observe(v);
        }
        let qs: Vec<f64> = [0.1, 0.3, 0.5, 0.7, 0.9, 1.0].iter().map(|&q| h.quantile(q)).collect();
        for w in qs.windows(2) {
            assert!(w[1] >= w[0], "quantiles must be monotone: {qs:?}");
        }
    }

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn out_of_range_quantile_panics() {
        let mut h = Histogram::new();
        h.observe(1.0);
        let _ = h.quantile(1.5);
    }

    #[test]
    fn quantile_endpoints_are_exact() {
        let mut h = Histogram::new();
        for v in [17.3, 2.0, 950.0, 0.25, 31.0] {
            h.observe(v);
        }
        assert_eq!(h.quantile(0.0), 0.25, "q=0 must be the exact minimum");
        assert_eq!(h.quantile(1.0), 950.0, "q=1 must be the exact maximum");
        // Dense monotonicity sweep across the whole range.
        let qs: Vec<f64> = (0..=100).map(|i| h.quantile(i as f64 / 100.0)).collect();
        for w in qs.windows(2) {
            assert!(w[1] >= w[0], "quantile not monotone in q: {qs:?}");
        }
    }

    #[test]
    fn empty_histogram_quantile_endpoints_are_nan() {
        let h = Histogram::new();
        assert!(h.quantile(0.0).is_nan());
        assert!(h.quantile(1.0).is_nan());
        assert!(h.quantile(0.5).is_nan());
    }

    #[test]
    fn delta_since_isolates_the_interval() {
        let mut h = Histogram::new();
        for v in 1..=100 {
            h.observe(v as f64);
        }
        let first = h.clone();
        for v in 10_000..=20_000 {
            h.observe(v as f64);
        }
        let delta = h.delta_since(&first);
        assert_eq!(delta.count(), 10_001);
        // The interval's samples all sit near 10⁴; a lifetime histogram
        // would pull the p50 down toward the early cheap samples.
        let p50 = delta.quantile(0.5);
        assert!(p50 > 9_000.0, "interval p50 {p50} polluted by pre-interval samples");
        assert!((delta.sum() - (10_000..=20_000).sum::<u64>() as f64).abs() < 1.0);
    }

    #[test]
    fn delta_of_identical_snapshots_is_empty() {
        let mut h = Histogram::new();
        h.observe(5.0);
        h.observe(500.0);
        let delta = h.delta_since(&h.clone());
        assert_eq!(delta.count(), 0);
        assert!(delta.quantile(0.5).is_nan());
    }

    #[test]
    fn delta_across_reset_returns_current_contents() {
        let mut before = Histogram::new();
        for v in 1..=50 {
            before.observe(v as f64);
        }
        // "Reset": the new histogram restarts from empty, so the current
        // snapshot has fewer samples than the previous one.
        let mut after = Histogram::new();
        after.observe(7.0);
        let delta = after.delta_since(&before);
        assert_eq!(delta.count(), 1, "everything since the reset is new");
        assert_eq!(delta.sum(), 7.0);
    }
}
