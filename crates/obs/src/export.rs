//! Exporters: render a [`Snapshot`] as an aligned text table (for humans)
//! or as JSON (for `BENCH_obs.json`-style perf-trajectory artifacts).

use crate::json::ObjectWriter;
use crate::metrics::Snapshot;

fn fmt_sig(v: f64) -> String {
    if !v.is_finite() {
        return format!("{v}");
    }
    let a = v.abs();
    if v == 0.0 {
        "0".into()
    } else if !(1e-3..1e6).contains(&a) {
        format!("{v:.3e}")
    } else if a >= 100.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.4}")
    }
}

fn fmt_ns(ns: f64) -> String {
    if !ns.is_finite() {
        return format!("{ns}");
    }
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}us", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

fn push_table(out: &mut String, header: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let render = |cells: &[String], out: &mut String| {
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            if i == 0 {
                out.push_str(&format!("{cell:<w$}", w = widths[i]));
            } else {
                out.push_str(&format!("{cell:>w$}", w = widths[i]));
            }
        }
        out.push('\n');
    };
    render(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>(), out);
    render(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>(), out);
    for row in rows {
        render(row, out);
    }
}

/// Renders the snapshot as an aligned, sectioned text table.
pub fn text_table(snap: &Snapshot) -> String {
    let mut out = String::new();
    if snap.is_empty() {
        out.push_str("(no metrics recorded)\n");
        return out;
    }
    if !snap.spans.is_empty() {
        out.push_str("== spans ==\n");
        let rows: Vec<Vec<String>> = snap
            .spans
            .iter()
            .map(|(name, s)| {
                vec![
                    name.clone(),
                    s.count.to_string(),
                    fmt_ns(s.total_ns as f64),
                    fmt_ns(s.self_ns as f64),
                    fmt_ns(s.durations.quantile(0.5)),
                    fmt_ns(s.durations.quantile(0.9)),
                    fmt_ns(s.durations.quantile(0.99)),
                ]
            })
            .collect();
        push_table(&mut out, &["span", "count", "total", "self", "p50", "p90", "p99"], &rows);
        out.push('\n');
    }
    if !snap.counters.is_empty() {
        out.push_str("== counters ==\n");
        let rows: Vec<Vec<String>> =
            snap.counters.iter().map(|(n, v)| vec![n.clone(), v.to_string()]).collect();
        push_table(&mut out, &["counter", "value"], &rows);
        out.push('\n');
    }
    if !snap.gauges.is_empty() {
        out.push_str("== gauges ==\n");
        let rows: Vec<Vec<String>> =
            snap.gauges.iter().map(|(n, v)| vec![n.clone(), fmt_sig(*v)]).collect();
        push_table(&mut out, &["gauge", "value"], &rows);
        out.push('\n');
    }
    if !snap.hists.is_empty() {
        out.push_str("== histograms ==\n");
        let rows: Vec<Vec<String>> = snap
            .hists
            .iter()
            .map(|(n, h)| {
                vec![
                    n.clone(),
                    h.count().to_string(),
                    fmt_sig(h.mean()),
                    fmt_sig(h.quantile(0.5)),
                    fmt_sig(h.quantile(0.9)),
                    fmt_sig(h.quantile(0.99)),
                    fmt_sig(h.min()),
                    fmt_sig(h.max()),
                ]
            })
            .collect();
        push_table(
            &mut out,
            &["histogram", "count", "mean", "p50", "p90", "p99", "min", "max"],
            &rows,
        );
    }
    out
}

/// Renders the snapshot as a single JSON object:
///
/// ```json
/// {
///   "counters": {"power.evaluate.calls": 182},
///   "gauges": {"power.stage.4K.utilization": 0.99},
///   "histograms": {"cyclesim.makespan_ns": {"count": 3, "mean": ..., "p50": ...}},
///   "spans": {"power.max_qubits": {"count": 2, "total_ns": ..., "p50_ns": ...}}
/// }
/// ```
pub fn to_json(snap: &Snapshot) -> String {
    let mut out = String::with_capacity(1024);
    let mut root = ObjectWriter::new(&mut out);

    let mut counters = String::new();
    {
        let mut w = ObjectWriter::new(&mut counters);
        for (n, v) in &snap.counters {
            w.field_u64(n, *v);
        }
        w.finish();
    }
    root.field_raw("counters", &counters);

    let mut gauges = String::new();
    {
        let mut w = ObjectWriter::new(&mut gauges);
        for (n, v) in &snap.gauges {
            w.field_f64(n, *v);
        }
        w.finish();
    }
    root.field_raw("gauges", &gauges);

    let mut hists = String::new();
    {
        let mut w = ObjectWriter::new(&mut hists);
        for (n, h) in &snap.hists {
            let mut one = String::new();
            let mut hw = ObjectWriter::new(&mut one);
            hw.field_u64("count", h.count());
            hw.field_f64("mean", h.mean());
            hw.field_f64("min", h.min());
            hw.field_f64("max", h.max());
            hw.field_f64("p50", h.quantile(0.5));
            hw.field_f64("p90", h.quantile(0.9));
            hw.field_f64("p99", h.quantile(0.99));
            hw.finish();
            w.field_raw(n, &one);
        }
        w.finish();
    }
    root.field_raw("histograms", &hists);

    let mut spans = String::new();
    {
        let mut w = ObjectWriter::new(&mut spans);
        for (n, s) in &snap.spans {
            let mut one = String::new();
            let mut sw = ObjectWriter::new(&mut one);
            sw.field_u64("count", s.count);
            sw.field_u64("total_ns", s.total_ns);
            sw.field_u64("self_ns", s.self_ns);
            sw.field_f64("p50_ns", s.durations.quantile(0.5));
            sw.field_f64("p90_ns", s.durations.quantile(0.9));
            sw.field_f64("p99_ns", s.durations.quantile(0.99));
            sw.finish();
            w.field_raw(n, &one);
        }
        w.finish();
    }
    root.field_raw("spans", &spans);
    root.finish();
    out
}

/// A very small JSON well-formedness checker used by the tests and the
/// CI smoke run: validates balanced structure, string escapes, and
/// number syntax. Not a full parser — just enough to catch exporter bugs.
pub fn json_is_well_formed(s: &str) -> bool {
    let b = s.as_bytes();
    let mut i = 0usize;
    fn skip_ws(b: &[u8], i: &mut usize) {
        while *i < b.len() && (b[*i] as char).is_ascii_whitespace() {
            *i += 1;
        }
    }
    fn value(b: &[u8], i: &mut usize) -> bool {
        skip_ws(b, i);
        if *i >= b.len() {
            return false;
        }
        match b[*i] {
            b'{' => {
                *i += 1;
                skip_ws(b, i);
                if *i < b.len() && b[*i] == b'}' {
                    *i += 1;
                    return true;
                }
                loop {
                    skip_ws(b, i);
                    if !string(b, i) {
                        return false;
                    }
                    skip_ws(b, i);
                    if *i >= b.len() || b[*i] != b':' {
                        return false;
                    }
                    *i += 1;
                    if !value(b, i) {
                        return false;
                    }
                    skip_ws(b, i);
                    if *i < b.len() && b[*i] == b',' {
                        *i += 1;
                        continue;
                    }
                    if *i < b.len() && b[*i] == b'}' {
                        *i += 1;
                        return true;
                    }
                    return false;
                }
            }
            b'[' => {
                *i += 1;
                skip_ws(b, i);
                if *i < b.len() && b[*i] == b']' {
                    *i += 1;
                    return true;
                }
                loop {
                    if !value(b, i) {
                        return false;
                    }
                    skip_ws(b, i);
                    if *i < b.len() && b[*i] == b',' {
                        *i += 1;
                        continue;
                    }
                    if *i < b.len() && b[*i] == b']' {
                        *i += 1;
                        return true;
                    }
                    return false;
                }
            }
            b'"' => string(b, i),
            b't' => literal(b, i, b"true"),
            b'f' => literal(b, i, b"false"),
            b'n' => literal(b, i, b"null"),
            _ => number(b, i),
        }
    }
    fn literal(b: &[u8], i: &mut usize, lit: &[u8]) -> bool {
        if b[*i..].starts_with(lit) {
            *i += lit.len();
            true
        } else {
            false
        }
    }
    fn string(b: &[u8], i: &mut usize) -> bool {
        if *i >= b.len() || b[*i] != b'"' {
            return false;
        }
        *i += 1;
        while *i < b.len() {
            match b[*i] {
                b'"' => {
                    *i += 1;
                    return true;
                }
                b'\\' => {
                    *i += 1;
                    if *i >= b.len() {
                        return false;
                    }
                    match b[*i] {
                        b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't' => *i += 1,
                        b'u' => {
                            if *i + 4 >= b.len()
                                || !b[*i + 1..*i + 5].iter().all(u8::is_ascii_hexdigit)
                            {
                                return false;
                            }
                            *i += 5;
                        }
                        _ => return false,
                    }
                }
                c if c < 0x20 => return false,
                _ => *i += 1,
            }
        }
        false
    }
    fn number(b: &[u8], i: &mut usize) -> bool {
        let start = *i;
        if *i < b.len() && b[*i] == b'-' {
            *i += 1;
        }
        let digits = |b: &[u8], i: &mut usize| {
            let s = *i;
            while *i < b.len() && b[*i].is_ascii_digit() {
                *i += 1;
            }
            *i > s
        };
        if !digits(b, i) {
            return false;
        }
        if *i < b.len() && b[*i] == b'.' {
            *i += 1;
            if !digits(b, i) {
                return false;
            }
        }
        if *i < b.len() && (b[*i] == b'e' || b[*i] == b'E') {
            *i += 1;
            if *i < b.len() && (b[*i] == b'+' || b[*i] == b'-') {
                *i += 1;
            }
            if !digits(b, i) {
                return false;
            }
        }
        *i > start
    }
    if !value(b, &mut i) {
        return false;
    }
    skip_ws(b, &mut i);
    i == b.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    fn sample() -> Snapshot {
        let r = Registry::new();
        r.counter_add("power.evaluate.calls", 182);
        r.counter_add("cyclesim.ops", 9);
        r.gauge_set("power.stage.4K.utilization", 0.997);
        r.gauge_set("weird \"name\"\\path", f64::NAN);
        r.observe("cyclesim.makespan_ns", 1117.0);
        r.observe("cyclesim.makespan_ns", 915.0);
        r.record_span("power.max_qubits", 2_000_000, 1_500_000);
        r.snapshot()
    }

    #[test]
    fn json_export_is_well_formed_and_complete() {
        let j = to_json(&sample());
        assert!(json_is_well_formed(&j), "malformed: {j}");
        assert!(j.contains("\"power.evaluate.calls\":182"));
        assert!(j.contains("\"power.max_qubits\""));
        assert!(j.contains("\"total_ns\":2000000"));
        // NaN gauge must degrade to null, not poison the document.
        assert!(j.contains("null"), "{j}");
        // The escaped gauge name survives round-trip escaping.
        assert!(j.contains(r#"weird \"name\"\\path"#), "{j}");
    }

    #[test]
    fn empty_snapshot_exports_cleanly() {
        let snap = Snapshot::default();
        let j = to_json(&snap);
        assert!(json_is_well_formed(&j), "malformed: {j}");
        assert!(text_table(&snap).contains("no metrics recorded"));
    }

    #[test]
    fn text_table_aligns_and_sections() {
        let t = text_table(&sample());
        assert!(t.contains("== spans =="));
        assert!(t.contains("== counters =="));
        assert!(t.contains("== gauges =="));
        assert!(t.contains("== histograms =="));
        assert!(t.contains("power.max_qubits"));
        assert!(t.contains("p99"));
        // Alignment: counter values right-aligned in one column.
        let lines: Vec<&str> =
            t.lines().filter(|l| l.contains(".calls") || l.contains("cyclesim.ops")).collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].len(), lines[1].len(), "{t}");
    }

    #[test]
    fn well_formedness_checker_rejects_garbage() {
        for bad in [
            "{",
            "{\"a\":}",
            "{\"a\":1,}",
            "[1 2]",
            "\"unterminated",
            "{\"a\":nan}",
            "01a",
            "{\"a\":1}trailing",
        ] {
            assert!(!json_is_well_formed(bad), "accepted: {bad}");
        }
        for good in ["{}", "[]", "{\"a\":[1,2,{\"b\":null}],\"c\":-1.5e-7}", "true"] {
            assert!(json_is_well_formed(good), "rejected: {good}");
        }
    }
}
