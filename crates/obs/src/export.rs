//! Exporters: render a [`Snapshot`] as an aligned text table (for humans),
//! as JSON (for `BENCH_obs.json`-style perf-trajectory artifacts), or as
//! OpenMetrics text exposition (for Prometheus-style scrapers and the
//! [`crate::telemetry`] periodic exporter).

use crate::hist::Histogram;
use crate::json::ObjectWriter;
use crate::metrics::Snapshot;

fn fmt_sig(v: f64) -> String {
    if !v.is_finite() {
        return format!("{v}");
    }
    let a = v.abs();
    if v == 0.0 {
        "0".into()
    } else if !(1e-3..1e6).contains(&a) {
        format!("{v:.3e}")
    } else if a >= 100.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.4}")
    }
}

fn fmt_ns(ns: f64) -> String {
    if !ns.is_finite() {
        return format!("{ns}");
    }
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}us", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

fn push_table(out: &mut String, header: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let render = |cells: &[String], out: &mut String| {
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            if i == 0 {
                out.push_str(&format!("{cell:<w$}", w = widths[i]));
            } else {
                out.push_str(&format!("{cell:>w$}", w = widths[i]));
            }
        }
        out.push('\n');
    };
    render(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>(), out);
    render(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>(), out);
    for row in rows {
        render(row, out);
    }
}

/// Renders the snapshot as an aligned, sectioned text table.
pub fn text_table(snap: &Snapshot) -> String {
    let mut out = String::new();
    if snap.is_empty() {
        out.push_str("(no metrics recorded)\n");
        return out;
    }
    if !snap.spans.is_empty() {
        out.push_str("== spans ==\n");
        let rows: Vec<Vec<String>> = snap
            .spans
            .iter()
            .map(|(name, s)| {
                vec![
                    name.clone(),
                    s.count.to_string(),
                    fmt_ns(s.total_ns as f64),
                    fmt_ns(s.self_ns as f64),
                    fmt_ns(s.durations.quantile(0.5)),
                    fmt_ns(s.durations.quantile(0.9)),
                    fmt_ns(s.durations.quantile(0.99)),
                ]
            })
            .collect();
        push_table(&mut out, &["span", "count", "total", "self", "p50", "p90", "p99"], &rows);
        out.push('\n');
    }
    if !snap.counters.is_empty() {
        out.push_str("== counters ==\n");
        let rows: Vec<Vec<String>> =
            snap.counters.iter().map(|(n, v)| vec![n.clone(), v.to_string()]).collect();
        push_table(&mut out, &["counter", "value"], &rows);
        out.push('\n');
    }
    if !snap.gauges.is_empty() {
        out.push_str("== gauges ==\n");
        let rows: Vec<Vec<String>> =
            snap.gauges.iter().map(|(n, v)| vec![n.clone(), fmt_sig(*v)]).collect();
        push_table(&mut out, &["gauge", "value"], &rows);
        out.push('\n');
    }
    if !snap.hists.is_empty() {
        out.push_str("== histograms ==\n");
        let rows: Vec<Vec<String>> = snap
            .hists
            .iter()
            .map(|(n, h)| {
                vec![
                    n.clone(),
                    h.count().to_string(),
                    fmt_sig(h.mean()),
                    fmt_sig(h.quantile(0.5)),
                    fmt_sig(h.quantile(0.9)),
                    fmt_sig(h.quantile(0.99)),
                    fmt_sig(h.min()),
                    fmt_sig(h.max()),
                ]
            })
            .collect();
        push_table(
            &mut out,
            &["histogram", "count", "mean", "p50", "p90", "p99", "min", "max"],
            &rows,
        );
        out.push('\n');
    }
    // Health footer: ring overflow and cache effectiveness at a glance,
    // without having to parse the JSON artifact.
    out.push_str("== summary ==\n");
    let dropped = snap.counter("trace.dropped_events").unwrap_or(0);
    out.push_str(&format!("trace.dropped_events: {dropped}\n"));
    let hits = snap.counter("power.cache.hits").unwrap_or(0);
    let misses = snap.counter("power.cache.misses").unwrap_or(0);
    if hits + misses > 0 {
        let rate = 100.0 * hits as f64 / (hits + misses) as f64;
        out.push_str(&format!(
            "power memo cache: {hits} hits / {misses} misses ({rate:.1}% hit rate)\n"
        ));
    } else {
        out.push_str("power memo cache: no lookups recorded\n");
    }
    out
}

/// Renders the snapshot as a single JSON object:
///
/// ```json
/// {
///   "counters": {"power.evaluate.calls": 182},
///   "gauges": {"power.stage.4K.utilization": 0.99},
///   "histograms": {"cyclesim.makespan_ns": {"count": 3, "mean": ..., "p50": ...}},
///   "spans": {"power.max_qubits": {"count": 2, "total_ns": ..., "p50_ns": ...}}
/// }
/// ```
pub fn to_json(snap: &Snapshot) -> String {
    let mut out = String::with_capacity(1024);
    let mut root = ObjectWriter::new(&mut out);

    let mut counters = String::new();
    {
        let mut w = ObjectWriter::new(&mut counters);
        for (n, v) in &snap.counters {
            w.field_u64(n, *v);
        }
        w.finish();
    }
    root.field_raw("counters", &counters);

    let mut gauges = String::new();
    {
        let mut w = ObjectWriter::new(&mut gauges);
        for (n, v) in &snap.gauges {
            w.field_f64(n, *v);
        }
        w.finish();
    }
    root.field_raw("gauges", &gauges);

    let mut hists = String::new();
    {
        let mut w = ObjectWriter::new(&mut hists);
        for (n, h) in &snap.hists {
            let mut one = String::new();
            let mut hw = ObjectWriter::new(&mut one);
            hw.field_u64("count", h.count());
            hw.field_f64("mean", h.mean());
            hw.field_f64("min", h.min());
            hw.field_f64("max", h.max());
            hw.field_f64("p50", h.quantile(0.5));
            hw.field_f64("p90", h.quantile(0.9));
            hw.field_f64("p99", h.quantile(0.99));
            hw.finish();
            w.field_raw(n, &one);
        }
        w.finish();
    }
    root.field_raw("histograms", &hists);

    let mut spans = String::new();
    {
        let mut w = ObjectWriter::new(&mut spans);
        for (n, s) in &snap.spans {
            let mut one = String::new();
            let mut sw = ObjectWriter::new(&mut one);
            sw.field_u64("count", s.count);
            sw.field_u64("total_ns", s.total_ns);
            sw.field_u64("self_ns", s.self_ns);
            sw.field_f64("p50_ns", s.durations.quantile(0.5));
            sw.field_f64("p90_ns", s.durations.quantile(0.9));
            sw.field_f64("p99_ns", s.durations.quantile(0.99));
            sw.finish();
            w.field_raw(n, &one);
        }
        w.finish();
    }
    root.field_raw("spans", &spans);
    root.finish();
    out
}

/// A very small JSON well-formedness checker used by the tests and the
/// CI smoke run: validates balanced structure, string escapes, and
/// number syntax. Not a full parser — just enough to catch exporter bugs.
pub fn json_is_well_formed(s: &str) -> bool {
    let b = s.as_bytes();
    let mut i = 0usize;
    fn skip_ws(b: &[u8], i: &mut usize) {
        while *i < b.len() && (b[*i] as char).is_ascii_whitespace() {
            *i += 1;
        }
    }
    fn value(b: &[u8], i: &mut usize) -> bool {
        skip_ws(b, i);
        if *i >= b.len() {
            return false;
        }
        match b[*i] {
            b'{' => {
                *i += 1;
                skip_ws(b, i);
                if *i < b.len() && b[*i] == b'}' {
                    *i += 1;
                    return true;
                }
                loop {
                    skip_ws(b, i);
                    if !string(b, i) {
                        return false;
                    }
                    skip_ws(b, i);
                    if *i >= b.len() || b[*i] != b':' {
                        return false;
                    }
                    *i += 1;
                    if !value(b, i) {
                        return false;
                    }
                    skip_ws(b, i);
                    if *i < b.len() && b[*i] == b',' {
                        *i += 1;
                        continue;
                    }
                    if *i < b.len() && b[*i] == b'}' {
                        *i += 1;
                        return true;
                    }
                    return false;
                }
            }
            b'[' => {
                *i += 1;
                skip_ws(b, i);
                if *i < b.len() && b[*i] == b']' {
                    *i += 1;
                    return true;
                }
                loop {
                    if !value(b, i) {
                        return false;
                    }
                    skip_ws(b, i);
                    if *i < b.len() && b[*i] == b',' {
                        *i += 1;
                        continue;
                    }
                    if *i < b.len() && b[*i] == b']' {
                        *i += 1;
                        return true;
                    }
                    return false;
                }
            }
            b'"' => string(b, i),
            b't' => literal(b, i, b"true"),
            b'f' => literal(b, i, b"false"),
            b'n' => literal(b, i, b"null"),
            _ => number(b, i),
        }
    }
    fn literal(b: &[u8], i: &mut usize, lit: &[u8]) -> bool {
        if b[*i..].starts_with(lit) {
            *i += lit.len();
            true
        } else {
            false
        }
    }
    fn string(b: &[u8], i: &mut usize) -> bool {
        if *i >= b.len() || b[*i] != b'"' {
            return false;
        }
        *i += 1;
        while *i < b.len() {
            match b[*i] {
                b'"' => {
                    *i += 1;
                    return true;
                }
                b'\\' => {
                    *i += 1;
                    if *i >= b.len() {
                        return false;
                    }
                    match b[*i] {
                        b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't' => *i += 1,
                        b'u' => {
                            if *i + 4 >= b.len()
                                || !b[*i + 1..*i + 5].iter().all(u8::is_ascii_hexdigit)
                            {
                                return false;
                            }
                            *i += 5;
                        }
                        _ => return false,
                    }
                }
                c if c < 0x20 => return false,
                _ => *i += 1,
            }
        }
        false
    }
    fn number(b: &[u8], i: &mut usize) -> bool {
        let start = *i;
        if *i < b.len() && b[*i] == b'-' {
            *i += 1;
        }
        let digits = |b: &[u8], i: &mut usize| {
            let s = *i;
            while *i < b.len() && b[*i].is_ascii_digit() {
                *i += 1;
            }
            *i > s
        };
        if !digits(b, i) {
            return false;
        }
        if *i < b.len() && b[*i] == b'.' {
            *i += 1;
            if !digits(b, i) {
                return false;
            }
        }
        if *i < b.len() && (b[*i] == b'e' || b[*i] == b'E') {
            *i += 1;
            if *i < b.len() && (b[*i] == b'+' || b[*i] == b'-') {
                *i += 1;
            }
            if !digits(b, i) {
                return false;
            }
        }
        *i > start
    }
    if !value(b, &mut i) {
        return false;
    }
    skip_ws(b, &mut i);
    i == b.len()
}

/// Maps a dotted qisim metric name (`power.cache.hits`) onto the
/// OpenMetrics name charset `[a-zA-Z_:][a-zA-Z0-9_:]*`: dots and every
/// other illegal character become underscores, and a leading digit gets
/// an underscore prefix.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            if out.is_empty() && c.is_ascii_digit() {
                out.push('_');
            }
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Renders a float the way OpenMetrics spells the special values.
fn fmt_om(v: f64) -> String {
    if v.is_nan() {
        "NaN".into()
    } else if v == f64::INFINITY {
        "+Inf".into()
    } else if v == f64::NEG_INFINITY {
        "-Inf".into()
    } else {
        format!("{v}")
    }
}

/// One histogram family: `# TYPE`/`# HELP`, cumulative `_bucket` series
/// (underflow folded into `le="1"`, the first bucket edge), the mandatory
/// `le="+Inf"` bucket, `_sum`, and `_count`.
fn push_om_histogram(out: &mut String, n: &str, orig: &str, h: &Histogram) {
    out.push_str(&format!("# TYPE {n} histogram\n"));
    out.push_str(&format!("# HELP {n} qisim histogram {orig}\n"));
    let mut cum = h.underflow();
    if cum > 0 {
        out.push_str(&format!("{n}_bucket{{le=\"1\"}} {cum}\n"));
    }
    for (_lo, hi, c) in h.nonempty_buckets() {
        cum += c;
        out.push_str(&format!("{n}_bucket{{le=\"{hi}\"}} {cum}\n"));
    }
    // `count` includes non-finite samples excluded from every bucket, so
    // +Inf (the whole real line and beyond) is the only edge that sees
    // them — exactly the OpenMetrics contract `+Inf == _count`.
    out.push_str(&format!("{n}_bucket{{le=\"+Inf\"}} {}\n", h.count()));
    out.push_str(&format!("{n}_sum {}\n", fmt_om(h.sum())));
    out.push_str(&format!("{n}_count {}\n", h.count()));
}

/// Renders the snapshot in OpenMetrics text exposition format:
///
/// ```text
/// # TYPE power_cache_hits counter
/// # HELP power_cache_hits qisim counter power.cache.hits
/// power_cache_hits_total 182
/// # TYPE cyclesim_makespan_ns histogram
/// cyclesim_makespan_ns_bucket{le="1024"} 1
/// cyclesim_makespan_ns_bucket{le="+Inf"} 2
/// cyclesim_makespan_ns_sum 2032
/// cyclesim_makespan_ns_count 2
/// # EOF
/// ```
///
/// Dotted names are sanitized via [`sanitize_metric_name`]; spans export
/// as a `{name}_duration_ns` histogram plus a `{name}_self_ns` counter.
/// The output always terminates with `# EOF` and round-trips through
/// [`openmetrics_is_well_formed`].
pub fn openmetrics(snap: &Snapshot) -> String {
    let mut out = String::with_capacity(2048);
    for (name, v) in &snap.counters {
        let n = sanitize_metric_name(name);
        out.push_str(&format!("# TYPE {n} counter\n"));
        out.push_str(&format!("# HELP {n} qisim counter {name}\n"));
        out.push_str(&format!("{n}_total {v}\n"));
    }
    for (name, v) in &snap.gauges {
        let n = sanitize_metric_name(name);
        out.push_str(&format!("# TYPE {n} gauge\n"));
        out.push_str(&format!("# HELP {n} qisim gauge {name}\n"));
        out.push_str(&format!("{n} {}\n", fmt_om(*v)));
    }
    for (name, h) in &snap.hists {
        push_om_histogram(&mut out, &sanitize_metric_name(name), name, h);
    }
    for (name, s) in &snap.spans {
        let n = sanitize_metric_name(name);
        push_om_histogram(&mut out, &format!("{n}_duration_ns"), name, &s.durations);
        out.push_str(&format!("# TYPE {n}_self_ns counter\n"));
        out.push_str(&format!("# HELP {n}_self_ns qisim span self-time {name}\n"));
        out.push_str(&format!("{n}_self_ns_total {}\n", s.self_ns));
    }
    out.push_str("# EOF\n");
    out
}

/// OpenMetrics name charset: `[a-zA-Z_:][a-zA-Z0-9_:]*`.
fn om_name_ok(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Label set between braces: `key="value",key="value"` with `\\`, `\"`,
/// and `\n` escapes inside values. Returns the value of `le` if present.
fn om_labels_ok(s: &str) -> Option<Option<String>> {
    let b = s.as_bytes();
    let mut i = 0usize;
    let mut le = None;
    if b.is_empty() {
        return Some(None);
    }
    loop {
        let key_start = i;
        while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
            i += 1;
        }
        if i == key_start || i >= b.len() || b[i] != b'=' {
            return None;
        }
        let key = &s[key_start..i];
        i += 1;
        if i >= b.len() || b[i] != b'"' {
            return None;
        }
        i += 1;
        let val_start = i;
        loop {
            if i >= b.len() {
                return None;
            }
            match b[i] {
                b'"' => break,
                b'\\' => {
                    if i + 1 >= b.len() || !matches!(b[i + 1], b'\\' | b'"' | b'n') {
                        return None;
                    }
                    i += 2;
                }
                _ => i += 1,
            }
        }
        if key == "le" {
            le = Some(s[val_start..i].to_string());
        }
        i += 1; // closing quote
        if i == b.len() {
            return Some(le);
        }
        if b[i] != b',' {
            return None;
        }
        i += 1;
    }
}

/// A small OpenMetrics well-formedness checker mirroring
/// [`json_is_well_formed`]: used by the exporter tests and the CI smoke
/// run as a self-check on [`openmetrics`] output. Validates the `# EOF`
/// terminator, `# TYPE` declarations preceding their samples, the metric
/// name charset, label syntax, float values (including `NaN`/`+Inf`),
/// counter `_total` / histogram `_bucket`/`_sum`/`_count` suffix
/// discipline, and cumulative bucket monotonicity with
/// `le="+Inf" == _count`. Not a full parser — just enough to catch
/// exposition bugs.
pub fn openmetrics_is_well_formed(s: &str) -> bool {
    use std::collections::BTreeMap;
    let mut types: BTreeMap<&str, &str> = BTreeMap::new();
    // Per histogram family: (last cumulative bucket value, +Inf value).
    let mut buckets: BTreeMap<&str, (f64, Option<f64>)> = BTreeMap::new();
    let mut seen_eof = false;
    let value_ok = |v: &str| -> Option<f64> {
        match v {
            "NaN" => Some(f64::NAN),
            "+Inf" => Some(f64::INFINITY),
            "-Inf" => Some(f64::NEG_INFINITY),
            _ => v.parse::<f64>().ok().filter(|x| x.is_finite()),
        }
    };
    for line in s.lines() {
        if seen_eof {
            return false; // nothing may follow the terminator
        }
        if line == "# EOF" {
            seen_eof = true;
            continue;
        }
        if line.is_empty() {
            return false;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.splitn(2, ' ');
            let (name, ty) = (it.next().unwrap_or(""), it.next().unwrap_or(""));
            let known = matches!(ty, "counter" | "gauge" | "histogram" | "summary" | "unknown");
            if !om_name_ok(name) || !known || types.insert(name, ty).is_some() {
                return false;
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            if !om_name_ok(rest.split(' ').next().unwrap_or("")) {
                return false;
            }
            continue;
        }
        if line.starts_with('#') {
            return false; // only TYPE/HELP/EOF comment forms exist
        }
        // Sample line: name[{labels}] value
        let name_end = line.find(['{', ' ']).unwrap_or(line.len());
        let name = &line[..name_end];
        if !om_name_ok(name) {
            return false;
        }
        let mut rest = &line[name_end..];
        let mut le = None;
        if let Some(inner) = rest.strip_prefix('{') {
            let Some(close) = inner.find('}') else { return false };
            match om_labels_ok(&inner[..close]) {
                Some(l) => le = l,
                None => return false,
            }
            rest = &inner[close + 1..];
        }
        let Some(valstr) = rest.strip_prefix(' ') else { return false };
        let Some(val) = value_ok(valstr) else { return false };
        // Suffix discipline: the sample must belong to a declared family
        // of the matching type, declared before this line.
        let fam_of = |suffix: &str, ty: &str| -> Option<&str> {
            let base = name.strip_suffix(suffix)?;
            (types.get(base) == Some(&ty)).then_some(base)
        };
        if types.get(name) == Some(&"gauge") || types.get(name) == Some(&"unknown") {
            // plain sample, nothing more to check
        } else if fam_of("_total", "counter").is_some() {
            if val < 0.0 {
                return false;
            }
        } else if let Some(base) = fam_of("_bucket", "histogram") {
            let Some(edge) = le else { return false };
            if value_ok(&edge).is_none() {
                return false;
            }
            let entry = buckets.entry(base).or_insert((f64::NEG_INFINITY, None));
            if val < entry.0 {
                return false; // cumulative series must be non-decreasing
            }
            entry.0 = val;
            if edge == "+Inf" {
                entry.1 = Some(val);
            }
        } else if let Some(base) = fam_of("_count", "histogram") {
            match buckets.get(base).and_then(|e| e.1) {
                Some(inf) if inf == val => {}
                _ => return false, // +Inf bucket missing or != _count
            }
        } else if fam_of("_sum", "histogram").is_none() {
            return false;
        }
    }
    seen_eof
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    fn sample() -> Snapshot {
        let r = Registry::new();
        r.counter_add("power.evaluate.calls", 182);
        r.counter_add("cyclesim.ops", 9);
        r.gauge_set("power.stage.4K.utilization", 0.997);
        r.gauge_set("weird \"name\"\\path", f64::NAN);
        r.observe("cyclesim.makespan_ns", 1117.0);
        r.observe("cyclesim.makespan_ns", 915.0);
        r.record_span("power.max_qubits", 2_000_000, 1_500_000);
        r.snapshot()
    }

    #[test]
    fn json_export_is_well_formed_and_complete() {
        let j = to_json(&sample());
        assert!(json_is_well_formed(&j), "malformed: {j}");
        assert!(j.contains("\"power.evaluate.calls\":182"));
        assert!(j.contains("\"power.max_qubits\""));
        assert!(j.contains("\"total_ns\":2000000"));
        // NaN gauge must degrade to null, not poison the document.
        assert!(j.contains("null"), "{j}");
        // The escaped gauge name survives round-trip escaping.
        assert!(j.contains(r#"weird \"name\"\\path"#), "{j}");
    }

    #[test]
    fn empty_snapshot_exports_cleanly() {
        let snap = Snapshot::default();
        let j = to_json(&snap);
        assert!(json_is_well_formed(&j), "malformed: {j}");
        assert!(text_table(&snap).contains("no metrics recorded"));
    }

    #[test]
    fn text_table_aligns_and_sections() {
        let t = text_table(&sample());
        assert!(t.contains("== spans =="));
        assert!(t.contains("== counters =="));
        assert!(t.contains("== gauges =="));
        assert!(t.contains("== histograms =="));
        assert!(t.contains("power.max_qubits"));
        assert!(t.contains("p99"));
        // Alignment: counter values right-aligned in one column.
        let lines: Vec<&str> =
            t.lines().filter(|l| l.contains(".calls") || l.contains("cyclesim.ops")).collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].len(), lines[1].len(), "{t}");
    }

    #[test]
    fn text_table_summary_footer_reports_health() {
        let r = Registry::new();
        r.counter_add("trace.dropped_events", 3);
        r.counter_add("power.cache.hits", 9);
        r.counter_add("power.cache.misses", 1);
        let t = text_table(&r.snapshot());
        assert!(t.contains("== summary =="), "{t}");
        assert!(t.contains("trace.dropped_events: 3"), "{t}");
        assert!(t.contains("9 hits / 1 misses (90.0% hit rate)"), "{t}");
        // Without the counters the footer still renders, with defaults.
        let t = text_table(&sample());
        assert!(t.contains("trace.dropped_events: 0"), "{t}");
        assert!(t.contains("no lookups recorded"), "{t}");
    }

    #[test]
    fn metric_names_sanitize_to_openmetrics_charset() {
        assert_eq!(sanitize_metric_name("power.cache.hits"), "power_cache_hits");
        assert_eq!(sanitize_metric_name("weird \"name\"\\path"), "weird__name__path");
        assert_eq!(sanitize_metric_name("4K.stage"), "_4K_stage");
        assert_eq!(sanitize_metric_name(""), "_");
        assert_eq!(sanitize_metric_name("already_fine:ns"), "already_fine:ns");
    }

    #[test]
    fn openmetrics_export_is_well_formed_and_complete() {
        let om = openmetrics(&sample());
        assert!(openmetrics_is_well_formed(&om), "malformed:\n{om}");
        assert!(om.ends_with("# EOF\n"), "{om}");
        // Counter family: TYPE line + _total sample with sanitized name.
        assert!(om.contains("# TYPE power_evaluate_calls counter"), "{om}");
        assert!(om.contains("power_evaluate_calls_total 182"), "{om}");
        // Gauge family, including the NaN degradation.
        assert!(om.contains("# TYPE power_stage_4K_utilization gauge"), "{om}");
        assert!(om.contains("power_stage_4K_utilization 0.997"), "{om}");
        assert!(om.contains("weird__name__path NaN"), "{om}");
        // Histogram family: buckets are cumulative and capped by +Inf.
        assert!(om.contains("# TYPE cyclesim_makespan_ns histogram"), "{om}");
        assert!(om.contains("cyclesim_makespan_ns_bucket{le=\"+Inf\"} 2"), "{om}");
        assert!(om.contains("cyclesim_makespan_ns_sum 2032"), "{om}");
        assert!(om.contains("cyclesim_makespan_ns_count 2"), "{om}");
        // Span family: duration histogram + self-time counter.
        assert!(om.contains("# TYPE power_max_qubits_duration_ns histogram"), "{om}");
        assert!(om.contains("power_max_qubits_self_ns_total 1500000"), "{om}");
    }

    #[test]
    fn openmetrics_underflow_folds_into_first_bucket() {
        let r = Registry::new();
        r.observe("h", 0.25); // below the first bucket edge
        r.observe("h", 0.5);
        r.observe("h", 100.0);
        let om = openmetrics(&r.snapshot());
        assert!(openmetrics_is_well_formed(&om), "malformed:\n{om}");
        assert!(om.contains("h_bucket{le=\"1\"} 2"), "{om}");
        assert!(om.contains("h_bucket{le=\"+Inf\"} 3"), "{om}");
    }

    #[test]
    fn empty_snapshot_openmetrics_is_just_eof() {
        let om = openmetrics(&Snapshot::default());
        assert_eq!(om, "# EOF\n");
        assert!(openmetrics_is_well_formed(&om));
    }

    #[test]
    fn openmetrics_checker_rejects_garbage() {
        for bad in [
            "",                                                                                      // no EOF
            "foo_total 1\n# EOF\n",                      // sample before TYPE
            "# TYPE foo counter\nfoo 1\n# EOF\n",        // counter without _total
            "# TYPE foo counter\nfoo_total -1\n# EOF\n", // negative counter
            "# TYPE foo counter\nfoo_total 1\n",         // missing EOF
            "# TYPE foo counter\n# EOF\nfoo_total 1\n",  // sample after EOF
            "# TYPE foo gauge\nfoo abc\n# EOF\n",        // bad value
            "# TYPE 9foo gauge\n9foo 1\n# EOF\n",        // bad name
            "# TYPE foo gauge\n# TYPE foo gauge\n# EOF\n", // duplicate TYPE
            "# TYPE foo wibble\n# EOF\n",                // unknown family type
            "# TYPE h histogram\nh_bucket{le=\"2\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_count 3\n# EOF\n", // non-monotone
            "# TYPE h histogram\nh_sum 1\nh_count 3\n# EOF\n", // _count without +Inf
            "# TYPE h histogram\nh_bucket{le=} 1\n# EOF\n",    // broken labels
        ] {
            assert!(!openmetrics_is_well_formed(bad), "accepted: {bad:?}");
        }
        let good = "# TYPE h histogram\n# HELP h words here\nh_bucket{le=\"1\"} 1\n\
                    h_bucket{le=\"+Inf\"} 2\nh_sum 3.5\nh_count 2\n# EOF\n";
        assert!(openmetrics_is_well_formed(good));
    }

    #[test]
    fn well_formedness_checker_rejects_garbage() {
        for bad in [
            "{",
            "{\"a\":}",
            "{\"a\":1,}",
            "[1 2]",
            "\"unterminated",
            "{\"a\":nan}",
            "01a",
            "{\"a\":1}trailing",
        ] {
            assert!(!json_is_well_formed(bad), "accepted: {bad}");
        }
        for good in ["{}", "[]", "{\"a\":[1,2,{\"b\":null}],\"c\":-1.5e-7}", "true"] {
            assert!(json_is_well_formed(good), "rejected: {good}");
        }
    }
}
