//! The flight recorder: bounded per-thread ring buffers of timestamped
//! trace events (span begin/end, instants, counter deltas), drained into
//! a [`TraceSession`] for export as a Chrome `trace_event` JSON timeline
//! or folded flamegraph stacks (see [`crate::trace_export`]).
//!
//! Where the metrics registry ([`crate::metrics`]) keeps *aggregates*
//! (how much time, how many calls), the recorder keeps *order*: which
//! pipeline stage ran when, on which worker thread, and how bisection
//! probes and Monte-Carlo chunks interleaved across a sweep.
//!
//! # Recording model
//!
//! - Each thread that records while the recorder is [`armed`] lazily
//!   registers one fixed-capacity ring buffer (a *lane*). Recording into
//!   the ring never allocates and never blocks on other threads: the
//!   only lock taken is the lane's own (uncontended except during a
//!   drain).
//! - Rings are **drop-oldest**: once full, each new event overwrites the
//!   oldest one and bumps a per-lane dropped count. [`TraceSession::drain`]
//!   publishes the total as the `trace.dropped_events` counter, so a
//!   truncated timeline is always visible in `BENCH_obs.json`.
//! - Event names are `&'static str` and argument lists are fixed-size
//!   (at most [`MAX_ARGS`] numeric pairs), keeping every event `Copy`.
//!
//! # Arming
//!
//! The recorder is **disarmed** by default: every recording entry point
//! is a single relaxed atomic load and nothing is ever allocated. It
//! arms in two ways:
//!
//! - programmatically, via [`arm`] / [`disarm`];
//! - through the `QISIM_TRACE=<path>` environment variable, read once on
//!   first use: the recorder arms itself and [`TraceSession::finish`]
//!   (or, best-effort, process exit) writes the Chrome JSON to `<path>`
//!   and the folded stacks to `<path>.folded`.
//!
//! The `obs` cargo feature and the [`crate::set_enabled`] runtime toggle
//! remain the outer kill switches: with the feature compiled out every
//! function here is inert, and a disabled registry records no spans, so
//! no span events reach the rings either.

#[cfg(feature = "obs")]
use std::cell::RefCell;
use std::path::PathBuf;
#[cfg(feature = "obs")]
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
#[cfg(feature = "obs")]
use std::sync::{Arc, Mutex, OnceLock};
#[cfg(feature = "obs")]
use std::time::Instant;

/// Maximum number of `(key, value)` argument pairs one event can carry.
pub const MAX_ARGS: usize = 3;

/// Default per-thread ring capacity, in events (see [`set_capacity`]).
pub const DEFAULT_CAPACITY: usize = 16 * 1024;

/// The kind of one recorded event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEventKind {
    /// A span opened (`ph: "B"` in Chrome terms).
    Begin,
    /// A span closed (`ph: "E"`).
    End,
    /// A point-in-time marker (`ph: "i"`).
    Instant,
    /// A counter delta (`ph: "C"`; the exporter accumulates deltas into
    /// a running total per counter name).
    Counter,
}

/// One timestamped flight-recorder event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Nanoseconds since the recorder's epoch (first arm).
    pub t_ns: u64,
    /// Event kind.
    pub kind: TraceEventKind,
    /// Static event name (span name, marker name, or counter name).
    pub name: &'static str,
    /// Span id for [`TraceEventKind::Begin`] / [`TraceEventKind::End`]
    /// (0 otherwise). Ids are process-unique, so begin/end pairs survive
    /// ring truncation.
    pub span_id: u64,
    /// Enclosing span's id at begin time (0 = root).
    pub parent_id: u64,
    /// Up to [`MAX_ARGS`] numeric arguments (qubit counts, chunk
    /// indices, latencies, counter deltas).
    pub args: [Option<(&'static str, f64)>; MAX_ARGS],
}

impl TraceEvent {
    #[cfg(feature = "obs")]
    fn new(kind: TraceEventKind, name: &'static str) -> TraceEvent {
        TraceEvent { t_ns: now_ns(), kind, name, span_id: 0, parent_id: 0, args: [None; MAX_ARGS] }
    }
}

/// All events one thread recorded, oldest first, plus the lane's
/// identity.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ThreadTimeline {
    /// Lane id (stable per recording thread; also the Chrome `tid`).
    pub lane: u32,
    /// Human label (`"main"`-style or `"qisim-par worker-3"`).
    pub label: String,
    /// Events in recording order (timestamps are non-decreasing).
    pub events: Vec<TraceEvent>,
    /// Events this lane overwrote because its ring was full.
    pub dropped: u64,
}

/// A drained copy of every lane's ring buffer: the unit the exporters
/// consume ([`crate::trace_export::chrome_trace_json`] /
/// [`crate::trace_export::folded_stacks`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceSession {
    /// Per-thread timelines, ordered by lane id. Lanes that recorded
    /// nothing are omitted.
    pub threads: Vec<ThreadTimeline>,
    /// Total events dropped across all lanes (also published as the
    /// `trace.dropped_events` counter).
    pub dropped_events: u64,
}

impl TraceSession {
    /// Copies every lane's events out of the rings and clears them.
    /// Lanes stay registered (their threads may still be recording), so
    /// repeated drains yield disjoint event sets.
    ///
    /// Publishes the cumulative dropped-event total as the
    /// `trace.dropped_events` counter when any events were lost.
    pub fn drain() -> TraceSession {
        #[cfg(feature = "obs")]
        {
            let lanes = lanes().lock().unwrap_or_else(|e| e.into_inner()).clone();
            let mut threads = Vec::new();
            let mut dropped_events = 0u64;
            for lane in &lanes {
                let mut ring = lane.lock().unwrap_or_else(|e| e.into_inner());
                dropped_events += ring.dropped;
                if ring.len == 0 && ring.dropped == 0 {
                    continue;
                }
                threads.push(ThreadTimeline {
                    lane: ring.lane,
                    label: ring.label.clone(),
                    events: ring.take_events(),
                    dropped: std::mem::take(&mut ring.dropped),
                });
            }
            threads.sort_by_key(|t| t.lane);
            if dropped_events > 0 {
                crate::counter_add("trace.dropped_events", dropped_events);
            }
            TraceSession { threads, dropped_events }
        }
        #[cfg(not(feature = "obs"))]
        {
            TraceSession::default()
        }
    }

    /// Whether no lane recorded anything.
    pub fn is_empty(&self) -> bool {
        self.threads.is_empty()
    }

    /// Total number of events across all lanes.
    pub fn event_count(&self) -> usize {
        self.threads.iter().map(|t| t.events.len()).sum()
    }

    /// The timeline of one lane, if present.
    pub fn thread(&self, lane: u32) -> Option<&ThreadTimeline> {
        self.threads.iter().find(|t| t.lane == lane)
    }

    /// If the recorder was armed through `QISIM_TRACE=<path>`, writes
    /// the Chrome `trace_event` JSON to `<path>` and the folded
    /// flamegraph stacks to `<path>.folded`, and returns the JSON path.
    /// Returns `None` (writing nothing) when the recorder was armed
    /// programmatically or not at all.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if either artifact cannot be written.
    pub fn finish(self) -> std::io::Result<Option<PathBuf>> {
        #[cfg(feature = "obs")]
        {
            let Some(path) = env_path() else { return Ok(None) };
            ENV_DUMPED.store(true, Ordering::Relaxed);
            let json = crate::trace_export::chrome_trace_json(&self);
            std::fs::write(&path, json)?;
            let mut folded = path.clone().into_os_string();
            folded.push(".folded");
            std::fs::write(PathBuf::from(folded), crate::trace_export::folded_stacks(&self))?;
            Ok(Some(path))
        }
        #[cfg(not(feature = "obs"))]
        {
            Ok(None)
        }
    }
}

/// Whether the flight recorder is currently armed. Always `false` when
/// the `obs` feature is compiled out. This is the hot-path gate: when
/// disarmed it is a single relaxed atomic load, so instrumented loops
/// cost nothing beyond it.
#[inline]
pub fn armed() -> bool {
    #[cfg(feature = "obs")]
    {
        match ARMED.load(Ordering::Relaxed) {
            STATE_UNINIT => init_from_env(),
            state => state == STATE_ON,
        }
    }
    #[cfg(not(feature = "obs"))]
    {
        false
    }
}

/// Arms the recorder: subsequent spans, instants, and counters are
/// written to the per-thread rings. A no-op without the `obs` feature.
pub fn arm() {
    #[cfg(feature = "obs")]
    {
        armed(); // force env init so a later finish() sees the path
        let _ = epoch();
        ARMED.store(STATE_ON, Ordering::Relaxed);
    }
}

/// Disarms the recorder; already-recorded events stay in the rings until
/// the next [`TraceSession::drain`].
pub fn disarm() {
    #[cfg(feature = "obs")]
    {
        armed(); // keep the env-initialized state machine consistent
        ARMED.store(STATE_OFF, Ordering::Relaxed);
    }
}

/// Sets the per-thread ring capacity (in events) used by lanes
/// registered *after* this call; existing lanes keep their rings.
/// Values are clamped to at least 16. Defaults to [`DEFAULT_CAPACITY`].
pub fn set_capacity(events_per_thread: usize) {
    #[cfg(feature = "obs")]
    CAPACITY.store(events_per_thread.max(16), Ordering::Relaxed);
    #[cfg(not(feature = "obs"))]
    let _ = events_per_thread;
}

/// Labels the calling thread's lane in the exported timeline (e.g.
/// `"qisim-par worker-2"`). Registers the lane if the thread has none
/// yet; a no-op when the recorder is disarmed.
pub fn set_thread_label(label: &str) {
    #[cfg(feature = "obs")]
    {
        if !armed() {
            return;
        }
        with_ring(|ring| {
            ring.label.clear();
            ring.label.push_str(label);
        });
    }
    #[cfg(not(feature = "obs"))]
    let _ = label;
}

/// Nanoseconds since the recorder's epoch (the first arm or first
/// timestamp request). Useful for computing latency arguments like
/// queue-to-start times. Always 0 without the `obs` feature.
#[inline]
pub fn now_ns() -> u64 {
    #[cfg(feature = "obs")]
    {
        epoch().elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
    }
    #[cfg(not(feature = "obs"))]
    {
        0
    }
}

/// Records a point-in-time marker with up to [`MAX_ARGS`] numeric
/// arguments (extra pairs are ignored). A no-op when disarmed.
pub fn instant(name: &'static str, args: &[(&'static str, f64)]) {
    #[cfg(feature = "obs")]
    {
        if !armed() {
            return;
        }
        let mut ev = TraceEvent::new(TraceEventKind::Instant, name);
        for (slot, &pair) in ev.args.iter_mut().zip(args.iter()) {
            *slot = Some(pair);
        }
        attach_request_id(&mut ev);
        record(ev);
    }
    #[cfg(not(feature = "obs"))]
    let _ = (name, args);
}

/// Records a counter delta event (the Chrome exporter accumulates
/// deltas into a per-name running total). A no-op when disarmed.
/// [`crate::counter!`] with a literal name routes here automatically.
pub fn counter_event(name: &'static str, delta: u64) {
    #[cfg(feature = "obs")]
    {
        if !armed() {
            return;
        }
        let mut ev = TraceEvent::new(TraceEventKind::Counter, name);
        ev.args[0] = Some(("delta", delta as f64));
        record(ev);
    }
    #[cfg(not(feature = "obs"))]
    let _ = (name, delta);
}

/// Allocates a fresh process-unique span id (never 0).
pub fn new_span_id() -> u64 {
    #[cfg(feature = "obs")]
    {
        NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed)
    }
    #[cfg(not(feature = "obs"))]
    {
        0
    }
}

/// Records a span-begin event (used by [`crate::SpanGuard`]).
pub fn span_begin(name: &'static str, span_id: u64, parent_id: u64) {
    #[cfg(feature = "obs")]
    {
        if !armed() {
            return;
        }
        let mut ev = TraceEvent::new(TraceEventKind::Begin, name);
        ev.span_id = span_id;
        ev.parent_id = parent_id;
        attach_request_id(&mut ev);
        record(ev);
    }
    #[cfg(not(feature = "obs"))]
    let _ = (name, span_id, parent_id);
}

/// Records a span-end event matching a prior [`span_begin`].
pub fn span_end(name: &'static str, span_id: u64) {
    #[cfg(feature = "obs")]
    {
        if !armed() {
            return;
        }
        let mut ev = TraceEvent::new(TraceEventKind::End, name);
        ev.span_id = span_id;
        record(ev);
    }
    #[cfg(not(feature = "obs"))]
    let _ = (name, span_id);
}

// ---------------------------------------------------------------------
// Recorder internals (compiled only with the `obs` feature).
// ---------------------------------------------------------------------

#[cfg(feature = "obs")]
const STATE_UNINIT: u8 = 0;
#[cfg(feature = "obs")]
const STATE_OFF: u8 = 1;
#[cfg(feature = "obs")]
const STATE_ON: u8 = 2;

#[cfg(feature = "obs")]
static ARMED: AtomicU8 = AtomicU8::new(STATE_UNINIT);
#[cfg(feature = "obs")]
static CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_CAPACITY);
#[cfg(feature = "obs")]
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
#[cfg(feature = "obs")]
static ENV_DUMPED: AtomicBool = AtomicBool::new(false);

#[cfg(feature = "obs")]
static EPOCH: OnceLock<Instant> = OnceLock::new();

#[cfg(feature = "obs")]
fn epoch() -> &'static Instant {
    EPOCH.get_or_init(Instant::now)
}

/// The `QISIM_TRACE` value captured at first use (`None` = unset).
#[cfg(feature = "obs")]
static ENV_PATH: OnceLock<Option<PathBuf>> = OnceLock::new();

#[cfg(feature = "obs")]
fn env_path() -> Option<PathBuf> {
    ENV_PATH
        .get_or_init(|| match std::env::var("QISIM_TRACE") {
            Ok(path) if !path.trim().is_empty() => Some(PathBuf::from(path)),
            _ => None,
        })
        .clone()
}

/// One-time arming decision from the environment; returns the armed
/// state. Threads racing here agree because the path and state are both
/// idempotent.
#[cfg(feature = "obs")]
fn init_from_env() -> bool {
    let arm_from_env = env_path().is_some();
    if arm_from_env {
        let _ = epoch();
        // The exit dump rides a TLS destructor; install it only on the
        // main thread so a short-lived worker being the first to touch
        // the recorder cannot dump the trace mid-run when it exits.
        if std::thread::current().name() == Some("main") {
            EXIT_DUMP.with(|guard| guard.borrow_mut().active = true);
        }
        ARMED.store(STATE_ON, Ordering::Relaxed);
    } else {
        ARMED.store(STATE_OFF, Ordering::Relaxed);
    }
    arm_from_env
}

#[cfg(feature = "obs")]
#[derive(Debug)]
struct Ring {
    lane: u32,
    label: String,
    /// Fixed-capacity storage; never reallocated after registration.
    events: Vec<TraceEvent>,
    /// Next write position once the ring has wrapped.
    head: usize,
    len: usize,
    dropped: u64,
}

#[cfg(feature = "obs")]
impl Ring {
    fn push(&mut self, ev: TraceEvent) {
        let cap = self.events.capacity();
        if self.len < cap {
            self.events.push(ev);
            self.len += 1;
        } else {
            // Drop-oldest: overwrite in place, no allocation.
            self.events[self.head] = ev;
            self.head = (self.head + 1) % cap;
            self.dropped += 1;
        }
    }

    /// Copies the events out oldest-first and resets the ring.
    fn take_events(&mut self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.len);
        out.extend_from_slice(&self.events[self.head..]);
        out.extend_from_slice(&self.events[..self.head]);
        self.events.clear();
        self.head = 0;
        self.len = 0;
        out
    }
}

#[cfg(feature = "obs")]
static LANES: OnceLock<Mutex<Vec<Arc<Mutex<Ring>>>>> = OnceLock::new();

#[cfg(feature = "obs")]
fn lanes() -> &'static Mutex<Vec<Arc<Mutex<Ring>>>> {
    LANES.get_or_init(|| Mutex::new(Vec::new()))
}

#[cfg(feature = "obs")]
thread_local! {
    static TL_RING: RefCell<Option<Arc<Mutex<Ring>>>> = const { RefCell::new(None) };
    /// Best-effort end-of-process dump for `QISIM_TRACE` runs that never
    /// call [`TraceSession::finish`]; lives in the thread that first
    /// touched the recorder (normally `main`).
    static EXIT_DUMP: RefCell<ExitGuard> = const { RefCell::new(ExitGuard { active: false }) };
}

#[cfg(feature = "obs")]
#[derive(Debug)]
struct ExitGuard {
    active: bool,
}

#[cfg(feature = "obs")]
impl Drop for ExitGuard {
    fn drop(&mut self) {
        if self.active && !ENV_DUMPED.swap(true, Ordering::Relaxed) {
            if let Some(path) = env_path() {
                let session = TraceSession::drain();
                // Never panic in a TLS destructor; a failed dump is lost.
                let _ = std::fs::write(&path, crate::trace_export::chrome_trace_json(&session));
                let mut folded = path.into_os_string();
                folded.push(".folded");
                let _ = std::fs::write(
                    PathBuf::from(folded),
                    crate::trace_export::folded_stacks(&session),
                );
            }
        }
    }
}

/// Runs `f` on the calling thread's ring, registering a lane first if
/// needed. Registration is the only allocating step (one fixed-capacity
/// `Vec` plus the registry push); every later call locks only the
/// thread's own ring.
#[cfg(feature = "obs")]
fn with_ring(f: impl FnOnce(&mut Ring)) {
    TL_RING.with(|tl| {
        let mut slot = tl.borrow_mut();
        if slot.is_none() {
            let mut registry = lanes().lock().unwrap_or_else(|e| e.into_inner());
            let lane = registry.len() as u32;
            let label = std::thread::current()
                .name()
                .map_or_else(|| format!("thread-{lane}"), |name| name.to_string());
            let ring = Arc::new(Mutex::new(Ring {
                lane,
                label,
                events: Vec::with_capacity(CAPACITY.load(Ordering::Relaxed)),
                head: 0,
                len: 0,
                dropped: 0,
            }));
            registry.push(Arc::clone(&ring));
            *slot = Some(ring);
        }
        if let Some(ring) = slot.as_ref() {
            f(&mut ring.lock().unwrap_or_else(|e| e.into_inner()));
        }
    });
}

#[cfg(feature = "obs")]
fn record(ev: TraceEvent) {
    with_ring(|ring| ring.push(ev));
}

/// Stamps the thread's [`crate::ctx`] request id into the first free
/// argument slot, so request-scoped spans and instants are attributable
/// in the exported timeline. A no-op when no scope is open or every
/// slot is taken (caller-provided arguments win).
#[cfg(feature = "obs")]
fn attach_request_id(ev: &mut TraceEvent) {
    if let Some(id) = crate::ctx::current() {
        if let Some(slot) = ev.args.iter_mut().find(|slot| slot.is_none()) {
            *slot = Some(("request_id", id as f64));
        }
    }
}

/// Clears every lane's events and dropped counts (test support; lanes
/// stay registered).
pub fn clear() {
    #[cfg(feature = "obs")]
    {
        let registry = lanes().lock().unwrap_or_else(|e| e.into_inner()).clone();
        for lane in &registry {
            let mut ring = lane.lock().unwrap_or_else(|e| e.into_inner());
            ring.take_events();
            ring.dropped = 0;
        }
    }
}

#[cfg(all(test, feature = "obs"))]
mod tests {
    use super::*;

    #[test]
    fn disarmed_recorder_records_nothing() {
        let _l = crate::global_test_lock();
        disarm();
        clear();
        instant("trace.test.noop", &[("x", 1.0)]);
        counter_event("trace.test.noop", 1);
        span_begin("trace.test.noop", 1, 0);
        span_end("trace.test.noop", 1);
        let session = TraceSession::drain();
        assert!(
            session.threads.iter().all(|t| t.events.iter().all(|e| !e.name.contains("noop"))),
            "{session:?}"
        );
    }

    #[test]
    fn armed_recorder_keeps_event_order_and_args() {
        let _l = crate::global_test_lock();
        arm();
        clear();
        instant("trace.test.a", &[("qubits", 128.0)]);
        instant("trace.test.b", &[]);
        // A fourth argument is ignored, not an error.
        instant("trace.test.c", &[("a", 1.0), ("b", 2.0), ("c", 3.0), ("d", 4.0)]);
        let session = TraceSession::drain();
        disarm();
        let mine: Vec<&TraceEvent> = session
            .threads
            .iter()
            .flat_map(|t| &t.events)
            .filter(|e| e.name.starts_with("trace.test."))
            .collect();
        assert_eq!(mine.len(), 3, "{session:?}");
        assert_eq!(mine[0].name, "trace.test.a");
        assert_eq!(mine[0].args[0], Some(("qubits", 128.0)));
        assert_eq!(mine[2].args[2], Some(("c", 3.0)));
        assert!(mine.windows(2).all(|w| w[0].t_ns <= w[1].t_ns), "timestamps monotonic");
        // The drain cleared the rings.
        assert!(TraceSession::drain()
            .threads
            .iter()
            .flat_map(|t| &t.events)
            .all(|e| !e.name.starts_with("trace.test.")));
    }

    #[test]
    fn full_ring_drops_oldest_and_counts() {
        let _l = crate::global_test_lock();
        // Capacity applies to lanes registered after the call; this
        // thread may already own a default-capacity ring, so exercise
        // the drop-oldest logic directly.
        let mut ring = Ring {
            lane: 7,
            label: "test".into(),
            events: Vec::with_capacity(4),
            head: 0,
            len: 0,
            dropped: 0,
        };
        for i in 0..10u64 {
            let mut ev = TraceEvent::new(TraceEventKind::Instant, "trace.test.ring");
            ev.t_ns = i;
            ring.push(ev);
        }
        assert_eq!(ring.dropped, 6);
        let events = ring.take_events();
        let ts: Vec<u64> = events.iter().map(|e| e.t_ns).collect();
        assert_eq!(ts, vec![6, 7, 8, 9], "oldest events dropped, order kept");
        assert_eq!(ring.len, 0);
    }

    #[test]
    fn span_ids_are_unique_and_nonzero() {
        let a = new_span_id();
        let b = new_span_id();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn thread_labels_show_in_the_session() {
        let _l = crate::global_test_lock();
        arm();
        clear();
        std::thread::scope(|scope| {
            scope.spawn(|| {
                set_thread_label("qisim-par worker-0");
                instant("trace.test.labeled", &[]);
            });
        });
        let session = TraceSession::drain();
        disarm();
        let lane = session
            .threads
            .iter()
            .find(|t| t.events.iter().any(|e| e.name == "trace.test.labeled"))
            .expect("worker lane present");
        assert_eq!(lane.label, "qisim-par worker-0");
    }

    #[test]
    fn finish_without_env_path_writes_nothing() {
        let _l = crate::global_test_lock();
        arm();
        clear();
        instant("trace.test.finish", &[]);
        let session = TraceSession::drain();
        disarm();
        // QISIM_TRACE is not set for the unit-test process.
        assert_eq!(session.finish().unwrap(), None);
    }
}
