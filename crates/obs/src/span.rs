//! Scoped span timers: RAII guards that time a region, nest correctly,
//! and attribute self- vs. child-time through a thread-local span stack.
//!
//! With the `obs` feature compiled out the guard is a zero-sized inert
//! type and [`SpanGuard::enter`] is a no-op.
//!
//! # Enable/disable semantics
//!
//! A span records into the aggregate registry only when recording is
//! enabled at **both** enter and drop: [`SpanGuard::enter`] returns an
//! inert guard while disabled, and the drop handler re-checks
//! [`crate::enabled`] so a span that straddles a `set_enabled(false)`
//! call is discarded instead of half-recorded. The thread-local span
//! stack stays consistent either way — the frame pushed at enter is
//! always popped at drop, so surrounding spans keep attributing their
//! child time correctly.
//!
//! # Flight recorder
//!
//! When the [`crate::trace`] recorder is armed, every guard additionally
//! emits begin/end events (with process-unique span and parent ids) into
//! the calling thread's ring buffer, giving the Chrome-trace export its
//! per-thread timeline lanes.

#[cfg(feature = "obs")]
use std::cell::RefCell;
#[cfg(feature = "obs")]
use std::time::Instant;

#[cfg(feature = "obs")]
#[derive(Debug, Clone, Copy)]
struct Frame {
    /// Total ns spent in spans nested directly or transitively inside
    /// this frame.
    child_ns: u64,
    /// Flight-recorder span id (0 when the recorder was disarmed at
    /// enter; parents are resolved through this field).
    span_id: u64,
}

#[cfg(feature = "obs")]
thread_local! {
    /// The spans currently open on this thread, innermost last.
    static SPAN_STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

/// An RAII guard timing a region; created by [`crate::span!`] or
/// [`SpanGuard::enter`]. On drop it records `(total, self)` time into the
/// global registry, where self-time excludes nested spans.
#[derive(Debug)]
pub struct SpanGuard {
    #[cfg(feature = "obs")]
    active: Option<ActiveSpan>,
}

#[cfg(feature = "obs")]
#[derive(Debug)]
struct ActiveSpan {
    name: &'static str,
    start: Instant,
    span_id: u64,
    /// Interned fast-path slot (literal-name `span!` sites); `None`
    /// falls back to the registry's mutex + map walk.
    slot: Option<&'static crate::SpanSlot>,
}

impl SpanGuard {
    /// Opens a span. Returns an inert guard when observability is
    /// compiled out or disabled at runtime.
    #[inline]
    pub fn enter(name: &'static str) -> SpanGuard {
        Self::enter_inner(name, None)
    }

    /// Opens a span that records into an interned fast-path slot on
    /// drop instead of the registry's mutex + map walk. Literal-name
    /// [`crate::span!`] sites route here through a per-call-site
    /// `static` [`crate::SpanSlot`].
    #[inline]
    pub fn enter_cached(slot: &'static crate::SpanSlot) -> SpanGuard {
        Self::enter_inner(slot.name(), Some(slot))
    }

    #[inline]
    fn enter_inner(name: &'static str, slot: Option<&'static crate::SpanSlot>) -> SpanGuard {
        #[cfg(feature = "obs")]
        {
            if !crate::enabled() {
                return SpanGuard { active: None };
            }
            // The periodic exporter arms itself off the first span any
            // instrumented workload opens: one relaxed load once
            // QISIM_METRICS has been found unset.
            let _ = crate::telemetry::armed();
            let span_id = if crate::trace::armed() {
                let id = crate::trace::new_span_id();
                let parent =
                    SPAN_STACK.with(|s| s.borrow().last().map_or(0, |frame| frame.span_id));
                crate::trace::span_begin(name, id, parent);
                id
            } else {
                0
            };
            SPAN_STACK.with(|s| s.borrow_mut().push(Frame { child_ns: 0, span_id }));
            SpanGuard { active: Some(ActiveSpan { name, start: Instant::now(), span_id, slot }) }
        }
        #[cfg(not(feature = "obs"))]
        {
            let _ = (name, slot);
            SpanGuard {}
        }
    }
}

#[cfg(feature = "obs")]
impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(span) = self.active.take() else { return };
        let total_ns = span.start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        // Always pop the frame pushed at enter — the stack must stay
        // consistent even when recording was disabled mid-span.
        let child_ns = SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let child = stack.pop().map_or(0, |frame| frame.child_ns);
            // Credit our full duration to the enclosing span's child time.
            if let Some(parent) = stack.last_mut() {
                parent.child_ns += total_ns;
            }
            child
        });
        if span.span_id != 0 {
            // Balanced with the begin emitted at enter (the exporter
            // closes the pair even if the recorder disarmed meanwhile).
            crate::trace::span_end(span.name, span.span_id);
        }
        // Re-checked at drop: a span that was open when recording was
        // disabled is discarded, not half-recorded.
        if crate::enabled() {
            let self_ns = total_ns.saturating_sub(child_ns);
            match span.slot {
                Some(slot) => slot.record(total_ns, self_ns),
                None => crate::registry().record_span(span.name, total_ns, self_ns),
            }
        }
    }
}

#[cfg(all(test, feature = "obs"))]
mod tests {
    use super::*;
    use std::time::Duration;

    fn spin(d: Duration) {
        let t = Instant::now();
        while t.elapsed() < d {
            std::hint::spin_loop();
        }
    }

    #[test]
    fn nested_spans_split_self_and_child_time() {
        let _l = crate::global_test_lock();
        crate::reset();
        crate::set_enabled(true);
        {
            let _outer = SpanGuard::enter("test.outer");
            spin(Duration::from_millis(4));
            {
                let _inner = SpanGuard::enter("test.inner");
                spin(Duration::from_millis(6));
            }
            spin(Duration::from_millis(1));
        }
        let snap = crate::snapshot();
        let outer = snap.span("test.outer").expect("outer recorded").clone();
        let inner = snap.span("test.inner").expect("inner recorded").clone();
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 1);
        // Outer wraps inner entirely.
        assert!(outer.total_ns >= inner.total_ns, "outer {outer:?} inner {inner:?}");
        // Outer self-time excludes the inner 6 ms (1 ms slack for timer
        // granularity).
        assert!(
            outer.self_ns <= outer.total_ns - inner.total_ns + 1_000_000,
            "self {} total {} inner {}",
            outer.self_ns,
            outer.total_ns,
            inner.total_ns
        );
        // Inner has no children: self == total.
        assert_eq!(inner.self_ns, inner.total_ns);
        crate::reset();
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _l = crate::global_test_lock();
        crate::reset();
        crate::set_enabled(false);
        {
            let _g = SpanGuard::enter("test.disabled");
        }
        crate::set_enabled(true);
        assert!(crate::snapshot().span("test.disabled").is_none());
        crate::reset();
    }

    #[test]
    fn span_disabled_before_drop_is_discarded() {
        let _l = crate::global_test_lock();
        crate::reset();
        crate::set_enabled(true);
        {
            let _g = SpanGuard::enter("test.straddle.off");
            crate::set_enabled(false);
        }
        crate::set_enabled(true);
        assert!(
            crate::snapshot().span("test.straddle.off").is_none(),
            "a span open across set_enabled(false) must not record"
        );
        crate::reset();
    }

    #[test]
    fn span_enabled_before_drop_stays_inert_and_stack_stays_consistent() {
        let _l = crate::global_test_lock();
        crate::reset();
        crate::set_enabled(false);
        {
            let _g = SpanGuard::enter("test.straddle.on");
            crate::set_enabled(true);
            // A nested span opened after re-enabling records normally
            // and must not credit child time to a phantom parent frame.
            {
                let _inner = SpanGuard::enter("test.straddle.inner");
                spin(Duration::from_millis(1));
            }
        }
        let snap = crate::snapshot();
        assert!(
            snap.span("test.straddle.on").is_none(),
            "a span entered while disabled stays unrecorded"
        );
        let inner = snap.span("test.straddle.inner").expect("inner recorded");
        assert_eq!(inner.self_ns, inner.total_ns, "inner has no children");
        // The stack is balanced: a fresh span still attributes cleanly.
        {
            let _g = SpanGuard::enter("test.straddle.after");
        }
        assert!(crate::snapshot().span("test.straddle.after").is_some());
        crate::reset();
    }

    #[test]
    fn sibling_spans_both_credit_the_parent() {
        let _l = crate::global_test_lock();
        crate::reset();
        crate::set_enabled(true);
        {
            let _p = SpanGuard::enter("test.parent");
            for _ in 0..2 {
                let _c = SpanGuard::enter("test.child");
                spin(Duration::from_millis(2));
            }
        }
        let snap = crate::snapshot();
        let p = snap.span("test.parent").unwrap().clone();
        let c = snap.span("test.child").unwrap().clone();
        assert_eq!(c.count, 2);
        assert!(p.total_ns >= c.total_ns);
        assert!(p.self_ns <= p.total_ns.saturating_sub(c.total_ns) + 1_000_000);
        crate::reset();
    }

    #[test]
    fn armed_spans_emit_balanced_begin_end_pairs_with_parent_ids() {
        let _l = crate::global_test_lock();
        crate::reset();
        crate::set_enabled(true);
        crate::trace::arm();
        crate::trace::clear();
        {
            let _outer = SpanGuard::enter("test.trace.outer");
            let _inner = SpanGuard::enter("test.trace.inner");
        }
        let session = crate::trace::TraceSession::drain();
        crate::trace::disarm();
        let events: Vec<_> = session
            .threads
            .iter()
            .flat_map(|t| &t.events)
            .filter(|e| e.name.starts_with("test.trace."))
            .collect();
        assert_eq!(events.len(), 4, "{events:?}");
        use crate::trace::TraceEventKind::{Begin, End};
        assert_eq!(events[0].kind, Begin);
        assert_eq!(events[0].name, "test.trace.outer");
        assert_eq!(events[1].kind, Begin);
        assert_eq!(events[1].name, "test.trace.inner");
        assert_eq!(events[1].parent_id, events[0].span_id, "inner parents to outer");
        assert_eq!(events[2].kind, End);
        assert_eq!(events[2].span_id, events[1].span_id, "LIFO close order");
        assert_eq!(events[3].kind, End);
        assert_eq!(events[3].span_id, events[0].span_id);
        crate::reset();
    }
}
