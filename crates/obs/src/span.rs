//! Scoped span timers: RAII guards that time a region, nest correctly,
//! and attribute self- vs. child-time through a thread-local span stack.
//!
//! With the `obs` feature compiled out the guard is a zero-sized inert
//! type and [`SpanGuard::enter`] is a no-op.

#[cfg(feature = "obs")]
use std::cell::RefCell;
#[cfg(feature = "obs")]
use std::time::Instant;

#[cfg(feature = "obs")]
thread_local! {
    /// Child-time accumulators for the spans currently open on this
    /// thread, innermost last. Each entry is the total ns spent in spans
    /// nested directly or transitively inside that frame.
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// An RAII guard timing a region; created by [`crate::span!`] or
/// [`SpanGuard::enter`]. On drop it records `(total, self)` time into the
/// global registry, where self-time excludes nested spans.
#[derive(Debug)]
pub struct SpanGuard {
    #[cfg(feature = "obs")]
    active: Option<ActiveSpan>,
}

#[cfg(feature = "obs")]
#[derive(Debug)]
struct ActiveSpan {
    name: &'static str,
    start: Instant,
}

impl SpanGuard {
    /// Opens a span. Returns an inert guard when observability is
    /// compiled out or disabled at runtime.
    #[inline]
    pub fn enter(name: &'static str) -> SpanGuard {
        #[cfg(feature = "obs")]
        {
            if !crate::enabled() {
                return SpanGuard { active: None };
            }
            SPAN_STACK.with(|s| s.borrow_mut().push(0));
            SpanGuard { active: Some(ActiveSpan { name, start: Instant::now() }) }
        }
        #[cfg(not(feature = "obs"))]
        {
            let _ = name;
            SpanGuard {}
        }
    }
}

#[cfg(feature = "obs")]
impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(span) = self.active.take() else { return };
        let total_ns = span.start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        let child_ns = SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let child = stack.pop().unwrap_or(0);
            // Credit our full duration to the enclosing span's child time.
            if let Some(parent) = stack.last_mut() {
                *parent += total_ns;
            }
            child
        });
        crate::registry().record_span(span.name, total_ns, total_ns.saturating_sub(child_ns));
    }
}

#[cfg(all(test, feature = "obs"))]
mod tests {
    use super::*;
    use std::time::Duration;

    fn spin(d: Duration) {
        let t = Instant::now();
        while t.elapsed() < d {
            std::hint::spin_loop();
        }
    }

    #[test]
    fn nested_spans_split_self_and_child_time() {
        let _l = crate::global_test_lock();
        crate::reset();
        crate::set_enabled(true);
        {
            let _outer = SpanGuard::enter("test.outer");
            spin(Duration::from_millis(4));
            {
                let _inner = SpanGuard::enter("test.inner");
                spin(Duration::from_millis(6));
            }
            spin(Duration::from_millis(1));
        }
        let snap = crate::snapshot();
        let outer = snap.span("test.outer").expect("outer recorded").clone();
        let inner = snap.span("test.inner").expect("inner recorded").clone();
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 1);
        // Outer wraps inner entirely.
        assert!(outer.total_ns >= inner.total_ns, "outer {outer:?} inner {inner:?}");
        // Outer self-time excludes the inner 6 ms (1 ms slack for timer
        // granularity).
        assert!(
            outer.self_ns <= outer.total_ns - inner.total_ns + 1_000_000,
            "self {} total {} inner {}",
            outer.self_ns,
            outer.total_ns,
            inner.total_ns
        );
        // Inner has no children: self == total.
        assert_eq!(inner.self_ns, inner.total_ns);
        crate::reset();
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _l = crate::global_test_lock();
        crate::reset();
        crate::set_enabled(false);
        {
            let _g = SpanGuard::enter("test.disabled");
        }
        crate::set_enabled(true);
        assert!(crate::snapshot().span("test.disabled").is_none());
        crate::reset();
    }

    #[test]
    fn sibling_spans_both_credit_the_parent() {
        let _l = crate::global_test_lock();
        crate::reset();
        crate::set_enabled(true);
        {
            let _p = SpanGuard::enter("test.parent");
            for _ in 0..2 {
                let _c = SpanGuard::enter("test.child");
                spin(Duration::from_millis(2));
            }
        }
        let snap = crate::snapshot();
        let p = snap.span("test.parent").unwrap().clone();
        let c = snap.span("test.child").unwrap().clone();
        assert_eq!(c.count, 2);
        assert!(p.total_ns >= c.total_ns);
        assert!(p.self_ns <= p.total_ns.saturating_sub(c.total_ns) + 1_000_000);
        crate::reset();
    }
}
