//! Shared helpers for the QIsim bench harnesses: each bench regenerates
//! one paper table/figure, prints its paper-vs-measured rows, and exits
//! non-zero if the shape constraint it asserts is violated.

use qisim::experiments::Experiment;

/// Prints an experiment with a standard header and wall-clock timing.
pub fn run(make: impl FnOnce() -> Experiment) {
    let t0 = std::time::Instant::now();
    let e = make();
    println!("{e}");
    println!("regenerated in {:.2?}\n", t0.elapsed());
}
