//! Regenerates the paper experiment `longterm::fig19`.
//! Run with `cargo bench --bench fig19_multiround_readout`.

fn main() {
    qisim_bench::run(qisim::experiments::longterm::fig19);
}
