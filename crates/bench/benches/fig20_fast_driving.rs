//! Regenerates the paper experiment `longterm::fig20`.
//! Run with `cargo bench --bench fig20_fast_driving`.

fn main() {
    qisim_bench::run(qisim::experiments::longterm::fig20);
}
