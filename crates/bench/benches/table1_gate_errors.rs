//! Regenerates the paper experiment `validation::table1`.
//! Run with `cargo bench --bench table1_gate_errors`.

fn main() {
    qisim_bench::run(qisim::experiments::validation::table1);
}
