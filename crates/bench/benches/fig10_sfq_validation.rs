//! Regenerates the paper experiment `validation::fig10`.
//! Run with `cargo bench --bench fig10_sfq_validation`.

fn main() {
    qisim_bench::run(qisim::experiments::validation::fig10);
}
