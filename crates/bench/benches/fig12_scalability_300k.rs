//! Regenerates the paper experiment `nearterm::fig12`.
//! Run with `cargo bench --bench fig12_scalability_300k`.

fn main() {
    qisim_bench::run(qisim::experiments::nearterm::fig12);
}
