//! Regenerates the paper experiment `validation::fig11`.
//! Run with `cargo bench --bench fig11_workload_fidelity`.

fn main() {
    qisim_bench::run(qisim::experiments::validation::fig11);
}
