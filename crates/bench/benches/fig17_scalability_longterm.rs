//! Regenerates the paper experiment `longterm::fig17`.
//! Run with `cargo bench --bench fig17_scalability_longterm`.

fn main() {
    qisim_bench::run(qisim::experiments::longterm::fig17);
}
