//! Regenerates the paper experiment `nearterm::fig16`.
//! Run with `cargo bench --bench fig16_sfq_drive_opts`.

fn main() {
    qisim_bench::run(qisim::experiments::nearterm::fig16);
}
