//! Regenerates the paper experiment `longterm::fig18`.
//! Run with `cargo bench --bench fig18_instruction_masking`.

fn main() {
    qisim_bench::run(qisim::experiments::longterm::fig18);
}
