//! Regenerates Table 2 (setup self-check) and re-prints Table 3 (the
//! technology-maturity survey).
//! Run with `cargo bench --bench table2_setup`.

fn main() {
    qisim_bench::run(qisim::experiments::setup::table2);

    println!("=== Table 3 — current status and maturity of QCI technologies ===");
    println!("{:<14} {:>10} {:>8} {:>7} {:>11} {:>12} {:>9}",
        "gate type", "300K CMOS", "4K CMOS", "4K SFQ", "300K cable", "4K ustrip", "photonic");
    for (gate, grades) in qisim::experiments::setup::table3() {
        println!("{:<14} {:>10} {:>8} {:>7} {:>11} {:>12} {:>9}",
            gate, grades[0], grades[1], grades[2], grades[3], grades[4], grades[5]);
    }
    println!("A: no full approach / B: theoretical / C: circuit-level / D: qubit demo / E: >50-qubit system");
}
