//! Ablation studies and §7.1 what-ifs (design choices DESIGN.md calls
//! out). Run with `cargo bench --bench ablations`.

fn main() {
    qisim_bench::run(qisim::experiments::ablations::wire_ablation);
    qisim_bench::run(qisim::experiments::ablations::sharing_ablation);
    qisim_bench::run(qisim::experiments::ablations::fdm_ablation);
    qisim_bench::run(qisim::experiments::ablations::calibration_sensitivity);
    qisim_bench::run(qisim::experiments::ablations::whatif);
}
