//! Regenerates the paper experiment `nearterm::fig13`.
//! Run with `cargo bench --bench fig13_scalability_4k`.

fn main() {
    qisim_bench::run(qisim::experiments::nearterm::fig13);
}
