//! Regenerates the paper experiment `nearterm::fig15`.
//! Run with `cargo bench --bench fig15_jpm_sharing`.

fn main() {
    qisim_bench::run(qisim::experiments::nearterm::fig15);
}
