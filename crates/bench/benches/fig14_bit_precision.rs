//! Regenerates the paper experiment `nearterm::fig14`.
//! Run with `cargo bench --bench fig14_bit_precision`.

fn main() {
    qisim_bench::run(qisim::experiments::nearterm::fig14);
}
