//! Criterion micro-benchmarks of the simulator hot loops: the
//! cycle-accurate scheduler on a d=23 ESM round, the scalability binary
//! search, the union-find decoder, and the statevector engine.

use criterion::{criterion_group, criterion_main, Criterion};
use qisim::cyclesim::{simulate, workloads::Patch, TimingModel};
use qisim::hal::fridge::Fridge;
use qisim::power::max_qubits;
use qisim::quantum::{CMatrix, Statevector};
use qisim::surface::decoder::{decode, DecodingGraph};
use qisim::surface::Lattice;
use qisim::QciDesign;

fn bench_cyclesim(c: &mut Criterion) {
    let patch = Patch::new(23);
    let circuit = patch.esm_circuit(1);
    let model = TimingModel::cmos_baseline();
    c.bench_function("cyclesim/esm_d23_round", |b| {
        b.iter(|| simulate(std::hint::black_box(&circuit), &model))
    });
}

fn bench_scalability(c: &mut Criterion) {
    let arch = QciDesign::cmos_baseline().arch();
    let fridge = Fridge::standard();
    c.bench_function("power/max_qubits_binary_search", |b| {
        b.iter(|| max_qubits(std::hint::black_box(&arch), &fridge))
    });
}

fn bench_decoder(c: &mut Criterion) {
    let lattice = Lattice::new(15);
    let graph = DecodingGraph::new(&lattice, false);
    let mut errs = vec![false; lattice.data_qubits()];
    for q in (0..lattice.data_qubits()).step_by(17) {
        errs[q] = true;
    }
    let syndrome = lattice.z_syndrome(&errs);
    c.bench_function("surface/union_find_d15", |b| {
        b.iter(|| decode(std::hint::black_box(&graph), &syndrome))
    });
}

fn bench_statevector(c: &mut Criterion) {
    let h = CMatrix::hadamard();
    let cz = CMatrix::cz();
    c.bench_function("quantum/statevector_16q_layer", |b| {
        b.iter(|| {
            let mut s = Statevector::zero_state(16);
            for q in 0..16 {
                s.apply_1q(&h, q);
            }
            for q in 0..15 {
                s.apply_2q(&cz, q, q + 1);
            }
            s
        })
    });
}

criterion_group!(benches, bench_cyclesim, bench_scalability, bench_decoder, bench_statevector);
criterion_main!(benches);
