//! Regenerates the paper experiment `validation::fig08`.
//! Run with `cargo bench --bench fig08_cmos_validation`.

fn main() {
    qisim_bench::run(qisim::experiments::validation::fig08);
}
