//! Property-based tests of the surface-code substrate.
//!
//! Requires the `proptest` crate, which the offline reference build
//! cannot fetch; enable with `cargo test --features proptest` on a
//! machine with registry access (and add the dev-dependency back).

#![cfg(feature = "proptest")]

use proptest::prelude::*;
use qisim_surface::analytic::{cmos_budget, sfq_budget, CALIBRATION};
use qisim_surface::decoder::{
    decode, decode_into, decode_reference, DecoderScratch, DecodingGraph,
};
use qisim_surface::montecarlo::{run_trials_packed, run_trials_reference, McScratch};
use qisim_surface::{Lattice, PackedLattice};

fn errors_strategy(d: usize) -> impl Strategy<Value = Vec<bool>> {
    proptest::collection::vec(proptest::bool::weighted(0.08), d * d)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The union-find decoder always returns the state to the codespace:
    /// after applying its correction the syndrome is empty, for any error
    /// pattern.
    #[test]
    fn decoder_always_clears_the_syndrome(d in 3usize..9, seed_errors in errors_strategy(8)) {
        let lattice = Lattice::new(d);
        let n = lattice.data_qubits();
        let mut errs = vec![false; n];
        for (i, e) in seed_errors.iter().enumerate() {
            errs[i % n] ^= e;
        }
        let graph = DecodingGraph::new(&lattice, false);
        let syndrome = lattice.z_syndrome(&errs);
        for q in decode(&graph, &syndrome) {
            errs[q] ^= true;
        }
        let residual = lattice.z_syndrome(&errs);
        prop_assert!(residual.iter().all(|b| !b), "residual syndrome at d={d}");
    }

    /// The allocation-free frontier engine returns exactly the oracle's
    /// correction for any syndrome, and both clear every syndrome they
    /// are handed.
    #[test]
    fn arena_decoder_matches_oracle_and_clears_syndromes(
        d in 3usize..10,
        seed_errors in errors_strategy(9),
    ) {
        let lattice = Lattice::new(d);
        let n = lattice.data_qubits();
        let mut errs = vec![false; n];
        for (i, e) in seed_errors.iter().enumerate() {
            errs[i % n] ^= e;
        }
        let graph = DecodingGraph::new(&lattice, false);
        let syndrome = lattice.z_syndrome(&errs);
        let oracle = decode_reference(&graph, &syndrome);
        let mut scratch = DecoderScratch::new(&graph);
        let fast = decode_into(&graph, &PackedLattice::pack(&syndrome), &mut scratch).to_vec();
        prop_assert_eq!(&fast, &oracle, "corrections diverge at d={}", d);
        for q in fast {
            errs[q] ^= true;
        }
        prop_assert!(lattice.z_syndrome(&errs).iter().all(|b| !b), "residual syndrome at d={d}");
    }

    /// The bit-packed Monte-Carlo kernel and the bool-vec reference see
    /// the same RNG stream and must count the same failures, bit for bit.
    #[test]
    fn packed_kernel_failure_counts_match_reference(
        d_idx in 0usize..3,
        p_idx in 0usize..3,
        seed in any::<u64>(),
    ) {
        use qisim_quantum::rng::Xorshift64Star;
        let d = [3usize, 5, 7][d_idx];
        let p = [0.001f64, 0.01, 0.1][p_idx];
        let lattice = Lattice::new(d);
        let graph = DecodingGraph::new(&lattice, false);
        let packed = PackedLattice::new(&lattice);
        let mut scratch = McScratch::new(&packed, &graph);
        let mut rng_a = Xorshift64Star::seed_from_u64(seed);
        let mut rng_b = Xorshift64Star::seed_from_u64(seed);
        let fast = run_trials_packed(&packed, &graph, p, 200, &mut rng_a, &mut scratch);
        let oracle = run_trials_reference(&lattice, &graph, p, 200, &mut rng_b);
        prop_assert_eq!(fast, oracle, "failure counts diverge at d={} p={}", d, p);
    }

    /// The trial-transpose adapters are exact inverses: scattering 64
    /// arbitrary packed error patterns into a sliced block and gathering
    /// each lane back reproduces every pattern bit for bit, and the
    /// sliced word-wide syndrome/logical verdicts match the per-trial
    /// packed ones on every lane.
    #[test]
    fn scatter_gather_roundtrips_64_packed_lattices(
        d_idx in 0usize..3,
        patterns in proptest::collection::vec(
            proptest::collection::vec(any::<u64>(), 1),
            64,
        ),
    ) {
        let d = [3usize, 5, 9][d_idx];
        let lattice = Lattice::new(d);
        let packed = PackedLattice::new(&lattice);
        // Expand each arbitrary u64 seed into an arbitrary packed trial.
        let trials: Vec<Vec<u64>> = patterns
            .iter()
            .map(|seed| {
                let mut state = seed[0] | 1;
                let mut errs = vec![0u64; packed.qubit_words()];
                for q in 0..packed.data_qubits() {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    if state >> 63 != 0 {
                        PackedLattice::set_bit(&mut errs, q);
                    }
                }
                errs
            })
            .collect();
        let mut sliced = vec![0u64; packed.sliced_words()];
        for (lane, errs) in trials.iter().enumerate() {
            packed.scatter_lane(errs, lane, &mut sliced);
        }
        let mut sliced_syn = vec![0u64; packed.sliced_syndrome_words()];
        let any_mask = packed.z_syndrome_sliced(&sliced, &mut sliced_syn);
        let logical_mask = packed.logical_x_lanes(&sliced);
        let mut back = vec![0u64; packed.qubit_words()];
        let mut syn = vec![0u64; packed.syndrome_words()];
        for (lane, errs) in trials.iter().enumerate() {
            packed.gather_lane(&sliced, lane, &mut back);
            prop_assert_eq!(&back, errs, "round-trip diverged at d={} lane={}", d, lane);
            let any = packed.z_syndrome_into(errs, &mut syn);
            prop_assert_eq!(any_mask >> lane & 1 != 0, any);
            prop_assert_eq!(logical_mask >> lane & 1 != 0, packed.is_logical_x(errs));
        }
    }

    /// Syndromes are linear: syndrome(a ⊕ b) = syndrome(a) ⊕ syndrome(b).
    #[test]
    fn syndromes_are_linear(a in errors_strategy(5), b in errors_strategy(5)) {
        let lattice = Lattice::new(5);
        let xor: Vec<bool> = a.iter().zip(&b).map(|(x, y)| x ^ y).collect();
        let sa = lattice.z_syndrome(&a);
        let sb = lattice.z_syndrome(&b);
        let sx = lattice.z_syndrome(&xor);
        for i in 0..sa.len() {
            prop_assert_eq!(sx[i], sa[i] ^ sb[i]);
        }
    }

    /// Stabilizers commute with the logical operators at every distance.
    #[test]
    fn stabilizer_logical_commutation(d in 2usize..12) {
        let l = Lattice::new(d);
        let lz = l.logical_z();
        for chk in &l.x_checks {
            let overlap = chk.support.iter().filter(|q| lz.contains(q)).count();
            prop_assert_eq!(overlap % 2, 0);
        }
        let lx = l.logical_x();
        for chk in &l.z_checks {
            let overlap = chk.support.iter().filter(|q| lx.contains(q)).count();
            prop_assert_eq!(overlap % 2, 0);
        }
    }

    /// Check counts follow `d² − 1` with balanced X/Z families.
    #[test]
    fn check_count_formula(d in 2usize..16) {
        let l = Lattice::new(d);
        prop_assert_eq!(l.x_checks.len() + l.z_checks.len(), d * d - 1);
        let diff = l.x_checks.len() as i64 - l.z_checks.len() as i64;
        prop_assert!(diff.abs() <= 1);
    }

    /// The analytic logical error is monotone in every physical error
    /// contribution and in the cycle time.
    #[test]
    fn logical_error_is_monotone(
        base_cycle in 500.0f64..3000.0,
        extra in 1.0f64..3000.0,
        d in 2u32..12,
    ) {
        let d = 2 * d + 1; // odd distances
        let slow = cmos_budget(base_cycle + extra).logical_error(d, &CALIBRATION);
        let fast = cmos_budget(base_cycle).logical_error(d, &CALIBRATION);
        prop_assert!(slow >= fast, "slower cycle must not reduce p_L");
        // SFQ (worse readout) never beats CMOS at the same cycle.
        let sfq = sfq_budget(base_cycle).logical_error(d, &CALIBRATION);
        prop_assert!(sfq >= fast);
    }

    /// Larger distances help (below threshold) and p_L is a probability.
    #[test]
    fn distance_scaling(cycle in 500.0f64..2000.0) {
        let mut last = 1.0f64;
        for d in [3u32, 7, 11, 15, 23] {
            let p = cmos_budget(cycle).logical_error(d, &CALIBRATION);
            prop_assert!((0.0..=1.0).contains(&p));
            prop_assert!(p <= last + 1e-30, "d={d}: {p} vs previous {last}");
            last = p;
        }
    }
}
