//! Always-on equivalence suite for the bit-packed Monte-Carlo engine
//! (the feature-gated `proptests.rs` twin needs a registry for the
//! `proptest` crate; this file runs in the offline tier-1 gate).
//!
//! Pins the ISSUE-3 acceptance grid: for every `(d, p)` in
//! `{3, 5, 7} × {0.001, 0.01, 0.1}` and a battery of seeds, the packed
//! kernel and the legacy bool-vec reference must count **identical**
//! failures from the same RNG stream, and the arena decoder must clear
//! every syndrome it is handed while matching the oracle's correction.

use qisim_quantum::rng::{Rng, Xorshift64Star};
use qisim_surface::decoder::{decode_into, decode_reference, DecoderScratch, DecodingGraph};
use qisim_surface::montecarlo::{run_trials_packed, run_trials_reference, McScratch};
use qisim_surface::{Lattice, PackedLattice};

#[test]
fn packed_and_reference_kernels_agree_across_the_acceptance_grid() {
    for d in [3usize, 5, 7] {
        let lattice = Lattice::new(d);
        let graph = DecodingGraph::new(&lattice, false);
        let packed = PackedLattice::new(&lattice);
        let mut scratch = McScratch::new(&packed, &graph);
        for p in [0.001f64, 0.01, 0.1] {
            for seed in 0u64..8 {
                let seed = seed.wrapping_mul(0x9E37_79B9) ^ p.to_bits() ^ (d as u64) << 48;
                let fast = {
                    let mut rng = Xorshift64Star::seed_from_u64(seed);
                    run_trials_packed(&packed, &graph, p, 250, &mut rng, &mut scratch)
                };
                let oracle = {
                    let mut rng = Xorshift64Star::seed_from_u64(seed);
                    run_trials_reference(&lattice, &graph, p, 250, &mut rng)
                };
                assert_eq!(fast, oracle, "d={d} p={p} seed={seed:#x}");
            }
        }
    }
}

#[test]
fn arena_decoder_clears_every_syndrome_and_matches_the_oracle() {
    // Dense random error patterns (well above threshold) stress multi-
    // cluster growth, merging, and boundary pairing; the arena is reused
    // across every call so stale state would surface as a divergence.
    for d in [3usize, 5, 7, 9] {
        let lattice = Lattice::new(d);
        let graph = DecodingGraph::new(&lattice, false);
        let mut scratch = DecoderScratch::new(&graph);
        let mut rng = Xorshift64Star::seed_from_u64(0xACCE55 ^ d as u64);
        for _ in 0..150 {
            let mut errs = vec![false; lattice.data_qubits()];
            for e in errs.iter_mut() {
                *e = rng.gen_f64() < 0.15;
            }
            let syndrome = lattice.z_syndrome(&errs);
            let oracle = decode_reference(&graph, &syndrome);
            let fast = decode_into(&graph, &PackedLattice::pack(&syndrome), &mut scratch).to_vec();
            assert_eq!(fast, oracle, "d={d}: corrections diverge");
            for q in fast {
                errs[q] ^= true;
            }
            assert!(
                lattice.z_syndrome(&errs).iter().all(|b| !b),
                "d={d}: residual syndrome after correction"
            );
        }
    }
}

#[test]
fn packed_syndrome_words_agree_with_graph_layout() {
    for d in [2usize, 3, 8, 9, 11, 13] {
        let lattice = Lattice::new(d);
        let graph = DecodingGraph::new(&lattice, false);
        let packed = PackedLattice::new(&lattice);
        assert_eq!(graph.syndrome_words(), packed.syndrome_words(), "d={d}");
        assert_eq!(graph.check_count(), packed.z_check_count(), "d={d}");
    }
}
