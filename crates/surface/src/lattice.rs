//! Rotated surface-code lattice geometry (Fig. 1a).
//!
//! Distance-`d` rotated code: `d²` data qubits on a square grid, `d²−1`
//! stabilizers (weight-4 checkerboard in the interior, weight-2 on the
//! boundaries: X-type on top/bottom, Z-type on left/right). The logical
//! `X̄` runs along the top row (crossing the Z-boundaries), the logical
//! `Z̄` down the left column.

/// A stabilizer generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Check {
    /// `true` for X-type (detects Z errors), `false` for Z-type.
    pub is_x: bool,
    /// Data-qubit support (2 or 4 qubits).
    pub support: Vec<usize>,
    /// Plaquette coordinates (row, col) in the cell grid, for decoder
    /// distance computations; boundary half-plaquettes sit at `−1`/`d−1`.
    pub pos: (i32, i32),
}

/// The rotated lattice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lattice {
    /// Code distance.
    pub d: usize,
    /// X-type checks.
    pub x_checks: Vec<Check>,
    /// Z-type checks.
    pub z_checks: Vec<Check>,
}

impl Lattice {
    /// Builds the distance-`d` rotated lattice.
    ///
    /// # Panics
    ///
    /// Panics if `d < 2`.
    pub fn new(d: usize) -> Self {
        assert!(d >= 2, "code distance must be at least 2");
        let di = d as i32;
        let data = |r: i32, c: i32| -> Option<usize> {
            if (0..di).contains(&r) && (0..di).contains(&c) {
                Some((r * di + c) as usize)
            } else {
                None
            }
        };
        let mut x_checks = Vec::new();
        let mut z_checks = Vec::new();
        for r in -1..di {
            for c in -1..di {
                let is_x = (r + c).rem_euclid(2) == 0;
                let corners = [data(r, c), data(r, c + 1), data(r + 1, c), data(r + 1, c + 1)];
                let support: Vec<usize> = corners.iter().flatten().copied().collect();
                let keep = match support.len() {
                    4 => true,
                    2 => {
                        let tb = r == -1 || r == di - 1;
                        let lr = c == -1 || c == di - 1;
                        (tb && is_x && !lr) || (lr && !is_x && !tb)
                    }
                    _ => false,
                };
                if !keep {
                    continue;
                }
                let check = Check { is_x, support, pos: (r, c) };
                if is_x {
                    x_checks.push(check);
                } else {
                    z_checks.push(check);
                }
            }
        }
        Lattice { d, x_checks, z_checks }
    }

    /// Number of data qubits (`d²`).
    pub fn data_qubits(&self) -> usize {
        self.d * self.d
    }

    /// Logical `Z̄` support: the top row. Z-strings terminate
    /// undetectably on the left/right (Z-check) boundaries, so the
    /// logical Z runs horizontally.
    pub fn logical_z(&self) -> Vec<usize> {
        (0..self.d).collect()
    }

    /// Logical `X̄` support: the left column (X-strings terminate on the
    /// top/bottom X-check boundaries).
    pub fn logical_x(&self) -> Vec<usize> {
        (0..self.d).map(|r| r * self.d).collect()
    }

    /// Syndrome of an X-error pattern: which Z-checks flip.
    pub fn z_syndrome(&self, x_errors: &[bool]) -> Vec<bool> {
        assert_eq!(x_errors.len(), self.data_qubits(), "one flag per data qubit");
        self.z_checks
            .iter()
            .map(|chk| chk.support.iter().filter(|&&q| x_errors[q]).count() % 2 == 1)
            .collect()
    }

    /// Syndrome of a Z-error pattern: which X-checks flip.
    pub fn x_syndrome(&self, z_errors: &[bool]) -> Vec<bool> {
        assert_eq!(z_errors.len(), self.data_qubits(), "one flag per data qubit");
        self.x_checks
            .iter()
            .map(|chk| chk.support.iter().filter(|&&q| z_errors[q]).count() % 2 == 1)
            .collect()
    }

    /// Whether an X-error pattern (after correction) implements logical
    /// `X̄`: odd overlap (anticommutation) with the logical-Z̄ row.
    pub fn is_logical_x(&self, x_errors: &[bool]) -> bool {
        self.logical_z().iter().filter(|&&q| x_errors[q]).count() % 2 == 1
    }

    /// Whether a Z-error pattern implements logical `Z̄`: odd overlap
    /// with the logical-X̄ column.
    pub fn is_logical_z(&self, z_errors: &[bool]) -> bool {
        self.logical_x().iter().filter(|&&q| z_errors[q]).count() % 2 == 1
    }

    /// The paper's per-logical-qubit physical-qubit count `2(d+1)²`
    /// (§2.1.3 — includes the interface ancilla rows lattice surgery
    /// needs, which is what the scalability analysis provisions).
    pub fn provisioned_qubits(&self) -> usize {
        2 * (self.d + 1) * (self.d + 1)
    }
}

/// Bit-packed view of a [`Lattice`] for the Monte-Carlo hot loop: data
/// qubits live in `u64` bitset words, and each Z-check carries a
/// precomputed support mask so syndrome extraction is word-wise
/// AND/XOR/popcount instead of per-qubit indexing.
///
/// The packing covers the Z-check family (which detects the X errors the
/// Monte-Carlo estimator samples) plus the logical-`Z̄` membrane used for
/// the failure check; it is built once per lattice and shared read-only
/// across trials and threads.
///
/// # Examples
///
/// ```
/// use qisim_surface::{Lattice, PackedLattice};
///
/// let lattice = Lattice::new(5);
/// let packed = PackedLattice::new(&lattice);
/// let mut errs = vec![0u64; packed.qubit_words()];
/// let mut syn = vec![0u64; packed.syndrome_words()];
/// PackedLattice::set_bit(&mut errs, 12); // interior X error
/// assert!(packed.z_syndrome_into(&errs, &mut syn));
/// assert_eq!(syn.iter().map(|w| w.count_ones()).sum::<u32>(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedLattice {
    /// Data-qubit count (`d²`).
    n_qubits: usize,
    /// `u64` words per qubit bitset.
    qubit_words: usize,
    /// Number of Z-checks (syndrome bits).
    n_z_checks: usize,
    /// `u64` words per syndrome bitset.
    syndrome_words: usize,
    /// Flattened per-check support masks: check `i` owns
    /// `z_support[i·qubit_words .. (i+1)·qubit_words]`.
    z_support: Vec<u64>,
    /// CSR twin of `z_support` for the bit-sliced kernel: check `i`'s
    /// support qubit *indices* are `z_support_idx[z_support_off[i] ..
    /// z_support_off[i+1]]` (2 or 4 entries per check).
    z_support_idx: Vec<usize>,
    /// Per-check offsets into `z_support_idx` (`n_z_checks + 1` entries).
    z_support_off: Vec<usize>,
    /// Logical-`Z̄` support mask (the top row).
    logical_z_mask: Vec<u64>,
    /// Logical-`Z̄` support qubit indices (the top row, ascending).
    logical_z_idx: Vec<usize>,
}

impl PackedLattice {
    /// Packs the Z-check family and logical-`Z̄` membrane of `lattice`.
    pub fn new(lattice: &Lattice) -> Self {
        let n_qubits = lattice.data_qubits();
        let qubit_words = n_qubits.div_ceil(64);
        let n_z_checks = lattice.z_checks.len();
        let syndrome_words = n_z_checks.div_ceil(64).max(1);
        let mut z_support = vec![0u64; n_z_checks * qubit_words];
        let mut z_support_idx = Vec::new();
        let mut z_support_off = Vec::with_capacity(n_z_checks + 1);
        z_support_off.push(0);
        for (i, chk) in lattice.z_checks.iter().enumerate() {
            let mask = &mut z_support[i * qubit_words..(i + 1) * qubit_words];
            for &q in &chk.support {
                Self::set_bit(mask, q);
                z_support_idx.push(q);
            }
            z_support_off.push(z_support_idx.len());
        }
        let mut logical_z_mask = vec![0u64; qubit_words];
        let logical_z_idx = lattice.logical_z();
        for &q in &logical_z_idx {
            Self::set_bit(&mut logical_z_mask, q);
        }
        PackedLattice {
            n_qubits,
            qubit_words,
            n_z_checks,
            syndrome_words,
            z_support,
            z_support_idx,
            z_support_off,
            logical_z_mask,
            logical_z_idx,
        }
    }

    /// Data-qubit count (`d²`).
    pub fn data_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Words in a data-qubit bitset (`⌈d²/64⌉`).
    pub fn qubit_words(&self) -> usize {
        self.qubit_words
    }

    /// Words in a Z-syndrome bitset.
    pub fn syndrome_words(&self) -> usize {
        self.syndrome_words
    }

    /// Number of Z-checks (valid bits in a syndrome bitset).
    pub fn z_check_count(&self) -> usize {
        self.n_z_checks
    }

    /// Sets bit `i` in a bitset.
    #[inline]
    pub fn set_bit(words: &mut [u64], i: usize) {
        words[i >> 6] |= 1u64 << (i & 63);
    }

    /// Flips bit `i` in a bitset.
    #[inline]
    pub fn flip_bit(words: &mut [u64], i: usize) {
        words[i >> 6] ^= 1u64 << (i & 63);
    }

    /// Reads bit `i` of a bitset.
    #[inline]
    pub fn get_bit(words: &[u64], i: usize) -> bool {
        words[i >> 6] >> (i & 63) & 1 != 0
    }

    /// Packs a per-qubit flag slice into bitset words (test/oracle glue).
    pub fn pack(flags: &[bool]) -> Vec<u64> {
        let mut words = vec![0u64; flags.len().div_ceil(64).max(1)];
        for (i, &f) in flags.iter().enumerate() {
            if f {
                Self::set_bit(&mut words, i);
            }
        }
        words
    }

    /// Word-wise Z-syndrome of a packed X-error pattern: check `i`'s bit
    /// is the parity of `errs ∧ support(i)`. Returns `true` iff any
    /// syndrome bit is set (the caller's zero-syndrome fast-path test).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the slices are mis-sized.
    #[inline]
    pub fn z_syndrome_into(&self, errs: &[u64], syndrome: &mut [u64]) -> bool {
        debug_assert_eq!(errs.len(), self.qubit_words);
        debug_assert_eq!(syndrome.len(), self.syndrome_words);
        syndrome.fill(0);
        let mut any = 0u64;
        for (i, mask) in self.z_support.chunks_exact(self.qubit_words).enumerate() {
            // parity(popcount(a₀)+popcount(a₁)+…) = popcount(a₀⊕a₁⊕…)&1:
            // XOR of distinct words preserves total bit-count parity.
            let mut acc = 0u64;
            for (w, m) in errs.iter().zip(mask) {
                acc ^= w & m;
            }
            let bit = (acc.count_ones() & 1) as u64;
            syndrome[i >> 6] |= bit << (i & 63);
            any |= bit;
        }
        any != 0
    }

    /// Whether a packed X-error pattern anticommutes with the logical
    /// `Z̄` membrane (odd overlap with the top row): the failure verdict.
    #[inline]
    pub fn is_logical_x(&self, errs: &[u64]) -> bool {
        debug_assert_eq!(errs.len(), self.qubit_words);
        let mut acc = 0u64;
        for (w, m) in errs.iter().zip(&self.logical_z_mask) {
            acc ^= w & m;
        }
        acc.count_ones() & 1 == 1
    }

    // --- Bit-sliced (trial-transposed) layout -------------------------
    //
    // The packed layout above stores one *trial* per bitset: bit `q` of a
    // trial's words is data qubit `q`. The **sliced** layout transposes
    // that: one `u64` word per data qubit, where bit `l` of word `q` is
    // qubit `q`'s error flag in *lane* (trial) `l` of a 64-trial block.
    // A weight-k Z-check syndrome is then k word-XORs for 64 trials at
    // once, and the zero-syndrome early exit becomes a single OR-fold.

    /// Words in one bit-sliced 64-trial error block (`d²`: one word per
    /// data qubit).
    pub fn sliced_words(&self) -> usize {
        self.n_qubits
    }

    /// Words in one bit-sliced 64-trial syndrome block (one word per
    /// Z-check).
    pub fn sliced_syndrome_words(&self) -> usize {
        self.n_z_checks
    }

    /// Scatters one packed per-trial error bitset into lane `lane` of a
    /// sliced block: bit `q` of `packed` becomes bit `lane` of
    /// `sliced[q]`. Lanes are OR-merged, so the caller zeroes the block
    /// once and scatters up to 64 trials into it.
    ///
    /// # Panics
    ///
    /// Panics if `lane ≥ 64`; debug-asserts the slice sizes.
    #[inline]
    pub fn scatter_lane(&self, packed: &[u64], lane: usize, sliced: &mut [u64]) {
        assert!(lane < 64, "a sliced block holds 64 lanes, got lane {lane}");
        debug_assert_eq!(packed.len(), self.qubit_words);
        debug_assert_eq!(sliced.len(), self.n_qubits);
        for (q, word) in sliced.iter_mut().enumerate() {
            *word |= (packed[q >> 6] >> (q & 63) & 1) << lane;
        }
    }

    /// Gathers lane `lane` of a sliced block back into the packed
    /// per-trial layout (the exact inverse of [`Self::scatter_lane`]):
    /// bit `lane` of `sliced[q]` becomes bit `q` of `packed`. Overwrites
    /// `packed` entirely.
    ///
    /// # Panics
    ///
    /// Panics if `lane ≥ 64`; debug-asserts the slice sizes.
    #[inline]
    pub fn gather_lane(&self, sliced: &[u64], lane: usize, packed: &mut [u64]) {
        assert!(lane < 64, "a sliced block holds 64 lanes, got lane {lane}");
        debug_assert_eq!(packed.len(), self.qubit_words);
        debug_assert_eq!(sliced.len(), self.n_qubits);
        packed.fill(0);
        for (q, word) in sliced.iter().enumerate() {
            packed[q >> 6] |= (word >> lane & 1) << (q & 63);
        }
    }

    /// Word-wise Z-syndromes of a sliced 64-trial error block: check
    /// `i`'s syndrome word is the XOR of its support qubits' words (2 or
    /// 4 XORs for 64 trials at once), written to `sliced_syndrome[i]`.
    /// Returns the OR-fold of all syndrome words — bit `l` is set iff
    /// lane `l` tripped at least one check (the per-lane zero-syndrome
    /// early-exit mask).
    ///
    /// # Panics
    ///
    /// Debug-asserts the slice sizes.
    #[inline]
    pub fn z_syndrome_sliced(&self, sliced_errs: &[u64], sliced_syndrome: &mut [u64]) -> u64 {
        debug_assert_eq!(sliced_errs.len(), self.n_qubits);
        debug_assert_eq!(sliced_syndrome.len(), self.n_z_checks);
        let mut any = 0u64;
        for (i, out) in sliced_syndrome.iter_mut().enumerate() {
            let mut acc = 0u64;
            for &q in &self.z_support_idx[self.z_support_off[i]..self.z_support_off[i + 1]] {
                acc ^= sliced_errs[q];
            }
            *out = acc;
            any |= acc;
        }
        any
    }

    /// Gathers lane `lane` of a sliced syndrome block into the packed
    /// per-trial syndrome layout [`Self::z_syndrome_into`] produces (bit
    /// `i` = check `i`). Overwrites `syndrome` entirely, so a fallback
    /// lane can go straight to the scalar decoder without re-extracting.
    ///
    /// # Panics
    ///
    /// Panics if `lane ≥ 64`; debug-asserts the slice sizes.
    #[inline]
    pub fn gather_syndrome_lane(&self, sliced_syndrome: &[u64], lane: usize, syndrome: &mut [u64]) {
        assert!(lane < 64, "a sliced block holds 64 lanes, got lane {lane}");
        debug_assert_eq!(sliced_syndrome.len(), self.n_z_checks);
        debug_assert_eq!(syndrome.len(), self.syndrome_words);
        syndrome.fill(0);
        for (i, word) in sliced_syndrome.iter().enumerate() {
            syndrome[i >> 6] |= (word >> lane & 1) << (i & 63);
        }
    }

    /// Per-lane logical-`X̄` verdicts of a sliced 64-trial error block:
    /// bit `l` of the result is set iff lane `l`'s pattern has odd
    /// overlap with the logical-`Z̄` membrane — `d` word-XORs for 64
    /// failure checks at once.
    ///
    /// # Panics
    ///
    /// Debug-asserts the slice size.
    #[inline]
    pub fn logical_x_lanes(&self, sliced_errs: &[u64]) -> u64 {
        debug_assert_eq!(sliced_errs.len(), self.n_qubits);
        let mut acc = 0u64;
        for &q in &self.logical_z_idx {
            acc ^= sliced_errs[q];
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_counts() {
        for d in [3usize, 5, 7, 9] {
            let l = Lattice::new(d);
            assert_eq!(l.x_checks.len() + l.z_checks.len(), d * d - 1, "d={d}");
            assert_eq!(l.x_checks.len(), l.z_checks.len());
        }
    }

    #[test]
    fn stabilizers_commute_with_logicals() {
        let l = Lattice::new(5);
        let lz = l.logical_z();
        for chk in &l.x_checks {
            let overlap = chk.support.iter().filter(|q| lz.contains(q)).count();
            assert_eq!(overlap % 2, 0, "X-check at {:?} anticommutes with Z̄", chk.pos);
        }
        let lx = l.logical_x();
        for chk in &l.z_checks {
            let overlap = chk.support.iter().filter(|q| lx.contains(q)).count();
            assert_eq!(overlap % 2, 0, "Z-check at {:?} anticommutes with X̄", chk.pos);
        }
    }

    #[test]
    fn single_error_flips_its_checks() {
        let l = Lattice::new(5);
        let mut errs = vec![false; l.data_qubits()];
        errs[12] = true; // interior qubit
        let syn = l.z_syndrome(&errs);
        let flips = syn.iter().filter(|b| **b).count();
        assert_eq!(flips, 2, "interior X error touches two Z-checks");
    }

    #[test]
    fn logical_chain_is_syndrome_free() {
        let l = Lattice::new(5);
        let mut errs = vec![false; l.data_qubits()];
        for q in l.logical_x() {
            errs[q] = true;
        }
        let syn = l.z_syndrome(&errs);
        assert!(syn.iter().all(|b| !b), "logical X chain must be undetectable");
        assert!(l.is_logical_x(&errs));
    }

    #[test]
    fn provisioned_count_matches_paper() {
        assert_eq!(Lattice::new(23).provisioned_qubits(), 1152);
    }

    #[test]
    fn packed_syndrome_matches_bool_path_on_dense_patterns() {
        // Deterministic pseudo-random patterns across several distances
        // (d = 9 and 11 cross the one-word boundary of the qubit bitset).
        for d in [3usize, 5, 7, 9, 11] {
            let l = Lattice::new(d);
            let packed = PackedLattice::new(&l);
            assert_eq!(packed.data_qubits(), l.data_qubits());
            assert_eq!(packed.z_check_count(), l.z_checks.len());
            let mut state = 0x0123_4567_89AB_CDEFu64 ^ d as u64;
            let mut syn_words = vec![0u64; packed.syndrome_words()];
            for _ in 0..50 {
                let mut errs = vec![false; l.data_qubits()];
                for e in errs.iter_mut() {
                    state =
                        state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    *e = state >> 62 == 0; // p = 1/4
                }
                let words = PackedLattice::pack(&errs);
                let any = packed.z_syndrome_into(&words, &mut syn_words);
                let reference = l.z_syndrome(&errs);
                assert_eq!(any, reference.iter().any(|&b| b), "d={d}");
                for (i, &bit) in reference.iter().enumerate() {
                    assert_eq!(PackedLattice::get_bit(&syn_words, i), bit, "d={d} check {i}");
                }
                assert_eq!(packed.is_logical_x(&words), l.is_logical_x(&errs), "d={d}");
            }
        }
    }

    #[test]
    fn packed_bit_ops_roundtrip() {
        let mut w = vec![0u64; 2];
        PackedLattice::set_bit(&mut w, 70);
        assert!(PackedLattice::get_bit(&w, 70));
        PackedLattice::flip_bit(&mut w, 70);
        assert!(!PackedLattice::get_bit(&w, 70));
        assert_eq!(PackedLattice::pack(&[false, true, false]), vec![0b10]);
    }

    /// Deterministic packed error patterns for the transpose tests.
    fn pseudo_random_trials(packed: &PackedLattice, count: usize, mut state: u64) -> Vec<Vec<u64>> {
        (0..count)
            .map(|_| {
                let mut errs = vec![0u64; packed.qubit_words()];
                for q in 0..packed.data_qubits() {
                    state =
                        state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    if state >> 61 == 0 {
                        PackedLattice::set_bit(&mut errs, q);
                    }
                }
                errs
            })
            .collect()
    }

    #[test]
    fn scatter_then_gather_roundtrips_64_trials() {
        for d in [3usize, 5, 9] {
            let packed = PackedLattice::new(&Lattice::new(d));
            let trials = pseudo_random_trials(&packed, 64, 0xABCD ^ d as u64);
            let mut sliced = vec![0u64; packed.sliced_words()];
            for (lane, errs) in trials.iter().enumerate() {
                packed.scatter_lane(errs, lane, &mut sliced);
            }
            let mut back = vec![0u64; packed.qubit_words()];
            for (lane, errs) in trials.iter().enumerate() {
                packed.gather_lane(&sliced, lane, &mut back);
                assert_eq!(&back, errs, "d={d} lane={lane}");
            }
        }
    }

    #[test]
    fn sliced_syndrome_matches_packed_per_lane() {
        for d in [3usize, 5, 7, 9] {
            let l = Lattice::new(d);
            let packed = PackedLattice::new(&l);
            let trials = pseudo_random_trials(&packed, 64, 0x5EED ^ d as u64);
            let mut sliced = vec![0u64; packed.sliced_words()];
            for (lane, errs) in trials.iter().enumerate() {
                packed.scatter_lane(errs, lane, &mut sliced);
            }
            let mut sliced_syn = vec![0u64; packed.sliced_syndrome_words()];
            let any_mask = packed.z_syndrome_sliced(&sliced, &mut sliced_syn);
            let logical_mask = packed.logical_x_lanes(&sliced);
            let mut syn = vec![0u64; packed.syndrome_words()];
            let mut gathered = vec![0u64; packed.syndrome_words()];
            for (lane, errs) in trials.iter().enumerate() {
                let any = packed.z_syndrome_into(errs, &mut syn);
                assert_eq!(any_mask >> lane & 1 != 0, any, "d={d} lane={lane}");
                packed.gather_syndrome_lane(&sliced_syn, lane, &mut gathered);
                assert_eq!(gathered, syn, "d={d} lane={lane}");
                assert_eq!(
                    logical_mask >> lane & 1 != 0,
                    packed.is_logical_x(errs),
                    "d={d} lane={lane}"
                );
            }
        }
    }

    #[test]
    fn unused_lanes_stay_silent() {
        // A partially filled block (the trials-remainder case): lanes
        // never scattered into must report no errors, no syndrome, and
        // no logical flip.
        let packed = PackedLattice::new(&Lattice::new(5));
        let trials = pseudo_random_trials(&packed, 3, 0x77);
        let mut sliced = vec![0u64; packed.sliced_words()];
        for (lane, errs) in trials.iter().enumerate() {
            packed.scatter_lane(errs, lane, &mut sliced);
        }
        let mut sliced_syn = vec![0u64; packed.sliced_syndrome_words()];
        let any_mask = packed.z_syndrome_sliced(&sliced, &mut sliced_syn);
        let high_lanes = !0u64 << 3;
        assert_eq!(any_mask & high_lanes, 0);
        assert_eq!(packed.logical_x_lanes(&sliced) & high_lanes, 0);
        let mut back = vec![0u64; packed.qubit_words()];
        packed.gather_lane(&sliced, 63, &mut back);
        assert!(back.iter().all(|&w| w == 0));
    }

    #[test]
    #[should_panic(expected = "64 lanes")]
    fn scatter_rejects_out_of_range_lane() {
        let packed = PackedLattice::new(&Lattice::new(3));
        let errs = vec![0u64; packed.qubit_words()];
        let mut sliced = vec![0u64; packed.sliced_words()];
        packed.scatter_lane(&errs, 64, &mut sliced);
    }

    #[test]
    fn boundary_checks_have_weight_two() {
        let l = Lattice::new(7);
        let w2: usize =
            l.x_checks.iter().chain(&l.z_checks).filter(|c| c.support.len() == 2).count();
        assert_eq!(w2, 2 * (7 - 1));
    }
}
