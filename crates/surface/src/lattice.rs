//! Rotated surface-code lattice geometry (Fig. 1a).
//!
//! Distance-`d` rotated code: `d²` data qubits on a square grid, `d²−1`
//! stabilizers (weight-4 checkerboard in the interior, weight-2 on the
//! boundaries: X-type on top/bottom, Z-type on left/right). The logical
//! `X̄` runs along the top row (crossing the Z-boundaries), the logical
//! `Z̄` down the left column.

/// A stabilizer generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Check {
    /// `true` for X-type (detects Z errors), `false` for Z-type.
    pub is_x: bool,
    /// Data-qubit support (2 or 4 qubits).
    pub support: Vec<usize>,
    /// Plaquette coordinates (row, col) in the cell grid, for decoder
    /// distance computations; boundary half-plaquettes sit at `−1`/`d−1`.
    pub pos: (i32, i32),
}

/// The rotated lattice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lattice {
    /// Code distance.
    pub d: usize,
    /// X-type checks.
    pub x_checks: Vec<Check>,
    /// Z-type checks.
    pub z_checks: Vec<Check>,
}

impl Lattice {
    /// Builds the distance-`d` rotated lattice.
    ///
    /// # Panics
    ///
    /// Panics if `d < 2`.
    pub fn new(d: usize) -> Self {
        assert!(d >= 2, "code distance must be at least 2");
        let di = d as i32;
        let data = |r: i32, c: i32| -> Option<usize> {
            if (0..di).contains(&r) && (0..di).contains(&c) {
                Some((r * di + c) as usize)
            } else {
                None
            }
        };
        let mut x_checks = Vec::new();
        let mut z_checks = Vec::new();
        for r in -1..di {
            for c in -1..di {
                let is_x = (r + c).rem_euclid(2) == 0;
                let corners = [data(r, c), data(r, c + 1), data(r + 1, c), data(r + 1, c + 1)];
                let support: Vec<usize> = corners.iter().flatten().copied().collect();
                let keep = match support.len() {
                    4 => true,
                    2 => {
                        let tb = r == -1 || r == di - 1;
                        let lr = c == -1 || c == di - 1;
                        (tb && is_x && !lr) || (lr && !is_x && !tb)
                    }
                    _ => false,
                };
                if !keep {
                    continue;
                }
                let check = Check { is_x, support, pos: (r, c) };
                if is_x {
                    x_checks.push(check);
                } else {
                    z_checks.push(check);
                }
            }
        }
        Lattice { d, x_checks, z_checks }
    }

    /// Number of data qubits (`d²`).
    pub fn data_qubits(&self) -> usize {
        self.d * self.d
    }

    /// Logical `Z̄` support: the top row. Z-strings terminate
    /// undetectably on the left/right (Z-check) boundaries, so the
    /// logical Z runs horizontally.
    pub fn logical_z(&self) -> Vec<usize> {
        (0..self.d).collect()
    }

    /// Logical `X̄` support: the left column (X-strings terminate on the
    /// top/bottom X-check boundaries).
    pub fn logical_x(&self) -> Vec<usize> {
        (0..self.d).map(|r| r * self.d).collect()
    }

    /// Syndrome of an X-error pattern: which Z-checks flip.
    pub fn z_syndrome(&self, x_errors: &[bool]) -> Vec<bool> {
        assert_eq!(x_errors.len(), self.data_qubits(), "one flag per data qubit");
        self.z_checks
            .iter()
            .map(|chk| chk.support.iter().filter(|&&q| x_errors[q]).count() % 2 == 1)
            .collect()
    }

    /// Syndrome of a Z-error pattern: which X-checks flip.
    pub fn x_syndrome(&self, z_errors: &[bool]) -> Vec<bool> {
        assert_eq!(z_errors.len(), self.data_qubits(), "one flag per data qubit");
        self.x_checks
            .iter()
            .map(|chk| chk.support.iter().filter(|&&q| z_errors[q]).count() % 2 == 1)
            .collect()
    }

    /// Whether an X-error pattern (after correction) implements logical
    /// `X̄`: odd overlap (anticommutation) with the logical-Z̄ row.
    pub fn is_logical_x(&self, x_errors: &[bool]) -> bool {
        self.logical_z().iter().filter(|&&q| x_errors[q]).count() % 2 == 1
    }

    /// Whether a Z-error pattern implements logical `Z̄`: odd overlap
    /// with the logical-X̄ column.
    pub fn is_logical_z(&self, z_errors: &[bool]) -> bool {
        self.logical_x().iter().filter(|&&q| z_errors[q]).count() % 2 == 1
    }

    /// The paper's per-logical-qubit physical-qubit count `2(d+1)²`
    /// (§2.1.3 — includes the interface ancilla rows lattice surgery
    /// needs, which is what the scalability analysis provisions).
    pub fn provisioned_qubits(&self) -> usize {
        2 * (self.d + 1) * (self.d + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_counts() {
        for d in [3usize, 5, 7, 9] {
            let l = Lattice::new(d);
            assert_eq!(l.x_checks.len() + l.z_checks.len(), d * d - 1, "d={d}");
            assert_eq!(l.x_checks.len(), l.z_checks.len());
        }
    }

    #[test]
    fn stabilizers_commute_with_logicals() {
        let l = Lattice::new(5);
        let lz = l.logical_z();
        for chk in &l.x_checks {
            let overlap = chk.support.iter().filter(|q| lz.contains(q)).count();
            assert_eq!(overlap % 2, 0, "X-check at {:?} anticommutes with Z̄", chk.pos);
        }
        let lx = l.logical_x();
        for chk in &l.z_checks {
            let overlap = chk.support.iter().filter(|q| lx.contains(q)).count();
            assert_eq!(overlap % 2, 0, "Z-check at {:?} anticommutes with X̄", chk.pos);
        }
    }

    #[test]
    fn single_error_flips_its_checks() {
        let l = Lattice::new(5);
        let mut errs = vec![false; l.data_qubits()];
        errs[12] = true; // interior qubit
        let syn = l.z_syndrome(&errs);
        let flips = syn.iter().filter(|b| **b).count();
        assert_eq!(flips, 2, "interior X error touches two Z-checks");
    }

    #[test]
    fn logical_chain_is_syndrome_free() {
        let l = Lattice::new(5);
        let mut errs = vec![false; l.data_qubits()];
        for q in l.logical_x() {
            errs[q] = true;
        }
        let syn = l.z_syndrome(&errs);
        assert!(syn.iter().all(|b| !b), "logical X chain must be undetectable");
        assert!(l.is_logical_x(&errs));
    }

    #[test]
    fn provisioned_count_matches_paper() {
        assert_eq!(Lattice::new(23).provisioned_qubits(), 1152);
    }

    #[test]
    fn boundary_checks_have_weight_two() {
        let l = Lattice::new(7);
        let w2: usize =
            l.x_checks.iter().chain(&l.z_checks).filter(|c| c.support.len() == 2).count();
        assert_eq!(w2, 2 * (7 - 1));
    }
}
