//! Analytic logical-error model (Fowler/Ghosh-style) used by the
//! scalability engine.
//!
//! `p_L(d) = A · (p_eff / p_th)^((d+1)/2)`
//!
//! with an effective physical error built from the QCI's gate, readout,
//! and decoherence contributions over one ESM round:
//!
//! `p_eff = w₁·p_1Q + w₂·p_2Q + w_m·p_RO + w_t·Γ·t_cycle`,
//! `Γ = (1/T1 + 1/T2)/2`.
//!
//! The weights, threshold, and prefactor are calibrated against the
//! paper's reported operating points (see `CALIBRATION` below): the SFQ
//! baseline/naive-shared/pipelined logical errors of Fig. 13b & 15
//! (4.13e-16 / 3.50e-7 / 1.34e-13), the 43× gap of the advanced-CMOS
//! design to the long-term target closed by Opt-7 (Fig. 17a), and the
//! ≈28,000× Opt-8 improvement (Fig. 20). With this single calibration
//! every pass/fail decision in Section 6 of the paper is reproduced.

/// Calibrated model constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Calibration {
    /// Prefactor `A`.
    pub prefactor: f64,
    /// Threshold `p_th`.
    pub threshold: f64,
    /// Single-qubit gate weight `w₁`.
    pub w_1q: f64,
    /// Two-qubit gate weight `w₂`.
    pub w_2q: f64,
    /// Readout weight `w_m`.
    pub w_ro: f64,
    /// Decoherence weight `w_t`.
    pub w_idle: f64,
}

/// The calibration used throughout the reproduction.
pub const CALIBRATION: Calibration = Calibration {
    prefactor: 0.1,
    threshold: 0.03,
    w_1q: 0.10,
    w_2q: 0.15,
    w_ro: 0.01,
    w_idle: 0.20,
};

/// Per-round physical-error budget of one QCI operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhysicalBudget {
    /// Single-qubit gate error.
    pub p_1q: f64,
    /// Two-qubit gate error.
    pub p_2q: f64,
    /// Readout error.
    pub p_ro: f64,
    /// ESM round (cycle) time in ns.
    pub t_cycle_ns: f64,
    /// Relaxation time in µs.
    pub t1_us: f64,
    /// Dephasing time in µs.
    pub t2_us: f64,
}

impl PhysicalBudget {
    /// Combined decoherence rate `Γ = (1/T1 + 1/T2)/2` in 1/ns.
    pub fn gamma_per_ns(&self) -> f64 {
        0.5 * (1.0 / (self.t1_us * 1e3) + 1.0 / (self.t2_us * 1e3))
    }

    /// The effective physical error `p_eff` under a calibration.
    pub fn effective_error(&self, cal: &Calibration) -> f64 {
        cal.w_1q * self.p_1q
            + cal.w_2q * self.p_2q
            + cal.w_ro * self.p_ro
            + cal.w_idle * self.gamma_per_ns() * self.t_cycle_ns
    }

    /// Logical error per round at distance `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d < 3` or even (rotated codes use odd distances here).
    pub fn logical_error(&self, d: u32, cal: &Calibration) -> f64 {
        assert!(d >= 3 && d % 2 == 1, "use an odd distance >= 3");
        let exponent = d.div_ceil(2) as f64;
        let ratio = self.effective_error(cal) / cal.threshold;
        (cal.prefactor * ratio.powf(exponent)).min(1.0)
    }
}

/// Table 2 CMOS operating point at the given ESM cycle time.
pub fn cmos_budget(t_cycle_ns: f64) -> PhysicalBudget {
    PhysicalBudget {
        p_1q: 8.17e-7,
        p_2q: 7.8e-4,
        p_ro: 1.0e-3,
        t_cycle_ns,
        t1_us: 122.0,
        t2_us: 118.0,
    }
}

/// Table 2 SFQ operating point at the given ESM cycle time.
pub fn sfq_budget(t_cycle_ns: f64) -> PhysicalBudget {
    PhysicalBudget {
        p_1q: 1.18e-4,
        p_2q: 1.09e-3,
        p_ro: 1.48e-2,
        t_cycle_ns,
        t1_us: 122.0,
        t2_us: 118.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const D: u32 = 23;

    #[test]
    fn sfq_baseline_anchor() {
        // Fig. 13b/15: baseline (unshared) SFQ readout, 915 ns cycle →
        // paper reports 4.13e-16; the calibrated model lands within ~10×.
        let p_l = sfq_budget(915.0).logical_error(D, &CALIBRATION);
        assert!(p_l > 4.13e-17 && p_l < 4.13e-14, "baseline SFQ p_L {p_l}");
    }

    #[test]
    fn naive_sharing_anchor_fails_near_term_target() {
        // Fig. 15: naive 8× sharing (5,570 ns cycle) → 3.50e-7 scale,
        // far above the 1.11e-11 near-term target.
        let p_l = sfq_budget(5570.0).logical_error(D, &CALIBRATION);
        assert!(p_l > 1.11e-11, "naive sharing must fail: {p_l}");
        assert!(p_l > 3.5e-9 && p_l < 3.5e-5, "naive p_L {p_l}");
    }

    #[test]
    fn pipelined_sharing_anchor_passes_near_term_target() {
        // Fig. 15: shared+pipelined (1,505 ns cycle) → 1.34e-13 scale.
        let p_l = sfq_budget(1505.0).logical_error(D, &CALIBRATION);
        assert!(p_l < 1.11e-11, "pipelined sharing must pass: {p_l}");
        assert!(p_l > 1.34e-15 && p_l < 1.34e-11, "pipelined p_L {p_l}");
    }

    #[test]
    fn cmos_baseline_fails_long_term_but_opt7_passes() {
        // Fig. 17a: advanced CMOS at the baseline cycle (1,117 ns) misses
        // the 1.69e-17 long-term target by ~43×; FDM 32→20 plus
        // multi-round readout (755.6 ns cycle) closes it.
        let target = 1.69e-17;
        let before = cmos_budget(1117.0).logical_error(D, &CALIBRATION);
        assert!(before > target, "baseline should fail: {before}");
        assert!(before / target > 3.0 && before / target < 500.0, "gap {}", before / target);
        let after = cmos_budget(2.0 * 125.0 + 200.0 + 305.6).logical_error(D, &CALIBRATION);
        assert!(after < target, "Opt-7 design should pass: {after}");
    }

    #[test]
    fn fdm_reduction_gives_fewfold_gain() {
        // §6.4.1: FDM 32 → 20 gives 3.85× lower logical error.
        let e32 = cmos_budget(1117.0).logical_error(D, &CALIBRATION);
        let e20 = cmos_budget(967.0).logical_error(D, &CALIBRATION);
        let gain = e32 / e20;
        assert!(gain > 2.0 && gain < 12.0, "FDM gain {gain}");
    }

    #[test]
    fn opt8_reduces_error_by_about_four_orders() {
        // Fig. 20: fast driving + unsharing cuts the ERSFQ logical error
        // by 28,355×.
        let shared = sfq_budget(1505.0).logical_error(D, &CALIBRATION);
        let fast = sfq_budget(50.0 + 200.0 + 317.7).logical_error(D, &CALIBRATION);
        let gain = shared / fast;
        assert!(gain > 1e3 && gain < 1e8, "Opt-8 gain {gain}");
        assert!(fast < 1.69e-17, "Opt-8 design must meet the long-term target: {fast}");
    }

    #[test]
    fn logical_error_decreases_with_distance() {
        let b = cmos_budget(1117.0);
        let mut last = 1.0;
        for d in [3u32, 5, 9, 15, 23] {
            let e = b.logical_error(d, &CALIBRATION);
            assert!(e < last, "d={d}: {e}");
            last = e;
        }
    }

    #[test]
    fn effective_error_is_linear_in_cycle_time() {
        let cal = CALIBRATION;
        let e1 = cmos_budget(1000.0).effective_error(&cal);
        let e2 = cmos_budget(2000.0).effective_error(&cal);
        let gates = cal.w_1q * 8.17e-7 + cal.w_2q * 7.8e-4 + cal.w_ro * 1.0e-3;
        assert!(((e2 - gates) / (e1 - gates) - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "odd distance")]
    fn even_distance_panics() {
        let _ = cmos_budget(1000.0).logical_error(4, &CALIBRATION);
    }
}
