//! Union-find decoder (Delfosse–Nickerson style) for code-capacity noise.
//!
//! Decoding X errors from Z-check syndromes (and symmetrically for Z):
//! flipped checks seed clusters that grow by half-edges on the check
//! graph; a cluster freezes once its defect parity is even or it touches
//! a boundary; merged odd clusters keep growing. A spanning-tree peeling
//! pass then extracts the correction inside each frozen cluster.

use crate::lattice::{Check, Lattice};
use std::collections::HashMap;

/// A decoding graph: vertices are checks (+ one boundary vertex), edges
/// are data qubits.
#[derive(Debug, Clone)]
pub struct DecodingGraph {
    /// Number of check vertices (boundary vertex is index `checks`).
    checks: usize,
    /// `edges[e] = (u, v, data_qubit)`.
    edges: Vec<(usize, usize, usize)>,
    /// Adjacency: vertex → list of edge ids.
    adj: Vec<Vec<usize>>,
}

/// The virtual boundary vertex id of a graph with `n` checks is `n`.
impl DecodingGraph {
    /// Builds the graph for the given check family (`x = true` decodes Z
    /// errors from X-checks).
    pub fn new(lattice: &Lattice, x_checks: bool) -> Self {
        let checks: &[Check] = if x_checks { &lattice.x_checks } else { &lattice.z_checks };
        let n = checks.len();
        // Map data qubit → checks touching it.
        let mut touch: HashMap<usize, Vec<usize>> = HashMap::new();
        for (i, c) in checks.iter().enumerate() {
            for &q in &c.support {
                touch.entry(q).or_default().push(i);
            }
        }
        let mut edges = Vec::new();
        for q in 0..lattice.data_qubits() {
            match touch.get(&q).map(Vec::as_slice) {
                Some([a, b]) => edges.push((*a, *b, q)),
                Some([a]) => edges.push((*a, n, q)),
                Some(_) => panic!("data qubit {q} touches more than two same-type checks"),
                // A qubit untouched by this check family still ends a
                // chain on both boundaries — connect boundary to itself
                // is useless; such qubits exist only for d=2 corners.
                None => {}
            }
        }
        let mut adj = vec![Vec::new(); n + 1];
        for (e, &(u, v, _)) in edges.iter().enumerate() {
            adj[u].push(e);
            adj[v].push(e);
        }
        DecodingGraph { checks: n, edges, adj }
    }

    /// The boundary vertex id.
    pub fn boundary(&self) -> usize {
        self.checks
    }

    /// Number of edges (data qubits participating in this family).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }
}

struct Uf {
    parent: Vec<usize>,
    // Odd defect count in the cluster root.
    parity: Vec<bool>,
    touches_boundary: Vec<bool>,
}

impl Uf {
    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
            let p = self.parity[ra] ^ self.parity[rb];
            self.parity[rb] = p;
            self.touches_boundary[rb] |= self.touches_boundary[ra];
        }
    }

    fn is_frozen(&mut self, x: usize) -> bool {
        let r = self.find(x);
        !self.parity[r] || self.touches_boundary[r]
    }
}

/// Decodes a syndrome on the graph, returning the data qubits to flip.
///
/// # Panics
///
/// Panics if `syndrome.len()` differs from the graph's check count.
pub fn decode(graph: &DecodingGraph, syndrome: &[bool]) -> Vec<usize> {
    assert_eq!(syndrome.len(), graph.checks, "syndrome length mismatch");
    let n = graph.checks + 1;
    let mut uf = Uf {
        parent: (0..n).collect(),
        parity: syndrome.iter().copied().chain(std::iter::once(false)).collect(),
        touches_boundary: (0..n).map(|v| v == graph.boundary()).collect(),
    };

    // Growth stage: edges gain support in halves; an edge with full
    // support merges its endpoints. Grow all unfrozen clusters in lock
    // step until every cluster is frozen.
    let mut edge_growth = vec![0u8; graph.edges.len()];
    let mut in_cluster: Vec<bool> = syndrome.to_vec();
    in_cluster.push(false);
    loop {
        let mut any_active = false;
        for v in 0..graph.checks {
            if in_cluster[v] && !uf.is_frozen(v) {
                any_active = true;
            }
        }
        if !any_active {
            break;
        }
        let mut to_merge = Vec::new();
        let mut grew = false;
        for (e, &(u, v, _)) in graph.edges.iter().enumerate() {
            if edge_growth[e] >= 2 {
                continue;
            }
            let u_active = in_cluster[u] && !uf.is_frozen(u);
            let v_active = v < graph.checks && in_cluster[v] && !uf.is_frozen(v);
            if u_active || v_active {
                edge_growth[e] += 1;
                grew = true;
                if edge_growth[e] >= 2 {
                    to_merge.push((u, v));
                }
            }
        }
        if !grew {
            // No growable edges left: give up gracefully (all remaining
            // defects pair through the boundary).
            break;
        }
        for (u, v) in to_merge {
            in_cluster[u] = true;
            in_cluster[v] = true;
            uf.union(u, v);
        }
    }

    // Peeling stage: build a forest of fully-grown edges, then peel
    // leaves; a leaf carrying a defect adds its edge to the correction
    // and hands the defect to its neighbor.
    let mut defect: Vec<bool> = syndrome.to_vec();
    defect.push(false);
    let mut tree_adj: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n]; // (edge, other)
    let mut visited = vec![false; n];
    let mut in_tree = vec![false; graph.edges.len()];
    // BFS forest over grown edges, rooted at the boundary first so
    // boundary-touching clusters peel toward it.
    let mut order: Vec<usize> = vec![graph.boundary()];
    order.extend(0..graph.checks);
    for root in order {
        if visited[root] {
            continue;
        }
        visited[root] = true;
        let mut stack = vec![root];
        while let Some(v) = stack.pop() {
            for &e in &graph.adj[v] {
                if edge_growth[e] < 2 || in_tree[e] {
                    continue;
                }
                let (a, b, _) = graph.edges[e];
                let other = if a == v { b } else { a };
                if visited[other] {
                    continue;
                }
                visited[other] = true;
                in_tree[e] = true;
                tree_adj[v].push((e, other));
                tree_adj[other].push((e, v));
                stack.push(other);
            }
        }
    }
    let mut degree: Vec<usize> = tree_adj.iter().map(Vec::len).collect();
    let mut leaves: Vec<usize> =
        (0..n).filter(|&v| degree[v] == 1 && v != graph.boundary()).collect();
    let mut correction = Vec::new();
    let mut removed = vec![false; graph.edges.len()];
    while let Some(v) = leaves.pop() {
        if degree[v] == 0 {
            continue;
        }
        let &(e, other) = tree_adj[v]
            .iter()
            .find(|(e, _)| in_tree[*e] && !removed[*e])
            .expect("leaf has one live tree edge");
        removed[e] = true;
        degree[v] -= 1;
        degree[other] -= 1;
        if defect[v] {
            correction.push(graph.edges[e].2);
            defect[v] = false;
            defect[other] = !defect[other];
        }
        if degree[other] == 1 && other != graph.boundary() {
            leaves.push(other);
        }
    }
    correction
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decode_x_errors(lattice: &Lattice, x_errors: &[bool]) -> Vec<bool> {
        let graph = DecodingGraph::new(lattice, false);
        let syn = lattice.z_syndrome(x_errors);
        let corr = decode(&graph, &syn);
        let mut fixed = x_errors.to_vec();
        for q in corr {
            fixed[q] ^= true;
        }
        fixed
    }

    #[test]
    fn empty_syndrome_needs_no_correction() {
        let l = Lattice::new(5);
        let g = DecodingGraph::new(&l, false);
        assert!(decode(&g, &vec![false; l.z_checks.len()]).is_empty());
    }

    #[test]
    fn single_error_is_corrected() {
        let l = Lattice::new(5);
        for q in 0..l.data_qubits() {
            let mut errs = vec![false; l.data_qubits()];
            errs[q] = true;
            let fixed = decode_x_errors(&l, &errs);
            let syn = l.z_syndrome(&fixed);
            assert!(syn.iter().all(|b| !b), "residual syndrome after fixing qubit {q}");
            assert!(!l.is_logical_x(&fixed), "single error became logical at qubit {q}");
        }
    }

    #[test]
    fn two_adjacent_errors_are_corrected() {
        let l = Lattice::new(7);
        let mut errs = vec![false; l.data_qubits()];
        errs[3 * 7 + 2] = true;
        errs[3 * 7 + 3] = true;
        let fixed = decode_x_errors(&l, &errs);
        assert!(l.z_syndrome(&fixed).iter().all(|b| !b));
        assert!(!l.is_logical_x(&fixed));
    }

    #[test]
    fn correction_always_returns_to_codespace() {
        // Random-ish deterministic error patterns: the decoder may fail
        // logically but must always clear the syndrome.
        let l = Lattice::new(5);
        let mut state = 0x9E3779B97F4A7C15u64;
        for _ in 0..200 {
            let mut errs = vec![false; l.data_qubits()];
            for e in errs.iter_mut() {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                *e = (state >> 60) == 0; // p = 1/16
            }
            let fixed = decode_x_errors(&l, &errs);
            assert!(l.z_syndrome(&fixed).iter().all(|b| !b), "decoder left residual syndrome");
        }
    }

    #[test]
    fn graph_structure_is_sane() {
        let l = Lattice::new(5);
        let g = DecodingGraph::new(&l, false);
        // Every data qubit appears exactly once as an edge.
        assert_eq!(g.edge_count(), l.data_qubits());
        assert_eq!(g.boundary(), l.z_checks.len());
    }
}
