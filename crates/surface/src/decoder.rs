//! Union-find decoder (Delfosse–Nickerson style) for code-capacity noise.
//!
//! Decoding X errors from Z-check syndromes (and symmetrically for Z):
//! flipped checks seed clusters that grow by half-edges on the check
//! graph; a cluster freezes once its defect parity is even or it touches
//! a boundary; merged odd clusters keep growing. A spanning-tree peeling
//! pass then extracts the correction inside each frozen cluster.
//!
//! # The allocation-free engine
//!
//! The Monte-Carlo hot loop calls the decoder once per non-trivial trial,
//! so the engine is split into a build-once [`DecodingGraph`] (CSR
//! adjacency, no hashing) and a reusable [`DecoderScratch`] arena:
//! [`decode_into`] performs **zero heap allocations per call**, growing
//! clusters from an active-frontier worklist that only visits the
//! boundary edges of live clusters instead of rescanning every edge each
//! round. [`decode`] wraps it for one-off use, and [`decode_reference`]
//! preserves the original full-edge-rescan implementation as the oracle
//! the fast engine is tested against — both produce identical
//! corrections for every syndrome.

use crate::lattice::{Check, Lattice, PackedLattice};

/// A decoding graph: vertices are checks (+ one boundary vertex), edges
/// are data qubits.
///
/// Adjacency is stored CSR-style (a flat offset table plus a flat
/// edge-id array), built from a `Vec`-indexed qubit→check table:
/// construction touches no hash map, so the edge and adjacency order is
/// deterministic by construction, not by hasher state.
#[derive(Debug, Clone)]
pub struct DecodingGraph {
    /// Number of check vertices (boundary vertex is index `checks`).
    checks: usize,
    /// `edges[e] = (u, v, data_qubit)`.
    edges: Vec<(usize, usize, usize)>,
    /// CSR offsets: vertex `v`'s incident edge ids live at
    /// `adj_edge[adj_off[v]..adj_off[v + 1]]`.
    adj_off: Vec<usize>,
    /// CSR payload: incident edge ids, grouped per vertex in ascending
    /// edge-id order.
    adj_edge: Vec<usize>,
}

/// The virtual boundary vertex id of a graph with `n` checks is `n`.
impl DecodingGraph {
    /// Builds the graph for the given check family (`x = true` decodes Z
    /// errors from X-checks).
    pub fn new(lattice: &Lattice, x_checks: bool) -> Self {
        let checks: &[Check] = if x_checks { &lattice.x_checks } else { &lattice.z_checks };
        let n = checks.len();
        let n_qubits = lattice.data_qubits();
        // Vec-indexed qubit → (up to two) touching checks: same-type
        // checks tile the lattice, so two is the structural maximum.
        let mut touch = vec![[usize::MAX; 2]; n_qubits];
        let mut touch_len = vec![0u8; n_qubits];
        for (i, c) in checks.iter().enumerate() {
            for &q in &c.support {
                assert!(touch_len[q] < 2, "data qubit {q} touches more than two same-type checks");
                touch[q][touch_len[q] as usize] = i;
                touch_len[q] += 1;
            }
        }
        let mut edges = Vec::with_capacity(n_qubits);
        for q in 0..n_qubits {
            match touch_len[q] {
                2 => edges.push((touch[q][0], touch[q][1], q)),
                1 => edges.push((touch[q][0], n, q)),
                // A qubit untouched by this check family still ends a
                // chain on both boundaries — connecting the boundary to
                // itself is useless; such qubits exist only for d=2
                // corners.
                _ => {}
            }
        }
        // CSR adjacency: count degrees, prefix-sum, fill. Filling in
        // ascending edge order reproduces the per-vertex edge order the
        // old `Vec<Vec<usize>>` build produced.
        let mut adj_off = vec![0usize; n + 2];
        for &(u, v, _) in &edges {
            adj_off[u + 1] += 1;
            adj_off[v + 1] += 1;
        }
        for i in 1..adj_off.len() {
            adj_off[i] += adj_off[i - 1];
        }
        let mut cursor = adj_off.clone();
        let mut adj_edge = vec![0usize; 2 * edges.len()];
        for (e, &(u, v, _)) in edges.iter().enumerate() {
            adj_edge[cursor[u]] = e;
            cursor[u] += 1;
            adj_edge[cursor[v]] = e;
            cursor[v] += 1;
        }
        DecodingGraph { checks: n, edges, adj_off, adj_edge }
    }

    /// The boundary vertex id.
    pub fn boundary(&self) -> usize {
        self.checks
    }

    /// Number of check vertices (syndrome bits this graph decodes).
    pub fn check_count(&self) -> usize {
        self.checks
    }

    /// Number of edges (data qubits participating in this family).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// `u64` words in a packed syndrome for this graph.
    pub fn syndrome_words(&self) -> usize {
        self.checks.div_ceil(64).max(1)
    }

    /// The edge ids incident to vertex `v`.
    #[inline]
    fn adj(&self, v: usize) -> &[usize] {
        &self.adj_edge[self.adj_off[v]..self.adj_off[v + 1]]
    }
}

/// Frontier and peeling work counters accumulated by [`decode_into`],
/// flushed to `qisim-obs` by the Monte-Carlo drivers (one registry
/// update per trial batch, never per trial).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecodeStats {
    /// Decode calls that reached the growth stage.
    pub decodes: u64,
    /// Cluster-growth rounds executed.
    pub rounds: u64,
    /// Edge half-growth steps applied (frontier edge visits).
    pub edges_grown: u64,
}

/// Reusable decoder arena: every buffer [`decode_into`] needs, sized
/// once for a [`DecodingGraph`] and reused across trials so the hot
/// loop performs no heap allocation.
///
/// # Examples
///
/// ```
/// use qisim_surface::decoder::{decode_into, DecoderScratch, DecodingGraph};
/// use qisim_surface::Lattice;
///
/// let lattice = Lattice::new(5);
/// let graph = DecodingGraph::new(&lattice, false);
/// let mut scratch = DecoderScratch::new(&graph);
/// let mut syndrome = vec![0u64; graph.syndrome_words()];
/// syndrome[0] = 0b11; // two adjacent defects
/// let correction = decode_into(&graph, &syndrome, &mut scratch);
/// assert!(!correction.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct DecoderScratch {
    // Union-find over `checks + 1` vertices.
    parent: Vec<usize>,
    parity: Vec<bool>,
    touches_boundary: Vec<bool>,
    // Growth stage.
    edge_growth: Vec<u8>,
    in_cluster: Vec<bool>,
    /// Non-boundary vertices currently absorbed into any cluster.
    cluster_verts: Vec<usize>,
    /// Frontier edges collected this round (deduplicated via `edge_seen`).
    round_edges: Vec<usize>,
    edge_seen: Vec<u64>,
    round_stamp: u64,
    full_edges: Vec<usize>,
    // Peeling stage.
    defect: Vec<bool>,
    visited: Vec<bool>,
    in_tree: Vec<bool>,
    /// Spanning-forest entries `(edge, other)`, stored in the CSR slots
    /// of the owning vertex (capacity bounded by the vertex degree).
    tree_entry: Vec<(usize, usize)>,
    tree_len: Vec<usize>,
    degree: Vec<usize>,
    leaves: Vec<usize>,
    removed: Vec<bool>,
    stack: Vec<usize>,
    correction: Vec<usize>,
    stats: DecodeStats,
}

impl DecoderScratch {
    /// Allocates an arena sized for `graph`.
    pub fn new(graph: &DecodingGraph) -> Self {
        let n = graph.checks + 1;
        let e = graph.edges.len();
        DecoderScratch {
            parent: (0..n).collect(),
            parity: vec![false; n],
            touches_boundary: vec![false; n],
            edge_growth: vec![0; e],
            in_cluster: vec![false; n],
            cluster_verts: Vec::with_capacity(n),
            round_edges: Vec::with_capacity(e),
            edge_seen: vec![0; e],
            round_stamp: 0,
            full_edges: Vec::with_capacity(e),
            defect: vec![false; n],
            visited: vec![false; n],
            in_tree: vec![false; e],
            tree_entry: vec![(0, 0); graph.adj_edge.len()],
            tree_len: vec![0; n],
            degree: vec![0; n],
            leaves: Vec::with_capacity(n),
            removed: vec![false; e],
            stack: Vec::with_capacity(n),
            correction: Vec::with_capacity(e),
            stats: DecodeStats::default(),
        }
    }

    /// Work counters accumulated since construction (or the last
    /// [`Self::take_stats`]).
    pub fn stats(&self) -> DecodeStats {
        self.stats
    }

    /// Returns and resets the accumulated work counters.
    pub fn take_stats(&mut self) -> DecodeStats {
        std::mem::take(&mut self.stats)
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
            let p = self.parity[ra] ^ self.parity[rb];
            self.parity[rb] = p;
            self.touches_boundary[rb] |= self.touches_boundary[ra];
        }
    }

    fn is_frozen(&mut self, x: usize) -> bool {
        let r = self.find(x);
        !self.parity[r] || self.touches_boundary[r]
    }
}

/// Decodes a packed syndrome (`u64` bitset words, one bit per check)
/// using only the buffers in `scratch`, returning the data qubits to
/// flip as a slice into the arena. **Allocation-free**: every call
/// reuses the arena; the returned slice is valid until the next call.
///
/// Produces exactly the correction [`decode_reference`] produces for the
/// same syndrome (the equivalence suite pins this), but grows clusters
/// from an active-frontier worklist — per round it visits only the
/// not-yet-full edges incident to live (unfrozen) clusters, instead of
/// rescanning the entire edge set.
///
/// # Panics
///
/// Panics if `syndrome.len()` differs from [`DecodingGraph::syndrome_words`].
pub fn decode_into<'a>(
    graph: &DecodingGraph,
    syndrome: &[u64],
    scratch: &'a mut DecoderScratch,
) -> &'a [usize] {
    assert_eq!(syndrome.len(), graph.syndrome_words(), "syndrome word-count mismatch");
    let s = scratch;
    s.correction.clear();
    s.cluster_verts.clear();

    // Reset the per-call state. These are O(checks + edges) memsets over
    // buffers a few hundred bytes long — no allocation, and trivially
    // cheap next to the allocation storm the legacy path paid.
    let n = graph.checks + 1;
    for (i, p) in s.parent.iter_mut().enumerate() {
        *p = i;
    }
    s.parity.fill(false);
    s.touches_boundary.fill(false);
    s.touches_boundary[graph.checks] = true;
    s.edge_growth.fill(0);
    s.in_cluster.fill(false);
    s.defect.fill(false);

    // Seed clusters at the defects (word-wise set-bit extraction).
    for (w, &word) in syndrome.iter().enumerate() {
        let mut bits = word;
        while bits != 0 {
            let c = (w << 6) + bits.trailing_zeros() as usize;
            bits &= bits - 1;
            debug_assert!(c < graph.checks, "syndrome bit beyond check count");
            s.parity[c] = true;
            s.defect[c] = true;
            s.in_cluster[c] = true;
            s.cluster_verts.push(c);
        }
    }
    if s.cluster_verts.is_empty() {
        return &s.correction;
    }
    s.stats.decodes += 1;

    // Growth stage: edges gain support in halves; an edge with full
    // support merges its endpoints. Grow all unfrozen clusters in lock
    // step until every cluster is frozen. The frontier worklist visits
    // exactly the edges the legacy full scan would have grown: growth<2
    // edges incident to an in-cluster, unfrozen, non-boundary vertex.
    loop {
        s.round_stamp += 1;
        let stamp = s.round_stamp;
        s.round_edges.clear();
        let mut any_active = false;
        for idx in 0..s.cluster_verts.len() {
            let v = s.cluster_verts[idx];
            if s.is_frozen(v) {
                continue;
            }
            any_active = true;
            for &e in graph.adj(v) {
                if s.edge_growth[e] < 2 && s.edge_seen[e] != stamp {
                    s.edge_seen[e] = stamp;
                    s.round_edges.push(e);
                }
            }
        }
        // No live cluster, or live clusters with no growable edge left
        // (all remaining defects pair through the boundary): stop.
        if !any_active || s.round_edges.is_empty() {
            break;
        }
        s.stats.rounds += 1;
        s.stats.edges_grown += s.round_edges.len() as u64;
        s.full_edges.clear();
        for i in 0..s.round_edges.len() {
            let e = s.round_edges[i];
            s.edge_growth[e] += 1;
            if s.edge_growth[e] >= 2 {
                s.full_edges.push(e);
            }
        }
        for i in 0..s.full_edges.len() {
            let (u, v, _) = graph.edges[s.full_edges[i]];
            for w in [u, v] {
                if !s.in_cluster[w] {
                    s.in_cluster[w] = true;
                    if w != graph.checks {
                        s.cluster_verts.push(w);
                    }
                }
            }
            s.union(u, v);
        }
    }

    // Peeling stage: build a forest of fully-grown edges, then peel
    // leaves; a leaf carrying a defect adds its edge to the correction
    // and hands the defect to its neighbor. Rooted at the boundary first
    // so boundary-touching clusters peel toward it.
    s.visited.fill(false);
    s.in_tree.fill(false);
    s.tree_len.fill(0);
    s.removed.fill(false);
    for root in std::iter::once(graph.boundary()).chain(0..graph.checks) {
        if s.visited[root] {
            continue;
        }
        s.visited[root] = true;
        s.stack.clear();
        s.stack.push(root);
        while let Some(v) = s.stack.pop() {
            for &e in graph.adj(v) {
                if s.edge_growth[e] < 2 || s.in_tree[e] {
                    continue;
                }
                let (a, b, _) = graph.edges[e];
                let other = if a == v { b } else { a };
                if s.visited[other] {
                    continue;
                }
                s.visited[other] = true;
                s.in_tree[e] = true;
                s.tree_entry[graph.adj_off[v] + s.tree_len[v]] = (e, other);
                s.tree_len[v] += 1;
                s.tree_entry[graph.adj_off[other] + s.tree_len[other]] = (e, v);
                s.tree_len[other] += 1;
                s.stack.push(other);
            }
        }
    }
    s.degree[..n].copy_from_slice(&s.tree_len[..n]);
    s.leaves.clear();
    for v in 0..n {
        if s.degree[v] == 1 && v != graph.boundary() {
            s.leaves.push(v);
        }
    }
    while let Some(v) = s.leaves.pop() {
        if s.degree[v] == 0 {
            continue;
        }
        let slots = &s.tree_entry[graph.adj_off[v]..graph.adj_off[v] + s.tree_len[v]];
        let &(e, other) = slots
            .iter()
            .find(|(e, _)| s.in_tree[*e] && !s.removed[*e])
            .expect("leaf has one live tree edge");
        s.removed[e] = true;
        s.degree[v] -= 1;
        s.degree[other] -= 1;
        if s.defect[v] {
            s.correction.push(graph.edges[e].2);
            s.defect[v] = false;
            s.defect[other] = !s.defect[other];
        }
        if s.degree[other] == 1 && other != graph.boundary() {
            s.leaves.push(other);
        }
    }
    &s.correction
}

/// Decodes a syndrome on the graph, returning the data qubits to flip.
///
/// Convenience wrapper over [`decode_into`] for one-off decodes: it
/// allocates a fresh [`DecoderScratch`] per call. Batch callers (the
/// Monte-Carlo engine) hold a scratch arena and call [`decode_into`]
/// directly.
///
/// # Panics
///
/// Panics if `syndrome.len()` differs from the graph's check count.
pub fn decode(graph: &DecodingGraph, syndrome: &[bool]) -> Vec<usize> {
    assert_eq!(syndrome.len(), graph.checks, "syndrome length mismatch");
    // `pack` of a `checks`-long slice yields exactly `syndrome_words()`
    // words, so the packed form feeds the arena engine directly.
    let words = PackedLattice::pack(syndrome);
    let mut scratch = DecoderScratch::new(graph);
    decode_into(graph, &words, &mut scratch).to_vec()
}

/// The original full-edge-rescan, allocate-per-call union-find decoder,
/// kept verbatim as the oracle the allocation-free engine is verified
/// against: for every syndrome, [`decode_into`] must return exactly this
/// correction.
///
/// # Panics
///
/// Panics if `syndrome.len()` differs from the graph's check count.
// Kept structurally identical to the pre-arena implementation (index
// loops and all) so divergences from the fast engine stay attributable.
#[allow(clippy::needless_range_loop)]
pub fn decode_reference(graph: &DecodingGraph, syndrome: &[bool]) -> Vec<usize> {
    assert_eq!(syndrome.len(), graph.checks, "syndrome length mismatch");
    let n = graph.checks + 1;
    struct Uf {
        parent: Vec<usize>,
        parity: Vec<bool>,
        touches_boundary: Vec<bool>,
    }
    impl Uf {
        fn find(&mut self, mut x: usize) -> usize {
            while self.parent[x] != x {
                self.parent[x] = self.parent[self.parent[x]];
                x = self.parent[x];
            }
            x
        }
        fn union(&mut self, a: usize, b: usize) {
            let (ra, rb) = (self.find(a), self.find(b));
            if ra != rb {
                self.parent[ra] = rb;
                let p = self.parity[ra] ^ self.parity[rb];
                self.parity[rb] = p;
                self.touches_boundary[rb] |= self.touches_boundary[ra];
            }
        }
        fn is_frozen(&mut self, x: usize) -> bool {
            let r = self.find(x);
            !self.parity[r] || self.touches_boundary[r]
        }
    }
    let mut uf = Uf {
        parent: (0..n).collect(),
        parity: syndrome.iter().copied().chain(std::iter::once(false)).collect(),
        touches_boundary: (0..n).map(|v| v == graph.boundary()).collect(),
    };

    let mut edge_growth = vec![0u8; graph.edges.len()];
    let mut in_cluster: Vec<bool> = syndrome.to_vec();
    in_cluster.push(false);
    loop {
        let mut any_active = false;
        for v in 0..graph.checks {
            if in_cluster[v] && !uf.is_frozen(v) {
                any_active = true;
            }
        }
        if !any_active {
            break;
        }
        let mut to_merge = Vec::new();
        let mut grew = false;
        for (e, &(u, v, _)) in graph.edges.iter().enumerate() {
            if edge_growth[e] >= 2 {
                continue;
            }
            let u_active = in_cluster[u] && !uf.is_frozen(u);
            let v_active = v < graph.checks && in_cluster[v] && !uf.is_frozen(v);
            if u_active || v_active {
                edge_growth[e] += 1;
                grew = true;
                if edge_growth[e] >= 2 {
                    to_merge.push((u, v));
                }
            }
        }
        if !grew {
            break;
        }
        for (u, v) in to_merge {
            in_cluster[u] = true;
            in_cluster[v] = true;
            uf.union(u, v);
        }
    }

    let mut defect: Vec<bool> = syndrome.to_vec();
    defect.push(false);
    let mut tree_adj: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n]; // (edge, other)
    let mut visited = vec![false; n];
    let mut in_tree = vec![false; graph.edges.len()];
    let mut order: Vec<usize> = vec![graph.boundary()];
    order.extend(0..graph.checks);
    for root in order {
        if visited[root] {
            continue;
        }
        visited[root] = true;
        let mut stack = vec![root];
        while let Some(v) = stack.pop() {
            for &e in graph.adj(v) {
                if edge_growth[e] < 2 || in_tree[e] {
                    continue;
                }
                let (a, b, _) = graph.edges[e];
                let other = if a == v { b } else { a };
                if visited[other] {
                    continue;
                }
                visited[other] = true;
                in_tree[e] = true;
                tree_adj[v].push((e, other));
                tree_adj[other].push((e, v));
                stack.push(other);
            }
        }
    }
    let mut degree: Vec<usize> = tree_adj.iter().map(Vec::len).collect();
    let mut leaves: Vec<usize> =
        (0..n).filter(|&v| degree[v] == 1 && v != graph.boundary()).collect();
    let mut correction = Vec::new();
    let mut removed = vec![false; graph.edges.len()];
    while let Some(v) = leaves.pop() {
        if degree[v] == 0 {
            continue;
        }
        let &(e, other) = tree_adj[v]
            .iter()
            .find(|(e, _)| in_tree[*e] && !removed[*e])
            .expect("leaf has one live tree edge");
        removed[e] = true;
        degree[v] -= 1;
        degree[other] -= 1;
        if defect[v] {
            correction.push(graph.edges[e].2);
            defect[v] = false;
            defect[other] = !defect[other];
        }
        if degree[other] == 1 && other != graph.boundary() {
            leaves.push(other);
        }
    }
    correction
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decode_x_errors(lattice: &Lattice, x_errors: &[bool]) -> Vec<bool> {
        let graph = DecodingGraph::new(lattice, false);
        let syn = lattice.z_syndrome(x_errors);
        let corr = decode(&graph, &syn);
        let mut fixed = x_errors.to_vec();
        for q in corr {
            fixed[q] ^= true;
        }
        fixed
    }

    #[test]
    fn empty_syndrome_needs_no_correction() {
        let l = Lattice::new(5);
        let g = DecodingGraph::new(&l, false);
        assert!(decode(&g, &vec![false; l.z_checks.len()]).is_empty());
    }

    #[test]
    fn single_error_is_corrected() {
        let l = Lattice::new(5);
        for q in 0..l.data_qubits() {
            let mut errs = vec![false; l.data_qubits()];
            errs[q] = true;
            let fixed = decode_x_errors(&l, &errs);
            let syn = l.z_syndrome(&fixed);
            assert!(syn.iter().all(|b| !b), "residual syndrome after fixing qubit {q}");
            assert!(!l.is_logical_x(&fixed), "single error became logical at qubit {q}");
        }
    }

    #[test]
    fn two_adjacent_errors_are_corrected() {
        let l = Lattice::new(7);
        let mut errs = vec![false; l.data_qubits()];
        errs[3 * 7 + 2] = true;
        errs[3 * 7 + 3] = true;
        let fixed = decode_x_errors(&l, &errs);
        assert!(l.z_syndrome(&fixed).iter().all(|b| !b));
        assert!(!l.is_logical_x(&fixed));
    }

    #[test]
    fn correction_always_returns_to_codespace() {
        // Random-ish deterministic error patterns: the decoder may fail
        // logically but must always clear the syndrome.
        let l = Lattice::new(5);
        let mut state = 0x9E3779B97F4A7C15u64;
        for _ in 0..200 {
            let mut errs = vec![false; l.data_qubits()];
            for e in errs.iter_mut() {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                *e = (state >> 60) == 0; // p = 1/16
            }
            let fixed = decode_x_errors(&l, &errs);
            assert!(l.z_syndrome(&fixed).iter().all(|b| !b), "decoder left residual syndrome");
        }
    }

    #[test]
    fn graph_structure_is_sane() {
        let l = Lattice::new(5);
        let g = DecodingGraph::new(&l, false);
        // Every data qubit appears exactly once as an edge.
        assert_eq!(g.edge_count(), l.data_qubits());
        assert_eq!(g.boundary(), l.z_checks.len());
        assert_eq!(g.check_count(), l.z_checks.len());
        // CSR adjacency covers both endpoints of every edge.
        assert_eq!(g.adj_off[g.checks + 1], 2 * g.edge_count());
        for v in 0..=g.checks {
            for &e in g.adj(v) {
                let (a, b, _) = g.edges[e];
                assert!(a == v || b == v, "edge {e} listed at foreign vertex {v}");
            }
        }
    }

    #[test]
    fn frontier_engine_matches_the_reference_decoder_exactly() {
        // Identical corrections — same qubits, same order — on a dense
        // deterministic syndrome battery, reusing one scratch arena
        // throughout so cross-call contamination would be caught.
        for d in [3usize, 5, 7, 9, 11] {
            let l = Lattice::new(d);
            let g = DecodingGraph::new(&l, false);
            let mut scratch = DecoderScratch::new(&g);
            let mut state = 0xD1CEu64 ^ (d as u64) << 32;
            for round in 0..300 {
                let mut syn = vec![false; g.check_count()];
                for b in syn.iter_mut() {
                    state =
                        state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    *b = state >> 61 == 0; // p = 1/8 per check
                }
                let reference = decode_reference(&g, &syn);
                let words = PackedLattice::pack(&syn);
                let fast = decode_into(&g, &words, &mut scratch);
                assert_eq!(fast, &reference[..], "d={d} round={round}");
            }
        }
    }

    #[test]
    fn scratch_stats_accumulate_and_reset() {
        let l = Lattice::new(5);
        let g = DecodingGraph::new(&l, false);
        let mut scratch = DecoderScratch::new(&g);
        let mut syn = vec![0u64; g.syndrome_words()];
        syn[0] = 0b1; // one defect: must grow at least one round
        let _ = decode_into(&g, &syn, &mut scratch);
        let stats = scratch.stats();
        assert_eq!(stats.decodes, 1);
        assert!(stats.rounds >= 1 && stats.edges_grown >= 1, "{stats:?}");
        assert_eq!(scratch.take_stats(), stats);
        assert_eq!(scratch.stats(), DecodeStats::default());
        // Zero syndrome never counts as a decode.
        syn[0] = 0;
        assert!(decode_into(&g, &syn, &mut scratch).is_empty());
        assert_eq!(scratch.stats().decodes, 0);
    }
}
