//! Quantum-supremacy targets (§6.1).
//!
//! Google's FTQC roadmap framing: near-term, grow the code distance to
//! `d = 23` (one 1,152-physical-qubit logical patch); long-term, grow the
//! number of `d = 23` patches to 54 (62,208 physical qubits) — enough to
//! run Jellium N=54, a classically-intractable condensed-phase
//! simulation, with a 99 % success rate. Target logical error rates
//! follow the standard budget `p_target = (1 − P_success) / N_ops` with
//! the Jellium T-counts of Kivlichan et al.

use crate::lattice::Lattice;

/// Code distance of both roadmap stages.
pub const CODE_DISTANCE: u32 = 23;
/// Required workload success probability.
pub const SUCCESS_RATE: f64 = 0.99;

/// A scalability target (one roadmap stage).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Target {
    /// Stage name.
    pub name: &'static str,
    /// Jellium problem size N.
    pub jellium_n: u32,
    /// Logical qubits provisioned.
    pub logical_qubits: u32,
    /// Total logical-operation count (T-count × code-cycle overhead) the
    /// error budget divides over.
    pub logical_ops: f64,
}

impl Target {
    /// The near-term stage: one d=23 patch, Jellium N=2.
    pub fn near_term() -> Self {
        // 0.01 / 9.01e8 = 1.11e-11.
        Target {
            name: "near-term (Jellium N=2)",
            jellium_n: 2,
            logical_qubits: 1,
            logical_ops: 9.01e8,
        }
    }

    /// The long-term stage: 54 patches, Jellium N=54 (quantum supremacy).
    pub fn long_term() -> Self {
        // 0.01 / 5.92e14 = 1.69e-17.
        Target {
            name: "long-term (Jellium N=54)",
            jellium_n: 54,
            logical_qubits: 54,
            logical_ops: 5.92e14,
        }
    }

    /// Target logical error rate per operation.
    pub fn logical_error_target(&self) -> f64 {
        (1.0 - SUCCESS_RATE) / self.logical_ops
    }

    /// Physical qubits this stage provisions (`2(d+1)²` per patch).
    pub fn physical_qubits(&self) -> u32 {
        self.logical_qubits * Lattice::new(CODE_DISTANCE as usize).provisioned_qubits() as u32
    }

    /// Whether a design's logical error meets this stage's target.
    pub fn met_by(&self, logical_error: f64) -> bool {
        logical_error <= self.logical_error_target()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn near_term_target_matches_paper() {
        let t = Target::near_term();
        let e = t.logical_error_target();
        assert!((e - 1.11e-11).abs() / 1.11e-11 < 0.01, "near-term target {e}");
        assert_eq!(t.physical_qubits(), 1152);
    }

    #[test]
    fn long_term_target_matches_paper() {
        let t = Target::long_term();
        let e = t.logical_error_target();
        assert!((e - 1.69e-17).abs() / 1.69e-17 < 0.01, "long-term target {e}");
        assert_eq!(t.physical_qubits(), 62_208);
    }

    #[test]
    fn long_term_is_much_stricter() {
        let ratio =
            Target::near_term().logical_error_target() / Target::long_term().logical_error_target();
        assert!(ratio > 1e5, "target ratio {ratio}");
    }

    #[test]
    fn met_by_is_a_threshold() {
        let t = Target::near_term();
        assert!(t.met_by(1e-12));
        assert!(!t.met_by(1e-10));
    }
}
