//! Monte-Carlo logical-error sampling (code-capacity noise).
//!
//! Samples i.i.d. X errors on the data qubits, decodes with the
//! union-find decoder, and counts logical failures — the numerical
//! ground truth the analytic model of [`crate::analytic`] is validated
//! against at small distances.

use crate::decoder::{decode, DecodingGraph};
use crate::lattice::Lattice;
use qisim_quantum::rng::Rng;

/// Result of a logical-error-rate estimation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McEstimate {
    /// Estimated logical error probability per round.
    pub logical_error: f64,
    /// Trials run.
    pub trials: usize,
    /// Failures observed.
    pub failures: usize,
}

/// Estimates the logical-X error rate at physical error probability `p`
/// over `trials` rounds.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]` or `trials == 0`.
pub fn logical_error_rate<R: Rng>(
    lattice: &Lattice,
    p: f64,
    trials: usize,
    rng: &mut R,
) -> McEstimate {
    assert!((0.0..=1.0).contains(&p), "physical error rate must be a probability");
    assert!(trials > 0, "need at least one trial");
    qisim_obs::span!("surface.montecarlo");
    qisim_obs::counter!("surface.montecarlo.trials", trials as u64);
    let graph = DecodingGraph::new(lattice, false);
    let n = lattice.data_qubits();
    let mut failures = 0usize;
    for _ in 0..trials {
        let mut errs = vec![false; n];
        for e in errs.iter_mut() {
            *e = rng.gen_f64() < p;
        }
        let syn = lattice.z_syndrome(&errs);
        for q in decode(&graph, &syn) {
            errs[q] ^= true;
        }
        debug_assert!(lattice.z_syndrome(&errs).iter().all(|b| !b));
        if lattice.is_logical_x(&errs) {
            failures += 1;
        }
    }
    qisim_obs::counter!("surface.montecarlo.failures", failures as u64);
    McEstimate { logical_error: failures as f64 / trials as f64, trials, failures }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qisim_quantum::rng::Xorshift64Star;

    #[test]
    fn zero_physical_error_never_fails() {
        let l = Lattice::new(5);
        let mut rng = Xorshift64Star::seed_from_u64(1);
        let est = logical_error_rate(&l, 0.0, 50, &mut rng);
        assert_eq!(est.failures, 0);
    }

    #[test]
    fn below_threshold_larger_d_wins() {
        // Code-capacity threshold of union-find is ≈ 9.9 %; at p = 2 %
        // larger distance must suppress the logical error.
        let mut rng = Xorshift64Star::seed_from_u64(2);
        let p = 0.02;
        let e3 = logical_error_rate(&Lattice::new(3), p, 4000, &mut rng).logical_error;
        let e7 = logical_error_rate(&Lattice::new(7), p, 4000, &mut rng).logical_error;
        assert!(
            e7 < e3 || (e3 == 0.0 && e7 == 0.0),
            "d=7 ({e7}) should beat d=3 ({e3}) below threshold"
        );
    }

    #[test]
    fn above_threshold_code_fails_badly() {
        let mut rng = Xorshift64Star::seed_from_u64(3);
        let est = logical_error_rate(&Lattice::new(5), 0.25, 1000, &mut rng);
        assert!(est.logical_error > 0.1, "p=0.25 logical error {}", est.logical_error);
    }

    #[test]
    fn error_rate_is_monotone_in_p() {
        let l = Lattice::new(5);
        let mut rng = Xorshift64Star::seed_from_u64(4);
        let lo = logical_error_rate(&l, 0.01, 3000, &mut rng).logical_error;
        let hi = logical_error_rate(&l, 0.08, 3000, &mut rng).logical_error;
        assert!(hi >= lo, "p=0.08 ({hi}) vs p=0.01 ({lo})");
    }
}
