//! Monte-Carlo logical-error sampling (code-capacity noise).
//!
//! Samples i.i.d. X errors on the data qubits, decodes with the
//! union-find decoder, and counts logical failures — the numerical
//! ground truth the analytic model of [`crate::analytic`] is validated
//! against at small distances.

use crate::decoder::{decode, DecodingGraph};
use crate::lattice::Lattice;
use qisim_quantum::rng::{Rng, Xorshift64Star};

/// Result of a logical-error-rate estimation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McEstimate {
    /// Estimated logical error probability per round.
    pub logical_error: f64,
    /// Trials run.
    pub trials: usize,
    /// Failures observed.
    pub failures: usize,
}

/// Estimates the logical-X error rate at physical error probability `p`
/// over `trials` rounds.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]` or `trials == 0`.
pub fn logical_error_rate<R: Rng>(
    lattice: &Lattice,
    p: f64,
    trials: usize,
    rng: &mut R,
) -> McEstimate {
    assert!((0.0..=1.0).contains(&p), "physical error rate must be a probability");
    assert!(trials > 0, "need at least one trial");
    qisim_obs::span!("surface.montecarlo");
    qisim_obs::counter!("surface.montecarlo.trials", trials as u64);
    let graph = DecodingGraph::new(lattice, false);
    let failures = run_trials(lattice, &graph, p, trials, rng);
    qisim_obs::counter!("surface.montecarlo.failures", failures as u64);
    McEstimate { logical_error: failures as f64 / trials as f64, trials, failures }
}

/// The inner sample-decode-check loop shared by the serial and parallel
/// estimators: returns the number of logical failures in `trials` rounds.
fn run_trials<R: Rng>(
    lattice: &Lattice,
    graph: &DecodingGraph,
    p: f64,
    trials: usize,
    rng: &mut R,
) -> usize {
    let n = lattice.data_qubits();
    let mut failures = 0usize;
    for _ in 0..trials {
        let mut errs = vec![false; n];
        for e in errs.iter_mut() {
            *e = rng.gen_f64() < p;
        }
        let syn = lattice.z_syndrome(&errs);
        for q in decode(graph, &syn) {
            errs[q] ^= true;
        }
        debug_assert!(lattice.z_syndrome(&errs).iter().all(|b| !b));
        if lattice.is_logical_x(&errs) {
            failures += 1;
        }
    }
    failures
}

/// Trials per independent RNG stream in [`logical_error_rate_par`].
///
/// The chunk grid is **fixed** (it depends only on `trials`, never on the
/// thread count): chunk `i` always runs `CHUNK_TRIALS` rounds (the tail
/// chunk takes the remainder) on `Xorshift64Star::stream(seed, i)`, so
/// the failure total is bit-identical whether the chunks execute on 1
/// thread, 8 threads, or the serial `--no-default-features` build.
pub const CHUNK_TRIALS: usize = 256;

/// Estimates the logical-X error rate at physical error probability `p`
/// over `trials` rounds, running trial chunks in parallel on the
/// [`qisim_par`] pool.
///
/// Unlike [`logical_error_rate`], which consumes a caller RNG serially,
/// this estimator derives one SplitMix64-split RNG stream per
/// [`CHUNK_TRIALS`]-trial chunk from `seed`; see [`CHUNK_TRIALS`] for the
/// determinism guarantee. The two entry points sample different streams,
/// so their estimates agree statistically, not bitwise.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]` or `trials == 0`.
///
/// # Examples
///
/// ```
/// use qisim_surface::{montecarlo::logical_error_rate_par, Lattice};
///
/// let lattice = Lattice::new(3);
/// let a = logical_error_rate_par(&lattice, 0.02, 1000, 23);
/// let b = logical_error_rate_par(&lattice, 0.02, 1000, 23);
/// assert_eq!(a, b); // same seed, same estimate — at any thread count
/// ```
pub fn logical_error_rate_par(lattice: &Lattice, p: f64, trials: usize, seed: u64) -> McEstimate {
    assert!((0.0..=1.0).contains(&p), "physical error rate must be a probability");
    assert!(trials > 0, "need at least one trial");
    qisim_obs::span!("surface.montecarlo.par");
    qisim_obs::counter!("surface.montecarlo.trials", trials as u64);
    let graph = DecodingGraph::new(lattice, false);
    let chunks = trials.div_ceil(CHUNK_TRIALS);
    let failures: usize = qisim_par::par_map_indices(chunks, |i| {
        let start = i * CHUNK_TRIALS;
        let len = CHUNK_TRIALS.min(trials - start);
        let mut rng = Xorshift64Star::stream(seed, i as u64);
        run_trials(lattice, &graph, p, len, &mut rng)
    })
    .into_iter()
    .sum();
    qisim_obs::counter!("surface.montecarlo.failures", failures as u64);
    McEstimate { logical_error: failures as f64 / trials as f64, trials, failures }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qisim_quantum::rng::Xorshift64Star;

    #[test]
    fn zero_physical_error_never_fails() {
        let l = Lattice::new(5);
        let mut rng = Xorshift64Star::seed_from_u64(1);
        let est = logical_error_rate(&l, 0.0, 50, &mut rng);
        assert_eq!(est.failures, 0);
    }

    #[test]
    fn below_threshold_larger_d_wins() {
        // Code-capacity threshold of union-find is ≈ 9.9 %; at p = 2 %
        // larger distance must suppress the logical error.
        let mut rng = Xorshift64Star::seed_from_u64(2);
        let p = 0.02;
        let e3 = logical_error_rate(&Lattice::new(3), p, 4000, &mut rng).logical_error;
        let e7 = logical_error_rate(&Lattice::new(7), p, 4000, &mut rng).logical_error;
        assert!(
            e7 < e3 || (e3 == 0.0 && e7 == 0.0),
            "d=7 ({e7}) should beat d=3 ({e3}) below threshold"
        );
    }

    #[test]
    fn above_threshold_code_fails_badly() {
        let mut rng = Xorshift64Star::seed_from_u64(3);
        let est = logical_error_rate(&Lattice::new(5), 0.25, 1000, &mut rng);
        assert!(est.logical_error > 0.1, "p=0.25 logical error {}", est.logical_error);
    }

    #[test]
    fn par_estimate_is_thread_count_independent() {
        let l = Lattice::new(5);
        let reference = logical_error_rate_par(&l, 0.03, 2000, 99);
        for threads in [1usize, 2, 8] {
            qisim_par::set_threads(Some(threads));
            assert_eq!(logical_error_rate_par(&l, 0.03, 2000, 99), reference, "{threads} threads");
        }
        qisim_par::set_threads(None);
    }

    #[test]
    fn par_estimate_matches_the_chunked_serial_reference() {
        // Recompute the fixed chunk grid inline: the parallel estimate
        // must equal this by construction, proving the serial
        // (`--no-default-features`) build produces the same numbers.
        let l = Lattice::new(5);
        let (p, trials, seed) = (0.04, 1100usize, 7u64);
        let graph = DecodingGraph::new(&l, false);
        let mut failures = 0usize;
        let mut start = 0usize;
        let mut chunk = 0u64;
        while start < trials {
            let len = CHUNK_TRIALS.min(trials - start);
            let mut rng = Xorshift64Star::stream(seed, chunk);
            failures += run_trials(&l, &graph, p, len, &mut rng);
            start += len;
            chunk += 1;
        }
        let est = logical_error_rate_par(&l, p, trials, seed);
        assert_eq!(est.failures, failures);
        assert_eq!(est.trials, trials);
    }

    #[test]
    fn par_estimate_agrees_statistically_with_serial() {
        let l = Lattice::new(5);
        let p = 0.06;
        let mut rng = Xorshift64Star::seed_from_u64(11);
        let serial = logical_error_rate(&l, p, 4000, &mut rng).logical_error;
        let par = logical_error_rate_par(&l, p, 4000, 11).logical_error;
        // Different streams, same distribution: within a few sigma.
        let sigma = (serial * (1.0 - serial) / 4000.0).sqrt().max(1e-3);
        assert!((par - serial).abs() < 6.0 * sigma, "par {par} vs serial {serial}");
    }

    #[test]
    fn error_rate_is_monotone_in_p() {
        let l = Lattice::new(5);
        let mut rng = Xorshift64Star::seed_from_u64(4);
        let lo = logical_error_rate(&l, 0.01, 3000, &mut rng).logical_error;
        let hi = logical_error_rate(&l, 0.08, 3000, &mut rng).logical_error;
        assert!(hi >= lo, "p=0.08 ({hi}) vs p=0.01 ({lo})");
    }
}
