//! Monte-Carlo logical-error sampling (code-capacity noise).
//!
//! Samples i.i.d. X errors on the data qubits, decodes with the
//! union-find decoder, and counts logical failures — the numerical
//! ground truth the analytic model of [`crate::analytic`] is validated
//! against at small distances.
//!
//! # The bit-packed kernel
//!
//! The hot loop is allocation-free: error patterns and syndromes live in
//! `u64` bitset words ([`PackedLattice`]), the decoder reuses a
//! [`DecoderScratch`] arena, and two sampling fast paths cut the work at
//! realistic physical error rates:
//!
//! * **geometric-skip placement** — one [`Geometric`] draw per *flipped*
//!   qubit instead of one uniform draw per qubit (exact at any `p`; at
//!   `p = 10⁻³` that is ~1000× less RNG traffic);
//! * **zero-syndrome early exit** — a trial whose error pattern trips no
//!   check (the common case at low `p`, most often because no error was
//!   sampled at all) skips the decoder entirely.
//!
//! Two reference kernels are kept for verification and benchmarking:
//! [`run_trials_reference`] (bool-vec storage + the legacy decoder,
//! sharing the packed kernel's RNG draw sequence — failure counts must
//! match the fast kernel **bit for bit** at any seed) and
//! [`run_trials_legacy`] (the verbatim pre-optimization kernel:
//! one uniform draw per qubit, allocate-per-trial decoding — the
//! `BENCH_mc.json` "before" timing baseline).

pub mod rare;
pub mod sliced;

pub use rare::{logical_error_rate_rare, RareEstimate};
pub use sliced::{logical_error_rate_sliced, logical_error_rate_sliced_par, SlicedStats};

use crate::decoder::{decode_into, decode_reference, DecodeStats, DecoderScratch, DecodingGraph};
use crate::lattice::{Lattice, PackedLattice};
use qisim_quantum::rng::{Geometric, Rng, Xorshift64Star};

/// Result of a logical-error-rate estimation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McEstimate {
    /// Estimated logical error probability per round.
    pub logical_error: f64,
    /// Trials run.
    pub trials: usize,
    /// Failures observed.
    pub failures: usize,
}

/// Per-batch fast-path accounting of the packed kernel, flushed to the
/// `qisim-obs` registry once per estimator call (never per trial).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct McStats {
    /// Trials where no error was sampled at all (the geometric skip
    /// jumped past the last qubit on its first draw).
    pub empty_trials: u64,
    /// Trials with errors but an all-zero syndrome: decode skipped.
    pub zero_syndrome_trials: u64,
    /// Trials that ran the full decode path.
    pub decoded_trials: u64,
}

impl McStats {
    fn merge(&mut self, other: McStats) {
        self.empty_trials += other.empty_trials;
        self.zero_syndrome_trials += other.zero_syndrome_trials;
        self.decoded_trials += other.decoded_trials;
    }
}

/// How one trial's X errors are placed. Built once per batch so the
/// per-trial cost is a branch, not a float comparison cascade.
#[derive(Debug, Clone, Copy)]
enum ErrorSampler {
    /// `p = 0`: nothing flips, no RNG draws.
    None,
    /// `p = 1`: everything flips, no RNG draws.
    All,
    /// `0 < p < 1`: geometric gaps between flipped qubits.
    Skip(Geometric),
}

impl ErrorSampler {
    fn new(p: f64) -> Self {
        if p <= 0.0 {
            ErrorSampler::None
        } else if p >= 1.0 {
            ErrorSampler::All
        } else {
            ErrorSampler::Skip(Geometric::new(p))
        }
    }

    /// Feeds every error position (ascending) to `place`; returns whether
    /// anything was placed. Both the packed kernel and the bool-vec
    /// reference call this, so their RNG draw sequences are identical by
    /// construction.
    #[inline]
    fn sample<R: Rng, F: FnMut(usize)>(&self, n: usize, rng: &mut R, mut place: F) -> bool {
        match self {
            ErrorSampler::None => false,
            ErrorSampler::All => {
                for q in 0..n {
                    place(q);
                }
                n > 0
            }
            // One draw per flipped qubit; the saturating walk in
            // `Geometric::positions` can neither overflow nor spin.
            ErrorSampler::Skip(geo) => geo.positions(n, rng, place),
        }
    }
}

/// Reusable per-thread buffers of the packed kernel: the error and
/// syndrome bitsets plus the decoder arena. One allocation per batch
/// (or per parallel chunk), zero per trial.
#[derive(Debug, Clone)]
pub struct McScratch {
    errs: Vec<u64>,
    syndrome: Vec<u64>,
    decoder: DecoderScratch,
    stats: McStats,
}

impl McScratch {
    /// Allocates scratch sized for `packed` and `graph`.
    pub fn new(packed: &PackedLattice, graph: &DecodingGraph) -> Self {
        McScratch {
            errs: vec![0; packed.qubit_words()],
            syndrome: vec![0; graph.syndrome_words()],
            decoder: DecoderScratch::new(graph),
            stats: McStats::default(),
        }
    }

    /// Fast-path counters accumulated since construction (or the last
    /// [`Self::take_stats`]).
    pub fn stats(&self) -> McStats {
        self.stats
    }

    /// Returns and resets the accumulated fast-path counters (decoder
    /// work counters travel separately via the inner arena).
    pub fn take_stats(&mut self) -> (McStats, DecodeStats) {
        (std::mem::take(&mut self.stats), self.decoder.take_stats())
    }
}

/// The bit-packed sample-decode-check kernel: returns the number of
/// logical failures in `trials` rounds, touching no heap memory beyond
/// `scratch`.
///
/// This is the engine behind [`logical_error_rate`] and
/// [`logical_error_rate_par`]; it is public so benches and equivalence
/// tests can drive it directly against the reference kernels.
pub fn run_trials_packed<R: Rng>(
    packed: &PackedLattice,
    graph: &DecodingGraph,
    p: f64,
    trials: usize,
    rng: &mut R,
    scratch: &mut McScratch,
) -> usize {
    let n = packed.data_qubits();
    let sampler = ErrorSampler::new(p);
    let mut failures = 0usize;
    for _ in 0..trials {
        scratch.errs.fill(0);
        let errs = &mut scratch.errs;
        let any_error = sampler.sample(n, rng, |q| PackedLattice::set_bit(errs, q));
        if !any_error {
            // Fast path 1: nothing flipped, nothing to decode or check.
            scratch.stats.empty_trials += 1;
            continue;
        }
        if !packed.z_syndrome_into(&scratch.errs, &mut scratch.syndrome) {
            // Fast path 2: errors present but no check tripped — the
            // decoder would return an empty correction, so only the
            // logical-membrane parity is left to check.
            scratch.stats.zero_syndrome_trials += 1;
            if packed.is_logical_x(&scratch.errs) {
                failures += 1;
            }
            continue;
        }
        scratch.stats.decoded_trials += 1;
        for &q in decode_into(graph, &scratch.syndrome, &mut scratch.decoder) {
            PackedLattice::flip_bit(&mut scratch.errs, q);
        }
        debug_assert!(
            !packed.z_syndrome_into(&scratch.errs, &mut scratch.syndrome),
            "decoder left residual syndrome"
        );
        if packed.is_logical_x(&scratch.errs) {
            failures += 1;
        }
    }
    failures
}

/// Bool-vec oracle for the packed kernel: identical geometric-skip RNG
/// draw sequence, but per-qubit `Vec<bool>` storage, the naive
/// [`Lattice::z_syndrome`], and the allocate-per-call
/// [`decode_reference`]. For any `(lattice, p, trials, rng state)` its
/// failure count equals [`run_trials_packed`]'s **bit for bit** — the
/// equivalence suite and `examples/bench_mc.rs` pin this.
pub fn run_trials_reference<R: Rng>(
    lattice: &Lattice,
    graph: &DecodingGraph,
    p: f64,
    trials: usize,
    rng: &mut R,
) -> usize {
    let n = lattice.data_qubits();
    let sampler = ErrorSampler::new(p);
    let mut failures = 0usize;
    for _ in 0..trials {
        let mut errs = vec![false; n];
        let any = sampler.sample(n, rng, |q| errs[q] = true);
        if any {
            let syn = lattice.z_syndrome(&errs);
            for q in decode_reference(graph, &syn) {
                errs[q] ^= true;
            }
        }
        debug_assert!(lattice.z_syndrome(&errs).iter().all(|b| !b));
        if lattice.is_logical_x(&errs) {
            failures += 1;
        }
    }
    failures
}

/// The verbatim pre-optimization kernel — one uniform draw per qubit,
/// allocate-per-trial syndrome extraction and decoding, no fast paths.
/// Kept as the `BENCH_mc.json` "before" timing baseline (its RNG draw
/// sequence predates geometric skipping, so its failure counts match the
/// packed kernel only statistically, not bitwise).
pub fn run_trials_legacy<R: Rng>(
    lattice: &Lattice,
    graph: &DecodingGraph,
    p: f64,
    trials: usize,
    rng: &mut R,
) -> usize {
    let n = lattice.data_qubits();
    let mut failures = 0usize;
    for _ in 0..trials {
        let mut errs = vec![false; n];
        for e in errs.iter_mut() {
            *e = rng.gen_f64() < p;
        }
        let syn = lattice.z_syndrome(&errs);
        for q in decode_reference(graph, &syn) {
            errs[q] ^= true;
        }
        debug_assert!(lattice.z_syndrome(&errs).iter().all(|b| !b));
        if lattice.is_logical_x(&errs) {
            failures += 1;
        }
    }
    failures
}

/// Flight-recorder sampling stride for per-chunk Monte-Carlo events:
/// `QISIM_TRACE_SAMPLE` (a positive integer, default 1 = every chunk,
/// anything else clamps to 1). Chunk events are emitted per *chunk*,
/// never per trial, so even stride 1 is one ring-buffer write per
/// [`CHUNK_TRIALS`] trials; larger strides thin out huge sweeps.
fn trace_sample() -> usize {
    static SAMPLE: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *SAMPLE.get_or_init(|| {
        std::env::var("QISIM_TRACE_SAMPLE")
            .ok()
            .and_then(|raw| raw.trim().parse::<usize>().ok())
            .map_or(1, |n| n.max(1))
    })
}

/// Flushes per-batch kernel counters to the `qisim-obs` registry.
fn flush_obs(failures: usize, mc: McStats, dec: DecodeStats) {
    qisim_obs::counter!("surface.montecarlo.failures", failures as u64);
    qisim_obs::counter!("surface.montecarlo.fastpath.empty", mc.empty_trials);
    qisim_obs::counter!("surface.montecarlo.fastpath.zero_syndrome", mc.zero_syndrome_trials);
    qisim_obs::counter!("surface.montecarlo.decoded", mc.decoded_trials);
    qisim_obs::counter!("surface.decoder.rounds", dec.rounds);
    qisim_obs::counter!("surface.decoder.frontier_edges", dec.edges_grown);
}

/// Estimates the logical-X error rate at physical error probability `p`
/// over `trials` rounds.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]` or `trials == 0`.
pub fn logical_error_rate<R: Rng>(
    lattice: &Lattice,
    p: f64,
    trials: usize,
    rng: &mut R,
) -> McEstimate {
    assert!((0.0..=1.0).contains(&p), "physical error rate must be a probability");
    assert!(trials > 0, "need at least one trial");
    qisim_obs::span!("surface.montecarlo");
    qisim_obs::counter!("surface.montecarlo.trials", trials as u64);
    let graph = DecodingGraph::new(lattice, false);
    let packed = PackedLattice::new(lattice);
    let mut scratch = McScratch::new(&packed, &graph);
    // The whole serial run is one batch; the packed kernel itself stays
    // untouched (the timer sits outside it).
    let t0 = qisim_obs::enabled().then(std::time::Instant::now);
    let failures = run_trials_packed(&packed, &graph, p, trials, rng, &mut scratch);
    if let Some(t0) = t0 {
        qisim_obs::observe!("surface.montecarlo.trial_batch_ns", t0.elapsed().as_nanos() as f64);
    }
    let (mc, dec) = scratch.take_stats();
    flush_obs(failures, mc, dec);
    McEstimate { logical_error: failures as f64 / trials as f64, trials, failures }
}

/// Trials per independent RNG stream in [`logical_error_rate_par`].
///
/// The chunk grid is **fixed** (it depends only on `trials`, never on the
/// thread count): chunk `i` always runs `CHUNK_TRIALS` rounds (the tail
/// chunk takes the remainder) on `Xorshift64Star::stream(seed, i)`, so
/// the failure total is bit-identical whether the chunks execute on 1
/// thread, 8 threads, or the serial `--no-default-features` build.
///
/// Remainder handling: with `trials = k·CHUNK_TRIALS + r` (`0 < r <
/// CHUNK_TRIALS`), chunks `0..k` each run `CHUNK_TRIALS` trials and the
/// final chunk `k` runs exactly `r` — `CHUNK_TRIALS.min(trials − start)`
/// never over- or under-counts because the chunk count is
/// `trials.div_ceil(CHUNK_TRIALS)`. The `trials = 1000` and `trials =
/// 257` regression tests pin this against a serial chunk replay.
pub const CHUNK_TRIALS: usize = 256;

/// Estimates the logical-X error rate at physical error probability `p`
/// over `trials` rounds, running trial chunks in parallel on the
/// [`qisim_par`] pool.
///
/// Unlike [`logical_error_rate`], which consumes a caller RNG serially,
/// this estimator derives one SplitMix64-split RNG stream per
/// [`CHUNK_TRIALS`]-trial chunk from `seed`; see [`CHUNK_TRIALS`] for the
/// determinism guarantee. The two entry points sample different streams,
/// so their estimates agree statistically, not bitwise. Every chunk runs
/// the bit-packed kernel with its own [`McScratch`]: one arena
/// allocation per chunk, zero allocations per trial.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]` or `trials == 0`.
///
/// # Examples
///
/// ```
/// use qisim_surface::{montecarlo::logical_error_rate_par, Lattice};
///
/// let lattice = Lattice::new(3);
/// let a = logical_error_rate_par(&lattice, 0.02, 1000, 23);
/// let b = logical_error_rate_par(&lattice, 0.02, 1000, 23);
/// assert_eq!(a, b); // same seed, same estimate — at any thread count
/// ```
pub fn logical_error_rate_par(lattice: &Lattice, p: f64, trials: usize, seed: u64) -> McEstimate {
    assert!((0.0..=1.0).contains(&p), "physical error rate must be a probability");
    assert!(trials > 0, "need at least one trial");
    qisim_obs::span!("surface.montecarlo.par");
    qisim_obs::counter!("surface.montecarlo.trials", trials as u64);
    let graph = DecodingGraph::new(lattice, false);
    let packed = PackedLattice::new(lattice);
    let chunks = trials.div_ceil(CHUNK_TRIALS);
    let per_chunk: Vec<(usize, McStats, DecodeStats)> = qisim_par::par_map_indices(chunks, |i| {
        let start = i * CHUNK_TRIALS;
        let len = CHUNK_TRIALS.min(trials - start);
        if qisim_obs::trace::armed() && i % trace_sample() == 0 {
            qisim_obs::trace::instant(
                "surface.montecarlo.chunk",
                &[("chunk", i as f64), ("trials", len as f64)],
            );
        }
        let mut rng = Xorshift64Star::stream(seed, i as u64);
        let mut scratch = McScratch::new(&packed, &graph);
        // Per-chunk latency distribution for the telemetry exporter;
        // the packed kernel itself stays untouched.
        let t0 = qisim_obs::enabled().then(std::time::Instant::now);
        let failures = run_trials_packed(&packed, &graph, p, len, &mut rng, &mut scratch);
        if let Some(t0) = t0 {
            qisim_obs::observe!(
                "surface.montecarlo.trial_batch_ns",
                t0.elapsed().as_nanos() as f64
            );
        }
        let (mc, dec) = scratch.take_stats();
        (failures, mc, dec)
    });
    let mut failures = 0usize;
    let mut mc = McStats::default();
    let mut dec = DecodeStats::default();
    for (f, m, d) in per_chunk {
        failures += f;
        mc.merge(m);
        dec.decodes += d.decodes;
        dec.rounds += d.rounds;
        dec.edges_grown += d.edges_grown;
    }
    flush_obs(failures, mc, dec);
    McEstimate { logical_error: failures as f64 / trials as f64, trials, failures }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qisim_quantum::rng::Xorshift64Star;

    #[test]
    fn zero_physical_error_never_fails() {
        let l = Lattice::new(5);
        let mut rng = Xorshift64Star::seed_from_u64(1);
        let est = logical_error_rate(&l, 0.0, 50, &mut rng);
        assert_eq!(est.failures, 0);
    }

    #[test]
    fn certain_physical_error_flips_everything() {
        // p = 1 exercises the ErrorSampler::All branch: every qubit
        // flips, deterministically, with zero RNG draws.
        let l = Lattice::new(5);
        let mut rng = Xorshift64Star::seed_from_u64(1);
        let before = rng.clone();
        let est = logical_error_rate(&l, 1.0, 10, &mut rng);
        assert_eq!(rng, before, "p = 1 must consume no randomness");
        // The all-ones pattern has zero syndrome; its logical parity is
        // the row length d = 5, which is odd → always a failure.
        assert_eq!(est.failures, 10);
    }

    #[test]
    fn below_threshold_larger_d_wins() {
        // Code-capacity threshold of union-find is ≈ 9.9 %; at p = 2 %
        // larger distance must suppress the logical error.
        let mut rng = Xorshift64Star::seed_from_u64(2);
        let p = 0.02;
        let e3 = logical_error_rate(&Lattice::new(3), p, 4000, &mut rng).logical_error;
        let e7 = logical_error_rate(&Lattice::new(7), p, 4000, &mut rng).logical_error;
        assert!(
            e7 < e3 || (e3 == 0.0 && e7 == 0.0),
            "d=7 ({e7}) should beat d=3 ({e3}) below threshold"
        );
    }

    #[test]
    fn above_threshold_code_fails_badly() {
        let mut rng = Xorshift64Star::seed_from_u64(3);
        let est = logical_error_rate(&Lattice::new(5), 0.25, 1000, &mut rng);
        assert!(est.logical_error > 0.1, "p=0.25 logical error {}", est.logical_error);
    }

    #[test]
    fn packed_kernel_matches_bool_vec_reference_bit_for_bit() {
        // The tentpole contract: same seed → same failure count, across
        // the distance/error grid of the acceptance criteria.
        for d in [3usize, 5, 7] {
            let l = Lattice::new(d);
            let graph = DecodingGraph::new(&l, false);
            let packed = PackedLattice::new(&l);
            let mut scratch = McScratch::new(&packed, &graph);
            for p in [0.001f64, 0.01, 0.1] {
                let seed = 0xC0FFEE ^ (d as u64) << 8 ^ p.to_bits();
                let fast = {
                    let mut rng = Xorshift64Star::seed_from_u64(seed);
                    run_trials_packed(&packed, &graph, p, 600, &mut rng, &mut scratch)
                };
                let reference = {
                    let mut rng = Xorshift64Star::seed_from_u64(seed);
                    run_trials_reference(&l, &graph, p, 600, &mut rng)
                };
                assert_eq!(fast, reference, "d={d} p={p}");
            }
        }
    }

    #[test]
    fn legacy_kernel_agrees_statistically_with_packed() {
        // The pre-PR kernel samples a different draw sequence, so only
        // the estimates (not the counts) must agree.
        let l = Lattice::new(5);
        let (p, trials) = (0.08, 4000);
        let graph = DecodingGraph::new(&l, false);
        let mut rng = Xorshift64Star::seed_from_u64(77);
        let legacy = run_trials_legacy(&l, &graph, p, trials, &mut rng) as f64 / trials as f64;
        let packed = logical_error_rate_par(&l, p, trials, 77).logical_error;
        let sigma = (legacy * (1.0 - legacy) / trials as f64).sqrt().max(1e-3);
        assert!((packed - legacy).abs() < 6.0 * sigma, "packed {packed} vs legacy {legacy}");
    }

    #[test]
    fn par_estimate_is_thread_count_independent() {
        let l = Lattice::new(5);
        let reference = logical_error_rate_par(&l, 0.03, 2000, 99);
        for threads in [1usize, 2, 8] {
            qisim_par::set_threads(Some(threads));
            assert_eq!(logical_error_rate_par(&l, 0.03, 2000, 99), reference, "{threads} threads");
        }
        qisim_par::set_threads(None);
    }

    /// Serial replay of the fixed chunk grid: what the parallel estimate
    /// must equal by construction at any thread count.
    fn chunked_serial_failures(l: &Lattice, p: f64, trials: usize, seed: u64) -> usize {
        let graph = DecodingGraph::new(l, false);
        let packed = PackedLattice::new(l);
        let mut scratch = McScratch::new(&packed, &graph);
        let mut failures = 0usize;
        let mut start = 0usize;
        let mut chunk = 0u64;
        while start < trials {
            let len = CHUNK_TRIALS.min(trials - start);
            let mut rng = Xorshift64Star::stream(seed, chunk);
            failures += run_trials_packed(&packed, &graph, p, len, &mut rng, &mut scratch);
            start += len;
            chunk += 1;
        }
        failures
    }

    #[test]
    fn par_estimate_matches_the_chunked_serial_reference() {
        let l = Lattice::new(5);
        let (p, trials, seed) = (0.04, 1100usize, 7u64);
        let est = logical_error_rate_par(&l, p, trials, seed);
        assert_eq!(est.failures, chunked_serial_failures(&l, p, trials, seed));
        assert_eq!(est.trials, trials);
    }

    #[test]
    fn remainder_chunks_are_neither_dropped_nor_double_counted() {
        // trials = 1000 = 3·256 + 232 and trials = 257 = 256 + 1: the
        // tail chunk must run exactly the remainder, at any thread count.
        let l = Lattice::new(5);
        for (trials, seed) in [(1000usize, 41u64), (257, 42)] {
            let serial = chunked_serial_failures(&l, 0.05, trials, seed);
            for threads in [1usize, 2, 3] {
                qisim_par::set_threads(Some(threads));
                let est = logical_error_rate_par(&l, 0.05, trials, seed);
                assert_eq!(est.failures, serial, "trials={trials} threads={threads}");
                assert_eq!(est.trials, trials);
            }
            qisim_par::set_threads(None);
        }
    }

    #[test]
    fn par_estimate_agrees_statistically_with_serial() {
        let l = Lattice::new(5);
        let p = 0.06;
        let mut rng = Xorshift64Star::seed_from_u64(11);
        let serial = logical_error_rate(&l, p, 4000, &mut rng).logical_error;
        let par = logical_error_rate_par(&l, p, 4000, 11).logical_error;
        // Different streams, same distribution: within a few sigma.
        let sigma = (serial * (1.0 - serial) / 4000.0).sqrt().max(1e-3);
        assert!((par - serial).abs() < 6.0 * sigma, "par {par} vs serial {serial}");
    }

    #[test]
    fn error_rate_is_monotone_in_p() {
        let l = Lattice::new(5);
        let mut rng = Xorshift64Star::seed_from_u64(4);
        let lo = logical_error_rate(&l, 0.01, 3000, &mut rng).logical_error;
        let hi = logical_error_rate(&l, 0.08, 3000, &mut rng).logical_error;
        assert!(hi >= lo, "p=0.08 ({hi}) vs p=0.01 ({lo})");
    }

    #[test]
    fn fast_path_counters_partition_the_trials() {
        let l = Lattice::new(7);
        let graph = DecodingGraph::new(&l, false);
        let packed = PackedLattice::new(&l);
        let mut scratch = McScratch::new(&packed, &graph);
        let mut rng = Xorshift64Star::seed_from_u64(8);
        let trials = 2000usize;
        let _ = run_trials_packed(&packed, &graph, 0.002, trials, &mut rng, &mut scratch);
        let (mc, dec) = scratch.take_stats();
        assert_eq!(
            mc.empty_trials + mc.zero_syndrome_trials + mc.decoded_trials,
            trials as u64,
            "{mc:?}"
        );
        assert!(mc.empty_trials > mc.decoded_trials, "p=0.002 is dominated by empty trials");
        assert_eq!(dec.decodes, mc.decoded_trials, "decoder ran exactly on the slow-path trials");
        // Second batch accumulates from zero after take_stats.
        let _ = run_trials_packed(&packed, &graph, 0.5, 10, &mut rng, &mut scratch);
        assert_eq!(
            scratch.stats().empty_trials
                + scratch.stats().zero_syndrome_trials
                + scratch.stats().decoded_trials,
            10
        );
    }
}
