//! # qisim-surface
//!
//! Surface-code substrate for the QIsim scalability framework
//! (reproduction of Min et al., *QIsim*, ISCA 2023 — §2.1 and §6.1):
//!
//! * [`lattice`] — rotated surface-code patches (data/ancilla layout,
//!   stabilizer supports, logical operators) plus the bit-packed
//!   [`PackedLattice`] view the Monte-Carlo hot loop runs on;
//! * [`decoder`] — a union-find decoder with peeling: an allocation-free
//!   scratch-arena engine with an active-frontier growth stage, and the
//!   original implementation kept as its verification oracle;
//! * [`montecarlo`] — sampled logical-error rates validating the model
//!   (geometric-skip error placement, zero-syndrome early exit);
//! * [`analytic`] — the calibrated `p_L = A·(p_eff/p_th)^((d+1)/2)` model
//!   the scalability engine evaluates;
//! * [`target`] — the Jellium quantum-supremacy error/scale targets
//!   (1,152 qubits at 1.11e-11; 62,208 qubits at 1.69e-17).
//!
//! # Examples
//!
//! ```
//! use qisim_surface::{analytic::{cmos_budget, CALIBRATION}, target::Target};
//!
//! let p_l = cmos_budget(1117.0).logical_error(23, &CALIBRATION);
//! assert!(Target::near_term().met_by(p_l));   // near-term: fine
//! assert!(!Target::long_term().met_by(p_l));  // long-term: needs Opt-7
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analytic;
pub mod decoder;
pub mod lattice;
pub mod montecarlo;
pub mod target;

pub use analytic::{Calibration, PhysicalBudget, CALIBRATION};
pub use lattice::{Lattice, PackedLattice};
pub use target::Target;
