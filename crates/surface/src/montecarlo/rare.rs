//! Multilevel-splitting / importance-sampling estimator for rare logical
//! errors.
//!
//! Naive Monte-Carlo needs `≥ 1/p_L` trials to see one failure; at the
//! paper's operating points (`p_L ≈ 5·10⁻¹⁴`, BENCH_obs.json) that is
//! `10¹³+` trials — unreachable even for the bit-sliced kernel. This
//! module gets real statistics there by **biasing the physical error
//! rate upward in stages** and reweighting each observed failure by its
//! exact likelihood ratio:
//!
//! * a geometric ladder of stage rates `q₀ > q₁ > … > q_{m−1} = p` runs
//!   from a failure-rich anchor (`q₀ = 0.08`, just below the union-find
//!   code-capacity threshold ≈ 0.099) down to the target rate;
//! * stage `j` samples i.i.d. X errors at rate `qⱼ` and weights every
//!   *failing* trial with `k` flipped qubits by
//!   `w = (p/qⱼ)ᵏ · ((1−p)/(1−qⱼ))^(n−k)` — the exact density ratio, so
//!   every stage is an **unbiased** estimator of the true `p_L(p)` at
//!   any bias;
//! * stages that observed at least one failure are combined by
//!   inverse-variance weighting, yielding a point estimate and a 95 %
//!   normal-approximation confidence interval.
//!
//! The estimate is cross-checkable against [`small_p_expansion`]: the
//! **exact** leading-order expansion `p_L(p) = Σ_k N_k·pᵏ(1−p)^(n−k)`
//! obtained by enumerating every error pattern up to a weight cutoff and
//! decoding it — deterministic ground truth in the deep-tail regime
//! where the lowest miscorrected weight dominates. `bench_mc --smoke`
//! gates the d = 5 estimate against it at `p = 10⁻⁷` (`p_L ≈ 4·10⁻¹³`,
//! where naive MC would need over 10¹² trials per expected failure).

use super::{decode_into, ErrorSampler, McScratch};
use crate::decoder::DecodingGraph;
use crate::lattice::{Lattice, PackedLattice};
use qisim_quantum::rng::Xorshift64Star;

/// Result of a rare-event importance-sampling estimation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RareEstimate {
    /// Inverse-variance-combined logical error probability per round.
    pub logical_error: f64,
    /// Lower edge of the 95 % confidence interval (clamped at 0).
    pub ci_low: f64,
    /// Upper edge of the 95 % confidence interval (clamped at 1).
    pub ci_high: f64,
    /// Stages that observed at least one failure and therefore carry
    /// weight in the combination (the `surface.rare.stage_weights`
    /// counter).
    pub stages: usize,
    /// Total trials across all stages of the ladder.
    pub trials: usize,
}

/// The failure-rich anchor rate of the splitting ladder: close enough to
/// the union-find code-capacity threshold (≈ 0.099) that failures are
/// plentiful at every distance, far enough below it that the decoder
/// still suppresses with distance.
const Q_TOP: f64 = 0.08;

/// Rate ratio between adjacent ladder stages (≈ ×4 per step).
const STAGE_STEP: f64 = 4.0;

/// Ladder bounds: at least top + target, at most 12 stages.
const MAX_STAGES: usize = 12;

/// The geometric ladder of biased stage rates for target rate `p`:
/// `q₀ = Q_TOP` down to `q_{m−1} = p` in roughly ×`STAGE_STEP` (= 4)
/// steps (single stage `[p]` when `p ≥ Q_TOP`). Exposed so tests and
/// docs can show the splitting schedule.
pub fn stage_rates(p: f64) -> Vec<f64> {
    if p >= Q_TOP {
        return vec![p];
    }
    let steps = (Q_TOP / p).ln() / STAGE_STEP.ln();
    let m = (steps.ceil() as usize + 1).clamp(2, MAX_STAGES);
    (0..m).map(|j| Q_TOP * (p / Q_TOP).powf(j as f64 / (m - 1) as f64)).collect()
}

/// One stage's accumulators: the weighted failure mean and the variance
/// of that mean.
struct StageEstimate {
    mean: f64,
    var: f64,
    failures: usize,
}

/// Runs one ladder stage: samples at biased rate `q`, decodes, and
/// accumulates likelihood-ratio weights for the failing trials.
fn run_stage(
    packed: &PackedLattice,
    graph: &DecodingGraph,
    p: f64,
    q: f64,
    trials: usize,
    rng: &mut Xorshift64Star,
    scratch: &mut McScratch,
) -> StageEstimate {
    let n = packed.data_qubits();
    let sampler = ErrorSampler::new(q);
    let lr_hit = (p / q).ln();
    let lr_miss = ((1.0 - p) / (1.0 - q)).ln();
    let mut sum_w = 0.0f64;
    let mut sum_w2 = 0.0f64;
    let mut failures = 0usize;
    for _ in 0..trials {
        scratch.errs.fill(0);
        let mut k = 0usize;
        let errs = &mut scratch.errs;
        let any = sampler.sample(n, rng, |bit| {
            PackedLattice::set_bit(errs, bit);
            k += 1;
        });
        if !any {
            continue; // no errors → no failure → zero weight
        }
        if packed.z_syndrome_into(&scratch.errs, &mut scratch.syndrome) {
            for &qubit in decode_into(graph, &scratch.syndrome, &mut scratch.decoder) {
                PackedLattice::flip_bit(&mut scratch.errs, qubit);
            }
        }
        if packed.is_logical_x(&scratch.errs) {
            // Exact likelihood ratio of this pattern under p vs q,
            // computed in log space so deep-tail weights stay finite.
            let w = (k as f64 * lr_hit + (n - k) as f64 * lr_miss).exp();
            sum_w += w;
            sum_w2 += w * w;
            failures += 1;
        }
    }
    let nt = trials as f64;
    let mean = sum_w / nt;
    // Sample variance of the mean of w·fail; clamped at a Poisson-ish
    // floor for the degenerate all-identical-weight case.
    let raw = (sum_w2 / nt - mean * mean) / (nt - 1.0).max(1.0);
    let var = if raw > 0.0 { raw } else { (mean * mean / nt).max(f64::MIN_POSITIVE) };
    StageEstimate { mean, var, failures }
}

/// Estimates the logical-X error rate at physical error probability `p`
/// by multilevel importance sampling, with a real 95 % confidence
/// interval even where naive Monte-Carlo would need `≥ 10¹²` trials.
///
/// Runs [`stage_rates`]`(p).len()` stages of `trials_per_stage` trials
/// each (stage `j` on `Xorshift64Star::stream(seed, j)` — deterministic
/// for a given `(p, trials_per_stage, seed)`), then combines the
/// contributing stages by inverse variance. When **no** stage observes a
/// failure the estimate is 0 with a degenerate interval `[0, 0]` and
/// `stages == 0` — the caller can widen `trials_per_stage` or read
/// `stages` to detect it.
///
/// This is a **new** entry point; the plain estimators in [`super`] are
/// untouched.
///
/// # Panics
///
/// Panics unless `0 < p < 1` (a rare-event estimate of a degenerate rate
/// is meaningless) or if `trials_per_stage < 2`.
///
/// # Examples
///
/// ```
/// use qisim_surface::{montecarlo, Lattice};
///
/// let lattice = Lattice::new(3);
/// let est = montecarlo::logical_error_rate_rare(&lattice, 1e-4, 2000, 7);
/// assert!(est.ci_low <= est.logical_error && est.logical_error <= est.ci_high);
/// ```
pub fn logical_error_rate_rare(
    lattice: &Lattice,
    p: f64,
    trials_per_stage: usize,
    seed: u64,
) -> RareEstimate {
    assert!(p > 0.0 && p < 1.0, "rare-event estimation needs 0 < p < 1, got {p}");
    assert!(trials_per_stage >= 2, "need at least two trials per stage");
    qisim_obs::span!("surface.montecarlo.rare");
    let graph = DecodingGraph::new(lattice, false);
    let packed = PackedLattice::new(lattice);
    let mut scratch = McScratch::new(&packed, &graph);
    let rates = stage_rates(p);
    let mut num = 0.0f64;
    let mut den = 0.0f64;
    let mut contributing = 0usize;
    for (j, &q) in rates.iter().enumerate() {
        let mut rng = Xorshift64Star::stream(seed, j as u64);
        let stage = run_stage(&packed, &graph, p, q, trials_per_stage, &mut rng, &mut scratch);
        if stage.failures == 0 {
            continue;
        }
        num += stage.mean / stage.var;
        den += 1.0 / stage.var;
        contributing += 1;
    }
    let trials = trials_per_stage * rates.len();
    qisim_obs::counter!("surface.rare.trials", trials as u64);
    qisim_obs::counter!("surface.rare.stage_weights", contributing as u64);
    if den == 0.0 {
        return RareEstimate { logical_error: 0.0, ci_low: 0.0, ci_high: 0.0, stages: 0, trials };
    }
    let est = num / den;
    let sd = (1.0 / den).sqrt();
    RareEstimate {
        logical_error: est,
        ci_low: (est - 1.96 * sd).max(0.0),
        ci_high: (est + 1.96 * sd).min(1.0),
        stages: contributing,
        trials,
    }
}

/// Visits every `k`-combination of `0..n` in lexicographic order.
fn each_combination<F: FnMut(&[usize])>(n: usize, k: usize, mut f: F) {
    if k == 0 || k > n {
        return;
    }
    let mut idx: Vec<usize> = (0..k).collect();
    'outer: loop {
        f(&idx);
        let mut i = k - 1;
        loop {
            if idx[i] < i + n - k {
                idx[i] += 1;
                for j in i + 1..k {
                    idx[j] = idx[j - 1] + 1;
                }
                continue 'outer;
            }
            if i == 0 {
                break 'outer;
            }
            i -= 1;
        }
    }
}

/// The **exact** small-`p` expansion of the logical error rate up to
/// error weight `max_weight`: enumerates every X-error pattern of weight
/// `1..=max_weight`, decodes it, and sums
/// `N_k · pᵏ · (1−p)^(n−k)` over the failing counts `N_k`.
///
/// For `p` deep below threshold the `k = ⌈d/2⌉` term dominates and the
/// truncation error is `O((np)^{max_weight+1−⌈d/2⌉})` relative — at the
/// rare-event operating points this is ground truth to many digits,
/// which is what the importance-sampling CI is gated against. Cost is
/// `Σ_k C(n, k)` decodes (≈ 15 k for `d = 5`, `max_weight = 4`), done
/// once, allocation-free.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1)`.
pub fn small_p_expansion(lattice: &Lattice, max_weight: usize, p: f64) -> f64 {
    assert!((0.0..1.0).contains(&p), "expansion rate must be in [0, 1)");
    let graph = DecodingGraph::new(lattice, false);
    let packed = PackedLattice::new(lattice);
    let mut scratch = McScratch::new(&packed, &graph);
    let n = lattice.data_qubits();
    let mut total = 0.0f64;
    for k in 1..=max_weight.min(n) {
        let mut failing = 0u64;
        each_combination(n, k, |pattern| {
            scratch.errs.fill(0);
            for &q in pattern {
                PackedLattice::set_bit(&mut scratch.errs, q);
            }
            if packed.z_syndrome_into(&scratch.errs, &mut scratch.syndrome) {
                for &q in decode_into(&graph, &scratch.syndrome, &mut scratch.decoder) {
                    PackedLattice::flip_bit(&mut scratch.errs, q);
                }
            }
            if packed.is_logical_x(&scratch.errs) {
                failing += 1;
            }
        });
        total += failing as f64 * p.powi(k as i32) * (1.0 - p).powi((n - k) as i32);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::super::logical_error_rate_par;
    use super::*;

    #[test]
    fn ladder_is_descending_and_anchored() {
        for p in [1e-3, 1e-5, 1e-8, 1e-12] {
            let rates = stage_rates(p);
            assert!((2..=MAX_STAGES).contains(&rates.len()), "p={p}: {rates:?}");
            assert_eq!(rates[0], Q_TOP);
            let last = *rates.last().unwrap_or(&0.0);
            assert!((last / p - 1.0).abs() < 1e-9, "p={p}: ladder ends at {last}");
            assert!(rates.windows(2).all(|w| w[0] > w[1]), "p={p}: not descending {rates:?}");
        }
        assert_eq!(stage_rates(0.2), vec![0.2], "above-anchor p is a single plain-MC stage");
    }

    #[test]
    fn estimate_is_deterministic() {
        let l = Lattice::new(3);
        let a = logical_error_rate_rare(&l, 1e-4, 1000, 42);
        let b = logical_error_rate_rare(&l, 1e-4, 1000, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn ci_covers_direct_monte_carlo_at_a_feasible_rate() {
        // Where naive MC still works, the IS estimate must agree with it.
        let l = Lattice::new(3);
        let p = 0.02;
        let direct = logical_error_rate_par(&l, p, 200_000, 5);
        let sigma = (direct.logical_error * (1.0 - direct.logical_error) / 200_000.0).sqrt();
        let rare = logical_error_rate_rare(&l, p, 20_000, 5);
        assert!(rare.stages >= 1, "{rare:?}");
        assert!(
            rare.ci_low - 4.0 * sigma <= direct.logical_error
                && direct.logical_error <= rare.ci_high + 4.0 * sigma,
            "IS {rare:?} vs direct {direct:?} (σ = {sigma})"
        );
    }

    #[test]
    fn ci_is_finite_and_covers_the_exact_expansion_deep_in_the_tail() {
        // The acceptance operating point: d = 5 at p = 10⁻⁷. Union-find
        // miscorrects a handful of weight-2 patterns at d = 5, so
        // p_L ≈ N₂·p² ≈ 4·10⁻¹³ — naive MC would need ≥ 10¹² trials
        // for a single expected failure.
        let l = Lattice::new(5);
        let p = 1e-7;
        let exact = small_p_expansion(&l, 4, p);
        assert!(exact > 0.0 && exact < 1e-12, "naive MC must be infeasible here, got {exact}");
        let rare = logical_error_rate_rare(&l, p, 20_000, 11);
        assert!(rare.stages >= 1, "{rare:?}");
        assert!(rare.ci_high.is_finite() && rare.ci_high > rare.ci_low, "{rare:?}");
        assert!(
            rare.ci_low <= exact && exact <= rare.ci_high,
            "95% CI [{:.3e}, {:.3e}] must cover exact {exact:.3e}",
            rare.ci_low,
            rare.ci_high
        );
    }

    #[test]
    fn expansion_matches_a_hand_countable_case() {
        // d = 2: 4 data qubits, logical-Z̄ row {0, 1}, one Z-check. The
        // minimal failing patterns are weight-1 errors on the row that
        // the single check cannot localize — the expansion must be
        // Θ(p¹) and monotone in p.
        let l = Lattice::new(2);
        let lo = small_p_expansion(&l, 2, 1e-6);
        let hi = small_p_expansion(&l, 2, 1e-3);
        assert!(lo > 0.0 && hi > lo, "lo={lo} hi={hi}");
        assert!((lo / 1e-6).round() >= 1.0, "leading term must be linear in p");
    }

    #[test]
    fn expansion_agrees_with_direct_mc_at_moderate_p() {
        let l = Lattice::new(3);
        let p = 0.01;
        // d = 3, n = 9: enumerate everything up to weight 4 (255
        // patterns); truncation error is O((np)¹) ≈ 10 % relative.
        let exact = small_p_expansion(&l, 4, p);
        let direct = logical_error_rate_par(&l, p, 400_000, 9);
        let sigma = (direct.logical_error / 400_000.0).sqrt();
        assert!(
            (exact - direct.logical_error).abs() < 0.15 * exact + 6.0 * sigma,
            "expansion {exact} vs direct {}",
            direct.logical_error
        );
    }

    #[test]
    fn combinations_visit_the_binomial_count() {
        let mut count = 0u64;
        each_combination(6, 3, |idx| {
            assert_eq!(idx.len(), 3);
            assert!(idx.windows(2).all(|w| w[0] < w[1]));
            count += 1;
        });
        assert_eq!(count, 20);
        let mut none = 0;
        each_combination(3, 4, |_| none += 1);
        assert_eq!(none, 0);
    }

    #[test]
    #[should_panic(expected = "0 < p < 1")]
    fn degenerate_rates_are_rejected() {
        let _ = logical_error_rate_rare(&Lattice::new(3), 0.0, 100, 1);
    }
}
